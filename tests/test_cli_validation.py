"""Tests for the CLI, the npz persistence, and the scorecard."""

import numpy as np
import pytest

from repro.analysis.dataset import FlowFrame
from repro.analysis.validation import Check, build_scorecard
from repro.cli import main


@pytest.fixture(scope="module")
def capture_path(tmp_path_factory, small_frame):
    path = tmp_path_factory.mktemp("cli") / "capture.npz"
    small_frame.save_npz(path)
    return path


# --- persistence -----------------------------------------------------------


def test_npz_round_trip(small_frame, tmp_path):
    path = tmp_path / "frame.npz"
    small_frame.save_npz(path)
    loaded = FlowFrame.load_npz(path)
    assert len(loaded) == len(small_frame)
    assert loaded.countries == small_frame.countries
    assert loaded.domains == small_frame.domains
    assert np.array_equal(loaded.bytes_down, small_frame.bytes_down)
    nan_mask = np.isnan(small_frame.sat_rtt_ms)
    assert np.array_equal(np.isnan(loaded.sat_rtt_ms), nan_mask)
    assert np.array_equal(loaded.sat_rtt_ms[~nan_mask], small_frame.sat_rtt_ms[~nan_mask])


# --- scorecard ---------------------------------------------------------------


def test_check_semantics():
    good = Check("x", paper=10.0, measured=11.0, tolerance=2.0)
    bad = Check("y", paper=10.0, measured=15.0, tolerance=2.0)
    assert good.passed and not bad.passed
    assert bad.error == 5.0


def test_scorecard_on_dataset(small_frame):
    scorecard = build_scorecard(small_frame)
    assert scorecard.total >= 20
    # the small session fixture should satisfy most headline claims
    assert scorecard.passed >= scorecard.total - 4, [
        (c.name, c.paper, round(c.measured, 2)) for c in scorecard.failing()
    ]
    text = scorecard.render()
    assert "Calibration scorecard" in text
    assert f"{scorecard.passed}/{scorecard.total}" in text


# --- CLI ------------------------------------------------------------------------


def test_cli_generate_and_report(tmp_path, capsys):
    out = tmp_path / "cap.npz"
    code = main(
        ["generate", "--customers", "60", "--days", "1", "--seed", "3", "--out", str(out)]
    )
    assert code == 0
    assert out.exists()
    assert "wrote" in capsys.readouterr().out

    code = main(["report", "--dataset", str(out), "--which", "table1,fig10"])
    assert code == 0
    printed = capsys.readouterr().out
    assert "Table 1" in printed
    assert "Figure 10" in printed


def test_cli_report_rejects_unknown(capture_path, capsys):
    code = main(["report", "--dataset", str(capture_path), "--which", "fig99"])
    assert code == 2


def test_cli_report_all(capture_path, capsys):
    code = main(["report", "--dataset", str(capture_path), "--which", "all"])
    assert code == 0
    printed = capsys.readouterr().out
    for marker in ("Table 1", "Figure 4", "Figure 8a", "Figure 11", "Table 2"):
        assert marker in printed


def test_cli_scorecard(capture_path, capsys):
    main(["scorecard", "--dataset", str(capture_path)])
    assert "Calibration scorecard" in capsys.readouterr().out


def test_cli_errant(capture_path, capsys):
    code = main(["errant", "--dataset", str(capture_path), "--country", "Spain", "--netem"])
    assert code == 0
    printed = capsys.readouterr().out
    assert "geo-satcom-spain" in printed
    assert "netem" in printed


def test_cli_requires_command():
    with pytest.raises(SystemExit):
        main([])


@pytest.mark.parametrize("command", ["generate", "stream"])
@pytest.mark.parametrize("value", ["0", "-3", "2.5", "many"])
def test_cli_rejects_bad_worker_counts(command, value, capsys):
    argv = [command, "--workers", value]
    if command == "stream":
        argv += ["--dir", "unused"]
    with pytest.raises(SystemExit) as excinfo:
        main(argv)
    assert excinfo.value.code == 2  # argparse usage error
    assert "--workers" in capsys.readouterr().err


def test_cli_workers_accepts_auto_and_positive():
    from repro.cli import _worker_count

    assert _worker_count("auto") == 0  # 0 = one per core downstream
    assert _worker_count("AUTO") == 0
    assert _worker_count("4") == 4


def test_cli_mixed_sim(capsys):
    code = main(["mixed-sim", "--n", "1"])
    assert code == 0
    printed = capsys.readouterr().out
    assert "tcp/https" in printed
    assert "RTP mouth-to-ear" in printed


# --- capture auto-detection and diagnostics -------------------------------


def test_cli_report_missing_dataset(tmp_path, capsys):
    assert main(["report", "--dataset", str(tmp_path / "void.npz")]) == 2
    assert "no such capture" in capsys.readouterr().err


def test_cli_report_unrecognized_npz(tmp_path, capsys):
    path = tmp_path / "junk.npz"
    np.savez(path, junk=np.arange(4))
    assert main(["report", "--dataset", str(path)]) == 2
    assert "neither a frame capture" in capsys.readouterr().err


def test_cli_scorecard_missing_dataset(tmp_path, capsys):
    assert main(["scorecard", "--dataset", str(tmp_path / "void.npz")]) == 2
    assert "no such capture" in capsys.readouterr().err


def test_cli_report_and_scorecard_accept_capture_dir(tmp_path, capsys):
    directory = str(tmp_path / "cap")
    assert main([
        "stream", "--customers", "60", "--days", "1", "--seed", "3",
        "--no-compress", "--dir", directory,
    ]) == 0
    capsys.readouterr()
    assert main(["report", "--dataset", directory, "--which", "table1,fig6"]) == 0
    printed = capsys.readouterr().out
    assert "Table 1" in printed and "Figure 6" in printed
    main(["scorecard", "--dataset", directory])
    assert "Calibration scorecard" in capsys.readouterr().out


def test_cli_report_from_bare_rollup(tmp_path, capsys):
    directory = tmp_path / "cap"
    assert main([
        "stream", "--customers", "60", "--days", "1", "--seed", "3",
        "--no-compress", "--dir", str(directory),
    ]) == 0
    capsys.readouterr()
    rollup = str(directory / "rollup.npz")
    assert main(["report", "--dataset", rollup, "--which", "table1"]) == 0
    assert "Table 1" in capsys.readouterr().out
    # frame-only reports cannot run from sketches
    assert main(["report", "--dataset", rollup, "--which", "web-qoe"]) == 2
    assert "needs flow records" in capsys.readouterr().err
