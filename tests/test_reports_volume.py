"""Report tests: Table 1, Figures 2–5 (volume and usage)."""

import numpy as np
import pytest

from repro.analysis.reports import (
    fig2_country,
    fig3_protocol_country,
    fig4_diurnal,
    fig5_volumes,
    table1_protocols,
)


def test_table1_shares_sum_to_100(small_frame):
    result = table1_protocols.compute(small_frame)
    assert sum(result.shares.values()) == pytest.approx(100.0)


def test_table1_matches_paper_shape(small_frame):
    """Who dominates and in what order (Table 1)."""
    result = table1_protocols.compute(small_frame)
    assert result.share("tcp/https") == pytest.approx(56.0, abs=8.0)
    assert result.share("udp/quic") == pytest.approx(19.6, abs=6.0)
    assert result.share("tcp/https") > result.share("udp/quic") > result.share("tcp/http")
    assert result.share("udp/dns") < 0.1  # "< 0.1 %"
    assert result.share("udp/rtp") < 5.0
    assert "Measured" in table1_protocols.render(result)


def test_fig2_shares_sum(small_frame):
    result = fig2_country.compute(small_frame)
    assert sum(v for _, v, _ in result.rows) == pytest.approx(100.0)
    assert sum(c for _, _, c in result.rows) == pytest.approx(100.0)


def test_fig2_congo_over_indexes_spain_under(small_frame):
    """The paper's headline: Congo's volume share exceeds its customer
    share; Spain's is the other way around."""
    result = fig2_country.compute(small_frame)
    assert result.over_indexes("Congo")
    assert not result.over_indexes("Spain")
    congo_vol, congo_cust = result.shares("Congo")
    assert congo_vol > 20.0
    assert result.rows[0][0] == "Congo"  # biggest volume contributor


def test_fig2_per_customer_volume_gap(small_frame):
    congo = fig2_country.mean_daily_download_mb(small_frame, "Congo")
    spain = fig2_country.mean_daily_download_mb(small_frame, "Spain")
    assert congo > 2 * spain  # Africans consume much more per subscription


def test_fig3_german_vpn_anomaly(small_frame):
    result = fig3_protocol_country.compute(small_frame)
    if "Germany" in result.shares:
        german_other = result.share("Germany", "tcp/other")
        spain_other = result.shares.get("Spain", {}).get("tcp/other", 0.0)
        assert german_other > spain_other


def test_fig3_rows_sum_to_100(small_frame):
    result = fig3_protocol_country.compute(small_frame)
    assert len(result.shares) == 10
    for country, shares in result.shares.items():
        assert sum(shares.values()) == pytest.approx(100.0), country


def test_fig4_europe_evening_africa_morning(small_frame):
    result = fig4_diurnal.compute(small_frame)
    # Europe: evening prime time 17–20 UTC
    for country in ("Spain", "UK"):
        assert 16 <= result.peak_hour_utc(country) <= 21, country
    # Congo: morning peak around 9:00 UTC
    assert 7 <= result.peak_hour_utc("Congo") <= 12
    # African morning level far above Europe's
    assert result.morning_level("Congo") > result.morning_level("UK") + 0.2


def test_fig4_africa_higher_night_floor(small_frame):
    result = fig4_diurnal.compute(small_frame)
    africa = np.mean([result.night_floor(c) for c in ("Congo", "Nigeria")])
    europe = np.mean([result.night_floor(c) for c in ("Spain", "UK")])
    assert africa > europe


def test_fig4_curves_normalized(small_frame):
    result = fig4_diurnal.compute(small_frame)
    for country, curve in result.curves.items():
        assert curve.max() == pytest.approx(1.0)
        assert len(curve) == 24


def test_fig5_european_idle_knee(small_frame):
    """>50 % of European customers under 250 flows/day (Section 4)."""
    result = fig5_volumes.compute(small_frame)
    europe = np.mean([result.idle_fraction(c) for c in ("Spain", "UK", "Ireland")])
    assert europe > 0.45
    for country in ("Spain", "UK", "Ireland"):
        assert result.idle_fraction(country) > 0.38, country
    for country in ("Congo", "Nigeria"):
        assert result.idle_fraction(country) < 0.35, country


def test_fig5_african_flow_tail(small_frame):
    """African customers generate several times more daily flows."""
    result = fig5_volumes.compute(small_frame)
    assert result.median_flows("Congo") > 3 * result.median_flows("Spain")
    x_congo, _ = result.flow_ccdf("Congo")
    x_spain, _ = result.flow_ccdf("Spain")
    assert np.quantile(x_congo, 0.90) > 3 * np.quantile(x_spain, 0.90)


def test_fig5_heavy_hitters_africa_vs_europe(small_frame):
    result = fig5_volumes.compute(small_frame)
    assert result.heavy_downloader_pct("Congo") > result.heavy_downloader_pct("Spain")
    assert result.heavy_uploader_pct("Congo") > 4.0
    assert result.heavy_uploader_pct("Nigeria") > result.heavy_uploader_pct("Ireland")


def test_renders_contain_tables(small_frame):
    assert "Figure 2" in fig2_country.render(fig2_country.compute(small_frame))
    assert "Figure 3" in fig3_protocol_country.render(fig3_protocol_country.compute(small_frame))
    assert "Figure 4" in fig4_diurnal.render(fig4_diurnal.compute(small_frame))
    assert "Figure 5" in fig5_volumes.render(fig5_volumes.compute(small_frame))
