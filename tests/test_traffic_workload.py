"""Tests for the vectorized workload generator (uses session fixtures)."""

import numpy as np
import pytest

from repro.flowmeter.records import L7Protocol, L7_ORDER
from repro.traffic.services import SERVICES
from repro.traffic.workload import WorkloadConfig, WorkloadGenerator

HTTPS = L7_ORDER.index(L7Protocol.HTTPS)
DNS = L7_ORDER.index(L7Protocol.DNS)


def test_columns_consistent(small_frame):
    n = len(small_frame)
    assert n > 100_000
    assert len(small_frame.bytes_down) == n
    assert len(small_frame.sat_rtt_ms) == n


def test_days_and_hours_in_range(small_frame):
    assert small_frame.day.min() >= 0
    assert small_frame.day.max() <= 2
    assert small_frame.hour_utc.min() >= 0.0
    assert small_frame.hour_utc.max() < 24.0


def test_ts_consistent_with_day_and_hour(small_frame):
    reconstructed = small_frame.day * 86400 + small_frame.hour_utc.astype(np.float64) * 3600
    assert np.allclose(reconstructed, small_frame.ts_start, atol=1.0)


def test_volumes_positive(small_frame):
    assert np.all(small_frame.bytes_down > 0)
    assert np.all(small_frame.bytes_up >= 0)
    assert np.all(small_frame.duration_s > 0)


def test_sat_rtt_only_on_https(small_frame):
    """The TLS-handshake estimator only works on flows completing the
    TLS negotiation (Section 2.2)."""
    has_sat = np.isfinite(small_frame.sat_rtt_ms)
    assert np.all(small_frame.l7_idx[has_sat] == HTTPS)
    https = small_frame.l7_idx == HTTPS
    assert has_sat[https].mean() > 0.95


def test_sat_rtt_floor(small_frame):
    sat = small_frame.sat_rtt_ms[np.isfinite(small_frame.sat_rtt_ms)]
    assert sat.min() > 520.0
    assert np.median(sat) > 550.0


def test_ground_rtt_ranges(small_frame):
    ground = small_frame.ground_rtt_ms[np.isfinite(small_frame.ground_rtt_ms)]
    assert ground.min() > 1.0
    assert ground.max() < 1500.0


def test_dns_rows_have_resolver_and_response(small_frame):
    dns_mask = small_frame.l7_idx == DNS
    assert dns_mask.sum() > 1000
    assert np.all(small_frame.resolver_idx[dns_mask] >= 0)
    assert np.all(np.isfinite(small_frame.dns_response_ms[dns_mask]))
    # non-DNS rows carry no resolver
    assert np.all(small_frame.resolver_idx[~dns_mask] == -1)


def test_every_service_generates_flows(small_frame):
    present = set(small_frame.service_true_idx[small_frame.service_true_idx >= 0])
    names = {small_frame.services[i] for i in present}
    # popular services must be present; tiny ones may miss a small run
    for name in ("Google", "Whatsapp", "Youtube", "Netflix", "GenericWeb"):
        assert name in names


def test_domains_resolve_in_pool(small_frame):
    has_domain = small_frame.domain_idx >= 0
    assert has_domain.mean() > 0.9  # only DNS rows lack domains
    assert small_frame.domain_idx.max() < len(small_frame.domains)


def test_plan_rates_valid(small_frame):
    plans = set(np.unique(small_frame.plan_down_mbps))
    assert plans <= {10.0, 20.0, 30.0, 50.0, 100.0}


def test_throughput_bounded_by_plan(small_frame):
    """Measured gross throughput can exceed the shaped rate only via the
    handshake-time accounting, never wildly."""
    rate = small_frame.download_throughput_bps() / 1e6
    bulk = small_frame.bytes_down >= 10e6
    valid = bulk & np.isfinite(rate)
    assert np.all(rate[valid] <= small_frame.plan_down_mbps[valid] * 1.05)


def test_generation_deterministic():
    config = WorkloadConfig(n_customers=40, days=1, seed=99)
    a = WorkloadGenerator(config).generate()
    b = WorkloadGenerator(config).generate()
    assert len(a) == len(b)
    assert np.array_equal(a.bytes_down, b.bytes_down)
    assert np.array_equal(a.sat_rtt_ms[np.isfinite(a.sat_rtt_ms)],
                          b.sat_rtt_ms[np.isfinite(b.sat_rtt_ms)])


def test_flow_scale_config():
    base = WorkloadGenerator(WorkloadConfig(n_customers=40, days=1, seed=5)).generate()
    scaled = WorkloadGenerator(
        WorkloadConfig(n_customers=40, days=1, seed=5, flow_scale=0.3)
    ).generate()
    assert len(scaled) < len(base)


def test_dns_can_be_disabled():
    frame = WorkloadGenerator(
        WorkloadConfig(n_customers=30, days=1, seed=5, include_dns=False)
    ).generate()
    assert not (frame.l7_idx == DNS).any()


def test_country_restriction():
    frame = WorkloadGenerator(
        WorkloadConfig(n_customers=30, days=1, seed=5, countries=["Spain"])
    ).generate()
    present = {frame.countries[i] for i in np.unique(frame.country_idx)}
    assert present == {"Spain"}
