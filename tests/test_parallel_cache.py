"""Determinism of sharded parallel generation and the capture cache.

The contract under test: the generated capture is a pure function of
``WorkloadConfig`` content — worker count never changes a byte, and a
cache hit returns exactly what a fresh generate would have produced
(same values, same dtypes).
"""

import os

import numpy as np
import pytest

from repro.analysis.dataset import _ARRAY_FIELDS, FlowFrame
from repro.cache import CaptureCache, config_cache_key, resolve_cache
from repro.parallel import (
    ShardSpec,
    default_shard_count,
    plan_shards,
    resolve_workers,
)
from repro.pipeline import generate_flow_dataset
from repro.traffic.workload import WorkloadConfig, WorkloadGenerator

SMALL = dict(n_customers=60, days=1, seed=31)


def _assert_frames_identical(a: FlowFrame, b: FlowFrame) -> None:
    assert len(a) == len(b)
    for name in _ARRAY_FIELDS:
        x, y = getattr(a, name), getattr(b, name)
        assert x.dtype == y.dtype, f"{name}: {x.dtype} != {y.dtype}"
        nan_ok = x.dtype.kind == "f"
        assert np.array_equal(x, y, equal_nan=nan_ok), f"{name} differs"
    for pool in ("countries", "beams", "services", "domains", "sites", "resolvers"):
        assert getattr(a, pool) == getattr(b, pool), pool


# -- shard planning ---------------------------------------------------------


def test_plan_shards_covers_population_contiguously():
    shards = plan_shards(601, 8)
    assert shards[0].lo == 0
    assert shards[-1].hi == 601
    for prev, cur in zip(shards, shards[1:]):
        assert cur.lo == prev.hi
    sizes = [len(s) for s in shards]
    assert max(sizes) - min(sizes) <= 1


def test_plan_shards_never_exceeds_population():
    shards = plan_shards(3, 8)
    assert len(shards) == 3
    assert all(len(s) == 1 for s in shards)


def test_plan_shards_rejects_empty_population():
    with pytest.raises(ValueError):
        plan_shards(0, 4)


def test_default_shard_count_is_machine_independent():
    assert default_shard_count(600) == 4
    assert default_shard_count(150) == 1
    assert default_shard_count(5000) == 8
    assert default_shard_count(1) == 1


def test_resolve_workers():
    assert resolve_workers(4) == 4
    assert resolve_workers(None) >= 1
    assert resolve_workers(0) >= 1
    with pytest.raises(ValueError):
        resolve_workers(-1)


def test_resolve_workers_accepts_auto_string():
    assert resolve_workers("auto") == resolve_workers(0)
    assert resolve_workers(" AUTO ") == resolve_workers(0)
    with pytest.raises(ValueError):
        resolve_workers("fast")


@pytest.mark.skipif(
    not hasattr(os, "sched_getaffinity"), reason="needs sched_getaffinity"
)
def test_auto_workers_respect_cpu_affinity(monkeypatch):
    """'auto' must count the cores this process may *use* (cgroup/
    taskset restrictions), not the machine's — a container pinned to 2
    of 64 cores should fork 2 workers."""
    monkeypatch.setattr(os, "sched_getaffinity", lambda pid: {0, 3})
    assert resolve_workers("auto") == 2
    assert resolve_workers(0) == 2
    assert resolve_workers(None) == 2
    # an explicit count is never overridden by affinity
    assert resolve_workers(6) == 6


def test_auto_workers_fall_back_without_affinity(monkeypatch):
    monkeypatch.delattr(os, "sched_getaffinity", raising=False)
    assert resolve_workers("auto") == (os.cpu_count() or 1)


# -- determinism across worker counts --------------------------------------


def test_worker_count_does_not_change_output():
    serial = WorkloadGenerator(
        WorkloadConfig(**SMALL, n_shards=4, n_workers=1)
    ).generate()
    parallel = WorkloadGenerator(
        WorkloadConfig(**SMALL, n_shards=4, n_workers=4)
    ).generate()
    _assert_frames_identical(serial, parallel)


def test_worker_count_does_not_change_output_default_shards():
    serial = WorkloadGenerator(WorkloadConfig(**SMALL, n_workers=1)).generate()
    parallel = WorkloadGenerator(WorkloadConfig(**SMALL, n_workers=4)).generate()
    _assert_frames_identical(serial, parallel)


def test_generate_is_idempotent():
    generator = WorkloadGenerator(WorkloadConfig(**SMALL))
    _assert_frames_identical(generator.generate(), generator.generate())


def test_shard_union_equals_whole():
    """Concatenating every shard's frame reproduces generate()."""
    generator = WorkloadGenerator(WorkloadConfig(**SMALL, n_shards=4))
    whole = generator.generate()
    parts = [generator.generate_shard(s) for s in generator.shard_plan()]
    merged = FlowFrame.concat([p for p in parts if p is not None])
    _assert_frames_identical(whole, merged)


def test_shard_count_is_part_of_content_identity():
    two = WorkloadGenerator(WorkloadConfig(**SMALL, n_shards=2)).generate()
    four = WorkloadGenerator(WorkloadConfig(**SMALL, n_shards=4)).generate()
    # different RNG stream assignment → different samples...
    n = min(len(two), len(four))
    assert not np.array_equal(two.bytes_down[:n], four.bytes_down[:n])
    # ...which is why n_shards must feed the cache key
    assert config_cache_key(
        WorkloadConfig(**SMALL, n_shards=2)
    ) != config_cache_key(WorkloadConfig(**SMALL, n_shards=4))


# -- capture cache ----------------------------------------------------------


def test_cache_key_ignores_workers_not_content():
    base = WorkloadConfig(**SMALL)
    assert config_cache_key(base) == config_cache_key(
        WorkloadConfig(**SMALL, n_workers=8)
    )
    assert config_cache_key(base) != config_cache_key(
        WorkloadConfig(n_customers=60, days=1, seed=32)
    )


def test_cache_roundtrip_preserves_values_and_dtypes(tmp_path):
    config = WorkloadConfig(**SMALL)
    cache = CaptureCache(tmp_path)
    fresh, _ = generate_flow_dataset(config, cache=cache)
    assert cache.path_for(config).exists()
    hit, _ = generate_flow_dataset(config, cache=cache)
    _assert_frames_identical(fresh, hit)


def test_cache_hit_skips_generation(tmp_path, monkeypatch):
    config = WorkloadConfig(**SMALL)
    cache = CaptureCache(tmp_path)
    generate_flow_dataset(config, cache=cache)

    def boom(self):
        raise AssertionError("cache hit must not regenerate")

    monkeypatch.setattr(WorkloadGenerator, "generate", boom)
    frame, _ = generate_flow_dataset(config, cache=cache)
    assert len(frame) > 0


def test_cache_corrupt_entry_treated_as_miss(tmp_path):
    config = WorkloadConfig(**SMALL)
    cache = CaptureCache(tmp_path)
    path = cache.path_for(config)
    path.parent.mkdir(parents=True, exist_ok=True)
    path.write_bytes(b"not an npz")
    assert cache.load(config) is None
    assert not path.exists()  # quarantined, not served
    assert cache.quarantine_path(path).exists()
    assert cache.injector.stats.quarantined == 1


def test_cache_truncated_entry_treated_as_miss(tmp_path):
    """A torn write (valid zip magic, missing tail) must never be served."""
    config = WorkloadConfig(**SMALL)
    cache = CaptureCache(tmp_path)
    generate_flow_dataset(config, cache=cache)
    path = cache.path_for(config)
    blob = path.read_bytes()
    path.write_bytes(blob[: len(blob) // 2])
    assert cache.load(config) is None
    assert not path.exists()  # evicted, not left to fail again
    assert cache.quarantine_path(path).exists()


def test_cache_corrupt_entry_repaired_on_next_write(tmp_path):
    config = WorkloadConfig(**SMALL)
    cache = CaptureCache(tmp_path)
    fresh, _ = generate_flow_dataset(config, cache=cache)
    cache.path_for(config).write_bytes(b"garbage")
    regenerated, _ = generate_flow_dataset(config, cache=cache)
    _assert_frames_identical(fresh, regenerated)
    healthy = cache.load(config)  # the miss repopulated a healthy entry
    assert healthy is not None
    _assert_frames_identical(fresh, healthy)


def test_cache_store_publishes_atomically(tmp_path, monkeypatch):
    """Regression for the torn-publish window: a failure mid-store must
    never leave a partial entry under the published name (the write goes
    temp → flush → fsync → ``os.replace``), and no temp litter either."""
    import repro.faults as faults_mod

    config = WorkloadConfig(**SMALL)
    cache = CaptureCache(tmp_path)
    frame = WorkloadGenerator(config).generate()

    real_replace = os.replace

    def exploding_replace(src, dst):
        raise OSError("simulated crash at publish")

    monkeypatch.setattr(faults_mod.os, "replace", exploding_replace)
    with pytest.raises(OSError, match="simulated crash"):
        cache.store(config, frame)
    monkeypatch.setattr(faults_mod.os, "replace", real_replace)
    assert not cache.path_for(config).exists()  # nothing half-published
    assert not list(tmp_path.glob("*.tmp"))  # no temp litter
    assert cache.load(config) is None
    cache.store(config, frame)  # the directory is still healthy
    _assert_frames_identical(frame, cache.load(config))


def test_cache_store_retries_injected_faults(tmp_path):
    """Transient injected write/fsync/rename errors are absorbed by the
    retry loop and the stored entry round-trips byte-identically."""
    from repro.faults import FaultInjector, FaultPlan, IoFault

    plan = FaultPlan(
        io_faults=(
            IoFault(op="cache.store", stage="write", fail_times=1),
            IoFault(op="cache.store", stage="fsync", fail_times=1),
            IoFault(op="cache.store", stage="rename", fail_times=1),
        ),
        backoff_base_s=0.0,
    )
    config = WorkloadConfig(**SMALL)
    cache = CaptureCache(tmp_path, injector=FaultInjector(plan, sleep=lambda _s: None))
    frame = WorkloadGenerator(config).generate()
    cache.store(config, frame)
    assert cache.injector.stats.injected == 3
    assert cache.injector.stats.retries == 3
    assert cache.injector.stats.gave_up == 0
    assert not list(tmp_path.glob("*.tmp"))
    _assert_frames_identical(frame, CaptureCache(tmp_path).load(config))


def test_cache_torn_store_quarantined_then_regenerated(tmp_path):
    """A truncate fault tears the published entry; the next load
    quarantines it and the pipeline regenerates the same capture."""
    from repro.faults import FaultInjector, FaultPlan, TruncateFault

    plan = FaultPlan(truncate_faults=(TruncateFault(op="cache.store", fraction=0.3),))
    config = WorkloadConfig(**SMALL)
    torn_cache = CaptureCache(tmp_path, injector=FaultInjector(plan))
    fresh, _ = generate_flow_dataset(config, cache=torn_cache)
    assert torn_cache.injector.stats.truncated == 1
    healthy_cache = CaptureCache(tmp_path)
    assert healthy_cache.load(config) is None  # torn entry quarantined
    assert healthy_cache.injector.stats.quarantined == 1
    regenerated, _ = generate_flow_dataset(config, cache=healthy_cache)
    _assert_frames_identical(fresh, regenerated)
    _assert_frames_identical(fresh, healthy_cache.load(config))


def test_cache_bypassed_for_custom_models(tmp_path):
    from repro.satcom.delay_model import SatelliteRttModel

    config = WorkloadConfig(**SMALL)
    cache = CaptureCache(tmp_path)
    generate_flow_dataset(config, rtt_model=SatelliteRttModel(), cache=cache)
    assert cache.load(config) is None  # nothing was stored


def test_cache_clear(tmp_path):
    config = WorkloadConfig(**SMALL)
    cache = CaptureCache(tmp_path)
    generate_flow_dataset(config, cache=cache)
    assert cache.clear() == 1
    assert cache.load(config) is None


def test_resolve_cache_forms(tmp_path):
    assert resolve_cache(None) is None
    assert resolve_cache(False) is None
    assert resolve_cache(tmp_path).directory == tmp_path
    cache = CaptureCache(tmp_path)
    assert resolve_cache(cache) is cache


# -- pool-aware concat ------------------------------------------------------


def test_concat_rejects_mismatched_secondary_pools():
    frame = WorkloadGenerator(WorkloadConfig(**SMALL)).generate()
    for pool in ("beams", "sites", "resolvers"):
        mutated = FlowFrame(
            **{
                name: getattr(frame, name)
                for name in (
                    "countries",
                    "beams",
                    "services",
                    "domains",
                    "sites",
                    "resolvers",
                )
            },
            **{name: getattr(frame, name) for name in _ARRAY_FIELDS},
        )
        setattr(mutated, pool, list(getattr(frame, pool)) + ["bogus"])
        with pytest.raises(ValueError, match=pool):
            FlowFrame.concat([frame, mutated])


def test_customer_id_dtype_enforced():
    frame = WorkloadGenerator(WorkloadConfig(**SMALL)).generate()
    assert frame.customer_id.dtype == np.int32
    widened = frame.filter(np.ones(len(frame), dtype=bool))
    widened.customer_id = widened.customer_id.astype(np.int64)
    rebuilt = FlowFrame.concat([widened])
    assert rebuilt.customer_id.dtype == np.int32
