"""White-box tests for workload-generator internals."""

import numpy as np
import pytest

from repro.flowmeter.records import L7Protocol, L7_ORDER
from repro.internet.resolvers import RESOLVERS
from repro.traffic.services import SERVICES
from repro.traffic.workload import WorkloadConfig, WorkloadGenerator


@pytest.fixture(scope="module")
def generator():
    return WorkloadGenerator(WorkloadConfig(n_customers=120, days=2, seed=6))


def test_domain_pools_cover_every_service(generator):
    for name in SERVICES:
        pool = generator._service_domains[name]
        assert len(pool) >= 1
        for idx in pool:
            assert 0 <= idx < len(generator.domains_pool)


def test_site_precomputation_complete(generator):
    for name in SERVICES:
        by_resolver = generator._site_by_resolver[name]
        assert len(by_resolver) == len(generator.resolvers_pool)
        assert np.all(by_resolver >= 0)
        by_country = generator._site_by_country[name]
        assert set(by_country) == set(generator.countries_pool)


def test_select_sites_anycast_ignores_resolver(generator):
    svc = SERVICES["Netflix"]  # ANYCAST policy
    flow_cust = np.arange(min(50, len(generator.population)))
    sites = generator._select_sites(svc, "Congo", flow_cust, len(flow_cust))
    assert len(set(sites.tolist())) == 1  # one egress-nearest node for all


def test_select_sites_ecs_mixes_locations(generator):
    """Google-resolver customers split between country node and egress
    node; everyone else sticks with the resolver egress."""
    svc = SERVICES["Youtube"]
    google_idx = generator.resolvers_pool.index("Google")
    google_custs = np.flatnonzero(generator.cust_resolver_idx == google_idx)
    congo_custs = np.flatnonzero(
        generator.cust_country_idx == generator.countries_pool.index("Congo")
    )
    custs = np.intersect1d(google_custs, congo_custs)
    if len(custs) == 0:
        pytest.skip("no Congolese Google customers in this draw")
    flows = np.repeat(custs, 40)
    sites = generator._select_sites(svc, "Congo", flows, len(flows))
    assert len(set(sites.tolist())) >= 2  # ECS coin flips both ways


def test_sample_duration_positive_and_plan_bounded(generator, rng):
    svc = SERVICES["Netflix"]
    n = 500
    flow_cust = rng.integers(0, len(generator.population), n)
    bytes_down = rng.lognormal(15, 1, n)
    util = np.full(n, 0.5)
    sat = np.full(n, 700.0)
    durations = generator._sample_duration(svc, flow_cust, bytes_down, util, sat, "Europe")
    assert np.all(durations > 0)
    implied = bytes_down * 8 / durations / 1e6
    assert np.all(implied <= generator.cust_plan_down[flow_cust] * 1.01)


def test_activity_pairs_probability(generator):
    cust_ids = np.arange(100)
    always = generator._activity_pairs(cust_ids, np.ones(100))
    assert len(always[0]) == 100 * generator.config.days
    never = generator._activity_pairs(cust_ids, np.zeros(100))
    assert len(never[0]) == 0


def test_sample_hours_in_range(generator):
    from repro.traffic.profiles import country_profile

    local, utc = generator._sample_hours(country_profile("Kenya"), 1000)
    assert np.all((local >= 0) & (local < 24))
    assert np.all((utc >= 0) & (utc < 24))
    # Kenya is east of UTC: local runs ahead
    shift = (local - utc) % 24
    assert np.allclose(shift, shift[0])
    assert 2.0 < shift[0] < 3.0


def test_dns_chunk_resolver_mix(generator):
    frame = generator.generate()
    dns_idx = L7_ORDER.index(L7Protocol.DNS)
    dns_mask = frame.l7_idx == dns_idx
    # every customer's dominant DNS resolver matches its assignment
    sample_custs = np.unique(frame.customer_id[dns_mask])[:25]
    for customer in sample_custs:
        rows = dns_mask & (frame.customer_id == customer)
        resolvers, counts = np.unique(frame.resolver_idx[rows], return_counts=True)
        dominant = resolvers[np.argmax(counts)]
        assigned = generator.cust_resolver_idx[customer - 1]
        assert dominant == assigned


def test_resolver_response_times_match_catalog(generator):
    frame = generator.generate()
    for name in ("Operator-EU", "Baidu"):
        r_idx = generator.resolvers_pool.index(name)
        mask = frame.resolver_idx == r_idx
        if mask.sum() < 30:
            continue
        measured = np.median(frame.dns_response_ms[mask])
        expected = np.median(
            RESOLVERS[name].sample_response_ms(
                generator.internet.latency, np.random.default_rng(0), 4000
            )
        )
        assert measured == pytest.approx(expected, rel=0.25), name
