"""Tests for the Table 3 service classifier."""

import numpy as np
import pytest

from repro.analysis.classify import ServiceClassifier, TABLE3_RULES
from repro.traffic.services import ServiceCategory


@pytest.fixture(scope="module")
def clf():
    return ServiceClassifier()


@pytest.mark.parametrize(
    "domain,service",
    [
        ("rr4---sn-mxp1.googlevideo.com", "Youtube"),
        ("i.ytimg.com", "Youtube"),
        ("www.youtube.com", "Youtube"),
        ("redirector.gvt1.com", "Youtube"),
        ("ipv4-c020-mxp001-ix.1.oca.nflxvideo.net", "Netflix"),
        ("assets.nflxext.com", "Netflix"),
        ("occ-0-1168.nflxso.net", "Netflix"),
        ("ocdn.epg.sky.com", "Sky"),
        ("www.primevideo.com", "Primevideo"),
        ("atv-ps-eu.amazon.com", "Primevideo"),
        ("d1.pv-cdn.net", "Primevideo"),
        ("scontent-mxp1-1.xx.fbcdn.net", "Facebook"),
        ("graph.facebook.com", "Facebook"),
        ("abs.twimg.com", "Twitter"),
        ("static.licdn.com", "Linkedin"),
        ("scontent.cdninstagram.com", "Instagram"),
        ("i.instagram.com", "Instagram"),
        ("p16-sign-va.tiktokcdn.com", "Tiktok"),
        ("api16-normal.tiktokv.com", "Tiktok"),
        ("v16-web.tiktok.com", "Tiktok"),
        ("www.google.com", "Google"),
        ("google.es", "Google"),
        ("www.bing.com", "Bing"),
        ("s.yimg.com", "Yahoo"),
        ("duckduckgo.com", "Duckduck"),
        ("mmg.whatsapp.net", "Whatsapp"),
        ("web.whatsapp.com", "Whatsapp"),
        ("core.telegram.org", "Telegram"),
        ("app.snapchat.com", "Snapchat"),
        ("feelinsonice-hrd.appspot.com", "Snapchat"),
        ("edge.skype.com", "Skype"),
        ("dns.weixin.qq.com", "Wechat"),
        ("wxsnsdy.wxs.qq.com", "Wechat"),
        ("contoso.sharepoint.com", "Office365"),
        ("teams.microsoft.com", "Office365"),
        ("docs.google.com", "Gsuite"),
        ("drive.google.com", "Gsuite"),
        ("dl-web.dropbox.com", "Dropbox"),
        ("api.spotify.com", "Spotify"),
        ("audio4-ak.scdn.com", "Spotify"),
    ],
)
def test_positive_classification(clf, domain, service):
    assert clf.service_of(domain) == service


@pytest.mark.parametrize(
    "domain",
    [
        "news.qq.com",              # Chinese portal, not WeChat
        "api.netease.com",
        "play.googleapis.com",      # API endpoint, not Google Search
        "fonts.gstatic.com",
        "ssl.google-analytics.com",  # tracking, not Google Search
        "captive.apple.com",
        "au.download.windowsupdate.com",
        "www.wikipedia.org",
        "api.scooper.news",
        "stats.g.doubleclick.net",
    ],
)
def test_negative_classification(clf, domain):
    assert clf.service_of(domain) is None


def test_skype_beats_office365_pattern(clf):
    """Office365's rule also lists 'skype'; Chat must win (rule order)."""
    rule = clf.classify("latest-swx.cdn.skype.com")
    assert rule.service == "Skype"
    assert rule.category == ServiceCategory.CHAT


def test_youtube_beats_google_for_youtube_domains(clf):
    assert clf.service_of("www.youtube.com") == "Youtube"


def test_category_of(clf):
    assert clf.category_of("mmg.whatsapp.net") == ServiceCategory.CHAT
    assert clf.category_of("unknown.example") is None
    assert clf.category_of(None) is None


def test_case_insensitive(clf):
    assert clf.service_of("WWW.GOOGLE.COM") == "Google"


def test_memoization(clf):
    clf.classify("memo.test.example")
    assert "memo.test.example" in clf._cache


def test_classify_pool():
    clf = ServiceClassifier()
    pool = ["www.google.com", "unknown.example", "mmg.whatsapp.net"]
    labels, names = clf.classify_pool(pool)
    assert labels[0] == names.index("Google")
    assert labels[1] == -1
    assert labels[2] == names.index("Whatsapp")


def test_label_frame(small_frame):
    clf = ServiceClassifier()
    labels, names = clf.label_frame(small_frame)
    assert len(labels) == len(small_frame)
    assert labels.max() < len(names)
    # classifier output matches generator ground truth for Figure 6 services
    truth_names = small_frame.services
    for service in ("Whatsapp", "Netflix", "Tiktok"):
        truth_idx = truth_names.index(service)
        label_idx = names.index(service)
        truth_mask = small_frame.service_true_idx == truth_idx
        assert (labels[truth_mask] == label_idx).mean() > 0.99


def test_all_rules_have_patterns():
    for rule in TABLE3_RULES:
        assert rule.patterns
        assert rule.service
