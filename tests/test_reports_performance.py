"""Report tests: Figures 8–11 and Table 2 (performance section)."""

import numpy as np
import pytest

from repro.analysis.reports import (
    fig8_satellite_rtt,
    fig9_ground_rtt,
    fig10_dns,
    fig11_throughput,
    table2_resolver_rtt,
)


@pytest.fixture(scope="module")
def fig8a(small_frame):
    return fig8_satellite_rtt.compute_fig8a(small_frame)


@pytest.fixture(scope="module")
def fig8b(small_frame):
    return fig8_satellite_rtt.compute_fig8b(small_frame)


@pytest.fixture(scope="module")
def fig9(small_frame):
    return fig9_ground_rtt.compute(small_frame)


@pytest.fixture(scope="module")
def fig10(small_frame):
    return fig10_dns.compute(small_frame)


@pytest.fixture(scope="module")
def fig11(small_frame):
    return fig11_throughput.compute(small_frame)


# --- Figure 8 -----------------------------------------------------------------


def test_fig8a_floor_above_550ms(fig8a):
    for country in fig8a.samples:
        assert fig8a.minimum_ms(country) > 520.0, country


def test_fig8a_spain_best_at_night(fig8a):
    fraction = fig8a.fraction_under("Spain", "night", 1000.0)
    assert fraction == pytest.approx(0.82, abs=0.10)  # paper: 82 %
    for country in ("Congo", "Ireland", "UK"):
        assert fig8a.fraction_under(country, "night", 1000.0) <= fraction + 0.03


def test_fig8a_congo_tail(fig8a):
    assert fig8a.fraction_over("Congo", "night", 2000.0) > 0.08  # paper ~20 %
    assert fig8a.fraction_over("Congo", "peak", 2000.0) > fig8a.fraction_over(
        "Congo", "night", 2000.0
    )


def test_fig8a_congo_peak_worse_than_night(fig8a):
    night = fig8a.quartiles_ms("Congo", "night")[1]
    peak = fig8a.quartiles_ms("Congo", "peak")[1]
    assert peak > night * 1.1


def test_fig8a_ireland_load_independent(fig8a):
    night = fig8a.fraction_over("Ireland", "night", 1500.0)
    peak = fig8a.fraction_over("Ireland", "peak", 1500.0)
    assert abs(night - peak) < 0.10
    assert night > 0.03


def test_fig8b_congested_beams_stand_out(fig8b):
    medians = {beam: median for beam, _, median, _ in fig8b.rows}
    congo = [m for b, c, m, _ in fig8b.rows if c == "Congo"]
    spain = [m for b, c, m, _ in fig8b.rows if c == "Spain"]
    assert min(congo) > max(spain)


def test_fig8b_utilization_normalized(fig8b):
    utils = [u for *_, u in fig8b.rows]
    assert max(utils) == pytest.approx(1.0)
    assert all(0 < u <= 1.0 for u in utils)


# --- Figure 9 -----------------------------------------------------------------


def test_fig9_africa_higher_than_europe(fig9):
    africa = np.mean([fig9.median_ms(c) for c in ("Congo", "Nigeria", "South Africa")])
    europe = np.mean([fig9.median_ms(c) for c in ("Spain", "UK", "Ireland")])
    assert africa > europe


def test_fig9_europe_mostly_under_40ms(fig9):
    for country in ("Spain", "UK", "Ireland"):
        assert fig9.fraction_below(country, 40.0) > 0.8, country


def test_fig9_african_right_tail(fig9):
    """The 300–400 ms bumps: local services reached back through Italy."""
    assert fig9.fraction_above("Congo", 250.0) > 0.01
    assert fig9.fraction_above("Congo", 250.0) > fig9.fraction_above("Spain", 250.0)


def test_fig9_peered_cdn_bump(fig9):
    """A visible mass of European traffic near 12 ms."""
    assert fig9.fraction_below("UK", 15.0) > 0.2


# --- Figure 10 -----------------------------------------------------------------


def test_fig10_shares_sum_to_100(fig10):
    totals = {}
    for resolver, shares in fig10.shares_pct.items():
        for country, share in shares.items():
            totals[country] = totals.get(country, 0.0) + share
    for country, total in totals.items():
        assert total == pytest.approx(100.0, abs=0.5), country


def test_fig10_adoption_patterns(fig10):
    assert fig10.share("Google", "Congo") > 70  # paper: 85.68 %
    assert fig10.share("Operator-EU", "Ireland") > fig10.share("Operator-EU", "Congo")
    assert fig10.share("Nigerian", "Nigeria") > 5
    assert fig10.share("Nigerian", "Spain") < 3


def test_fig10_median_response_times(fig10):
    paper = fig10_dns.PAPER_MEDIAN_MS
    for resolver, target in paper.items():
        measured = fig10.median_response_ms[resolver]
        assert measured == pytest.approx(target, rel=0.25), resolver
    # the operator resolver is the fastest
    assert min(fig10.median_response_ms, key=fig10.median_response_ms.get) == "Operator-EU"


# --- Table 2 -------------------------------------------------------------------


@pytest.fixture(scope="module")
def table2(small_frame):
    return table2_resolver_rtt.compute(small_frame, min_samples=3)


def test_table2_resolver_changes_rtt_for_nigeria(table2):
    """Chinese/Nigerian resolvers inflate RTTs for African customers;
    European resolvers keep the traffic in Europe (Table 2). Exact
    cells depend on which (customer, resolver) pairs the small fixture
    sampled, so we assert over the available groups."""
    eu_cells = [
        table2.rtt("Nigeria", resolver, domain)
        for resolver in ("Operator-EU", "CloudFlare", "Open DNS")
        for domain in ("captive.apple.com", "play.googleapis.com", "googlevideo.com")
    ]
    eu_cells = [v for v in eu_cells if v is not None]
    assert eu_cells and min(eu_cells) < 40

    distant_cells = [
        table2.rtt("Nigeria", resolver, domain)
        for resolver in ("114DNS", "Baidu", "Nigerian")
        for domain in ("captive.apple.com", "play.googleapis.com", "googlevideo.com",
                       "whatsapp.net")
    ]
    distant_cells = [v for v in distant_cells if v is not None]
    assert distant_cells and max(distant_cells) > 80


def test_table2_uk_resolver_insensitive(table2):
    """For European customers the resolver barely matters."""
    values = [
        table2.rtt("UK", resolver, "captive.apple.com")
        for resolver in ("Operator-EU", "Google", "CloudFlare")
    ]
    values = [v for v in values if v is not None]
    assert values and max(values) - min(values) < 25


def test_table2_anycast_immune(table2):
    """nflxvideo.net is anycast-served: low RTT regardless of resolver."""
    for resolver in ("Operator-EU", "Google", "Nigerian", "114DNS"):
        value = table2.rtt("Nigeria", resolver, "*.nflxvideo.net")
        if value is not None:
            assert value < 40, resolver


def test_table2_render(table2):
    assert "Table 2" in table2_resolver_rtt.render(table2)


# --- Figure 11 ------------------------------------------------------------------


def test_fig11_europe_faster_than_africa(fig11):
    europe = np.mean([fig11.median_mbps(c) for c in ("Spain", "UK")])
    africa = np.mean([fig11.median_mbps(c) for c in ("Congo", "Nigeria")])
    assert europe > 1.8 * africa


def test_fig11_europe_can_saturate_plans(fig11):
    """European customers reach their 30–100 Mb/s plans (knees)."""
    assert fig11.fraction_above("Spain", 25.0) > 0.2
    assert fig11.fraction_above("Congo", 25.0) < 0.05  # African plans cap at 30


def test_fig11_peak_degradation_africa(fig11):
    assert fig11.peak_degradation("Congo") > 0.0
    # degradation stronger in Congo than in the UK (Section 6.5)
    assert fig11.peak_degradation("Congo") >= fig11.peak_degradation("UK") - 0.05


def test_fig11_bulk_samples_only(small_frame, fig11):
    for country, samples in fig11.samples_mbps.items():
        assert len(samples) > 50, country
        assert np.all(samples > 0)


def test_fig8_fig11_renders(small_frame, fig8a, fig8b, fig11, fig9, fig10):
    assert "Figure 8a" in fig8_satellite_rtt.render(fig8a, fig8b)
    assert "Figure 9" in fig9_ground_rtt.render(fig9)
    assert "Figure 10" in fig10_dns.render(fig10)
    assert "Figure 11" in fig11_throughput.render(fig11)
