"""Edge cases of the PEP tunnel plumbing in the packet network."""

import numpy as np
import pytest

from repro.internet.topology import InternetModel
from repro.satcom.apps import TlsClientApp, TlsServerApp
from repro.satcom.network import SatComPacketNetwork
from repro.satcom.pep import TunnelMessage, TunnelMessageType
from repro.simnet.engine import Simulator


@pytest.fixture()
def net():
    sim = Simulator()
    return SatComPacketNetwork(
        sim, InternetModel(), rng=np.random.default_rng(3), hour_utc=14.0
    )


def _tls_server(net, domain="edge.example", site="Milan-IX", response=3_000):
    return net.add_server(
        domain, site,
        app_factory=lambda ep: TlsServerApp(ep.send, ep.close, response_bytes=response),
    )


def test_close_right_after_open(net):
    """App opens and immediately closes: the GS proxy must still tear
    down its server-side connection once it establishes."""
    server = _tls_server(net)
    customer = net.add_customer("Spain")
    socket = customer.open_tcp(server.ip, 443)
    socket.close()
    net.sim.run(until=30.0)
    # the GS proxy half-closed toward the server (the server side keeps
    # the other direction open, as real TCP allows)
    flow = net._gs_flows[socket.flow_id]
    assert flow.close_requested
    assert flow.endpoint is not None and flow.endpoint._fin_sent


def test_double_close_is_idempotent(net):
    server = _tls_server(net)
    customer = net.add_customer("Spain")
    socket = customer.open_tcp(server.ip, 443)
    socket.close()
    socket.close()  # second close is a no-op
    net.sim.run(until=30.0)
    assert socket.closed


def test_send_after_close_raises(net):
    server = _tls_server(net)
    customer = net.add_customer("Spain")
    socket = customer.open_tcp(server.ip, 443)
    socket.close()
    with pytest.raises(RuntimeError):
        socket.send(b"late")


def test_tunnel_data_for_unknown_flow_ignored(net):
    """Stray DATA after teardown must not crash the ground station."""
    net._gs_tunnel_receive(
        TunnelMessage(flow_id=999_999, msg_type=TunnelMessageType.DATA, payload=b"x")
    )
    net._gs_tunnel_receive(
        TunnelMessage(flow_id=999_999, msg_type=TunnelMessageType.CLOSE)
    )


def test_connect_for_unknown_customer_ignored(net):
    net._gs_tunnel_receive(
        TunnelMessage(
            flow_id=5, msg_type=TunnelMessageType.CONNECT,
            src_ip=0x01020304, dst_ip=0x05060708, src_port=1, dst_port=443,
        )
    )
    assert 5 not in net._gs_flows


def test_two_customers_share_a_server(net):
    server = _tls_server(net, response=2_000)
    finished = []
    for country in ("Spain", "UK"):
        customer = net.add_customer(country)
        app = TlsClientApp(
            net.sim, "edge.example", expected_response_bytes=2_000,
            on_finished=lambda a: finished.append(a),
        )
        socket = customer.open_tcp(server.ip, 443, on_data=app.on_data)
        app.start(socket.send, socket.close)
    net.sim.run(until=60.0)
    assert len(finished) == 2


def test_pep_decouples_congestion_domains(net):
    """The client app sends at once; the CPE paces at the plan uplink
    rate — the ClientHello reaches the GS no sooner than serialization
    allows."""
    server = _tls_server(net)
    customer = net.add_customer("Congo", plan_name="sat-10")  # 2 Mb/s up
    app = TlsClientApp(net.sim, "edge.example", expected_response_bytes=3_000)
    socket = customer.open_tcp(server.ip, 443, on_data=app.on_data)
    app.start(socket.send, socket.close)
    net.sim.run(until=60.0)
    assert app.result.complete
    # one-way satellite ≥ ~250 ms: nothing finished before a round trip
    assert app.result.got_server_hello_at > 0.5


def test_customer_links_are_private(net):
    a = net.add_customer("Spain")
    b = net.add_customer("Spain")
    assert a.uplink is not b.uplink
    assert a.downlink is not b.downlink
    assert a.uplink.rate_bps == a.plan.up_bps
    assert a.downlink.rate_bps == a.plan.down_bps
