"""The distributed fleet: planning, workers, coordinator, healing, CLI.

The contracts under test:

* partition planning is a deterministic pure function of the scenario —
  disjoint contiguous shard ranges covering the full plan, stable
  capture keys, independent fault seeds;
* the acceptance oracle: a fleet capture's merged rollup digest is
  bit-identical to the single-process ``repro stream`` digest of the
  same scenario, for any partition count, across worker SIGKILLs healed
  via resume, and across straggler kills;
* the coordinator is disk-authoritative — resuming a complete fleet is
  idempotent, resuming a torn one finishes only the missing work;
* ``fleet`` sections never change content digests, and nested
  parallelism divides the affinity budget instead of multiplying it.
"""

import json
import time
from pathlib import Path

import pytest

from repro.analysis.source import CaptureError
from repro.cli import main
from repro.faults import FaultPlan
from repro.fleet import (
    FLEET_MANIFEST,
    FLEET_TELEMETRY,
    MERGED_ROLLUP,
    fleet_kill_points,
    load_fleet_manifest,
    merge_partition_captures,
    partition_dir,
    partition_fault_plan,
    partition_kill_prefix,
    plan_partitions,
    render_fleet_telemetry,
    run_fleet_capture,
    run_partition,
)
from repro.fleet import coordinator as fleet_coordinator
from repro.fleet.worker import partition_process_entry
from repro.parallel import resolve_workers
from repro.scenario import ScenarioError, get_scenario
from repro.stream import StreamRollup, load_checkpoint, run_stream_capture
from repro.stream.checkpoint import Checkpoint

TINY_OVERRIDES = {
    "population.n_customers": 48,
    "workload.days": 2,
    "workload.n_shards": 6,
    "execution.compress": False,
}


@pytest.fixture(scope="module")
def tiny_scenario():
    return get_scenario("baseline-geo").with_overrides(TINY_OVERRIDES)


@pytest.fixture(scope="module")
def reference_digest(tiny_scenario, tmp_path_factory):
    """The single-process stream digest — the fleet acceptance oracle."""
    directory = tmp_path_factory.mktemp("single")
    result = run_stream_capture(tiny_scenario.stream_config(), directory)
    return result.rollup.state_digest()


# -- partition planning ------------------------------------------------------


def test_plan_partitions_covers_shards_disjointly(tiny_scenario):
    plan = plan_partitions(tiny_scenario, partitions=4)
    assert plan.n_partitions == 4
    assert plan.n_shards == 6
    assert plan.partitions[0].shard_lo == 0
    assert plan.partitions[-1].shard_hi == plan.n_shards
    for before, after in zip(plan.partitions, plan.partitions[1:]):
        assert before.shard_hi == after.shard_lo  # contiguous, disjoint
        assert before.customer_hi == after.customer_lo
    assert plan.partitions[0].customer_lo == 0
    assert plan.partitions[-1].customer_hi == plan.n_customers
    # sizes differ by at most one shard (same divmod as plan_shards)
    sizes = [spec.n_shards for spec in plan.partitions]
    assert max(sizes) - min(sizes) <= 1


def test_plan_partitions_is_deterministic(tiny_scenario):
    assert plan_partitions(tiny_scenario, 3) == plan_partitions(tiny_scenario, 3)


def test_plan_partitions_clamps_to_shard_count(tiny_scenario):
    plan = plan_partitions(tiny_scenario, partitions=99)
    assert plan.n_partitions == plan.n_shards == 6
    assert [spec.n_shards for spec in plan.partitions] == [1] * 6


def test_plan_partitions_rejects_bad_count(tiny_scenario):
    with pytest.raises(ValueError):
        plan_partitions(tiny_scenario, partitions=0)


def test_partition_identities_are_distinct(tiny_scenario):
    plan = plan_partitions(tiny_scenario, partitions=4)
    keys = [spec.capture_key for spec in plan.partitions]
    assert len(set(keys)) == 4
    assert plan.base_capture_key not in keys  # a slice is never the whole
    seeds = [spec.fault_seed for spec in plan.partitions]
    assert len(set(seeds)) == 4  # independent fault domains
    assert [spec.name for spec in plan.partitions] == [
        "p000", "p001", "p002", "p003",
    ]


def test_fleet_section_is_digest_neutral(tiny_scenario):
    tuned = tiny_scenario.with_overrides(
        {"fleet.partitions": 8, "fleet.max_parallel": 2}
    )
    assert tuned.digest() == tiny_scenario.digest()
    assert (
        plan_partitions(tuned, 2).base_capture_key
        == plan_partitions(tiny_scenario, 2).base_capture_key
    )


def test_fleet_section_validates(tiny_scenario):
    for bad in (
        {"fleet.partitions": 0},
        {"fleet.max_parallel": 0},
        {"fleet.straggler_timeout_s": 0},
        {"fleet.max_heals": -1},
    ):
        with pytest.raises(ScenarioError):
            tiny_scenario.with_overrides(bad)


# -- worker fault domains ----------------------------------------------------


def test_partition_fault_plan_scopes_kill_points(tiny_scenario):
    plan = plan_partitions(tiny_scenario, partitions=3)
    fleet_plan = FaultPlan(
        seed=7,
        kill_at=(
            "p001:stream:w0:spilled",
            "p000:stream:w1:committed",
            "stream:w0:committed",
            "fleet:merge",
        ),
    )
    mine = partition_fault_plan(fleet_plan, plan.partitions[1])
    assert mine.kill_at == ("stream:w0:spilled", "stream:w0:committed")
    assert mine.seed == plan.partitions[1].fault_seed
    other = partition_fault_plan(fleet_plan, plan.partitions[2])
    assert other.kill_at == ("stream:w0:committed",)  # untargeted arms everywhere
    healed = partition_fault_plan(fleet_plan, plan.partitions[1], heal=True)
    assert healed.kill_at == ()  # heals resume clean
    assert partition_fault_plan(None, plan.partitions[0]) is None
    assert partition_kill_prefix(1) == "p001:"


def test_checkpoint_progress():
    done = Checkpoint(capture_key="k", n_windows=4, windows_done=4, rollup_digest="d")
    half = Checkpoint(capture_key="k", n_windows=4, windows_done=2, rollup_digest="d")
    empty = Checkpoint(capture_key="k", n_windows=4, windows_done=0, rollup_digest="d")
    assert done.progress() == 1.0
    assert half.progress() == 0.5
    assert empty.progress() == 0.0
    degenerate = Checkpoint(
        capture_key="k", n_windows=0, windows_done=0, rollup_digest="d"
    )
    assert degenerate.progress() == 1.0


def test_resolve_workers_divides_affinity_across_slots():
    affinity = resolve_workers(0)
    assert resolve_workers(0, slots=affinity + 5) == 1  # floor at one
    assert resolve_workers(0, slots=1) == affinity
    assert resolve_workers(3, slots=8) == 3  # explicit counts are verbatim
    with pytest.raises(ValueError):
        resolve_workers(0, slots=0)


# -- the acceptance oracle ---------------------------------------------------


def test_fleet_digest_matches_single_stream(
    tiny_scenario, reference_digest, tmp_path
):
    result = run_fleet_capture(
        tiny_scenario, tmp_path / "fleet", partitions=3, max_parallel=2
    )
    assert result.digest == reference_digest
    assert [state.status for state in result.states] == ["done"] * 3
    assert result.total_heals == 0
    # the merged artifact reloads to the same bytes
    assert result.merged_path == tmp_path / "fleet" / MERGED_ROLLUP
    assert StreamRollup.load(result.merged_path).state_digest() == reference_digest
    manifest = load_fleet_manifest(tmp_path / "fleet")
    assert manifest["status"] == "complete"
    assert manifest["merged_digest"] == reference_digest
    telemetry = json.loads((tmp_path / "fleet" / FLEET_TELEMETRY).read_text())
    assert [row["partition"] for row in telemetry] == ["p000", "p001", "p002"]
    assert all(row["status"] == "done" for row in telemetry)
    assert sum(row["flows"] for row in telemetry) > 0
    rendered = render_fleet_telemetry(result.telemetry_rows)
    assert "Partition" in rendered and "p002" in rendered and "total" in rendered


def test_single_partition_fleet_matches(tiny_scenario, reference_digest, tmp_path):
    result = run_fleet_capture(tiny_scenario, tmp_path / "fleet", partitions=1)
    assert result.digest == reference_digest


def test_fleet_heals_sigkilled_worker(tiny_scenario, reference_digest, tmp_path):
    chaos = FaultPlan(kill_at=("p001:stream:w0:spilled",))
    result = run_fleet_capture(
        tiny_scenario,
        tmp_path / "fleet",
        partitions=3,
        max_parallel=2,
        faults=chaos,
    )
    assert result.digest == reference_digest  # bit-identical across the crash
    assert result.states[1].heals == 1
    assert result.states[0].heals == result.states[2].heals == 0
    manifest = load_fleet_manifest(tmp_path / "fleet")
    assert manifest["partitions"][1]["heals"] == 1
    assert manifest["status"] == "complete"


def test_fleet_gives_up_after_max_heals(tiny_scenario, tmp_path):
    scenario = tiny_scenario.with_overrides({"fleet.max_heals": 0})
    chaos = FaultPlan(kill_at=("p000:stream:w0:spilled",))
    with pytest.raises(CaptureError, match="p000 failed"):
        run_fleet_capture(
            scenario, tmp_path / "fleet", partitions=2, faults=chaos
        )
    manifest = load_fleet_manifest(tmp_path / "fleet")
    assert manifest["status"] == "failed"


def test_straggler_is_killed_and_healed(
    tiny_scenario, reference_digest, tmp_path, monkeypatch
):
    def stalling_entry(scenario, partition, directory, heal=False, faults=None):
        if partition.index == 1 and not heal:
            time.sleep(60)  # never checkpoints: a true straggler
        partition_process_entry(
            scenario, partition, directory, heal=heal, faults=faults
        )

    # the fork inherits the patched symbol the coordinator spawns with
    monkeypatch.setattr(
        fleet_coordinator, "partition_process_entry", stalling_entry
    )
    result = run_fleet_capture(
        tiny_scenario,
        tmp_path / "fleet",
        partitions=2,
        max_parallel=2,
        straggler_timeout_s=2.0,
    )
    assert result.digest == reference_digest
    assert result.states[1].straggler_kills == 1
    assert result.states[1].heals == 1
    assert result.states[0].straggler_kills == 0


# -- coordinator resume ------------------------------------------------------


def test_fresh_directory_refuses_silent_overwrite(tiny_scenario, tmp_path):
    run_fleet_capture(tiny_scenario, tmp_path / "fleet", partitions=2)
    with pytest.raises(FileExistsError):
        run_fleet_capture(tiny_scenario, tmp_path / "fleet", partitions=2)


def test_resume_without_manifest_fails(tiny_scenario, tmp_path):
    with pytest.raises(FileNotFoundError):
        run_fleet_capture(
            tiny_scenario, tmp_path / "fleet", partitions=2, resume=True
        )


def test_resume_of_complete_fleet_is_idempotent(
    tiny_scenario, reference_digest, tmp_path
):
    first = run_fleet_capture(tiny_scenario, tmp_path / "fleet", partitions=2)
    attempts = [state.attempts for state in first.states]
    again = run_fleet_capture(
        tiny_scenario, tmp_path / "fleet", partitions=2, resume=True
    )
    assert again.digest == reference_digest
    # no partition re-ran: the manifest short-circuit reused the capture
    assert [state.attempts for state in again.states] == attempts
    assert all(state.status == "done" for state in again.states)


def test_resume_rebuilds_missing_merge_without_rerunning(
    tiny_scenario, reference_digest, tmp_path
):
    first = run_fleet_capture(tiny_scenario, tmp_path / "fleet", partitions=2)
    (tmp_path / "fleet" / MERGED_ROLLUP).unlink()  # coordinator died pre-merge
    again = run_fleet_capture(
        tiny_scenario, tmp_path / "fleet", partitions=2, resume=True
    )
    assert again.digest == reference_digest
    assert [state.attempts for state in again.states] == [
        state.attempts for state in first.states
    ]  # partitions were complete on disk: only the merge re-ran


def test_resume_rejects_changed_partition_count(tiny_scenario, tmp_path):
    run_fleet_capture(tiny_scenario, tmp_path / "fleet", partitions=2)
    with pytest.raises(ValueError, match="partition counts"):
        run_fleet_capture(
            tiny_scenario, tmp_path / "fleet", partitions=3, resume=True
        )


def test_resume_rejects_different_scenario(tiny_scenario, tmp_path):
    run_fleet_capture(tiny_scenario, tmp_path / "fleet", partitions=2)
    other = tiny_scenario.with_overrides({"workload.seed": 9999})
    with pytest.raises(ValueError, match="different scenario"):
        run_fleet_capture(other, tmp_path / "fleet", partitions=2, resume=True)


def test_fleet_kill_points_enumerate_coordinator_lifecycle():
    points = fleet_kill_points(2)
    assert points == [
        "fleet:init",
        "fleet:planned",
        "fleet:p000:done",
        "fleet:p001:done",
        "fleet:merge",
        "fleet:done",
    ]


def test_merge_refuses_incomplete_partition(tiny_scenario, tmp_path):
    plan = plan_partitions(tiny_scenario, partitions=2)
    for spec in plan.partitions:
        run_partition(
            tiny_scenario,
            spec,
            tmp_path / spec.name,
            max_windows=1 if spec.index == 1 else None,
        )
    assert load_checkpoint(tmp_path / "p001").complete is False
    with pytest.raises(CaptureError, match="incomplete"):
        merge_partition_captures([tmp_path / "p000", tmp_path / "p001"])


# -- CLI ---------------------------------------------------------------------


def _fleet_cli_args(directory: Path, *extra: str):
    return [
        "fleet",
        "--scenario",
        "baseline-geo",
        "--customers",
        "48",
        "--days",
        "2",
        "--set",
        "workload.n_shards=6",
        "--no-compress",
        "--dir",
        str(directory),
        *extra,
    ]


def test_cli_fleet_end_to_end(reference_digest, tmp_path, capsys):
    code = main(_fleet_cli_args(tmp_path / "fleet", "--partitions", "3"))
    out = capsys.readouterr().out
    assert code == 0
    assert "Fleet capture telemetry" in out
    assert f"merged digest {reference_digest}" in out
    assert "3 partitions" in out
    assert (tmp_path / "fleet" / FLEET_MANIFEST).exists()
    assert (tmp_path / "fleet" / FLEET_TELEMETRY).exists()


def test_cli_fleet_existing_dir_is_exit_2(tmp_path, capsys):
    assert main(_fleet_cli_args(tmp_path / "fleet", "--partitions", "2")) == 0
    capsys.readouterr()
    assert main(_fleet_cli_args(tmp_path / "fleet", "--partitions", "2")) == 2
    assert "cannot run fleet capture" in capsys.readouterr().err


def test_cli_fleet_resume_completes(reference_digest, tmp_path, capsys):
    assert main(_fleet_cli_args(tmp_path / "fleet", "--partitions", "2")) == 0
    capsys.readouterr()
    code = main(
        _fleet_cli_args(tmp_path / "fleet", "--partitions", "2", "--resume")
    )
    out = capsys.readouterr().out
    assert code == 0
    assert f"merged digest {reference_digest}" in out


def test_cli_fleet_rejects_bad_partition_count(tmp_path, capsys):
    with pytest.raises(SystemExit):
        main(_fleet_cli_args(tmp_path / "fleet", "--partitions", "0"))
