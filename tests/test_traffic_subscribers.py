"""Tests for population synthesis."""

import collections

import numpy as np
import pytest

from repro.internet.geo import COUNTRIES
from repro.internet.resolvers import RESOLVERS, ResolverCatalog
from repro.satcom.plans import PLAN_MIX_BY_CONTINENT, PLANS
from repro.traffic.profiles import country_profile
from repro.traffic.subscribers import SubscriberType, synthesize_population


@pytest.fixture(scope="module")
def population():
    return synthesize_population(2000, np.random.default_rng(7))


def test_population_size(population):
    assert len(population) == 2000
    ids = [s.customer_id for s in population.subscribers]
    assert len(set(ids)) == len(ids)


def test_country_shares_follow_figure2(population):
    counts = collections.Counter(s.country for s in population.subscribers)
    assert counts["Congo"] / len(population) == pytest.approx(0.20, abs=0.04)
    assert counts["Spain"] / len(population) == pytest.approx(0.16, abs=0.04)


def test_type_mix_by_continent(population):
    by_country = population.by_country()
    congo_types = collections.Counter(s.subscriber_type for s in by_country["Congo"])
    spain_types = collections.Counter(s.subscriber_type for s in by_country["Spain"])
    assert congo_types[SubscriberType.COMMUNITY] / len(by_country["Congo"]) > 0.3
    assert spain_types[SubscriberType.IDLE] / len(by_country["Spain"]) > 0.4
    assert spain_types[SubscriberType.COMMUNITY] / len(by_country["Spain"]) < 0.05


def test_plans_match_continent(population):
    for sub in population.subscribers:
        continent = COUNTRIES[sub.country].continent
        assert sub.plan_name in PLAN_MIX_BY_CONTINENT[continent]
        assert sub.plan_down_mbps == PLANS[sub.plan_name].down_mbps


def test_resolver_names_valid(population):
    for sub in population.subscribers:
        assert sub.resolver_name in RESOLVERS


def test_beam_fields_consistent(population):
    for sub in population.subscribers:
        assert sub.beam_id.startswith(sub.country.lower().replace(" ", "-"))
        assert 0 <= sub.beam_peak_utilization < 1
        assert 0 <= sub.beam_pep_load < 1


def test_multipliers_by_type(population):
    for sub in population.subscribers:
        if sub.subscriber_type == SubscriberType.IDLE:
            assert sub.volume_multiplier < 0.1
        elif sub.subscriber_type == SubscriberType.COMMUNITY:
            assert sub.volume_multiplier > 0.5
            assert sub.flow_multiplier == pytest.approx(1.2 * sub.volume_multiplier)


def test_daily_usage_calibrated_to_fig6(population):
    """Population-level expected daily usage ≈ the published rate."""
    for service, country, target in (
        ("Whatsapp", "Congo", 61.22),
        ("Netflix", "Ireland", 50.91),
        ("Spotify", "Spain", 45.20),
    ):
        subs = [s for s in population.subscribers if s.country == country]
        expected = np.mean([s.daily_use_prob.get(service, 0.0) for s in subs]) * 100
        assert expected == pytest.approx(target, abs=12), (service, country)


def test_restricted_countries():
    pop = synthesize_population(
        100, np.random.default_rng(1), countries=["Spain", "Congo"]
    )
    assert {s.country for s in pop.subscribers} == {"Spain", "Congo"}


def test_forced_resolver_catalog():
    pop = synthesize_population(
        50,
        np.random.default_rng(1),
        resolver_catalog=ResolverCatalog.forced("Operator-EU"),
    )
    assert {s.resolver_name for s in pop.subscribers} == {"Operator-EU"}


def test_invalid_size_rejected():
    with pytest.raises(ValueError):
        synthesize_population(0, np.random.default_rng(1))


def test_count_by_type_totals(population):
    counts = population.count_by_type()
    assert sum(counts.values()) == len(population)
