"""Corruption fuzz: every artifact class, three ways of tearing it.

Each on-disk artifact of a capture (window ``.npz``, ``manifest.json``,
``checkpoint.json``, ``rollup.npz``, cache entries) is truncated,
bit-flipped, and zeroed; the reader must answer with a diagnostic
:class:`CaptureError` (or, for the cache, quarantine-and-miss) — never
a raw decoder traceback, and never silently wrong data.
"""

import numpy as np
import pytest

from repro.analysis.source import CaptureError, load_capture
from repro.cache import CaptureCache
from repro.faults import FaultInjector, FaultPlan
from repro.stream import FlowStore, StreamConfig, load_checkpoint, run_stream_capture
from repro.stream.checkpoint import checkpoint_path, rollup_path
from repro.stream.rollup import StreamRollup
from repro.traffic.workload import WorkloadConfig, WorkloadGenerator

TINY = WorkloadConfig(n_customers=60, days=2, seed=13)


def _truncate(path):
    data = path.read_bytes()
    path.write_bytes(data[: len(data) // 2])


def _bit_flip(path):
    data = bytearray(path.read_bytes())
    data[len(data) // 2] ^= 0xFF
    path.write_bytes(bytes(data))


def _zero(path):
    path.write_bytes(b"")


MUTATIONS = {"truncate": _truncate, "bit-flip": _bit_flip, "zero-length": _zero}


@pytest.fixture()
def capture(tmp_path):
    config = StreamConfig(workload=TINY, window_days=1, compress=False)
    run_stream_capture(config, tmp_path / "cap")
    return tmp_path / "cap", config


@pytest.mark.parametrize("mutate", MUTATIONS.values(), ids=MUTATIONS.keys())
def test_corrupt_window_is_diagnosed(capture, mutate):
    capture_dir, _config = capture
    store = FlowStore.open(capture_dir)
    mutate(store.window_path(0))
    with pytest.raises(CaptureError, match="corrupt window file"):
        store.read_window(0)


@pytest.mark.parametrize("mutate", MUTATIONS.values(), ids=MUTATIONS.keys())
def test_corrupt_manifest_is_diagnosed(capture, mutate):
    capture_dir, _config = capture
    mutate(capture_dir / "manifest.json")
    with pytest.raises(CaptureError, match="corrupt capture manifest"):
        FlowStore.open(capture_dir)
    with pytest.raises(CaptureError, match="corrupt capture manifest"):
        load_capture(capture_dir)


@pytest.mark.parametrize("mutate", MUTATIONS.values(), ids=MUTATIONS.keys())
def test_corrupt_checkpoint_is_diagnosed(capture, mutate):
    capture_dir, config = capture
    mutate(checkpoint_path(capture_dir))
    with pytest.raises(CaptureError, match="corrupt checkpoint"):
        load_checkpoint(capture_dir)
    with pytest.raises(CaptureError, match="corrupt checkpoint"):
        run_stream_capture(config, capture_dir, resume=True)


@pytest.mark.parametrize("mutate", MUTATIONS.values(), ids=MUTATIONS.keys())
def test_corrupt_rollup_is_diagnosed(capture, mutate):
    capture_dir, _config = capture
    mutate(rollup_path(capture_dir))
    with pytest.raises(CaptureError, match="corrupt rollup state"):
        StreamRollup.load(rollup_path(capture_dir))


@pytest.mark.parametrize("mutate", MUTATIONS.values(), ids=MUTATIONS.keys())
def test_corrupt_rollup_heals_on_resume(capture, mutate):
    """The rollup is derived state: resume re-folds it from the committed
    windows instead of failing the capture."""
    capture_dir, config = capture
    clean_digest = load_checkpoint(capture_dir).rollup_digest
    mutate(rollup_path(capture_dir))
    injector = FaultInjector(FaultPlan())
    result = run_stream_capture(config, capture_dir, resume=True, faults=injector)
    assert result.complete
    assert result.rollup.state_digest() == clean_digest
    assert injector.stats.rollup_rebuilds == 1


def test_corrupt_rollup_with_wrong_schema(capture):
    capture_dir, _config = capture
    np.savez(rollup_path(capture_dir), meta=np.array("{}"))
    with pytest.raises(CaptureError, match="corrupt rollup state"):
        StreamRollup.load(rollup_path(capture_dir))


@pytest.mark.parametrize("mutate", MUTATIONS.values(), ids=MUTATIONS.keys())
def test_corrupt_cache_entry_quarantines(tmp_path, mutate):
    cache = CaptureCache(directory=tmp_path)
    frame = WorkloadGenerator(TINY).generate()
    cache.store(TINY, frame)
    path = cache.path_for(TINY)
    mutate(path)
    assert cache.load(TINY) is None  # a miss, not a crash
    assert not path.exists()
    quarantined = cache.quarantine_path(path)
    assert quarantined.exists()
    assert cache.injector.stats.quarantined == 1
    # the miss regenerates and re-publishes over the quarantined name
    cache.store(TINY, frame)
    reloaded = cache.load(TINY)
    assert reloaded is not None
    from repro.analysis.dataset import _ARRAY_FIELDS

    for name in _ARRAY_FIELDS:
        x, y = getattr(frame, name), getattr(reloaded, name)
        nan_ok = np.issubdtype(x.dtype, np.floating)
        assert np.array_equal(x, y, equal_nan=nan_ok), name


def test_quarantined_entries_cleared_with_cache(tmp_path):
    cache = CaptureCache(directory=tmp_path)
    frame = WorkloadGenerator(TINY).generate()
    cache.store(TINY, frame)
    _zero(cache.path_for(TINY))
    assert cache.load(TINY) is None
    assert cache.quarantine_path(cache.path_for(TINY)).exists()
    cache.clear()
    assert list(tmp_path.iterdir()) == []
