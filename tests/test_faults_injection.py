"""Unit and integration tests for the deterministic fault layer.

Covers the injector mechanics (plan determinism, retry/backoff, torn
writes, kill-points, worker-crash purity), the ``atomic_write_bytes``
primitive, the scenario ``faults`` section, and the headline contract:
an armed chaos plan changes timing and retry counts, never a byte of
the generated capture.
"""

import multiprocessing
import os
import signal

import numpy as np
import pytest

from repro.faults import (
    DEFAULT_MAX_ATTEMPTS,
    FAULT_PROFILES,
    FaultInjector,
    FaultPlan,
    FaultStats,
    InjectedIOError,
    IoFault,
    NO_FAULTS,
    TruncateFault,
    WorkerCrash,
    atomic_write_bytes,
    resolve_injector,
)
from repro.scenario import ScenarioError, get_scenario
from repro.stream import StreamConfig, run_stream_capture
from repro.traffic.workload import WorkloadConfig

TINY = WorkloadConfig(n_customers=60, days=2, seed=5)


def _write_op(injector, op="io.write", payload=b"x" * 256, path=None):
    return atomic_write_bytes(
        path, lambda h: h.write(payload), injector=injector, op=op
    )


# -- plan determinism -------------------------------------------------------


def test_same_plan_same_faults(tmp_path):
    plan = FaultPlan(
        seed=3,
        io_faults=(IoFault(op="*", stage="write", rate=0.4),),
        backoff_base_s=0.0,
    )
    counts = []
    for run in range(2):
        injector = FaultInjector(plan, sleep=lambda _s: None)
        for i in range(20):
            _write_op(injector, path=tmp_path / f"r{run}-{i}.bin")
        counts.append(injector.stats.injected)
    assert counts[0] == counts[1]
    assert counts[0] > 0  # rate 0.4 over 20 ops must fire sometimes


def test_disabled_injector_never_fires(tmp_path):
    for injector in (NO_FAULTS, resolve_injector(None)):
        _write_op(injector, path=tmp_path / "ok.bin")
    assert NO_FAULTS.stats.injected == 0
    assert not NO_FAULTS.enabled


def test_resolve_injector_forms():
    plan = FaultPlan(seed=1)
    injector = FaultInjector(plan)
    assert resolve_injector(injector) is injector
    assert resolve_injector(plan).plan is plan
    assert resolve_injector(None) is NO_FAULTS


# -- retry with backoff -----------------------------------------------------


def test_injected_error_is_retried_with_backoff(tmp_path):
    sleeps = []
    plan = FaultPlan(io_faults=(IoFault(op="*", stage="write", fail_times=2),))
    injector = FaultInjector(plan, sleep=sleeps.append)
    size = _write_op(injector, path=tmp_path / "out.bin")
    assert size == 256
    assert (tmp_path / "out.bin").read_bytes() == b"x" * 256
    assert injector.stats.injected == 2
    assert injector.stats.retries == 2
    assert injector.stats.gave_up == 0
    # exponential growth modulo the +/-50% jitter: delay bounds double
    assert len(sleeps) == 2
    assert 0.025 <= sleeps[0] <= 0.075
    assert 0.05 <= sleeps[1] <= 0.15


def test_exhausted_retries_give_up(tmp_path):
    plan = FaultPlan(
        io_faults=(
            IoFault(op="*", stage="write", fail_times=DEFAULT_MAX_ATTEMPTS),
        )
    )
    injector = FaultInjector(plan, sleep=lambda _s: None)
    with pytest.raises(InjectedIOError, match="injected write failure"):
        _write_op(injector, path=tmp_path / "never.bin")
    assert injector.stats.gave_up == 1
    assert injector.stats.retries == DEFAULT_MAX_ATTEMPTS - 1
    assert not (tmp_path / "never.bin").exists()


def test_real_transient_oserror_is_retried():
    attempts = []

    def flaky(_ticket):
        attempts.append(1)
        if len(attempts) < 3:
            raise OSError("disk hiccup")
        return "ok"

    injector = FaultInjector(None, sleep=lambda _s: None)
    assert injector.run_io("op", flaky) == "ok"
    assert len(attempts) == 3
    assert injector.stats.retries == 2


def test_non_transient_errors_never_retried():
    attempts = []

    def missing(_ticket):
        attempts.append(1)
        raise FileNotFoundError("gone")

    injector = FaultInjector(FaultPlan(), sleep=lambda _s: None)
    with pytest.raises(FileNotFoundError):
        injector.run_io("op", missing)
    assert len(attempts) == 1
    assert injector.stats.retries == 0


def test_fault_targets_by_op_pattern(tmp_path):
    plan = FaultPlan(io_faults=(IoFault(op="cache.*", stage="write"),))
    injector = FaultInjector(plan, sleep=lambda _s: None)
    _write_op(injector, op="store.manifest", path=tmp_path / "a.bin")
    assert injector.stats.injected == 0
    _write_op(injector, op="cache.store", path=tmp_path / "b.bin")
    assert injector.stats.injected == 1


# -- atomic writes ----------------------------------------------------------


def test_atomic_write_leaves_no_temp_litter(tmp_path):
    plan = FaultPlan(
        io_faults=(
            IoFault(op="*", stage="rename", fail_times=DEFAULT_MAX_ATTEMPTS),
        )
    )
    injector = FaultInjector(plan, sleep=lambda _s: None)
    with pytest.raises(InjectedIOError):
        _write_op(injector, path=tmp_path / "torn.bin")
    _write_op(NO_FAULTS, path=tmp_path / "fine.bin")
    assert sorted(p.name for p in tmp_path.iterdir()) == ["fine.bin"]


def test_atomic_write_never_exposes_partial_target(tmp_path):
    target = tmp_path / "value.bin"
    target.write_bytes(b"old")
    plan = FaultPlan(
        io_faults=(
            IoFault(op="*", stage="fsync", fail_times=DEFAULT_MAX_ATTEMPTS),
        )
    )
    injector = FaultInjector(plan, sleep=lambda _s: None)
    with pytest.raises(InjectedIOError):
        _write_op(injector, path=target, payload=b"new-payload")
    assert target.read_bytes() == b"old"  # failed publish left the old file


def test_truncate_fault_publishes_torn_file(tmp_path):
    plan = FaultPlan(truncate_faults=(TruncateFault(op="*", fraction=0.25),))
    injector = FaultInjector(plan)
    size = _write_op(injector, path=tmp_path / "torn.bin", payload=b"y" * 400)
    assert size == 100
    assert (tmp_path / "torn.bin").stat().st_size == 100
    assert injector.stats.truncated == 1


# -- kill points ------------------------------------------------------------


def test_kill_point_sigkills_named_checkpoint():
    pid = os.fork()
    if pid == 0:  # child: must die at the kill point, never reach _exit(0)
        FaultInjector(FaultPlan(kill_at=("here",))).kill_point("here")
        os._exit(0)
    _, status = os.waitpid(pid, 0)
    assert os.WIFSIGNALED(status)
    assert os.WTERMSIG(status) == signal.SIGKILL


def test_kill_point_ignores_other_names():
    FaultInjector(FaultPlan(kill_at=("there",))).kill_point("here")
    NO_FAULTS.kill_point("here")  # disabled: never kills


# -- worker crashes ---------------------------------------------------------


def test_crash_worker_is_pure():
    plan = FaultPlan(seed=11, worker_crashes=(WorkerCrash(rate=0.5),))
    a = FaultInjector(plan)
    b = FaultInjector(plan)
    grid = [(w, s) for w in range(4) for s in range(4)]
    decisions = [a.crash_worker(w, s) for w, s in grid]
    assert decisions == [b.crash_worker(w, s) for w, s in grid]
    assert any(decisions) and not all(decisions)


def test_crash_worker_targets_cells():
    plan = FaultPlan(worker_crashes=(WorkerCrash(window=1, shard=2),))
    injector = FaultInjector(plan)
    assert injector.crash_worker(1, 2)
    assert not injector.crash_worker(1, 3)
    assert not injector.crash_worker(0, 2)
    assert not NO_FAULTS.crash_worker(1, 2)


@pytest.mark.skipif(
    "fork" not in multiprocessing.get_all_start_methods(),
    reason="needs fork workers",
)
def test_worker_crash_falls_back_bit_identical():
    from repro.parallel import generate_window_shards, plan_shards
    from repro.traffic.workload import WorkloadGenerator

    generator = WorkloadGenerator(WorkloadConfig(n_customers=300, days=2, seed=5))
    shards = plan_shards(300, 2)
    clean = generate_window_shards(generator, shards, 2, 0, 0, 1, n_workers=2)
    injector = FaultInjector(
        FaultPlan(worker_crashes=(WorkerCrash(rate=1.0),))
    )
    with pytest.warns(RuntimeWarning, match="worker process died"):
        chaotic = generate_window_shards(
            generator, shards, 2, 0, 0, 1, n_workers=2, injector=injector
        )
    assert injector.stats.worker_crashes >= 1
    assert len(clean) == len(chaotic)
    from repro.analysis.dataset import _ARRAY_FIELDS

    for a, b in zip(clean, chaotic):
        assert (a is None) == (b is None)
        if a is not None:
            for name in _ARRAY_FIELDS:
                x, y = getattr(a, name), getattr(b, name)
                nan_ok = np.issubdtype(x.dtype, np.floating)
                assert np.array_equal(x, y, equal_nan=nan_ok), name


# -- stats ------------------------------------------------------------------


def test_fault_stats_copy_delta_summary():
    stats = FaultStats(injected=3, retries=2, truncated=1, worker_crashes=1)
    before = stats.copy()
    stats.injected += 2
    delta = stats.delta(before)
    assert delta.injected == 2 and delta.retries == 0
    assert stats.faults == 5 + 1 + 1
    assert "5 io injected" in stats.summary()
    assert "2 retries" in stats.summary()


# -- scenario section -------------------------------------------------------


def test_scenario_faults_default_disabled_and_digest_neutral():
    baseline = get_scenario("baseline-geo")
    assert baseline.fault_plan() is None
    chaotic = baseline.with_overrides(
        {"faults.profile": "flaky-disk", "faults.seed": 9}
    )
    plan = chaotic.fault_plan()
    assert plan is not None and plan.seed == 9
    assert plan.io_faults == FAULT_PROFILES["flaky-disk"].io_faults
    # chaos is execution-only: the content digest cannot move
    assert chaotic.digest() == baseline.digest()
    assert chaotic.stream_config().capture_key() == (
        baseline.stream_config().capture_key()
    )


def test_scenario_faults_knobs_layer_on_profile():
    scenario = get_scenario("baseline-geo").with_overrides(
        {
            "faults.io_error_rate": 0.2,
            "faults.io_fail_times": 2,
            "faults.fsync_error_rate": 0.1,
            "faults.worker_crash_rate": 0.3,
            "faults.kill_at": ["stream:init"],
        }
    )
    plan = scenario.fault_plan()
    stages = {(f.stage, f.rate, f.fail_times) for f in plan.io_faults}
    assert ("write", 0.2, 2) in stages
    assert ("fsync", 0.1, 2) in stages
    assert plan.worker_crashes == (WorkerCrash(rate=0.3),)
    assert plan.kill_at == ("stream:init",)


def test_scenario_rejects_bad_faults():
    base = get_scenario("baseline-geo")
    with pytest.raises(ScenarioError, match="unknown fault profile"):
        base.with_overrides({"faults.profile": "nope"})
    with pytest.raises(ScenarioError, match="io_error_rate"):
        base.with_overrides({"faults.io_error_rate": 1.5})
    with pytest.raises(ScenarioError, match="io_fail_times"):
        base.with_overrides({"faults.io_fail_times": 0})


# -- end to end: chaos never changes the capture ----------------------------


def test_flaky_disk_stream_is_bit_identical(tmp_path):
    config = StreamConfig(workload=TINY, window_days=1, compress=False)
    clean = run_stream_capture(config, tmp_path / "clean")
    chaotic = run_stream_capture(
        config,
        tmp_path / "chaos",
        faults=FAULT_PROFILES["flaky-disk"],
    )
    assert chaotic.rollup.state_digest() == clean.rollup.state_digest()
    assert chaotic.fault_stats.injected > 0
    assert chaotic.fault_stats.retries > 0
    assert chaotic.fault_stats.gave_up == 0
    # the counters land in the per-window telemetry (the final
    # checkpoint write commits its own row, so only its faults can be
    # missing from the rows), and nowhere on the clean run
    rows_faults = sum(t.faults for t in chaotic.telemetry)
    assert 0 < rows_faults <= chaotic.fault_stats.faults
    assert sum(t.io_retries for t in chaotic.telemetry) <= (
        chaotic.fault_stats.retries
    )
    assert all(t.faults == 0 and t.io_retries == 0 for t in clean.telemetry)


def test_fault_counters_render_in_telemetry(tmp_path):
    from repro.stream import render_telemetry

    result = run_stream_capture(
        StreamConfig(workload=TINY, window_days=1, compress=False),
        tmp_path / "cap",
        faults=FaultPlan(
            io_faults=(IoFault(op="checkpoint.write", stage="write"),),
            backoff_base_s=0.0,
        ),
    )
    table = render_telemetry(result.telemetry)
    assert "Faults" in table and "Retries" in table
    assert result.fault_stats.injected == len(result.telemetry)


def test_cli_stream_prints_fault_summary(tmp_path, capsys):
    from repro.cli import main

    code = main(
        [
            "stream",
            "--dir",
            str(tmp_path / "cap"),
            "--customers",
            "60",
            "--days",
            "2",
            "--set",
            "faults.profile=flaky-disk",
        ]
    )
    assert code == 0
    out = capsys.readouterr().out
    assert "faults:" in out
    assert " retries" in out
