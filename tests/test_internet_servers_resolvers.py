"""Tests for CDN footprints/selection and the resolver ecosystem."""

import numpy as np
import pytest

from repro.internet.geo import COUNTRIES, GROUND_STATION, SERVER_SITES
from repro.internet.latency import LatencyModel
from repro.internet.resolvers import RESOLVERS, RESOLVER_SHARES, ResolverCatalog
from repro.internet.servers import FOOTPRINTS, SelectionPolicy, deployment
from repro.traffic.services import SERVICES


def test_all_service_footprints_exist():
    for svc in SERVICES.values():
        assert svc.footprint in FOOTPRINTS, svc.name


def test_footprint_sites_resolve():
    for footprint in FOOTPRINTS.values():
        for site in footprint.sites():
            assert site.name in SERVER_SITES


def test_dns_policy_picks_node_near_perceived_client():
    dep = deployment("test", "global-cdn", SelectionPolicy.DNS_RESOLVER_GEO)
    site_for_nigeria = dep.select_site(COUNTRIES["Nigeria"], GROUND_STATION)
    site_for_uk = dep.select_site(COUNTRIES["UK"], GROUND_STATION)
    assert site_for_nigeria.name == "Lagos"
    assert site_for_uk.name == "London"


def test_anycast_ignores_perceived_client():
    dep = deployment("test", "video-cdn", SelectionPolicy.ANYCAST)
    latency = LatencyModel()
    a = dep.select_site(COUNTRIES["Nigeria"], GROUND_STATION, latency)
    b = dep.select_site(COUNTRIES["UK"], GROUND_STATION, latency)
    assert a.name == b.name == "Milan-IX"  # nearest to the Italian egress


def test_origin_policy_single_site():
    dep = deployment("test", "us-cloud-east", SelectionPolicy.ORIGIN)
    assert dep.select_site(COUNTRIES["Congo"], GROUND_STATION).name == "US-East"


def test_apple_footprint_has_no_african_nodes():
    """Key to Table 2: Apple's CDN serves Africa from Europe/Asia."""
    sites = {s.continent for s in FOOTPRINTS["apple-cdn"].sites()}
    assert "Africa" not in sites


# --- resolvers -----------------------------------------------------------


def test_resolver_medians_match_figure10(rng):
    """Median response times within ±20 % of the paper's column."""
    targets = {
        "Operator-EU": 3.98,
        "Google": 21.98,
        "CloudFlare": 19.97,
        "Nigerian": 119.98,
        "Open DNS": 17.99,
        "Level3": 23.99,
        "Baidu": 355.97,
        "114DNS": 109.98,
        "Other": 29.97,
    }
    latency = LatencyModel()
    for name, target in targets.items():
        samples = RESOLVERS[name].sample_response_ms(latency, rng, 6000)
        assert np.median(samples) == pytest.approx(target, rel=0.20), name


def test_cache_misses_add_upstream_latency(rng):
    latency = LatencyModel()
    resolver = RESOLVERS["Google"]
    samples = resolver.sample_response_ms(latency, rng, 8000)
    # the miss tail should push p99 well above the median
    assert np.quantile(samples, 0.99) > 3 * np.median(samples)


def test_ecs_perceived_location(rng):
    google = RESOLVERS["Google"]
    outcomes = {
        google.perceived_client(COUNTRIES["Nigeria"], rng).name for _ in range(200)
    }
    assert "Nigeria" in outcomes  # ECS sometimes reveals the country
    assert google.egress.name in outcomes  # and sometimes not

    cloudflare = RESOLVERS["CloudFlare"]
    outcomes = {
        cloudflare.perceived_client(COUNTRIES["Nigeria"], rng).name for _ in range(50)
    }
    assert outcomes == {cloudflare.egress.name}  # no ECS → always egress


def test_catalog_mixes_normalized():
    catalog = ResolverCatalog()
    for country in list(RESOLVER_SHARES) + ["Germany", "Kenya"]:
        continent = COUNTRIES[country].continent
        names, weights = catalog.names_and_weights(country, continent)
        assert len(names) == len(weights)
        assert weights.sum() == pytest.approx(1.0)
        assert np.all(weights >= 0)


def test_catalog_choice_follows_shares(rng):
    catalog = ResolverCatalog()
    draws = [catalog.choose("Congo", "Africa", rng).name for _ in range(3000)]
    google_share = draws.count("Google") / len(draws)
    assert google_share == pytest.approx(0.8568, abs=0.04)


def test_forced_catalog():
    catalog = ResolverCatalog.forced("Operator-EU")
    for country in ("Congo", "UK", "Kenya"):
        mix = catalog.mix_for(country, COUNTRIES[country].continent)
        assert mix == {"Operator-EU": 100.0}
    assert catalog.mix_override() == "Operator-EU"
    with pytest.raises(KeyError):
        ResolverCatalog.forced("NoSuchResolver")


def test_by_address_reverse_lookup():
    catalog = ResolverCatalog()
    google = RESOLVERS["Google"]
    assert catalog.by_address(google.address).name == "Google"
    assert catalog.by_address(1) is None
