"""Tests for the beam map and the analytic satellite-RTT model."""

import numpy as np
import pytest

from repro.internet.geo import COUNTRIES
from repro.satcom.beams import Beam, BeamMap, build_default_beam_map
from repro.satcom.delay_model import SatelliteRttModel, local_hour
from repro.traffic.profiles import TOP_COUNTRIES


@pytest.fixture(scope="module")
def beam_map():
    return build_default_beam_map()


@pytest.fixture(scope="module")
def model():
    return SatelliteRttModel()


def test_every_country_covered(beam_map):
    for country in COUNTRIES:
        assert len(beam_map.beams_for(country)) >= 1


def test_beam_assignment_round_robin(beam_map):
    beams = beam_map.beams_for("Nigeria")
    assigned = [beam_map.assign_beam("Nigeria", i).beam_id for i in range(len(beams) * 2)]
    assert assigned[: len(beams)] == [b.beam_id for b in beams]
    assert assigned[len(beams)] == beams[0].beam_id


def test_beam_validation():
    with pytest.raises(ValueError):
        Beam("x", "Spain", 1.0, peak_utilization=1.0, pep_load=0.5)
    with pytest.raises(ValueError):
        Beam("x", "Spain", 1.0, peak_utilization=0.5, pep_load=-0.1)


def test_utilization_diurnal_and_bounded(beam_map):
    beam = beam_map.beams_for("Congo")[0]
    values = [beam_map.utilization(beam, h) for h in range(24)]
    assert all(0.0 <= v < 1.0 for v in values)
    # African load peaks higher in the day than the nightly floor
    assert max(values) > 1.5 * min(values)


def test_pep_utilization_flatter_than_radio(beam_map):
    """PEP load stays high at night (Section 6.1's Congo anomaly)."""
    beam = beam_map.beams_for("Congo")[0]
    radio_night = beam_map.utilization(beam, 3.0)
    pep_night = beam_map.pep_utilization(beam, 3.0)
    assert pep_night > radio_night


def test_bulk_matches_scalar(beam_map):
    beam = beam_map.beams_for("Spain")[0]
    hours = np.array([3.0, 12.0, 19.0])
    bulk = beam_map.utilization_bulk(
        np.full(3, beam.peak_utilization), hours, "Europe"
    )
    scalar = [beam_map.utilization(beam, h) for h in hours]
    assert np.allclose(bulk, scalar)


def test_local_hour_conversion():
    assert local_hour(COUNTRIES["UK"], 12.0) == pytest.approx(12.0, abs=0.2)
    assert local_hour(COUNTRIES["Kenya"], 12.0) == pytest.approx(14.45, abs=0.3)


def test_floor_above_propagation(model):
    for country in TOP_COUNTRIES:
        floor = model.floor_rtt_s(country)
        assert floor > model.geometry.propagation_rtt_s(COUNTRIES[country])


def test_sampled_rtt_above_550ms_floor(model, rng):
    """Headline number: the total RTT is 'higher than 550 ms'."""
    for country in TOP_COUNTRIES:
        samples = model.sample_handshake_rtt_s(country, 20.0, rng, 2000)
        assert samples.min() > 0.52
        assert np.median(samples) > 0.55


def test_spain_night_mostly_under_1s(model, rng):
    hour_utc = (3.0 - COUNTRIES["Spain"].lon_deg / 15.0) % 24
    samples = model.sample_handshake_rtt_s("Spain", hour_utc, rng, 6000)
    fraction = (samples < 1.0).mean()
    assert 0.70 <= fraction <= 0.92  # paper: 82 %


def test_congo_heavy_tail_even_at_night(model, rng):
    hour_utc = (3.0 - COUNTRIES["Congo"].lon_deg / 15.0) % 24
    beams = model.beam_map.beams_for("Congo")
    samples = np.concatenate(
        [model.sample_handshake_rtt_s("Congo", hour_utc, rng, 3000, beam=b) for b in beams]
    )
    assert (samples > 2.0).mean() > 0.08  # paper: ~20 %


def test_congo_worse_at_peak(model, rng):
    night_utc = (3.0 - COUNTRIES["Congo"].lon_deg / 15.0) % 24
    peak_utc = (19.0 - COUNTRIES["Congo"].lon_deg / 15.0) % 24
    night = np.median(model.sample_handshake_rtt_s("Congo", night_utc, rng, 4000))
    peak = np.median(model.sample_handshake_rtt_s("Congo", peak_utc, rng, 4000))
    assert peak > night


def test_ireland_tail_load_independent(model, rng):
    """Ireland's impairments are channel-driven: night ≈ peak."""
    night_utc = (3.0 - COUNTRIES["Ireland"].lon_deg / 15.0) % 24
    peak_utc = (19.0 - COUNTRIES["Ireland"].lon_deg / 15.0) % 24
    night = model.sample_handshake_rtt_s("Ireland", night_utc, rng, 6000)
    peak = model.sample_handshake_rtt_s("Ireland", peak_utc, rng, 6000)
    tail_night = (night > 1.3).mean()
    tail_peak = (peak > 1.3).mean()
    assert tail_night > 0.05
    assert abs(tail_night - tail_peak) < 0.1


def test_ireland_worse_than_uk(model, rng):
    samples = {
        c: model.sample_handshake_rtt_s(
            c, (21.0 - COUNTRIES[c].lon_deg / 15.0) % 24, rng, 6000
        )
        for c in ("Ireland", "UK")
    }
    assert (samples["Ireland"] > 1.3).mean() > (samples["UK"] > 1.3).mean()


def test_data_rtt_cheaper_than_handshake(model, rng):
    hs = model.sample_handshake_rtt_s("Congo", 19.0, rng, 4000).mean()
    data = model.sample_data_rtt_s("Congo", 19.0, rng, 4000).mean()
    assert data < hs


def test_bulk_sampler_consistent_with_scalar(model, rng):
    """The vectorized path must reproduce the scalar path's distribution."""
    country = "Nigeria"
    beam = model.beam_map.beams_for(country)[0]
    hour_utc = 20.0
    hour_loc = local_hour(COUNTRIES[country], hour_utc)
    n = 8000
    scalar = model.sample_handshake_rtt_s(country, hour_utc, rng, n, beam=beam)
    util = np.full(n, model.beam_map.utilization(beam, hour_loc))
    pep = np.full(n, model.beam_map.pep_utilization(beam, hour_loc))
    bulk = model.sample_handshake_rtt_bulk(country, util, pep, rng)
    assert np.median(bulk) == pytest.approx(np.median(scalar), rel=0.1)
    assert (bulk > 2.0).mean() == pytest.approx((scalar > 2.0).mean(), abs=0.05)


def test_median_beam_rtt_reports_congestion(model, rng):
    congested = model.beam_map.beams_for("Congo")[0]
    light = model.beam_map.beams_for("Spain")[0]
    assert model.median_beam_rtt_s(congested, 18.0, rng) > model.median_beam_rtt_s(
        light, 18.0, rng
    )
