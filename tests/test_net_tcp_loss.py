"""Tests for TCP retransmission over lossy links."""

import numpy as np
import pytest

from repro.net.tcp import TcpEndpoint
from repro.simnet.engine import Simulator
from repro.simnet.link import Link


class _LossyPair:
    """Endpoints joined by links that drop packets at random."""

    def __init__(self, loss: float, seed: int = 0, rto: float = 0.2):
        self.sim = Simulator()
        rng = np.random.default_rng(seed)
        self.link_ab = Link(self.sim, prop_delay_s=0.01, loss_probability=loss, rng=rng)
        self.link_ba = Link(self.sim, prop_delay_s=0.01, loss_probability=loss, rng=rng)
        self.received = bytearray()
        self.b = None
        self.a = TcpEndpoint(
            self.sim, 1, 10, 2, 20,
            send_packet=lambda p: self.link_ab.send(p, p.size_bytes, lambda q: self.b.handle_packet(q)),
            rto_s=rto,
        )
        self.b = TcpEndpoint(
            self.sim, 2, 20, 1, 10,
            send_packet=lambda p: self.link_ba.send(p, p.size_bytes, self.a.handle_packet),
            on_data=self.received.extend,
            rto_s=rto,
        )


def test_loss_probability_validated():
    sim = Simulator()
    with pytest.raises(ValueError):
        Link(sim, loss_probability=1.0, rng=np.random.default_rng(0))
    with pytest.raises(ValueError):
        Link(sim, loss_probability=0.1)  # rng required


def test_link_drops_fraction(rng):
    sim = Simulator()
    link = Link(sim, loss_probability=0.3, rng=rng)
    delivered = []
    for i in range(2000):
        link.send(i, 10, delivered.append)
    sim.run()
    assert len(delivered) == pytest.approx(1400, abs=120)
    assert link.stats.packets_dropped == 2000 - len(delivered)


@pytest.mark.parametrize("loss,seed", [(0.05, 1), (0.15, 2), (0.30, 3)])
def test_transfer_survives_loss(loss, seed):
    pair = _LossyPair(loss=loss, seed=seed)
    pair.b.listen()
    pair.a.connect()
    pair.sim.run(until=30.0)
    assert pair.a.is_established
    # (b may still sit in SYN_RCVD if the final handshake ACK was lost —
    # the first data segment completes it, as in real TCP.)
    payload = bytes(range(256)) * 80  # 20 480 bytes
    pair.a.send(payload)
    pair.sim.run(until=120.0)
    assert pair.b.is_established
    assert bytes(pair.received) == payload
    if loss >= 0.15:
        assert pair.a.retransmissions > 0


def test_handshake_survives_syn_loss():
    """Even if the very first SYN is dropped, the timer recovers."""

    class _FirstDropRng:
        def __init__(self):
            self.calls = 0

        def random(self):
            self.calls += 1
            return 0.0 if self.calls == 1 else 1.0

    sim = Simulator()
    rng = _FirstDropRng()
    link_ab = Link(sim, prop_delay_s=0.01, loss_probability=0.5, rng=rng)
    link_ba = Link(sim, prop_delay_s=0.01)
    b = None
    a = TcpEndpoint(
        sim, 1, 10, 2, 20,
        send_packet=lambda p: link_ab.send(p, p.size_bytes, lambda q: b.handle_packet(q)),
        rto_s=0.1,
    )
    b = TcpEndpoint(
        sim, 2, 20, 1, 10,
        send_packet=lambda p: link_ba.send(p, p.size_bytes, a.handle_packet),
    )
    b.listen()
    a.connect()
    sim.run(until=5.0)
    assert a.is_established
    assert a.retransmissions >= 1


def test_close_completes_despite_fin_loss():
    pair = _LossyPair(loss=0.25, seed=9)
    pair.b.listen()
    pair.a.connect()
    pair.sim.run(until=30.0)
    pair.a.send(b"goodbye")
    pair.a.close()
    pair.sim.run(until=60.0)
    pair.b.close()
    pair.sim.run(until=120.0)
    assert bytes(pair.received) == b"goodbye"
    assert pair.a.is_closed


def test_no_rto_means_no_retransmissions():
    pair = _LossyPair(loss=0.0, seed=1)
    pair.a.rto_s = None
    pair.b.listen()
    pair.a.connect()
    pair.sim.run()
    pair.a.send(b"x" * 5000)
    pair.sim.run()
    assert pair.a.retransmissions == 0
    assert bytes(pair.received) == b"x" * 5000


def test_karn_discards_samples_under_loss():
    """End-to-end: the flow meter's Karn rule keeps RTT statistics sane
    when it observes retransmissions."""
    from repro.flowmeter.meter import FlowMeter
    from repro.net.packet import IPProtocol

    pair = _LossyPair(loss=0.2, seed=4)
    meter = FlowMeter()

    original_ab = pair.a._send_packet
    original_ba = pair.b._send_packet

    def tap_ab(p):
        import dataclasses
        meter.process(dataclasses.replace(p, timestamp=pair.sim.now))
        original_ab(p)

    def tap_ba(p):
        import dataclasses
        meter.process(dataclasses.replace(p, timestamp=pair.sim.now))
        original_ba(p)

    pair.a._send_packet = tap_ab
    pair.b._send_packet = tap_ba
    pair.b.listen()
    pair.a.connect()
    pair.sim.run(until=30.0)
    pair.a.send(b"d" * 30_000)
    pair.sim.run(until=120.0)
    meter.flush_all()
    record = meter.records[0]
    # retransmitted ranges must not inflate the RTT estimate: every
    # surviving sample reflects the 20 ms path (plus queueing), never
    # an RTO-scale (200 ms+) ambiguity.
    if record.rtt_samples:
        assert record.rtt_max_ms < 150.0
