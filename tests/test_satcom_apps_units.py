"""Direct unit tests of the endpoint application state machines."""

import pytest

from repro.protocols import http, quic, rtp
from repro.satcom.apps import (
    HttpClientApp,
    HttpServerApp,
    QuicClientApp,
    RtpSessionApp,
    TlsClientApp,
    TlsServerApp,
)
from repro.simnet.engine import Simulator


# --- HTTP client -----------------------------------------------------------


def test_http_client_reads_content_length_across_chunks():
    sim = Simulator()
    sent = []
    app = HttpClientApp(sim, "files.example", "/blob")
    app.start(sent.append, lambda: None)
    assert http.extract_host(sent[0]) == "files.example"

    response = http.encode_response(1000)
    for offset in range(0, len(response), 97):  # awkward chunking
        app.on_data(response[offset : offset + 97])
    assert app.complete
    assert app.bytes_received == 1000


def test_http_client_waits_for_full_body():
    sim = Simulator()
    app = HttpClientApp(sim, "files.example")
    app.start(lambda d: None, lambda: None)
    response = http.encode_response(500)
    app.on_data(response[:-100])
    assert not app.complete
    app.on_data(response[-100:])
    assert app.complete


def test_http_server_responds_once():
    sent = []
    closed = []
    server = HttpServerApp(sent.append, lambda: closed.append(True), response_bytes=10)
    server.on_data(http.encode_request("h.example"))
    server.on_data(http.encode_request("h.example"))
    assert len(sent) == 1
    assert closed == [True]


# --- QUIC client -----------------------------------------------------------


def test_quic_client_counts_bytes():
    sim = Simulator()
    app = QuicClientApp(sim, "q.example", expected_response_bytes=3000)
    datagram = app.initial_datagram()
    assert quic.extract_sni(datagram) == "q.example"
    for _ in range(3):
        app.on_datagram(b"\x40" + b"\x00" * 1199, now=1.0)
    assert app.complete
    assert app.bytes_received >= 3000
    assert app.first_byte_at == 1.0


def test_quic_client_finishes_once():
    sim = Simulator()
    finished = []
    app = QuicClientApp(sim, "q.example", expected_response_bytes=10,
                        on_finished=lambda a: finished.append(a))
    app.initial_datagram()
    app.on_datagram(b"\x40" * 20, now=0.5)
    app.on_datagram(b"\x40" * 20, now=0.6)
    assert finished == [app]
    assert app.finished_at == 0.5


# --- RTP session -------------------------------------------------------------


def test_rtp_session_paces_packets():
    sim = Simulator()
    sent_times = []
    app = RtpSessionApp(sim, n_packets=5, interval_s=0.02)
    app.start(lambda payload: sent_times.append(sim.now))
    sim.run()
    assert len(sent_times) == 5
    gaps = [b - a for a, b in zip(sent_times, sent_times[1:])]
    assert all(gap == pytest.approx(0.02) for gap in gaps)


def test_rtp_session_round_trips():
    sim = Simulator()
    app = RtpSessionApp(sim, n_packets=3, interval_s=0.01)
    outbox = []
    app.start(outbox.append)
    sim.run()
    for i, payload in enumerate(outbox):
        app.on_datagram(payload, now=0.01 * i + 0.6)
    assert app.echoes == 3
    assert all(0.5 < rtt < 0.7 for rtt in app.round_trips_s)


def test_rtp_session_ignores_garbage_echo():
    sim = Simulator()
    app = RtpSessionApp(sim, n_packets=1)
    app.start(lambda p: None)
    sim.run()
    app.on_datagram(b"not rtp", now=1.0)
    assert app.echoes == 0


# --- TLS server guard rails ----------------------------------------------------


def test_tls_server_single_response():
    sent = []
    server = TlsServerApp(sent.append, lambda: None, response_bytes=100)
    from repro.protocols import tls

    server.on_data(tls.client_hello("a.b"))
    server.on_data(tls.client_key_exchange())
    server.on_data(tls.application_data(300))
    server.on_data(tls.application_data(300))  # second request ignored
    # flight1 (SH) + finished + one response
    assert len(sent) == 3


def test_tls_client_records_timeline():
    sim = Simulator()
    from repro.protocols import tls

    app = TlsClientApp(sim, "t.example", expected_response_bytes=50, compute_delay_s=0.02)
    sent = []
    app.start(sent.append, lambda: None)
    app.on_data(tls.server_hello())
    sim.run()  # lets the compute delay elapse
    assert app.result.sent_key_exchange_at == pytest.approx(0.02)
    app.on_data(tls.application_data(50))
    assert app.result.complete
    assert app.key_exchange_compute_s == pytest.approx(0.02)
