"""Seed robustness: the reproduction's headline shapes must not depend
on one lucky RNG draw."""

import numpy as np
import pytest

from repro.analysis.reports import fig8_satellite_rtt, table1_protocols
from repro.traffic.workload import WorkloadConfig, WorkloadGenerator


@pytest.mark.parametrize("seed", [101, 202, 303])
def test_headline_shapes_across_seeds(seed):
    frame = WorkloadGenerator(
        WorkloadConfig(n_customers=250, days=2, seed=seed)
    ).generate()

    table1 = table1_protocols.compute(frame)
    assert table1.share("tcp/https") > table1.share("udp/quic")
    assert table1.share("udp/dns") < 0.1

    fig8 = fig8_satellite_rtt.compute_fig8a(frame)
    # the floor and the Congo/Spain contrast hold for every seed
    assert fig8.minimum_ms("Spain") > 520.0
    assert fig8.fraction_under("Spain", "night", 1000.0) > 0.65
    assert fig8.fraction_over("Congo", "peak", 2000.0) > fig8.fraction_over(
        "Spain", "peak", 2000.0
    )


def test_split_by_day(small_frame):
    parts = small_frame.split_by_day()
    assert set(parts) == set(np.unique(small_frame.day))
    assert sum(len(p) for p in parts.values()) == len(small_frame)
    for day, part in parts.items():
        assert np.all(part.day == day)
