"""Tests for the prefix-preserving anonymizer (CryptoPan property)."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.net.cryptopan import PrefixPreservingAnonymizer
from repro.net.inet import ip_to_int


def test_deterministic():
    anon = PrefixPreservingAnonymizer(b"key")
    a1 = anon.anonymize_int(ip_to_int("10.1.2.3"))
    a2 = anon.anonymize_int(ip_to_int("10.1.2.3"))
    assert a1 == a2


def test_different_keys_differ():
    value = ip_to_int("10.1.2.3")
    a = PrefixPreservingAnonymizer(b"key-a").anonymize_int(value)
    b = PrefixPreservingAnonymizer(b"key-b").anonymize_int(value)
    assert a != b


def test_string_interface():
    anon = PrefixPreservingAnonymizer(b"key")
    out = anon.anonymize("8.8.8.8")
    assert out.count(".") == 3
    assert out != "8.8.8.8"


def test_empty_key_rejected():
    with pytest.raises(ValueError):
        PrefixPreservingAnonymizer(b"")


def test_out_of_range_rejected():
    anon = PrefixPreservingAnonymizer(b"key")
    with pytest.raises(ValueError):
        anon.anonymize_int(-1)
    with pytest.raises(ValueError):
        anon.anonymize_int(1 << 32)


def test_shared_prefix_len_helper():
    anon = PrefixPreservingAnonymizer(b"key")
    assert anon.shared_prefix_len(0xFFFFFFFF, 0xFFFFFFFF) == 32
    assert anon.shared_prefix_len(0x80000000, 0x00000000) == 0
    assert anon.shared_prefix_len(0x0A000001, 0x0A000002) == 30


@settings(max_examples=200)
@given(
    st.integers(min_value=0, max_value=0xFFFFFFFF),
    st.integers(min_value=0, max_value=0xFFFFFFFF),
)
def test_prefix_preservation_property(a, b):
    """The defining CryptoPan property: shared prefix length is
    preserved exactly (same-length prefixes in, same-length out)."""
    anon = PrefixPreservingAnonymizer(b"property-key")
    ea, eb = anon.anonymize_int(a), anon.anonymize_int(b)
    assert anon.shared_prefix_len(a, b) == anon.shared_prefix_len(ea, eb)


@given(st.integers(min_value=0, max_value=0xFFFFFFFF))
def test_output_in_range(a):
    anon = PrefixPreservingAnonymizer(b"property-key")
    assert 0 <= anon.anonymize_int(a) <= 0xFFFFFFFF


def test_injective_on_sample():
    """Prefix preservation implies injectivity; spot-check a block."""
    anon = PrefixPreservingAnonymizer(b"key")
    base = ip_to_int("172.16.4.0")
    outputs = {anon.anonymize_int(base + i) for i in range(256)}
    assert len(outputs) == 256


def test_subnet_structure_preserved():
    """Addresses of one /24 stay together, distinct /24s stay apart."""
    anon = PrefixPreservingAnonymizer(b"key")
    net_a = [anon.anonymize_int(ip_to_int("10.0.1.0") + i) for i in range(10)]
    net_b = [anon.anonymize_int(ip_to_int("10.0.2.0") + i) for i in range(10)]
    prefix_a = {v >> 8 for v in net_a}
    prefix_b = {v >> 8 for v in net_b}
    assert len(prefix_a) == 1
    assert len(prefix_b) == 1
    assert prefix_a != prefix_b
