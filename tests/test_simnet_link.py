"""Unit tests for the link model."""

import pytest

from repro.simnet.engine import Simulator
from repro.simnet.link import Link


def _sink(collector):
    def deliver(payload):
        collector.append(payload)

    return deliver


def test_propagation_delay_only():
    sim = Simulator()
    link = Link(sim, rate_bps=None, prop_delay_s=0.25)
    out = []
    link.send("pkt", 1000, _sink(out))
    sim.run()
    assert out == ["pkt"]
    assert sim.now == pytest.approx(0.25)


def test_serialization_delay():
    sim = Simulator()
    link = Link(sim, rate_bps=8000.0, prop_delay_s=0.0)  # 1000 bytes/s
    out = []
    link.send("pkt", 500, _sink(out))
    sim.run()
    assert sim.now == pytest.approx(0.5)


def test_queueing_packets_serialize_back_to_back():
    sim = Simulator()
    link = Link(sim, rate_bps=8000.0)
    arrivals = []
    for i in range(3):
        link.send(i, 1000, lambda p: arrivals.append((p, sim.now)))
    sim.run()
    assert [t for _, t in arrivals] == pytest.approx([1.0, 2.0, 3.0])


def test_drop_when_queue_full():
    sim = Simulator()
    link = Link(sim, rate_bps=8000.0, queue_bytes=1500)
    out = []
    assert link.send("a", 1000, _sink(out)) is True
    assert link.send("b", 1000, _sink(out)) is False  # 2000 > 1500
    sim.run()
    assert out == ["a"]
    assert link.stats.packets_dropped == 1
    assert link.stats.bytes_dropped == 1000


def test_preserve_order_with_random_extra_delay():
    sim = Simulator()
    delays = iter([0.5, 0.0])  # second packet would overtake
    link = Link(sim, prop_delay_s=0.0, extra_delay_fn=lambda _s: next(delays))
    arrivals = []
    link.send("first", 100, lambda p: arrivals.append(p))
    link.send("second", 100, lambda p: arrivals.append(p))
    sim.run()
    assert arrivals == ["first", "second"]


def test_overtaking_allowed_when_order_not_preserved():
    sim = Simulator()
    delays = iter([0.5, 0.0])
    link = Link(
        sim, prop_delay_s=0.0, extra_delay_fn=lambda _s: next(delays), preserve_order=False
    )
    arrivals = []
    link.send("first", 100, lambda p: arrivals.append(p))
    link.send("second", 100, lambda p: arrivals.append(p))
    sim.run()
    assert arrivals == ["second", "first"]


def test_stats_accumulate():
    sim = Simulator()
    link = Link(sim, rate_bps=8000.0)
    out = []
    link.send("a", 1000, _sink(out))
    link.send("b", 1000, _sink(out))
    sim.run()
    assert link.stats.packets_sent == 2
    assert link.stats.bytes_sent == 2000
    assert link.stats.busy_time_s == pytest.approx(2.0)
    # second packet waited one serialization time
    assert link.stats.mean_queue_delay_s() == pytest.approx(0.5)


def test_utilization():
    sim = Simulator()
    link = Link(sim, rate_bps=8000.0)
    link.send("a", 1000, lambda p: None)
    sim.run()
    assert link.utilization(2.0) == pytest.approx(0.5)
    assert link.utilization(0.0) == 0.0


def test_invalid_parameters_rejected():
    sim = Simulator()
    with pytest.raises(ValueError):
        Link(sim, rate_bps=0.0)
    with pytest.raises(ValueError):
        Link(sim, prop_delay_s=-1.0)
    link = Link(sim)
    with pytest.raises(ValueError):
        link.send("x", -5, lambda p: None)


def test_backlog_tracks_in_flight_bytes():
    sim = Simulator()
    link = Link(sim, rate_bps=8000.0)
    link.send("a", 1000, lambda p: None)
    assert link.backlog_bytes == 1000
    sim.run()
    assert link.backlog_bytes == 0
