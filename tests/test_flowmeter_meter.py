"""Tests for the flow meter facade."""

import pytest

from repro.flowmeter.meter import FlowMeter
from repro.flowmeter.records import L7Protocol
from repro.net.cryptopan import PrefixPreservingAnonymizer
from repro.net.packet import IPProtocol, Packet, TCPFlags
from repro.protocols import dns, tls

CLIENT = 0x0A000001
SERVER = 0x17000001


def tcp(src, dst, sp, dp, flags=0, seq=0, ack=0, payload=b"", t=0.0):
    return Packet(
        src_ip=src, dst_ip=dst, src_port=sp, dst_port=dp,
        protocol=IPProtocol.TCP, flags=TCPFlags(flags), seq=seq, ack=ack,
        payload=payload, timestamp=t,
    )


def udp(src, dst, sp, dp, payload, t=0.0):
    return Packet(
        src_ip=src, dst_ip=dst, src_port=sp, dst_port=dp,
        protocol=IPProtocol.UDP, payload=payload, timestamp=t,
    )


def run_tls_flow(meter, t0=0.0, client=CLIENT, sport=50000):
    """Replay a complete TLS connection as seen at the ground station."""
    ch = tls.client_hello("www.netflix.com")
    sh = tls.server_hello()
    cke = tls.client_key_exchange()
    A, F = TCPFlags.ACK, TCPFlags.FIN
    seq_c, seq_s = 1, 1
    meter.process(tcp(client, SERVER, sport, 443, TCPFlags.SYN, t=t0))
    meter.process(tcp(SERVER, client, 443, sport, TCPFlags.SYN | A, ack=1, t=t0 + 0.012))
    meter.process(tcp(client, SERVER, sport, 443, A, seq=1, ack=1, t=t0 + 0.012))
    meter.process(tcp(client, SERVER, sport, 443, A, seq=seq_c, payload=ch, ack=1, t=t0 + 0.1))
    seq_c += len(ch)
    meter.process(tcp(SERVER, client, 443, sport, A, seq=1, ack=seq_c, t=t0 + 0.112))
    meter.process(tcp(SERVER, client, 443, sport, A, seq=seq_s, payload=sh, ack=seq_c, t=t0 + 0.113))
    seq_s += len(sh)
    meter.process(tcp(client, SERVER, sport, 443, A, seq=seq_c, payload=cke, ack=seq_s, t=t0 + 0.73))
    seq_c += len(cke)
    meter.process(tcp(SERVER, client, 443, sport, A, seq=seq_s, ack=seq_c, t=t0 + 0.742))
    meter.process(tcp(client, SERVER, sport, 443, F | A, seq=seq_c, ack=seq_s, t=t0 + 1.0))
    meter.process(tcp(SERVER, client, 443, sport, F | A, seq=seq_s, ack=seq_c + 1, t=t0 + 1.012))
    meter.process(tcp(client, SERVER, sport, 443, A, seq=seq_c + 1, ack=seq_s + 1, t=t0 + 1.012))


def test_complete_tls_flow_record():
    meter = FlowMeter()
    run_tls_flow(meter)
    assert len(meter.records) == 1
    record = meter.records[0]
    assert record.l7 is L7Protocol.HTTPS
    assert record.domain == "www.netflix.com"
    assert record.sat_rtt_ms == pytest.approx(617.0, abs=1.0)
    assert record.rtt_avg_ms == pytest.approx(12.0, abs=0.5)
    assert record.rtt_samples == 2
    assert record.bytes_up > 0 and record.bytes_down > 0
    assert record.duration_s == pytest.approx(1.012)


def test_flow_closed_by_rst():
    meter = FlowMeter()
    meter.process(tcp(CLIENT, SERVER, 50000, 443, TCPFlags.SYN, t=0.0))
    meter.process(tcp(SERVER, CLIENT, 443, 50000, TCPFlags.RST | TCPFlags.ACK, t=0.5))
    assert len(meter.records) == 1
    assert meter.active_flows == 0


def test_stray_ack_does_not_create_flow():
    meter = FlowMeter()
    meter.process(tcp(CLIENT, SERVER, 50000, 443, TCPFlags.ACK, seq=100, ack=7, t=0.0))
    assert meter.active_flows == 0
    assert meter.records == []


def test_idle_timeout_expiry():
    meter = FlowMeter(idle_timeout_s=60.0)
    meter.process(tcp(CLIENT, SERVER, 50000, 443, TCPFlags.SYN, t=0.0))
    assert meter.expire(now=30.0) == 0
    assert meter.expire(now=61.0) == 1
    assert len(meter.records) == 1


def test_expire_emits_each_idle_flow_exactly_once():
    meter = FlowMeter(idle_timeout_s=60.0)
    meter.process(tcp(CLIENT, SERVER, 50000, 443, TCPFlags.SYN, t=0.0))
    meter.process(tcp(CLIENT, SERVER, 50001, 443, TCPFlags.SYN, t=10.0))
    assert meter.active_flows == 2
    assert meter.expire(now=61.0) == 1  # only the t=0 flow is idle
    assert meter.active_flows == 1
    assert len(meter.records) == 1
    assert meter.records[0].client_port == 50000
    assert meter.expire(now=61.0) == 0  # never emitted a second time
    assert len(meter.records) == 1
    assert meter.expire(now=71.0) == 1
    assert meter.active_flows == 0
    assert {r.client_port for r in meter.records} == {50000, 50001}


def test_expire_keeps_recently_active_flows():
    meter = FlowMeter(idle_timeout_s=60.0)
    meter.process(tcp(CLIENT, SERVER, 50000, 443, TCPFlags.SYN, t=0.0))
    meter.process(
        tcp(SERVER, CLIENT, 443, 50000, TCPFlags.SYN | TCPFlags.ACK, ack=1, t=59.0)
    )
    assert meter.expire(now=61.0) == 0  # the t=59 reply reset idleness
    assert meter.active_flows == 1
    assert meter.records == []


def test_expired_flow_not_flushed_again():
    meter = FlowMeter(idle_timeout_s=60.0)
    meter.process(udp(CLIENT, 0x08080808, 40000, 53, dns.encode_query(1, "a.b"), 0.0))
    assert meter.expire(now=200.0) == 1
    meter.flush_all()  # must not re-emit the expired flow
    assert len(meter.records) == 1


def test_flush_all():
    meter = FlowMeter()
    meter.process(tcp(CLIENT, SERVER, 50000, 443, TCPFlags.SYN, t=0.0))
    meter.process(udp(CLIENT, 0x08080808, 40000, 53, dns.encode_query(1, "a.b"), 0.0))
    assert meter.active_flows == 2
    meter.flush_all()
    assert meter.active_flows == 0
    assert len(meter.records) == 2


def test_anonymizer_applied_to_client_only():
    anonymizer = PrefixPreservingAnonymizer(b"test-key")
    meter = FlowMeter(anonymizer=anonymizer)
    run_tls_flow(meter)
    record = meter.records[0]
    assert record.client_ip == anonymizer.anonymize_int(CLIENT)
    assert record.server_ip == SERVER  # servers stay in the clear


def test_anonymization_preserves_customer_subnets():
    anonymizer = PrefixPreservingAnonymizer(b"test-key")
    meter = FlowMeter(anonymizer=anonymizer)
    run_tls_flow(meter, client=0x0A000001, sport=50001)
    run_tls_flow(meter, client=0x0A000002, sport=50002)
    a, b = (r.client_ip for r in meter.records)
    assert a != b
    assert a >> 8 == b >> 8  # same /24 after anonymization


def test_dns_flow_record_fields():
    meter = FlowMeter()
    resolver = 0x08080808
    meter.process(udp(CLIENT, resolver, 40001, 53, dns.encode_query(7, "app.scooper.news"), 5.0))
    meter.process(udp(resolver, CLIENT, 53, 40001, dns.encode_response(7, "app.scooper.news", [1]), 5.13))
    meter.flush_all()
    record = meter.records[0]
    assert record.l7 is L7Protocol.DNS
    assert record.dns_qname == "app.scooper.news"
    assert record.dns_resolver_ip == resolver
    assert record.dns_response_ms == pytest.approx(130.0)


def test_two_concurrent_flows_tracked_separately():
    meter = FlowMeter()
    run_tls_flow(meter, t0=0.0, sport=50000)
    run_tls_flow(meter, t0=0.5, sport=50001)
    assert len(meter.records) == 2
    ports = {r.client_port for r in meter.records}
    assert ports == {50000, 50001}


def test_first_packet_times_capped_at_ten():
    meter = FlowMeter()
    for i in range(15):
        meter.process(
            tcp(CLIENT, SERVER, 50000, 443, TCPFlags.ACK,
                seq=1 + i, payload=b"x", ack=1, t=float(i))
        )
    meter.flush_all()
    assert len(meter.records[0].first_pkt_times) == 10
    assert meter.records[0].first_pkt_times == [float(i) for i in range(10)]


def test_packets_processed_counter():
    meter = FlowMeter()
    run_tls_flow(meter)
    assert meter.packets_processed == 11
