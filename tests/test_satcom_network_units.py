"""Unit tests for the packet-level network internals (PEP buffering,
NAT, UDP services, per-customer links)."""

import numpy as np
import pytest

from repro.internet.resolvers import RESOLVERS
from repro.internet.topology import InternetModel
from repro.net.packet import IPProtocol, Packet
from repro.satcom.apps import TlsClientApp, TlsServerApp
from repro.satcom.network import (
    SatComPacketNetwork,
    quic_server_handler,
    rtp_echo_handler,
)
from repro.simnet.engine import Simulator


@pytest.fixture()
def network():
    sim = Simulator()
    return SatComPacketNetwork(
        sim, InternetModel(), rng=np.random.default_rng(0), hour_utc=12.0
    )


def test_customers_get_per_country_pools(network):
    spain1 = network.add_customer("Spain")
    spain2 = network.add_customer("Spain")
    congo = network.add_customer("Congo")
    assert spain1.public_ip >> 16 == spain2.public_ip >> 16
    assert spain1.public_ip != spain2.public_ip
    assert congo.public_ip >> 16 != spain1.public_ip >> 16


def test_customers_round_robin_over_beams(network):
    beams = {network.add_customer("Nigeria").beam.beam_id for _ in range(4)}
    assert len(beams) == 4  # Nigeria has four beams


def test_default_plans_by_continent(network):
    assert network.add_customer("Spain").plan.name == "sat-50"
    assert network.add_customer("Congo").plan.name == "sat-30"


def test_server_ip_matches_internet_model(network):
    server = network.add_server(
        "x.example", "Milan-IX", app_factory=lambda ep: TlsServerApp(ep.send, ep.close)
    )
    assert network.internet.site_of_ip(server.ip) == "Milan-IX"


def test_pep_buffers_data_sent_before_connect_completes(network):
    """The CPE accepts client bytes instantly; the GS proxy must buffer
    them until its server-side connection establishes."""
    sim = network.sim
    server = network.add_server(
        "buffered.example",
        "US-West",  # far away: connect takes a while
        app_factory=lambda ep: TlsServerApp(ep.send, ep.close, response_bytes=5_000),
    )
    customer = network.add_customer("Spain")
    app = TlsClientApp(sim, "buffered.example", expected_response_bytes=5_000)
    socket = customer.open_tcp(server.ip, 443, on_data=app.on_data)
    app.start(socket.send, socket.close)  # ClientHello sent immediately
    sim.run(until=60.0)
    assert app.result.complete


def test_udp_nat_round_trip(network):
    """A datagram out and its reply back through the GS NAT."""
    sim = network.sim
    echoes = []
    host = network.add_udp_server("echo.example", "Milan-IX", rtp_echo_handler())
    customer = network.add_customer("UK")
    from repro.protocols import rtp

    customer.send_udp(
        host.ip, 40000, rtp.encode(7, 0, 1, b"ping"),
        on_reply=lambda payload, now: echoes.append((payload, now)),
    )
    sim.run(until=10.0)
    assert len(echoes) == 1
    assert rtp.decode(echoes[0][0]).sequence == 7
    # the reply took a full satellite round trip
    assert echoes[0][1] > 0.5


def test_quic_handler_ignores_non_initial(network):
    sent = []
    handler = quic_server_handler(response_bytes=2_000)
    from repro.protocols import quic

    packet = Packet(
        src_ip=1, dst_ip=2, src_port=1000, dst_port=443,
        protocol=IPProtocol.UDP, payload=quic.encode_short_header_packet(100),
    )
    handler(packet, sent.append)
    assert sent == []

    initial = Packet(
        src_ip=1, dst_ip=2, src_port=1000, dst_port=443,
        protocol=IPProtocol.UDP, payload=quic.encode_initial("a.b"),
    )
    handler(initial, sent.append)
    assert len(sent) >= 2  # handshake + data packets
    total = sum(len(p) for p in sent[1:])
    assert total >= 2_000


def test_open_udp_keeps_one_source_port(network):
    customer = network.add_customer("Spain")
    before = customer._next_port
    sender = customer.open_udp(0x01020304, 9999)
    sender(b"one")
    sender(b"two")
    assert customer._next_port == before + 1  # single allocation


def test_meter_optional(network):
    """Networks can run without a probe attached."""
    assert network.meter is None
    customer = network.add_customer("Spain")
    server = network.add_server(
        "nometer.example", "Milan-IX",
        app_factory=lambda ep: TlsServerApp(ep.send, ep.close, response_bytes=2_000),
    )
    app = TlsClientApp(network.sim, "nometer.example", expected_response_bytes=2_000)
    socket = customer.open_tcp(server.ip, 443, on_data=app.on_data)
    app.start(socket.send, socket.close)
    network.sim.run(until=30.0)
    assert app.result.complete


def test_resolver_host_counts_queries(network):
    from repro.protocols import dns

    resolver = RESOLVERS["Google"]
    host = network.add_resolver(resolver, answer_fn=lambda q: 0x08080404)
    customer = network.add_customer("Spain")
    replies = []
    customer.send_udp(
        resolver.address, 53, dns.encode_query(5, "q.example"),
        on_reply=lambda p, t: replies.append(dns.decode(p)),
    )
    network.sim.run(until=10.0)
    assert host.queries_served == 1
    assert replies[0].answers[0].address == 0x08080404
