"""Tests for the assembled Internet model."""

import numpy as np
import pytest

from repro.internet.geo import COUNTRIES, SERVER_SITES
from repro.internet.resolvers import RESOLVERS
from repro.internet.servers import SelectionPolicy, deployment
from repro.internet.topology import InternetModel


@pytest.fixture()
def model():
    m = InternetModel()
    m.register_deployment(deployment("svc-dns", "global-cdn", SelectionPolicy.DNS_RESOLVER_GEO))
    m.register_deployment(deployment("svc-anycast", "video-cdn", SelectionPolicy.ANYCAST))
    return m


def test_server_ip_stable_and_site_scoped(model):
    milan = SERVER_SITES["Milan-IX"]
    lagos = SERVER_SITES["Lagos"]
    ip1 = model.server_ip(milan, "a.example.com")
    ip2 = model.server_ip(milan, "a.example.com")
    assert ip1 == ip2
    assert model.site_of_ip(ip1) == "Milan-IX"
    assert model.site_of_ip(model.server_ip(lagos, "a.example.com")) == "Lagos"


def test_site_of_unknown_ip(model):
    assert model.site_of_ip(0x01020304) is None


def test_select_server_resolver_geo(model, rng):
    nigerian = RESOLVERS["Nigerian"]
    result = model.select_server("svc-dns", COUNTRIES["Nigeria"], nigerian, rng)
    assert result.site.name == "Lagos"
    assert result.dns_response_ms > 50  # Lagos detour
    assert result.resolver is nigerian


def test_select_server_operator_keeps_traffic_in_europe(model, rng):
    operator = RESOLVERS["Operator-EU"]
    result = model.select_server("svc-dns", COUNTRIES["Nigeria"], operator, rng)
    assert SERVER_SITES[result.site.name].continent == "Europe"
    assert result.dns_response_ms < 30


def test_select_server_anycast_resolver_independent(model, rng):
    sites = {
        model.select_server("svc-anycast", COUNTRIES["Congo"], RESOLVERS[name], rng).site.name
        for name in ("Operator-EU", "Baidu", "Nigerian")
    }
    assert sites == {"Milan-IX"}


def test_unknown_service_raises(model, rng):
    with pytest.raises(KeyError):
        model.select_server("nope", COUNTRIES["UK"], RESOLVERS["Google"], rng)


def test_ground_rtt_sampling(model, rng):
    site = SERVER_SITES["US-East"]
    samples = model.sample_ground_rtt_ms(site, rng, 2000)
    assert np.median(samples) == pytest.approx(model.base_ground_rtt_ms(site), rel=0.05)


def test_country_and_site_lookups(model):
    assert model.country("Spain").continent == "Europe"
    assert model.site("Beijing").continent == "Asia"
    with pytest.raises(KeyError):
        model.country("Atlantis")
