"""Tests for GEO orbital geometry."""

import math

import pytest

from repro.constants import GEO_ALTITUDE_M, SPEED_OF_LIGHT_M_S
from repro.internet.geo import COUNTRIES, GROUND_STATION, Location
from repro.satcom.geometry import SatelliteGeometry

GEO = SatelliteGeometry()


def test_subsatellite_point_is_zenith():
    sub = Location("sub", 0.0, GEO.satellite_longitude_deg)
    assert GEO.elevation_angle_deg(sub) == pytest.approx(90.0)
    assert GEO.slant_range_m(sub) == pytest.approx(GEO_ALTITUDE_M)


def test_slant_range_increases_away_from_subsatellite_point():
    near = Location("near", 5.0, GEO.satellite_longitude_deg)
    far = Location("far", 50.0, GEO.satellite_longitude_deg)
    assert GEO.slant_range_m(near) < GEO.slant_range_m(far)


def test_elevation_ordering_matches_paper():
    """Ireland sits at the coverage edge (lowest elevation); Nigeria and
    Congo are near zenith (Section 6.1)."""
    elev = {c: GEO.elevation_angle_deg(COUNTRIES[c]) for c in
            ("Congo", "Nigeria", "South Africa", "Ireland", "Spain", "UK")}
    assert elev["Ireland"] < elev["UK"] < elev["Spain"] < elev["South Africa"]
    assert elev["Nigeria"] > 70
    assert elev["Congo"] > 70
    assert elev["Ireland"] < 30


def test_propagation_rtt_in_published_range():
    """Two passes through the satellite: 480–530 ms of pure propagation
    (the paper quotes 240–280 ms one way)."""
    for country, location in COUNTRIES.items():
        rtt = GEO.propagation_rtt_s(location)
        assert 0.46 < rtt < 0.54, country
        one_way = GEO.one_way_path_delay_s(location)
        assert 0.24 <= one_way <= 0.28, country


def test_propagation_rtt_is_twice_one_way():
    loc = COUNTRIES["Spain"]
    assert GEO.propagation_rtt_s(loc) == pytest.approx(2 * GEO.one_way_path_delay_s(loc))


def test_one_way_hop_consistent_with_slant_range():
    loc = COUNTRIES["UK"]
    assert GEO.one_way_hop_delay_s(loc) == pytest.approx(
        GEO.slant_range_m(loc) / SPEED_OF_LIGHT_M_S
    )


def test_coverage_check():
    assert GEO.is_covered(COUNTRIES["Ireland"])
    antipode = Location("antipode", 0.0, GEO.satellite_longitude_deg + 180.0)
    assert not GEO.is_covered(antipode)


def test_ground_station_hop_included_in_path():
    loc = COUNTRIES["Congo"]
    assert GEO.one_way_path_delay_s(loc) == pytest.approx(
        GEO.one_way_hop_delay_s(loc) + GEO.one_way_hop_delay_s(GROUND_STATION)
    )
