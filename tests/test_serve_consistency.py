"""Serve consistency: live readers only ever see committed prefixes.

The contract under test is the serve layer's whole reason to exist: a
reader hammering ``/reports/fig2`` while a capture commits windows
underneath it must only ever observe snapshots whose digest equals
some *committed checkpoint digest* — never a half-folded window, never
a torn rollup — and every response tagged with a given digest must be
byte-identical (one committed prefix has exactly one rendering). The
property is swept across pipeline depths 0 (lockstep) and 2
(generation runs ahead) and across a SIGKILL + resume, because those
are the executions where a torn read would actually differ.
"""

import http.client
import multiprocessing
import os
import signal
import threading

import pytest

from repro.faults import FaultPlan
from repro.serve import ServerThread, SnapshotHub
from repro.stream import StreamConfig, load_checkpoint, run_stream_capture
from repro.traffic.workload import WorkloadConfig

CONFIG = StreamConfig(
    workload=WorkloadConfig(n_customers=48, days=3, seed=7, n_workers=1),
    window_days=1,
    compress=False,
)


class RecordingHub(SnapshotHub):
    """A hub that records every digest *before* readers can see it.

    Recording inside :meth:`publish` ahead of the swap makes the
    committed-digest list authoritative without racing the readers: a
    snapshot is never observable before its digest is on the list.
    """

    def __init__(self) -> None:
        super().__init__()
        self.digests = []

    def publish(self, snapshot) -> None:
        self.digests.append(snapshot.digest)
        super().publish(snapshot)


def _fetch(port: int, path: str):
    """One GET over a fresh connection -> (status, digest-header, body)."""
    conn = http.client.HTTPConnection("127.0.0.1", port, timeout=10)
    try:
        conn.request("GET", path)
        response = conn.getresponse()
        return (
            response.status,
            response.getheader("X-Capture-Digest"),
            response.read(),
        )
    finally:
        conn.close()


class ReaderThread(threading.Thread):
    """Hammer one endpoint until stopped, recording what was observed."""

    def __init__(self, port: int, path: str = "/reports/fig2") -> None:
        super().__init__(daemon=True)
        self.port = port
        self.path = path
        self.stop = threading.Event()
        self.observations = []  # (digest, status, body) for non-warmup
        self.transport_errors = []

    def run(self) -> None:
        while not self.stop.is_set():
            try:
                status, digest, body = _fetch(self.port, self.path)
            except OSError as exc:  # refused/reset — a real serve bug
                self.transport_errors.append(repr(exc))
                continue
            if status == 503:
                continue  # warmup: nothing published yet
            self.observations.append((digest, status, body))

    def finish(self):
        self.stop.set()
        self.join(timeout=30)
        assert not self.is_alive(), "reader thread wedged"
        return self.observations


def _assert_consistent(observations, committed_digests) -> None:
    """Every observation names a committed digest; one digest, one body."""
    assert observations, "reader never saw a snapshot"
    committed = set(committed_digests)
    bodies_by_digest = {}
    for digest, status, body in observations:
        assert digest in committed, (
            f"reader observed digest {digest[:12]} that was never a "
            "committed checkpoint digest — torn snapshot"
        )
        assert status == 200, f"unexpected status {status}: {body[:120]!r}"
        expected = bodies_by_digest.setdefault(digest, body)
        assert body == expected, (
            f"two different bodies served for digest {digest[:12]}"
        )


@pytest.mark.parametrize("pipeline_depth", [0, 2])
def test_live_reader_sees_only_committed_digests(tmp_path, pipeline_depth):
    import dataclasses

    config = dataclasses.replace(CONFIG, pipeline_depth=pipeline_depth)
    hub = RecordingHub()
    server = ServerThread(hub)
    server.start()
    reader = ReaderThread(server.port)
    reader.start()
    try:
        result = run_stream_capture(
            config, tmp_path / "cap", snapshot_hub=hub
        )
    finally:
        observations = reader.finish()
        server.stop()
    assert result.complete
    assert reader.transport_errors == []
    # initial empty publish + one per committed window
    assert len(hub.digests) == 1 + result.checkpoint.windows_done
    assert hub.digests[-1] == result.checkpoint.rollup_digest
    _assert_consistent(observations, hub.digests)


@pytest.mark.skipif(
    "fork" not in multiprocessing.get_all_start_methods(),
    reason="SIGKILL leg needs fork",
)
def test_live_reader_stays_consistent_across_sigkill_resume(tmp_path):
    """Kill a capture mid-run, resume it with serving on: readers of the
    resumed run still only see committed digests (the healed prefix
    publishes first), and the finished digest matches a clean run."""
    capture_dir = tmp_path / "cap"
    pid = os.fork()
    if pid == 0:  # pragma: no cover - dies by SIGKILL
        try:
            run_stream_capture(
                CONFIG, capture_dir,
                faults=FaultPlan(kill_at=("stream:w1:committed",)),
            )
        finally:
            os._exit(7)
    _, status = os.waitpid(pid, 0)
    assert os.WIFSIGNALED(status) and os.WTERMSIG(status) == signal.SIGKILL
    killed_at = load_checkpoint(capture_dir)
    assert killed_at is not None and not killed_at.complete

    clean = run_stream_capture(CONFIG, tmp_path / "clean")

    hub = RecordingHub()
    server = ServerThread(hub)
    server.start()
    reader = ReaderThread(server.port)
    reader.start()
    try:
        result = run_stream_capture(
            CONFIG, capture_dir, resume=True, snapshot_hub=hub
        )
    finally:
        observations = reader.finish()
        server.stop()
    assert result.complete
    assert result.rollup.state_digest() == clean.rollup.state_digest()
    assert reader.transport_errors == []
    # first publish is the healed committed prefix, not an empty rollup
    assert hub.digests[0] == killed_at.rollup_digest
    _assert_consistent(observations, hub.digests)
