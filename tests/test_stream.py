"""The streaming capture pipeline: producer, store, rollups, resume.

The contracts under test:

* a streamed capture is a pure function of ``StreamConfig`` content —
  killing and resuming it reproduces the uninterrupted run bit for bit
  (same rollup digest, same spilled windows);
* rollup ``update``/``merge`` are associative, and the rollup-served
  figure paths agree with the frame-based ones;
* peak memory stays roughly flat while capture length grows 10x.
"""

import json
import os
import subprocess
import sys
from pathlib import Path

import numpy as np
import pytest

from repro.analysis.dataset import _ARRAY_FIELDS, FlowFrame
from repro.analysis.reports import (
    fig2_country,
    fig3_protocol_country,
    fig4_diurnal,
    fig5_volumes,
    fig8_satellite_rtt,
    fig9_ground_rtt,
)
from repro.cache import config_cache_key, stream_capture_key
from repro.cli import main
from repro.stream import (
    Checkpoint,
    FlowStore,
    HistFamily,
    StreamConfig,
    StreamRollup,
    WindowEntry,
    load_checkpoint,
    plan_windows,
    render_telemetry,
    rollup_path,
    run_stream_capture,
    WindowTelemetry,
)
from repro.stream.checkpoint import write_checkpoint
from repro.traffic.workload import WorkloadConfig, WorkloadGenerator

REPO_ROOT = Path(__file__).resolve().parent.parent
TINY = WorkloadConfig(n_customers=80, days=3, seed=9)


def _assert_frames_identical(a: FlowFrame, b: FlowFrame) -> None:
    assert len(a) == len(b)
    for name in _ARRAY_FIELDS:
        x, y = getattr(a, name), getattr(b, name)
        assert x.dtype == y.dtype, f"{name}: {x.dtype} != {y.dtype}"
        assert np.array_equal(x, y, equal_nan=x.dtype.kind == "f"), f"{name} differs"


@pytest.fixture(scope="module")
def tiny_frames():
    """Three one-day frames of the TINY streamed capture + their union."""
    config = StreamConfig(workload=TINY, window_days=1)
    from repro.stream import WindowedProducer

    producer = WindowedProducer(WorkloadGenerator(TINY), 1)
    frames = [producer.generate_window(w) for w in producer.windows]
    return frames


@pytest.fixture(scope="module")
def small_rollup(small_frame):
    """The session frame folded into a rollup in one (day-aligned) chunk."""
    return StreamRollup.for_frame(small_frame).update(small_frame)


# -- window planning --------------------------------------------------------


def test_plan_windows_covers_days_contiguously():
    windows = plan_windows(10, 3)
    assert [(w.day_lo, w.day_hi) for w in windows] == [(0, 3), (3, 6), (6, 9), (9, 10)]
    assert [w.index for w in windows] == [0, 1, 2, 3]
    assert len(windows[-1]) == 1  # the last window absorbs the remainder


def test_plan_windows_single_window():
    assert [(w.day_lo, w.day_hi) for w in plan_windows(2, 5)] == [(0, 2)]


def test_plan_windows_rejects_bad_inputs():
    with pytest.raises(ValueError):
        plan_windows(0, 1)
    with pytest.raises(ValueError):
        plan_windows(5, 0)


def test_stream_capture_key_covers_window_plan():
    assert stream_capture_key(TINY, 1) != stream_capture_key(TINY, 2)
    other_seed = WorkloadConfig(n_customers=80, days=3, seed=10)
    assert stream_capture_key(TINY, 1) != stream_capture_key(other_seed, 1)
    # and it is not the one-shot capture key: the sampling plan differs
    assert stream_capture_key(TINY, 1) != config_cache_key(TINY)


# -- windowed producer ------------------------------------------------------


def test_windowed_generation_is_deterministic(tiny_frames):
    from repro.stream import WindowedProducer

    producer = WindowedProducer(WorkloadGenerator(TINY), 1)
    again = [producer.generate_window(w) for w in producer.windows]
    for a, b in zip(tiny_frames, again):
        _assert_frames_identical(a, b)


def test_window_days_stay_in_range(tiny_frames):
    for i, frame in enumerate(tiny_frames):
        assert len(frame) > 0
        assert frame.day.min() == i
        assert frame.day.max() == i


def test_worker_count_does_not_change_window_output(tiny_frames):
    from repro.stream import WindowedProducer

    producer = WindowedProducer(WorkloadGenerator(TINY), 1)
    parallel = producer.generate_window(producer.windows[1], n_workers=4)
    _assert_frames_identical(tiny_frames[1], parallel)


# -- flow store -------------------------------------------------------------


def _store_pools(frame):
    return {
        "countries": frame.countries,
        "beams": frame.beams,
        "services": frame.services,
        "domains": frame.domains,
        "sites": frame.sites,
        "resolvers": frame.resolvers,
    }


def test_store_round_trip_and_projection(tmp_path, tiny_frames):
    frame = tiny_frames[0]
    store = FlowStore.create(
        tmp_path / "cap",
        pools=_store_pools(frame),
        windows=[WindowEntry(0, 0, 1)],
        capture_key="k" * 24,
        config={},
        compress=True,
    )
    spilled = store.write_window(0, frame)
    assert spilled > 0
    assert store.bytes_spilled() == spilled
    _assert_frames_identical(store.read_window(0), frame)
    projected = store.read_window(0, columns=["bytes_down", "country_idx"])
    assert set(projected) == {"bytes_down", "country_idx"}
    assert np.array_equal(projected["bytes_down"], frame.bytes_down)

    reopened = FlowStore.open(tmp_path / "cap")
    assert reopened.capture_key == "k" * 24
    assert reopened.stored_window_count() == 1
    windows = list(reopened.iter_windows())
    assert len(windows) == 1
    _assert_frames_identical(windows[0][1], frame)


def test_store_rejects_mismatched_pools(tmp_path, tiny_frames):
    frame = tiny_frames[0]
    pools = _store_pools(frame)
    pools["countries"] = list(pools["countries"]) + ["Atlantis"]
    store = FlowStore.create(
        tmp_path / "cap",
        pools=pools,
        windows=[WindowEntry(0, 0, 1)],
        capture_key="k" * 24,
        config={},
    )
    with pytest.raises(ValueError, match="countries"):
        store.write_window(0, frame)


def test_store_iteration_skips_unwritten_windows(tmp_path, tiny_frames):
    store = FlowStore.create(
        tmp_path / "cap",
        pools=_store_pools(tiny_frames[0]),
        windows=[WindowEntry(i, i, i + 1) for i in range(3)],
        capture_key="k" * 24,
        config={},
    )
    store.write_window(1, tiny_frames[1])
    indices = [index for index, _ in store.iter_windows()]
    assert indices == [1]


# -- rollup sketches --------------------------------------------------------


def test_histfamily_rejects_bad_edges():
    with pytest.raises(ValueError):
        HistFamily(np.array([1.0]), 2)
    with pytest.raises(ValueError):
        HistFamily(np.array([1.0, 1.0, 2.0]), 2)


def test_histfamily_underflow_overflow_and_nan():
    hist = HistFamily(np.array([0.0, 1.0, 2.0]), 1)
    rows = np.zeros(5, dtype=np.int64)
    hist.update(rows, np.array([-1.0, 0.5, 1.5, 9.0, np.nan]))
    assert hist.under[0] == 1 and hist.over[0] == 1
    assert hist.total(0) == 4  # the NaN was dropped, not binned
    assert hist.cdf_at(0, 1.0) == pytest.approx(0.5)
    assert hist.ccdf_at(0, 1.0) == pytest.approx(0.5)


def test_histfamily_empty_row_is_nan():
    hist = HistFamily(np.array([0.0, 1.0]), 2)
    assert np.isnan(hist.cdf_at(1, 0.5))
    assert np.isnan(hist.quantile(1, 0.5))


def test_histfamily_merge_requires_same_binning():
    a = HistFamily(np.array([0.0, 1.0, 2.0]), 1)
    b = HistFamily(np.array([0.0, 2.0, 4.0]), 1)
    with pytest.raises(ValueError):
        a.merge(b)


def test_rollup_update_rejects_foreign_pools(tiny_frames):
    rollup = StreamRollup(["Nowhere"], tiny_frames[0].services)
    with pytest.raises(ValueError):
        rollup.update(tiny_frames[0])


def test_rollup_merge_matches_sequential_updates(tiny_frames):
    sequential = StreamRollup.for_frame(tiny_frames[0])
    for frame in tiny_frames:
        sequential.update(frame)

    parts = [StreamRollup.for_frame(f).update(f) for f in tiny_frames]
    merged = parts[0]
    for part in parts[1:]:
        merged.merge(part)

    assert merged.state_digest() == sequential.state_digest()
    assert merged.flows_total == sum(len(f) for f in tiny_frames)
    assert merged.windows_folded == 3


def test_rollup_merge_rejects_different_pools(tiny_frames):
    a = StreamRollup.for_frame(tiny_frames[0])
    b = StreamRollup(["Nowhere"], tiny_frames[0].services)
    with pytest.raises(ValueError):
        a.merge(b)


def test_rollup_save_load_round_trip(tmp_path, tiny_frames):
    rollup = StreamRollup.for_frame(tiny_frames[0]).update(tiny_frames[0])
    path = tmp_path / "rollup.npz"
    rollup.save(path)
    loaded = StreamRollup.load(path)
    assert loaded.state_digest() == rollup.state_digest()
    assert loaded.flows_total == rollup.flows_total
    assert loaded.customers_c().sum() == rollup.customers_c().sum()


def test_rollup_totals_match_frame(tiny_frames):
    frame = tiny_frames[0]
    rollup = StreamRollup.for_frame(frame).update(frame)
    assert rollup.flows_total == len(frame)
    assert rollup.volume_c().sum() == pytest.approx(
        frame.bytes_total().sum(), rel=1e-12
    )
    assert rollup.vol_clh.sum() == pytest.approx(frame.bytes_total().sum(), rel=1e-9)
    assert rollup.customers_c().sum() == len(np.unique(frame.customer_id))


# -- rollup-served figures vs the frame paths -------------------------------


def test_fig2_from_rollup_matches_frame(small_frame, small_rollup):
    from_frame = fig2_country.compute(small_frame)
    from_roll = fig2_country.from_rollup(small_rollup)
    assert [r[0] for r in from_roll.rows] == [r[0] for r in from_frame.rows]
    for (_, va, ca), (_, vb, cb) in zip(from_roll.rows, from_frame.rows):
        assert va == pytest.approx(vb, rel=1e-9)
        assert ca == pytest.approx(cb, rel=1e-9)


def test_fig3_from_rollup_matches_frame(small_frame, small_rollup):
    from_frame = fig3_protocol_country.compute(small_frame)
    from_roll = fig3_protocol_country.from_rollup(small_rollup)
    assert set(from_roll.shares) == set(from_frame.shares)
    for country, shares in from_roll.shares.items():
        for label, value in shares.items():
            assert value == pytest.approx(from_frame.shares[country][label], abs=1e-6)


def test_fig4_from_rollup_is_a_normalized_diurnal_curve(small_frame, small_rollup):
    result = fig4_diurnal.from_rollup(small_rollup)
    for country, curve in result.curves.items():
        assert curve.shape == (24,)
        assert curve.max() == pytest.approx(1.0)
        assert curve.min() >= 0.0
    # the shape tracks the frame-based robust curve (different
    # winsorization, same day-median damping)
    frame_result = fig4_diurnal.compute(small_frame)
    for country in ("Spain", "Congo"):
        rho = np.corrcoef(
            result.curves[country], frame_result.curves[country]
        )[0, 1]
        assert rho > 0.9, country


def test_fig5_from_rollup_matches_frame(small_frame, small_rollup):
    from_frame = fig5_volumes.compute(small_frame)
    from_roll = fig5_volumes.from_rollup(small_rollup)
    for country in from_roll.flow_counts:
        # idle fraction is served by an exact counter
        assert from_roll.idle_fraction(country) == pytest.approx(
            from_frame.idle_fraction(country), abs=1e-12
        )
        # 1/10 GB sit exactly on decade bin edges, so the heavy-hitter
        # fractions only differ by samples exactly at the threshold
        assert from_roll.heavy_downloader_pct(country) == pytest.approx(
            from_frame.heavy_downloader_pct(country), abs=0.05
        )
        assert from_roll.heavy_uploader_pct(country) == pytest.approx(
            from_frame.heavy_uploader_pct(country), abs=0.05
        )
        # medians interpolate inside a 12-per-decade log bin (~21%)
        assert from_roll.median_flows(country) == pytest.approx(
            from_frame.median_flows(country), rel=0.25
        )


def test_fig8_from_rollup_matches_frame(small_frame, small_rollup):
    from_frame = fig8_satellite_rtt.compute_fig8a(small_frame)
    from_roll = fig8_satellite_rtt.from_rollup(small_rollup)
    for country in from_roll.samples:
        # the tracked minimum is exact
        assert from_roll.minimum_ms(country) == pytest.approx(
            from_frame.minimum_ms(country), abs=1e-9
        )
        for period in ("night", "peak"):
            got = from_roll.quartiles_ms(country, period)
            want = from_frame.quartiles_ms(country, period)
            assert np.all(np.abs(got - want) <= 25.0 + 1e-9), (country, period)
            assert from_roll.fraction_under(country, period, 1000.0) == pytest.approx(
                from_frame.fraction_under(country, period, 1000.0), abs=0.02
            )
    rendered = fig8_satellite_rtt.render(from_roll)
    assert "Figure 8a" in rendered
    assert "Figure 8b" not in rendered  # per-beam medians are frame-only


def test_fig9_from_rollup_matches_frame(small_frame, small_rollup):
    from_frame = fig9_ground_rtt.compute(small_frame)
    from_roll = fig9_ground_rtt.from_rollup(small_rollup)
    for country in from_roll.samples:
        assert from_roll.median_ms(country) == pytest.approx(
            from_frame.median_ms(country), rel=0.11
        )
        assert from_roll.fraction_below(country, 40.0) == pytest.approx(
            from_frame.fraction_below(country, 40.0), abs=0.03
        )
        for threshold, share in from_frame.volume_weighted_share_below[country].items():
            assert from_roll.volume_weighted_share_below[country][
                threshold
            ] == pytest.approx(share, abs=0.03)
    assert "Figure 9" in fig9_ground_rtt.render(from_roll)


# -- checkpoint/resume ------------------------------------------------------


def test_checkpoint_round_trip(tmp_path):
    checkpoint = Checkpoint(
        capture_key="k" * 24,
        n_windows=3,
        windows_done=1,
        rollup_digest="d" * 64,
        telemetry=[
            WindowTelemetry(
                window=0, day_lo=0, day_hi=1, flows=10,
                gen_seconds=0.5, fold_seconds=0.1,
                bytes_spilled=1000, peak_rss_mb=50.0,
            )
        ],
    )
    write_checkpoint(tmp_path, checkpoint)
    loaded = load_checkpoint(tmp_path)
    assert loaded is not None
    assert not loaded.complete
    assert loaded.capture_key == checkpoint.capture_key
    assert loaded.windows_done == 1
    assert loaded.telemetry[0].flows == 10
    assert loaded.telemetry[0].flows_per_s == pytest.approx(10 / 0.6)


def test_load_checkpoint_absent_is_none(tmp_path):
    assert load_checkpoint(tmp_path) is None


def test_stream_capture_kill_and_resume_bit_identical(tmp_path):
    config = StreamConfig(workload=TINY, window_days=1, compress=False)

    one = run_stream_capture(config, tmp_path / "one")
    assert one.complete
    assert one.checkpoint.windows_done == 3

    # simulate a kill after the first committed window, then resume
    part = run_stream_capture(config, tmp_path / "two", max_windows=1)
    assert not part.complete
    assert part.checkpoint.windows_done == 1
    resumed = run_stream_capture(config, tmp_path / "two", resume=True)
    assert resumed.complete

    assert resumed.rollup.state_digest() == one.rollup.state_digest()
    assert resumed.checkpoint.rollup_digest == one.checkpoint.rollup_digest
    for index in range(3):
        _assert_frames_identical(
            one.store.read_window(index), resumed.store.read_window(index)
        )
    # and the persisted rollup equals the in-memory one
    reloaded = StreamRollup.load(rollup_path(tmp_path / "two"))
    assert reloaded.state_digest() == one.rollup.state_digest()


def test_resume_on_complete_capture_is_noop(tmp_path):
    config = StreamConfig(workload=TINY, window_days=1, compress=False)
    first = run_stream_capture(config, tmp_path / "cap")
    again = run_stream_capture(config, tmp_path / "cap", resume=True)
    assert again.complete
    assert again.rollup.state_digest() == first.rollup.state_digest()
    assert len(again.telemetry) == 3  # no window was re-produced


def test_fresh_run_refuses_existing_capture_dir(tmp_path):
    config = StreamConfig(workload=TINY, window_days=1, compress=False)
    run_stream_capture(config, tmp_path / "cap", max_windows=1)
    with pytest.raises(FileExistsError):
        run_stream_capture(config, tmp_path / "cap")


def test_resume_requires_checkpoint(tmp_path):
    config = StreamConfig(workload=TINY, window_days=1, compress=False)
    with pytest.raises(FileNotFoundError):
        run_stream_capture(config, tmp_path / "void", resume=True)


def test_resume_rejects_different_config(tmp_path):
    run_stream_capture(
        StreamConfig(workload=TINY, window_days=1, compress=False),
        tmp_path / "cap",
        max_windows=1,
    )
    other = StreamConfig(
        workload=WorkloadConfig(n_customers=80, days=3, seed=10),
        window_days=1,
        compress=False,
    )
    with pytest.raises(ValueError, match="different stream config"):
        run_stream_capture(other, tmp_path / "cap", resume=True)


def test_resume_heals_tampered_rollup(tmp_path):
    """A rollup that disagrees with the checkpoint digest (tampered, or
    left ahead by a crash between save and commit) is rebuilt from the
    committed windows — and the rebuild is bit-identical."""
    config = StreamConfig(workload=TINY, window_days=1, compress=False)
    baseline = run_stream_capture(config, tmp_path / "clean")
    run_stream_capture(config, tmp_path / "cap", max_windows=1)
    # tamper with the persisted rollup behind the checkpoint's back
    rollup = StreamRollup.load(rollup_path(tmp_path / "cap"))
    rollup.flows_total += 1
    rollup.save(rollup_path(tmp_path / "cap"))
    from repro.faults import FaultInjector

    injector = FaultInjector(None)  # fresh stats, no faults armed
    resumed = run_stream_capture(
        config, tmp_path / "cap", resume=True, faults=injector
    )
    assert resumed.complete
    assert resumed.rollup.state_digest() == baseline.rollup.state_digest()
    assert resumed.fault_stats.rollup_rebuilds == 1


def test_resume_rejects_unrecoverable_rollup(tmp_path):
    """When the rollup digest mismatches AND a committed window is gone,
    the re-fold cannot heal the capture: diagnostic CaptureError."""
    config = StreamConfig(workload=TINY, window_days=1, compress=False)
    run_stream_capture(config, tmp_path / "cap", max_windows=1)
    rollup = StreamRollup.load(rollup_path(tmp_path / "cap"))
    rollup.flows_total += 1
    rollup.save(rollup_path(tmp_path / "cap"))
    store = FlowStore.open(tmp_path / "cap")
    store.window_path(store.windows[0].index).write_bytes(b"\x00" * 64)
    with pytest.raises(ValueError, match="corrupt"):
        run_stream_capture(config, tmp_path / "cap", resume=True)


def test_rollup_digest_independent_of_window_grouping(tmp_path):
    """1-day and 3-day windows fold the same days → only the window
    *content* differs (different sampling plan), never the mechanics:
    each run's digest is reproduced exactly by its own re-run."""
    for window_days in (1, 3):
        config = StreamConfig(workload=TINY, window_days=window_days, compress=False)
        a = run_stream_capture(config, tmp_path / f"a{window_days}")
        b = run_stream_capture(config, tmp_path / f"b{window_days}")
        assert a.rollup.state_digest() == b.rollup.state_digest()


# -- telemetry --------------------------------------------------------------


def test_render_telemetry_table():
    rows = [
        WindowTelemetry(
            window=i, day_lo=i, day_hi=i + 1, flows=1000 * (i + 1),
            gen_seconds=0.5, fold_seconds=0.1,
            bytes_spilled=2_000_000, peak_rss_mb=60.0 + i,
        )
        for i in range(2)
    ]
    text = render_telemetry(rows)
    assert "Flows/s" in text and "Peak RSS MB" in text
    assert "total" in text
    assert "3,000" in text  # total flows row


# -- CLI --------------------------------------------------------------------


def test_cli_stream_resume_and_report(tmp_path, capsys):
    directory = str(tmp_path / "cap")
    base = [
        "stream", "--customers", "60", "--days", "2", "--seed", "4",
        "--window-days", "1", "--no-compress", "--dir", directory,
    ]
    assert main(base + ["--max-windows", "1"]) == 0
    printed = capsys.readouterr().out
    assert "resumable" in printed
    assert main(base + ["--resume"]) == 0
    printed = capsys.readouterr().out
    assert "complete" in printed
    assert "Streaming capture telemetry" in printed

    assert main(["stream-report", "--dir", directory, "--which", "all"]) == 0
    printed = capsys.readouterr().out
    for marker in ("Figure 2", "Figure 3", "Figure 4", "Figure 5", "Figure 8a", "Figure 9"):
        assert marker in printed


def test_cli_stream_report_rejects_unknown(tmp_path, capsys):
    directory = str(tmp_path / "cap")
    assert main([
        "stream", "--customers", "60", "--days", "1", "--seed", "4",
        "--no-compress", "--dir", directory,
    ]) == 0
    capsys.readouterr()
    assert main(["stream-report", "--dir", directory, "--which", "fig99"]) == 2


def test_cli_stream_report_without_capture(tmp_path, capsys):
    assert main(["stream-report", "--dir", str(tmp_path / "void")]) == 2
    assert "no such capture" in capsys.readouterr().err


# -- the whole point: bounded memory ---------------------------------------


def _run_stream_subprocess(directory: Path, days: int) -> float:
    """Run ``repro stream`` in a fresh process; return its peak RSS (MB)."""
    env = dict(os.environ)
    env["PYTHONPATH"] = str(REPO_ROOT / "src")
    subprocess.run(
        [
            sys.executable, "-m", "repro", "stream",
            "--customers", "180", "--days", str(days), "--seed", "17",
            "--window-days", "1", "--no-compress", "--dir", str(directory),
        ],
        check=True,
        env=env,
        cwd=REPO_ROOT,
        stdout=subprocess.DEVNULL,
        stderr=subprocess.DEVNULL,
    )
    payload = json.loads((directory / "checkpoint.json").read_text())
    assert payload["windows_done"] == days
    return max(row["peak_rss_mb"] for row in payload["telemetry"])


def test_peak_memory_flat_as_capture_grows_10x(tmp_path):
    """A 10x-longer capture must not need (anywhere near) 10x the
    memory: each window is spilled and dropped before the next one is
    produced, so peak RSS is set by the window size, not the total."""
    rss_1x = _run_stream_subprocess(tmp_path / "short", days=1)
    rss_10x = _run_stream_subprocess(tmp_path / "long", days=10)
    assert rss_10x <= rss_1x * 1.5, (rss_1x, rss_10x)
