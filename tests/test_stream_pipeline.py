"""Pipelined vs lockstep streaming capture: bit-identical by sweep.

The tentpole property of the pipelined producer: ``pipeline_depth``
(and the worker count, and the kernel engine) are *execution* knobs —
every combination must produce the same windows, the same rollup
digest, the same capture key. The sweeps here compare full capture
directories column by column against a lockstep single-worker
reference, and exercise the failure/resume paths that only exist in
pipelined mode.
"""

import dataclasses
import multiprocessing

import numpy as np
import pytest

from repro.analysis.dataset import _ARRAY_FIELDS
from repro.stream import StreamConfig, run_stream_capture
from repro.stream.store import FlowStore
from repro.traffic.workload import WorkloadConfig

HAS_FORK = "fork" in multiprocessing.get_all_start_methods()

fork_only = pytest.mark.skipif(HAS_FORK is False, reason="needs fork workers")


def _config(seed: int, workers: int, depth: int) -> StreamConfig:
    return StreamConfig(
        workload=WorkloadConfig(
            n_customers=48, days=3, seed=seed, n_workers=workers
        ),
        window_days=1,
        compress=False,
        pipeline_depth=depth,
    )


def _assert_captures_identical(ref_dir, got_dir) -> None:
    """Window-by-window, column-by-column equality of two capture dirs
    (file bytes can differ in zip mtimes; the *content* may not)."""
    ref = FlowStore.open(ref_dir)
    got = FlowStore.open(got_dir)
    assert got.capture_key == ref.capture_key
    assert [w.index for w in got.windows] == [w.index for w in ref.windows]
    for entry in ref.windows:
        a = ref.read_window(entry.index)
        b = got.read_window(entry.index)
        for name in _ARRAY_FIELDS:
            x, y = getattr(a, name), getattr(b, name)
            assert x.dtype == y.dtype, f"w{entry.index}.{name} dtype"
            nan_ok = x.dtype.kind == "f"
            assert np.array_equal(x, y, equal_nan=nan_ok), (
                f"window {entry.index} column {name} differs"
            )


@pytest.mark.parametrize("seed", [3, 11])
def test_depth_sweep_single_worker_is_bit_identical(seed, tmp_path):
    reference = run_stream_capture(_config(seed, 1, 0), tmp_path / "ref")
    assert reference.complete
    for depth in (1, 2):
        out = tmp_path / f"d{depth}"
        result = run_stream_capture(_config(seed, 1, depth), out)
        assert result.complete
        assert result.rollup.state_digest() == reference.rollup.state_digest()
        assert (
            result.checkpoint.rollup_digest == reference.checkpoint.rollup_digest
        )
        _assert_captures_identical(tmp_path / "ref", out)


@fork_only
@pytest.mark.parametrize("workers,depth", [(2, 1), (2, 2), (4, 2)])
def test_pipelined_pool_workers_match_lockstep(workers, depth, tmp_path):
    reference = run_stream_capture(_config(11, 1, 0), tmp_path / "ref")
    result = run_stream_capture(_config(11, workers, depth), tmp_path / "out")
    assert result.complete
    assert result.rollup.state_digest() == reference.rollup.state_digest()
    _assert_captures_identical(tmp_path / "ref", tmp_path / "out")


@pytest.mark.parametrize("engine", ["python", "vectorized"])
def test_engine_knob_is_digest_neutral(engine, tmp_path):
    config = dataclasses.replace(_config(3, 1, 1), engine=engine)
    result = run_stream_capture(config, tmp_path / engine)
    assert result.complete
    reference = run_stream_capture(_config(3, 1, 0), tmp_path / "ref")
    assert result.rollup.state_digest() == reference.rollup.state_digest()


def test_execution_knobs_stay_out_of_scenario_digest():
    from repro.scenario import get_scenario

    scenario = get_scenario("baseline-geo")
    tweaked = scenario.with_overrides(
        {"execution.pipeline_depth": 2, "execution.engine": "vectorized"}
    )
    assert tweaked.digest() == scenario.digest()
    assert tweaked.execution.pipeline_depth == 2
    assert tweaked.execution.engine == "vectorized"


def test_bad_execution_knobs_are_rejected():
    from repro.scenario import ScenarioError, get_scenario

    scenario = get_scenario("baseline-geo")
    with pytest.raises(ScenarioError):
        scenario.with_overrides({"execution.pipeline_depth": -1})
    with pytest.raises(ScenarioError):
        scenario.with_overrides({"execution.engine": "cuda"})
    with pytest.raises(ValueError):
        run_stream_capture(
            dataclasses.replace(_config(3, 1, 1), engine="cuda"), "/nonexistent"
        )


def test_stage_split_lands_in_telemetry(tmp_path):
    result = run_stream_capture(_config(3, 1, 1), tmp_path / "cap")
    assert result.complete
    for t in result.telemetry:
        assert t.gen_seconds > 0
        assert t.spill_seconds >= 0
        assert t.fold_seconds >= 0
        assert t.busy_seconds == pytest.approx(
            t.gen_seconds + t.spill_seconds + t.fold_seconds
        )
    from repro.stream import render_telemetry

    table = render_telemetry(result.telemetry)
    for column in ("Gen ms", "Spill ms", "Fold ms", "Seconds"):
        assert column in table


def test_resume_mid_capture_pipelined(tmp_path):
    """A bounded pipelined run resumes to the lockstep digest."""
    reference = run_stream_capture(_config(11, 1, 0), tmp_path / "ref")
    partial = run_stream_capture(
        _config(11, 1, 2), tmp_path / "cap", max_windows=2
    )
    assert not partial.complete
    assert partial.checkpoint.windows_done == 2
    resumed = run_stream_capture(_config(11, 1, 2), tmp_path / "cap", resume=True)
    assert resumed.complete
    assert resumed.rollup.state_digest() == reference.rollup.state_digest()
    _assert_captures_identical(tmp_path / "ref", tmp_path / "cap")


class _WindowOneFailure(RuntimeError):
    pass


def test_commit_failure_surfaces_on_main_thread(tmp_path):
    """A commit-side exception must not deadlock the bounded queue: it
    parks, the producer drains, and the error re-raises on the caller's
    thread with the checkpoint covering exactly the committed windows."""

    def explode(t):
        if t.window == 1:
            raise _WindowOneFailure("window 1 observer failed")

    with pytest.raises(_WindowOneFailure):
        run_stream_capture(
            _config(3, 1, 2), tmp_path / "cap", on_window=explode
        )
    from repro.stream import load_checkpoint

    checkpoint = load_checkpoint(tmp_path / "cap")
    # window 1's commit sequence finished (the observer runs last), so
    # the cursor covers it; the capture stays resumable to completion
    assert checkpoint is not None
    assert checkpoint.windows_done == 2
    resumed = run_stream_capture(_config(3, 1, 2), tmp_path / "cap", resume=True)
    assert resumed.complete
    reference = run_stream_capture(_config(3, 1, 0), tmp_path / "ref")
    assert resumed.rollup.state_digest() == reference.rollup.state_digest()
