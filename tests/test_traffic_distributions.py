"""The distribution library: spec round-trips, statistical fidelity,
and the bit-identity contract the workload migration rests on."""

import hashlib

import numpy as np
import pytest

from repro.analysis.dataset import _ARRAY_FIELDS
from repro.traffic.distributions import (
    DAY_FACTOR_BINGE,
    DistributionError,
    EmpiricalCDF,
    LogNormal,
    Mixture,
    Pareto,
    Weibull,
    parse_spec,
    unit_lognormal,
)
from repro.traffic.workload import WorkloadConfig, WorkloadGenerator

#: SHA-256 over the seed schema's 19 columns of the (60 customers,
#: 2 days, seed 5) capture, recorded BEFORE the distribution migration.
#: This is the tentpole's bit-identity anchor: if any migrated draw
#: changes RNG stream consumption or float expression grouping, this
#: moves.
GOLDEN_CAPTURE_SHA256 = (
    "0fe71852192f1233e0743b5ee367ba4c4fafa1407d85a12af867c79b7bef1f93"
)


EXAMPLES = [
    LogNormal(12.4, 1.8),
    LogNormal(1.0, 0.0),
    Pareto(1500.0, 1.2),
    Weibull(900.0, 0.8),
    EmpiricalCDF((1.0, 5.0, 20.0), (0.25, 0.75, 1.0)),
    Mixture((LogNormal(8.0, 0.5), LogNormal(1.0, 0.5)), (0.035, 0.965)),
    Mixture(
        (Pareto(100.0, 1.5), Weibull(40.0, 2.0), LogNormal(3.0, 1.0)),
        (0.2, 0.3, 0.5),
    ),
]


@pytest.mark.parametrize("dist", EXAMPLES, ids=lambda d: type(d).__name__)
def test_spec_round_trip(dist):
    """parse_spec inverts spec() exactly, and the string is canonical."""
    text = dist.spec()
    parsed = parse_spec(text)
    assert parsed == dist
    assert parsed.spec() == text


@pytest.mark.parametrize("dist", EXAMPLES, ids=lambda d: type(d).__name__)
def test_sample_and_params(dist):
    rng = np.random.default_rng(7)
    draws = dist.sample(rng, 1000)
    assert draws.shape == (1000,)
    assert np.all(draws > 0)
    payload = dist.params()
    assert payload["kind"] in ("lognormal", "pareto", "weibull", "empirical", "mixture")


def test_spec_parsing_tolerates_whitespace():
    assert parse_spec(" lognormal( 12.4 , 1.8 ) ") == LogNormal(12.4, 1.8)


@pytest.mark.parametrize(
    "bad",
    [
        "gaussian(0,1)",
        "lognormal(1.0)",
        "lognormal(-1.0,0.5)",
        "pareto(1.0,0)",
        "weibull(0,1)",
        "mixture(0.5*lognormal(1,1))",
        "mixture(0.5*lognormal(1,1),0.6*lognormal(2,1))",
        "empirical(1.0:0.5,2.0:0.9)",
        "empirical(1.0:0.9,2.0:0.5)",
        "lognormal(1.0,0.5",
        "not a spec",
        "empirical(1.0;0.5)",
    ],
)
def test_bad_specs_raise(bad):
    with pytest.raises(DistributionError):
        parse_spec(bad)


@pytest.mark.parametrize("seed", [0, 1, 2, 3, 4])
def test_empirical_cdf_ks(seed):
    """1M draws stay KS-close to the tabulated CDF for every seed.

    For a discrete distribution the empirical CDF at each support point
    converges at the usual sqrt(n) rate; 1e6 draws put the max
    deviation well under 0.005.
    """
    dist = EmpiricalCDF(
        values=(0.5, 1.0, 2.0, 4.0, 8.0, 16.0),
        cdf=(0.1, 0.3, 0.55, 0.8, 0.95, 1.0),
    )
    rng = np.random.default_rng(seed)
    draws = dist.sample(rng, 1_000_000)
    points = np.asarray(dist.values, dtype=np.float64)
    empirical = np.array([(draws <= p).mean() for p in points])
    analytic = dist.cdf_at(points)
    assert np.abs(empirical - analytic).max() < 0.005


def test_empirical_cdf_at_edges():
    dist = EmpiricalCDF((1.0, 2.0), (0.4, 1.0))
    x = np.array([0.5, 1.0, 1.5, 2.0, 3.0])
    np.testing.assert_allclose(dist.cdf_at(x), [0.0, 0.4, 0.4, 1.0, 1.0])


def test_mixture_common_sigma_matches_legacy_binge_draws():
    """The Mixture fast path is bitwise-equal to the pre-refactor binge
    expression, including RNG stream order (uniform first, base after)."""
    n = 50_000
    binge_prob = np.full(n, 0.035)
    binge_prob[: n // 2] = 0.12  # community-AP style override

    legacy_rng = np.random.default_rng(1234)
    binge = legacy_rng.random(n) < binge_prob
    legacy = legacy_rng.lognormal(0.0, 0.5, n) * np.where(binge, 8.0, 1.0)

    new_rng = np.random.default_rng(1234)
    new = DAY_FACTOR_BINGE.sample(new_rng, n, first_weight=binge_prob)

    assert np.array_equal(legacy, new)
    # and the streams are left in the same state
    assert legacy_rng.random() == new_rng.random()


def test_unit_lognormal_is_bitwise_identity():
    """1.0 * x is a bitwise identity, so unit-median noise draws equal
    the bare rng.lognormal the call sites used to inline."""
    rng_a = np.random.default_rng(9)
    rng_b = np.random.default_rng(9)
    assert np.array_equal(
        unit_lognormal(0.3).sample(rng_a, 10_000),
        rng_b.lognormal(0.0, 0.3, 10_000),
    )


def test_heterogeneous_mixture_selects_components():
    mix = Mixture((Pareto(100.0, 1.5), LogNormal(1.0, 0.1)), (0.5, 0.5))
    draws = mix.sample(np.random.default_rng(3), 20_000)
    # Pareto component's support starts at 100; LogNormal(1, 0.1) stays
    # near 1 — both modes must be present at roughly their weights.
    frac_heavy = (draws >= 100.0).mean()
    assert 0.45 < frac_heavy < 0.55


def test_mixture_first_weight_needs_two_components():
    mix = Mixture(
        (LogNormal(1.0, 0.5), LogNormal(2.0, 0.5), LogNormal(3.0, 0.5)),
        (0.2, 0.3, 0.5),
    )
    with pytest.raises(DistributionError):
        mix.sample(np.random.default_rng(0), 10, first_weight=np.full(10, 0.5))


def test_capture_bit_identical_to_pre_migration_golden():
    """The migrated generator reproduces the pre-refactor capture
    byte-for-byte on the seed schema's 19 columns."""
    frame = WorkloadGenerator(
        WorkloadConfig(n_customers=60, days=2, seed=5)
    ).generate()
    digest = hashlib.sha256()
    for name in _ARRAY_FIELDS[:19]:
        digest.update(name.encode())
        digest.update(np.ascontiguousarray(getattr(frame, name)).tobytes())
    assert digest.hexdigest() == GOLDEN_CAPTURE_SHA256
