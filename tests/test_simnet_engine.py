"""Unit tests for the discrete-event scheduler."""

import pytest

from repro.simnet.engine import Simulator


def test_events_run_in_time_order():
    sim = Simulator()
    out = []
    sim.schedule(2.0, out.append, "late")
    sim.schedule(1.0, out.append, "early")
    sim.schedule(3.0, out.append, "latest")
    sim.run()
    assert out == ["early", "late", "latest"]


def test_ties_run_in_scheduling_order():
    sim = Simulator()
    out = []
    for i in range(5):
        sim.schedule(1.0, out.append, i)
    sim.run()
    assert out == [0, 1, 2, 3, 4]


def test_now_advances_to_event_time():
    sim = Simulator()
    seen = []
    sim.schedule(1.5, lambda: seen.append(sim.now))
    sim.run()
    assert seen == [1.5]
    assert sim.now == 1.5


def test_run_until_stops_before_later_events():
    sim = Simulator()
    out = []
    sim.schedule(1.0, out.append, "a")
    sim.schedule(5.0, out.append, "b")
    sim.run(until=2.0)
    assert out == ["a"]
    assert sim.now == 2.0  # time advanced to the horizon
    sim.run()
    assert out == ["a", "b"]


def test_cancelled_events_are_skipped():
    sim = Simulator()
    out = []
    event = sim.schedule(1.0, out.append, "cancelled")
    sim.schedule(2.0, out.append, "kept")
    event.cancel()
    sim.run()
    assert out == ["kept"]


def test_cannot_schedule_into_the_past():
    sim = Simulator()
    sim.schedule(1.0, lambda: None)
    sim.run()
    with pytest.raises(ValueError):
        sim.at(0.5, lambda: None)
    with pytest.raises(ValueError):
        sim.schedule(-1.0, lambda: None)


def test_events_scheduled_during_execution_run():
    sim = Simulator()
    out = []

    def chain(n):
        out.append(n)
        if n < 3:
            sim.schedule(1.0, chain, n + 1)

    sim.schedule(0.0, chain, 0)
    sim.run()
    assert out == [0, 1, 2, 3]
    assert sim.now == 3.0


def test_max_events_limit():
    sim = Simulator()
    out = []
    for i in range(10):
        sim.schedule(float(i), out.append, i)
    sim.run(max_events=4)
    assert out == [0, 1, 2, 3]


def test_step_returns_false_on_empty_queue():
    sim = Simulator()
    assert sim.step() is False


def test_events_processed_counter():
    sim = Simulator()
    for i in range(3):
        sim.schedule(float(i), lambda: None)
    sim.run()
    assert sim.events_processed == 3
