"""The example scripts must at least compile; the quickstart runs."""

import py_compile
import subprocess
import sys
from pathlib import Path

import pytest

EXAMPLES = sorted(Path(__file__).parent.parent.glob("examples/*.py"))


def test_examples_exist():
    names = {p.name for p in EXAMPLES}
    assert {"quickstart.py", "community_wifi_africa.py", "dns_cdn_study.py"} <= names
    assert len(EXAMPLES) >= 5


@pytest.mark.parametrize("path", EXAMPLES, ids=lambda p: p.name)
def test_examples_compile(path):
    py_compile.compile(str(path), doraise=True)


def test_quickstart_runs_small():
    result = subprocess.run(
        [sys.executable, "examples/quickstart.py", "80", "1"],
        capture_output=True,
        text=True,
        timeout=300,
        cwd=Path(__file__).parent.parent,
    )
    assert result.returncode == 0, result.stderr
    assert "Table 1" in result.stdout
    assert "Figure 8a" in result.stdout
