"""Tests for the shared aggregation primitives."""

import numpy as np
import pytest

from repro.analysis.aggregate import (
    country_breakdown,
    customer_day_bytes,
    customer_day_flow_counts,
    customers_per_country,
    dominant_resolver_per_customer,
    format_table,
    hourly_volume_utc,
    local_hour_of,
    protocol_volume_share,
    top_countries_by_volume,
)
from repro.internet.geo import COUNTRIES


def test_protocol_volume_share_sums_to_100(small_frame):
    shares = protocol_volume_share(small_frame)
    assert sum(shares.values()) == pytest.approx(100.0)
    assert all(v >= 0 for v in shares.values())


def test_protocol_volume_share_with_mask(small_frame):
    mask = small_frame.country_mask("Germany")
    shares = protocol_volume_share(small_frame, mask)
    assert sum(shares.values()) == pytest.approx(100.0)
    empty = protocol_volume_share(small_frame, np.zeros(len(small_frame), dtype=bool))
    assert all(v == 0.0 for v in empty.values())


def test_country_breakdown_sorted_and_complete(small_frame):
    rows = country_breakdown(small_frame)
    volumes = [v for _, v, _ in rows]
    assert volumes == sorted(volumes, reverse=True)
    assert sum(volumes) == pytest.approx(100.0)
    assert sum(c for *_, c in rows) == pytest.approx(100.0)


def test_top_countries(small_frame):
    top = top_countries_by_volume(small_frame, 5)
    assert len(top) == 5
    assert top[0] == "Congo"


def test_hourly_volume_normalized(small_frame):
    curve = hourly_volume_utc(small_frame, "Spain")
    assert curve.max() == pytest.approx(1.0)
    assert len(curve) == 24
    non_robust = hourly_volume_utc(small_frame, "Spain", robust=False)
    assert non_robust.max() == pytest.approx(1.0)


def test_local_hour_of_shifts_by_longitude(small_frame):
    local = local_hour_of(small_frame)
    assert np.all((local >= 0) & (local < 24))
    kenya_mask = small_frame.country_mask("Kenya")
    if kenya_mask.any():
        shift = (local[kenya_mask] - small_frame.hour_utc[kenya_mask]) % 24
        assert np.allclose(shift, COUNTRIES["Kenya"].lon_deg / 15.0, atol=0.01)


def test_customer_day_units(small_frame):
    counts = customer_day_flow_counts(small_frame, "UK")
    assert counts.min() >= 1
    active = customer_day_bytes(small_frame, "UK", "down", active_only=True)
    everyone = customer_day_bytes(small_frame, "UK", "down", active_only=False)
    assert len(active) <= len(everyone)
    with pytest.raises(ValueError):
        customer_day_bytes(small_frame, "UK", direction="sideways")


def test_customers_per_country_totals(small_frame):
    per_country = customers_per_country(small_frame)
    assert sum(per_country.values()) == len(np.unique(small_frame.customer_id))


def test_dominant_resolver_majority(small_frame):
    resolver_of = dominant_resolver_per_customer(small_frame)
    assert len(resolver_of) > 100
    assert all(idx >= 0 for idx in resolver_of.values())


def test_format_table_alignment():
    table = format_table(["a", "longheader"], [("x", 1), ("yy", 22)], title="T")
    lines = table.splitlines()
    assert lines[0] == "T"
    assert "longheader" in lines[1]
    widths = {len(line) for line in lines[1:]}
    assert len(widths) <= 2  # header/sep/rows aligned (rows may trail-strip)
