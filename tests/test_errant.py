"""Tests for the ERRANT model reproduction."""

import numpy as np
import pytest

from repro.errant.emulator import Emulator, compare_profiles
from repro.errant.model import AccessLinkProfile, fit_profile, load_profiles, save_profiles
from repro.errant.profiles import BUILTIN_PROFILES


def test_builtin_profiles_sane():
    geo = BUILTIN_PROFILES["geo-satcom-reference"]
    starlink = BUILTIN_PROFILES["starlink"]
    ftth = BUILTIN_PROFILES["ftth"]
    assert geo.rtt_median_ms > 10 * starlink.rtt_median_ms
    assert ftth.down_median_mbps > geo.down_median_mbps


def test_profile_sampling(rng):
    profile = BUILTIN_PROFILES["geo-satcom-reference"]
    rtts = profile.sample_rtt_ms(rng, 5000)
    assert np.median(rtts) == pytest.approx(profile.rtt_median_ms, rel=0.05)
    assert np.all(rtts > 0)


def test_fit_profile_from_frame(small_frame):
    profile = fit_profile(small_frame, "Spain")
    assert 550 < profile.rtt_median_ms < 1500
    assert 5 < profile.down_median_mbps < 110
    assert profile.up_median_mbps <= 5.0  # commercial uplink cap
    assert profile.name == "geo-satcom-spain"


def test_fit_profile_peak_slower(small_frame):
    full = fit_profile(small_frame, "Congo")
    peak = fit_profile(small_frame, "Congo", peak_only=True)
    assert peak.rtt_median_ms > full.rtt_median_ms * 0.95
    assert peak.name.endswith("-peak")


def test_fit_requires_samples(small_frame):
    empty = small_frame.filter(np.zeros(len(small_frame), dtype=bool))
    with pytest.raises(ValueError):
        fit_profile(empty, "Spain")


def test_profile_round_trip(tmp_path, small_frame):
    profiles = {
        "spain": fit_profile(small_frame, "Spain"),
        "builtin": BUILTIN_PROFILES["starlink"],
    }
    path = tmp_path / "profiles.json"
    save_profiles(profiles, path)
    loaded = load_profiles(path)
    assert loaded["spain"] == profiles["spain"]
    assert loaded["builtin"] == profiles["builtin"]


def test_emulator_transfer_ordering():
    """GEO is slower than Starlink is slower than FTTH for small
    objects (latency-bound)."""
    times = compare_profiles(BUILTIN_PROFILES, size_bytes=500_000, n=150, seed=3)
    assert times["geo-satcom-reference"] > times["starlink"] > times["ftth"]


def test_emulator_latency_dominates_small_objects():
    emulator = Emulator(BUILTIN_PROFILES["geo-satcom-reference"], seed=1)
    small = emulator.emulate_transfer(10_000, n=100).mean()
    assert small > 1.0  # ≥ one satellite round trip for TLS + request


def test_emulator_rate_dominates_large_objects():
    emulator = Emulator(BUILTIN_PROFILES["geo-satcom-reference"], seed=1)
    large = emulator.emulate_transfer(100_000_000, n=20).mean()
    assert large > 25.0  # 100 MB at ~20 Mb/s


def test_page_load_scales_with_objects():
    emulator = Emulator(BUILTIN_PROFILES["geo-satcom-reference"], seed=1)
    light = emulator.emulate_page_load(n_objects=6, n=10).mean()
    heavy = emulator.emulate_page_load(n_objects=60, n=10).mean()
    assert heavy > 2 * light
    with pytest.raises(ValueError):
        emulator.emulate_page_load(n_objects=0)


def test_netem_commands_format():
    emulator = Emulator(BUILTIN_PROFILES["starlink"], seed=0)
    commands = emulator.netem_commands("eth1")
    assert len(commands) == 2
    assert "netem" in commands[0] and "eth1" in commands[0]
    assert "delay" in commands[0] and "loss" in commands[0]
    assert "rate 140mbit" in commands[1]
