"""Tests for the analytic PEP fetch model."""

import pytest

from repro.satcom.pagefetch import (
    FetchParameters,
    fetch_time_with_pep,
    fetch_time_without_pep,
    pep_speedup,
    slow_start_rounds,
)


def _params(**kwargs):
    defaults = dict(
        size_bytes=500_000,
        satellite_rtt_s=0.55,
        ground_rtt_s=0.02,
        rate_bps=20e6,
    )
    defaults.update(kwargs)
    return FetchParameters(**defaults)


def test_parameters_validated():
    with pytest.raises(ValueError):
        _params(rate_bps=0)
    with pytest.raises(ValueError):
        _params(size_bytes=-1)
    with pytest.raises(ValueError):
        _params(satellite_rtt_s=-0.1)


def test_slow_start_rounds_zero_for_empty_transfer():
    assert slow_start_rounds(0, 10e6, 0.55) == 0


def test_slow_start_rounds_grow_with_bdp():
    low_bdp = slow_start_rounds(10_000_000, 10e6, 0.02)
    high_bdp = slow_start_rounds(10_000_000, 10e6, 0.55)
    assert high_bdp > low_bdp


def test_slow_start_stops_when_transfer_smaller_than_window():
    assert slow_start_rounds(5_000, 100e6, 0.55) <= 1


def test_pep_always_helps_on_satellite():
    """The whole point of RFC 3135 on GEO links."""
    assert pep_speedup(_params()) > 1.5


def test_pep_gain_grows_with_rtt():
    sat = pep_speedup(_params(satellite_rtt_s=0.55))
    terrestrial = pep_speedup(_params(satellite_rtt_s=0.01))
    assert sat > terrestrial


def test_without_pep_dominated_by_round_trips():
    params = _params(size_bytes=200_000)
    rtt = params.satellite_rtt_s + params.ground_rtt_s
    without = fetch_time_without_pep(params)
    assert without >= 3 * rtt  # handshake + 2×TLS at least


def test_with_pep_tls_still_pays_one_satellite_rtt():
    """TLS is end-to-end; the PEP cannot remove that round trip."""
    with_tls = fetch_time_with_pep(_params(tls=True))
    without_tls = fetch_time_with_pep(_params(tls=False))
    assert with_tls - without_tls == pytest.approx(0.57, abs=0.01)


def test_transfer_term_matches_rate():
    params = _params(size_bytes=10_000_000, rate_bps=10e6)
    assert fetch_time_with_pep(params) >= 8.0  # ≥ serialized transfer time
