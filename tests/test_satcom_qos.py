"""Tests for the ground-station QoS scheduler."""

import pytest

from repro.satcom.qos import (
    DEFAULT_RULES,
    ClassificationRule,
    PriorityShapingScheduler,
    TrafficClass,
    classify,
)


# --- classification -----------------------------------------------------------


def test_dns_is_interactive():
    assert classify("udp", 53, None) is TrafficClass.INTERACTIVE


def test_video_domains_shaped():
    for domain in ("rr1---sn-x.googlevideo.com", "c1.oca.nflxvideo.net", "ocdn.epg.sky.com"):
        assert classify("tcp", 443, domain) is TrafficClass.VIDEO, domain


def test_updates_are_bulk():
    assert classify("tcp", 80, "au.download.windowsupdate.com") is TrafficClass.BULK


def test_web_default_on_443():
    assert classify("tcp", 443, "www.example.com") is TrafficClass.WEB


def test_unmatched_falls_to_bulk():
    assert classify("tcp", 9999, None) is TrafficClass.BULK


def test_first_match_wins():
    rules = (
        ClassificationRule(TrafficClass.INTERACTIVE, ports=(443,)),
        ClassificationRule(TrafficClass.VIDEO, domain_pattern="video"),
    )
    assert classify("tcp", 443, "video.example", rules) is TrafficClass.INTERACTIVE


def test_rule_protocol_filter():
    rule = ClassificationRule(TrafficClass.INTERACTIVE, ports=(53,), protocol="udp")
    assert not rule.matches("tcp", 53, None)
    assert rule.matches("udp", 53, None)


def test_rule_domain_requires_domain():
    rule = ClassificationRule(TrafficClass.VIDEO, domain_pattern="video")
    assert not rule.matches("tcp", 443, None)


# --- scheduler ------------------------------------------------------------------


def _collectors():
    out = []
    return out, lambda p: out.append(p)


def test_strict_priority_order():
    sched = PriorityShapingScheduler()
    out, deliver = _collectors()
    sched.enqueue(TrafficClass.BULK, "bulk", 100, deliver)
    sched.enqueue(TrafficClass.INTERACTIVE, "dns", 100, deliver)
    sched.enqueue(TrafficClass.WEB, "web", 100, deliver)
    released = sched.drain(now=0.0, budget_bytes=10_000)
    assert released == ["dns", "web", "bulk"]


def test_budget_limits_release():
    sched = PriorityShapingScheduler()
    out, deliver = _collectors()
    for i in range(5):
        sched.enqueue(TrafficClass.WEB, i, 100, deliver)
    released = sched.drain(now=0.0, budget_bytes=250)
    assert released == [0, 1]
    assert sched.pending == 3


def test_video_shaping_holds_back_packets():
    sched = PriorityShapingScheduler(
        class_rate_bps={TrafficClass.VIDEO: 8_000}  # 1000 B/s
    )
    # exhaust the video bucket's default burst
    out, deliver = _collectors()
    sched.enqueue(TrafficClass.VIDEO, "v1", 256 * 1024, deliver)
    sched.enqueue(TrafficClass.VIDEO, "v2", 256 * 1024, deliver)
    sched.enqueue(TrafficClass.BULK, "bulk", 100, deliver)
    released = sched.drain(now=0.0, budget_bytes=10_000_000)
    # bulk outranks video; the first video packet eats the burst, the
    # second is held by the shaper
    assert released == ["bulk", "v1"]
    # tokens refill over time
    released_later = sched.drain(now=400.0, budget_bytes=10_000_000)
    assert released_later == ["v2"]


def test_queue_limit_drops():
    sched = PriorityShapingScheduler(queue_limit_bytes=150)
    out, deliver = _collectors()
    assert sched.enqueue(TrafficClass.WEB, "a", 100, deliver)
    assert not sched.enqueue(TrafficClass.WEB, "b", 100, deliver)
    assert sched.drops == 1


def test_counters():
    sched = PriorityShapingScheduler()
    out, deliver = _collectors()
    sched.enqueue(TrafficClass.WEB, "a", 100, deliver)
    sched.drain(now=0.0, budget_bytes=1000)
    assert sched.released_by_class[TrafficClass.WEB] == 1
    assert sched.backlog_bytes == 0


def test_default_rules_cover_all_classes():
    classes = {rule.traffic_class for rule in DEFAULT_RULES}
    assert TrafficClass.INTERACTIVE in classes
    assert TrafficClass.VIDEO in classes
