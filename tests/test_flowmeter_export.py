"""Tests for flow-log I/O."""

import csv

from repro.flowmeter.export import read_jsonl, write_csv, write_jsonl
from repro.flowmeter.records import FlowRecord, L7Protocol


def _records():
    return [
        FlowRecord(
            client_ip=1, server_ip=2, client_port=1000, server_port=443,
            l7=L7Protocol.HTTPS, ts_start=0.0, ts_end=1.5,
            bytes_up=100, bytes_down=5000, pkts_up=3, pkts_down=6,
            rtt_samples=2, rtt_min_ms=11.0, rtt_avg_ms=12.0, rtt_max_ms=13.0,
            rtt_std_ms=1.0, sat_rtt_ms=620.0, domain="a.example",
            first_pkt_times=[0.0, 0.1],
        ),
        FlowRecord(
            client_ip=3, server_ip=4, client_port=1001, server_port=53,
            l7=L7Protocol.DNS, ts_start=2.0, ts_end=2.1,
            dns_qname="b.example", dns_resolver_ip=4, dns_response_ms=20.0,
        ),
    ]


def test_jsonl_round_trip(tmp_path):
    path = tmp_path / "flows.jsonl"
    assert write_jsonl(_records(), path) == 2
    loaded = read_jsonl(path)
    assert loaded == _records()


def test_jsonl_skips_blank_lines(tmp_path):
    path = tmp_path / "flows.jsonl"
    write_jsonl(_records(), path)
    path.write_text(path.read_text() + "\n\n")
    assert len(read_jsonl(path)) == 2


def test_csv_export(tmp_path):
    path = tmp_path / "flows.csv"
    assert write_csv(_records(), path) == 2
    with open(path) as handle:
        rows = list(csv.DictReader(handle))
    assert len(rows) == 2
    assert rows[0]["l7"] == "tcp/https"
    assert rows[0]["domain"] == "a.example"
    assert rows[1]["dns_qname"] == "b.example"


def test_record_helpers():
    record = _records()[0]
    assert record.duration_s == 1.5
    assert record.bytes_total == 5100
    assert record.download_throughput_bps() == 5000 * 8 / 1.5
    instant = _records()[1]
    assert instant.download_throughput_bps() is None
