"""Shared fixtures.

The flow-level dataset and the packet-level simulation are expensive
relative to a unit test, so they are produced once per session and
shared by every report/integration test.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.pipeline import PacketSimConfig, run_packet_simulation
from repro.traffic.workload import WorkloadConfig, WorkloadGenerator


@pytest.fixture(scope="session")
def small_generator() -> WorkloadGenerator:
    """A small but statistically usable workload generator."""
    return WorkloadGenerator(WorkloadConfig(n_customers=420, days=3, seed=42))


@pytest.fixture(scope="session")
def small_frame(small_generator):
    """~1.5 M flows across all countries, 3 days."""
    return small_generator.generate()


@pytest.fixture(scope="session")
def packet_sim_result():
    """A packet-level run of the full Figure 1 path."""
    return run_packet_simulation(
        PacketSimConfig(
            countries=("Spain", "Congo", "Ireland", "Nigeria"),
            flows_per_customer=4,
            seed=5,
        )
    )


@pytest.fixture()
def rng() -> np.random.Generator:
    """A fresh deterministic RNG per test."""
    return np.random.default_rng(1234)
