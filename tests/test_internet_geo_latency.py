"""Tests for geography and the terrestrial latency model."""

import numpy as np
import pytest

from repro.internet.geo import (
    COUNTRIES,
    GROUND_STATION,
    SERVER_SITES,
    african_countries,
    european_countries,
    geodesic_km,
)
from repro.internet.latency import LatencyModel


def test_geodesic_known_distances():
    assert geodesic_km(COUNTRIES["UK"], COUNTRIES["Spain"]) == pytest.approx(1265, rel=0.05)
    assert geodesic_km(GROUND_STATION, SERVER_SITES["Milan-IX"]) == pytest.approx(520, rel=0.15)
    assert geodesic_km(COUNTRIES["UK"], COUNTRIES["UK"]) == 0.0


def test_geodesic_symmetric():
    a, b = COUNTRIES["Congo"], COUNTRIES["Ireland"]
    assert geodesic_km(a, b) == pytest.approx(geodesic_km(b, a))


def test_continent_partitions():
    europe = european_countries()
    africa = african_countries()
    assert "Spain" in europe and "Congo" in africa
    assert not set(europe) & set(africa)
    assert len(europe) + len(africa) == len(COUNTRIES)


def test_footprint_spans_ireland_to_south_africa():
    assert "Ireland" in COUNTRIES and "South Africa" in COUNTRIES
    assert len(COUNTRIES) > 20


def test_latency_anchors_match_figure9_bumps():
    """Milan ≈12 ms (peered CDNs), US-East ≈95, US-West ≈180,
    Kinshasa in the 300–400 ms African tail."""
    model = LatencyModel()

    def rtt(site):
        return model.base_rtt_ms(GROUND_STATION, SERVER_SITES[site])

    assert rtt("Milan-IX") == pytest.approx(12.0, abs=2.0)
    assert 14.0 <= rtt("Frankfurt") <= 20.0
    assert 85.0 <= rtt("US-East") <= 110.0
    assert 160.0 <= rtt("US-West") <= 200.0
    assert 300.0 <= rtt("Kinshasa") <= 400.0
    assert 100.0 <= rtt("Lagos") <= 135.0
    assert 220.0 <= rtt("Beijing") <= 270.0


def test_latency_sampling_jitter(rng):
    model = LatencyModel()
    samples = model.sample_rtt_ms(GROUND_STATION, SERVER_SITES["Milan-IX"], rng, 4000)
    base = model.base_rtt_ms(GROUND_STATION, SERVER_SITES["Milan-IX"])
    assert np.median(samples) == pytest.approx(base, rel=0.05)
    assert samples.std() > 0
    assert np.all(samples > 0)


def test_one_way_is_half_rtt():
    model = LatencyModel()
    site = SERVER_SITES["Frankfurt"]
    assert model.one_way_ms(GROUND_STATION, site) == pytest.approx(
        model.base_rtt_ms(GROUND_STATION, site) / 2
    )


def test_stretch_factor_symmetric_lookup():
    model = LatencyModel()
    assert model.stretch_factor(GROUND_STATION, SERVER_SITES["Lagos"]) == model.stretch_factor(
        SERVER_SITES["Lagos"], GROUND_STATION
    )


def test_unknown_continent_pair_gets_default():
    model = LatencyModel()
    from repro.internet.geo import Location

    exotic = Location("exotic", 0.0, 0.0, "Oceania")
    assert model.stretch_factor(GROUND_STATION, exotic) == pytest.approx(1.6)
