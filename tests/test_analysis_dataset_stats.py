"""Tests for the columnar dataset and statistics helpers."""

import numpy as np
import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.analysis.dataset import FlowFrame
from repro.analysis.stats import (
    boxplot_stats,
    ccdf,
    ccdf_at,
    cdf_at,
    median_by_group,
    quantiles,
    share_by_group,
)
from repro.flowmeter.records import FlowRecord, L7Protocol


# --- stats ------------------------------------------------------------------


def test_ccdf_basic():
    x, p = ccdf(np.array([1.0, 2.0, 3.0, 4.0]))
    assert list(x) == [1.0, 2.0, 3.0, 4.0]
    assert p[0] == 0.75
    assert p[-1] == 0.0


def test_ccdf_empty_and_nan():
    x, p = ccdf(np.array([]))
    assert len(x) == 0
    x, p = ccdf(np.array([np.nan, 1.0]))
    assert len(x) == 1


def test_cdf_ccdf_at():
    values = np.array([1.0, 2.0, 3.0, 4.0])
    assert cdf_at(values, 2.5) == 0.5
    assert ccdf_at(values, 2.5) == 0.5
    assert cdf_at(values, 10.0) == 1.0
    assert np.isnan(cdf_at(np.array([]), 1.0))


@given(st.lists(st.floats(min_value=0.0, max_value=1e6, allow_nan=False), min_size=1, max_size=200))
def test_ccdf_properties(values):
    x, p = ccdf(np.array(values))
    assert np.all(np.diff(x) >= 0)          # x sorted
    assert np.all(np.diff(p) <= 1e-12)      # p non-increasing
    assert p[-1] == 0.0
    assert np.all((0.0 <= p) & (p <= 1.0))


def test_quantiles_match_numpy(rng):
    values = rng.normal(10, 2, 500)
    ours = quantiles(values, (0.25, 0.5, 0.75))
    theirs = np.quantile(values, (0.25, 0.5, 0.75))
    assert np.allclose(ours, theirs)


def test_boxplot_stats_ordering(rng):
    stats = boxplot_stats(rng.lognormal(0, 1, 2000))
    assert stats.p5 <= stats.q1 <= stats.median <= stats.q3 <= stats.p95
    assert stats.n == 2000
    empty = boxplot_stats(np.array([]))
    assert empty.n == 0 and np.isnan(empty.median)


def test_share_by_group():
    keys = np.array([0, 0, 1, 1, 1])
    weights = np.array([1.0, 1.0, 2.0, 2.0, 4.0])
    shares = share_by_group(keys, weights)
    assert shares[0] == pytest.approx(0.2)
    assert shares[1] == pytest.approx(0.8)
    assert share_by_group(keys, np.zeros(5)) == {}


def test_median_by_group():
    keys = np.array([0, 0, 1])
    values = np.array([1.0, 3.0, 10.0])
    medians = median_by_group(keys, values)
    assert medians == {0: 2.0, 1: 10.0}


# --- FlowFrame ----------------------------------------------------------------


def test_filter_preserves_pools(small_frame):
    subset = small_frame.filter(small_frame.country_mask("Spain"))
    assert subset.countries == small_frame.countries
    assert len(subset) < len(small_frame)
    assert np.all(subset.country_idx == small_frame.countries.index("Spain"))


def test_filter_and_concat_copy_pool_lists(small_frame):
    """Derived frames own fresh pool list objects: mutating one frame's
    pool must never corrupt a sibling's (regression for shared lists)."""
    subset = small_frame.filter(small_frame.country_mask("Spain"))
    assert subset.countries is not small_frame.countries
    assert subset.domains is not small_frame.domains
    subset.countries.append("Atlantis")
    assert "Atlantis" not in small_frame.countries

    congo = small_frame.filter(small_frame.country_mask("Congo"))
    merged = FlowFrame.concat(
        [congo, small_frame.filter(small_frame.country_mask("UK"))]
    )
    assert merged.countries is not congo.countries
    merged.resolvers.append("bogus")
    assert congo.resolvers == small_frame.resolvers


def test_load_npz_coerces_drifted_dtypes(small_frame, tmp_path):
    """Old captures with drifted column dtypes are coerced on load."""
    path = tmp_path / "drifted.npz"
    small_frame.save_npz(path)
    with np.load(path, allow_pickle=True) as data:
        members = {name: data[name] for name in data.files}
    members["bytes_down"] = members["bytes_down"].astype(np.float32)
    members["country_idx"] = members["country_idx"].astype(np.int64)
    np.savez(path, **members)

    loaded = FlowFrame.load_npz(path)
    assert loaded.bytes_down.dtype == FlowFrame.COLUMN_DTYPES["bytes_down"]
    assert loaded.country_idx.dtype == FlowFrame.COLUMN_DTYPES["country_idx"]
    assert np.array_equal(loaded.country_idx, small_frame.country_idx)


def test_customer_day_totals_match_bruteforce(small_frame):
    subset = small_frame.filter(small_frame.country_mask("Ireland"))
    value = subset.bytes_down
    totals = subset.customer_day_totals(value)
    # brute force on a sample of keys
    keys = list(totals)[:20]
    for customer, day in keys:
        mask = (subset.customer_id == customer) & (subset.day == day)
        assert totals[(customer, day)] == pytest.approx(value[mask].sum(), rel=1e-9)


def test_concat_roundtrip(small_frame):
    spain = small_frame.filter(small_frame.country_mask("Spain"))
    congo = small_frame.filter(small_frame.country_mask("Congo"))
    merged = FlowFrame.concat([spain, congo])
    assert len(merged) == len(spain) + len(congo)


def test_concat_rejects_mismatched_pools(small_frame):
    other = FlowFrame.from_records([])
    with pytest.raises(ValueError):
        FlowFrame.concat([small_frame, other])
    with pytest.raises(ValueError):
        FlowFrame.concat([])


def test_l7_mask(small_frame):
    https = small_frame.filter(small_frame.l7_mask(L7Protocol.HTTPS))
    assert len(https) > 0
    assert {L7Protocol.HTTPS} == set(https.l7_labels()[:100])


def test_throughput_nan_on_zero_duration():
    frame = FlowFrame.from_records(
        [
            FlowRecord(
                client_ip=1, server_ip=2, client_port=1, server_port=443,
                l7=L7Protocol.HTTPS, ts_start=0.0, ts_end=0.0, bytes_down=100,
            )
        ]
    )
    assert np.isnan(frame.download_throughput_bps()[0])


def test_from_records_with_country_mapping():
    records = [
        FlowRecord(
            client_ip=10, server_ip=2, client_port=1, server_port=443,
            l7=L7Protocol.HTTPS, ts_start=3600.0, ts_end=3601.0,
            domain="a.example", sat_rtt_ms=600.0,
        ),
        FlowRecord(
            client_ip=20, server_ip=3, client_port=2, server_port=53,
            l7=L7Protocol.DNS, ts_start=90000.0, ts_end=90000.1,
        ),
    ]
    frame = FlowFrame.from_records(records, country_of_client=lambda ip: "Spain" if ip == 10 else "Congo")
    assert frame.countries == ["Spain", "Congo"]
    assert frame.domains == ["a.example"]
    assert frame.day.tolist() == [0, 1]
    assert frame.hour_utc[0] == pytest.approx(1.0)
    assert frame.sat_rtt_ms[0] == 600.0
    assert np.isnan(frame.sat_rtt_ms[1])


def test_column_length_validation():
    frame = FlowFrame.from_records([])
    with pytest.raises(ValueError):
        FlowFrame(
            countries=[], beams=[], services=[], domains=[], sites=[], resolvers=[],
            **{
                name: (np.zeros(2) if name == "ts_start" else np.zeros(1))
                for name in (
                    "ts_start", "day", "hour_utc", "customer_id", "country_idx",
                    "subscriber_type", "beam_idx", "l7_idx", "service_true_idx",
                    "domain_idx", "bytes_up", "bytes_down", "duration_s",
                    "sat_rtt_ms", "ground_rtt_ms", "resolver_idx",
                    "dns_response_ms", "site_idx", "plan_down_mbps",
                )
            },
        )
