"""Unit + property tests for IPv4 helpers."""

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.net.inet import IPv4Network, ip_from_int, ip_in_network, ip_to_int


def test_ip_round_trip_known_values():
    assert ip_to_int("0.0.0.0") == 0
    assert ip_to_int("255.255.255.255") == 0xFFFFFFFF
    assert ip_to_int("10.0.0.1") == 0x0A000001
    assert ip_from_int(0x08080808) == "8.8.8.8"


@given(st.integers(min_value=0, max_value=0xFFFFFFFF))
def test_ip_round_trip_property(value):
    assert ip_to_int(ip_from_int(value)) == value


@pytest.mark.parametrize("bad", ["1.2.3", "1.2.3.4.5", "256.1.1.1", "a.b.c.d", ""])
def test_invalid_addresses_rejected(bad):
    with pytest.raises(ValueError):
        ip_to_int(bad)


def test_ip_from_int_range_checked():
    with pytest.raises(ValueError):
        ip_from_int(-1)
    with pytest.raises(ValueError):
        ip_from_int(1 << 32)


def test_ip_in_network():
    net = ip_to_int("192.168.0.0")
    assert ip_in_network(ip_to_int("192.168.5.1"), net, 16)
    assert not ip_in_network(ip_to_int("192.169.0.1"), net, 16)
    assert ip_in_network(ip_to_int("1.2.3.4"), net, 0)  # /0 matches all


def test_network_parse_and_contains():
    net = IPv4Network.parse("10.1.0.0/16")
    assert net.size == 65536
    assert str(net) == "10.1.0.0/16"
    assert ip_to_int("10.1.255.255") in net
    assert ip_to_int("10.2.0.0") not in net


def test_network_parse_masks_host_bits():
    net = IPv4Network.parse("10.1.2.3/16")
    assert net.base == ip_to_int("10.1.0.0")


def test_network_address_indexing():
    net = IPv4Network.parse("10.0.0.0/24")
    assert net.address(0) == ip_to_int("10.0.0.0")
    assert net.address(255) == ip_to_int("10.0.0.255")
    with pytest.raises(IndexError):
        net.address(256)


def test_network_parse_errors():
    with pytest.raises(ValueError):
        IPv4Network.parse("10.0.0.0")
    with pytest.raises(ValueError):
        IPv4Network.parse("10.0.0.0/33")


def test_network_hosts_iteration():
    net = IPv4Network.parse("10.0.0.0/30")
    assert list(net.hosts()) == [ip_to_int("10.0.0.0") + i for i in range(4)]


@given(st.integers(min_value=0, max_value=0xFFFFFFFF), st.integers(min_value=1, max_value=32))
def test_address_always_inside_own_prefix(value, prefix_len):
    assert ip_in_network(value, value, prefix_len)
