"""Tests for domain utilities and the appendix ground-RTT report."""

import pytest

from repro.analysis.domains import is_subdomain_of, second_level_domain
from repro.analysis.reports import appendix_ground_rtt


@pytest.mark.parametrize(
    "domain,expected",
    [
        ("rr4---sn-x.googlevideo.com", "googlevideo.com"),
        ("www.google.com", "google.com"),
        ("news.bbc.co.uk", "bbc.co.uk"),
        ("static.xx.fbcdn.net", "fbcdn.net"),
        ("szextshort.weixin.qq.com", "qq.com"),
        ("api.scooper.news", "scooper.news"),
        ("feelinsonice-hrd.appspot.com", "feelinsonice-hrd.appspot.com"),
        ("twitter-any.s3.amazonaws.com", "twitter-any.s3.amazonaws.com"),
        ("portal.gov.ng.", "portal.gov.ng"),
        ("example.com", "example.com"),
        ("localhost", "localhost"),
    ],
)
def test_second_level_domain(domain, expected):
    assert second_level_domain(domain) == expected


def test_second_level_domain_none_and_empty():
    assert second_level_domain(None) is None
    assert second_level_domain("") is None


def test_second_level_domain_case_insensitive():
    assert second_level_domain("WWW.Google.COM") == "google.com"


def test_is_subdomain_of():
    assert is_subdomain_of("a.b.example.com", "example.com")
    assert is_subdomain_of("example.com", "example.com")
    assert not is_subdomain_of("notexample.com", "example.com")
    assert not is_subdomain_of("example.com.evil.org", "example.com")


@pytest.fixture(scope="module")
def appendix(small_frame):
    return appendix_ground_rtt.compute(small_frame, min_samples=3)


def test_appendix_top_domains_by_volume(appendix):
    for country in ("Congo", "Nigeria", "UK"):
        top = appendix.top_domains[country]
        assert 5 <= len(top) <= 25
        assert all("." in d for d in top)
    # video domains dominate volume everywhere
    assert any("googlevideo" in d or "nflxvideo" in d for d in appendix.top_domains["UK"])


def test_appendix_chinese_domains_slow_from_anywhere(appendix):
    """qq.com ≈ 240–255 ms regardless of resolver (appendix Table 4)."""
    values = [
        rtt for (country, _, sld), rtt in appendix.mean_rtt_ms.items()
        if sld == "qq.com"
    ]
    if values:  # Congo's Chinese community guarantees presence at scale
        assert min(values) > 180.0


def test_appendix_resolver_spread_larger_in_africa(appendix):
    """European cells barely move across resolvers; African cells do."""
    uk_spreads = [
        appendix.resolver_spread("UK", sld) or 0.0 for sld in appendix.top_domains["UK"]
    ]
    nigeria_spreads = [
        appendix.resolver_spread("Nigeria", sld) or 0.0
        for sld in appendix.top_domains["Nigeria"]
    ]
    assert max(nigeria_spreads) > max(uk_spreads)


def test_appendix_render(appendix):
    text = appendix_ground_rtt.render(appendix, "Nigeria")
    assert "Nigeria" in text
    assert "Second-level domain" in text
