"""The DelaySource seam: static parity, constellation motion, LEO edges.

Pins the tentpole contract of the delay refactor:

* ``StaticDelaySource`` is byte-identical to the bare model (same RNG
  stream, same samples), so every pre-refactor capture digest holds.
* ``ConstellationDelaySource`` adds a deterministic, draw-free floor:
  RTTs move across scheduling epochs, flows in the post-handover
  window pay the spike, and the floor stays inside the constellation's
  physical min/max bounds.
* ``LeoShell`` edge cases: elevation exactly at the mask, bent-pipe vs
  ISL hop counts, multi-shell bound composition.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.constants import SPEED_OF_LIGHT_M_S
from repro.internet.geo import COUNTRIES
from repro.satcom.constellation import ConstellationModel, slant_range_m_vec
from repro.satcom.delay_model import SatelliteRttModel
from repro.satcom.delaysource import ConstellationDelaySource, StaticDelaySource
from repro.satcom.leo import LeoGeometryAdapter, LeoShell
from repro.scenario import get_scenario

SEEDS = (0, 7, 2022)


# --- static parity ----------------------------------------------------------


@pytest.mark.parametrize("seed", SEEDS)
def test_static_source_is_byte_identical_to_bare_model(seed):
    model = SatelliteRttModel()
    source = StaticDelaySource(rtt_model=SatelliteRttModel())
    n = 500
    rng_a = np.random.default_rng(seed)
    rng_b = np.random.default_rng(seed)
    util = np.linspace(0.2, 0.9, n)
    pep = np.linspace(0.1, 0.8, n)
    t_s = np.linspace(0.0, 86400.0, n)
    base = model.sample_handshake_rtt_bulk("Spain", util, pep, rng_a)
    via_source = source.sample_handshake_rtt_bulk("Spain", util, pep, t_s, rng_b)
    assert np.array_equal(base, via_source)
    # and the RNG streams are in the same state afterwards
    assert rng_a.integers(1 << 30) == rng_b.integers(1 << 30)


def test_static_source_floor_ignores_time():
    source = get_scenario("baseline-geo").build_delay_source()
    assert source.floor_rtt_s("Spain") == source.floor_rtt_s("Spain", t_s=12345.0)
    assert np.all(source.floor_delta_s("Spain", np.arange(10.0)) == 0.0)
    assert source.propagation_extra_s("Spain", 99.0) == 0.0
    assert source.handovers_between(0.0, 86400.0) == 0


def test_sample_rtt_requires_bound_customers():
    source = StaticDelaySource()
    with pytest.raises(ValueError, match="bind_customers"):
        source.sample_rtt(np.array([0]), np.array([0.0]), np.random.default_rng(0))


@pytest.mark.parametrize("seed", SEEDS)
def test_sample_rtt_resolves_customers_to_countries(seed):
    source = get_scenario("leo-starlink").build_delay_source()
    source.bind_customers(["Spain", "Congo", "Spain"])
    rng = np.random.default_rng(seed)
    ids = np.array([0, 1, 2, 1, 0])
    t_s = np.linspace(0.0, 3600.0, len(ids))
    rtt = source.sample_rtt(ids, t_s, rng)
    assert rtt.shape == ids.shape
    assert np.all(rtt > 0.0)
    assert np.all(np.isfinite(rtt))


# --- constellation model ----------------------------------------------------


def test_epochs_and_handover_mask_follow_reconfiguration_boundary():
    model = ConstellationModel(reconfiguration_s=15.0, handover_window_s=1.0)
    t = np.array([0.0, 0.5, 1.0, 14.9, 15.0, 15.5, 29.9, 30.0])
    assert list(model.epoch_of(t)) == [0, 0, 0, 0, 1, 1, 1, 2]
    assert list(model.handover_mask(t)) == [
        True, True, False, False, True, True, False, True,
    ]
    assert model.handovers_between(0.0, 86400.0) == 86400 // 15
    assert model.handovers_between(0.0, 14.9) == 0
    assert model.handovers_between(14.9, 15.1) == 1
    assert model.handovers_between(10.0, 10.0) == 0


def test_constellation_floor_is_deterministic_and_moves():
    model = ConstellationModel()
    t = np.arange(0.0, 1500.0, 15.0)
    a = model.rtt_floor_s(40.0, t)
    b = model.rtt_floor_s(40.0, t)
    assert np.array_equal(a, b)  # pure function of time, no RNG
    assert len(np.unique(np.round(a, 6))) > 10  # epochs differ
    # within one epoch the floor is constant
    same_epoch = model.rtt_floor_s(40.0, np.array([30.1, 35.0, 44.9]))
    assert np.allclose(same_epoch, same_epoch[0])


def test_constellation_floor_within_physical_bounds():
    model = ConstellationModel(
        shells=(LeoShell(), LeoShell(altitude_m=1_150_000.0)),
        satellites_per_shell=(1584, 720),
    )
    t = np.arange(0.0, 15.0 * 4000, 15.0)
    for lat in (0.0, 40.0, 55.0):
        floor = model.rtt_floor_s(lat, t)
        assert np.all(floor >= model.min_rtt_s() - 1e-12)
        assert np.all(floor <= model.max_rtt_s() + 1e-12)


def test_high_latitudes_see_lower_passes():
    model = ConstellationModel()
    t = np.arange(0.0, 15.0 * 2000, 15.0)
    equator = model.rtt_floor_s(0.0, t).mean()
    subpolar = model.rtt_floor_s(65.0, t).mean()
    assert subpolar > equator  # lower elevations -> longer slant ranges
    assert model.max_usable_elevation_deg(0.0) > model.max_usable_elevation_deg(65.0)


def test_serving_shell_weighting_tracks_satellite_counts():
    model = ConstellationModel(
        shells=(LeoShell(), LeoShell(altitude_m=1_150_000.0)),
        satellites_per_shell=(1584, 720),
    )
    t = np.arange(0.0, 15.0 * 20000, 15.0)
    share = model.serving_shell(40.0, t).mean()  # fraction on shell 1
    assert share == pytest.approx(720 / 2304, abs=0.02)


def test_constellation_validation():
    with pytest.raises(ValueError, match="same length"):
        ConstellationModel(shells=(LeoShell(),), satellites_per_shell=(10, 20))
    with pytest.raises(ValueError, match="at least one shell"):
        ConstellationModel(shells=(), satellites_per_shell=())


# --- constellation delay source ---------------------------------------------


@pytest.mark.parametrize("seed", SEEDS)
def test_constellation_source_preserves_rng_stream(seed):
    """The time-varying delta consumes zero draws: the wrapped model's
    stream advances exactly as it would under the static source."""
    leo = get_scenario("leo-starlink")
    source = leo.build_delay_source()
    bare = leo.build_rtt_model()
    n = 300
    util = np.full(n, 0.5)
    pep = np.full(n, 0.3)
    t_s = np.linspace(0.0, 7200.0, n)
    rng_a = np.random.default_rng(seed)
    rng_b = np.random.default_rng(seed)
    sampled = source.sample_handshake_rtt_bulk("Spain", util, pep, t_s, rng_a)
    base = bare.sample_handshake_rtt_bulk("Spain", util, pep, rng_b)
    assert rng_a.integers(1 << 30) == rng_b.integers(1 << 30)
    delta = source.floor_delta_s("Spain", t_s)
    assert np.allclose(sampled, np.maximum(base + delta, 1e-3))


def test_handover_window_pays_the_spike():
    source = get_scenario("leo-starlink").build_delay_source()
    inside = np.array([15.0 * 100 + 0.5])  # inside the 1 s window
    outside = np.array([15.0 * 100 + 5.0])  # same epoch, past the window
    delta_in = source.floor_delta_s("Spain", inside)[0]
    delta_out = source.floor_delta_s("Spain", outside)[0]
    assert delta_in - delta_out == pytest.approx(source.handover_penalty_s)


def test_propagation_extra_is_half_the_floor_delta():
    source = get_scenario("leo-starlink").build_delay_source()
    t = 1234.0
    delta = source.floor_delta_s("Congo", np.array([t]))[0]
    assert source.propagation_extra_s("Congo", t) == pytest.approx(0.5 * delta)


@pytest.mark.parametrize("seed", SEEDS)
def test_leo_starlink_capture_rtt_varies_across_epochs(seed):
    source = get_scenario("leo-starlink").build_delay_source()
    epochs = np.arange(200, dtype=np.float64) * 15.0 + 5.0
    floors = np.array(
        [source.floor_rtt_s("Spain", t_s=t) for t in epochs[:50]]
    )
    assert floors.std() > 0.0
    rng = np.random.default_rng(seed)
    n = len(epochs)
    rtt = source.sample_handshake_rtt_bulk(
        "Spain", np.full(n, 0.4), np.full(n, 0.2), epochs, rng
    )
    assert np.all(rtt >= 1e-3)


# --- LeoShell edge cases (satellite task) -----------------------------------


def test_leo_elevation_exactly_at_mask():
    shell = LeoShell()
    at_mask = shell.slant_range_m(shell.min_elevation_deg)
    zenith = shell.slant_range_m(90.0)
    assert at_mask > zenith
    assert zenith == pytest.approx(shell.altitude_m)
    vec = slant_range_m_vec(
        shell.orbit_radius_m, np.array([shell.min_elevation_deg, 90.0])
    )
    assert vec[0] == pytest.approx(at_mask)
    assert vec[1] == pytest.approx(zenith)
    with pytest.raises(ValueError):
        shell.slant_range_m(-0.1)
    with pytest.raises(ValueError):
        shell.slant_range_m(90.1)


def test_bent_pipe_hop_counts():
    bent = LeoShell(bent_pipe=True)
    isl = LeoShell(bent_pipe=False)
    # bent pipe traverses user+feeder links up and down (4 hops);
    # ISL routing crosses the space segment once per direction (2).
    assert bent.min_rtt_s() == pytest.approx(2.0 * isl.min_rtt_s())
    assert bent.max_rtt_s() == pytest.approx(2.0 * isl.max_rtt_s())
    assert isl.min_rtt_s() == pytest.approx(
        2.0 * isl.slant_range_m(90.0) / SPEED_OF_LIGHT_M_S
    )


@pytest.mark.parametrize("seed", SEEDS)
def test_multi_shell_bounds_compose(seed):
    low = LeoShell(altitude_m=550_000.0)
    high = LeoShell(altitude_m=1_150_000.0)
    model = ConstellationModel(
        shells=(low, high), satellites_per_shell=(1584, 720)
    )
    assert model.min_rtt_s() == pytest.approx(low.min_rtt_s())
    assert model.max_rtt_s() == pytest.approx(high.max_rtt_s())
    rng = np.random.default_rng(seed)
    for shell in (low, high):
        # sample_rtt_s = propagation within [min, max] bounds plus a
        # >= 10 ms processing/terrestrial floor
        samples = shell.sample_rtt_s(rng, 2000)
        assert np.all(samples >= shell.min_rtt_s() + 0.010 - 1e-12)
        assert np.all(samples <= shell.max_rtt_s() + 0.010 + 8 * 2.0 * 0.004 + 0.1)
        assert np.median(samples) < 0.2


def test_leo_adapter_floor_between_bounds():
    shell = LeoShell()
    adapter = LeoGeometryAdapter(shell)
    spain = COUNTRIES["Spain"]
    assert shell.min_rtt_s() < adapter.propagation_rtt_s(spain) < shell.max_rtt_s()
