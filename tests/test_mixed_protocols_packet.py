"""Packet-level tests for the mixed-protocol path: TLS 1.3, plain HTTP,
QUIC and RTP through the PEP/tunnel network with the probe watching."""

import numpy as np
import pytest

from repro.pipeline import run_mixed_protocol_simulation
from repro.protocols import tls


@pytest.fixture(scope="module")
def mixed():
    return run_mixed_protocol_simulation(seed=11, country="Spain", n_each=3)


def test_all_clients_complete(mixed):
    assert all(c.result.complete for c in mixed.tls13_clients)
    assert all(c.complete for c in mixed.http_clients)
    assert all(c.complete for c in mixed.quic_clients)
    assert all(s.echoes == s.n_packets for s in mixed.rtp_sessions)


def test_probe_labels_every_protocol(mixed):
    labels = {r.l7.value for r in mixed.records}
    assert {"tcp/https", "tcp/http", "udp/quic", "udp/rtp"} <= labels


def test_tls13_satellite_rtt_via_ccs(mixed):
    """No ClientKeyExchange exists in TLS 1.3 — the estimator must fall
    back to the client's ChangeCipherSpec and still land above the
    propagation floor."""
    for record in mixed.records_of("tcp/https"):
        assert record.sat_rtt_ms is not None
        assert record.sat_rtt_ms > 480.0
        assert record.domain == "modern.example-cdn.com"


def test_http_host_recovered(mixed):
    for record in mixed.records_of("tcp/http"):
        assert record.domain == "downloads.example-http.com"
        assert record.bytes_down > 40_000


def test_quic_sni_recovered_and_unproxied(mixed):
    for record in mixed.records_of("udp/quic"):
        assert record.domain == "video.example-quic.com"
        assert record.bytes_down > 45_000
        assert record.sat_rtt_ms is None  # TLS trick needs TCP through the PEP


def test_quic_pays_full_satellite_rtt(mixed):
    """UDP bypasses the PEP: time-to-first-byte includes the satellite
    both ways."""
    for client in mixed.quic_clients:
        assert client.first_byte_at - client.started_at > 0.5


def test_rtp_flows_balanced(mixed):
    for record in mixed.records_of("udp/rtp"):
        assert record.pkts_up == record.pkts_down
        assert record.bytes_up == record.bytes_down


def test_rtp_mouth_to_ear_above_satellite_floor(mixed):
    rtts = [t for s in mixed.rtp_sessions for t in s.round_trips_s]
    assert np.mean(rtts) > 0.55
    assert np.mean(rtts) < 3.0


# --- TLS 1.3 codec units ------------------------------------------------------


def test_server_hello_tls13_structure():
    flight = tls.server_hello_tls13(certificate_len=1000)
    parsed = tls.parse_stream(flight)
    assert parsed.handshake_types == [tls.HandshakeType.SERVER_HELLO]
    kinds = [r.content_type for r in parsed.records]
    assert tls.ContentType.CHANGE_CIPHER_SPEC in kinds
    app = sum(
        r.length for r in parsed.records
        if r.content_type == tls.ContentType.APPLICATION_DATA
    )
    assert app == 1000


def test_client_finished_tls13_structure():
    flight = tls.client_finished_tls13()
    records = tls.parse_records(flight)
    assert records[0].content_type == tls.ContentType.CHANGE_CIPHER_SPEC
    assert records[1].content_type == tls.ContentType.APPLICATION_DATA


def test_server_hello_tls13_validates_random():
    with pytest.raises(ValueError):
        tls.server_hello_tls13(random=b"short")
