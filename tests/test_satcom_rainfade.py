"""Tests for the rain-fade extension."""

import numpy as np
import pytest

from repro.satcom.channel import ChannelModel, RainFadeProcess


def test_weather_factor_scales_error_probability():
    channel = ChannelModel()
    clear = channel.frame_error_probability(40.0)
    fade = channel.frame_error_probability(40.0, weather_factor=5.0)
    assert fade == pytest.approx(min(0.95, clear * 5.0))


def test_weather_factor_validated():
    channel = ChannelModel()
    with pytest.raises(ValueError):
        channel.frame_error_probability(40.0, weather_factor=0.5)


def test_error_probability_capped_under_heavy_fade():
    channel = ChannelModel()
    assert channel.frame_error_probability(25.0, weather_factor=1000.0) == 0.95


def test_arq_delay_worse_in_fade(rng):
    channel = ChannelModel()
    clear = channel.sample_arq_delay_s(40.0, rng, 4000).mean()
    fade = channel.sample_arq_delay_s(40.0, rng, 4000, weather_factor=8.0).mean()
    assert fade > 2 * clear


def test_rainfade_stationary_fraction(rng):
    process = RainFadeProcess(fade_probability=0.10)
    factors = process.sample_weather_factor(rng, 20_000)
    assert (factors > 1.0).mean() == pytest.approx(0.10, abs=0.01)
    assert np.all(factors >= 1.0)


def test_rainfade_clear_sky_process(rng):
    process = RainFadeProcess(fade_probability=0.0)
    factors = process.sample_weather_factor(rng, 100)
    assert np.all(factors == 1.0)
    assert process.mean_clear_duration_s == np.inf


def test_rainfade_episode_sampling(rng):
    process = RainFadeProcess()
    episode = process.sample_episode(rng)
    assert episode.duration_s > 0
    assert episode.weather_factor > 1.0


def test_rainfade_sojourn_balance():
    process = RainFadeProcess(fade_probability=0.25, mean_fade_duration_s=600.0)
    clear = process.mean_clear_duration_s
    assert 600.0 / (600.0 + clear) == pytest.approx(0.25)


def test_rainfade_validation():
    with pytest.raises(ValueError):
        RainFadeProcess(fade_probability=1.0)
    with pytest.raises(ValueError):
        RainFadeProcess(mean_fade_duration_s=0.0)
