"""Report tests: Figures 6–7 (service popularity and volume)."""

import numpy as np
import pytest

from repro.analysis.reports import fig6_service_popularity, fig7_service_volume
from repro.traffic.services import ServiceCategory


@pytest.fixture(scope="module")
def fig6(small_frame):
    return fig6_service_popularity.compute(small_frame)


@pytest.fixture(scope="module")
def fig7(small_frame):
    return fig7_service_volume.compute(small_frame)


def test_fig6_values_are_percentages(fig6):
    for service, row in fig6.matrix.items():
        for country, value in row.items():
            assert 0.0 <= value <= 100.0, (service, country)


def test_fig6_tracks_paper_matrix(fig6):
    """Measured popularity tracks the published heatmap.

    Per-cell tolerance is wide (the session fixture has only ~300
    customers), but the mean absolute error across the checked block
    must stay small."""
    errors = []
    for service in ("Google", "Whatsapp", "Instagram", "Tiktok", "Netflix", "Spotify"):
        for country in ("Congo", "Nigeria", "Spain", "UK"):
            paper = fig6_service_popularity.PAPER_MATRIX[service][country]
            measured = fig6.popularity(service, country)
            errors.append(abs(measured - paper))
            assert measured == pytest.approx(paper, abs=20), (service, country)
    assert np.mean(errors) < 10.0


def test_fig6_orderings(fig6):
    # WeChat is an African (Chinese-community) phenomenon
    assert fig6.popularity("Wechat", "Congo") > fig6.popularity("Wechat", "Spain")
    # Paid video is European
    assert fig6.popularity("Primevideo", "UK") > fig6.popularity("Primevideo", "Congo")
    assert fig6.popularity("Netflix", "Ireland") > fig6.popularity("Netflix", "Congo")
    # WhatsApp rivals Google everywhere (Section 5)
    assert fig6.popularity("Whatsapp", "Congo") > 40


def test_fig6_average(fig6):
    avg = fig6.average("Google")
    assert 50 <= avg <= 80


def test_fig7_chat_gap(fig7):
    """Chat: Congo ≈250 MB median vs <25 MB in Europe (Figure 7)."""
    congo = fig7.median_mb(ServiceCategory.CHAT, "Congo")
    spain = fig7.median_mb(ServiceCategory.CHAT, "Spain")
    assert congo > 100
    assert spain < 30
    assert congo > 8 * spain


def test_fig7_social_gap(fig7):
    congo = fig7.median_mb(ServiceCategory.SOCIAL, "Congo")
    europe = np.mean([
        fig7.median_mb(ServiceCategory.SOCIAL, c) for c in ("Spain", "UK", "Ireland")
    ])
    assert congo > 4 * europe


def test_fig7_video_differences_smaller(fig7):
    """Video medians are comparable across continents (Figure 7)."""
    congo = fig7.median_mb(ServiceCategory.VIDEO, "Congo")
    spain = fig7.median_mb(ServiceCategory.VIDEO, "Spain")
    ratio = max(congo, spain) / min(congo, spain)
    chat_ratio = fig7.median_mb(ServiceCategory.CHAT, "Congo") / fig7.median_mb(
        ServiceCategory.CHAT, "Spain"
    )
    assert ratio < chat_ratio / 2


def test_fig7_audio_small_everywhere(fig7):
    for country in ("Congo", "Spain", "UK"):
        assert fig7.median_mb(ServiceCategory.AUDIO, country) < 60


def test_fig7_heavy_tail_visible(fig7):
    """Top-5 % of Congo chat users above ~1–2 GB (community APs)."""
    assert fig7.p95_mb(ServiceCategory.CHAT, "Congo") > 800


def test_renders(small_frame, fig6, fig7):
    assert "Figure 6" in fig6_service_popularity.render(fig6)
    assert "Figure 7" in fig7_service_volume.render(fig7)
