"""Serve/CLI parity: HTTP bodies are the offline renders, byte for byte.

``/reports/<name>`` and ``repro stream-report`` must be the same code
path wearing different transports — both dispatch through
``registry.run(name, RollupSource(...), prefer="rollup")``. This test
makes that structural claim an executable one: for *every*
rollup-capable report in the registry, the markdown served over HTTP
equals the CLI's stdout byte for byte (modulo the CLI's one trailing
blank line between reports), and the JSON envelope embeds the same
markdown plus the committed digest the offline checkpoint carries.
"""

import http.client
import json

import pytest

from repro.analysis import registry
from repro.cli import main
from repro.serve import ServerThread, SnapshotHub, snapshot_from_capture
from repro.stream import StreamConfig, run_stream_capture
from repro.traffic.workload import WorkloadConfig

CONFIG = StreamConfig(
    workload=WorkloadConfig(n_customers=48, days=3, seed=7, n_workers=1),
    window_days=1,
    compress=False,
)


def _servable_names():
    registry.ensure_loaded()
    return [s.name for s in registry.specs() if s.compute_rollup is not None]


@pytest.fixture(scope="module")
def capture(tmp_path_factory):
    capture_dir = tmp_path_factory.mktemp("parity") / "cap"
    result = run_stream_capture(CONFIG, capture_dir)
    assert result.complete
    return capture_dir, result.checkpoint


@pytest.fixture(scope="module")
def served(capture):
    capture_dir, _ = capture
    hub = SnapshotHub()
    hub.publish(snapshot_from_capture(capture_dir))
    server = ServerThread(hub)
    server.start()
    yield server
    server.stop()


def _http_get(server, path):
    conn = http.client.HTTPConnection(server.host, server.port, timeout=30)
    try:
        conn.request("GET", path)
        response = conn.getresponse()
        return response.status, response.read()
    finally:
        conn.close()


@pytest.mark.parametrize("name", _servable_names())
def test_http_markdown_equals_cli_stream_report(name, capture, served, capsys):
    capture_dir, _ = capture
    exit_code = main(["stream-report", "--dir", str(capture_dir),
                      "--which", name])
    assert exit_code == 0
    cli_stdout = capsys.readouterr().out

    status, body = _http_get(served, f"/reports/{name}")
    assert status == 200
    # CLI prints the render plus a blank separator line; HTTP ends the
    # body with exactly one newline. Same bytes otherwise.
    assert body.decode() + "\n" == cli_stdout


@pytest.mark.parametrize("name", _servable_names())
def test_http_json_envelope_carries_same_markdown(name, capture, served):
    capture_dir, checkpoint = capture
    status, markdown = _http_get(served, f"/reports/{name}")
    assert status == 200
    status, body = _http_get(served, f"/reports/{name}?format=json")
    assert status == 200
    envelope = json.loads(body)
    assert envelope["report"] == name
    assert envelope["digest"] == checkpoint.rollup_digest
    assert envelope["windows_done"] == checkpoint.windows_done
    assert (envelope["markdown"] + "\n").encode() == markdown


def test_all_rollup_reports_batch_matches_http(capture, served, capsys):
    """`--which all` over the rollup source = concatenation of the
    individually served bodies, in registry order."""
    capture_dir, _ = capture
    names = _servable_names()
    exit_code = main(["stream-report", "--dir", str(capture_dir),
                      "--which", ",".join(names)])
    assert exit_code == 0
    cli_stdout = capsys.readouterr().out

    joined = "".join(
        _http_get(served, f"/reports/{name}")[1].decode() + "\n"
        for name in names
    )
    assert joined == cli_stdout
