"""Tests for the declarative scenario tree (repro.scenario).

Covers the ISSUE-4 satellite checklist: TOML → Scenario → digest stable
across field order, --set override precedence over file values, unknown
keys / out-of-range values raising path-qualified ScenarioErrors, and
the baseline-geo digest equalling the legacy WorkloadConfig cache-key
mapping — plus the byte-identity and threading guarantees the tentpole
rests on.
"""

import numpy as np
import pytest

from repro.cache import capture_key, config_cache_key, stream_capture_key
from repro.scenario import (
    Scenario,
    ScenarioError,
    get_scenario,
    load_scenario,
    resolve_scenario,
    scenario_names,
)
from repro.traffic.workload import WorkloadConfig, WorkloadGenerator


# --- registry ---------------------------------------------------------------


def test_registry_names_and_lookup():
    names = scenario_names()
    assert names[0] == "baseline-geo"
    for expected in ("congested-beam", "beam-outage", "leo", "heavy-growth"):
        assert expected in names
    for name in names:
        scenario = get_scenario(name)
        assert scenario.name == name
        assert scenario.description
    with pytest.raises(ScenarioError, match="unknown scenario"):
        get_scenario("not-a-scenario")


def test_registry_digests_are_distinct():
    digests = [get_scenario(name).digest() for name in scenario_names()]
    assert len(set(digests)) == len(digests)


def test_only_baseline_has_baseline_models():
    for name in scenario_names():
        scenario = get_scenario(name)
        assert scenario.is_baseline_models() == (name == "baseline-geo")


# --- digest / legacy cache-key mapping --------------------------------------


def test_baseline_digest_equals_legacy_workload_cache_key():
    base = get_scenario("baseline-geo")
    assert base.digest() == config_cache_key(base.workload_config())


def test_baseline_workload_config_matches_cli_defaults():
    config = get_scenario("baseline-geo").workload_config()
    assert config == WorkloadConfig(n_customers=600, days=5, seed=2022)


def test_capture_key_duck_types_scenarios_and_configs():
    base = get_scenario("baseline-geo")
    assert capture_key(base) == base.digest()
    assert capture_key(base.workload_config()) == base.digest()
    leo = get_scenario("leo")
    assert capture_key(leo) == leo.digest() != capture_key(leo.workload_config())


def test_stream_capture_key_layers_window_days():
    base = get_scenario("baseline-geo")
    legacy = stream_capture_key(base.workload_config(), 2)
    assert stream_capture_key(base, 2) == legacy
    assert stream_capture_key(base, 1) != legacy


def test_digest_ignores_execution_and_qos():
    base = get_scenario("baseline-geo")
    assert base.with_overrides({"execution.workers": 8}).digest() == base.digest()
    assert base.with_overrides({"qos.duration_s": 5.0}).digest() == base.digest()
    leo = get_scenario("leo")
    assert leo.with_overrides({"execution.workers": 8}).digest() == leo.digest()
    assert leo.with_overrides({"qos.duration_s": 5.0}).digest() == leo.digest()


def test_digest_tracks_content_changes():
    base = get_scenario("baseline-geo")
    assert base.with_overrides({"workload.seed": 1}).digest() != base.digest()
    assert (
        base.with_overrides({"mac.tdma_frame_s": 0.050}).digest() != base.digest()
    )


# --- loader: TOML/JSON round trips ------------------------------------------


TOML_A = """
name = "t"

[workload]
seed = 5
days = 2

[beams]
utilization_scale = 1.2

[population]
n_customers = 50
"""

# same content, different section and key order
TOML_B = """
[population]
n_customers = 50

[beams]
utilization_scale = 1.2

[workload]
days = 2
seed = 5

name = "t"
"""


def test_toml_digest_stable_across_field_order(tmp_path):
    path_a = tmp_path / "a.toml"
    path_a.write_text(TOML_A)
    path_b = tmp_path / "b.toml"
    # TOML requires top-level keys before tables; rebuild B accordingly
    path_b.write_text('name = "t"\n' + TOML_B.replace('name = "t"\n', ""))
    s_a, s_b = load_scenario(path_a), load_scenario(path_b)
    assert s_a == s_b
    assert s_a.digest() == s_b.digest()


def test_plan_mix_order_never_changes_digest_or_draws(tmp_path):
    forward = tmp_path / "f.toml"
    forward.write_text(
        "[plans.europe_mix]\n'sat-30' = 0.3\n'sat-50' = 0.35\n'sat-100' = 0.35\n"
    )
    backward = tmp_path / "b.toml"
    backward.write_text(
        "[plans.europe_mix]\n'sat-100' = 0.35\n'sat-50' = 0.35\n'sat-30' = 0.3\n"
    )
    s_f, s_b = load_scenario(forward), load_scenario(backward)
    assert list(s_f.plans.europe_mix) == list(s_b.plans.europe_mix)
    assert s_f.digest() == s_b.digest()
    # listing the default mix explicitly IS the baseline
    assert s_f.is_baseline_models()


def test_json_round_trip(tmp_path):
    import json

    original = get_scenario("congested-beam")
    path = tmp_path / "scen.json"
    path.write_text(json.dumps(original.to_mapping()))
    loaded = load_scenario(path)
    assert loaded == original
    assert loaded.digest() == original.digest()


def test_from_mapping_to_mapping_inverse():
    for name in scenario_names():
        scenario = get_scenario(name)
        assert Scenario.from_mapping(scenario.to_mapping()) == scenario


def test_load_scenario_rejects_bad_files(tmp_path):
    with pytest.raises(ScenarioError, match="cannot read"):
        load_scenario(tmp_path / "missing.toml")
    bad = tmp_path / "bad.toml"
    bad.write_text("[[[")
    with pytest.raises(ScenarioError, match="invalid TOML"):
        load_scenario(bad)
    txt = tmp_path / "scen.yaml"
    txt.write_text("a: 1")
    with pytest.raises(ScenarioError, match="unsupported"):
        load_scenario(txt)


def test_resolve_scenario_name_then_path(tmp_path):
    assert resolve_scenario("leo") is get_scenario("leo")
    path = tmp_path / "s.toml"
    path.write_text("[workload]\nseed = 9\n")
    assert resolve_scenario(str(path)).workload.seed == 9
    with pytest.raises(ScenarioError, match="neither a registered scenario"):
        resolve_scenario("what-is-this")


# --- overrides --------------------------------------------------------------


def test_set_overrides_beat_file_values(tmp_path):
    path = tmp_path / "s.toml"
    path.write_text("[beams]\nutilization_scale = 1.2\n\n[workload]\nseed = 5\n")
    loaded = load_scenario(path)
    overridden = loaded.with_overrides({"beams.utilization_scale": "1.5"})
    assert loaded.beams.utilization_scale == 1.2
    assert overridden.beams.utilization_scale == 1.5
    assert overridden.workload.seed == 5  # untouched values survive


def test_overrides_parse_json_literals():
    base = get_scenario("baseline-geo")
    assert base.with_overrides({"execution.compress": "false"}).execution.compress is False
    assert base.with_overrides({"workload.days": "3"}).workload.days == 3
    assert base.with_overrides(
        {"population.countries": '["Spain", "Congo"]'}
    ).population.countries == ("Spain", "Congo")
    assert base.with_overrides({"name": "renamed"}).name == "renamed"
    assert base.with_overrides({"qos.video_shape_bps": "null"}).qos.video_shape_bps is None


def test_overrides_reach_nested_plan_mixes():
    base = get_scenario("baseline-geo")
    shifted = base.with_overrides({"plans.europe_mix.sat-100": "0.5"})
    assert shifted.plans.europe_mix["sat-100"] == 0.5
    assert base.plans.europe_mix["sat-100"] == 0.35  # no aliasing back


def test_overrides_do_not_mutate_the_source_scenario():
    base = get_scenario("baseline-geo")
    before = base.to_mapping()
    base.with_overrides(
        {"plans.africa_mix.sat-30": "0.9", "beams.outages": '["spain-1"]'}
    )
    assert base.to_mapping() == before


def test_override_unknown_paths_raise():
    base = get_scenario("baseline-geo")
    with pytest.raises(ScenarioError, match="unknown --set path"):
        base.with_overrides({"nosuch.field": "1"})
    with pytest.raises(ScenarioError, match="beams.nope"):
        base.with_overrides({"beams.nope": "1"})
    with pytest.raises(ScenarioError, match="malformed"):
        base.with_overrides({"beams..x": "1"})


# --- validation: path-qualified errors --------------------------------------


@pytest.mark.parametrize(
    "override, path_fragment",
    [
        ({"beams.utilization_scale": "0"}, "beams.utilization_scale"),
        ({"beams.load_cap": "1.5"}, "beams.load_cap"),
        ({"beams.outages": '["mars-1"]'}, "beams.outages"),
        ({"geometry.orbit": '"meo"'}, "geometry.orbit"),
        ({"geometry.leo_altitude_km": "50"}, "geometry.leo_altitude_km"),
        ({"mac.tdma_frame_s": "-1"}, "mac.tdma_frame_s"),
        ({"mac.contention_fraction": "1.5"}, "mac.contention_fraction"),
        ({"channel.floor_probability": "1.0"}, "channel.floor_probability"),
        ({"pep.max_load_ratio": "0"}, "pep.max_load_ratio"),
        ({"qos.link_rate_bps": "0"}, "qos.link_rate_bps"),
        ({"plans.europe_mix.sat-100": "-0.5"}, "plans.europe_mix.sat-100"),
        ({"plans.europe_mix.sat-999": "0.5"}, "plans.europe_mix.sat-999"),
        ({"population.n_customers": "0"}, "population.n_customers"),
        ({"population.countries": '["Narnia"]'}, "population.countries"),
        ({"workload.days": "0"}, "workload.days"),
        ({"workload.flow_scale": "0"}, "workload.flow_scale"),
        ({"stream.window_days": "0"}, "stream.window_days"),
        ({"execution.workers": "-1"}, "execution.workers"),
    ],
)
def test_out_of_range_values_raise_path_qualified(override, path_fragment):
    base = get_scenario("baseline-geo")
    with pytest.raises(ScenarioError) as excinfo:
        base.with_overrides(override)
    assert path_fragment in str(excinfo.value)
    assert excinfo.value.path.startswith(path_fragment.split(".")[0])


def test_unknown_keys_raise_path_qualified():
    with pytest.raises(ScenarioError, match=r"mac\.warp_factor"):
        Scenario.from_mapping({"mac": {"warp_factor": 9}})
    with pytest.raises(ScenarioError, match="unknown section"):
        Scenario.from_mapping({"engines": {}})


def test_type_errors_are_path_qualified():
    with pytest.raises(ScenarioError, match=r"workload\.days"):
        Scenario.from_mapping({"workload": {"days": 1.5}})
    with pytest.raises(ScenarioError, match=r"workload\.include_dns"):
        Scenario.from_mapping({"workload": {"include_dns": "yes"}})
    with pytest.raises(ScenarioError, match=r"beams\.outages"):
        Scenario.from_mapping({"beams": {"outages": "spain-1"}})
    with pytest.raises(ScenarioError, match=r"mac\.tdma_frame_s"):
        Scenario.from_mapping({"mac": {"tdma_frame_s": "fast"}})


def test_cannot_outage_every_beam_of_a_country():
    base = get_scenario("baseline-geo")
    ireland = [
        b.beam_id for b in base.build_beam_map().beams if b.country == "Ireland"
    ]
    with pytest.raises(ScenarioError, match="Ireland"):
        base.with_overrides({"beams.outages": str(ireland).replace("'", '"')})


# --- constellation section --------------------------------------------------


def test_constellation_unknown_keys_raise_path_qualified():
    with pytest.raises(ScenarioError, match=r"constellation\.warp_drive"):
        Scenario.from_mapping({"constellation": {"warp_drive": True}})
    with pytest.raises(ScenarioError, match=r"constellation\.altitude_km"):
        get_scenario("baseline-geo").with_overrides(
            {"constellation.altitude_km": "550"}
        )


@pytest.mark.parametrize(
    "override, path_fragment",
    [
        ({"constellation.mode": "elliptical"}, "constellation.mode"),
        ({"constellation.altitudes_km": "[100.0]"}, "constellation.altitudes_km"),
        ({"constellation.min_elevation_deg": "95"}, "constellation.min_elevation_deg"),
        ({"constellation.reconfiguration_s": "0"}, "constellation.reconfiguration_s"),
        ({"constellation.handover_window_s": "20"}, "constellation.handover_window_s"),
        ({"constellation.handover_penalty_ms": "-1"}, "constellation.handover_penalty_ms"),
    ],
)
def test_constellation_out_of_range_values_raise(override, path_fragment):
    with pytest.raises(ScenarioError) as excinfo:
        get_scenario("baseline-geo").with_overrides(override)
    assert path_fragment in str(excinfo.value)


def test_default_constellation_is_digest_neutral():
    base = get_scenario("baseline-geo")
    same = base.with_overrides({"constellation.reconfiguration_s": "15.0"})
    assert same.digest() == base.digest()
    assert "constellation" not in base.content_payload()
    assert "constellation" not in base.models_payload()


def test_orbital_constellation_changes_digest():
    base = get_scenario("baseline-geo")
    orbital = base.with_overrides({"constellation.mode": "orbital"})
    assert orbital.digest() != base.digest()
    assert "constellation" in orbital.content_payload()
    assert get_scenario("leo-starlink").digest() != get_scenario("leo").digest()
    assert get_scenario("multi-orbit").digest() != get_scenario("leo-starlink").digest()


def test_build_delay_source_types():
    from repro.satcom.delaysource import (
        ConstellationDelaySource,
        StaticDelaySource,
    )

    static = get_scenario("baseline-geo").build_delay_source()
    assert isinstance(static, StaticDelaySource)
    assert not static.is_time_varying

    starlink = get_scenario("leo-starlink").build_delay_source()
    assert isinstance(starlink, ConstellationDelaySource)
    assert starlink.is_time_varying
    assert starlink.handover_penalty_s == pytest.approx(0.008)
    assert len(starlink.constellation.shells) == 1

    multi = get_scenario("multi-orbit").build_delay_source()
    assert len(multi.constellation.shells) == 2
    assert multi.constellation.satellites_per_shell == (1584, 720)


# --- builders ---------------------------------------------------------------


def test_baseline_build_matches_plain_defaults():
    from repro.satcom.delay_model import SatelliteRttModel

    assert get_scenario("baseline-geo").build_rtt_model() == SatelliteRttModel()


def test_beam_outage_redistributes_load():
    base_map = get_scenario("baseline-geo").build_beam_map()
    outage = get_scenario("beam-outage")
    outage_map = outage.build_beam_map()
    gone = set(outage.beams.outages)
    assert gone & {b.beam_id for b in base_map.beams} == gone
    assert not gone & {b.beam_id for b in outage_map.beams}
    base_spain = {b.beam_id: b for b in base_map.beams if b.country == "Spain"}
    out_spain = [b for b in outage_map.beams if b.country == "Spain"]
    assert len(out_spain) == len(base_spain) - 2
    for beam in out_spain:
        assert beam.peak_utilization > base_spain[beam.beam_id].peak_utilization


def test_leo_geometry_floor_is_far_below_geo():
    leo_model = get_scenario("leo").build_rtt_model()
    geo_model = get_scenario("baseline-geo").build_rtt_model()
    from repro.internet.geo import COUNTRIES

    spain = COUNTRIES["Spain"]
    assert leo_model.geometry.propagation_rtt_s(spain) < 0.05
    assert geo_model.geometry.propagation_rtt_s(spain) > 0.4


def test_scenario_generation_is_byte_identical_to_legacy(small_scenario_pair):
    frame_scenario, frame_legacy = small_scenario_pair
    assert len(frame_scenario) == len(frame_legacy)
    for attr in ("bytes_down", "bytes_up", "sat_rtt_ms", "hour_utc", "country_idx"):
        a = getattr(frame_scenario, attr)
        b = getattr(frame_legacy, attr)
        if a.dtype.kind == "f":
            nan = np.isnan(a)
            assert np.array_equal(np.isnan(b), nan)
            assert np.array_equal(a[~nan], b[~nan]), attr
        else:
            assert np.array_equal(a, b), attr


@pytest.fixture(scope="module")
def small_scenario_pair():
    scenario = get_scenario("baseline-geo").with_overrides(
        {"population.n_customers": 60, "workload.days": 1, "workload.seed": 3}
    )
    frame_scenario = scenario.build_generator().generate()
    frame_legacy = WorkloadGenerator(
        WorkloadConfig(n_customers=60, days=1, seed=3)
    ).generate()
    return frame_scenario, frame_legacy


def test_variant_scenarios_shift_fig8_inputs():
    def median_rtt(name):
        scenario = get_scenario(name).with_overrides(
            {"population.n_customers": 60, "workload.days": 1, "workload.seed": 3}
        )
        frame = scenario.build_generator().generate()
        return float(np.nanmedian(frame.sat_rtt_ms))

    baseline = median_rtt("baseline-geo")
    assert median_rtt("congested-beam") > baseline * 1.05
    assert median_rtt("leo") < baseline * 0.25


def test_heavy_growth_shifts_plan_mix():
    scenario = get_scenario("heavy-growth").with_overrides(
        {"population.n_customers": 300, "workload.seed": 3}
    )
    base = get_scenario("baseline-geo").with_overrides(
        {"population.n_customers": 300, "workload.seed": 3}
    )

    def premium_share(s):
        gen = s.build_generator()
        subs = gen.population.subscribers
        europe = [x for x in subs if x.country in
                  ("Ireland", "Spain", "UK", "Germany", "France", "Italy",
                   "Portugal", "Greece", "Poland")]
        return sum(1 for x in europe if x.plan_name == "sat-100") / len(europe)

    assert premium_share(scenario) > premium_share(base)


def test_stream_config_carries_scenario():
    scenario = get_scenario("leo").with_overrides(
        {"population.n_customers": 40, "workload.days": 1}
    )
    config = scenario.stream_config()
    assert config.scenario is scenario
    assert config.capture_key() == stream_capture_key(scenario, 1)
    generator = config.build_generator()
    assert type(generator.rtt_model.geometry).__name__ == "LeoGeometryAdapter"


def test_generate_flow_dataset_scenario_is_exclusive():
    from repro.pipeline import generate_flow_dataset

    with pytest.raises(ValueError, match="mutually exclusive"):
        generate_flow_dataset(
            config=WorkloadConfig(n_customers=10, days=1),
            scenario=get_scenario("baseline-geo"),
        )


def test_generate_flow_dataset_caches_by_digest(tmp_path):
    from repro.cache import CaptureCache
    from repro.pipeline import generate_flow_dataset

    scenario = get_scenario("congested-beam").with_overrides(
        {"population.n_customers": 40, "workload.days": 1, "workload.seed": 3}
    )
    cache = CaptureCache(tmp_path)
    frame, _ = generate_flow_dataset(scenario=scenario, cache=cache)
    assert cache.path_for(scenario).exists()
    assert scenario.digest() in cache.path_for(scenario).name
    again, _ = generate_flow_dataset(scenario=scenario, cache=cache)
    assert len(again) == len(frame)


# --- cache dir resolution (satellite: XDG_CACHE_HOME) -----------------------


def test_default_cache_dir_precedence(monkeypatch, tmp_path):
    from repro.cache import default_cache_dir

    monkeypatch.delenv("REPRO_CACHE_DIR", raising=False)
    monkeypatch.delenv("XDG_CACHE_HOME", raising=False)
    assert default_cache_dir().parts[-2:] == (".cache", "repro")
    monkeypatch.setenv("XDG_CACHE_HOME", str(tmp_path / "xdg"))
    assert default_cache_dir() == tmp_path / "xdg" / "repro"
    monkeypatch.setenv("REPRO_CACHE_DIR", str(tmp_path / "explicit"))
    assert default_cache_dir() == tmp_path / "explicit"


# --- CLI integration --------------------------------------------------------


def test_cli_scenarios_listing(capsys):
    from repro.cli import main

    assert main(["scenarios"]) == 0
    out = capsys.readouterr().out
    for name in scenario_names():
        assert name in out
        assert get_scenario(name).digest() in out
    assert main(["scenarios", "--names"]) == 0
    assert capsys.readouterr().out.split() == scenario_names()


def test_cli_generate_scenario_matches_legacy_flags(tmp_path, capsys):
    from repro.analysis.dataset import FlowFrame
    from repro.cli import main

    legacy = tmp_path / "legacy.npz"
    scen = tmp_path / "scen.npz"
    assert main(["generate", "--customers", "60", "--days", "1", "--seed", "3",
                 "--out", str(legacy)]) == 0
    assert main(["generate", "--scenario", "baseline-geo", "--customers", "60",
                 "--days", "1", "--seed", "3", "--out", str(scen)]) == 0
    capsys.readouterr()
    a = FlowFrame.load_npz(legacy)
    b = FlowFrame.load_npz(scen)
    assert len(a) == len(b)
    assert np.array_equal(a.bytes_down, b.bytes_down)


def test_cli_set_overrides_and_flag_precedence(tmp_path, capsys):
    from repro.cli import main

    out = tmp_path / "c.npz"
    # explicit flag beats --set for the same knob
    assert main(["generate", "--set", "workload.days=4", "--days", "1",
                 "--customers", "50", "--seed", "3", "--out", str(out)]) == 0
    assert "1 days" in capsys.readouterr().out


def test_cli_rejects_scenario_errors_with_exit_2(tmp_path, capsys):
    from repro.cli import main

    assert main(["generate", "--scenario", "missing-one",
                 "--out", str(tmp_path / "x.npz")]) == 2
    assert "scenario error" in capsys.readouterr().err
    assert main(["generate", "--set", "bogus", "--out", str(tmp_path / "x.npz")]) == 2
    assert "--set expects KEY=VALUE" in capsys.readouterr().err
    assert main(["generate", "--set", "beams.utilization_scale=99",
                 "--out", str(tmp_path / "x.npz")]) == 2
    assert "beams.utilization_scale" in capsys.readouterr().err


@pytest.mark.parametrize("command", ["generate", "stream"])
@pytest.mark.parametrize("flag", ["--customers", "--days"])
def test_cli_rejects_non_positive_counts(command, flag, capsys):
    from repro.cli import main

    argv = [command, flag, "0"]
    if command == "stream":
        argv += ["--dir", "unused"]
    with pytest.raises(SystemExit) as excinfo:
        main(argv)
    assert excinfo.value.code == 2
    assert flag in capsys.readouterr().err


# --- traffic section --------------------------------------------------------


BASELINE_GEO_DIGEST = "100b2183167d74dcb6275038"


def test_default_traffic_is_digest_neutral():
    """The all-defaults traffic section contributes nothing to the
    content payload — pre-refactor digests stay pinned."""
    assert get_scenario("baseline-geo").digest() == BASELINE_GEO_DIGEST
    assert "traffic" not in Scenario().content_payload()


def test_traffic_overrides_change_digest():
    base = get_scenario("baseline-geo")
    sized = base.with_overrides(
        {"traffic.size_overrides.Netflix": "pareto(500000.0,1.3)"}
    )
    weighted = base.with_overrides({"traffic.category_weights.video": 2.0})
    qoe = base.with_overrides({"traffic.qoe.enabled": True})
    digests = {base.digest(), sized.digest(), weighted.digest(), qoe.digest()}
    assert len(digests) == 4
    assert "traffic" in qoe.content_payload()


def test_video_presets_registered_with_distinct_digests():
    video = get_scenario("video-streaming")
    shaped = get_scenario("shaped-vs-unshaped")
    assert video.traffic.qoe.enabled
    assert shaped.traffic.qoe.shape_bps == 4e6
    assert video.digest() != shaped.digest()
    # --set spelling of the preset lands on the same digest
    assert (
        get_scenario("baseline-geo")
        .with_overrides({"traffic.qoe.enabled": "true"})
        .digest()
        == video.digest()
    )


@pytest.mark.parametrize(
    "override, path_fragment",
    [
        ({"traffic.category_weights.gaming": 2.0}, "traffic.category_weights"),
        ({"traffic.category_weights.video": -1.0}, "traffic.category_weights"),
        ({"traffic.size_overrides.NotAService": "lognormal(1.0,1.0)"}, "traffic.size_overrides"),
        ({"traffic.size_overrides.Netflix": "gaussian(0,1)"}, "traffic.size_overrides"),
        ({"traffic.flows_overrides.Netflix": "lognormal(-1,1)"}, "traffic.flows_overrides"),
        ({"traffic.qoe.sessions_per_day": -0.5}, "traffic.qoe"),
        ({"traffic.qoe.chunk_s": 0}, "traffic.qoe"),
        ({"traffic.qoe.max_buffer_s": 1.0}, "traffic.qoe"),
        ({"traffic.qoe.bitrate_ladder_mbps": [4.0, 2.0]}, "traffic.qoe"),
        ({"traffic.qoe.duration": "nope(1)"}, "traffic.qoe"),
        ({"traffic.qoe.shape_bps": 0}, "traffic.qoe"),
        ({"traffic.bogus_knob": 1}, "traffic"),
    ],
)
def test_traffic_validation_errors_are_path_qualified(override, path_fragment):
    with pytest.raises(ScenarioError) as excinfo:
        get_scenario("baseline-geo").with_overrides(override)
    assert path_fragment in str(excinfo.value)


def test_build_traffic_model_resolves_specs():
    from repro.traffic.distributions import Mixture, Pareto
    from repro.traffic.services import ServiceCategory

    scenario = get_scenario("baseline-geo").with_overrides(
        {
            "traffic.size_overrides.Netflix": "pareto(500000.0,1.3)",
            "traffic.category_weights.video": 1.5,
            "traffic.qoe.enabled": True,
            "traffic.qoe.duration": "lognormal(600.0,0.5)",
        }
    )
    model = scenario.build_traffic_model()
    assert model.size_dists["Netflix"] == Pareto(500000.0, 1.3)
    assert model.category_weights[ServiceCategory.VIDEO] == 1.5
    assert isinstance(model.day_factor, Mixture)
    assert model.qoe is not None
    assert model.qoe.duration.median == 600.0
    # defaults resolve to no qoe and no overrides
    plain = get_scenario("baseline-geo").build_traffic_model()
    assert plain.qoe is None
    assert not plain.size_dists and not plain.flows_dists


def test_traffic_section_round_trips_through_toml(tmp_path):
    path = tmp_path / "video.toml"
    path.write_text(
        """
name = "video-toml"
description = "qoe via file"

[traffic]
category_weights = {video = 1.5}

[traffic.qoe]
enabled = true
shape_bps = 4e6
"""
    )
    scenario = load_scenario(path)
    assert scenario.traffic.qoe.enabled
    assert scenario.traffic.qoe.shape_bps == 4e6
    model = scenario.build_traffic_model()
    assert model.qoe.shape_bps == 4e6
    payload = scenario.content_payload()
    assert payload["traffic"]["qoe"]["enabled"] is True
