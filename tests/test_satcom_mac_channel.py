"""Tests for the MAC (Aloha/TDMA) and channel (FEC/ARQ) models."""

import numpy as np
import pytest

from repro.satcom.channel import ChannelModel
from repro.satcom.mac import SlottedAlohaModel, TdmaModel


def test_aloha_success_probability():
    aloha = SlottedAlohaModel()
    assert aloha.success_probability(0.0) == 1.0
    assert aloha.success_probability(0.5) == pytest.approx(np.exp(-1.0))
    with pytest.raises(ValueError):
        aloha.success_probability(-0.1)


def test_aloha_zero_load_is_fast(rng):
    aloha = SlottedAlohaModel()
    delays = aloha.sample_access_delay_s(0.0, rng, 1000)
    assert delays.max() <= aloha.slot_s  # no retries, only alignment


def test_aloha_delay_grows_with_load(rng):
    aloha = SlottedAlohaModel()
    light = aloha.sample_access_delay_s(0.05, rng, 4000).mean()
    heavy = aloha.sample_access_delay_s(0.6, rng, 4000).mean()
    assert heavy > light
    # each retry costs at least a reservation round trip
    assert heavy > aloha.reservation_rtt_s * 0.5


def test_tdma_mean_queue_delay_monotonic():
    tdma = TdmaModel()
    values = [tdma.mean_queue_delay_s(u) for u in (0.1, 0.5, 0.8, 0.9)]
    assert values == sorted(values)
    assert tdma.mean_queue_delay_s(0.0) == 0.0


def test_tdma_queue_delay_capped():
    tdma = TdmaModel(max_queue_frames=5.0)
    assert tdma.mean_queue_delay_s(0.99) == pytest.approx(tdma.frame_s * 5.0)


def test_tdma_utilization_validated():
    tdma = TdmaModel()
    with pytest.raises(ValueError):
        tdma.mean_queue_delay_s(1.0)
    with pytest.raises(ValueError):
        tdma.mean_queue_delay_s(-0.1)


def test_tdma_scheduling_includes_frame_alignment(rng):
    tdma = TdmaModel()
    delays = tdma.sample_scheduling_delay_s(0.0, rng, 2000)
    # at zero load: alignment U(0, frame) + half frame
    assert delays.min() >= 0.5 * tdma.frame_s - 1e-9
    assert delays.max() <= 1.5 * tdma.frame_s + 1e-9
    assert delays.mean() == pytest.approx(tdma.frame_s, rel=0.1)


def test_channel_error_probability_decays_with_elevation():
    channel = ChannelModel()
    probs = [channel.frame_error_probability(e) for e in (25, 30, 40, 60, 85)]
    assert probs == sorted(probs, reverse=True)
    assert channel.frame_error_probability(85) < 0.01
    assert channel.frame_error_probability(0) == 1.0  # below horizon


def test_channel_ireland_vs_spain_contrast():
    """Ireland (~27°) must be markedly worse than Spain (~41°)."""
    channel = ChannelModel()
    assert channel.frame_error_probability(27.5) > 4 * channel.frame_error_probability(41.5)


def test_arq_delay_zero_without_errors(rng):
    channel = ChannelModel(floor_probability=0.0, edge_probability=0.0)
    delays = channel.sample_arq_delay_s(90.0, rng, 500)
    assert np.all(delays == 0.0)


def test_arq_delay_scales_with_recoveries(rng):
    channel = ChannelModel()
    low = channel.sample_arq_delay_s(85.0, rng, 4000).mean()
    high = channel.sample_arq_delay_s(25.0, rng, 4000).mean()
    assert high > low
    # a single recovery costs at least the ARQ round trip
    affected = channel.sample_arq_delay_s(25.0, rng, 4000)
    assert affected[affected > 0].min() >= channel.arq_rtt_s * 0.9
