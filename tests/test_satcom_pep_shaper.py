"""Tests for the PEP capacity model, tunnel messages and the shaper."""

import numpy as np
import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.satcom.pep import PepCapacityModel, TunnelMessage, TunnelMessageType
from repro.satcom.shaper import TokenBucketShaper


# --- PEP capacity ------------------------------------------------------------


def test_setup_delay_grows_with_load():
    pep = PepCapacityModel()
    medians = [pep.median_setup_delay_s(load) for load in (0.1, 0.5, 0.8, 0.9)]
    assert medians == sorted(medians)


def test_setup_delay_capped_at_max_ratio():
    pep = PepCapacityModel(max_load_ratio=4.0)
    assert pep.median_setup_delay_s(0.99) == pytest.approx(pep.setup_scale_s * 4.0)


def test_load_validated():
    pep = PepCapacityModel()
    for bad in (-0.1, 1.0, 1.5):
        with pytest.raises(ValueError):
            pep.median_setup_delay_s(bad)


def test_setup_samples_lognormal_median(rng):
    pep = PepCapacityModel()
    samples = pep.sample_setup_delay_s(0.9, rng, 20_000)
    assert np.median(samples) == pytest.approx(pep.median_setup_delay_s(0.9), rel=0.05)


def test_setup_samples_zero_at_zero_load(rng):
    pep = PepCapacityModel()
    assert np.all(pep.sample_setup_delay_s(0.0, rng, 100) == 0.0)


def test_forward_delay_smaller_than_setup(rng):
    pep = PepCapacityModel()
    setup = pep.sample_setup_delay_s(0.8, rng, 5000).mean()
    forward = pep.sample_forward_delay_s(0.8, rng, 5000).mean()
    assert forward < setup


def test_tunnel_message_wire_size():
    message = TunnelMessage(flow_id=1, msg_type=TunnelMessageType.DATA, payload=b"x" * 100)
    assert message.wire_size == 124
    empty = TunnelMessage(flow_id=1, msg_type=TunnelMessageType.CLOSE)
    assert empty.wire_size == 24


# --- Token bucket -------------------------------------------------------------


def test_burst_passes_without_delay():
    shaper = TokenBucketShaper(rate_bps=8_000_000, burst_bytes=10_000)
    assert shaper.delay_for(10_000, now=0.0) == 0.0


def test_debt_paid_at_sustained_rate():
    shaper = TokenBucketShaper(rate_bps=8_000_000, burst_bytes=1_000)  # 1 MB/s
    shaper.delay_for(1_000, now=0.0)
    delay = shaper.delay_for(1_000_000, now=0.0)
    assert delay == pytest.approx(1.0)


def test_tokens_refill_over_time():
    shaper = TokenBucketShaper(rate_bps=8_000, burst_bytes=1_000)  # 1000 B/s
    shaper.delay_for(1_000, now=0.0)
    assert shaper.delay_for(500, now=0.5) == 0.0  # 500 tokens refilled


def test_bucket_never_exceeds_burst():
    shaper = TokenBucketShaper(rate_bps=8_000, burst_bytes=1_000)
    shaper.delay_for(0, now=100.0)  # long idle
    assert shaper.tokens <= 1_000


def test_time_going_backwards_rejected():
    shaper = TokenBucketShaper(rate_bps=8_000)
    shaper.delay_for(10, now=1.0)
    with pytest.raises(ValueError):
        shaper.delay_for(10, now=0.5)


def test_would_conform_does_not_mutate():
    shaper = TokenBucketShaper(rate_bps=8_000, burst_bytes=1_000)
    before = shaper.tokens
    assert shaper.would_conform(500, now=0.0)
    assert shaper.tokens == before


def test_invalid_construction():
    with pytest.raises(ValueError):
        TokenBucketShaper(rate_bps=0)
    with pytest.raises(ValueError):
        TokenBucketShaper(rate_bps=100, burst_bytes=0)


def test_fractional_sizes_accepted():
    """Workload callers pass numpy float64 chunk sizes; fractional
    bytes must drain tokens exactly, not truncate."""
    shaper = TokenBucketShaper(rate_bps=8_000, burst_bytes=1_000)
    assert shaper.delay_for(0.5, now=0.0) == 0.0
    assert shaper.tokens == pytest.approx(999.5)
    assert shaper.delay_for(np.float64(0.25), now=0.0) == 0.0
    assert shaper.tokens == pytest.approx(999.25)


def test_zero_size_is_free():
    shaper = TokenBucketShaper(rate_bps=8_000, burst_bytes=1_000)
    before = shaper.tokens
    assert shaper.delay_for(0.0, now=0.0) == 0.0
    assert shaper.tokens == before


def test_fractional_debt_paid_at_rate():
    shaper = TokenBucketShaper(rate_bps=8_000, burst_bytes=1_000)  # 1000 B/s
    shaper.delay_for(1_000, now=0.0)
    assert shaper.delay_for(0.5, now=0.0) == pytest.approx(0.0005)


def test_negative_nan_and_inf_sizes_rejected():
    shaper = TokenBucketShaper(rate_bps=8_000, burst_bytes=1_000)
    with pytest.raises(ValueError, match="non-negative"):
        shaper.delay_for(-1, now=0.0)
    with pytest.raises(ValueError, match="non-negative"):
        shaper.delay_for(float("nan"), now=0.0)
    with pytest.raises(ValueError, match="finite"):
        shaper.delay_for(float("inf"), now=0.0)
    # rejected sizes never mutate the bucket
    assert shaper.tokens == 1_000


@given(st.lists(st.integers(min_value=1, max_value=5_000), min_size=5, max_size=40))
def test_long_run_rate_never_exceeds_configured(sizes):
    """Property: cumulative release time respects the sustained rate."""
    rate_bps = 80_000.0  # 10 kB/s
    shaper = TokenBucketShaper(rate_bps=rate_bps, burst_bytes=2_000)
    now = 0.0
    released_at = []
    for size in sizes:
        delay = shaper.delay_for(size, now)
        released_at.append(now + delay)
        now += delay
    total_bytes = sum(sizes)
    elapsed = released_at[-1]
    # bytes beyond the initial burst must be paced at the token rate
    assert total_bytes - 2_000 <= rate_bps / 8.0 * elapsed + 1e-6
