"""Failure injection / fuzz: the probe must survive arbitrary traffic."""

import numpy as np
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.flowmeter.meter import FlowMeter
from repro.net.packet import IPProtocol, Packet, TCPFlags
from repro.protocols import tls


packet_strategy = st.builds(
    Packet,
    src_ip=st.integers(min_value=0, max_value=0xFFFFFFFF),
    dst_ip=st.integers(min_value=0, max_value=0xFFFFFFFF),
    src_port=st.integers(min_value=0, max_value=65535),
    dst_port=st.sampled_from([53, 80, 443, 8080, 40000]),
    protocol=st.sampled_from([IPProtocol.TCP, IPProtocol.UDP]),
    payload=st.binary(max_size=200),
    flags=st.integers(min_value=0, max_value=0x1F).map(TCPFlags),
    seq=st.integers(min_value=0, max_value=0xFFFFFFFF),
    ack=st.integers(min_value=0, max_value=0xFFFFFFFF),
    timestamp=st.floats(min_value=0, max_value=1e6, allow_nan=False),
)


@settings(max_examples=30, deadline=None, suppress_health_check=[HealthCheck.too_slow])
@given(st.lists(packet_strategy, max_size=60))
def test_meter_never_crashes_on_fuzzed_packets(packets):
    meter = FlowMeter()
    for packet in packets:
        meter.process(packet)
    meter.expire(now=1e9)
    meter.flush_all()
    for record in meter.records:
        assert record.ts_end >= record.ts_start
        assert record.bytes_up >= 0 and record.bytes_down >= 0


@settings(max_examples=30, deadline=None)
@given(st.binary(min_size=1, max_size=400), st.integers(min_value=0, max_value=50))
def test_meter_survives_corrupted_tls(garbage, split_at):
    """A valid ClientHello followed by corruption mid-stream."""
    meter = FlowMeter()
    hello = tls.client_hello("fuzzed.example")
    stream = hello[: max(1, split_at)] + garbage
    seq = 1
    for offset in range(0, len(stream), 100):
        chunk = stream[offset : offset + 100]
        meter.process(
            Packet(
                src_ip=1, dst_ip=2, src_port=1000, dst_port=443,
                protocol=IPProtocol.TCP, flags=TCPFlags.ACK | TCPFlags.PSH,
                seq=seq, ack=1, payload=chunk, timestamp=float(offset),
            )
        )
        seq += len(chunk)
    meter.flush_all()
    assert len(meter.records) == 1


def test_meter_handles_interleaved_thousand_flows(rng):
    """Many concurrent flows with interleaved packets — bounded state,
    correct per-flow accounting."""
    meter = FlowMeter()
    n_flows = 300
    for round_idx in range(4):
        for flow in range(n_flows):
            meter.process(
                Packet(
                    src_ip=0x0A000000 + flow, dst_ip=0x17000001,
                    src_port=40000 + flow, dst_port=443,
                    protocol=IPProtocol.TCP,
                    flags=TCPFlags.SYN if round_idx == 0 else TCPFlags.ACK | TCPFlags.PSH,
                    seq=1 + round_idx * 100, ack=1,
                    payload=b"" if round_idx == 0 else b"y" * 100,
                    timestamp=float(round_idx),
                )
            )
    assert meter.active_flows == n_flows
    meter.flush_all()
    assert len(meter.records) == n_flows
    for record in meter.records:
        assert record.bytes_up == 300  # 3 data rounds × 100 B


def test_expire_leaves_fresh_flows(rng):
    meter = FlowMeter(idle_timeout_s=10.0)
    for i, t in enumerate((0.0, 100.0)):
        meter.process(
            Packet(
                src_ip=1 + i, dst_ip=2, src_port=1000 + i, dst_port=443,
                protocol=IPProtocol.TCP, flags=TCPFlags.SYN, timestamp=t,
            )
        )
    expired = meter.expire(now=101.0)
    assert expired == 1
    assert meter.active_flows == 1
