"""Property-based tests: TCP byte-stream integrity and workload
invariants under randomized inputs."""

import numpy as np
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.net.tcp import TcpEndpoint
from repro.simnet.engine import Simulator
from repro.simnet.link import Link
from repro.traffic.workload import WorkloadConfig, WorkloadGenerator


@settings(max_examples=25, deadline=None)
@given(
    chunks=st.lists(st.binary(min_size=1, max_size=5000), min_size=1, max_size=12),
    mss=st.integers(min_value=200, max_value=1460),
    window=st.integers(min_value=1000, max_value=64 * 1024),
)
def test_tcp_stream_integrity(chunks, mss, window):
    """Whatever the app writes, in whatever chunking, arrives intact,
    in order, exactly once — for any MSS/window combination."""
    sim = Simulator()
    link_ab = Link(sim, prop_delay_s=0.005)
    link_ba = Link(sim, prop_delay_s=0.005)
    received = bytearray()
    b = None

    def deliver_to_b(pkt):
        b.handle_packet(pkt)

    a = TcpEndpoint(
        sim, 1, 10, 2, 20,
        send_packet=lambda p: link_ab.send(p, p.size_bytes, deliver_to_b),
        mss=mss, window_bytes=window,
    )
    b = TcpEndpoint(
        sim, 2, 20, 1, 10,
        send_packet=lambda p: link_ba.send(p, p.size_bytes, a.handle_packet),
        on_data=received.extend,
        mss=mss, window_bytes=window,
    )
    b.listen()
    a.connect()
    sim.run()
    for chunk in chunks:
        a.send(chunk)
    sim.run()
    assert bytes(received) == b"".join(chunks)


@settings(max_examples=6, deadline=None, suppress_health_check=[HealthCheck.too_slow])
@given(
    n_customers=st.integers(min_value=10, max_value=60),
    days=st.integers(min_value=1, max_value=2),
    seed=st.integers(min_value=0, max_value=10_000),
)
def test_workload_invariants(n_customers, days, seed):
    """Structural invariants hold for any generator configuration."""
    frame = WorkloadGenerator(
        WorkloadConfig(n_customers=n_customers, days=days, seed=seed, flow_scale=0.3)
    ).generate()
    assert len(frame) > 0
    assert np.all(frame.bytes_down > 0)
    assert np.all(frame.duration_s > 0)
    assert np.all((frame.hour_utc >= 0) & (frame.hour_utc < 24))
    assert np.all((frame.day >= 0) & (frame.day < days))
    assert frame.customer_id.max() <= n_customers
    # sat RTT only on HTTPS, above the physical floor
    has_sat = np.isfinite(frame.sat_rtt_ms)
    if has_sat.any():
        assert frame.sat_rtt_ms[has_sat].min() > 500.0
    # DNS rows and only DNS rows carry resolvers
    dns_rows = frame.resolver_idx >= 0
    assert np.all(np.isfinite(frame.dns_response_ms[dns_rows]))
    assert not np.isfinite(frame.dns_response_ms[~dns_rows]).any()
