"""The vectorized kernels against their python oracles.

Every kernel in ``repro.kernels`` carries the same contract: identical
observable output to the per-packet/per-call python implementation, or
a refusal that leaves state untouched. These tests sweep random and
crafted inputs through both sides and assert equality — including the
shapes that force the flow kernel's fallback and split-retry paths.
"""

import numpy as np
import pytest

from repro.kernels import ENGINES, resolve_engine
from repro.kernels.sniff import (
    BATCH_SNIFFERS,
    PREFIX_WIDTH,
    SCALAR_ORACLES,
    payload_prefixes,
    sniff_matrix,
)
from repro.flowmeter.meter import FlowMeter
from repro.net.packet import IPProtocol, Packet, TCPFlags
from repro.protocols import dns as dnsproto
from repro.protocols import tls as tlsproto

# -- engine knob ------------------------------------------------------------


def test_resolve_engine_accepts_known_names():
    assert resolve_engine("python") == "python"
    assert resolve_engine(" Vectorized ") == "vectorized"
    assert set(ENGINES) == {"python", "vectorized"}


@pytest.mark.parametrize("bad", ["cuda", "", "numpy", 3])
def test_resolve_engine_rejects_unknown(bad):
    with pytest.raises(ValueError):
        resolve_engine(bad)


# -- batch sniffers ---------------------------------------------------------

_CRAFTED = [
    b"",
    b"\x00",
    b" GET",
    b"GET",  # bare method, no space: matches (token is whole payload)
    b"GET ",
    b"GET / HTTP/1.1\r\n",
    b"GETXY /",  # method prefix but longer token
    b"GET\x00 rest",  # NUL inside token: token != method
    b"OPTIONS * HTTP/1.1",
    b"CONNECT host:443",
    b"\x16\x03\x01\x00\x05hello",  # TLS handshake record
    b"\x17\x03\x03\x00\x01x",  # TLS appdata
    b"\x16\x04\x01xxxx",  # wrong version major
    b"\x16\x03",  # too short
    b"\x80\x00\x00\x00\x01" + b"x" * 8,  # long-header QUIC without fixed bit
    b"\xc0\x00\x00\x00\x01" + b"x" * 8,  # QUIC v1 Initial
    b"\xc0\x00\x00\x00\x02" + b"x" * 8,  # unknown version
    b"\x40" + b"x" * 12,  # short-header QUIC / also RTP-length
    b"\x80" + b"x" * 11,  # RTP version bits
    b"\x80" + b"x" * 2,  # too short for RTP
    dnsproto.encode_query(7, "edge.example.com"),
    tlsproto.client_hello("example.com")
    if hasattr(tlsproto, "client_hello")
    else b"\x16\x03\x01\x00\x00",
]


def _random_payloads(n=4000, seed=0):
    rng = np.random.default_rng(seed)
    payloads = []
    for _ in range(n):
        size = int(rng.integers(0, PREFIX_WIDTH + 8))
        payloads.append(bytes(rng.integers(0, 256, size, dtype=np.uint8)))
    return payloads


@pytest.mark.parametrize("name", sorted(BATCH_SNIFFERS))
def test_batch_sniffers_match_scalar_oracles(name):
    payloads = _CRAFTED + _random_payloads()
    prefixes, lengths = payload_prefixes(payloads)
    got = BATCH_SNIFFERS[name](prefixes, lengths)
    want = np.array([bool(SCALAR_ORACLES[name](p)) for p in payloads])
    differs = np.nonzero(got != want)[0]
    assert differs.size == 0, (
        f"{name} disagrees on payloads {[payloads[i] for i in differs[:5]]!r}"
    )


def test_sniff_matrix_runs_all_protocols():
    result = sniff_matrix([b"GET / HTTP/1.1", b"\x16\x03\x01\x00\x05hello"])
    assert set(result) == set(BATCH_SNIFFERS)
    assert result["http"][0] and not result["http"][1]
    assert result["tls"][1] and not result["tls"][0]


def test_payload_prefixes_pads_and_measures():
    prefixes, lengths = payload_prefixes([b"", b"abc", b"z" * 64])
    assert prefixes.shape == (3, PREFIX_WIDTH)
    assert lengths.tolist() == [0, 3, 64]
    assert prefixes[1, :4].tolist() == [ord("a"), ord("b"), ord("c"), 0]


# -- flow meter equivalence -------------------------------------------------


def _tcp(src, dst, sport, dport, ts, payload=b"", flags=TCPFlags(0), seq=0, ack=0):
    return Packet(
        src_ip=src,
        dst_ip=dst,
        src_port=sport,
        dst_port=dport,
        protocol=IPProtocol.TCP,
        payload=payload,
        flags=flags,
        seq=seq,
        ack=ack,
        timestamp=ts,
    )


def _udp(src, dst, sport, dport, ts, payload):
    return Packet(
        src_ip=src,
        dst_ip=dst,
        src_port=sport,
        dst_port=dport,
        protocol=IPProtocol.UDP,
        payload=payload,
        timestamp=ts,
    )


def _mixed_stream():
    """Interleaved flows hitting every kernel path: plain data flows,
    full FIN/FIN teardowns mid-batch (straddle -> split-retry), an RST
    teardown, stray ACKs to unseen 5-tuples (ignored), a symmetric-key
    pathology, DNS and QUIC and RTP over UDP."""
    packets = []
    ts = 0.0
    # three data-only TCP flows, interleaved
    for i in range(60):
        for f in range(3):
            client, server = 0x0A000001 + f, 0x08080810 + f
            packets.append(
                _tcp(
                    client, server, 40000 + f, 443, ts,
                    payload=b"z" * 100,
                    flags=TCPFlags.PSH | TCPFlags.ACK,
                    seq=i * 100,
                    ack=0,
                )
            )
            ts += 0.001
            if i % 7 == 0:  # server ACKs measuring RTT
                packets.append(
                    _tcp(
                        server, client, 443, 40000 + f, ts,
                        flags=TCPFlags.ACK, ack=(i + 1) * 100,
                    )
                )
                ts += 0.001
    # a complete teardown in the middle of the stream (straddle shape)
    c, s = 0x0A0000F0, 0x08080901
    packets.append(_tcp(c, s, 41000, 443, ts, flags=TCPFlags.SYN, seq=0))
    packets.append(
        _tcp(c, s, 41000, 443, ts + 0.01, payload=b"hello", seq=1,
             flags=TCPFlags.PSH | TCPFlags.ACK)
    )
    packets.append(
        _tcp(s, c, 443, 41000, ts + 0.3, flags=TCPFlags.FIN | TCPFlags.ACK,
             ack=6)
    )
    packets.append(
        _tcp(c, s, 41000, 443, ts + 0.4, flags=TCPFlags.FIN | TCPFlags.ACK)
    )
    # an RST teardown
    packets.append(_tcp(c, s, 41001, 443, ts + 0.5, payload=b"x", seq=0))
    packets.append(_tcp(s, c, 443, 41001, ts + 0.6, flags=TCPFlags.RST))
    # stray teardown ACKs to a 5-tuple the meter never opened
    packets.append(_tcp(c, s, 49999, 443, ts + 0.7, flags=TCPFlags.ACK))
    packets.append(_tcp(s, c, 443, 49999, ts + 0.8, flags=TCPFlags.ACK))
    # stray then open on the same 5-tuple (forces the kernel fallback)
    packets.append(_tcp(c, s, 50001, 443, ts + 0.85, flags=TCPFlags.ACK))
    packets.append(_tcp(c, s, 50001, 443, ts + 0.9, flags=TCPFlags.SYN))
    # symmetric-key pathology: same endpoint both sides
    packets.append(_tcp(c, c, 5555, 5555, ts + 0.95, payload=b"loop"))
    # UDP: DNS query/response, QUIC initial, RTP
    packets.append(
        _udp(c, 0x08080808, 53000, 53, ts + 1.0,
             dnsproto.encode_query(9, "cdn.example.org"))
    )
    packets.append(
        _udp(c, 0x08080910, 52000, 443, ts + 1.1,
             b"\xc0\x00\x00\x00\x01" + b"q" * 30)
    )
    packets.append(_udp(c, 0x08080920, 51000, 40000, ts + 1.2, b"\x80" + b"r" * 20))
    return packets


@pytest.mark.parametrize("batch_size", [1, 7, 64, 4096])
def test_vectorized_meter_matches_python(batch_size):
    stream = _mixed_stream()
    oracle = FlowMeter(engine="python")
    for packet in stream:
        oracle.process(packet)
    oracle.flush_all()

    vec = FlowMeter(engine="vectorized", batch_size=batch_size)
    for packet in stream:
        vec.process(packet)
    vec.flush_all()

    assert vec.packets_processed == oracle.packets_processed
    assert vec.records == oracle.records


def test_process_batch_equals_process_loop():
    stream = _mixed_stream()
    one_by_one = FlowMeter(engine="vectorized", batch_size=50)
    for packet in stream:
        one_by_one.process(packet)
    all_at_once = FlowMeter(engine="vectorized")
    all_at_once.process_batch(stream)
    one_by_one.flush_all()
    all_at_once.flush_all()
    assert one_by_one.records == all_at_once.records

    python_batch = FlowMeter(engine="python")
    python_batch.process_batch(stream)
    python_batch.flush_all()
    assert python_batch.records == all_at_once.records


def test_active_flows_drains_pending():
    vec = FlowMeter(engine="vectorized", batch_size=10_000)
    vec.process(_tcp(1, 2, 1000, 443, 0.0, payload=b"x"))
    assert vec.active_flows == 1  # the property is a drain point


def test_expire_drains_pending_first():
    vec = FlowMeter(engine="vectorized", batch_size=10_000, idle_timeout_s=1.0)
    oracle = FlowMeter(engine="python", idle_timeout_s=1.0)
    packet = _tcp(1, 2, 1000, 443, 0.0, payload=b"x")
    vec.process(packet)
    oracle.process(packet)
    assert vec.expire(100.0) == oracle.expire(100.0) == 1
    assert vec.records == oracle.records


# -- DPI frozen predicate ---------------------------------------------------


def test_observable_frozen_is_sticky_for_other_tcp():
    from repro.flowmeter.dpi import DpiEngine
    from repro.net.flowkey import Direction

    engine = DpiEngine(protocol="tcp", server_port=1234)
    assert not engine.observable_frozen
    engine.on_payload(Direction.CLIENT_TO_SERVER, b"not a known protocol", 0.0)
    assert engine.observable_frozen
    before = (engine.result.l7, engine.result.domain)
    # frozen means frozen: more payload changes nothing observable
    engine.on_payload(Direction.CLIENT_TO_SERVER, b"\x16\x03\x01\x00\x05aaaaa", 1.0)
    assert engine.observable_frozen
    assert (engine.result.l7, engine.result.domain) == before


def test_observable_frozen_never_lies(monkeypatch):
    """The exact property the flow kernel relies on: once an engine
    reports frozen, NO later payload may change its observables. Every
    ``on_payload`` call of a full mixed-protocol packet simulation is
    checked against a pre-call snapshot."""
    from repro.flowmeter import dpi as dpimod

    original = dpimod.DpiEngine.on_payload
    violations = []

    def snapshot(engine):
        r = engine.result
        return (
            r.l7,
            r.domain,
            r.dns_qname,
            r.dns_query_at,
            r.dns_response_at,
            r.dns_rcode,
            frozenset(engine._seen_handshake),
            engine._client_ccs_seen,
        )

    def checked(self, direction, payload, now):
        frozen_before = self.observable_frozen
        before = snapshot(self) if frozen_before else None
        original(self, direction, payload, now)
        if frozen_before:
            if snapshot(self) != before:
                violations.append((before, snapshot(self)))
            if not self.observable_frozen:
                violations.append(("frozen flag regressed", before))

    monkeypatch.setattr(dpimod.DpiEngine, "on_payload", checked)
    from repro.pipeline import run_mixed_protocol_simulation, run_packet_simulation

    run_packet_simulation(engine="python")
    run_mixed_protocol_simulation(n_each=1, engine="python")
    assert violations == []


# -- simulator batch scheduling ---------------------------------------------


def test_at_batch_matches_sequential_at():
    from repro.simnet.engine import Simulator

    tasks = [(0.5, "a"), (0.1, "b"), (0.5, "c"), (0.0, "d"), (0.3, "e")]
    seq_out, batch_out = [], []
    seq_sim = Simulator()
    for t, label in tasks:
        seq_sim.at(t, seq_out.append, label)
    seq_sim.run()

    batch_sim = Simulator()
    batch_sim.at_batch([(t, batch_out.append, (label,)) for t, label in tasks])
    batch_sim.run()
    assert batch_out == seq_out  # including the 0.5 tie broken by order


def test_schedule_batch_relative_delays():
    from repro.simnet.engine import Simulator

    sim = Simulator(start_time=10.0)
    out = []
    events = sim.schedule_batch([(1.0, out.append, ("x",)), (0.5, out.append, ("y",))])
    assert len(events) == 2
    events[0].cancel()
    sim.run()
    assert out == ["y"]


def test_at_batch_validates_before_mutating():
    from repro.simnet.engine import Simulator

    sim = Simulator(start_time=5.0)
    sim.at(6.0, lambda: None)
    with pytest.raises(ValueError):
        sim.at_batch([(7.0, lambda: None, ()), (1.0, lambda: None, ())])
    assert sim.pending == 1  # bad batch left the heap untouched


# -- persistent shard pool --------------------------------------------------


def test_shard_pool_matches_transient_generation():
    import multiprocessing

    from repro.parallel import ShardWorkerPool, generate_window_shards
    from repro.traffic.workload import WorkloadConfig, WorkloadGenerator

    generator = WorkloadGenerator(WorkloadConfig(n_customers=40, days=2, seed=5))
    shards = generator.shard_plan()
    reference = generate_window_shards(generator, shards, 2, 0, 0, 1, 1)

    worker_counts = [1]
    if "fork" in multiprocessing.get_all_start_methods():
        worker_counts.append(2)
    for n_workers in worker_counts:
        with ShardWorkerPool(generator, n_workers) as pool:
            frames = pool.generate_window(shards, 2, 0, 0, 1)
        assert len(frames) == len(reference)
        for got, want in zip(frames, reference):
            if want is None:
                assert got is None
                continue
            assert len(got) == len(want)
            for name in ("ts_start", "bytes_down", "ground_rtt_ms"):
                a, b = getattr(got, name), getattr(want, name)
                nan_ok = a.dtype.kind == "f"
                assert np.array_equal(a, b, equal_nan=nan_ok), name
