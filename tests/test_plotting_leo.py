"""Tests for ASCII plotting and the LEO comparison geometry."""

import numpy as np
import pytest

from repro.analysis.plotting import ascii_cdf, sparkline
from repro.errant.profiles import BUILTIN_PROFILES
from repro.satcom.leo import LeoShell, geo_vs_leo_floor_ratio


# --- sparkline -----------------------------------------------------------


def test_sparkline_shape():
    line = sparkline([0, 1, 2, 3, 4, 5, 6, 7, 8])
    assert len(line) == 9
    assert line[0] == " " and line[-1] == "█"


def test_sparkline_resamples_to_width():
    line = sparkline(list(range(100)), width=20)
    assert len(line) == 20


def test_sparkline_flat_and_empty():
    assert sparkline([5, 5, 5]) == "   "  # flat → lowest level
    assert sparkline([]) == ""
    assert sparkline([float("nan")]) == ""  # nothing finite → nothing drawn


# --- ascii_cdf -------------------------------------------------------------


def test_ascii_cdf_structure(rng):
    plot = ascii_cdf(
        {"a": rng.lognormal(0, 1, 500), "b": rng.lognormal(1, 1, 500)},
        width=40,
        height=8,
    )
    lines = plot.splitlines()
    assert len(lines) == 8 + 3  # grid + axis + x-range + legend
    assert "*=a" in lines[-1] and "o=b" in lines[-1]
    assert lines[0].startswith("1.00 |")


def test_ascii_cdf_monotone(rng):
    """Within a column range, the marker row must descend (CDF grows)."""
    values = rng.lognormal(0, 0.5, 2000)
    plot = ascii_cdf({"x": values}, width=30, height=10)
    rows = [line.split("|", 1)[1] for line in plot.splitlines()[:10]]
    first_marks = [next((r for r, row in enumerate(rows) if row[c] == "*"), None)
                   for c in range(30)]
    seen = [r for r in first_marks if r is not None]
    assert seen == sorted(seen, reverse=True)


def test_ascii_cdf_empty():
    assert ascii_cdf({}) == "(no data)"
    assert ascii_cdf({"a": np.array([np.nan])}) == "(no data)"


def test_ascii_cdf_linear_axis(rng):
    plot = ascii_cdf({"a": rng.normal(10, 1, 200)}, x_log=False, x_label="ms")
    assert "→" in plot and "ms" in plot


# --- LEO ----------------------------------------------------------------------


def test_leo_slant_range_bounds():
    shell = LeoShell()
    zenith = shell.slant_range_m(90.0)
    horizon = shell.slant_range_m(shell.min_elevation_deg)
    assert zenith == pytest.approx(shell.altitude_m, rel=1e-6)
    assert horizon > zenith
    with pytest.raises(ValueError):
        shell.slant_range_m(-1.0)


def test_leo_rtt_floor_milliseconds():
    shell = LeoShell()
    assert 0.005 < shell.min_rtt_s() < 0.010   # ~7.3 ms for 4×550 km
    assert shell.min_rtt_s() < shell.max_rtt_s() < 0.03


def test_leo_samples_match_starlink_profile(rng):
    """Physics-based samples should straddle the measured-profile median
    the built-in 'starlink' ERRANT profile uses (Michel et al.)."""
    shell = LeoShell()
    samples = shell.sample_rtt_s(rng, 4000) * 1000.0
    profile = BUILTIN_PROFILES["starlink"]
    assert np.median(samples) == pytest.approx(profile.rtt_median_ms, rel=0.5)
    assert samples.min() > 10.0


def test_geo_vs_leo_ratio():
    """The paper's 550 ms story is a GEO artifact: the propagation floor
    sits ~50–80× above a 550 km shell."""
    ratio = geo_vs_leo_floor_ratio()
    assert 40.0 < ratio < 100.0


def test_isl_shell_cheaper():
    bent = LeoShell(bent_pipe=True)
    isl = LeoShell(bent_pipe=False)
    assert isl.min_rtt_s() == pytest.approx(bent.min_rtt_s() / 2)
