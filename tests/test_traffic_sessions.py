"""Video-QoE sessions end to end: the ABR model, the generator's
session chunks, shaping behaviour, fig12 parity, and old-capture
backfill."""

from pathlib import Path

import numpy as np
import pytest

from repro.analysis.dataset import _ARRAY_FIELDS, _POOL_FIELDS, FlowFrame
from repro.analysis.reports import fig12_video_qoe
from repro.flowmeter.records import L7Protocol, L7_ORDER
from repro.scenario import get_scenario
from repro.stream import FlowStore, StreamRollup, WindowEntry, run_stream_capture
from repro.traffic.sessions import VideoQoeConfig, VideoSessionModel


def _video_scenario(name: str = "video-streaming", **extra):
    overrides = {
        "population.n_customers": 60,
        "workload.days": 2,
        "workload.seed": 5,
        "execution.compress": False,
        **extra,
    }
    return get_scenario(name).with_overrides(overrides)


# -- the ABR session model ------------------------------------------------


def test_session_model_deterministic_and_bounded():
    model = VideoSessionModel()
    a = model.simulate(5e6, 600.0)
    b = model.simulate(5e6, 600.0)
    assert np.array_equal(a.chunk_bytes, b.chunk_bytes)
    assert np.array_equal(a.chunk_time_s, b.chunk_time_s)
    assert np.array_equal(a.start_offset_s, b.start_offset_s)
    assert a.rebuffer_ratio == b.rebuffer_ratio
    assert 0.0 <= a.rebuffer_ratio <= 1.0
    ladder_len = len(model.config.ladder_mbps)
    assert 0.0 <= a.mean_level <= ladder_len - 1
    assert a.switches >= 0
    assert len(a.chunk_bytes) == len(a.chunk_time_s) == len(a.start_offset_s)
    assert np.all(a.chunk_bytes > 0)
    assert np.all(np.diff(a.start_offset_s) >= 0)


def test_session_model_follows_capacity_gradient():
    model = VideoSessionModel()
    starved = model.simulate(1.2e6, 600.0)
    rich = model.simulate(50e6, 600.0)
    assert rich.mean_level > starved.mean_level
    assert rich.rebuffer_ratio <= starved.rebuffer_ratio
    # plenty of headroom reaches the top rung and barely rebuffers
    assert rich.mean_level > len(model.config.ladder_mbps) - 2
    assert rich.rebuffer_ratio < 0.05


def test_session_model_caps_chunks():
    result = VideoSessionModel().simulate(5e6, 1e9)
    assert len(result.chunk_bytes) == VideoSessionModel.MAX_CHUNKS


def test_shaper_trades_level_for_stability():
    """A 4 Mb/s video shaper must pull the mean level down toward the
    sustainable rung even on a fat plan."""
    unshaped = VideoSessionModel(VideoQoeConfig()).simulate(100e6, 900.0)
    shaped = VideoSessionModel(VideoQoeConfig(shape_bps=4e6)).simulate(100e6, 900.0)
    assert shaped.mean_level < unshaped.mean_level
    # sustainable at ABR_MARGIN * 4 Mb/s: the 2.5 Mb/s rung (index 1)
    assert shaped.mean_level < 2.5
    assert shaped.rebuffer_ratio < 0.2


# -- the generator's session chunks ---------------------------------------


@pytest.fixture(scope="module")
def video_frame():
    return _video_scenario().build_generator().generate()


def test_generator_emits_consistent_sessions(video_frame):
    frame = video_frame
    has = frame.session_id >= 0
    assert has.any(), "video-streaming scenario must emit session chunks"
    # QoE columns are sentinel-filled outside sessions and real inside
    assert np.all(np.isnan(frame.qoe_rebuffer[~has]))
    assert np.all(frame.qoe_switches[~has] == -1)
    assert np.all(np.isfinite(frame.qoe_rebuffer[has]))
    assert np.all(frame.qoe_rebuffer[has] >= 0.0)
    assert np.all(frame.qoe_rebuffer[has] <= 1.0)
    assert np.all(frame.qoe_level[has] >= 0.0)
    assert np.all(frame.qoe_switches[has] >= 0)
    # session chunks are HTTPS video flows without RTT/DNS enrichment
    assert np.all(frame.l7_idx[has] == L7_ORDER.index(L7Protocol.HTTPS))
    assert np.all(frame.resolver_idx[has] == -1)
    # every chunk of a session agrees on customer, country, day and QoE
    ids = frame.session_id[has]
    for name in ("customer_id", "country_idx", "day", "qoe_rebuffer", "qoe_level", "qoe_switches"):
        col = getattr(frame, name)[has]
        order = np.argsort(ids, kind="stable")
        same_session = np.diff(ids[order]) == 0
        pairs_equal = np.diff(col[order].astype(np.float64)) == 0
        assert np.all(pairs_equal[same_session]), f"{name} varies within a session"


def test_disabled_qoe_emits_no_sessions():
    frame = (
        _video_scenario(name="baseline-geo").build_generator().generate()
    )
    assert not np.any(frame.session_id >= 0)
    assert np.all(np.isnan(frame.qoe_rebuffer))


def test_shaped_scenario_lowers_mean_level(video_frame):
    shaped_frame = (
        _video_scenario(name="shaped-vs-unshaped").build_generator().generate()
    )
    unshaped = fig12_video_qoe.compute(video_frame)
    shaped = fig12_video_qoe.compute(shaped_frame)
    assert shaped.total_sessions() > 0
    level_unshaped = float(unshaped.level_sum.sum() / unshaped.total_sessions())
    level_shaped = float(shaped.level_sum.sum() / shaped.total_sessions())
    assert level_shaped < level_unshaped


# -- streaming parity -----------------------------------------------------


def test_stream_capture_parity_across_workers_and_depths(tmp_path):
    """The same video capture, streamed under different worker counts
    and pipeline depths, spills identical windows and rollups, and
    fig12 renders identically from the rollup and the frame path."""
    digests = []
    renders = []
    for label, overrides in (
        ("w1", {"execution.workers": 1, "execution.pipeline_depth": 0}),
        ("w2", {"execution.workers": 2, "execution.pipeline_depth": 2}),
    ):
        scenario = _video_scenario(**overrides)
        result = run_stream_capture(
            scenario.stream_config(), tmp_path / label
        )
        digests.append(result.rollup.state_digest())
        renders.append(
            fig12_video_qoe.render(fig12_video_qoe.from_rollup(result.rollup))
        )
        assert int(result.rollup.qoe_sessions.sum()) > 0
    assert digests[0] == digests[1]
    assert renders[0] == renders[1]
    # rollup path == frame path over the same spilled capture, byte for
    # byte (the exact_parity contract)
    store = FlowStore.open(tmp_path / "w1")
    streamed = FlowFrame.concat([w for _, w in store.iter_windows()])
    frame_render = fig12_video_qoe.render(fig12_video_qoe.compute(streamed))
    assert renders[0] == frame_render


def test_rollup_qoe_merge_matches_single_fold(video_frame):
    frame = video_frame
    days = np.unique(frame.day)
    whole = StreamRollup.for_frame(frame)
    first = StreamRollup.for_frame(frame)
    second = StreamRollup.for_frame(frame)
    for day in days:
        whole.update(frame.filter(frame.day == day))
    first.update(frame.filter(frame.day == days[0]))
    for day in days[1:]:
        second.update(frame.filter(frame.day == day))
    first.merge(second)
    assert np.array_equal(whole.qoe_sessions, first.qoe_sessions)
    np.testing.assert_allclose(
        whole.qoe_rebuffer_sum, first.qoe_rebuffer_sum, rtol=1e-12
    )
    assert whole.qoe_sessions.sum() == fig12_video_qoe.compute(frame).total_sessions()


# -- old-capture backfill -------------------------------------------------

_SEED_COLUMNS = _ARRAY_FIELDS[:19]


def _strip_new_columns_npz(src: Path, dst: Path, keep_pools: bool) -> None:
    """Re-save an npz without the session/QoE quartet, like a capture
    written before the schema grew."""
    with np.load(src, allow_pickle=True) as data:
        kept = {
            name: data[name]
            for name in data.files
            if name in _SEED_COLUMNS or (keep_pools and name.startswith("pool_"))
        }
    np.savez(dst, **kept)


def test_load_npz_backfills_old_frame(tmp_path, video_frame):
    sub = video_frame.filter(video_frame.day == 0)
    new_path = tmp_path / "new.npz"
    old_path = tmp_path / "old.npz"
    sub.save_npz(new_path, compress=False)
    _strip_new_columns_npz(new_path, old_path, keep_pools=True)
    loaded = FlowFrame.load_npz(old_path)
    assert len(loaded) == len(sub)
    assert np.all(loaded.session_id == -1)
    assert np.all(np.isnan(loaded.qoe_rebuffer))
    assert np.all(np.isnan(loaded.qoe_level))
    assert np.all(loaded.qoe_switches == -1)
    assert loaded.session_id.dtype == np.int64
    assert loaded.qoe_switches.dtype == np.int16


def test_store_read_window_backfills_old_capture(tmp_path, video_frame):
    sub = video_frame.filter(video_frame.day == 0)
    pools = {name: list(getattr(sub, name)) for name in _POOL_FIELDS}
    store = FlowStore.create(
        tmp_path / "cap",
        pools=pools,
        windows=[WindowEntry(0, 0, 1)],
        capture_key="test",
        config={},
        compress=False,
    )
    store.write_window(0, sub)
    path = store.window_path(0)
    _strip_new_columns_npz(path, path, keep_pools=False)

    full = store.read_window(0)
    assert np.all(full.session_id == -1)
    assert np.all(np.isnan(full.qoe_rebuffer))
    assert full.qoe_switches.dtype == np.int16

    projected = store.read_window(0, columns=("bytes_down", "qoe_level"))
    assert len(projected["qoe_level"]) == len(sub)
    assert np.all(np.isnan(projected["qoe_level"]))
    np.testing.assert_array_equal(projected["bytes_down"], sub.bytes_down)
