"""Tests for the simulated TCP endpoint (loopback pair harness)."""

import pytest

from repro.net.packet import TCPFlags
from repro.net.tcp import TcpEndpoint, TcpState
from repro.simnet.engine import Simulator
from repro.simnet.link import Link


class _Pair:
    """Two endpoints joined by symmetric links."""

    def __init__(self, one_way_s: float = 0.01, mss: int = 1460, window: int = 64 * 1024):
        self.sim = Simulator()
        self.link_ab = Link(self.sim, prop_delay_s=one_way_s)
        self.link_ba = Link(self.sim, prop_delay_s=one_way_s)
        self.received = {"a": bytearray(), "b": bytearray()}
        self.closed = {"a": False, "b": False}
        self.a = TcpEndpoint(
            self.sim, 1, 1000, 2, 443,
            send_packet=lambda p: self.link_ab.send(p, p.size_bytes, self.b_recv),
            on_data=lambda d: self.received["a"].extend(d),
            on_closed=lambda: self.closed.update(a=True),
            mss=mss, window_bytes=window,
        )
        self.b = TcpEndpoint(
            self.sim, 2, 443, 1, 1000,
            send_packet=lambda p: self.link_ba.send(p, p.size_bytes, self.a_recv),
            on_data=lambda d: self.received["b"].extend(d),
            on_closed=lambda: self.closed.update(b=True),
            mss=mss, window_bytes=window,
        )

    def a_recv(self, pkt):
        self.a.handle_packet(pkt)

    def b_recv(self, pkt):
        self.b.handle_packet(pkt)

    def connect(self):
        self.b.listen()
        self.a.connect()
        self.sim.run()


def test_three_way_handshake():
    pair = _Pair()
    pair.b.listen()
    pair.a.connect()
    pair.sim.run()
    assert pair.a.is_established
    assert pair.b.is_established


def test_data_transfer_client_to_server():
    pair = _Pair()
    pair.connect()
    pair.a.send(b"hello world")
    pair.sim.run()
    assert bytes(pair.received["b"]) == b"hello world"


def test_large_transfer_segmented():
    pair = _Pair()
    pair.connect()
    payload = bytes(range(256)) * 40  # 10240 bytes > several MSS
    pair.b.send(payload)
    pair.sim.run()
    assert bytes(pair.received["a"]) == payload


def test_transfer_larger_than_window():
    pair = _Pair(window=4 * 1460)
    pair.connect()
    payload = b"z" * (20 * 1460)
    pair.a.send(payload)
    pair.sim.run()
    assert bytes(pair.received["b"]) == payload


def test_bidirectional_transfer():
    pair = _Pair()
    pair.connect()
    pair.a.send(b"ping")
    pair.b.send(b"pong")
    pair.sim.run()
    assert bytes(pair.received["b"]) == b"ping"
    assert bytes(pair.received["a"]) == b"pong"


def test_orderly_close_both_sides():
    pair = _Pair()
    pair.connect()
    pair.a.send(b"bye")
    pair.a.close()
    pair.sim.run()
    assert bytes(pair.received["b"]) == b"bye"
    pair.b.close()
    pair.sim.run()
    assert pair.closed["a"] and pair.closed["b"]
    assert pair.a.is_closed and pair.b.is_closed


def test_close_flushes_pending_data_before_fin():
    pair = _Pair(window=2 * 1460)
    pair.connect()
    payload = b"q" * (10 * 1460)
    pair.a.send(payload)
    pair.a.close()  # close with bytes still buffered
    pair.sim.run()
    assert bytes(pair.received["b"]) == payload


def test_abort_resets_peer():
    pair = _Pair()
    pair.connect()
    pair.a.abort()
    pair.sim.run()
    assert pair.a.is_closed
    assert pair.b.is_closed


def test_send_after_close_rejected():
    pair = _Pair()
    pair.connect()
    pair.a.close()
    with pytest.raises(RuntimeError):
        pair.a.send(b"late")


def test_connect_twice_rejected():
    pair = _Pair()
    pair.a.connect()
    with pytest.raises(RuntimeError):
        pair.a.connect()


def test_rtt_visible_in_transfer_time():
    pair = _Pair(one_way_s=0.1)
    pair.connect()
    start = pair.sim.now
    pair.a.send(b"x")
    pair.sim.run()
    # data + ack = one RTT
    assert pair.sim.now - start == pytest.approx(0.2, abs=0.01)


def test_emitted_packets_carry_timestamps_and_flags():
    sim = Simulator()
    sent = []
    endpoint = TcpEndpoint(sim, 1, 10, 2, 20, send_packet=sent.append)
    endpoint.connect()
    assert len(sent) == 1
    assert sent[0].has_flag(TCPFlags.SYN)
    assert endpoint.state == TcpState.SYN_SENT
