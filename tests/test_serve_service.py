"""Unit coverage of the serve stack's parts (hub, snapshot, HTTP, CLI).

``test_serve_consistency``/``_load``/``_parity`` prove the end-to-end
contracts; this file pins the pieces those proofs stand on — the
copy-on-publish bit-identity of ``StreamRollup.copy()``, the hub's
swap semantics, ``snapshot_from_capture``'s refusal to serve
uncommitted state, the live-directory diagnosis in ``load_capture``,
the rollup-backed scorecard, the HTTP error surface, the digest-neutral
``serve`` scenario section, and the fleet coordinator's merged-prefix
publication.
"""

import http.client
import json

import numpy as np
import pytest

from repro.analysis.source import CaptureError, load_capture
from repro.analysis.validation import build_scorecard_rollup
from repro.scenario import ScenarioError, get_scenario
from repro.serve import (
    ServeStats,
    ServerThread,
    SnapshotHub,
    render_serve_telemetry,
    snapshot_from_capture,
)
from repro.serve.snapshot import RollupSnapshot
from repro.stream import (
    StreamConfig,
    StreamRollup,
    load_checkpoint,
    run_stream_capture,
)
from repro.stream.checkpoint import rollup_path
from repro.traffic.workload import WorkloadConfig

CONFIG = StreamConfig(
    workload=WorkloadConfig(n_customers=48, days=2, seed=7, n_workers=1),
    window_days=1,
    compress=False,
)


@pytest.fixture(scope="module")
def finished(tmp_path_factory):
    capture_dir = tmp_path_factory.mktemp("serve_unit") / "cap"
    result = run_stream_capture(CONFIG, capture_dir)
    assert result.complete
    return capture_dir, result


def _get(server, path, method="GET"):
    conn = http.client.HTTPConnection(server.host, server.port, timeout=10)
    try:
        conn.request(method, path)
        response = conn.getresponse()
        return response.status, dict(response.getheaders()), response.read()
    finally:
        conn.close()


# -- copy-on-publish ---------------------------------------------------------


def test_rollup_copy_is_digest_identical_and_independent(finished):
    _, result = finished
    rollup = result.rollup
    clone = rollup.copy()
    assert clone is not rollup
    assert clone.state_digest() == rollup.state_digest()
    # mutating the original must not reach through to the copy
    before = clone.state_digest()
    rollup.bytes_down_c += 1.0
    rollup.flows_total += 1
    try:
        assert clone.state_digest() == before
    finally:  # restore the shared module fixture
        rollup.bytes_down_c -= 1.0
        rollup.flows_total -= 1


def test_empty_rollup_copy_round_trips():
    rollup = StreamRollup(["Spain", "Congo"], ["WEB"], ["dns0"])
    assert rollup.copy().state_digest() == rollup.state_digest()


# -- hub ---------------------------------------------------------------------


def test_hub_swaps_whole_snapshots(finished):
    capture_dir, _ = finished
    hub = SnapshotHub()
    assert hub.current() is None
    assert hub.wait(timeout=0.01) is None
    snapshot = snapshot_from_capture(capture_dir)
    hub.publish(snapshot)
    assert hub.current() is snapshot
    assert hub.wait(timeout=0.01) is snapshot
    assert hub.published == 1
    replacement = snapshot_from_capture(capture_dir)
    hub.publish(replacement)
    assert hub.current() is replacement
    assert hub.published == 2


def test_publish_state_copies_and_tags_committed_digest(finished):
    capture_dir, result = finished
    hub = SnapshotHub()
    hub.publish_state(result.rollup, result.checkpoint)
    snapshot = hub.current()
    assert snapshot.rollup is not result.rollup
    assert snapshot.digest == result.checkpoint.rollup_digest
    assert snapshot.windows_done == result.checkpoint.windows_done
    assert snapshot.complete and snapshot.progress == 1.0
    assert len(snapshot.telemetry) == result.checkpoint.windows_done


# -- snapshot_from_capture ---------------------------------------------------


def test_snapshot_from_capture_matches_checkpoint(finished):
    capture_dir, result = finished
    snapshot = snapshot_from_capture(capture_dir)
    assert snapshot.digest == result.checkpoint.rollup_digest
    assert snapshot.capture_key == result.checkpoint.capture_key
    assert snapshot.rollup.state_digest() == snapshot.digest


def test_snapshot_from_capture_refuses_empty_dir(tmp_path):
    with pytest.raises(CaptureError, match="nothing committed"):
        snapshot_from_capture(tmp_path)
    with pytest.raises(CaptureError, match="no capture"):
        snapshot_from_capture(tmp_path / "missing")


def test_snapshot_from_capture_refuses_rollup_ahead(finished, tmp_path):
    """rollup.npz ahead of checkpoint.json (kill between commit steps)
    must be refused, not served — resume heals it, serve must not."""
    import shutil

    capture_dir, result = finished
    torn = tmp_path / "torn"
    shutil.copytree(capture_dir, torn)
    ahead = result.rollup.copy()
    ahead.flows_total += 1
    ahead.bytes_down_c += 1.0
    ahead.save(rollup_path(torn))
    with pytest.raises(CaptureError, match="ahead of its checkpoint"):
        snapshot_from_capture(torn)


def test_snapshot_from_bare_rollup_file(finished, tmp_path):
    _, result = finished
    saved = tmp_path / "state.npz"
    result.rollup.save(saved)
    snapshot = snapshot_from_capture(saved)
    assert snapshot.digest == result.rollup.state_digest()
    assert snapshot.complete


# -- load_capture live-directory diagnosis -----------------------------------


def test_load_capture_reports_in_progress_when_manifest_missing(
    finished, tmp_path
):
    """A live directory caught before its first manifest rename should
    diagnose 'capture in progress (N%)' off the checkpoint, not claim
    the capture never ran."""
    import shutil

    capture_dir, _ = finished
    live = tmp_path / "live"
    shutil.copytree(capture_dir, live)
    (live / "manifest.json").unlink()
    with pytest.raises(CaptureError, match=r"capture in progress \(100%"):
        load_capture(live)


def test_load_capture_reports_in_progress_on_torn_manifest(finished, tmp_path):
    import shutil

    capture_dir, _ = finished
    live = tmp_path / "torn_manifest"
    shutil.copytree(capture_dir, live)
    (live / "manifest.json").write_text('{"schema":')  # torn write
    with pytest.raises(CaptureError, match="capture in progress"):
        load_capture(live)


def test_load_capture_still_diagnoses_plain_bad_manifest(tmp_path):
    """No checkpoint -> the old diagnosis survives the retry layer."""
    bare = tmp_path / "bare"
    bare.mkdir()
    with pytest.raises(CaptureError, match="without a manifest.json"):
        load_capture(bare)
    (bare / "manifest.json").write_text("{nope")
    with pytest.raises(CaptureError, match="corrupt capture manifest"):
        load_capture(bare)


# -- rollup scorecard --------------------------------------------------------


def test_build_scorecard_rollup_runs_headline_checks(finished):
    _, result = finished
    scorecard = build_scorecard_rollup(result.rollup)
    assert scorecard.total >= 10
    names = {check.name for check in scorecard.checks}
    assert any("Congo" in name for name in names)
    assert scorecard.render().startswith("Calibration scorecard")


# -- HTTP error surface ------------------------------------------------------


@pytest.fixture(scope="module")
def server(finished):
    capture_dir, _ = finished
    hub = SnapshotHub()
    hub.publish(snapshot_from_capture(capture_dir))
    thread = ServerThread(hub)
    thread.start()
    yield thread
    thread.stop()


def test_http_unknown_path_404_lists_endpoints(server):
    status, _, body = _get(server, "/nope")
    assert status == 404
    assert b"/reports" in body and b"/progress" in body


def test_http_unknown_report_404_lists_servable(server):
    status, _, body = _get(server, "/reports/nope")
    assert status == 404
    assert b"fig2" in body


def test_http_post_is_405(server):
    status, _, body = _get(server, "/reports/fig2", method="POST")
    assert status == 405


def test_http_head_has_headers_no_body(server):
    status, headers, body = _get(server, "/reports/fig2", method="HEAD")
    assert status == 200
    assert body == b""
    assert int(headers["Content-Length"]) > 0
    assert headers["X-Capture-Digest"]


def test_http_warmup_is_503_with_retry_after():
    empty = ServerThread(SnapshotHub())
    empty.start()
    try:
        status, headers, body = _get(empty, "/progress")
        assert status == 503
        assert headers.get("Retry-After") == "1"
    finally:
        empty.stop()


def test_http_sparse_snapshot_is_422_not_a_dropped_connection():
    """A snapshot whose statistics defeat a report (zero samples for a
    paper country) answers 422 — the client retries later windows."""
    rollup = StreamRollup(["Spain", "Congo"], ["WEB"], ["dns0"])
    hub = SnapshotHub()
    hub.publish(RollupSnapshot(
        rollup=rollup, digest=rollup.state_digest(),
        capture_key="sparse", windows_done=1, n_windows=3,
    ))
    thread = ServerThread(hub)
    thread.start()
    try:
        status, _, body = _get(thread, "/reports/fig8")
        assert status == 422
        assert b"not computable from this snapshot yet" in body
        # ...while structurally-empty-safe reports still serve
        status, _, _ = _get(thread, "/reports/fig2")
        assert status == 200
    finally:
        thread.stop()


def test_http_progress_and_headers_name_the_prefix(server, finished):
    _, result = finished
    status, headers, body = _get(server, "/progress")
    assert status == 200
    payload = json.loads(body)
    assert payload["digest"] == result.checkpoint.rollup_digest
    assert headers["X-Capture-Digest"] == result.checkpoint.rollup_digest
    assert headers["X-Capture-Windows"] == (
        f"{result.checkpoint.windows_done}/{result.checkpoint.n_windows}"
    )


def test_server_thread_rebind_same_port_raises(server):
    clash = ServerThread(SnapshotHub(), port=server.port)
    with pytest.raises(RuntimeError, match="bind"):
        clash.start()


def test_serve_stats_rows_and_rendering():
    stats = ServeStats()
    stats.observe("reports/fig2", 0.010, error=False)
    stats.observe("reports/fig2", 0.030, error=False)
    stats.observe("_unknown", 0.001, error=True)
    assert stats.requests_total == 3
    assert stats.errors_total == 1
    rows = {row["endpoint"]: row for row in stats.rows()}
    assert rows["reports/fig2"]["requests"] == 2
    assert rows["reports/fig2"]["p50_ms"] == pytest.approx(20.0, rel=0.01)
    table = render_serve_telemetry(stats)
    assert "reports/fig2" in table and "3 requests, 1 errors" in table


# -- scenario section --------------------------------------------------------


def test_serve_section_is_digest_neutral():
    base = get_scenario("baseline-geo")
    served = base.with_overrides({
        "serve.enabled": True, "serve.port": 8080, "serve.linger_s": 5.0,
    })
    assert served.digest() == base.digest()
    assert served.serve.enabled and served.serve.port == 8080


def test_serve_section_validates():
    base = get_scenario("baseline-geo")
    with pytest.raises(ScenarioError):
        base.with_overrides({"serve.port": 70000}).validate()
    with pytest.raises(ScenarioError):
        base.with_overrides({"serve.max_inflight": 0}).validate()
    with pytest.raises(ScenarioError):
        base.with_overrides({"serve.publish_interval_s": 0.0}).validate()


# -- fleet coordinator publication -------------------------------------------


def test_fleet_capture_publishes_merged_final_snapshot(tmp_path):
    from repro.fleet import run_fleet_capture

    scenario = get_scenario("baseline-geo").with_overrides({
        "population.n_customers": 48,
        "workload.days": 2,
        "workload.n_shards": 4,
        "execution.compress": False,
    })
    hub = SnapshotHub()
    result = run_fleet_capture(
        scenario, tmp_path / "fleet", partitions=2, snapshot_hub=hub
    )
    snapshot = hub.current()
    assert snapshot is not None
    assert snapshot.complete
    assert snapshot.digest == result.digest
    assert snapshot.rollup.state_digest() == result.digest
    assert hub.published >= 1
