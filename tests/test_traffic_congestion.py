"""Tests for the emergent-congestion feedback loop."""

import numpy as np
import pytest

from repro.analysis.reports import fig8_satellite_rtt
from repro.traffic.congestion import EmergentCongestion


@pytest.fixture(scope="module")
def emergent(small_frame, small_generator):
    return EmergentCongestion.from_frame(small_frame, small_generator.beam_map)


def test_utilization_bounds(emergent):
    assert emergent.utilization.shape == (len(emergent.beam_ids), 24)
    assert emergent.utilization.min() >= 0.0
    assert emergent.utilization.max() <= 0.99
    assert emergent.utilization.max() == pytest.approx(0.95, abs=0.04)
    assert emergent.pep_load.max() < 1.0


def test_congo_beams_emerge_as_busiest(emergent):
    """The community-AP population makes Congo's beams the hot ones —
    without anyone configuring it."""
    busiest = list(emergent.busiest_beams(top=4))
    assert any(b.startswith("congo") for b in busiest[:3]), busiest


def test_diurnal_shape_emerges(emergent):
    """African beams stay loaded through the morning; European beams
    peak in the evening."""
    congo_idx = emergent.beam_ids.index("congo-0")
    spain_idx = emergent.beam_ids.index("spain-0")
    congo = emergent.utilization[congo_idx]
    spain = emergent.utilization[spain_idx]
    assert congo[9:12].mean() > 0.6 * congo.max()   # busy morning
    assert spain[9:12].mean() < 0.8 * spain.max()   # quieter morning
    assert spain[18:21].mean() > 0.7 * spain.max()  # evening prime time


def test_restamp_preserves_structure(small_frame, small_generator, emergent, rng):
    restamped = emergent.restamp(small_frame, small_generator.rtt_model, rng)
    assert len(restamped) == len(small_frame)
    # non-HTTPS rows untouched
    nan_before = np.isnan(small_frame.sat_rtt_ms)
    nan_after = np.isnan(restamped.sat_rtt_ms)
    assert np.array_equal(nan_before, nan_after)
    # the physical floor survives
    sat = restamped.sat_rtt_ms[~nan_after]
    assert sat.min() > 500.0
    # other columns shared values
    assert np.array_equal(restamped.bytes_down, small_frame.bytes_down)


def test_restamped_frame_keeps_fig8_shape(small_frame, small_generator, emergent, rng):
    """Figure 8a's qualitative story must survive the feedback loop:
    Congo's emergent congestion keeps its heavy tail."""
    restamped = emergent.restamp(small_frame, small_generator.rtt_model, rng)
    result = fig8_satellite_rtt.compute_fig8a(restamped)
    assert result.fraction_over("Congo", "peak", 2000.0) > 0.05
    assert result.fraction_under("Spain", "night", 1000.0) > 0.6
    congo_peak = result.quartiles_ms("Congo", "peak")[1]
    spain_peak = result.quartiles_ms("Spain", "peak")[1]
    assert congo_peak > spain_peak


def test_lookups_vectorized(emergent):
    beams = np.array([0, 1, 0])
    hours = np.array([3.2, 19.9, 25.0])  # 25 wraps to 1
    util = emergent.utilization_of(beams, hours)
    assert util.shape == (3,)
    assert util[2] == emergent.utilization[0, 1]
