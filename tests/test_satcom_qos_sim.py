"""Tests for the QoS micro-simulation."""

import math

import pytest

from repro.satcom.qos import TrafficClass
from repro.satcom.qos_sim import QosScenarioConfig, run_qos_scenario


@pytest.fixture(scope="module")
def results():
    config = QosScenarioConfig(duration_s=8.0, seed=1)
    return (
        run_qos_scenario(config, use_scheduler=True),
        run_qos_scenario(config, use_scheduler=False),
    )


def test_scheduler_protects_interactive(results):
    with_qos, without_qos = results
    assert with_qos.latency_ms(TrafficClass.INTERACTIVE) < 25.0
    assert without_qos.latency_ms(TrafficClass.INTERACTIVE) > 10 * with_qos.latency_ms(
        TrafficClass.INTERACTIVE
    )


def test_fifo_treats_all_classes_alike(results):
    _, without_qos = results
    values = [without_qos.latency_ms(cls) for cls in TrafficClass]
    finite = [v for v in values if not math.isnan(v)]
    assert max(finite) < 1.6 * min(finite)


def test_shaped_video_pays(results):
    with_qos, without_qos = results
    assert with_qos.latency_ms(TrafficClass.VIDEO) > with_qos.latency_ms(
        TrafficClass.BULK
    )


def test_everything_delivered(results):
    with_qos, without_qos = results
    for cls in (TrafficClass.INTERACTIVE, TrafficClass.WEB):
        assert with_qos.delivered[cls] > 0
        # deterministic arrivals per seed: both runs offer the same load
        assert with_qos.delivered[cls] == pytest.approx(
            without_qos.delivered[cls], rel=0.05
        )


def test_unshaped_scheduler():
    config = QosScenarioConfig(duration_s=4.0, video_shape_bps=None, seed=2)
    result = run_qos_scenario(config, use_scheduler=True)
    # without shaping, video is just the lowest priority, not throttled
    assert result.latency_ms(TrafficClass.VIDEO) < 5000.0
    assert result.drops == 0
