"""Tests for the RTT estimators."""

import pytest

from repro.flowmeter.rtt import TcpRttEstimator, TlsHandshakeRttEstimator
from repro.net.flowkey import Direction

C2S = Direction.CLIENT_TO_SERVER
S2C = Direction.SERVER_TO_CLIENT


def test_single_sample():
    est = TcpRttEstimator()
    est.on_data(C2S, seq=1, payload_len=100, now=0.0)
    est.on_ack(S2C, ack=101, now=0.015)
    assert est.ground_rtt_samples() == [pytest.approx(0.015)]


def test_cumulative_ack_uses_latest_segment():
    """One cumulative ACK covering two segments must not inflate the
    sample with the first segment's send time."""
    est = TcpRttEstimator()
    est.on_data(C2S, seq=1, payload_len=100, now=0.0)
    est.on_data(C2S, seq=101, payload_len=100, now=0.5)
    est.on_ack(S2C, ack=201, now=0.512)
    assert est.ground_rtt_samples() == [pytest.approx(0.012)]


def test_partial_ack_leaves_later_segment_pending():
    est = TcpRttEstimator()
    est.on_data(C2S, seq=1, payload_len=100, now=0.0)
    est.on_data(C2S, seq=101, payload_len=100, now=0.001)
    est.on_ack(S2C, ack=101, now=0.020)
    est.on_ack(S2C, ack=201, now=0.021)
    samples = est.ground_rtt_samples()
    assert len(samples) == 2
    assert samples[0] == pytest.approx(0.020)
    assert samples[1] == pytest.approx(0.020)


def test_karn_rule_discards_retransmitted_range():
    est = TcpRttEstimator()
    est.on_data(C2S, seq=1, payload_len=100, now=0.0)
    est.on_data(C2S, seq=1, payload_len=100, now=1.0)  # retransmission
    est.on_ack(S2C, ack=101, now=1.012)
    assert est.ground_rtt_samples() == []  # ambiguous sample dropped


def test_duplicate_ack_produces_no_sample():
    est = TcpRttEstimator()
    est.on_data(C2S, seq=1, payload_len=100, now=0.0)
    est.on_ack(S2C, ack=101, now=0.010)
    est.on_ack(S2C, ack=101, now=0.020)
    assert len(est.ground_rtt_samples()) == 1


def test_directions_tracked_independently():
    est = TcpRttEstimator()
    est.on_data(C2S, seq=1, payload_len=10, now=0.0)
    est.on_data(S2C, seq=1, payload_len=10, now=0.0)
    est.on_ack(S2C, ack=11, now=0.012)  # acks C2S data
    est.on_ack(C2S, ack=11, now=0.300)  # acks S2C data
    assert est.samples[C2S] == [pytest.approx(0.012)]
    assert est.samples[S2C] == [pytest.approx(0.300)]
    assert len(est.all_samples()) == 2


def test_zero_length_data_ignored():
    est = TcpRttEstimator()
    est.on_data(C2S, seq=1, payload_len=0, now=0.0)
    est.on_ack(S2C, ack=1, now=0.010)
    assert est.ground_rtt_samples() == []


def test_sequence_wraparound():
    est = TcpRttEstimator()
    near_wrap = (1 << 32) - 50
    est.on_data(C2S, seq=near_wrap, payload_len=100, now=0.0)
    est.on_ack(S2C, ack=50, now=0.014)  # wrapped ACK
    assert est.ground_rtt_samples() == [pytest.approx(0.014)]


def test_tls_estimator_happy_path():
    est = TlsHandshakeRttEstimator()
    est.on_server_hello(now=1.0)
    est.on_client_key_exchange(now=1.62)
    assert est.estimate_s == pytest.approx(0.62)


def test_tls_estimator_once_per_flow():
    est = TlsHandshakeRttEstimator()
    est.on_server_hello(now=1.0)
    est.on_client_key_exchange(now=1.6)
    est.on_server_hello(now=5.0)
    est.on_client_key_exchange(now=9.0)
    assert est.estimate_s == pytest.approx(0.6)


def test_tls_estimator_requires_server_hello_first():
    est = TlsHandshakeRttEstimator()
    est.on_client_key_exchange(now=1.0)
    assert est.estimate_s is None
