"""End-to-end integration: every report over one capture, plus
cross-report consistency checks."""

import numpy as np
import pytest

from repro.analysis.reports import (
    appendix_ground_rtt,
    fig2_country,
    fig3_protocol_country,
    fig4_diurnal,
    fig5_volumes,
    fig6_service_popularity,
    fig7_service_volume,
    fig8_satellite_rtt,
    fig9_ground_rtt,
    fig10_dns,
    fig11_throughput,
    table1_protocols,
    table2_resolver_rtt,
)
from repro.analysis.validation import build_scorecard


def test_all_reports_run_and_render(small_frame):
    """Every report module computes and renders without error."""
    outputs = [
        table1_protocols.render(table1_protocols.compute(small_frame)),
        fig2_country.render(fig2_country.compute(small_frame)),
        fig3_protocol_country.render(fig3_protocol_country.compute(small_frame)),
        fig4_diurnal.render(fig4_diurnal.compute(small_frame)),
        fig5_volumes.render(fig5_volumes.compute(small_frame)),
        fig6_service_popularity.render(fig6_service_popularity.compute(small_frame)),
        fig7_service_volume.render(fig7_service_volume.compute(small_frame)),
        fig8_satellite_rtt.render(
            fig8_satellite_rtt.compute_fig8a(small_frame),
            fig8_satellite_rtt.compute_fig8b(small_frame),
        ),
        fig9_ground_rtt.render(fig9_ground_rtt.compute(small_frame)),
        fig10_dns.render(fig10_dns.compute(small_frame)),
        table2_resolver_rtt.render(table2_resolver_rtt.compute(small_frame)),
        fig11_throughput.render(fig11_throughput.compute(small_frame)),
        appendix_ground_rtt.render(
            appendix_ground_rtt.compute(small_frame), "Congo"
        ),
    ]
    assert all(isinstance(text, str) and len(text) > 50 for text in outputs)


def test_cross_report_consistency(small_frame):
    """Different reports derived from the same flows must agree."""
    t1 = table1_protocols.compute(small_frame)
    f3 = fig3_protocol_country.compute(small_frame)
    f2 = fig2_country.compute(small_frame)

    # Table 1 is the volume-weighted average of Figure 3's rows.
    volume_by_country = {name: vol for name, vol, _ in f2.rows}
    weighted_https = sum(
        f3.share(country, "tcp/https") * volume_by_country[country]
        for country in f3.shares
    ) / sum(volume_by_country[country] for country in f3.shares)
    assert weighted_https == pytest.approx(t1.share("tcp/https"), abs=4.0)

    # Figure 9 medians must be consistent with Table 2's cells: the
    # operator-resolver apple cell for the UK sits near the UK median.
    f9 = fig9_ground_rtt.compute(small_frame)
    t2 = table2_resolver_rtt.compute(small_frame, min_samples=3)
    uk_cell = t2.rtt("UK", "Operator-EU", "captive.apple.com")
    if uk_cell is not None:
        assert abs(uk_cell - f9.median_ms("UK")) < 30.0


def test_satellite_and_ground_rtt_separated(small_frame):
    """The probe's two RTT estimators measure different segments: the
    satellite column must dominate the ground column everywhere."""
    has_sat = np.isfinite(small_frame.sat_rtt_ms)
    sat = small_frame.sat_rtt_ms[has_sat].astype(np.float64)
    ground = small_frame.ground_rtt_ms[has_sat].astype(np.float64)
    assert np.median(sat) > 5 * np.median(ground)
    assert sat.min() > 500.0


def test_scorecard_summary(small_frame):
    scorecard = build_scorecard(small_frame)
    # Document the expected calibration quality at fixture scale.
    assert scorecard.passed / scorecard.total > 0.8, scorecard.render()
