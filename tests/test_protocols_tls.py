"""Tests for TLS encoding/parsing."""

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.protocols import tls


def test_client_hello_sni_round_trip():
    data = tls.client_hello("www.example.com")
    assert tls.extract_sni(data) == "www.example.com"


def test_client_hello_with_session_id():
    data = tls.client_hello("a.b.c", session_id=b"\x01" * 16)
    assert tls.extract_sni(data) == "a.b.c"


def test_client_hello_validates_inputs():
    with pytest.raises(ValueError):
        tls.client_hello("x", random=b"short")
    with pytest.raises(ValueError):
        tls.client_hello("x", session_id=b"\x00" * 40)


def test_server_hello_flight_contains_three_messages():
    parsed = tls.parse_stream(tls.server_hello())
    assert parsed.handshake_types == [
        tls.HandshakeType.SERVER_HELLO,
        tls.HandshakeType.CERTIFICATE,
        tls.HandshakeType.SERVER_HELLO_DONE,
    ]


def test_server_hello_certificate_size_controls_flight():
    small = tls.server_hello(certificate_len=100)
    large = tls.server_hello(certificate_len=4000)
    assert len(large) - len(small) == 3900


def test_client_key_exchange_flight():
    parsed = tls.parse_stream(tls.client_key_exchange())
    assert tls.HandshakeType.CLIENT_KEY_EXCHANGE in parsed.handshake_types
    kinds = [r.content_type for r in parsed.records]
    assert tls.ContentType.CHANGE_CIPHER_SPEC in kinds


def test_application_data_chunks_at_record_limit():
    data = tls.application_data(100_000)
    records = tls.parse_records(data)
    assert all(r.content_type == tls.ContentType.APPLICATION_DATA for r in records)
    assert sum(r.length for r in records) == 100_000
    assert max(r.length for r in records) <= 0x4000


def test_application_data_zero_length():
    assert tls.application_data(0) == b""
    with pytest.raises(ValueError):
        tls.application_data(-1)


def test_parse_records_tolerates_trailing_partial():
    full = tls.client_hello("host.example")
    records = tls.parse_records(full + full[:7])
    assert len(records) == 1


def test_parse_stream_across_concatenated_flights():
    stream = tls.client_hello("x.y") + tls.client_key_exchange()
    parsed = tls.parse_stream(stream)
    assert tls.HandshakeType.CLIENT_HELLO in parsed.handshake_types
    assert tls.HandshakeType.CLIENT_KEY_EXCHANGE in parsed.handshake_types
    assert parsed.sni == "x.y"


def test_looks_like_tls():
    assert tls.looks_like_tls(tls.client_hello("a.b"))
    assert not tls.looks_like_tls(b"GET / HTTP/1.1\r\n")
    assert not tls.looks_like_tls(b"\x16")  # too short


def test_extract_sni_absent_on_non_hello():
    assert tls.extract_sni(tls.server_hello()) is None


def test_record_payload_size_limit():
    with pytest.raises(ValueError):
        tls.encode_record(tls.ContentType.APPLICATION_DATA, b"\x00" * 70_000)


@given(st.binary(max_size=300))
def test_parsers_never_crash_on_garbage(data):
    tls.parse_records(data)
    tls.parse_stream(data)
    tls.extract_sni(data)


@given(
    st.text(
        alphabet=st.sampled_from("abcdefghijklmnopqrstuvwxyz0123456789-."),
        min_size=1,
        max_size=60,
    ).filter(lambda s: not s.startswith(".") and ".." not in s)
)
def test_sni_round_trip_property(hostname):
    assert tls.extract_sni(tls.client_hello(hostname)) == hostname
