"""Tests for the anonymized-subnet → country enrichment."""

import pytest

from repro.analysis.dataset import FlowFrame
from repro.analysis.enrich import CountryEnricher, country_pools
from repro.internet.geo import COUNTRIES
from repro.net.cryptopan import PrefixPreservingAnonymizer


def test_pools_cover_every_country():
    pools = country_pools()
    assert set(pools) == set(COUNTRIES)
    assert len(set(pools.values())) == len(pools)  # disjoint /16s


def test_enricher_recovers_countries():
    anonymizer = PrefixPreservingAnonymizer(b"enrich-key")
    enricher = CountryEnricher.from_anonymizer(anonymizer)
    pools = country_pools()
    for country, base in pools.items():
        for offset in (1, 57, 40_000):
            anonymized = anonymizer.anonymize_int(base + offset)
            assert enricher.country_of(anonymized) == country


def test_enricher_unknown_prefix():
    anonymizer = PrefixPreservingAnonymizer(b"enrich-key")
    enricher = CountryEnricher.from_anonymizer(anonymizer)
    assert enricher.country_of(0x01020304) is None


def test_wrong_key_fails_to_map():
    """Without the right key the table is useless — the privacy point."""
    right = PrefixPreservingAnonymizer(b"right-key")
    wrong = PrefixPreservingAnonymizer(b"wrong-key")
    enricher = CountryEnricher.from_anonymizer(wrong)
    base = country_pools()["Spain"]
    assert enricher.country_of(right.anonymize_int(base + 1)) != "Spain" or True
    # more precisely: the mapping disagrees for almost all pools
    mismatches = 0
    for country, pool in country_pools().items():
        if enricher.country_of(right.anonymize_int(pool + 1)) != country:
            mismatches += 1
    assert mismatches > len(country_pools()) // 2


def test_end_to_end_with_packet_sim(packet_sim_result):
    """The probe anonymizes with CryptoPan; the enricher (holding the
    same key) labels every exported record's true country."""
    enricher = CountryEnricher.from_anonymizer(
        PrefixPreservingAnonymizer(b"repro-key")  # pipeline's key
    )
    labelled = 0
    for record in packet_sim_result.tls_records:
        country = enricher.country_of(record.client_ip)
        assert country in COUNTRIES
        labelled += 1
    assert labelled == len(packet_sim_result.tls_records)

    frame = FlowFrame.from_records(
        packet_sim_result.records, country_of_client=enricher.country_of
    )
    present = {frame.countries[i] for i in frame.country_idx if i >= 0}
    assert present <= set(COUNTRIES)
    assert len(present) >= 3  # the sim provisioned 4 countries
