"""Tests for the hourly aggregation views (Section 3.1 step two)."""

import numpy as np
import pytest

from repro.stream.rollup import HourlyRollup
from repro.flowmeter.records import L7Protocol, L7_ORDER


@pytest.fixture(scope="module")
def rollup(small_frame):
    return HourlyRollup.from_frame(small_frame)


def test_rollup_much_smaller_than_flows(small_frame, rollup):
    """The paper: aggregation reduces data by orders of magnitude."""
    assert rollup.reduction_factor(small_frame) > 10.0
    assert len(rollup) > 100


def test_totals_preserved(small_frame, rollup):
    assert rollup.bytes_total.sum() == pytest.approx(
        small_frame.bytes_total().sum(), rel=1e-9
    )
    assert rollup.flows.sum() == len(small_frame)
    assert rollup.bytes_up.sum() == pytest.approx(small_frame.bytes_up.sum(), rel=1e-9)


def test_country_volume_matches_frame(small_frame, rollup):
    for country in ("Congo", "Spain"):
        direct = small_frame.bytes_total()[small_frame.country_mask(country)].sum()
        assert rollup.volume(country=country) == pytest.approx(direct, rel=1e-9)


def test_protocol_filter(small_frame, rollup):
    https = L7_ORDER.index(L7Protocol.HTTPS)
    direct = small_frame.bytes_total()[small_frame.l7_idx == https].sum()
    assert rollup.volume(l7_idx=https) == pytest.approx(direct, rel=1e-9)


def test_service_filter(small_frame, rollup):
    idx = small_frame.services.index("Netflix")
    direct = (small_frame.service_true_idx == idx).sum()
    assert rollup.flow_count(service="Netflix") == direct


def test_hourly_series_matches_frame(small_frame, rollup):
    series = rollup.hourly_series("Congo")
    mask = small_frame.country_mask("Congo")
    hours = small_frame.hour_utc[mask].astype(int) % 24
    direct = np.zeros(24)
    np.add.at(direct, hours, small_frame.bytes_total()[mask])
    assert np.allclose(series, direct)


def test_distinct_customers_bounded(small_frame, rollup):
    """Per-cell distinct customers can never exceed per-cell flows and
    never exceed the country's customer count."""
    assert np.all(rollup.customers <= rollup.flows)
    congo_mask = rollup.country_idx == rollup.countries.index("Congo")
    congo_customers = len(
        np.unique(small_frame.customer_id[small_frame.country_mask("Congo")])
    )
    assert rollup.customers[congo_mask].max() <= congo_customers


def test_hour_and_day_ranges(rollup, small_frame):
    assert rollup.hour.min() >= 0 and rollup.hour.max() <= 23
    assert rollup.day.max() == small_frame.day.max()


def test_rejects_huge_customer_ids(small_frame):
    clone = small_frame.filter(np.ones(len(small_frame), dtype=bool))
    clone.customer_id = clone.customer_id + 2_000_000
    with pytest.raises(ValueError):
        HourlyRollup.from_frame(clone)


# -- StreamRollup.merge: the mergeability property --------------------------
#
# The streaming pipeline leans on merge being a fold: resuming a
# capture, sharding it, or combining per-window rollups in any grouping
# must answer the same queries. Exact bit-identity holds for the two
# orders production actually uses (left-to-right, and resume's
# fold-then-continue); arbitrary regroupings commute the float
# additions, so those are integer-exact and float-allclose.

from repro.stream import StreamRollup, WindowedProducer
from repro.traffic.workload import WorkloadConfig, WorkloadGenerator

MERGE_SEEDS = (3, 17, 2022)


@pytest.fixture(scope="module", params=MERGE_SEEDS)
def window_rollups(request):
    """Six single-window rollups (plus their pools) for one seed."""
    config = WorkloadConfig(n_customers=60, days=6, seed=request.param)
    generator = WorkloadGenerator(config)
    producer = WindowedProducer(generator, window_days=1)
    pools = (
        generator.countries_pool,
        generator.services_pool,
        generator.resolvers_pool,
    )

    def single(frame):
        return StreamRollup(*pools).update(frame)

    frames = [producer.generate_window(w) for w in producer.windows]
    return pools, frames, single


def _merge_all(parts):
    acc = parts[0]
    for part in parts[1:]:
        acc.merge(part)
    return acc


def test_merge_equals_fold(window_rollups):
    """Left-to-right merge of per-window rollups IS the streaming fold,
    bit for bit — the identity checkpoint/resume relies on."""
    pools, frames, single = window_rollups
    fold = StreamRollup(*pools)
    for frame in frames:
        fold.update(frame)
    merged = _merge_all([single(f) for f in frames])
    assert merged.state_digest() == fold.state_digest()


def test_merge_resume_pattern_exact(window_rollups):
    """Splitting the fold at every prefix point (what a crash at any
    window boundary produces) is bit-identical to the unbroken fold."""
    pools, frames, single = window_rollups
    whole = _merge_all([single(f) for f in frames])
    for cut in range(1, len(frames)):
        head = _merge_all([single(f) for f in frames[:cut]])
        for frame in frames[cut:]:
            head.update(frame)
        assert head.state_digest() == whole.state_digest()


def test_merge_associative_groupings_exact_where_exact(window_rollups):
    """Random partitions merged in random order: integer state (flow
    counts, customer sets, histogram bins) is exact; float-summed state
    commutes additions, so it is allclose at 1e-9."""
    pools, frames, single = window_rollups
    reference = _merge_all([single(f) for f in frames])
    ref_arrays = reference._state_arrays()
    rng = np.random.default_rng(99)
    for _trial in range(4):
        order = rng.permutation(len(frames))
        cuts = sorted(rng.choice(range(1, len(frames)), size=2, replace=False))
        groups = np.split(order, cuts)
        group_rollups = [
            _merge_all([single(frames[i]) for i in group]) for group in groups
        ]
        regrouped = _merge_all(group_rollups)
        arrays = regrouped._state_arrays()
        assert sorted(arrays) == sorted(ref_arrays)
        for name, ref in ref_arrays.items():
            got = arrays[name]
            if np.issubdtype(ref.dtype, np.floating):
                assert np.allclose(got, ref, rtol=1e-9, atol=0, equal_nan=True), name
            else:
                assert np.array_equal(got, ref), name


def test_merge_queries_survive_regrouping(window_rollups):
    """The report-facing queries agree across groupings (rel 1e-9)."""
    pools, frames, single = window_rollups
    a = _merge_all([single(f) for f in frames])
    b = _merge_all([single(f) for f in reversed(frames)])
    assert a.flows_total == b.flows_total
    assert np.array_equal(a.customers_c(), b.customers_c())
    assert np.allclose(a.volume_c(), b.volume_c(), rtol=1e-9)
    assert np.allclose(a.volume_by_l7(), b.volume_by_l7(), rtol=1e-9)


def test_merge_rejects_mismatched_pools(window_rollups):
    pools, frames, single = window_rollups
    other = StreamRollup(["Atlantis"], pools[1], pools[2])
    with pytest.raises(ValueError, match="different pools"):
        single(frames[0]).merge(other)
