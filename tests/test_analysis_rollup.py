"""Tests for the hourly aggregation views (Section 3.1 step two)."""

import numpy as np
import pytest

from repro.stream.rollup import HourlyRollup
from repro.flowmeter.records import L7Protocol, L7_ORDER


@pytest.fixture(scope="module")
def rollup(small_frame):
    return HourlyRollup.from_frame(small_frame)


def test_rollup_much_smaller_than_flows(small_frame, rollup):
    """The paper: aggregation reduces data by orders of magnitude."""
    assert rollup.reduction_factor(small_frame) > 10.0
    assert len(rollup) > 100


def test_totals_preserved(small_frame, rollup):
    assert rollup.bytes_total.sum() == pytest.approx(
        small_frame.bytes_total().sum(), rel=1e-9
    )
    assert rollup.flows.sum() == len(small_frame)
    assert rollup.bytes_up.sum() == pytest.approx(small_frame.bytes_up.sum(), rel=1e-9)


def test_country_volume_matches_frame(small_frame, rollup):
    for country in ("Congo", "Spain"):
        direct = small_frame.bytes_total()[small_frame.country_mask(country)].sum()
        assert rollup.volume(country=country) == pytest.approx(direct, rel=1e-9)


def test_protocol_filter(small_frame, rollup):
    https = L7_ORDER.index(L7Protocol.HTTPS)
    direct = small_frame.bytes_total()[small_frame.l7_idx == https].sum()
    assert rollup.volume(l7_idx=https) == pytest.approx(direct, rel=1e-9)


def test_service_filter(small_frame, rollup):
    idx = small_frame.services.index("Netflix")
    direct = (small_frame.service_true_idx == idx).sum()
    assert rollup.flow_count(service="Netflix") == direct


def test_hourly_series_matches_frame(small_frame, rollup):
    series = rollup.hourly_series("Congo")
    mask = small_frame.country_mask("Congo")
    hours = small_frame.hour_utc[mask].astype(int) % 24
    direct = np.zeros(24)
    np.add.at(direct, hours, small_frame.bytes_total()[mask])
    assert np.allclose(series, direct)


def test_distinct_customers_bounded(small_frame, rollup):
    """Per-cell distinct customers can never exceed per-cell flows and
    never exceed the country's customer count."""
    assert np.all(rollup.customers <= rollup.flows)
    congo_mask = rollup.country_idx == rollup.countries.index("Congo")
    congo_customers = len(
        np.unique(small_frame.customer_id[small_frame.country_mask("Congo")])
    )
    assert rollup.customers[congo_mask].max() <= congo_customers


def test_hour_and_day_ranges(rollup, small_frame):
    assert rollup.hour.min() >= 0 and rollup.hour.max() <= 23
    assert rollup.day.max() == small_frame.day.max()


def test_rejects_huge_customer_ids(small_frame):
    clone = small_frame.filter(np.ones(len(small_frame), dtype=bool))
    clone.customer_id = clone.customer_id + 2_000_000
    with pytest.raises(ValueError):
        HourlyRollup.from_frame(clone)
