"""Tests for the Tstat-compatible log export."""

import pytest

from repro.flowmeter.records import FlowRecord, L7Protocol
from repro.flowmeter.tstat_format import (
    TCP_COLUMNS,
    UDP_COLUMNS,
    parse_tcp_line,
    tcp_line,
    udp_line,
    write_tstat_logs,
)
from repro.net.inet import ip_to_int


def _tcp_record(**kwargs):
    defaults = dict(
        client_ip=ip_to_int("10.0.0.1"),
        server_ip=ip_to_int("23.10.0.5"),
        client_port=50000,
        server_port=443,
        l7=L7Protocol.HTTPS,
        ts_start=1.0,
        ts_end=2.5,
        bytes_up=500,
        bytes_down=90_000,
        pkts_up=10,
        pkts_down=70,
        rtt_samples=3,
        rtt_min_ms=11.0,
        rtt_avg_ms=12.5,
        rtt_max_ms=14.0,
        rtt_std_ms=1.2,
        sat_rtt_ms=612.0,
        domain="edge.example.com",
    )
    defaults.update(kwargs)
    return FlowRecord(**defaults)


def _udp_record():
    return FlowRecord(
        client_ip=ip_to_int("10.0.0.2"),
        server_ip=ip_to_int("8.8.8.8"),
        client_port=40000,
        server_port=53,
        l7=L7Protocol.DNS,
        ts_start=5.0,
        ts_end=5.02,
        bytes_up=60,
        bytes_down=200,
        dns_qname="a.example.com",
    )


def test_tcp_line_column_count():
    line = tcp_line(_tcp_record())
    assert len(line.split()) == len(TCP_COLUMNS)


def test_tcp_line_round_trip():
    parsed = parse_tcp_line(tcp_line(_tcp_record()))
    assert parsed["c_ip"] == "10.0.0.1"
    assert parsed["s_port"] == 443
    assert parsed["c_bytes"] == 500
    assert parsed["s_bytes"] == 90_000
    assert parsed["durat"] == pytest.approx(1500.0)  # milliseconds
    assert parsed["c_rtt_avg"] == pytest.approx(12.5)
    assert parsed["sat_rtt"] == pytest.approx(612.0)
    assert parsed["fqdn"] == "edge.example.com"


def test_missing_fields_dashed():
    record = _tcp_record(rtt_avg_ms=None, rtt_min_ms=None, rtt_max_ms=None,
                         rtt_std_ms=None, sat_rtt_ms=None, domain=None)
    parsed = parse_tcp_line(tcp_line(record))
    assert parsed["c_rtt_avg"] is None
    assert parsed["sat_rtt"] is None
    assert parsed["fqdn"] == "-"


def test_udp_line_uses_qname_fallback():
    line = udp_line(_udp_record())
    assert len(line.split()) == len(UDP_COLUMNS)
    assert line.endswith("a.example.com")


def test_write_tstat_logs(tmp_path):
    tcp_path, udp_path = write_tstat_logs([_tcp_record(), _udp_record()], tmp_path)
    tcp_text = tcp_path.read_text().splitlines()
    udp_text = udp_path.read_text().splitlines()
    assert tcp_text[0].startswith("#c_ip")
    assert len(tcp_text) == 2
    assert len(udp_text) == 2
    parse_tcp_line(tcp_text[1])  # parseable


def test_parse_rejects_wrong_column_count():
    with pytest.raises(ValueError):
        parse_tcp_line("1 2 3")


def test_export_from_packet_sim(packet_sim_result, tmp_path):
    tcp_path, udp_path = write_tstat_logs(packet_sim_result.records, tmp_path)
    tcp_lines = tcp_path.read_text().splitlines()
    assert len(tcp_lines) == 1 + len(packet_sim_result.tls_records)
    parsed = parse_tcp_line(tcp_lines[1])
    assert parsed["sat_rtt"] > 480.0
