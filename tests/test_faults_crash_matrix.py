"""The crash matrix: SIGKILL at every named kill-point, then resume.

For each kill-point of a 3-window streaming run, a forked child runs
the capture with a plan that SIGKILLs it there (a real ``SIGKILL`` —
no ``atexit``, no flushing). The parent then resumes the torn
directory without faults and asserts the finished rollup is
bit-identical to an uninterrupted run — the paper's probe promise
("three months unattended") reduced to an executable property.
"""

import multiprocessing
import os
import signal

import pytest

from repro.faults import FAULT_PROFILES, FaultPlan
from repro.stream import (
    StreamConfig,
    load_checkpoint,
    run_stream_capture,
    stream_kill_points,
)
from repro.traffic.workload import WorkloadConfig

pytestmark = pytest.mark.skipif(
    "fork" not in multiprocessing.get_all_start_methods(),
    reason="crash matrix needs fork",
)

CONFIG = StreamConfig(
    workload=WorkloadConfig(n_customers=48, days=3, seed=7, n_workers=1),
    window_days=1,
    compress=False,
)
KILL_POINTS = stream_kill_points(3)


@pytest.fixture(scope="module")
def baseline_digest(tmp_path_factory):
    """Digest of the same capture run with nothing going wrong."""
    clean = tmp_path_factory.mktemp("clean")
    result = run_stream_capture(CONFIG, clean / "cap")
    assert result.complete
    return result.rollup.state_digest()


def _run_until_killed(capture_dir, plan: FaultPlan, config=CONFIG) -> None:
    """Fork a producer armed with ``plan``; assert SIGKILL took it."""
    pid = os.fork()
    if pid == 0:  # pragma: no cover - dies by SIGKILL
        try:
            resume = load_checkpoint(capture_dir) is not None
            run_stream_capture(capture_dir=capture_dir, config=config,
                               resume=resume, faults=plan)
        finally:
            # only reached if the kill-point failed to fire; exit code 7
            # makes the parent's WIFSIGNALED assertion fail loudly
            os._exit(7)
    _, status = os.waitpid(pid, 0)
    assert os.WIFSIGNALED(status), (
        f"child exited {os.WEXITSTATUS(status)} instead of dying at the "
        "kill-point"
    )
    assert os.WTERMSIG(status) == signal.SIGKILL


def test_matrix_covers_every_commit_stage():
    assert KILL_POINTS[0] == "stream:init"
    assert len(KILL_POINTS) == 1 + 3 * 4
    assert "stream:w2:committed" in KILL_POINTS


@pytest.mark.parametrize("kill_point", KILL_POINTS, ids=lambda p: p)
def test_sigkill_then_resume_is_bit_identical(
    kill_point, tmp_path, baseline_digest
):
    capture_dir = tmp_path / "cap"
    _run_until_killed(capture_dir, FaultPlan(kill_at=(kill_point,)))
    # heal: resume if a checkpoint committed, else start fresh
    resume = load_checkpoint(capture_dir) is not None
    result = run_stream_capture(CONFIG, capture_dir, resume=resume)
    assert result.complete
    assert result.rollup.state_digest() == baseline_digest


@pytest.mark.parametrize(
    "kill_point",
    ["stream:w0:spilled", "stream:w1:rollup-saved", "stream:w2:committed"],
    ids=lambda p: p,
)
def test_sigkill_on_flaky_disk_then_resume(
    kill_point, tmp_path, baseline_digest
):
    """Kill-points stacked on the flaky-disk profile: the run that dies
    was already retrying injected IO errors, and the resume still
    converges to the uninterrupted digest."""
    import dataclasses

    plan = dataclasses.replace(
        FAULT_PROFILES["flaky-disk"], kill_at=(kill_point,)
    )
    capture_dir = tmp_path / "cap"
    _run_until_killed(capture_dir, plan)
    resume = load_checkpoint(capture_dir) is not None
    result = run_stream_capture(CONFIG, capture_dir, resume=resume)
    assert result.complete
    assert result.rollup.state_digest() == baseline_digest


@pytest.mark.parametrize("depth", [0, 2], ids=lambda d: f"depth{d}")
@pytest.mark.parametrize(
    "kill_point",
    ["stream:w0:generated", "stream:w1:spilled", "stream:w2:committed"],
    ids=lambda p: p,
)
def test_sigkill_under_pipeline_depths(depth, kill_point, tmp_path, baseline_digest):
    """The kill matrix holds at every pipeline depth: generation-side
    and commit-side kill-points both leave a directory that resumes —
    at any (other) depth — to the uninterrupted digest."""
    import dataclasses

    config = dataclasses.replace(CONFIG, pipeline_depth=depth)
    capture_dir = tmp_path / "cap"
    _run_until_killed(capture_dir, FaultPlan(kill_at=(kill_point,)), config)
    resume = load_checkpoint(capture_dir) is not None
    # resume at a *different* depth than the killed run on purpose
    healer = dataclasses.replace(CONFIG, pipeline_depth=1)
    result = run_stream_capture(healer, capture_dir, resume=resume)
    assert result.complete
    assert result.rollup.state_digest() == baseline_digest


def test_double_kill_then_resume(tmp_path, baseline_digest):
    """Two consecutive crashes at different stages, one final resume."""
    capture_dir = tmp_path / "cap"
    _run_until_killed(capture_dir, FaultPlan(kill_at=("stream:w0:committed",)))
    _run_until_killed(
        capture_dir, FaultPlan(kill_at=("stream:w1:rollup-saved",))
    )
    result = run_stream_capture(CONFIG, capture_dir, resume=True)
    assert result.complete
    assert result.rollup.state_digest() == baseline_digest
    # windows 0 and 1 were never re-generated: their telemetry survived
    assert [t.window for t in result.telemetry] == [0, 1, 2]
