"""Methodology validation (paper Section 2.2) on the packet-level path.

The probe at the ground station must recover, through the PEP, the
satellite-segment RTT (TLS-handshake method), the ground RTT (data↔ACK)
and DNS response times — we check it against simulation ground truth.
"""

import numpy as np
import pytest

from repro.analysis.dataset import FlowFrame
from repro.flowmeter.records import L7Protocol
from repro.internet.geo import COUNTRIES, GROUND_STATION
from repro.internet.latency import LatencyModel
from repro.internet.resolvers import RESOLVERS


def test_all_clients_complete(packet_sim_result):
    assert packet_sim_result.clients
    assert all(c.result.complete for c in packet_sim_result.clients)


def test_tls_flows_recovered(packet_sim_result):
    tls_records = packet_sim_result.tls_records
    assert len(tls_records) == len(packet_sim_result.clients)
    for record in tls_records:
        assert record.domain == "edge.example-cdn.com"
        assert record.bytes_down > 100_000


def test_satellite_rtt_estimates_physical(packet_sim_result):
    """Every estimate covers the satellite twice: above the propagation
    floor, below a loose congestion bound."""
    for record in packet_sim_result.tls_records:
        assert record.sat_rtt_ms is not None
        assert record.sat_rtt_ms > 480.0
        assert record.sat_rtt_ms < 20_000.0


def test_ground_rtt_matches_server_distance(packet_sim_result):
    """The server sits at Milan-IX: data↔ACK RTT ≈ 12 ms."""
    latency = LatencyModel()
    expected = latency.base_rtt_ms(GROUND_STATION, packet_sim_result.network.internet.site("Milan-IX"))
    for record in packet_sim_result.tls_records:
        assert record.rtt_avg_ms == pytest.approx(expected, rel=0.2)


def test_sat_rtt_excludes_ground_segment(packet_sim_result):
    """The satellite estimate must be far larger than the ground RTT
    and not contain it wholesale (they are separated at the probe)."""
    for record in packet_sim_result.tls_records:
        assert record.sat_rtt_ms > 20 * record.rtt_avg_ms


def test_dns_response_time_is_ground_side_only(packet_sim_result):
    """End-to-end DNS takes >550 ms (satellite), but the probe sees only
    the ground-side exchange: a few to ~150 ms depending on resolver."""
    truth = dict.fromkeys([name for name, _ in packet_sim_result.dns_ground_truth_ms])
    for name, value in packet_sim_result.dns_ground_truth_ms:
        assert value > 500.0  # end-user experience includes the satellite
    for record in packet_sim_result.dns_records:
        assert record.dns_response_ms is not None
        assert record.dns_response_ms < 200.0
        resolver = next(
            r for r in RESOLVERS.values() if r.address == record.dns_resolver_ip
        )
        latency = LatencyModel()
        expected = latency.base_rtt_ms(GROUND_STATION, resolver.egress) + resolver.processing_ms
        assert record.dns_response_ms == pytest.approx(expected, rel=0.35)


def test_anonymization_active(packet_sim_result):
    """Customer addresses in records differ from the real CPE addresses
    but keep the per-country pool structure."""
    real = set(packet_sim_result.client_country)
    exported = {r.client_ip for r in packet_sim_result.tls_records}
    assert not exported & real
    # per-country /16 pools survive prefix-preserving anonymization
    by_prefix = {}
    for record in packet_sim_result.tls_records:
        by_prefix.setdefault(record.client_ip >> 16, 0)
        by_prefix[record.client_ip >> 16] += 1
    assert len(by_prefix) == len({ip >> 16 for ip in real})


def test_from_records_roundtrip(packet_sim_result):
    frame = FlowFrame.from_records(packet_sim_result.records)
    assert len(frame) == len(packet_sim_result.records)
    https = frame.l7_mask(L7Protocol.HTTPS)
    assert np.isfinite(frame.sat_rtt_ms[https]).all()


def test_congestion_visible_in_congo_flows(packet_sim_result):
    """Flows from Congo's saturated beams should skew slower than
    Spain's (same server, same hour)."""
    # Identify customers by anonymized prefix group via country map order
    # — simpler: compare the spread of satellite RTTs: Congo adds PEP
    # setup delays, so the max across the run should exceed Spain's min
    # substantially.
    sats = [r.sat_rtt_ms for r in packet_sim_result.tls_records]
    assert max(sats) > 1.5 * min(sats)
