"""Tests for packet representation and flow keys."""

import pytest

from repro.constants import IPV4_HEADER_LEN, TCP_HEADER_LEN, UDP_HEADER_LEN
from repro.net.flowkey import Direction, FiveTuple
from repro.net.packet import IPProtocol, Packet, TCPFlags


def _tcp_packet(**kwargs):
    defaults = dict(
        src_ip=1, dst_ip=2, src_port=1000, dst_port=443, protocol=IPProtocol.TCP
    )
    defaults.update(kwargs)
    return Packet(**defaults)


def test_packet_size_includes_headers():
    pkt = _tcp_packet(payload=b"x" * 100)
    assert pkt.size_bytes == IPV4_HEADER_LEN + TCP_HEADER_LEN + 100
    udp = Packet(src_ip=1, dst_ip=2, src_port=1, dst_port=53, protocol=IPProtocol.UDP, payload=b"y" * 40)
    assert udp.size_bytes == IPV4_HEADER_LEN + UDP_HEADER_LEN + 40


def test_port_validation():
    with pytest.raises(ValueError):
        _tcp_packet(src_port=70000)
    with pytest.raises(ValueError):
        _tcp_packet(dst_port=-1)


def test_flags():
    pkt = _tcp_packet(flags=TCPFlags.SYN | TCPFlags.ACK)
    assert pkt.has_flag(TCPFlags.SYN)
    assert pkt.has_flag(TCPFlags.ACK)
    assert not pkt.has_flag(TCPFlags.FIN)


def test_reply_template_swaps_endpoints():
    pkt = _tcp_packet()
    reply = pkt.reply_template()
    assert (reply.src_ip, reply.dst_ip) == (2, 1)
    assert (reply.src_port, reply.dst_port) == (443, 1000)
    assert reply.protocol == IPProtocol.TCP


def test_five_tuple_canonical_roles():
    pkt = _tcp_packet()
    key, direction = FiveTuple.from_packet(pkt)
    assert direction is Direction.CLIENT_TO_SERVER
    assert key.client_ip == 1 and key.server_ip == 2
    assert key.reversed().client_ip == 2


def test_direction_of():
    pkt = _tcp_packet()
    key, _ = FiveTuple.from_packet(pkt)
    assert key.direction_of(pkt) is Direction.CLIENT_TO_SERVER
    reply = pkt.reply_template()
    assert key.direction_of(reply) is Direction.SERVER_TO_CLIENT


def test_direction_of_foreign_packet_raises():
    key, _ = FiveTuple.from_packet(_tcp_packet())
    foreign = _tcp_packet(src_ip=99)
    with pytest.raises(ValueError):
        key.direction_of(foreign)


def test_direction_flipped():
    assert Direction.CLIENT_TO_SERVER.flipped() is Direction.SERVER_TO_CLIENT
    assert Direction.SERVER_TO_CLIENT.flipped() is Direction.CLIENT_TO_SERVER


def test_five_tuple_hashable_and_distinct():
    a, _ = FiveTuple.from_packet(_tcp_packet())
    b, _ = FiveTuple.from_packet(_tcp_packet(src_port=1001))
    assert a != b
    assert len({a, b, a.reversed()}) == 3
