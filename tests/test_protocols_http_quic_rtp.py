"""Tests for HTTP, QUIC and RTP codecs."""

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.protocols import http, quic, rtp


# --- HTTP -----------------------------------------------------------------


def test_http_request_round_trip():
    raw = http.encode_request("example.com", "/path", headers={"User-Agent": "repro"})
    request = http.parse_request(raw)
    assert request.method == "GET"
    assert request.path == "/path"
    assert request.host == "example.com"
    assert request.headers["user-agent"] == "repro"


def test_http_extract_host():
    assert http.extract_host(http.encode_request("h.example")) == "h.example"
    assert http.extract_host(b"garbage bytes") is None


def test_http_response_length():
    raw = http.encode_response(500)
    assert b"Content-Length: 500" in raw
    head, _, body = raw.partition(b"\r\n\r\n")
    assert len(body) == 500
    with pytest.raises(ValueError):
        http.encode_response(-1)


def test_http_looks_like():
    assert http.looks_like_http(b"GET / HTTP/1.1\r\n")
    assert http.looks_like_http(b"POST /x HTTP/1.1\r\n")
    assert not http.looks_like_http(b"\x16\x03\x03\x00\x10")
    assert not http.looks_like_http(b"randomtext here")


def test_http_parse_rejects_lowercase_method():
    assert http.parse_request(b"get / HTTP/1.1\r\nHost: x\r\n\r\n") is None


# --- QUIC -----------------------------------------------------------------


def test_quic_initial_sni_round_trip():
    packet = quic.encode_initial("video.example.org")
    assert quic.extract_sni(packet) == "video.example.org"


def test_quic_long_header_fields():
    packet = quic.encode_initial("x.y", dcid=b"\xaa" * 8, scid=b"\xbb" * 4)
    header = quic.parse_long_header(packet)
    assert header.is_initial
    assert header.version == quic.QUIC_VERSION_1
    assert header.dcid == b"\xaa" * 8
    assert header.scid == b"\xbb" * 4


def test_quic_handshake_packet_not_initial():
    packet = quic.encode_handshake_packet(100)
    header = quic.parse_long_header(packet)
    assert header is not None and not header.is_initial
    assert quic.extract_sni(packet) is None


def test_quic_short_header():
    packet = quic.encode_short_header_packet(50)
    assert quic.parse_long_header(packet) is None
    assert quic.looks_like_quic(packet)


def test_quic_cid_length_limit():
    with pytest.raises(ValueError):
        quic.encode_initial("x.y", dcid=b"\x00" * 21)


def test_quic_looks_like_rejects_tls():
    from repro.protocols import tls

    assert not quic.looks_like_quic(tls.client_hello("a.b"))


@given(st.binary(max_size=100))
def test_quic_parser_never_crashes(data):
    quic.parse_long_header(data)
    quic.extract_sni(data)


# --- RTP ------------------------------------------------------------------


def test_rtp_round_trip():
    raw = rtp.encode(1000, 160000, 0xDEADBEEF, b"payload", payload_type=rtp.PAYLOAD_TYPE_H264, marker=True)
    header = rtp.decode(raw)
    assert header.sequence == 1000
    assert header.timestamp == 160000
    assert header.ssrc == 0xDEADBEEF
    assert header.payload_type == rtp.PAYLOAD_TYPE_H264
    assert header.marker


def test_rtp_sequence_wraps_16_bits():
    header = rtp.decode(rtp.encode(0x1FFFF, 0, 1))
    assert header.sequence == 0xFFFF


def test_rtp_rejects_wrong_version():
    raw = bytearray(rtp.encode(1, 2, 3))
    raw[0] = 0x00  # version 0
    assert rtp.decode(bytes(raw)) is None
    assert not rtp.looks_like_rtp(bytes(raw))


def test_rtp_payload_type_validation():
    with pytest.raises(ValueError):
        rtp.encode(1, 2, 3, payload_type=200)


def test_rtp_too_short():
    assert rtp.decode(b"\x80\x00") is None
