"""Serve load: 500 concurrent clients, zero errors, identical bytes.

The server's concurrency story is small on purpose — one event loop,
one inflight semaphore, copy-on-publish snapshots — and this test is
the proof that small is enough: 500 asyncio clients fetching the same
report through raw sockets all succeed, and because they all hit one
immutable snapshot, every response body is byte-for-byte the same.
p50/p99 latency and QPS are measured here; the committed numbers live
in ``BENCH_serve.json`` (set ``REPRO_WRITE_BENCH_SERVE=/path.json`` to
re-measure), and ``benchmarks/check_regression.py`` guards the render
hot path via ``test_micro_serve_request``.
"""

import asyncio
import json
import os
import time

import numpy as np
import pytest

from repro.serve import ServerThread, SnapshotHub, snapshot_from_capture
from repro.stream import StreamConfig, run_stream_capture
from repro.traffic.workload import WorkloadConfig

N_CLIENTS = 500

CONFIG = StreamConfig(
    workload=WorkloadConfig(n_customers=48, days=3, seed=7, n_workers=1),
    window_days=1,
    compress=False,
)


@pytest.fixture(scope="module")
def served(tmp_path_factory):
    """A finished capture behind a running server (module-shared)."""
    capture_dir = tmp_path_factory.mktemp("load") / "cap"
    result = run_stream_capture(CONFIG, capture_dir)
    assert result.complete
    hub = SnapshotHub()
    hub.publish(snapshot_from_capture(capture_dir))
    server = ServerThread(hub)
    server.start()
    yield server, result.checkpoint.rollup_digest
    server.stop()


async def _fetch_raw(host: str, port: int, path: str):
    """One full HTTP exchange over a raw socket -> (status, body, secs)."""
    started = time.perf_counter()
    reader, writer = await asyncio.open_connection(host, port)
    try:
        writer.write(
            f"GET {path} HTTP/1.1\r\nHost: {host}\r\n"
            "Connection: close\r\n\r\n".encode()
        )
        await writer.drain()
        raw = await reader.read()  # Connection: close -> read to EOF
    finally:
        writer.close()
        try:
            await writer.wait_closed()
        except (ConnectionError, OSError):
            pass
    head, _, body = raw.partition(b"\r\n\r\n")
    status = int(head.split(None, 2)[1])
    return status, body, time.perf_counter() - started


def test_500_concurrent_clients_zero_errors(served):
    server, digest = served

    async def storm():
        tasks = [
            _fetch_raw(server.host, server.port, "/reports/fig2")
            for _ in range(N_CLIENTS)
        ]
        begun = time.perf_counter()
        outcomes = await asyncio.gather(*tasks, return_exceptions=True)
        return outcomes, time.perf_counter() - begun

    outcomes, wall_s = asyncio.run(storm())

    failures = [o for o in outcomes if isinstance(o, BaseException)]
    assert failures == [], f"{len(failures)} clients failed: {failures[:3]}"
    statuses = {status for status, _, _ in outcomes}
    assert statuses == {200}
    bodies = {body for _, body, _ in outcomes}
    assert len(bodies) == 1, "the same snapshot served different bytes"
    assert len(outcomes) == N_CLIENTS

    latencies_ms = sorted(secs * 1000.0 for _, _, secs in outcomes)
    p50 = float(np.percentile(latencies_ms, 50))
    p99 = float(np.percentile(latencies_ms, 99))
    qps = N_CLIENTS / wall_s
    # Sanity floor, not a perf gate (check_regression.py owns that):
    # 500 clients against a warm snapshot must clear 100 QPS anywhere.
    assert qps > 100, f"implausibly slow: {qps:.0f} QPS"

    # The server-side view must agree the run was clean.
    row = next(
        r for r in server.stats.rows() if r["endpoint"] == "reports/fig2"
    )
    assert row["errors"] == 0
    assert row["requests"] >= N_CLIENTS

    out = os.environ.get("REPRO_WRITE_BENCH_SERVE")
    if out:
        with open(out, "w") as handle:
            json.dump(
                {
                    "n_clients": N_CLIENTS,
                    "endpoint": "/reports/fig2",
                    "p50_ms": round(p50, 2),
                    "p99_ms": round(p99, 2),
                    "qps": round(qps, 1),
                    "wall_s": round(wall_s, 3),
                },
                handle,
                indent=2,
            )


def test_mixed_endpoint_storm_zero_errors(served):
    """Clients spread across every endpoint — still zero failures, and
    per-path responses stay identical (one snapshot, one rendering)."""
    server, digest = served
    paths = [
        "/reports/fig2", "/reports/table1", "/progress",
        "/scorecard", "/capabilities", "/reports",
    ]

    async def storm():
        tasks = [
            _fetch_raw(server.host, server.port, paths[i % len(paths)])
            for i in range(120)
        ]
        return await asyncio.gather(*tasks, return_exceptions=True)

    outcomes = asyncio.run(storm())
    failures = [o for o in outcomes if isinstance(o, BaseException)]
    assert failures == []
    by_path = {}
    for i, (status, body, _) in enumerate(outcomes):
        assert status == 200
        path = paths[i % len(paths)]
        if path != "/progress":  # progress embeds no stats, but compare anyway
            by_path.setdefault(path, body)
            assert body == by_path[path], f"{path} served differing bytes"


def test_backpressure_gate_still_answers_everyone(tmp_path):
    """max_inflight=1 serializes renders; 64 clients still all succeed."""
    capture_dir = tmp_path / "cap"
    run_stream_capture(CONFIG, capture_dir)
    hub = SnapshotHub()
    hub.publish(snapshot_from_capture(capture_dir))
    server = ServerThread(hub, max_inflight=1)
    server.start()
    try:
        async def storm():
            tasks = [
                _fetch_raw(server.host, server.port, "/reports/fig2")
                for _ in range(64)
            ]
            return await asyncio.gather(*tasks, return_exceptions=True)

        outcomes = asyncio.run(storm())
        assert [o for o in outcomes if isinstance(o, BaseException)] == []
        assert {status for status, _, _ in outcomes} == {200}
        assert len({body for _, body, _ in outcomes}) == 1
    finally:
        server.stop()
