"""Registry-driven parity: frame vs store vs rollup report paths.

Parametrized over :mod:`repro.analysis.registry`, so a newly
registered report is covered automatically:

* **store parity** — every report renders byte-identically from the
  spilled capture (column-projected window reads) and from the fully
  materialized frame. This also proves each spec's declared
  ``columns`` cover everything its ``compute`` touches.
* **rollup parity** — reports flagged ``exact_parity`` render
  byte-identically from the sketches; binned reports must agree on
  table structure and row labels (their quantiles interpolate inside
  histogram bins, checked numerically below).
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.analysis import registry
from repro.analysis.source import FrameSource, load_capture
from repro.cli import main

registry.ensure_loaded()
ALL_REPORTS = registry.names()
ROLLUP_CAPABLE = [s.name for s in registry.specs() if s.compute_rollup]
EXACT = {s.name for s in registry.specs() if s.exact_parity}


@pytest.fixture(scope="module")
def sources(tmp_path_factory):
    """(FrameSource, StoreSource) over one small streamed capture."""
    directory = tmp_path_factory.mktemp("parity") / "cap"
    assert main([
        "stream", "--customers", "120", "--days", "2", "--seed", "11",
        "--window-days", "1", "--no-compress", "--dir", str(directory),
    ]) == 0
    store = load_capture(directory)
    return FrameSource(store.to_frame()), store


@pytest.mark.parametrize("name", ALL_REPORTS)
def test_store_renders_identically_to_frame(name, sources):
    frame_src, store_src = sources
    assert registry.run(name, store_src) == registry.run(name, frame_src)


@pytest.mark.parametrize("name", ROLLUP_CAPABLE)
def test_rollup_parity(name, sources):
    frame_src, store_src = sources
    frame_render = registry.run(name, frame_src)
    rollup_render = registry.run(name, store_src, prefer="rollup")
    if name in EXACT:
        assert rollup_render == frame_render
    else:
        # binned sketches: same table shape and row labels (fig8's
        # rollup path legitimately drops the frame-only 8b panel, so
        # the rollup render may be a prefix of the frame render)
        frame_lines = frame_render.splitlines()
        rollup_lines = rollup_render.splitlines()
        assert 0 < len(rollup_lines) <= len(frame_lines)
        for f_line, r_line in zip(frame_lines, rollup_lines):
            assert f_line.split()[:1] == r_line.split()[:1]


def test_exact_set_is_what_we_promise():
    """figs 6 + tables 1/2 of the newly sketched reports are exact;
    drop this pin consciously if a sketch changes."""
    assert {"table1", "fig2", "fig3", "fig6", "table2"} <= EXACT


# --- numeric tolerance for the binned sketches ----------------------------


def test_fig10_shares_exact_medians_binned(sources):
    from repro.analysis.reports import fig10_dns

    frame_src, store_src = sources
    frame = frame_src.to_frame()
    rollup = store_src.to_rollup()
    by_frame = fig10_dns.compute(frame)
    by_rollup = fig10_dns.from_rollup(rollup)
    assert by_rollup.shares_pct == by_frame.shares_pct
    for resolver, median in by_frame.median_response_ms.items():
        approx = by_rollup.median_response_ms[resolver]
        assert approx == pytest.approx(median, rel=0.20)


def test_fig7_counts_exact(sources):
    from repro.analysis.reports import fig7_service_volume

    frame_src, store_src = sources
    by_frame = fig7_service_volume.compute(frame_src.to_frame())
    by_rollup = fig7_service_volume.from_rollup(store_src.to_rollup())
    for category, per_country in by_frame.boxes.items():
        for country, stats in per_country.items():
            assert by_rollup.boxes[category][country].n == stats.n


def test_fig11_counts_exact_medians_binned(sources):
    from repro.analysis.reports import fig11_throughput

    frame_src, store_src = sources
    by_frame = fig11_throughput.compute(frame_src.to_frame())
    by_rollup = fig11_throughput.from_rollup(store_src.to_rollup())
    for country in by_frame.countries():
        n = by_frame.n_samples(country)
        assert by_rollup.n_samples(country) == n
        if n > 50:
            assert by_rollup.median_mbps(country) == pytest.approx(
                by_frame.median_mbps(country), rel=0.15
            )


# --- drift guards ---------------------------------------------------------


def test_every_report_module_registers():
    import repro.analysis.reports as reports_pkg

    registered = {spec.module.rsplit(".", 1)[-1] for spec in registry.specs()}
    assert registered == set(reports_pkg.__all__)


def test_cli_help_lists_every_report(capsys):
    with pytest.raises(SystemExit) as excinfo:
        main(["report", "--help"])
    assert excinfo.value.code == 0
    # argparse wraps long help lines mid-name; compare whitespace-free
    text = "".join(capsys.readouterr().out.split())
    for name in ALL_REPORTS:
        assert name in text


def test_registry_rejects_bad_specs():
    with pytest.raises(ValueError, match="no compute entry point"):
        registry.register(
            name="ghost", title="", module="x", columns=(), render=str
        )
    with pytest.raises(ValueError, match="unknown columns"):
        registry.register(
            name="ghost", title="", module="x", columns=("nope",),
            compute_frame=lambda f: f, render=str,
        )
    with pytest.raises(ValueError, match="already registered"):
        registry.register(
            name="fig2", title="", module="elsewhere",
            columns=(), compute_frame=lambda f: f, render=str,
        )


def test_run_rejects_frame_only_report_from_rollup(sources):
    from repro.analysis.registry import ReportSourceError

    _, store_src = sources
    with pytest.raises(ReportSourceError, match="web-qoe"):
        registry.run("web-qoe", store_src, prefer="rollup")


def test_readme_capability_matrix_in_sync():
    """README's capability matrix is generated output; regenerate and
    paste between the markers if this fails."""
    from pathlib import Path

    readme = Path(__file__).resolve().parent.parent / "README.md"
    text = readme.read_text()
    begin = "<!-- capability-matrix:begin -->"
    end = "<!-- capability-matrix:end -->"
    assert begin in text and end in text
    block = text.split(begin, 1)[1].split(end, 1)[0].strip()
    assert block == registry.capability_matrix_markdown().strip()


def test_capability_matrix_lists_every_report():
    matrix = registry.capability_matrix_markdown()
    for name in ALL_REPORTS:
        assert f"`{name}`" in matrix
    # rollup-incapable reports show a dash in the rollup column
    appendix_row = next(
        line for line in matrix.splitlines() if "`appendix`" in line
    )
    assert appendix_row.rstrip("| ").endswith("—")
