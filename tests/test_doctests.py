"""Run the doctest examples embedded in the library's docstrings."""

import doctest

import pytest

import repro.analysis.domains
import repro.net.cryptopan
import repro.net.inet
import repro.protocols.dns
import repro.protocols.http
import repro.protocols.quic
import repro.protocols.rtp
import repro.protocols.tls
import repro.internet.geo
import repro.parallel
import repro.simnet.engine

MODULES = [
    repro.analysis.domains,
    repro.net.cryptopan,
    repro.net.inet,
    repro.protocols.dns,
    repro.protocols.http,
    repro.protocols.quic,
    repro.protocols.rtp,
    repro.protocols.tls,
    repro.internet.geo,
    repro.parallel,
    repro.simnet.engine,
]


@pytest.mark.parametrize("module", MODULES, ids=lambda m: m.__name__)
def test_doctests(module):
    results = doctest.testmod(module, verbose=False)
    assert results.failed == 0, f"{results.failed} doctest failures in {module.__name__}"
