"""Tests for the FlowSource abstraction and load_capture diagnostics."""

from __future__ import annotations

import json

import numpy as np
import pytest

from repro.analysis.dataset import _ARRAY_FIELDS, FlowFrame
from repro.analysis.source import (
    CaptureError,
    FrameSource,
    RollupSource,
    StoreSource,
    load_capture,
)
from repro.cli import main


@pytest.fixture(scope="module")
def capture_dir(tmp_path_factory):
    """A small, complete streamed capture (2 windows)."""
    directory = tmp_path_factory.mktemp("source") / "cap"
    assert main([
        "stream", "--customers", "60", "--days", "2", "--seed", "9",
        "--window-days", "1", "--no-compress", "--dir", str(directory),
    ]) == 0
    return directory


@pytest.fixture(scope="module")
def frame_npz(tmp_path_factory, capture_dir):
    """The same capture, materialized to a frame ``.npz``."""
    frame = load_capture(capture_dir).to_frame()
    path = tmp_path_factory.mktemp("source") / "frame.npz"
    frame.save_npz(path)
    return path


# --- load_capture diagnostics ---------------------------------------------


def test_missing_path(tmp_path):
    with pytest.raises(CaptureError, match="no such capture"):
        load_capture(tmp_path / "void.npz")


def test_directory_without_manifest(tmp_path):
    (tmp_path / "empty").mkdir()
    with pytest.raises(CaptureError, match="without a manifest.json"):
        load_capture(tmp_path / "empty")


def test_bad_manifest(tmp_path):
    bad = tmp_path / "bad"
    bad.mkdir()
    (bad / "manifest.json").write_text("{ not json")
    with pytest.raises(CaptureError, match="corrupt capture manifest"):
        load_capture(bad)


def test_wrong_schema_manifest(tmp_path):
    bad = tmp_path / "schema"
    bad.mkdir()
    (bad / "manifest.json").write_text(json.dumps({"schema": 999}))
    with pytest.raises(CaptureError, match="corrupt capture manifest"):
        load_capture(bad)


def test_truncated_npz(tmp_path, frame_npz):
    clipped = tmp_path / "clipped.npz"
    clipped.write_bytes(frame_npz.read_bytes()[:100])
    with pytest.raises(CaptureError, match="cannot read"):
        load_capture(clipped)


def test_unrecognized_npz(tmp_path):
    path = tmp_path / "other.npz"
    np.savez(path, something=np.arange(3))
    with pytest.raises(CaptureError, match="neither a frame capture"):
        load_capture(path)


def test_frame_npz_missing_column(tmp_path, frame_npz):
    with np.load(frame_npz, allow_pickle=True) as data:
        members = {name: data[name] for name in data.files}
    members.pop("sat_rtt_ms")
    partial = tmp_path / "partial.npz"
    np.savez(partial, **members)
    with pytest.raises(CaptureError, match="lacks columns.*sat_rtt_ms"):
        load_capture(partial)


# --- the three source kinds -----------------------------------------------


def test_frame_source(frame_npz):
    source = load_capture(frame_npz)
    assert isinstance(source, FrameSource)
    assert source.kind == "frame"
    frame = source.to_frame()
    assert len(frame) > 0
    # projection is a no-op on a resident frame
    assert source.to_frame(columns=("bytes_down",)) is frame
    assert "flows" in source.describe()
    rollup = source.to_rollup()
    assert rollup.flows_total == len(frame)


def test_store_source(capture_dir):
    source = load_capture(capture_dir)
    assert isinstance(source, StoreSource)
    assert source.kind == "store"
    frame = source.to_frame()
    rollup = source.to_rollup()
    assert rollup.flows_total == len(frame)
    assert "windows" in source.describe()


def test_store_projection_backfills_sentinels(capture_dir):
    source = load_capture(capture_dir)
    full = source.to_frame()
    projected = source.to_frame(columns=("country_idx", "bytes_down"))
    assert len(projected) == len(full)
    assert np.array_equal(projected.country_idx, full.country_idx)
    assert np.array_equal(projected.bytes_down, full.bytes_down)
    # unrequested columns come back typed and filled with sentinels
    assert np.isnan(projected.sat_rtt_ms).all()
    assert (projected.domain_idx == -1).all()
    for name in _ARRAY_FIELDS:
        assert getattr(projected, name).dtype == FlowFrame.COLUMN_DTYPES[name]
    with pytest.raises(KeyError, match="unknown columns"):
        source.to_frame(columns=("not_a_column",))


def test_store_rollup_fold_fallback(capture_dir, tmp_path):
    """Without rollup.npz the store re-folds windows to the same state."""
    import shutil

    from repro.stream.checkpoint import rollup_path

    copy = tmp_path / "cap-copy"
    shutil.copytree(capture_dir, copy)
    saved = load_capture(copy).to_rollup()
    rollup_path(copy).unlink()
    folded = load_capture(copy).to_rollup()
    assert folded.flows_total == saved.flows_total
    assert folded.state_digest() == saved.state_digest()


def test_rollup_source(capture_dir):
    source = load_capture(capture_dir / "rollup.npz")
    assert isinstance(source, RollupSource)
    assert source.kind == "rollup"
    assert source.to_rollup().flows_total > 0
    with pytest.raises(CaptureError, match="cannot reconstruct flows"):
        source.to_frame()
    assert "rollup" in source.describe()
