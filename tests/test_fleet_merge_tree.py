"""Merge-tree shape invariance: every tree over in-order leaves is exact.

PR 5 proved rollup *state* merges are only ``allclose`` under
regrouping (float byte sums); the fleet merge therefore concatenates
window frames (exact, associative) and folds at the root in window
order. These property tests sweep partition counts 2–9 and every tree
shape — balanced, maximally skewed left/right, and seed-randomized —
and assert each merged digest is bit-identical to the single-process
stream digest of the same scenario.
"""

import pytest

from repro.fleet import (
    MERGE_TREE_SHAPES,
    MergeNode,
    merge_partition_captures,
    plan_merge_tree,
    plan_partitions,
    run_partition,
)
from repro.scenario import get_scenario
from repro.stream import run_stream_capture

MAX_PARTITIONS = 9

SWEEP_OVERRIDES = {
    "population.n_customers": 27,
    "workload.days": 2,
    "workload.n_shards": MAX_PARTITIONS,
    "execution.compress": False,
}


@pytest.fixture(scope="module")
def sweep_scenario():
    return get_scenario("baseline-geo").with_overrides(SWEEP_OVERRIDES)


@pytest.fixture(scope="module")
def sweep_reference(sweep_scenario, tmp_path_factory):
    directory = tmp_path_factory.mktemp("sweep-single")
    result = run_stream_capture(sweep_scenario.stream_config(), directory)
    return result.rollup.state_digest()


@pytest.fixture(scope="module")
def partition_captures(sweep_scenario, tmp_path_factory):
    """Completed partition capture dirs for every count in 2..9."""
    captures = {}
    for n in range(2, MAX_PARTITIONS + 1):
        root = tmp_path_factory.mktemp(f"sweep-n{n}")
        plan = plan_partitions(sweep_scenario, partitions=n)
        directories = []
        for spec in plan.partitions:
            directory = root / spec.name
            run_partition(sweep_scenario, spec, directory)
            directories.append(directory)
        captures[n] = directories
    return captures


# -- tree planning -----------------------------------------------------------


def test_merge_node_is_leaf_xor_internal():
    with pytest.raises(ValueError):
        MergeNode()  # neither
    with pytest.raises(ValueError):
        MergeNode(leaf=0, left=MergeNode(leaf=1), right=MergeNode(leaf=2))
    with pytest.raises(ValueError):
        MergeNode(left=MergeNode(leaf=0))  # one child only


@pytest.mark.parametrize("shape", MERGE_TREE_SHAPES)
@pytest.mark.parametrize("n", range(1, MAX_PARTITIONS + 1))
def test_tree_leaves_are_partitions_in_order(shape, n):
    tree = plan_merge_tree(n, shape, seed=n)
    assert tree.leaves() == list(range(n))


def test_tree_shapes_differ_but_random_is_seed_stable():
    assert plan_merge_tree(5, "left").shape() == "((((0+1)+2)+3)+4)"
    assert plan_merge_tree(5, "right").shape() == "(0+(1+(2+(3+4))))"
    assert plan_merge_tree(5, "balanced").shape() == "((0+1)+(2+(3+4)))"
    assert (
        plan_merge_tree(7, "random", seed=3).shape()
        == plan_merge_tree(7, "random", seed=3).shape()
    )


def test_plan_merge_tree_rejects_bad_inputs():
    with pytest.raises(ValueError):
        plan_merge_tree(0)
    with pytest.raises(ValueError):
        plan_merge_tree(4, "bushy")


# -- the shape-invariance property -------------------------------------------


@pytest.mark.parametrize("n", range(2, MAX_PARTITIONS + 1))
def test_every_shape_reproduces_single_stream_digest(
    n, partition_captures, sweep_reference
):
    directories = partition_captures[n]
    for shape in ("balanced", "left", "right"):
        tree = plan_merge_tree(n, shape)
        rollup = merge_partition_captures(directories, tree=tree)
        assert rollup.state_digest() == sweep_reference, (
            f"n={n} shape={shape} ({tree.shape()}) diverged"
        )


@pytest.mark.parametrize("seed", [0, 1, 2])
@pytest.mark.parametrize("n", [3, 5, 7, 9])
def test_random_shapes_reproduce_single_stream_digest(
    n, seed, partition_captures, sweep_reference
):
    tree = plan_merge_tree(n, "random", seed=seed)
    rollup = merge_partition_captures(partition_captures[n], tree=tree)
    assert rollup.state_digest() == sweep_reference, (
        f"n={n} random seed={seed} ({tree.shape()}) diverged"
    )


def test_out_of_order_tree_is_rejected(partition_captures):
    swapped = MergeNode(left=MergeNode(leaf=1), right=MergeNode(leaf=0))
    with pytest.raises(ValueError, match="in order"):
        merge_partition_captures(partition_captures[2], tree=swapped)


def test_partition_count_does_not_change_bytes(
    partition_captures, sweep_reference
):
    """The full sweep collapsed to one assertion: N is execution, not content."""
    digests = {
        n: merge_partition_captures(dirs).state_digest()
        for n, dirs in partition_captures.items()
    }
    assert set(digests.values()) == {sweep_reference}
