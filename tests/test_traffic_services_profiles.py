"""Tests for the service catalog and country profiles."""

import numpy as np
import pytest

from repro.analysis.classify import ServiceClassifier
from repro.internet.geo import COUNTRIES
from repro.traffic.profiles import (
    CUSTOMER_SHARE_PCT,
    FIG6_ADOPTION_PCT,
    TOP_COUNTRIES,
    all_profiles,
    country_profile,
)
from repro.traffic.services import SERVICES, ServiceCategory, services_in_category


def test_customer_shares_sum_to_100():
    assert sum(CUSTOMER_SHARE_PCT.values()) == pytest.approx(100.0)
    assert set(CUSTOMER_SHARE_PCT) == set(COUNTRIES)


def test_fig6_matrix_complete():
    for service, row in FIG6_ADOPTION_PCT.items():
        assert service in SERVICES
        assert set(row) == set(TOP_COUNTRIES)
        assert all(0 <= v <= 100 for v in row.values())


def test_every_service_has_adoption_everywhere():
    for name in COUNTRIES:
        profile = country_profile(name)
        assert set(profile.adoption_pct) == set(SERVICES)
        assert all(0 <= v <= 100 for v in profile.adoption_pct.values())


def test_protocol_mixes_normalizable(rng):
    for svc in SERVICES.values():
        weights = [w for _, w in svc.protocol_mix]
        assert all(w > 0 for w in weights)
        draws = svc.sample_protocol(rng, 50)
        assert len(draws) == 50


def test_domains_sampled_match_templates(rng):
    for svc in SERVICES.values():
        for _ in range(5):
            domain = svc.sample_domain(rng)
            assert "{" not in domain and "}" not in domain
            assert "." in domain


def test_intentional_services_classifiable(rng):
    """Every Figure 6 service's generated domains must hit its own
    Table 3 rule — otherwise the heatmap can't reproduce."""
    classifier = ServiceClassifier()
    for svc in SERVICES.values():
        if not svc.intentional:
            continue
        for _ in range(10):
            domain = svc.sample_domain(rng)
            assert classifier.service_of(domain) == svc.name, (svc.name, domain)


def test_size_models_positive(rng):
    for svc in SERVICES.values():
        down = svc.size.sample_down(rng, 100)
        up = svc.size.sample_up(down, rng)
        assert np.all(down > 0)
        assert np.all(up >= 0)


def test_flow_count_scaling(rng):
    svc = SERVICES["Whatsapp"]
    small = np.mean([svc.sample_flow_count(rng, 0.5) for _ in range(300)])
    large = np.mean([svc.sample_flow_count(rng, 5.0) for _ in range(300)])
    assert large > 4 * small
    assert svc.sample_flow_count(rng, 0.0001) >= 1


def test_categories_cover_fig7():
    for category in (
        ServiceCategory.AUDIO, ServiceCategory.CHAT, ServiceCategory.SEARCH,
        ServiceCategory.SOCIAL, ServiceCategory.VIDEO, ServiceCategory.WORK,
    ):
        assert services_in_category(category), category


def test_diurnal_weights_are_distributions():
    for profile in all_profiles().values():
        weights = profile.hourly_weights_local
        assert len(weights) == 24
        assert weights.sum() == pytest.approx(1.0)
        assert np.all(weights > 0)


def test_europe_evening_peak_africa_morning_activity():
    spain = country_profile("Spain").hourly_weights_local
    congo = country_profile("Congo").hourly_weights_local
    assert 18 <= int(np.argmax(spain)) <= 21
    assert 8 <= int(np.argmax(congo)) <= 11
    # Africa's nightly floor is higher (Figure 4)
    assert congo.min() / congo.max() > spain.min() / spain.max()


def test_utc_shift():
    kenya = country_profile("Kenya")
    utc = kenya.utc_hour_weights()
    local = kenya.hourly_weights_local
    # Kenya is ~UTC+2.5 by longitude: peak appears ~2h earlier in UTC
    assert int(np.argmax(utc)) == (int(np.argmax(local)) - 2) % 24


def test_profiles_cached():
    assert country_profile("Spain") is country_profile("Spain")


def test_unknown_country_raises():
    with pytest.raises(KeyError):
        country_profile("Atlantis")
