"""Tests for DNS wire-format encoding/decoding."""

import struct

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.protocols import dns


def test_query_round_trip():
    message = dns.decode(dns.encode_query(1234, "www.example.com"))
    assert message.txid == 1234
    assert message.qname == "www.example.com"
    assert not message.is_response
    assert message.questions[0].qtype == dns.QTYPE_A


def test_response_round_trip_multiple_answers():
    addresses = [0x01010101, 0x02020202, 0x03030303]
    message = dns.decode(dns.encode_response(7, "cdn.example.net", addresses, ttl=60))
    assert message.is_response
    assert [a.address for a in message.answers] == addresses
    assert all(a.ttl == 60 for a in message.answers)
    assert message.answers[0].name == "cdn.example.net"  # via compression pointer


def test_nxdomain_rcode():
    message = dns.decode(dns.encode_response(9, "missing.example", [], rcode=dns.RCODE_NXDOMAIN))
    assert message.rcode == dns.RCODE_NXDOMAIN
    assert message.answers == []


def test_name_encoding_root_and_trailing_dot():
    assert dns.encode_name("") == b"\x00"
    assert dns.encode_name("example.com.") == dns.encode_name("example.com")


def test_name_label_length_limit():
    with pytest.raises(ValueError):
        dns.encode_name("a" * 64 + ".com")


def test_decode_name_compression_loop_detected():
    # pointer to itself at offset 0
    data = struct.pack("!H", 0xC000)
    with pytest.raises(ValueError):
        dns.decode_name(data, 0)


def test_decode_truncated_header():
    with pytest.raises(ValueError):
        dns.decode(b"\x00\x01")


def test_decode_truncated_question():
    query = dns.encode_query(5, "example.com")
    with pytest.raises(ValueError):
        dns.decode(query[:-2])


def test_looks_like_dns():
    assert dns.looks_like_dns(dns.encode_query(1, "a.b"))
    assert not dns.looks_like_dns(b"\x00" * 4)
    # opcode != 0 → not a standard query
    weird = bytearray(dns.encode_query(1, "a.b"))
    weird[2] |= 0x78
    assert not dns.looks_like_dns(bytes(weird))


def test_txid_masked_to_16_bits():
    message = dns.decode(dns.encode_query(0x12345, "x.y"))
    assert message.txid == 0x2345


@given(
    st.lists(
        st.text(alphabet=st.sampled_from("abcdefghijklmnopqrstuvwxyz0123456789-"), min_size=1, max_size=20),
        min_size=1,
        max_size=5,
    ),
    st.integers(min_value=0, max_value=0xFFFF),
)
def test_query_round_trip_property(labels, txid):
    name = ".".join(labels)
    message = dns.decode(dns.encode_query(txid, name))
    assert message.qname == name
    assert message.txid == txid


@given(st.binary(max_size=200))
def test_decode_never_hangs_on_garbage(data):
    try:
        dns.decode(data)
    except ValueError:
        pass  # rejecting garbage is fine; crashing/hanging is not
