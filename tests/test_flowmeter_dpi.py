"""Tests for the DPI engine."""

import pytest

from repro.flowmeter.dpi import DpiEngine
from repro.flowmeter.records import L7Protocol
from repro.net.flowkey import Direction
from repro.protocols import dns, http, quic, rtp, tls

C2S = Direction.CLIENT_TO_SERVER
S2C = Direction.SERVER_TO_CLIENT


def _tcp_engine(port=443, **kwargs):
    return DpiEngine(protocol="tcp", server_port=port, **kwargs)


def _udp_engine(port=443):
    return DpiEngine(protocol="udp", server_port=port)


def test_tls_sni_extraction():
    engine = _tcp_engine()
    engine.on_payload(C2S, tls.client_hello("cdn.netflix.com"), 0.0)
    assert engine.result.l7 is L7Protocol.HTTPS
    assert engine.result.domain == "cdn.netflix.com"


def test_tls_client_hello_split_across_packets():
    """Reassembly: the SNI must be found even when the ClientHello is
    fragmented into MSS-sized pieces."""
    engine = _tcp_engine()
    hello = tls.client_hello("fragmented.example.org")
    third = len(hello) // 3
    engine.on_payload(C2S, hello[:third], 0.0)
    assert engine.result.domain is None
    engine.on_payload(C2S, hello[third : 2 * third], 0.1)
    engine.on_payload(C2S, hello[2 * third :], 0.2)
    assert engine.result.domain == "fragmented.example.org"


def test_tls_handshake_callbacks_fire_once_with_timestamps():
    events = []
    engine = _tcp_engine(
        on_server_hello=lambda t: events.append(("sh", t)),
        on_client_key_exchange=lambda t: events.append(("cke", t)),
    )
    engine.on_payload(C2S, tls.client_hello("a.b"), 0.0)
    engine.on_payload(S2C, tls.server_hello(), 1.5)
    engine.on_payload(C2S, tls.client_key_exchange(), 2.1)
    engine.on_payload(C2S, tls.application_data(100), 2.2)
    assert events == [("sh", 1.5), ("cke", 2.1)]


def test_http_host_extraction():
    engine = _tcp_engine(port=80)
    engine.on_payload(C2S, http.encode_request("downloads.sky.com", "/asset"), 0.0)
    assert engine.result.l7 is L7Protocol.HTTP
    assert engine.result.domain == "downloads.sky.com"


def test_unknown_tcp_labelled_other():
    engine = _tcp_engine(port=9999)
    engine.on_payload(C2S, b"\x00\x01\x02\x03 custom protocol", 0.0)
    assert engine.result.l7 is L7Protocol.OTHER_TCP
    assert engine.result.domain is None


def test_dns_query_response_timing():
    engine = _udp_engine(port=53)
    engine.on_payload(C2S, dns.encode_query(4, "api.wechat.com"), 10.0)
    engine.on_payload(S2C, dns.encode_response(4, "api.wechat.com", [0x05060708]), 10.12)
    assert engine.result.l7 is L7Protocol.DNS
    assert engine.result.dns_qname == "api.wechat.com"
    assert engine.result.dns_response_ms == pytest.approx(120.0)
    assert engine.result.dns_rcode == dns.RCODE_NOERROR


def test_dns_response_without_query_still_labelled():
    engine = _udp_engine(port=53)
    engine.on_payload(S2C, dns.encode_response(4, "x.y", [1]), 1.0)
    assert engine.result.l7 is L7Protocol.DNS
    assert engine.result.dns_qname == "x.y"
    assert engine.result.dns_response_ms is None


def test_quic_sni():
    engine = _udp_engine(port=443)
    engine.on_payload(C2S, quic.encode_initial("quic.youtube.com"), 0.0)
    assert engine.result.l7 is L7Protocol.QUIC
    assert engine.result.domain == "quic.youtube.com"


def test_quic_short_header_after_initial_keeps_label():
    engine = _udp_engine(port=443)
    engine.on_payload(C2S, quic.encode_initial("q.example"), 0.0)
    engine.on_payload(S2C, quic.encode_short_header_packet(500), 0.6)
    assert engine.result.l7 is L7Protocol.QUIC


def test_rtp_detection():
    engine = _udp_engine(port=40000)
    engine.on_payload(C2S, rtp.encode(1, 160, 0xAA, b"voice"), 0.0)
    assert engine.result.l7 is L7Protocol.RTP


def test_unknown_udp_labelled_other():
    engine = _udp_engine(port=12345)
    engine.on_payload(C2S, b"\x00\x01\x02", 0.0)
    assert engine.result.l7 is L7Protocol.OTHER_UDP


def test_empty_payload_ignored():
    engine = _tcp_engine()
    engine.on_payload(C2S, b"", 0.0)
    assert engine.result.l7 is None


def test_reassembly_buffer_capped():
    engine = _tcp_engine(port=9999)
    for _ in range(40):
        engine.on_payload(C2S, b"\x00" * 1000, 0.0)
    assert len(engine._buffers[C2S]) <= 17 * 1024
