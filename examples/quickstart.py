#!/usr/bin/env python
"""Quickstart: synthesize a SatCom capture and reproduce headline results.

Generates a small flow-level capture (the default is ~1 M flows in a
few seconds), then prints three of the paper's headline views:

* Table 1 — protocol breakdown,
* Figure 2 — who the traffic belongs to,
* Figure 8a — what the satellite does to RTT.

Run:  python examples/quickstart.py [n_customers] [days]

Set ``REPRO_CACHE=1`` to reuse the content-keyed capture cache
(``$REPRO_CACHE_DIR`` or ``~/.cache/repro``): the first run generates,
reruns reload the same capture in well under a second. ``REPRO_WORKERS``
sets the generation worker count (0 = one per core) — the capture is
bit-identical either way.
"""

from __future__ import annotations

import os
import sys

from repro.analysis.reports import fig2_country, fig8_satellite_rtt, table1_protocols
from repro.pipeline import generate_flow_dataset
from repro.scenario import get_scenario


def main() -> None:
    n_customers = int(sys.argv[1]) if len(sys.argv) > 1 else 400
    days = int(sys.argv[2]) if len(sys.argv) > 2 else 3
    raw_workers = os.environ.get("REPRO_WORKERS", "1")
    # "auto" = one worker per usable core, same as the CLI's --workers auto
    workers = 0 if raw_workers.strip().lower() == "auto" else int(raw_workers)

    scenario = get_scenario("baseline-geo").with_overrides(
        {
            "population.n_customers": n_customers,
            "workload.days": days,
            "workload.seed": 1,
            "execution.workers": workers,
        }
    )
    print(f"Generating {days} days of traffic for {n_customers} customers...")
    frame, generator = generate_flow_dataset(
        scenario=scenario,
        cache=bool(os.environ.get("REPRO_CACHE")),
    )
    print(f"Captured {len(frame):,} flows from {len(generator.population)} customers "
          f"in {len(set(s.country for s in generator.population.subscribers))} countries.\n")

    print(table1_protocols.render(table1_protocols.compute(frame)))
    print()
    print(fig2_country.render(fig2_country.compute(frame)))
    print()
    result_a = fig8_satellite_rtt.compute_fig8a(frame)
    result_b = fig8_satellite_rtt.compute_fig8b(frame)
    print(fig8_satellite_rtt.render(result_a, result_b))

    from repro.analysis.plotting import ascii_cdf

    print("\nSatellite RTT CDFs at night (x log-scaled, ms):\n")
    print(
        ascii_cdf(
            {
                "Spain": result_a.samples["Spain"]["night"],
                "Congo": result_a.samples["Congo"]["night"],
                "Ireland": result_a.samples["Ireland"]["night"],
            },
            width=64,
            height=12,
            x_label="satellite RTT (ms)",
        )
    )

    spain_night = result_a.fraction_under("Spain", "night", 1000.0) * 100
    congo_tail = result_a.fraction_over("Congo", "night", 2000.0) * 100
    print(
        f"\nHeadlines: every satellite RTT sample sits above ~550 ms; "
        f"{spain_night:.0f} % of Spain's night samples are under 1 s "
        f"(paper: 82 %), while {congo_tail:.0f} % of Congo's exceed 2 s "
        f"even off-peak (paper: ~20 %) — PEP saturation, not beam capacity."
    )


if __name__ == "__main__":
    main()
