#!/usr/bin/env python
"""Scenario: the released ERRANT model — GEO SatCom vs everything else.

The paper ships a data-driven GEO SatCom model for the ERRANT network
emulator so researchers can compare access technologies (including
Starlink, via the companion IMC'22 paper). This example fits GEO
profiles from a synthetic capture, compares object-fetch times across
technologies, and emits ``tc netem`` command lines for a real emulator
box.

Run:  python examples/errant_emulation.py
"""

from __future__ import annotations

import tempfile
from pathlib import Path

from repro.analysis.aggregate import format_table
from repro.errant.emulator import Emulator, compare_profiles
from repro.errant.model import fit_profile, load_profiles, save_profiles
from repro.errant.profiles import BUILTIN_PROFILES
from repro.pipeline import generate_flow_dataset
from repro.scenario import get_scenario


def main() -> None:
    scenario = get_scenario("baseline-geo").with_overrides(
        {"population.n_customers": 400, "workload.days": 3, "workload.seed": 4}
    )
    frame, _ = generate_flow_dataset(scenario=scenario)

    profiles = dict(BUILTIN_PROFILES)
    for country in ("Spain", "Congo"):
        fitted = fit_profile(frame, country)
        profiles[fitted.name] = fitted
    profiles["geo-satcom-congo-peak"] = fit_profile(frame, "Congo", peak_only=True)

    rows = []
    for name, profile in profiles.items():
        rows.append(
            (
                name,
                f"{profile.rtt_median_ms:.0f}",
                f"{profile.down_median_mbps:.0f}",
                f"{profile.up_median_mbps:.1f}",
            )
        )
    print(format_table(
        ["Profile", "RTT med ms", "Down Mb/s", "Up Mb/s"],
        rows,
        title="Access-link profiles (fitted + built-in comparisons)",
    ))

    print()
    for size, label in ((50_000, "small object (50 kB)"), (1_000_000, "1 MB"), (25_000_000, "25 MB")):
        times = compare_profiles(profiles, size_bytes=size, n=200, seed=1)
        ordered = sorted(times.items(), key=lambda kv: kv[1])
        line = ", ".join(f"{name}={value:.2f}s" for name, value in ordered)
        print(f"mean fetch, {label}: {line}")

    print("\nnetem commands for the fitted Spanish GEO profile:")
    emulator = Emulator(profiles["geo-satcom-spain"], seed=0)
    for command in emulator.netem_commands("eth0"):
        print(f"  {command}")

    with tempfile.TemporaryDirectory() as tmp:
        bundle = Path(tmp) / "satcom_profiles.json"
        save_profiles(profiles, bundle)
        reloaded = load_profiles(bundle)
        print(f"\nProfile bundle round-trips through JSON: {len(reloaded)} profiles "
              f"({bundle.stat().st_size} bytes) — the released-artifact format.")


if __name__ == "__main__":
    main()
