#!/usr/bin/env python
"""Walkthrough: one TLS download through the PEP, packet by packet.

Reproduces Figure 1 at packet level — client, CPE proxy, satellite
tunnel, ground-station proxy, server — with the flow meter tapping the
ground station exactly like the paper's probe. Prints what the probe
recovered next to the simulation's ground truth, demonstrating the
Section 2.2 measurement methodology:

* ground RTT from TCP data↔ACK matching,
* satellite RTT from the ServerHello→ClientKeyExchange gap,
* DNS response time (ground side only — the subscriber still waits
  the full satellite round trip on top).

Run:  python examples/pep_packet_walkthrough.py
"""

from __future__ import annotations

from repro.pipeline import PacketSimConfig, run_packet_simulation


def main() -> None:
    config = PacketSimConfig(
        countries=("Spain", "Congo", "Ireland"),
        flows_per_customer=3,
        response_bytes=250_000,
        seed=3,
    )
    result = run_packet_simulation(config)

    print("Probe records at the ground station (after the PEP):\n")
    header = f"{'flow':>4}  {'l7':10} {'domain':22} {'down B':>8}  {'ground RTT':>10}  {'sat RTT':>8}"
    print(header)
    print("-" * len(header))
    for i, record in enumerate(result.tls_records):
        print(
            f"{i:>4}  {record.l7.value:10} {record.domain:22} "
            f"{record.bytes_down:>8}  {record.rtt_avg_ms:>8.1f} ms"
            f"  {record.sat_rtt_ms:>6.0f} ms"
        )

    print("\nDNS as seen by the probe vs by the subscriber:")
    for record, (resolver, truth_ms) in zip(
        result.dns_records, result.dns_ground_truth_ms
    ):
        print(
            f"  {resolver:12s} probe sees {record.dns_response_ms:6.1f} ms "
            f"(ground side) — the device waited {truth_ms:6.0f} ms end to end"
        )

    clients = result.clients
    print(
        f"\n{len(clients)} TLS clients completed. Example client timeline "
        f"(first client):"
    )
    first = clients[0].result
    print(f"  connect + ClientHello sent  t={first.sent_client_hello_at:7.3f} s")
    print(f"  ServerHello flight arrived  t={first.got_server_hello_at:7.3f} s")
    print(f"  ClientKeyExchange sent      t={first.sent_key_exchange_at:7.3f} s")
    print(f"  download finished           t={first.finished_at:7.3f} s")
    print(
        "\nThe probe's satellite-RTT estimate brackets the CPE↔ground-station "
        "segment (two satellite traversals + MAC/ARQ/PEP delays), while its "
        "TCP RTT reflects only the 12 ms Milan path — the PEP split in action."
    )


if __name__ == "__main__":
    main()
