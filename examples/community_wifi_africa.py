#!/usr/bin/env python
"""Scenario: how community WiFi reshapes African SatCom traffic.

The paper's Sections 4–5 attribute the African usage pattern — morning
peaks, order-of-magnitude more flows per subscription, chat volumes
hundreds of times larger — to community WiFi points and internet cafés
sharing one subscription among many users. This example isolates that
mechanism: it compares the measured distributions per subscriber type
and regenerates the Figure 4/5/7 views.

Run:  python examples/community_wifi_africa.py
"""

from __future__ import annotations

import numpy as np

from repro.analysis.aggregate import format_table
from repro.analysis.reports import fig4_diurnal, fig5_volumes, fig7_service_volume
from repro.pipeline import generate_flow_dataset
from repro.traffic.services import ServiceCategory
from repro.scenario import get_scenario
from repro.traffic.subscribers import SubscriberType


def per_type_breakdown(frame) -> str:
    """Daily flows and volume per subscriber type, Africa vs Europe."""
    africa = np.zeros(len(frame), dtype=bool)
    for country in ("Congo", "Nigeria", "South Africa"):
        africa |= frame.country_mask(country)
    rows = []
    ones = np.ones(len(frame))
    for sub_type in SubscriberType:
        mask = africa & (frame.subscriber_type == int(sub_type))
        if not mask.any():
            continue
        flows = frame.customer_day_totals(ones, mask)
        volume = frame.customer_day_totals(frame.bytes_total(), mask)
        rows.append(
            (
                sub_type.name.lower(),
                len({c for c, _ in flows}),
                f"{np.median(list(flows.values())):.0f}",
                f"{np.median(list(volume.values())) / 1e6:.0f}",
                f"{np.quantile(list(volume.values()), 0.95) / 1e9:.1f}",
            )
        )
    return format_table(
        ["Type", "Customers", "Median flows/day", "Median MB/day", "p95 GB/day"],
        rows,
        title="African subscriptions by type (the community-AP effect)",
    )


def main() -> None:
    scenario = get_scenario("baseline-geo").with_overrides(
        {"population.n_customers": 500, "workload.days": 4, "workload.seed": 9}
    )
    frame, _ = generate_flow_dataset(scenario=scenario)

    print(per_type_breakdown(frame))
    print()

    diurnal = fig4_diurnal.compute(frame)
    print(fig4_diurnal.render(diurnal))
    print(
        f"\nCongo peaks at {diurnal.peak_hour_utc('Congo')}:00 UTC — business-hours "
        f"usage of shared access points — versus {diurnal.peak_hour_utc('Spain')}:00 "
        "UTC leisure prime time in Spain.\n"
    )

    volumes = fig5_volumes.compute(frame)
    print(fig5_volumes.render(volumes))
    ratio = volumes.median_flows("Congo") / volumes.median_flows("Spain")
    print(f"\nA median Congolese subscription carries {ratio:.0f}× the daily flows "
          "of a Spanish one.\n")

    categories = fig7_service_volume.compute(frame)
    print(fig7_service_volume.render(categories))
    chat_gap = categories.median_mb(ServiceCategory.CHAT, "Congo") / max(
        categories.median_mb(ServiceCategory.CHAT, "Spain"), 0.1
    )
    print(
        f"\nChat volume gap Congo/Spain: {chat_gap:.0f}× — 'hardly consistent with "
        "sole or domestic use' (Section 8)."
    )


if __name__ == "__main__":
    main()
