#!/usr/bin/env python
"""Extension study: rain fade on the satellite channel.

The paper's channel observations are time-averaged; operational Ka/Ku
links additionally suffer episodic rain attenuation. This example uses
the :class:`RainFadeProcess` extension to ask: what happens to the
Figure 8a satellite-RTT distributions when a tropical beam spends part
of its time in fade?

Run:  python examples/rain_fade_study.py
"""

from __future__ import annotations

import numpy as np

from repro.analysis.aggregate import format_table
from repro.internet.geo import COUNTRIES
from repro.satcom.channel import RainFadeProcess
from repro.satcom.delay_model import SatelliteRttModel
from repro.scenario import get_scenario


def sample_with_weather(
    model: SatelliteRttModel,
    country: str,
    fade: RainFadeProcess,
    rng: np.random.Generator,
    n: int = 8000,
) -> np.ndarray:
    """Handshake RTTs with per-flow weather drawn from the fade process."""
    location = COUNTRIES[country]
    beam = model.beam_map.beams_for(country)[0]
    hour_local = 19.0
    utilization = model.beam_map.utilization(beam, hour_local)
    pep_load = model.beam_map.pep_utilization(beam, hour_local)
    elevation = model.geometry.elevation_angle_deg(location)

    base = model.sample_handshake_rtt_bulk(
        country, np.full(n, utilization), np.full(n, pep_load), rng
    )
    # Swap the clear-sky ARQ contribution for a weather-aware one.
    weather = fade.sample_weather_factor(rng, n)
    clear_arq = model.channel.sample_arq_delay_s(elevation, rng, n, 6)
    faded_arq = np.array(
        [
            model.channel.sample_arq_delay_s(elevation, rng, 1, 6, weather_factor=w)[0]
            for w in weather
        ]
    )
    return base - clear_arq + faded_arq


def main() -> None:
    model = get_scenario("baseline-geo").build_rtt_model()
    rng = np.random.default_rng(11)

    scenarios = {
        "clear sky": RainFadeProcess(fade_probability=0.0),
        "temperate (2% fade)": RainFadeProcess(fade_probability=0.02),
        "tropical (8% fade)": RainFadeProcess(fade_probability=0.08),
        "monsoon burst (20% fade)": RainFadeProcess(fade_probability=0.20),
    }

    for country in ("Nigeria", "Ireland"):
        rows = []
        for label, fade in scenarios.items():
            samples = sample_with_weather(model, country, fade, rng) * 1000.0
            rows.append(
                (
                    label,
                    f"{np.median(samples):.0f}",
                    f"{np.quantile(samples, 0.95):.0f}",
                    f"{(samples > 2000).mean() * 100:.1f} %",
                )
            )
        print(format_table(
            ["Weather", "Median ms", "p95 ms", ">2 s"],
            rows,
            title=f"Satellite RTT under rain fade — {country} (peak hour)",
        ))
        print()

    episode = RainFadeProcess(fade_probability=0.08).sample_episode(rng)
    print(
        f"A sampled tropical fade episode: {episode.duration_s / 60:.1f} minutes at "
        f"{episode.weather_factor:.1f}× the clear-sky frame-error rate.\n"
        "Near-zenith beams (Nigeria) shrug off moderate fade; Ireland's "
        "27° elevation channel — already impaired in clear sky — degrades "
        "sharply, which is why coverage-edge terminals dominated the "
        "paper's load-independent RTT tails."
    )


if __name__ == "__main__":
    main()
