#!/usr/bin/env python
"""Scenario: DNS resolvers vs CDN server selection (Sections 6.3–6.4).

All SatCom traffic enters the Internet in Italy, but customers resolve
names against resolvers scattered from Lagos to Beijing — so CDNs place
them wherever the *resolver* (or the ECS prefix) suggests. This example
reproduces Figure 10 and Table 2, then applies the paper's proposed
mitigation (force the operator resolver) and measures the improvement.

Run:  python examples/dns_cdn_study.py
"""

from __future__ import annotations

from repro.analysis.reports import fig9_ground_rtt, fig10_dns, table2_resolver_rtt
from repro.pipeline import generate_flow_dataset, generate_with_forced_resolver
from repro.scenario import get_scenario

SCENARIO = get_scenario("baseline-geo").with_overrides(
    {"population.n_customers": 450, "workload.days": 3, "workload.seed": 17}
)
CONFIG = SCENARIO.workload_config()


def main() -> None:
    frame, _ = generate_flow_dataset(scenario=SCENARIO)

    print(fig10_dns.render(fig10_dns.compute(frame)))
    print()

    table2 = table2_resolver_rtt.compute(frame, countries=("UK", "Nigeria"))
    print(table2_resolver_rtt.render(table2))

    op = table2.rtt("Nigeria", "Operator-EU", "captive.apple.com")
    chinese = table2.rtt("Nigeria", "114DNS", "play.googleapis.com")
    if op and chinese:
        print(
            f"\nSame customer country, same service: {op:.0f} ms via the operator "
            f"resolver vs {chinese:.0f} ms via 114DNS — the resolver's location "
            "decided which CDN node serves a satellite customer."
        )

    print("\n--- Mitigation: force the Operator-EU resolver (Section 6.4) ---\n")
    forced_frame, _ = generate_with_forced_resolver("Operator-EU", CONFIG)
    baseline = fig9_ground_rtt.compute(frame)
    forced = fig9_ground_rtt.compute(forced_frame)
    for country in ("Congo", "Nigeria", "South Africa"):
        before = baseline.fraction_above(country, 80.0) * 100
        after = forced.fraction_above(country, 80.0) * 100
        print(
            f"{country:14s} TCP flows with ground RTT > 80 ms: "
            f"{before:5.1f} % -> {after:5.1f} %"
        )
    print(
        "\nForcing the operator resolver anchors CDN selection at the ground "
        "station: mis-selected (distant) nodes mostly disappear; only services "
        "hosted exclusively in Africa or China still pay the detour."
    )


if __name__ == "__main__":
    main()
