"""Ablation: force the operator's resolver (Section 6.4's mitigation).

"A possible solution to the DNS inconsistency problem is to either
force the use of the SatCom operator's resolver or work with the Open
Resolver providers…" — we rerun the workload with every customer on
Operator-EU and measure what happens to DNS response times and to the
mis-selected CDN traffic.
"""

import numpy as np
import pytest

from repro.analysis.reports import fig9_ground_rtt, fig10_dns
from repro.pipeline import generate_with_forced_resolver
from repro.scenario import get_scenario

_CONFIG = get_scenario("baseline-geo").with_overrides(
    {"population.n_customers": 350, "workload.days": 3, "workload.seed": 77}
).workload_config()


@pytest.mark.benchmark(group="ablation")
def test_force_operator_dns_ablation(benchmark, frame, save_result):
    forced_frame, _ = benchmark(generate_with_forced_resolver, "Operator-EU", _CONFIG)

    baseline_dns = fig10_dns.compute(frame)
    forced_dns = fig10_dns.compute(forced_frame)
    baseline_fig9 = fig9_ground_rtt.compute(frame)
    forced_fig9 = fig9_ground_rtt.compute(forced_frame)

    lines = ["Ablation: forcing the Operator-EU resolver for everyone", ""]
    lines.append("DNS median response (ms):")
    base_medians = [m for m in baseline_dns.median_response_ms.values()]
    lines.append(f"  baseline, across resolvers: {min(base_medians):.0f}-{max(base_medians):.0f}")
    forced_median = forced_dns.median_response_ms["Operator-EU"]
    lines.append(f"  forced Operator-EU: {forced_median:.0f}")
    lines.append("")
    lines.append("Ground RTT tail above 250 ms (African mis-selection):")
    for country in ("Congo", "Nigeria"):
        base_tail = baseline_fig9.fraction_above(country, 250.0) * 100
        forced_tail = forced_fig9.fraction_above(country, 250.0) * 100
        lines.append(f"  {country}: {base_tail:.1f} % -> {forced_tail:.1f} %")
    save_result("ablation_force_operator_dns", "\n".join(lines))

    # Everyone resolves at ~4 ms now (a small stray share remains: some
    # devices hardcode their resolver regardless of DHCP).
    assert forced_median < 8.0
    shares = forced_dns.shares_pct["Operator-EU"]
    assert all(v > 85.0 for v in shares.values() if v)

    # CDN selection anchored at the ground station: African customers'
    # median ground RTT drops (no more resolver-located nodes),
    # though truly African-only services still pay the detour.
    for country in ("Congo", "Nigeria"):
        assert forced_fig9.median_ms(country) <= baseline_fig9.median_ms(country) + 2.0
    assert forced_fig9.fraction_above("Nigeria", 80.0) < baseline_fig9.fraction_above(
        "Nigeria", 80.0
    )
