"""Streaming-capture smoke: kill+resume bit-identity plus throughput.

Run by the CI ``stream`` job. Unlike the figure benchmarks this does
not consume the shared session capture — the whole point is to produce
its own windows, kill the run between two of them, and prove the
resumed capture is bit-identical to the uninterrupted one. Measured
numbers for this machine class are recorded in ``BENCH_stream.json``.
"""

from __future__ import annotations

import time

from conftest import RESULTS_DIR

from repro.scenario import get_scenario
from repro.stream import (
    StreamRollup,
    render_telemetry,
    rollup_path,
    run_stream_capture,
)

SMOKE_CONFIG = get_scenario("baseline-geo").with_overrides(
    {
        "population.n_customers": 150,
        "workload.days": 3,
        "stream.window_days": 1,
        "execution.compress": False,
    }
).stream_config()

#: Deliberately loose floor (shared CI runners are noisy); the recorded
#: number in BENCH_stream.json is ~10x this.
MIN_FLOWS_PER_S = 20_000


def test_stream_kill_resume_bit_identical(tmp_path):
    one_shot = run_stream_capture(SMOKE_CONFIG, tmp_path / "one")
    assert one_shot.complete

    killed = run_stream_capture(SMOKE_CONFIG, tmp_path / "resumed", max_windows=1)
    assert not killed.complete
    resumed = run_stream_capture(SMOKE_CONFIG, tmp_path / "resumed", resume=True)
    assert resumed.complete

    assert resumed.rollup.state_digest() == one_shot.rollup.state_digest()
    # the digest persisted for the *next* resume must agree too
    reloaded = StreamRollup.load(rollup_path(tmp_path / "resumed"))
    assert reloaded.state_digest() == one_shot.rollup.state_digest()


def test_stream_throughput_smoke(tmp_path):
    started = time.perf_counter()
    result = run_stream_capture(SMOKE_CONFIG, tmp_path / "cap")
    elapsed = time.perf_counter() - started
    flows = sum(t.flows for t in result.telemetry)
    throughput = flows / elapsed

    RESULTS_DIR.mkdir(exist_ok=True)
    (RESULTS_DIR / "stream_smoke.txt").write_text(
        render_telemetry(result.telemetry)
        + f"\nend-to-end: {flows:,} flows in {elapsed:.2f} s "
        f"({throughput:,.0f} flows/s)\n"
    )

    assert result.complete
    assert flows > 100_000
    assert throughput > MIN_FLOWS_PER_S, f"{throughput:,.0f} flows/s"
