"""Micro-benchmarks of the hot paths (probe, generator, classifier,
rollup). Not paper experiments — performance engineering guardrails for
the library itself."""

import numpy as np
import pytest

from repro.analysis.classify import ServiceClassifier
from repro.kernels import sniff
from repro.stream.rollup import HourlyRollup
from repro.flowmeter.meter import FlowMeter
from repro.net.packet import IPProtocol, Packet, TCPFlags
from repro.scenario import get_scenario


def _packet_stream(n_flows=200, pkts_per_flow=50):
    packets = []
    for flow in range(n_flows):
        src = 0x0A000000 + flow
        port = 40000 + flow
        packets.append(Packet(
            src_ip=src, dst_ip=0x17000001, src_port=port, dst_port=443,
            protocol=IPProtocol.TCP, flags=TCPFlags.SYN, timestamp=0.0,
        ))
        for k in range(pkts_per_flow):
            packets.append(Packet(
                src_ip=src, dst_ip=0x17000001, src_port=port, dst_port=443,
                protocol=IPProtocol.TCP, flags=TCPFlags.ACK | TCPFlags.PSH,
                seq=1 + k * 100, ack=1, payload=b"z" * 100,
                timestamp=0.001 * k,
            ))
    return packets


@pytest.mark.benchmark(group="micro")
def test_micro_flowmeter_throughput(benchmark):
    packets = _packet_stream()

    def run():
        meter = FlowMeter()
        for packet in packets:
            meter.process(packet)
        meter.flush_all()
        return meter

    meter = benchmark(run)
    assert len(meter.records) == 200
    # keep an eye on per-packet cost: this path must stay >50k pkts/s
    assert meter.packets_processed == len(packets)


@pytest.mark.benchmark(group="micro")
def test_micro_flowmeter_vectorized(benchmark):
    """Same stream as the python micro above, through the batch kernel.
    The ratio of the two means is the kernel speedup the BENCH files
    record; identity of the outputs is tests/test_kernels.py's job."""
    packets = _packet_stream()

    def run():
        meter = FlowMeter(engine="vectorized", batch_size=512)
        meter.process_batch(packets)
        meter.flush_all()
        return meter

    meter = benchmark(run)
    assert len(meter.records) == 200
    assert meter.packets_processed == len(packets)


def _sniff_corpus(n=20_000, seed=5):
    rng = np.random.default_rng(seed)
    lengths = rng.integers(0, 64, size=n)
    return [rng.bytes(int(k)) for k in lengths]


@pytest.mark.benchmark(group="micro")
def test_micro_sniffers_scalar(benchmark):
    payloads = _sniff_corpus()

    def run():
        return {
            name: [oracle(p) for p in payloads]
            for name, oracle in sniff.SCALAR_ORACLES.items()
        }

    verdicts = benchmark(run)
    assert set(verdicts) == set(sniff.BATCH_SNIFFERS)


@pytest.mark.benchmark(group="micro")
def test_micro_sniffers_batch(benchmark):
    payloads = _sniff_corpus()

    def run():
        return sniff.sniff_matrix(payloads)

    verdicts = benchmark(run)
    # spot-check the batch verdicts against the scalar oracles
    for name, oracle in sniff.SCALAR_ORACLES.items():
        got = verdicts[name]
        assert len(got) == len(payloads)
        assert [bool(v) for v in got[:256]] == [
            oracle(p) for p in payloads[:256]
        ]


@pytest.mark.benchmark(group="micro")
def test_micro_simnet_at_batch(benchmark):
    from repro.simnet.engine import Simulator

    def run():
        sim = Simulator()
        hits = []
        sim.at_batch(
            [(float(t), hits.append, (t,)) for t in range(20_000)]
        )
        sim.run()
        return hits

    hits = benchmark(run)
    assert len(hits) == 20_000


@pytest.mark.benchmark(group="micro")
def test_micro_generator_throughput(benchmark):
    scenario = get_scenario("baseline-geo").with_overrides(
        {"population.n_customers": 150, "workload.days": 2, "workload.seed": 9}
    )

    def run():
        return scenario.build_generator().generate()

    frame = benchmark(run)
    assert len(frame) > 50_000


@pytest.mark.benchmark(group="micro")
def test_micro_classifier_pool(benchmark, frame):
    classifier = ServiceClassifier()

    def run():
        fresh = ServiceClassifier()
        return fresh.classify_pool(frame.domains)

    labels, names = benchmark(run)
    assert len(labels) == len(frame.domains)


@pytest.mark.benchmark(group="micro")
def test_micro_rollup(benchmark, frame):
    rollup = benchmark(HourlyRollup.from_frame, frame)
    assert len(rollup) > 100
    assert rollup.reduction_factor(frame) > 10


@pytest.fixture(scope="module")
def fleet_partition_dirs(tmp_path_factory):
    """Four completed partition captures of a small fleet scenario."""
    from repro.fleet import plan_partitions, run_partition

    scenario = get_scenario("baseline-geo").with_overrides({
        "population.n_customers": 96,
        "workload.days": 2,
        "workload.n_shards": 4,
        "execution.compress": False,
    })
    root = tmp_path_factory.mktemp("fleet-bench")
    directories = []
    for spec in plan_partitions(scenario, partitions=4).partitions:
        directory = root / spec.name
        run_partition(scenario, spec, directory)
        directories.append(directory)
    return directories


@pytest.mark.benchmark(group="micro")
def test_micro_fleet_merge(benchmark, fleet_partition_dirs):
    """The fleet reduce step: 4 partitions through a balanced merge tree.
    Guards the frame-concat merge staying IO-bound — the windows are
    re-read and re-folded every round, nothing is cached between runs."""
    from repro.fleet import merge_partition_captures

    rollup = benchmark(merge_partition_captures, fleet_partition_dirs)
    assert rollup.state_digest()


@pytest.fixture(scope="module")
def serve_endpoint(tmp_path_factory):
    """A finished small capture behind a live ReportServer."""
    from repro.serve import ServerThread, SnapshotHub, snapshot_from_capture
    from repro.stream import StreamConfig, run_stream_capture
    from repro.traffic.workload import WorkloadConfig

    capture_dir = tmp_path_factory.mktemp("serve-bench") / "cap"
    config = StreamConfig(
        workload=WorkloadConfig(n_customers=48, days=2, seed=7, n_workers=1),
        window_days=1,
        compress=False,
    )
    run_stream_capture(config, capture_dir)
    hub = SnapshotHub()
    hub.publish(snapshot_from_capture(capture_dir))
    server = ServerThread(hub)
    server.start()
    yield server
    server.stop()


@pytest.mark.benchmark(group="micro")
def test_micro_serve_request(benchmark, serve_endpoint):
    """One full /reports/fig2 HTTP exchange against a warm snapshot —
    connection setup, registry dispatch, rollup render, response. Guards
    the serve hot path (a regression here multiplies across every
    dashboard poll of a live capture)."""
    import http.client

    def fetch():
        conn = http.client.HTTPConnection(
            serve_endpoint.host, serve_endpoint.port, timeout=10
        )
        try:
            conn.request("GET", "/reports/fig2")
            response = conn.getresponse()
            return response.status, response.read()
        finally:
            conn.close()

    status, body = benchmark(fetch)
    assert status == 200
    assert b"fig2" in body or b"Country" in body
