"""Benchmark: Figure 3 — protocol share per country."""

import pytest

from repro.analysis.reports import fig3_protocol_country


@pytest.mark.benchmark(group="fig3")
def test_fig3_protocol_share_per_country(benchmark, frame, save_result):
    result = benchmark(fig3_protocol_country.compute, frame)
    save_result("fig3_protocol_country", fig3_protocol_country.render(result))

    # Germany's VPN anomaly: far more non-web TCP than Mediterranean
    # consumer markets (paper: ~35 %).
    if "Germany" in result.shares:
        assert result.share("Germany", "tcp/other") > 12.0
    # Ireland/U.K. carry more plain HTTP (Sky, Microsoft updates) than
    # African countries.
    for eu in ("Ireland", "UK"):
        if eu in result.shares:
            assert result.share(eu, "tcp/http") > result.share("Congo", "tcp/http")
    # African countries look alike: HTTPS within a narrow band.
    https = [
        result.share(c, "tcp/https")
        for c in ("Congo", "Nigeria", "South Africa")
        if c in result.shares
    ]
    assert max(https) - min(https) < 25.0
