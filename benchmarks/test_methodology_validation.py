"""Benchmark: Section 2.2 methodology — the packet-level ground-truth
validation of the probe (not a paper figure, but the paper's
measurement method itself)."""

import numpy as np
import pytest

from repro.internet.geo import GROUND_STATION
from repro.internet.latency import LatencyModel
from repro.pipeline import PacketSimConfig, run_packet_simulation


@pytest.mark.benchmark(group="methodology")
def test_packet_level_probe_validation(benchmark, save_result):
    result = benchmark(
        run_packet_simulation,
        PacketSimConfig(
            countries=("Spain", "Congo", "Ireland", "Nigeria"),
            flows_per_customer=5,
            seed=7,
        ),
    )

    tls = result.tls_records
    sats = np.array([r.sat_rtt_ms for r in tls])
    grounds = np.array([r.rtt_avg_ms for r in tls])
    lines = [
        "Methodology validation (packet-level, PEP split path)",
        f"TLS flows observed: {len(tls)}; all clients finished: "
        f"{all(c.result.complete for c in result.clients)}",
        f"satellite RTT (TLS method): min {sats.min():.0f} ms, "
        f"median {np.median(sats):.0f} ms",
        f"ground RTT (data-ACK): median {np.median(grounds):.1f} ms",
        f"DNS responses at probe: "
        f"{[round(r.dns_response_ms or 0, 1) for r in result.dns_records]}",
        f"DNS end-to-end (ground truth, incl. satellite): "
        f"{[round(v) for _, v in result.dns_ground_truth_ms]}",
    ]
    save_result("methodology_validation", "\n".join(lines))

    # The probe recovers the satellite segment: every estimate above
    # the propagation floor, far above the ground RTT.
    assert sats.min() > 480.0
    assert np.all(sats > 20 * grounds)
    # Ground RTT matches the Milan-IX server distance.
    expected = LatencyModel().base_rtt_ms(
        GROUND_STATION, result.network.internet.site("Milan-IX")
    )
    assert np.median(grounds) == pytest.approx(expected, rel=0.2)
    # The probe's DNS response time excludes the satellite; the user's
    # end-to-end time includes it (Section 6.3's interpretation).
    assert all(r.dns_response_ms < 200 for r in result.dns_records)
    assert all(v > 500 for _, v in result.dns_ground_truth_ms)
