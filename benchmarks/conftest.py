"""Benchmark fixtures.

Every table/figure benchmark consumes one shared synthetic capture
(session-scoped — generating it is itself benchmarked separately) and
writes its rendered paper-vs-measured table to ``benchmarks/results/``.
"""

from __future__ import annotations

from pathlib import Path

import pytest

from repro.pipeline import PacketSimConfig, run_packet_simulation
from repro.traffic.workload import WorkloadConfig, WorkloadGenerator

RESULTS_DIR = Path(__file__).parent / "results"

#: The standard evaluation capture: ~600 customers, 5 days.
BENCH_CONFIG = WorkloadConfig(n_customers=600, days=5, seed=2022)


@pytest.fixture(scope="session")
def generator() -> WorkloadGenerator:
    return WorkloadGenerator(BENCH_CONFIG)


@pytest.fixture(scope="session")
def frame(generator):
    return generator.generate()


@pytest.fixture(scope="session")
def packet_sim():
    return run_packet_simulation(
        PacketSimConfig(
            countries=("Spain", "Congo", "Ireland", "Nigeria", "UK", "South Africa"),
            flows_per_customer=8,
            seed=2022,
        )
    )


@pytest.fixture(scope="session")
def save_result():
    """Persist a rendered comparison table under benchmarks/results/."""
    RESULTS_DIR.mkdir(exist_ok=True)

    def _save(name: str, text: str) -> None:
        (RESULTS_DIR / f"{name}.txt").write_text(text + "\n", encoding="utf-8")
        print("\n" + text)

    return _save
