"""Benchmark fixtures.

Every table/figure benchmark consumes one shared synthetic capture
(session-scoped — generating it is itself benchmarked separately) and
writes its rendered paper-vs-measured table to ``benchmarks/results/``.
"""

from __future__ import annotations

import os
from pathlib import Path

import pytest

from repro.cache import CaptureCache
from repro.pipeline import PacketSimConfig, run_packet_simulation
from repro.scenario import get_scenario
from repro.traffic.workload import WorkloadGenerator

RESULTS_DIR = Path(__file__).parent / "results"

#: Captures persist across benchmark sessions here (override with
#: ``REPRO_BENCH_CACHE_DIR``; keyed by scenario digest, so editing
#: ``BENCH_SCENARIO`` or bumping ``repro.cache.CACHE_SALT`` regenerates).
CACHE_DIR = Path(
    os.environ.get("REPRO_BENCH_CACHE_DIR", Path(__file__).parent / ".cache")
)

#: The standard evaluation capture: ~600 customers, 5 days — exactly the
#: ``baseline-geo`` scenario, whose digest equals the legacy config key
#: (warm caches from before the scenario refactor still hit).
BENCH_SCENARIO = get_scenario("baseline-geo")
BENCH_CONFIG = BENCH_SCENARIO.workload_config()


@pytest.fixture(scope="session")
def generator() -> WorkloadGenerator:
    return BENCH_SCENARIO.build_generator()


@pytest.fixture(scope="session")
def frame(generator):
    cache = CaptureCache(CACHE_DIR)
    cached = cache.load(BENCH_SCENARIO)
    if cached is not None:
        return cached
    frame = generator.generate()
    cache.store(BENCH_SCENARIO, frame)
    return frame


@pytest.fixture(scope="session")
def packet_sim():
    return run_packet_simulation(
        PacketSimConfig(
            countries=("Spain", "Congo", "Ireland", "Nigeria", "UK", "South Africa"),
            flows_per_customer=8,
            seed=2022,
        )
    )


@pytest.fixture(scope="session")
def save_result():
    """Persist a rendered comparison table under benchmarks/results/."""
    RESULTS_DIR.mkdir(exist_ok=True)

    def _save(name: str, text: str) -> None:
        (RESULTS_DIR / f"{name}.txt").write_text(text + "\n", encoding="utf-8")
        print("\n" + text)

    return _save
