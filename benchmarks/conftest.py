"""Benchmark fixtures.

Every table/figure benchmark consumes one shared synthetic capture
(session-scoped — generating it is itself benchmarked separately) and
writes its rendered paper-vs-measured table to ``benchmarks/results/``.
"""

from __future__ import annotations

import os
from pathlib import Path

import pytest

from repro.cache import CaptureCache
from repro.pipeline import PacketSimConfig, run_packet_simulation
from repro.traffic.workload import WorkloadConfig, WorkloadGenerator

RESULTS_DIR = Path(__file__).parent / "results"

#: Captures persist across benchmark sessions here (override with
#: ``REPRO_BENCH_CACHE_DIR``; keyed by config content, so editing
#: ``BENCH_CONFIG`` or bumping ``repro.cache.CACHE_SALT`` regenerates).
CACHE_DIR = Path(
    os.environ.get("REPRO_BENCH_CACHE_DIR", Path(__file__).parent / ".cache")
)

#: The standard evaluation capture: ~600 customers, 5 days.
BENCH_CONFIG = WorkloadConfig(n_customers=600, days=5, seed=2022)


@pytest.fixture(scope="session")
def generator() -> WorkloadGenerator:
    return WorkloadGenerator(BENCH_CONFIG)


@pytest.fixture(scope="session")
def frame(generator):
    cache = CaptureCache(CACHE_DIR)
    cached = cache.load(BENCH_CONFIG)
    if cached is not None:
        return cached
    frame = generator.generate()
    cache.store(BENCH_CONFIG, frame)
    return frame


@pytest.fixture(scope="session")
def packet_sim():
    return run_packet_simulation(
        PacketSimConfig(
            countries=("Spain", "Congo", "Ireland", "Nigeria", "UK", "South Africa"),
            flows_per_customer=8,
            seed=2022,
        )
    )


@pytest.fixture(scope="session")
def save_result():
    """Persist a rendered comparison table under benchmarks/results/."""
    RESULTS_DIR.mkdir(exist_ok=True)

    def _save(name: str, text: str) -> None:
        (RESULTS_DIR / f"{name}.txt").write_text(text + "\n", encoding="utf-8")
        print("\n" + text)

    return _save
