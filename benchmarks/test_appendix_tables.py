"""Benchmark: appendix Tables 4–5 — ground RTT per second-level domain
and resolver for Congo/South Africa and Nigeria/U.K."""

import pytest

from repro.analysis.reports import appendix_ground_rtt


@pytest.mark.benchmark(group="appendix")
def test_appendix_tables_4_and_5(benchmark, frame, save_result):
    result = benchmark(
        appendix_ground_rtt.compute,
        frame,
        ("Congo", "South Africa", "Nigeria", "UK"),
    )
    text = "\n\n".join(
        appendix_ground_rtt.render(result, country)
        for country in ("Congo", "South Africa", "Nigeria", "UK")
    )
    save_result("appendix_tables", text)

    # Chinese platforms are slow from everywhere (qq.com ≈ 240–255 ms
    # in both appendix tables).
    qq = [rtt for (c, r, sld), rtt in result.mean_rtt_ms.items() if sld == "qq.com"]
    assert qq and min(qq) > 180.0

    # whatsapp.net: served by a global CDN — European cells cheap, a
    # distant resolver can still push African cells up (Table 5 shows
    # 23.6–119.4 ms for Nigeria).
    uk_whatsapp = [
        rtt
        for (c, r, sld), rtt in result.mean_rtt_ms.items()
        if c == "UK" and sld == "whatsapp.net"
    ]
    assert uk_whatsapp and max(uk_whatsapp) < 45.0

    # Resolver spread: African countries see a far wider spread across
    # resolvers than the U.K. does (the whole point of the appendix).
    def max_spread(country):
        spreads = [
            result.resolver_spread(country, sld) or 0.0
            for sld in result.top_domains[country]
        ]
        return max(spreads) if spreads else 0.0

    assert max_spread("Nigeria") > max_spread("UK")
    assert max_spread("Congo") > 50.0
