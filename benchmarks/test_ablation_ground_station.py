"""Ablation: add an African ground station (Section 6.2).

The paper: "They are already evaluating the possibility of setting up a
ground station in Africa to optimize traffic routing and reduce ground
RTT for those services located in Africa. In terms of performance, the
numbers are clearly in favor of this decision." We quantify it.
"""

import numpy as np
import pytest

from repro.analysis.aggregate import format_table
from repro.internet.geo import SERVER_SITES, Location
from repro.internet.latency import LatencyModel

#: Candidate African ground-station site (Lagos teleport).
AFRICAN_GS = Location("Lagos-GS", 6.52, 3.38, "Africa")

AFRICAN_SITES = ("Lagos", "Kinshasa", "Johannesburg", "Nairobi")
EUROPEAN_SITES = ("Milan-IX", "Frankfurt", "London")


def _median_rtt_by_site(frame, latency, ground_station):
    """Per-site ground RTT under a given ground-station location."""
    return {
        site: latency.base_rtt_ms(ground_station, SERVER_SITES[site])
        for site in AFRICAN_SITES + EUROPEAN_SITES
    }


@pytest.mark.benchmark(group="ablation")
def test_african_ground_station_ablation(benchmark, frame, save_result):
    latency = LatencyModel()
    from repro.internet.geo import GROUND_STATION

    baseline = benchmark(_median_rtt_by_site, frame, latency, GROUND_STATION)
    african = _median_rtt_by_site(frame, latency, AFRICAN_GS)

    rows = [
        (site, f"{baseline[site]:.0f}", f"{african[site]:.0f}",
         f"{baseline[site] - african[site]:+.0f}")
        for site in AFRICAN_SITES + EUROPEAN_SITES
    ]
    # Weight the improvement by the actual African traffic hitting
    # African sites in the capture.
    africa_mask = np.zeros(len(frame), dtype=bool)
    for country in ("Congo", "Nigeria", "South Africa"):
        africa_mask |= frame.country_mask(country)
    site_idx_of = {name: i for i, name in enumerate(frame.sites)}
    local_mask = np.isin(frame.site_idx, [site_idx_of[s] for s in AFRICAN_SITES])
    affected = float((africa_mask & local_mask).sum() / max(africa_mask.sum(), 1))

    save_result(
        "ablation_ground_station",
        format_table(
            ["Site", "GS=Italy ms", "GS=Lagos ms", "delta"],
            rows,
            title="Ablation: ground RTT with an African ground station",
        )
        + f"\nShare of African TCP flows hitting African sites: {affected * 100:.1f} %",
    )

    # African-hosted services improve massively — Lagos and
    # Johannesburg by more than half; Kinshasa keeps its local-peering
    # penalty but still gains tens of milliseconds.
    for site in ("Lagos", "Johannesburg"):
        assert african[site] < baseline[site] * 0.80, site
    assert african["Lagos"] < baseline["Lagos"] * 0.45
    assert baseline["Kinshasa"] - african["Kinshasa"] > 40.0
    # …at the cost of European sites (which is why one ground station
    # per continent, not a move, is the fix).
    for site in EUROPEAN_SITES:
        assert african[site] > baseline[site]
    # A measurable share of African traffic benefits.
    assert affected > 0.02
