"""Benchmark: Figure 10 — resolver adoption and response time."""

import numpy as np
import pytest

from repro.analysis.reports import fig10_dns


@pytest.mark.benchmark(group="fig10")
def test_fig10_dns_resolvers(benchmark, frame, save_result):
    result = benchmark(fig10_dns.compute, frame)
    save_result("fig10_dns", fig10_dns.render(result))

    # Median response times land on the paper's column (±25 %).
    for resolver, paper in fig10_dns.PAPER_MEDIAN_MS.items():
        measured = result.median_response_ms[resolver]
        assert measured == pytest.approx(paper, rel=0.25), resolver

    # Adoption structure: Google dominates Africa; the operator
    # resolver is a European habit; the Nigerian resolver is local.
    assert result.share("Google", "Congo") == pytest.approx(85.7, abs=12)
    assert result.share("Operator-EU", "Ireland") > 25
    assert result.share("Operator-EU", "Congo") < 8
    assert result.share("Nigerian", "Nigeria") > 6
    assert result.share("Nigerian", "UK") < 3
    # Chinese resolvers appear in Africa.
    assert result.share("114DNS", "Congo") > result.share("114DNS", "Spain")

    # The operator resolver is the fastest; Baidu the slowest.
    medians = result.median_response_ms
    assert min(medians, key=medians.get) == "Operator-EU"
    assert max(medians, key=medians.get) == "Baidu"
