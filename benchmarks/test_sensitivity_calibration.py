"""Sensitivity analysis: the reproduced shapes must be robust bands,
not knife-edge calibrations.

We perturb the two most influential fitted parameters — the PEP
setup-delay scale (drives Congo's tail) and the channel decay constant
(drives Ireland's tail) — by ±40 % and check that Figure 8a's
qualitative claims survive every corner.
"""

import numpy as np
import pytest

from repro.analysis.aggregate import format_table
from repro.internet.geo import COUNTRIES
from repro.satcom.delay_model import SatelliteRttModel
from repro.scenario import get_scenario


def _fig8_stats(model: SatelliteRttModel, rng) -> dict:
    out = {}
    for country, hour_local in (("Congo", 3.0), ("Spain", 3.0), ("Ireland", 19.0)):
        hour_utc = (hour_local - COUNTRIES[country].lon_deg / 15.0) % 24
        beams = model.beam_map.beams_for(country)
        samples = np.concatenate(
            [model.sample_handshake_rtt_s(country, hour_utc, rng, 1500, beam=b) for b in beams]
        )
        out[country] = {
            "under_1s": float((samples < 1.0).mean()),
            "over_2s": float((samples > 2.0).mean()),
            "min": float(samples.min()),
        }
    return out


def _sweep(rng):
    baseline = get_scenario("baseline-geo")
    results = {}
    for pep_factor in (0.6, 1.0, 1.4):
        for decay_factor in (0.6, 1.0, 1.4):
            model = baseline.with_overrides(
                {
                    "pep.setup_scale_s": baseline.pep.setup_scale_s * pep_factor,
                    "channel.decay_deg": baseline.channel.decay_deg * decay_factor,
                }
            ).build_rtt_model()
            results[(pep_factor, decay_factor)] = _fig8_stats(model, rng)
    return results


@pytest.mark.benchmark(group="sensitivity")
def test_calibration_sensitivity(benchmark, save_result):
    rng = np.random.default_rng(13)
    results = benchmark(_sweep, rng)

    rows = []
    for (pep, decay), stats in results.items():
        rows.append(
            (
                f"{pep:.1f}x",
                f"{decay:.1f}x",
                f"{stats['Spain']['under_1s'] * 100:.0f} %",
                f"{stats['Congo']['over_2s'] * 100:.0f} %",
                f"{stats['Ireland']['over_2s'] * 100:.0f} %",
            )
        )
    save_result(
        "sensitivity_calibration",
        format_table(
            ["PEP scale", "decay", "Spain night <1s", "Congo night >2s", "Ireland peak >2s"],
            rows,
            title="Sensitivity: Figure 8a claims under ±40 % parameter perturbation",
        ),
    )

    for stats in results.values():
        # the physical floor is parameter-independent
        for country in ("Congo", "Spain", "Ireland"):
            assert stats[country]["min"] > 0.5
        # Spain stays clearly better than Congo at night in every corner
        assert stats["Spain"]["under_1s"] > 0.55
        assert stats["Congo"]["over_2s"] > stats["Spain"]["over_2s"]
        assert stats["Congo"]["over_2s"] > 0.03
