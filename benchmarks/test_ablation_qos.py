"""Ablation: the ground station's QoS scheduler (Section 2.1).

The operator "uses L3/L4 and domain name-specific rules to prioritize
interactive traffic and shape video streaming flows". We measure what
that machinery buys on a congested downlink.
"""

import pytest

from repro.analysis.aggregate import format_table
from repro.satcom.qos import TrafficClass
from repro.satcom.qos_sim import run_qos_scenario
from repro.scenario import get_scenario


@pytest.mark.benchmark(group="ablation")
def test_qos_scheduler_ablation(benchmark, save_result):
    config = get_scenario("baseline-geo").qos_config()
    with_qos = benchmark(run_qos_scenario, config, True)
    without_qos = run_qos_scenario(config, use_scheduler=False)

    rows = [
        (
            cls.name.lower(),
            f"{with_qos.latency_ms(cls):.1f}",
            f"{without_qos.latency_ms(cls):.1f}",
            with_qos.delivered[cls],
        )
        for cls in TrafficClass
    ]
    save_result(
        "ablation_qos",
        format_table(
            ["Class", "QoS latency ms", "FIFO latency ms", "delivered"],
            rows,
            title="Ablation: priority scheduling + video shaping on a congested downlink",
        ),
    )

    # Interactive traffic: milliseconds with QoS, seconds without.
    assert with_qos.latency_ms(TrafficClass.INTERACTIVE) < 20.0
    assert without_qos.latency_ms(TrafficClass.INTERACTIVE) > 500.0
    # Web also protected.
    assert with_qos.latency_ms(TrafficClass.WEB) < 50.0
    # The cost lands on the shaped video class, by design.
    assert with_qos.latency_ms(TrafficClass.VIDEO) > without_qos.latency_ms(
        TrafficClass.VIDEO
    )
    # Same work gets delivered either way (no starvation of delivery).
    for cls in (TrafficClass.INTERACTIVE, TrafficClass.WEB):
        assert with_qos.delivered[cls] > 0.9 * max(without_qos.delivered[cls], 1)
