"""Extension benchmark: page-load QoE — GEO countries vs other access
technologies (the study the released ERRANT model enables)."""

import pytest

from repro.analysis.reports import web_qoe


@pytest.mark.benchmark(group="extension")
def test_web_qoe_extension(benchmark, frame, save_result):
    result = benchmark(web_qoe.compute, frame)
    save_result("extension_web_qoe", web_qoe.render(result))

    # Every GEO country loads pages slower than Starlink, which is
    # slower than FTTH — the cross-technology ordering of [26].
    slowest_geo = max(stats.median for stats in result.country_plt.values())
    fastest_geo = min(stats.median for stats in result.country_plt.values())
    assert fastest_geo > result.median_plt("starlink")
    assert result.median_plt("starlink") > result.median_plt("ftth")

    # Congested Congo is the worst place to browse from.
    assert result.median_plt("Congo") == pytest.approx(slowest_geo, rel=0.01)
    # GEO pages take many seconds; FTTH stays within a couple.
    assert result.median_plt("Congo") > 5.0
    assert result.median_plt("ftth") < 2.5
