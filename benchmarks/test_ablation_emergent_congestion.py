"""Ablation: configured vs emergent beam congestion.

The default pipeline stamps satellite RTTs from the *configured* beam
loads (DESIGN.md §5 calls these calibration inputs). Closing the loop —
deriving each beam's hourly load from the traffic the population
actually generated — tests that Figure 8's story is mechanistic: Congo's
congestion should *emerge* from community-AP traffic without being
configured anywhere.
"""

import numpy as np
import pytest

from repro.analysis.aggregate import format_table
from repro.analysis.reports import fig8_satellite_rtt
from repro.traffic.congestion import EmergentCongestion


@pytest.mark.benchmark(group="ablation")
def test_emergent_congestion_ablation(benchmark, frame, generator, save_result):
    emergent = benchmark(EmergentCongestion.from_frame, frame, generator.beam_map)
    rng = np.random.default_rng(5)
    restamped = emergent.restamp(frame, generator.rtt_model, rng)

    configured = fig8_satellite_rtt.compute_fig8a(frame)
    measured = fig8_satellite_rtt.compute_fig8a(restamped)

    rows = []
    for country in ("Congo", "Nigeria", "Spain", "UK"):
        rows.append(
            (
                country,
                f"{configured.quartiles_ms(country, 'peak')[1]:.0f}",
                f"{measured.quartiles_ms(country, 'peak')[1]:.0f}",
                f"{configured.fraction_over(country, 'peak', 2000.0) * 100:.0f} %",
                f"{measured.fraction_over(country, 'peak', 2000.0) * 100:.0f} %",
            )
        )
    busiest = ", ".join(
        f"{beam}={util:.2f}" for beam, util in emergent.busiest_beams(4).items()
    )
    save_result(
        "ablation_emergent_congestion",
        format_table(
            ["Country", "cfg med ms", "emergent med ms", "cfg >2s", "emergent >2s"],
            rows,
            title="Ablation: configured vs traffic-derived beam congestion (peak)",
        )
        + f"\nBusiest emergent beams: {busiest}",
    )

    # The hot beams *emerge* where the community APs are.
    busiest_ids = list(emergent.busiest_beams(4))
    assert any(b.startswith("congo") for b in busiest_ids[:3])

    # Figure 8's qualitative story survives the feedback loop.
    assert measured.fraction_over("Congo", "peak", 2000.0) > 0.05
    assert measured.quartiles_ms("Congo", "peak")[1] > measured.quartiles_ms(
        "Spain", "peak"
    )[1]
    # Spain stays comfortable either way.
    assert measured.fraction_under("Spain", "night", 1000.0) > 0.6
