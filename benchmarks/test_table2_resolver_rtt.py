"""Benchmark: Table 2 (and appendix Tables 4–5) — ground RTT per
domain × resolver × country."""

import pytest

from repro.analysis.reports import table2_resolver_rtt


@pytest.mark.benchmark(group="table2")
def test_table2_resolver_rtt(benchmark, frame, save_result):
    result = benchmark(
        table2_resolver_rtt.compute,
        frame,
        ("UK", "Nigeria", "Congo", "South Africa"),
    )
    save_result("table2_resolver_rtt", table2_resolver_rtt.render(result))

    # U.K.: resolver choice barely matters (all cells in Europe).
    uk_cells = [
        result.rtt("UK", resolver, "captive.apple.com")
        for resolver in ("Operator-EU", "Google", "CloudFlare", "Open DNS")
    ]
    uk_cells = [v for v in uk_cells if v is not None]
    assert uk_cells and max(uk_cells) < 45.0

    # Nigeria on the operator resolver stays in Europe…
    op = result.rtt("Nigeria", "Operator-EU", "captive.apple.com")
    assert op is not None and op < 40.0
    # …but the Chinese resolver drags Apple fetches to Asian nodes
    # (paper: 110.4 ms via 114DNS).
    chinese = result.rtt("Nigeria", "114DNS", "play.googleapis.com") or result.rtt(
        "Nigeria", "114DNS", "captive.apple.com"
    )
    assert chinese is not None and chinese == pytest.approx(110.0, rel=0.35)

    # Anycast-served domains are immune to the resolver choice.
    nflx = [
        result.rtt(country, resolver, "*.nflxvideo.net")
        for country in ("UK", "Nigeria")
        for resolver in ("Operator-EU", "Google", "Nigerian", "114DNS")
    ]
    nflx = [v for v in nflx if v is not None]
    assert nflx and max(nflx) < 40.0

    # Appendix flavour: Chinese second-level domains are slow from
    # everywhere (qq.com ≈ 240–255 ms).
    qq = [
        result.rtt(country, resolver, "qq.com")
        for country in ("Congo", "Nigeria")
        for resolver in ("Operator-EU", "Google", "114DNS", "Baidu")
    ]
    qq = [v for v in qq if v is not None]
    assert qq and min(qq) > 180.0
