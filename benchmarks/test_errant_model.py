"""Benchmark: the released ERRANT data-driven model — fit GEO profiles
from the measured dataset and compare against other technologies."""

import pytest

from repro.errant.emulator import compare_profiles
from repro.errant.model import fit_profile
from repro.errant.profiles import BUILTIN_PROFILES


@pytest.mark.benchmark(group="errant")
def test_errant_model_fit_and_comparison(benchmark, frame, save_result):
    profile = benchmark(fit_profile, frame, "Spain")

    profiles = dict(BUILTIN_PROFILES)
    profiles[profile.name] = profile
    profiles["geo-satcom-congo-peak"] = fit_profile(frame, "Congo", peak_only=True)
    times = compare_profiles(profiles, size_bytes=1_000_000, n=250, seed=1)

    lines = ["ERRANT profile comparison — mean time to fetch 1 MB (s)"]
    for name, value in sorted(times.items(), key=lambda kv: kv[1]):
        lines.append(f"  {name:28s} {value:6.2f}")
    lines.append(
        f"fitted {profile.name}: rtt median {profile.rtt_median_ms:.0f} ms, "
        f"down median {profile.down_median_mbps:.1f} Mb/s"
    )
    save_result("errant_model", "\n".join(lines))

    # Fitted GEO profile carries the 550 ms floor.
    assert profile.rtt_median_ms > 550.0
    # Technology ordering: FTTH < Starlink < GEO (the comparison the
    # paper's released model enables, with Starlink data from [26]).
    assert times["ftth"] < times["starlink"] < times[profile.name]
    # Congested Congo at peak is the slowest GEO flavour.
    assert times["geo-satcom-congo-peak"] >= times[profile.name] * 0.9
