"""Benchmark: Figure 6 — service-popularity heatmap."""

import numpy as np
import pytest

from repro.analysis.reports import fig6_service_popularity


@pytest.mark.benchmark(group="fig6")
def test_fig6_service_popularity(benchmark, frame, save_result):
    result = benchmark(fig6_service_popularity.compute, frame)
    save_result("fig6_service_popularity", fig6_service_popularity.render(result))

    # Mean absolute error vs the published heatmap stays small.
    errors = []
    for service, row in fig6_service_popularity.PAPER_MATRIX.items():
        for country, paper in row.items():
            measured = result.popularity(service, country)
            errors.append(abs(measured - paper))
    assert np.mean(errors) < 8.0

    # Headline orderings of Section 5.
    assert result.popularity("Whatsapp", "Congo") > 45  # chat rivals Google
    assert result.popularity("Wechat", "Congo") > result.popularity("Wechat", "Spain")
    assert result.popularity("Netflix", "Ireland") > result.popularity("Netflix", "Congo")
    assert result.popularity("Primevideo", "UK") > result.popularity("Primevideo", "Nigeria")
    # TikTok trails Instagram by a few points everywhere.
    for country in ("Congo", "Spain", "UK"):
        assert result.popularity("Tiktok", country) < result.popularity("Instagram", country) + 8
