"""Fail CI when generator throughput regresses past the recorded baseline.

Usage::

    PYTHONPATH=src python -m pytest benchmarks/test_micro_performance.py \
        --benchmark-json=/tmp/bench.json
    python benchmarks/check_regression.py /tmp/bench.json

Compares the mean of the benchmark named in ``BENCH_parallel.json``'s
``regression_guard`` block against ``baseline_mean_ms`` and exits
non-zero when the slowdown exceeds ``max_slowdown``. The factor is
deliberately loose (2x) so shared-runner noise does not flake the
build; a genuine hot-path regression blows well past it.
"""

from __future__ import annotations

import json
import sys
from pathlib import Path

REPO_ROOT = Path(__file__).resolve().parent.parent


def main(argv: list[str]) -> int:
    if len(argv) != 2:
        print(__doc__)
        return 2
    guard = json.loads((REPO_ROOT / "BENCH_parallel.json").read_text())[
        "regression_guard"
    ]
    results = json.loads(Path(argv[1]).read_text())
    matches = [
        bench
        for bench in results["benchmarks"]
        if bench["name"] == guard["benchmark"]
    ]
    if not matches:
        print(f"error: benchmark {guard['benchmark']!r} not found in {argv[1]}")
        return 2
    mean_ms = matches[0]["stats"]["mean"] * 1000.0
    limit_ms = guard["baseline_mean_ms"] * guard["max_slowdown"]
    verdict = "OK" if mean_ms <= limit_ms else "REGRESSION"
    print(
        f"{guard['benchmark']}: mean {mean_ms:.1f} ms, "
        f"baseline {guard['baseline_mean_ms']:.1f} ms, "
        f"limit {limit_ms:.1f} ms ({guard['max_slowdown']}x) -> {verdict}"
    )
    return 0 if verdict == "OK" else 1


if __name__ == "__main__":
    raise SystemExit(main(sys.argv))
