"""Fail CI when a guarded hot path regresses past its recorded baseline.

Usage::

    PYTHONPATH=src python -m pytest benchmarks/test_micro_performance.py \
        --benchmark-json=/tmp/bench.json
    python benchmarks/check_regression.py /tmp/bench.json

Collects guard rows from ``BENCH_parallel.json``'s ``regression_guard``
block (a single row or a list of rows) and the ``regression_guards``
lists of ``BENCH_stream.json``, ``BENCH_fleet.json`` and
``BENCH_serve.json``, compares each row's benchmark mean against
``baseline_mean_ms``, and exits non-zero when any slowdown exceeds that
row's ``max_slowdown``. The factors are deliberately loose (2x+) so
shared-runner noise does not flake the build; a genuine hot-path
regression blows well past them.
"""

from __future__ import annotations

import json
import sys
from pathlib import Path

REPO_ROOT = Path(__file__).resolve().parent.parent


def _load_guards() -> list[dict]:
    guards: list[dict] = []
    parallel = json.loads((REPO_ROOT / "BENCH_parallel.json").read_text())
    block = parallel.get("regression_guard", [])
    guards.extend(block if isinstance(block, list) else [block])
    stream = json.loads((REPO_ROOT / "BENCH_stream.json").read_text())
    guards.extend(stream.get("regression_guards", []))
    fleet = json.loads((REPO_ROOT / "BENCH_fleet.json").read_text())
    guards.extend(fleet.get("regression_guards", []))
    serve = json.loads((REPO_ROOT / "BENCH_serve.json").read_text())
    guards.extend(serve.get("regression_guards", []))
    return guards


def main(argv: list[str]) -> int:
    if len(argv) != 2:
        print(__doc__)
        return 2
    results = json.loads(Path(argv[1]).read_text())
    by_name = {bench["name"]: bench for bench in results["benchmarks"]}
    guards = _load_guards()
    if not guards:
        print("error: no regression guards recorded in the BENCH files")
        return 2
    failed = False
    for guard in guards:
        bench = by_name.get(guard["benchmark"])
        if bench is None:
            print(
                f"error: benchmark {guard['benchmark']!r} not found in {argv[1]}"
            )
            return 2
        mean_ms = bench["stats"]["mean"] * 1000.0
        limit_ms = guard["baseline_mean_ms"] * guard["max_slowdown"]
        verdict = "OK" if mean_ms <= limit_ms else "REGRESSION"
        failed |= verdict != "OK"
        print(
            f"{guard['benchmark']}: mean {mean_ms:.1f} ms, "
            f"baseline {guard['baseline_mean_ms']:.1f} ms, "
            f"limit {limit_ms:.1f} ms ({guard['max_slowdown']}x) -> {verdict}"
        )
    return 1 if failed else 0


if __name__ == "__main__":
    raise SystemExit(main(sys.argv))
