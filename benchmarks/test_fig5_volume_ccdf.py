"""Benchmark: Figure 5 — per-customer daily flows/volume CCDFs."""

import pytest

from repro.analysis.reports import fig5_volumes


@pytest.mark.benchmark(group="fig5")
def test_fig5_volume_ccdfs(benchmark, frame, save_result):
    result = benchmark(fig5_volumes.compute, frame)
    save_result("fig5_volumes", fig5_volumes.render(result))

    # (a) the European idle knee: >50 % of customers under 250 flows/day.
    assert result.idle_fraction("Spain") > 0.45
    assert result.idle_fraction("UK") > 0.45
    # African customers generate several times more flows.
    assert result.median_flows("Congo") > 3 * result.median_flows("Spain")
    # (b) heavy downloaders: Congo ≈ 2× Spain (paper 8 % vs 4 %).
    assert result.heavy_downloader_pct("Congo") > 1.3 * result.heavy_downloader_pct("Spain")
    # (c) heavy uploaders: Africa clearly above Europe.
    assert result.heavy_uploader_pct("Congo") > result.heavy_uploader_pct("Ireland")
    assert result.heavy_uploader_pct("Nigeria") > 3.0
