"""Benchmark: Table 1 — protocol volume breakdown."""

import pytest

from repro.analysis.reports import table1_protocols


@pytest.mark.benchmark(group="table1")
def test_table1_protocol_breakdown(benchmark, frame, save_result):
    result = benchmark(table1_protocols.compute, frame)
    save_result("table1_protocols", table1_protocols.render(result))

    # Shape assertions: ordering and magnitudes of Table 1.
    assert result.share("tcp/https") == pytest.approx(56.0, abs=8.0)
    assert result.share("udp/quic") == pytest.approx(19.6, abs=6.0)
    assert result.share("tcp/http") == pytest.approx(12.1, abs=6.0)
    assert result.share("tcp/other") == pytest.approx(7.0, abs=5.0)
    assert result.share("udp/dns") < 0.1
    assert (
        result.share("tcp/https")
        > result.share("udp/quic")
        > result.share("tcp/http")
        > result.share("udp/rtp")
    )
