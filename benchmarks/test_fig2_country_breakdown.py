"""Benchmark: Figure 2 — per-country volume and customer shares."""

import pytest

from repro.analysis.reports import fig2_country


@pytest.mark.benchmark(group="fig2")
def test_fig2_country_breakdown(benchmark, frame, save_result):
    result = benchmark(fig2_country.compute, frame)
    congo_mb = fig2_country.mean_daily_download_mb(frame, "Congo")
    spain_mb = fig2_country.mean_daily_download_mb(frame, "Spain")
    save_result(
        "fig2_country",
        fig2_country.render(result)
        + f"\nMean daily download: Congo {congo_mb:.0f} MB (paper ~600), "
        f"Spain {spain_mb:.0f} MB (paper ~170)",
    )

    # Congo over-indexes (27 % volume on 20 % customers), Spain
    # under-indexes (10 % on 16 %).
    assert result.over_indexes("Congo")
    assert not result.over_indexes("Spain")
    congo_vol, congo_cust = result.shares("Congo")
    assert congo_cust == pytest.approx(20.0, abs=4.0)
    assert congo_vol > congo_cust + 4.0
    # African subscriptions move several times more data each
    assert congo_mb > 2.5 * spain_mb
