"""Benchmark: Figure 11 — download throughput per customer."""

import numpy as np
import pytest

from repro.analysis.reports import fig11_throughput


@pytest.mark.benchmark(group="fig11")
def test_fig11_throughput(benchmark, frame, save_result):
    result = benchmark(fig11_throughput.compute, frame)
    save_result("fig11_throughput", fig11_throughput.render(result))

    # Europe clearly faster than Africa over bulk flows.
    europe = np.mean([result.median_mbps(c) for c in ("Spain", "UK", "Ireland")])
    africa = np.mean([result.median_mbps(c) for c in ("Congo", "Nigeria", "South Africa")])
    assert europe > 1.8 * africa

    # European plans (30/50/100) produce a CCDF tail above 25 Mb/s;
    # African plans (10/30) barely reach it.
    assert result.fraction_above("Spain", 25.0) > 0.15
    assert result.fraction_above("Congo", 25.0) < 0.05

    # Knees live near plan rates: some European flows saturate ~100 Mb/s
    # plans, none exceed them.
    assert result.fraction_above("UK", 80.0) > 0.01
    assert result.fraction_above("UK", 105.0) == 0.0

    # Night vs peak: throughput drops at peak, most visibly in Congo.
    assert result.peak_degradation("Congo") > 0.05
    assert result.night_boxes["Congo"].median > result.peak_boxes["Congo"].median
