"""Benchmark: Figure 9 — ground-segment RTT per country."""

import numpy as np
import pytest

from repro.analysis.reports import fig9_ground_rtt


@pytest.mark.benchmark(group="fig9")
def test_fig9_ground_rtt(benchmark, frame, save_result):
    result = benchmark(fig9_ground_rtt.compute, frame)
    save_result("fig9_ground_rtt", fig9_ground_rtt.render(result))

    # European traffic: >80 % under ~40 ms (peered + European CDNs).
    for country in ("Spain", "UK", "Ireland"):
        assert result.fraction_below(country, 40.0) > 0.80, country

    # The ~12 ms peered-CDN bump exists (mass below 15 ms).
    assert result.fraction_below("UK", 15.0) > 0.20

    # African countries see *higher* ground RTT than Europe —
    # the single-ground-station detour.
    africa = np.mean([result.median_ms(c) for c in ("Congo", "Nigeria", "South Africa")])
    europe = np.mean([result.median_ms(c) for c in ("Spain", "UK", "Ireland")])
    assert africa > europe

    # The 300–400 ms right bumps (local African/Chinese services).
    assert result.fraction_above("Congo", 250.0) > 0.01
    assert result.fraction_above("Congo", 250.0) > 3 * result.fraction_above("Spain", 250.0)
