"""Benchmark: Figure 8 — satellite-segment RTT (night/peak, per beam)."""

import pytest

from repro.analysis.reports import fig8_satellite_rtt


@pytest.mark.benchmark(group="fig8")
def test_fig8_satellite_rtt(benchmark, frame, save_result):
    result_a = benchmark(fig8_satellite_rtt.compute_fig8a, frame)
    result_b = fig8_satellite_rtt.compute_fig8b(frame)
    save_result("fig8_satellite_rtt", fig8_satellite_rtt.render(result_a, result_b))

    # The 550 ms headline: no sample below the physical floor.
    for country in result_a.samples:
        assert result_a.minimum_ms(country) > 520.0, country

    # Spain at night: ~82 % of samples under 1 s (best of the six).
    spain_night = result_a.fraction_under("Spain", "night", 1000.0)
    assert spain_night == pytest.approx(0.82, abs=0.09)
    for other in ("Congo", "Ireland", "UK", "South Africa"):
        assert result_a.fraction_under(other, "night", 1000.0) <= spain_night + 0.03

    # Congo: heavy tail already off-peak (paper ~20 % above 2 s), worse
    # at peak.
    assert result_a.fraction_over("Congo", "night", 2000.0) > 0.08
    assert result_a.fraction_over("Congo", "peak", 2000.0) > result_a.fraction_over(
        "Congo", "night", 2000.0
    )

    # Ireland: variability is load-independent (channel impairments).
    night_tail = result_a.fraction_over("Ireland", "night", 1500.0)
    peak_tail = result_a.fraction_over("Ireland", "peak", 1500.0)
    assert abs(night_tail - peak_tail) < 0.08

    # Figure 8b: Congo's beams sit high regardless of utilization;
    # Spain's beams sit low.
    congo = [m for _, c, m, _ in result_b.rows if c == "Congo"]
    spain = [m for _, c, m, _ in result_b.rows if c == "Spain"]
    assert min(congo) > max(spain)
