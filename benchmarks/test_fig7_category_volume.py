"""Benchmark: Figure 7 — per-category daily volume boxplots."""

import pytest

from repro.analysis.reports import fig7_service_volume
from repro.traffic.services import ServiceCategory


@pytest.mark.benchmark(group="fig7")
def test_fig7_category_volumes(benchmark, frame, save_result):
    result = benchmark(fig7_service_volume.compute, frame)
    save_result("fig7_service_volume", fig7_service_volume.render(result))

    chat_congo = result.median_mb(ServiceCategory.CHAT, "Congo")
    chat_spain = result.median_mb(ServiceCategory.CHAT, "Spain")
    social_congo = result.median_mb(ServiceCategory.SOCIAL, "Congo")

    # Paper: Congo chat median ≈250 MB vs <10 MB in Europe.
    assert chat_congo == pytest.approx(250.0, rel=0.5)
    assert chat_spain < 30.0
    assert chat_congo > 8 * chat_spain
    # Social: ≈300 MB in Congo vs ≈30 MB in Europe.
    assert social_congo == pytest.approx(300.0, rel=0.6)
    # Community APs: top-5 % chat days above ~2 GB.
    assert result.p95_mb(ServiceCategory.CHAT, "Congo") > 1000.0
    # Video differences are smaller than chat differences.
    video_ratio = result.median_mb(ServiceCategory.VIDEO, "Congo") / result.median_mb(
        ServiceCategory.VIDEO, "Spain"
    )
    chat_ratio = chat_congo / chat_spain
    assert video_ratio < chat_ratio / 3
    # Audio is small everywhere.
    for country in ("Congo", "Spain"):
        assert result.median_mb(ServiceCategory.AUDIO, country) < 60.0
