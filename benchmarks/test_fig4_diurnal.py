"""Benchmark: Figure 4 — daily traffic trends per country."""

import pytest

from repro.analysis.reports import fig4_diurnal


@pytest.mark.benchmark(group="fig4")
def test_fig4_diurnal_patterns(benchmark, frame, save_result):
    result = benchmark(fig4_diurnal.compute, frame)
    save_result("fig4_diurnal", fig4_diurnal.render(result))

    # Europe: evening prime time 18:00–20:00 UTC.
    for country in ("Spain", "UK"):
        assert 16 <= result.peak_hour_utc(country) <= 21, country
    # Congo's absolute peak lands in the morning, ~9:00 UTC.
    assert 7 <= result.peak_hour_utc("Congo") <= 12
    # African morning usage ≥ ~85 % of peak; Europe sags to ~50 %.
    assert result.morning_level("Congo") > 0.75
    assert result.morning_level("Nigeria") > 0.75
    assert result.morning_level("UK") < 0.6
    # Night floor: Africa ~40 %, Europe ~20 % (of peak).
    assert result.night_floor("Congo") > result.night_floor("Spain")
