"""Ablation: the PEP itself (Section 2.1).

The operator "relies heavily on a PEP to improve TCP performance on the
satellite segment". We quantify what split TCP buys across object sizes
on a GEO link, and confirm it is irrelevant on a terrestrial one.
"""

import pytest

from repro.analysis.aggregate import format_table
from repro.satcom.pagefetch import (
    FetchParameters,
    fetch_time_with_pep,
    fetch_time_without_pep,
    pep_speedup,
)

SIZES = (10_000, 100_000, 1_000_000, 10_000_000, 100_000_000)


def _sweep(satellite_rtt_s: float, rate_bps: float):
    rows = []
    for size in SIZES:
        params = FetchParameters(
            size_bytes=size,
            satellite_rtt_s=satellite_rtt_s,
            ground_rtt_s=0.02,
            rate_bps=rate_bps,
        )
        rows.append(
            (
                size,
                fetch_time_with_pep(params),
                fetch_time_without_pep(params),
                pep_speedup(params),
            )
        )
    return rows


@pytest.mark.benchmark(group="ablation")
def test_pep_ablation(benchmark, save_result):
    geo = benchmark(_sweep, 0.60, 30e6)
    terrestrial = _sweep(0.02, 30e6)

    table = format_table(
        ["Object bytes", "with PEP s", "without PEP s", "speedup"],
        [(f"{s:,}", f"{w:.2f}", f"{wo:.2f}", f"{sp:.2f}x") for s, w, wo, sp in geo],
        title="Ablation: PEP on a GEO link (600 ms sat RTT, 30 Mb/s plan)",
    )
    save_result("ablation_pep", table)

    speedups = {size: sp for size, _, _, sp in geo}
    # The PEP always helps on GEO; most for mid-size objects where slow
    # start dominates.
    assert all(sp > 1.2 for sp in speedups.values())
    assert speedups[1_000_000] > speedups[100_000_000]
    assert speedups[1_000_000] > 2.0
    # Large transfers converge to the serialized rate (speedup → 1).
    assert speedups[100_000_000] < 1.5
    # On a terrestrial link the PEP saves a fraction of a second at
    # most — on GEO it saves several seconds (that's why SatCom
    # operators deploy it and ISPs don't).
    geo_savings = {size: wo - w for size, w, wo, _ in geo}
    terrestrial_savings = {size: wo - w for size, w, wo, _ in terrestrial}
    assert all(saving < 0.5 for saving in terrestrial_savings.values())
    assert geo_savings[1_000_000] > 4.0
    assert geo_savings[1_000_000] > 10 * terrestrial_savings[1_000_000]
