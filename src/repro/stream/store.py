"""Spill-to-disk flow store for streaming captures.

A capture directory is the streaming analogue of the one-shot
``capture.npz``: one compressed npz *shard file per window* under
``windows/``, plus a small JSON ``manifest.json`` holding everything
needed to interpret them (schema version, categorical pools, the
window plan, the capture's content key). Windows are appended as the
producer emits them and never rewritten after the checkpoint covering
them commits; reads are lazy — iterate window by window, optionally
projecting a subset of columns, without ever materializing the full
capture.

Layout::

    capture-dir/
      manifest.json          # schema, pools, windows, capture key
      windows/
        window-00000.npz     # columns of window 0 (pools live in the
        window-00001.npz     #   manifest, not per shard file)
        ...
      rollup.npz             # mergeable rollup state (checkpoint.py)
      checkpoint.json        # resume cursor + telemetry (checkpoint.py)

All writes go through :func:`repro.faults.atomic_write_bytes` (temp
file + fsync + ``os.replace``), so a killed capture never leaves a
torn window or manifest behind; transient IO errors are retried with
backoff by the store's :class:`~repro.faults.FaultInjector` (the
disabled :data:`~repro.faults.NO_FAULTS` unless a fault plan is
armed). Corrupt artifacts surface as
:class:`~repro.analysis.source.CaptureError` with a diagnosis, never
a raw decoder traceback.
"""

from __future__ import annotations

import json
import threading
import zipfile
import zlib
from dataclasses import dataclass
from pathlib import Path
from typing import Dict, Iterator, List, Optional, Sequence, Tuple, Union

import numpy as np

from repro.analysis.dataset import _ARRAY_FIELDS, _POOL_FIELDS, FlowFrame
from repro.analysis.source import CaptureError
from repro.faults import NO_FAULTS, FaultInjector, atomic_write_bytes

#: Bump on layout changes; old directories then refuse to resume
#: instead of silently mixing schemas.
STORE_SCHEMA = 1

_MANIFEST = "manifest.json"
_WINDOWS_DIR = "windows"

#: What a corrupt npz raises, depending on where the damage landed
#: (zip directory, member CRC, npy header, compressed payload).
_NPZ_CORRUPTION = (
    OSError,
    EOFError,
    ValueError,
    KeyError,
    zipfile.BadZipFile,
    zlib.error,
)


@dataclass(frozen=True)
class WindowEntry:
    """One window's row in the manifest."""

    index: int
    day_lo: int
    day_hi: int


class FlowStore:
    """Append-only windowed capture directory.

    Thread contract: the pipelined producer writes windows from a
    background commit thread while the main thread may still be reading
    store metadata, so the lazy manifest load is guarded by a lock.
    Window files themselves need no locking — each window is written
    exactly once, atomically, by a single thread.
    """

    def __init__(
        self,
        directory: Union[str, Path],
        injector: Optional[FaultInjector] = None,
    ) -> None:
        self.directory = Path(directory)
        self.injector = injector if injector is not None else NO_FAULTS
        self._manifest: Optional[dict] = None
        self._manifest_lock = threading.Lock()

    # -- lifecycle -----------------------------------------------------

    @classmethod
    def create(
        cls,
        directory: Union[str, Path],
        pools: Dict[str, List[str]],
        windows: Sequence[WindowEntry],
        capture_key: str,
        config: dict,
        compress: bool = True,
        injector: Optional[FaultInjector] = None,
    ) -> "FlowStore":
        """Initialize a capture directory and publish its manifest."""
        store = cls(directory, injector=injector)
        manifest = {
            "schema": STORE_SCHEMA,
            "capture_key": capture_key,
            "config": config,
            "compress": bool(compress),
            "pools": {name: list(pools[name]) for name in _POOL_FIELDS},
            "windows": [
                {"index": w.index, "day_lo": w.day_lo, "day_hi": w.day_hi}
                for w in windows
            ],
        }
        store.directory.mkdir(parents=True, exist_ok=True)
        (store.directory / _WINDOWS_DIR).mkdir(exist_ok=True)
        atomic_write_bytes(
            store.directory / _MANIFEST,
            lambda h: h.write(json.dumps(manifest, indent=2).encode()),
            injector=store.injector,
            op="store.manifest",
        )
        store._manifest = manifest
        return store

    @classmethod
    def open(
        cls,
        directory: Union[str, Path],
        injector: Optional[FaultInjector] = None,
    ) -> "FlowStore":
        """Open an existing capture directory (validates the schema)."""
        store = cls(directory, injector=injector)
        store.manifest  # force load + validation
        return store

    @property
    def manifest(self) -> dict:
        with self._manifest_lock:
            if self._manifest is None:
                path = self.directory / _MANIFEST
                if not path.exists():
                    raise FileNotFoundError(f"no manifest at {path}")
                try:
                    manifest = json.loads(path.read_text())
                except ValueError as exc:
                    raise CaptureError(
                        f"corrupt capture manifest {path}: {exc}"
                    ) from exc
                if not isinstance(manifest, dict):
                    raise CaptureError(
                        f"corrupt capture manifest {path}: not a JSON object"
                    )
                if manifest.get("schema") != STORE_SCHEMA:
                    raise CaptureError(
                        f"corrupt capture manifest {path}: schema "
                        f"{manifest.get('schema')} != {STORE_SCHEMA}"
                    )
                self._manifest = manifest
            return self._manifest

    @property
    def capture_key(self) -> str:
        return self.manifest["capture_key"]

    @property
    def pools(self) -> Dict[str, List[str]]:
        return self.manifest["pools"]

    @property
    def windows(self) -> List[WindowEntry]:
        return [
            WindowEntry(w["index"], w["day_lo"], w["day_hi"])
            for w in self.manifest["windows"]
        ]

    def window_path(self, index: int) -> Path:
        return self.directory / _WINDOWS_DIR / f"window-{index:05d}.npz"

    # -- writes --------------------------------------------------------

    def write_window(self, index: int, frame: FlowFrame) -> int:
        """Atomically spill one window's columns; returns bytes written.

        Pools are *not* stored per window — the manifest owns them, and
        a mismatched frame is rejected here rather than read back wrong
        later.
        """
        pools = self.pools
        for name in _POOL_FIELDS:
            if list(getattr(frame, name)) != pools[name]:
                raise ValueError(f"window frame pool {name!r} differs from manifest")
        writer = np.savez_compressed if self.manifest["compress"] else np.savez
        columns = {name: getattr(frame, name) for name in _ARRAY_FIELDS}
        return atomic_write_bytes(
            self.window_path(index),
            lambda h: writer(h, **columns),
            injector=self.injector,
            op="store.write_window",
        )

    # -- reads ---------------------------------------------------------

    def read_window(
        self, index: int, columns: Optional[Sequence[str]] = None
    ) -> Union[FlowFrame, Dict[str, np.ndarray]]:
        """Load one window — a full :class:`FlowFrame`, or just the
        projected ``columns`` as a dict (npz members load lazily, so a
        projection only decompresses what it asks for).

        A damaged file (truncated spill, flipped bits) raises
        :class:`CaptureError` naming the window, never a bare decoder
        error.

        Columns added to the schema after a capture was written (the
        session/QoE quartet) are backfilled with their sentinel fill
        value, so old capture directories keep reading cleanly.
        """
        path = self.window_path(index)
        if columns is not None:
            unknown = set(columns) - set(_ARRAY_FIELDS)
            if unknown:
                raise KeyError(f"unknown columns {sorted(unknown)}")

        def _read(ticket):
            ticket.check("read")
            with np.load(path, allow_pickle=False) as data:
                present = set(data.files)
                wanted = columns if columns is not None else _ARRAY_FIELDS
                loaded: Dict[str, np.ndarray] = {}
                n_rows = -1
                for name in wanted:
                    if name in present:
                        loaded[name] = data[name]
                    else:
                        if n_rows < 0:
                            n_rows = len(data["ts_start"])
                        loaded[name] = np.full(
                            n_rows,
                            FlowFrame.COLUMN_FILL[name],
                            dtype=FlowFrame.COLUMN_DTYPES[name],
                        )
                return loaded

        try:
            loaded = self.injector.run_io("store.read_window", _read)
        except FileNotFoundError:
            raise
        except _NPZ_CORRUPTION as exc:
            raise CaptureError(
                f"corrupt window file {path}: {exc} (truncated spill or "
                "flipped bits — delete the capture directory and resume "
                "from a fresh run)"
            ) from exc
        if columns is not None:
            return loaded
        return FlowFrame(**self.pools, **loaded)

    def iter_windows(
        self, columns: Optional[Sequence[str]] = None
    ) -> Iterator[Tuple[int, Union[FlowFrame, Dict[str, np.ndarray]]]]:
        """Lazily yield ``(index, window)`` for every *stored* window.

        Windows not yet written (an interrupted capture) are skipped —
        the checkpoint, not the directory listing, says what is final —
        which is why the index rides along.
        """
        for entry in self.windows:
            if self.window_path(entry.index).exists():
                yield entry.index, self.read_window(entry.index, columns=columns)

    def stored_window_count(self) -> int:
        return sum(
            1 for entry in self.windows if self.window_path(entry.index).exists()
        )

    def bytes_spilled(self) -> int:
        """Total on-disk size of all stored window files."""
        return sum(
            self.window_path(entry.index).stat().st_size
            for entry in self.windows
            if self.window_path(entry.index).exists()
        )
