"""Spill-to-disk flow store for streaming captures.

A capture directory is the streaming analogue of the one-shot
``capture.npz``: one compressed npz *shard file per window* under
``windows/``, plus a small JSON ``manifest.json`` holding everything
needed to interpret them (schema version, categorical pools, the
window plan, the capture's content key). Windows are appended as the
producer emits them and never rewritten after the checkpoint covering
them commits; reads are lazy — iterate window by window, optionally
projecting a subset of columns, without ever materializing the full
capture.

Layout::

    capture-dir/
      manifest.json          # schema, pools, windows, capture key
      windows/
        window-00000.npz     # columns of window 0 (pools live in the
        window-00001.npz     #   manifest, not per shard file)
        ...
      rollup.npz             # mergeable rollup state (checkpoint.py)
      checkpoint.json        # resume cursor + telemetry (checkpoint.py)

All writes are atomic (temp file + ``os.replace``), so a killed
capture never leaves a torn window or manifest behind.
"""

from __future__ import annotations

import json
import os
import tempfile
from dataclasses import dataclass
from pathlib import Path
from typing import Dict, Iterator, List, Optional, Sequence, Tuple, Union

import numpy as np

from repro.analysis.dataset import _ARRAY_FIELDS, _POOL_FIELDS, FlowFrame

#: Bump on layout changes; old directories then refuse to resume
#: instead of silently mixing schemas.
STORE_SCHEMA = 1

_MANIFEST = "manifest.json"
_WINDOWS_DIR = "windows"


def _atomic_write_bytes(path: Path, write_fn) -> int:
    """Write via ``write_fn(handle)`` to a temp file, then publish."""
    path.parent.mkdir(parents=True, exist_ok=True)
    fd, tmp_name = tempfile.mkstemp(dir=path.parent, suffix=".tmp")
    try:
        with os.fdopen(fd, "wb") as handle:
            write_fn(handle)
        size = os.path.getsize(tmp_name)
        os.replace(tmp_name, path)
        return size
    except BaseException:
        try:
            os.unlink(tmp_name)
        except OSError:
            pass
        raise


@dataclass(frozen=True)
class WindowEntry:
    """One window's row in the manifest."""

    index: int
    day_lo: int
    day_hi: int


class FlowStore:
    """Append-only windowed capture directory."""

    def __init__(self, directory: Union[str, Path]) -> None:
        self.directory = Path(directory)
        self._manifest: Optional[dict] = None

    # -- lifecycle -----------------------------------------------------

    @classmethod
    def create(
        cls,
        directory: Union[str, Path],
        pools: Dict[str, List[str]],
        windows: Sequence[WindowEntry],
        capture_key: str,
        config: dict,
        compress: bool = True,
    ) -> "FlowStore":
        """Initialize a capture directory and publish its manifest."""
        store = cls(directory)
        manifest = {
            "schema": STORE_SCHEMA,
            "capture_key": capture_key,
            "config": config,
            "compress": bool(compress),
            "pools": {name: list(pools[name]) for name in _POOL_FIELDS},
            "windows": [
                {"index": w.index, "day_lo": w.day_lo, "day_hi": w.day_hi}
                for w in windows
            ],
        }
        store.directory.mkdir(parents=True, exist_ok=True)
        (store.directory / _WINDOWS_DIR).mkdir(exist_ok=True)
        _atomic_write_bytes(
            store.directory / _MANIFEST,
            lambda h: h.write(json.dumps(manifest, indent=2).encode()),
        )
        store._manifest = manifest
        return store

    @classmethod
    def open(cls, directory: Union[str, Path]) -> "FlowStore":
        """Open an existing capture directory (validates the schema)."""
        store = cls(directory)
        store.manifest  # force load + validation
        return store

    @property
    def manifest(self) -> dict:
        if self._manifest is None:
            path = self.directory / _MANIFEST
            if not path.exists():
                raise FileNotFoundError(f"no manifest at {path}")
            manifest = json.loads(path.read_text())
            if manifest.get("schema") != STORE_SCHEMA:
                raise ValueError(
                    f"capture dir schema {manifest.get('schema')} != {STORE_SCHEMA}"
                )
            self._manifest = manifest
        return self._manifest

    @property
    def capture_key(self) -> str:
        return self.manifest["capture_key"]

    @property
    def pools(self) -> Dict[str, List[str]]:
        return self.manifest["pools"]

    @property
    def windows(self) -> List[WindowEntry]:
        return [
            WindowEntry(w["index"], w["day_lo"], w["day_hi"])
            for w in self.manifest["windows"]
        ]

    def window_path(self, index: int) -> Path:
        return self.directory / _WINDOWS_DIR / f"window-{index:05d}.npz"

    # -- writes --------------------------------------------------------

    def write_window(self, index: int, frame: FlowFrame) -> int:
        """Atomically spill one window's columns; returns bytes written.

        Pools are *not* stored per window — the manifest owns them, and
        a mismatched frame is rejected here rather than read back wrong
        later.
        """
        pools = self.pools
        for name in _POOL_FIELDS:
            if list(getattr(frame, name)) != pools[name]:
                raise ValueError(f"window frame pool {name!r} differs from manifest")
        writer = np.savez_compressed if self.manifest["compress"] else np.savez
        columns = {name: getattr(frame, name) for name in _ARRAY_FIELDS}
        return _atomic_write_bytes(
            self.window_path(index), lambda h: writer(h, **columns)
        )

    # -- reads ---------------------------------------------------------

    def read_window(
        self, index: int, columns: Optional[Sequence[str]] = None
    ) -> Union[FlowFrame, Dict[str, np.ndarray]]:
        """Load one window — a full :class:`FlowFrame`, or just the
        projected ``columns`` as a dict (npz members load lazily, so a
        projection only decompresses what it asks for)."""
        path = self.window_path(index)
        with np.load(path, allow_pickle=False) as data:
            if columns is not None:
                unknown = set(columns) - set(_ARRAY_FIELDS)
                if unknown:
                    raise KeyError(f"unknown columns {sorted(unknown)}")
                return {name: data[name] for name in columns}
            loaded = {name: data[name] for name in _ARRAY_FIELDS}
        return FlowFrame(**self.pools, **loaded)

    def iter_windows(
        self, columns: Optional[Sequence[str]] = None
    ) -> Iterator[Tuple[int, Union[FlowFrame, Dict[str, np.ndarray]]]]:
        """Lazily yield ``(index, window)`` for every *stored* window.

        Windows not yet written (an interrupted capture) are skipped —
        the checkpoint, not the directory listing, says what is final —
        which is why the index rides along.
        """
        for entry in self.windows:
            if self.window_path(entry.index).exists():
                yield entry.index, self.read_window(entry.index, columns=columns)

    def stored_window_count(self) -> int:
        return sum(
            1 for entry in self.windows if self.window_path(entry.index).exists()
        )

    def bytes_spilled(self) -> int:
        """Total on-disk size of all stored window files."""
        return sum(
            self.window_path(entry.index).stat().st_size
            for entry in self.windows
            if self.window_path(entry.index).exists()
        )
