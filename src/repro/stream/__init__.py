"""Bounded-memory streaming capture pipeline.

The streaming counterpart of ``WorkloadGenerator.generate()`` +
``FlowFrame``: generate the capture one time window at a time, spill
each window to a capture directory, fold mergeable rollup sketches,
and checkpoint after every window so an interrupted run resumes
bit-identically. See DESIGN.md §8.

Public surface:

* :class:`StreamConfig`, :func:`run_stream_capture`,
  :class:`WindowedProducer`, :func:`plan_windows` — producing.
* :class:`FlowStore` — the on-disk capture directory.
* :class:`StreamRollup`, :class:`HourlyRollup`, :class:`HistFamily` —
  the mergeable rollup family.
* :func:`load_checkpoint`, :class:`Checkpoint` — resume cursors.
"""

from repro.stream.checkpoint import (
    Checkpoint,
    WindowTelemetry,
    load_checkpoint,
    rollup_path,
)
from repro.stream.producer import (
    StreamConfig,
    StreamResult,
    WindowSpec,
    WindowedProducer,
    partition_capture_key,
    plan_windows,
    run_stream_capture,
    stream_kill_points,
)
from repro.stream.rollup import HistFamily, HourlyRollup, StreamRollup
from repro.stream.store import FlowStore, WindowEntry
from repro.stream.telemetry import peak_rss_mb, render_telemetry

__all__ = [
    "Checkpoint",
    "FlowStore",
    "HistFamily",
    "HourlyRollup",
    "StreamConfig",
    "StreamResult",
    "StreamRollup",
    "WindowEntry",
    "WindowSpec",
    "WindowTelemetry",
    "WindowedProducer",
    "load_checkpoint",
    "partition_capture_key",
    "peak_rss_mb",
    "plan_windows",
    "render_telemetry",
    "rollup_path",
    "run_stream_capture",
    "stream_kill_points",
]
