"""Windowed producer: the generator, one simulated time window at a time.

The paper's Tstat probe never sees "the capture" — it sees a continuous
packet stream and periodically ships aggregated views. This module
gives the synthetic generator the same shape: the capture's day range
is cut into fixed-length windows, each (shard, window) cell samples
from its own ``SeedSequence``-derived RNG stream
(:func:`repro.parallel.spawn_window_seed`), and the orchestrator folds
every window into mergeable rollups and spills it to disk before
moving on — peak memory holds one window, never the capture.

Note the sampling plan differs from the one-shot generator (which
draws all days of a shard from a single stream), so a streamed capture
is statistically equivalent but not byte-equal to
``WorkloadGenerator.generate()`` — ``window_days`` is *content*, part
of :func:`repro.cache.stream_capture_key`. What *is* byte-equal, by
construction, is any two streaming runs of the same config — including
a killed-and-resumed one (see :mod:`repro.stream.checkpoint`).

Execution is *pipelined* by default (``StreamConfig.pipeline_depth``):
window N+1's shards are generated on a persistent fork pool
(:class:`repro.parallel.ShardWorkerPool`, forked once for the whole
capture) while window N's spill, rollup fold and checkpoint commit run
on a background thread, connected by a bounded queue so at most
``pipeline_depth + 2`` window frames are ever resident. The commit
thread performs the *entire* PR-2 commit sequence for each window in
index order — spill → rollup save → checkpoint — so every named
kill-point and the byte-identical-resume guarantee survive the
overlap untouched; ``pipeline_depth=0`` recovers the lockstep loop.
Neither knob is content: digests are identical across depths, worker
counts and engines.
"""

from __future__ import annotations

import dataclasses
import queue
import threading
import time
from dataclasses import dataclass
from pathlib import Path
from typing import TYPE_CHECKING, Callable, Iterator, List, Optional, Tuple, Union

import numpy as np

from repro.analysis.dataset import FlowFrame
from repro.analysis.source import CaptureError
from repro.cache import stream_capture_key
from repro.constants import SECONDS_PER_DAY
from repro.faults import FaultInjector, FaultPlan, FaultStats, resolve_injector
from repro.kernels import resolve_engine
from repro.parallel import ShardWorkerPool, generate_window_shards, resolve_workers
from repro.stream.checkpoint import (
    Checkpoint,
    WindowTelemetry,
    load_checkpoint,
    rollup_path,
    write_checkpoint,
)
from repro.stream.rollup import StreamRollup
from repro.stream.store import FlowStore, WindowEntry
from repro.stream.telemetry import peak_rss_mb
from repro.traffic.workload import WorkloadConfig, WorkloadGenerator

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from repro.satcom.delaysource import DelaySource
    from repro.scenario import Scenario
    from repro.serve.snapshot import SnapshotHub


@dataclass(frozen=True)
class WindowSpec:
    """A half-open day range ``[day_lo, day_hi)`` of the capture."""

    index: int
    day_lo: int
    day_hi: int

    def __len__(self) -> int:
        return self.day_hi - self.day_lo


def plan_windows(days: int, window_days: int = 1) -> List[WindowSpec]:
    """Cut ``days`` into day-aligned windows of ``window_days`` each.

    Day alignment is load-bearing: the rollup's customer-day sketches
    (Figure 5) are exact only when no (customer, day) pair straddles
    two windows. The last window absorbs the remainder.
    """
    if days <= 0:
        raise ValueError(f"need at least one day (got {days})")
    if window_days <= 0:
        raise ValueError(f"window_days must be >= 1 (got {window_days})")
    windows: List[WindowSpec] = []
    lo = 0
    while lo < days:
        hi = min(lo + window_days, days)
        windows.append(WindowSpec(index=len(windows), day_lo=lo, day_hi=hi))
        lo = hi
    return windows


@dataclass
class StreamConfig:
    """A streaming capture = a workload config + a window plan.

    When built from a :class:`~repro.scenario.Scenario` (via
    ``Scenario.stream_config()``) the scenario rides along: the capture
    is keyed by the scenario digest and the generator carries the
    scenario's models and plan mix. Without one, the legacy
    workload-only construction is unchanged.
    """

    workload: WorkloadConfig
    window_days: int = 1
    compress: bool = True
    """Compress spilled windows (trade CPU for ~3x less disk)."""
    scenario: Optional["Scenario"] = None
    faults: Optional[FaultPlan] = None
    """Chaos plan for this run — execution-only, never part of the
    capture key (faults change timing and retries, never the flows)."""
    pipeline_depth: int = 1
    """Windows allowed in flight between generation and commit. ``0``
    runs the stages lockstep in one thread; ``N >= 1`` lets generation
    run up to ``N`` windows ahead of the commit thread. Execution-only:
    never part of the capture key, digests are identical at any depth."""
    engine: str = "python"
    """Kernel engine (``python`` or ``vectorized``) recorded for the
    packet-level components (:mod:`repro.kernels`). Execution-only and
    digest-neutral by contract — the streaming generator is already
    columnar, so both engines produce bit-identical captures."""

    def capture_key(self) -> str:
        keyed = self.scenario if self.scenario is not None else self.workload
        return stream_capture_key(keyed, self.window_days)

    def build_generator(self) -> WorkloadGenerator:
        if self.scenario is not None:
            return self.scenario.build_generator()
        return WorkloadGenerator(self.workload)


def partition_capture_key(base_key: str, lo: int, hi: int, n_shards: int) -> str:
    """The capture key of a shard-subset (fleet partition) capture.

    Partition directories are ordinary stream captures restricted to
    shards ``[lo, hi)`` of the full ``n_shards`` plan; scoping the key
    keeps resume validation honest (a partition directory can never be
    resumed as the full capture, or as a different slice of it).
    """
    return f"{base_key}:shards{lo}-{hi}of{n_shards}"


class WindowedProducer:
    """Drives one :class:`WorkloadGenerator` window by window.

    ``shards`` restricts generation to a subset of the generator's full
    shard plan (a ``repro.fleet`` partition). The :class:`ShardSpec`
    entries keep their full-plan ``index``/``n_shards``, so each
    (shard, window) cell draws the *same* ``spawn_window_seed`` stream
    it would in an unrestricted run — which is what makes partitioned
    captures bit-identical slices of the single-process capture.
    """

    def __init__(
        self,
        generator: WorkloadGenerator,
        window_days: int = 1,
        shards: Optional[List] = None,
    ) -> None:
        self.generator = generator
        self.windows = plan_windows(generator.config.days, window_days)
        self.shards = (
            list(shards) if shards is not None else generator.shard_plan()
        )

    def generate_window(
        self,
        window: WindowSpec,
        n_workers: int = 1,
        injector: Optional[FaultInjector] = None,
        pool: Optional[ShardWorkerPool] = None,
    ) -> FlowFrame:
        """One window's flows, merged in shard order (never ``None`` —
        a windowless window yields an empty frame with the pools).

        ``pool`` routes shard generation through a persistent
        :class:`~repro.parallel.ShardWorkerPool` (forked once, reused
        across windows); without one, a transient per-window pool is
        used. Either way the output is byte-identical.
        """
        shards = self.shards
        if pool is not None:
            shard_frames = pool.generate_window(
                shards,
                len(self.windows),
                window.index,
                window.day_lo,
                window.day_hi,
            )
        else:
            shard_frames = generate_window_shards(
                self.generator,
                shards,
                len(self.windows),
                window.index,
                window.day_lo,
                window.day_hi,
                n_workers,
                injector=injector,
            )
        frames = [frame for frame in shard_frames if frame is not None]
        if not frames:
            g = self.generator
            return FlowFrame.empty(
                countries=g.countries_pool,
                beams=g.beams_pool,
                services=g.services_pool,
                domains=g.domains_pool,
                sites=g.sites_pool,
                resolvers=g.resolvers_pool,
            )
        if len(frames) == 1:
            return frames[0]
        return FlowFrame.concat(frames)

    def iter_windows(
        self, start: int = 0, n_workers: int = 1
    ) -> Iterator[Tuple[WindowSpec, FlowFrame]]:
        """Yield ``(window, frame)`` from window ``start`` onward."""
        for window in self.windows[start:]:
            yield window, self.generate_window(window, n_workers=n_workers)


@dataclass
class StreamResult:
    """What a (possibly partial) streaming capture run produced."""

    capture_dir: Path
    rollup: StreamRollup
    checkpoint: Checkpoint
    store: FlowStore
    fault_stats: FaultStats = dataclasses.field(default_factory=FaultStats)

    @property
    def complete(self) -> bool:
        return self.checkpoint.complete

    @property
    def telemetry(self) -> List[WindowTelemetry]:
        return self.checkpoint.telemetry


#: Per-window kill-point stages, in commit order: after generation,
#: after the window spilled, after the rollup state saved, after the
#: checkpoint committed.
WINDOW_KILL_STAGES = ("generated", "spilled", "rollup-saved", "committed")


def stream_kill_points(n_windows: int) -> List[str]:
    """Every named kill-point of an ``n_windows`` stream run, in order.

    The chaos crash matrix SIGKILLs the producer at each of these (via
    ``FaultPlan(kill_at=...)``) and asserts the resumed capture is
    bit-identical to an uninterrupted one.
    """
    points = ["stream:init"]
    for index in range(n_windows):
        points.extend(
            f"stream:w{index}:{stage}" for stage in WINDOW_KILL_STAGES
        )
    return points


def _recover_rollup(
    capture_dir: Path,
    store: FlowStore,
    checkpoint: Checkpoint,
    injector: FaultInjector,
) -> StreamRollup:
    """The rollup matching ``checkpoint``, healing a torn/stale state.

    The happy path loads ``rollup.npz`` and verifies its digest. A kill
    between ``rollup.save`` and ``write_checkpoint`` leaves the saved
    state one window *ahead* of the checkpoint (and a torn disk can
    corrupt it outright); both cases are healed by re-folding the
    committed windows in index order — bit-identical to the original
    fold by construction. Only when even the re-fold disagrees with the
    checkpoint digest is the directory truly corrupt.
    """
    try:
        rollup = StreamRollup.load(rollup_path(capture_dir))
        if rollup.state_digest() == checkpoint.rollup_digest:
            return rollup
    except (CaptureError, FileNotFoundError):
        pass
    injector.stats.rollup_rebuilds += 1
    pools = store.pools
    rollup = StreamRollup(
        pools["countries"], pools["services"], pools["resolvers"]
    )
    for entry in store.windows[: checkpoint.windows_done]:
        rollup.update(store.read_window(entry.index))
    if rollup.state_digest() != checkpoint.rollup_digest:
        raise CaptureError(
            "rollup state does not match the checkpoint digest even after "
            "re-folding the committed windows — the capture directory is "
            "corrupt; delete and regenerate"
        )
    rollup.save(rollup_path(capture_dir), injector=injector)
    return rollup


class _WindowCommitter:
    """The commit side of the producer: spill → fold → checkpoint.

    One instance performs the whole PR-2 commit sequence for each
    window, **in window-index order**, regardless of execution mode —
    the lockstep loop calls :meth:`commit` inline, the pipelined mode
    calls it from a single background thread. Keeping every
    commit-ordered step (including its kill-points and every
    ``injector.rng`` draw) on one thread in one function is what makes
    the fault plan and the byte-identical-resume guarantee independent
    of ``pipeline_depth``.
    """

    def __init__(
        self,
        capture_dir: Path,
        store: FlowStore,
        rollup: StreamRollup,
        checkpoint: Checkpoint,
        injector: FaultInjector,
        on_window: Optional[Callable[[WindowTelemetry], None]],
        delay_source: Optional["DelaySource"] = None,
        snapshot_hub: Optional["SnapshotHub"] = None,
    ) -> None:
        self.capture_dir = capture_dir
        self.store = store
        self.rollup = rollup
        self.checkpoint = checkpoint
        self.injector = injector
        self.on_window = on_window
        self.delay_source = delay_source
        self.snapshot_hub = snapshot_hub
        # Each window row attributes every fault since the previous
        # commit: directory-setup and resume-recovery faults land on the
        # first row, a checkpoint-write fault on the next row. Under
        # pipelining, generation-side faults (worker crashes) land on
        # whichever window commits while they happen — attribution is
        # approximate across overlapped stages, totals stay exact.
        self._before = injector.stats.copy()

    def commit(
        self, window: WindowSpec, frame: FlowFrame, gen_seconds: float
    ) -> WindowTelemetry:
        injector = self.injector
        t1 = time.perf_counter()
        spilled = self.store.write_window(window.index, frame)
        injector.kill_point(f"stream:w{window.index}:spilled")
        t2 = time.perf_counter()
        self.rollup.update(frame)
        self.rollup.save(rollup_path(self.capture_dir), injector=injector)
        injector.kill_point(f"stream:w{window.index}:rollup-saved")
        t3 = time.perf_counter()
        window_stats = injector.stats.delta(self._before)
        self._before = injector.stats.copy()
        # A pure function of the window's day span (and the scenario's
        # constellation), never of mutable source state — so the count
        # is identical across pipeline depths, workers and resumes.
        handovers = 0
        if self.delay_source is not None:
            handovers = self.delay_source.handovers_between(
                window.day_lo * SECONDS_PER_DAY,
                window.day_hi * SECONDS_PER_DAY,
            )
        telemetry = WindowTelemetry(
            window=window.index,
            day_lo=window.day_lo,
            day_hi=window.day_hi,
            flows=len(frame),
            gen_seconds=gen_seconds,
            spill_seconds=t2 - t1,
            fold_seconds=t3 - t2,
            bytes_spilled=spilled,
            peak_rss_mb=peak_rss_mb(),
            faults=window_stats.faults,
            io_retries=window_stats.retries,
            handovers=handovers,
        )
        self.checkpoint.windows_done = window.index + 1
        self.checkpoint.rollup_digest = self.rollup.state_digest()
        self.checkpoint.telemetry.append(telemetry)
        write_checkpoint(self.capture_dir, self.checkpoint, injector=injector)
        injector.kill_point(f"stream:w{window.index}:committed")
        # Publish the committed state to the live serve hub *on the
        # commit thread*, between folds — the copy sees whole windows
        # only, and its digest equals the checkpoint's by construction.
        if self.snapshot_hub is not None:
            self.snapshot_hub.publish_state(self.rollup, self.checkpoint)
        if self.on_window is not None:
            self.on_window(telemetry)
        return telemetry


def _run_pipelined(
    producer: WindowedProducer,
    todo: List[WindowSpec],
    committer: _WindowCommitter,
    injector: FaultInjector,
    workers: int,
    pool: Optional[ShardWorkerPool],
    depth: int,
) -> None:
    """Overlap generation with the commit sequence.

    The main thread generates windows (through the persistent pool) and
    feeds ``(window, frame, gen_seconds)`` into a queue bounded at
    ``depth``; a single commit thread drains it in order. Worst case
    ``depth + 2`` frames are resident: ``depth`` queued, one being
    committed, one being generated. A commit failure is parked, the
    queue is drained without committing (so the producer's blocking
    ``put`` can never deadlock), and the exception re-raises on the
    main thread after join — with the checkpoint still covering exactly
    the windows whose commit sequence finished.
    """
    in_flight: "queue.Queue" = queue.Queue(maxsize=depth)
    failure: List[BaseException] = []

    def _drain() -> None:
        while True:
            item = in_flight.get()
            if item is None:
                return
            if failure:
                continue  # discard: the producer stops at its next check
            window, frame, gen_seconds = item
            try:
                committer.commit(window, frame, gen_seconds)
            except BaseException as exc:  # noqa: BLE001 - re-raised in main
                failure.append(exc)

    commit_thread = threading.Thread(
        target=_drain, name="stream-commit", daemon=True
    )
    commit_thread.start()
    try:
        for window in todo:
            if failure:
                break
            t0 = time.perf_counter()
            frame = producer.generate_window(
                window, n_workers=workers, injector=injector, pool=pool
            )
            gen_seconds = time.perf_counter() - t0
            injector.kill_point(f"stream:w{window.index}:generated")
            in_flight.put((window, frame, gen_seconds))
            del frame
    finally:
        in_flight.put(None)
        commit_thread.join()
    if failure:
        raise failure[0]


def run_stream_capture(
    config: StreamConfig,
    capture_dir: Union[str, Path],
    resume: bool = False,
    max_windows: Optional[int] = None,
    on_window: Optional[Callable[[WindowTelemetry], None]] = None,
    faults: Optional[FaultPlan] = None,
    shard_range: Optional[Tuple[int, int]] = None,
    snapshot_hub: Optional["SnapshotHub"] = None,
) -> StreamResult:
    """Run (or continue) a streaming capture into ``capture_dir``.

    ``shard_range`` restricts the capture to shards ``[lo, hi)`` of the
    config's full shard plan — a ``repro.fleet`` partition. The capture
    key is scoped with :func:`partition_capture_key`, the spilled
    windows and rollup cover only those shards' customers, and every
    guarantee (checkpoint/resume bit-identity, kill-points, pipelining)
    applies unchanged because the restricted shards keep their
    full-plan RNG streams.

    Fresh runs initialize the directory; ``resume=True`` continues from
    the last committed checkpoint (and is a no-op on a complete
    capture). ``max_windows`` bounds how many windows *this call*
    produces — the checkpoint stays resumable, which is how the tests
    simulate a kill. ``on_window`` observes each window's telemetry as
    it commits, and ``snapshot_hub`` (a :class:`repro.serve.SnapshotHub`)
    receives an immutable checkpoint-consistent rollup snapshot at the
    same commit point — the live serve read path.

    ``faults`` (or ``config.faults``) arms a deterministic chaos plan
    for *this run only*: injected IO errors retry with backoff, torn
    cache writes quarantine, plan-named kill-points SIGKILL the
    process, and the per-window fault/retry counters land in the
    telemetry. Faults never change the generated flows.

    ``config.pipeline_depth`` selects the execution mode: ``0`` is the
    lockstep generate→spill→fold loop; ``>= 1`` (default ``1``)
    overlaps window N+1's generation (persistent fork pool) with
    window N's commit sequence (background thread). The produced
    capture — windows, rollup, digests, resume behaviour — is
    bit-identical across depths; only wall clock and transient RSS
    (up to ``depth + 2`` windows) change.
    """
    capture_dir = Path(capture_dir)
    if config.pipeline_depth < 0:
        raise ValueError(
            f"pipeline_depth must be >= 0 (got {config.pipeline_depth})"
        )
    resolve_engine(config.engine)  # validate early; generation is columnar
    injector = resolve_injector(faults if faults is not None else config.faults)
    injector.kill_point("stream:init")
    generator = config.build_generator()
    key = config.capture_key()
    shards = None
    if shard_range is not None:
        full_plan = generator.shard_plan()
        lo, hi = shard_range
        if not 0 <= lo < hi <= len(full_plan):
            raise ValueError(
                f"shard_range [{lo}, {hi}) outside the plan's "
                f"{len(full_plan)} shards"
            )
        shards = full_plan[lo:hi]
        key = partition_capture_key(key, lo, hi, len(full_plan))
    producer = WindowedProducer(generator, config.window_days, shards=shards)
    n_windows = len(producer.windows)
    workers = resolve_workers(config.workload.n_workers)

    existing = load_checkpoint(capture_dir) if resume else None
    if resume and existing is None:
        raise FileNotFoundError(
            f"nothing to resume: no checkpoint in {capture_dir}"
        )
    if existing is not None:
        if existing.capture_key != key:
            raise ValueError(
                "capture directory belongs to a different stream config "
                f"(key {existing.capture_key} != {key})"
            )
        store = FlowStore.open(capture_dir, injector=injector)
        rollup = _recover_rollup(capture_dir, store, existing, injector)
        checkpoint = existing
    else:
        if load_checkpoint(capture_dir) is not None and not resume:
            raise FileExistsError(
                f"{capture_dir} already holds a capture; pass resume=True "
                "to continue it or choose a fresh directory"
            )
        store = FlowStore.create(
            capture_dir,
            pools={
                "countries": generator.countries_pool,
                "beams": generator.beams_pool,
                "services": generator.services_pool,
                "domains": generator.domains_pool,
                "sites": generator.sites_pool,
                "resolvers": generator.resolvers_pool,
            },
            windows=[
                WindowEntry(w.index, w.day_lo, w.day_hi)
                for w in producer.windows
            ],
            capture_key=key,
            config={
                **dataclasses.asdict(config.workload),
                **(
                    {"shard_range": list(shard_range)}
                    if shard_range is not None
                    else {}
                ),
            },
            compress=config.compress,
            injector=injector,
        )
        rollup = StreamRollup(
            generator.countries_pool,
            generator.services_pool,
            generator.resolvers_pool,
        )
        checkpoint = Checkpoint(
            capture_key=key,
            n_windows=n_windows,
            windows_done=0,
            rollup_digest=rollup.state_digest(),
        )

    # Live serving: publish the starting state (empty on a fresh run,
    # the healed committed prefix on resume) so the server has a
    # consistent snapshot before the first new window commits, then let
    # the committer publish after every checkpoint write.
    if snapshot_hub is not None:
        snapshot_hub.publish_state(rollup, checkpoint)

    todo = producer.windows[checkpoint.windows_done :]
    if max_windows is not None:
        todo = todo[: max(0, max_windows)]
    committer = _WindowCommitter(
        capture_dir,
        store,
        rollup,
        checkpoint,
        injector,
        on_window,
        delay_source=generator.delay_source,
        snapshot_hub=snapshot_hub,
    )
    # The persistent pool forks eagerly here — before the commit thread
    # exists — so the workers never inherit a lock held mid-commit.
    pool = ShardWorkerPool(
        generator,
        min(workers, len(producer.shards)),
        injector=injector,
    )
    if todo:
        pool.warm()
    try:
        if config.pipeline_depth == 0 or not todo:
            # Lockstep: generate → commit, one thread, one frame resident.
            for window in todo:
                t0 = time.perf_counter()
                frame = producer.generate_window(
                    window, n_workers=workers, injector=injector, pool=pool
                )
                gen_seconds = time.perf_counter() - t0
                injector.kill_point(f"stream:w{window.index}:generated")
                committer.commit(window, frame, gen_seconds)
                del frame
        else:
            _run_pipelined(
                producer,
                todo,
                committer,
                injector,
                workers,
                pool,
                config.pipeline_depth,
            )
    finally:
        pool.close()

    return StreamResult(
        capture_dir=capture_dir,
        rollup=rollup,
        checkpoint=checkpoint,
        store=store,
        fault_stats=injector.stats,
    )
