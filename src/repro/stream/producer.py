"""Windowed producer: the generator, one simulated time window at a time.

The paper's Tstat probe never sees "the capture" — it sees a continuous
packet stream and periodically ships aggregated views. This module
gives the synthetic generator the same shape: the capture's day range
is cut into fixed-length windows, each (shard, window) cell samples
from its own ``SeedSequence``-derived RNG stream
(:func:`repro.parallel.spawn_window_seed`), and the orchestrator folds
every window into mergeable rollups and spills it to disk before
moving on — peak memory holds one window, never the capture.

Note the sampling plan differs from the one-shot generator (which
draws all days of a shard from a single stream), so a streamed capture
is statistically equivalent but not byte-equal to
``WorkloadGenerator.generate()`` — ``window_days`` is *content*, part
of :func:`repro.cache.stream_capture_key`. What *is* byte-equal, by
construction, is any two streaming runs of the same config — including
a killed-and-resumed one (see :mod:`repro.stream.checkpoint`).
"""

from __future__ import annotations

import dataclasses
import time
from dataclasses import dataclass
from pathlib import Path
from typing import TYPE_CHECKING, Callable, Iterator, List, Optional, Tuple, Union

import numpy as np

from repro.analysis.dataset import FlowFrame
from repro.analysis.source import CaptureError
from repro.cache import stream_capture_key
from repro.faults import FaultInjector, FaultPlan, FaultStats, resolve_injector
from repro.parallel import generate_window_shards, resolve_workers
from repro.stream.checkpoint import (
    Checkpoint,
    WindowTelemetry,
    load_checkpoint,
    rollup_path,
    write_checkpoint,
)
from repro.stream.rollup import StreamRollup
from repro.stream.store import FlowStore, WindowEntry
from repro.stream.telemetry import peak_rss_mb
from repro.traffic.workload import WorkloadConfig, WorkloadGenerator

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from repro.scenario import Scenario


@dataclass(frozen=True)
class WindowSpec:
    """A half-open day range ``[day_lo, day_hi)`` of the capture."""

    index: int
    day_lo: int
    day_hi: int

    def __len__(self) -> int:
        return self.day_hi - self.day_lo


def plan_windows(days: int, window_days: int = 1) -> List[WindowSpec]:
    """Cut ``days`` into day-aligned windows of ``window_days`` each.

    Day alignment is load-bearing: the rollup's customer-day sketches
    (Figure 5) are exact only when no (customer, day) pair straddles
    two windows. The last window absorbs the remainder.
    """
    if days <= 0:
        raise ValueError(f"need at least one day (got {days})")
    if window_days <= 0:
        raise ValueError(f"window_days must be >= 1 (got {window_days})")
    windows: List[WindowSpec] = []
    lo = 0
    while lo < days:
        hi = min(lo + window_days, days)
        windows.append(WindowSpec(index=len(windows), day_lo=lo, day_hi=hi))
        lo = hi
    return windows


@dataclass
class StreamConfig:
    """A streaming capture = a workload config + a window plan.

    When built from a :class:`~repro.scenario.Scenario` (via
    ``Scenario.stream_config()``) the scenario rides along: the capture
    is keyed by the scenario digest and the generator carries the
    scenario's models and plan mix. Without one, the legacy
    workload-only construction is unchanged.
    """

    workload: WorkloadConfig
    window_days: int = 1
    compress: bool = True
    """Compress spilled windows (trade CPU for ~3x less disk)."""
    scenario: Optional["Scenario"] = None
    faults: Optional[FaultPlan] = None
    """Chaos plan for this run — execution-only, never part of the
    capture key (faults change timing and retries, never the flows)."""

    def capture_key(self) -> str:
        keyed = self.scenario if self.scenario is not None else self.workload
        return stream_capture_key(keyed, self.window_days)

    def build_generator(self) -> WorkloadGenerator:
        if self.scenario is not None:
            return self.scenario.build_generator()
        return WorkloadGenerator(self.workload)


class WindowedProducer:
    """Drives one :class:`WorkloadGenerator` window by window."""

    def __init__(
        self, generator: WorkloadGenerator, window_days: int = 1
    ) -> None:
        self.generator = generator
        self.windows = plan_windows(generator.config.days, window_days)

    def generate_window(
        self,
        window: WindowSpec,
        n_workers: int = 1,
        injector: Optional[FaultInjector] = None,
    ) -> FlowFrame:
        """One window's flows, merged in shard order (never ``None`` —
        a windowless window yields an empty frame with the pools)."""
        shards = self.generator.shard_plan()
        frames = [
            frame
            for frame in generate_window_shards(
                self.generator,
                shards,
                len(self.windows),
                window.index,
                window.day_lo,
                window.day_hi,
                n_workers,
                injector=injector,
            )
            if frame is not None
        ]
        if not frames:
            g = self.generator
            return FlowFrame.empty(
                countries=g.countries_pool,
                beams=g.beams_pool,
                services=g.services_pool,
                domains=g.domains_pool,
                sites=g.sites_pool,
                resolvers=g.resolvers_pool,
            )
        if len(frames) == 1:
            return frames[0]
        return FlowFrame.concat(frames)

    def iter_windows(
        self, start: int = 0, n_workers: int = 1
    ) -> Iterator[Tuple[WindowSpec, FlowFrame]]:
        """Yield ``(window, frame)`` from window ``start`` onward."""
        for window in self.windows[start:]:
            yield window, self.generate_window(window, n_workers=n_workers)


@dataclass
class StreamResult:
    """What a (possibly partial) streaming capture run produced."""

    capture_dir: Path
    rollup: StreamRollup
    checkpoint: Checkpoint
    store: FlowStore
    fault_stats: FaultStats = dataclasses.field(default_factory=FaultStats)

    @property
    def complete(self) -> bool:
        return self.checkpoint.complete

    @property
    def telemetry(self) -> List[WindowTelemetry]:
        return self.checkpoint.telemetry


#: Per-window kill-point stages, in commit order: after generation,
#: after the window spilled, after the rollup state saved, after the
#: checkpoint committed.
WINDOW_KILL_STAGES = ("generated", "spilled", "rollup-saved", "committed")


def stream_kill_points(n_windows: int) -> List[str]:
    """Every named kill-point of an ``n_windows`` stream run, in order.

    The chaos crash matrix SIGKILLs the producer at each of these (via
    ``FaultPlan(kill_at=...)``) and asserts the resumed capture is
    bit-identical to an uninterrupted one.
    """
    points = ["stream:init"]
    for index in range(n_windows):
        points.extend(
            f"stream:w{index}:{stage}" for stage in WINDOW_KILL_STAGES
        )
    return points


def _recover_rollup(
    capture_dir: Path,
    store: FlowStore,
    checkpoint: Checkpoint,
    injector: FaultInjector,
) -> StreamRollup:
    """The rollup matching ``checkpoint``, healing a torn/stale state.

    The happy path loads ``rollup.npz`` and verifies its digest. A kill
    between ``rollup.save`` and ``write_checkpoint`` leaves the saved
    state one window *ahead* of the checkpoint (and a torn disk can
    corrupt it outright); both cases are healed by re-folding the
    committed windows in index order — bit-identical to the original
    fold by construction. Only when even the re-fold disagrees with the
    checkpoint digest is the directory truly corrupt.
    """
    try:
        rollup = StreamRollup.load(rollup_path(capture_dir))
        if rollup.state_digest() == checkpoint.rollup_digest:
            return rollup
    except (CaptureError, FileNotFoundError):
        pass
    injector.stats.rollup_rebuilds += 1
    pools = store.pools
    rollup = StreamRollup(
        pools["countries"], pools["services"], pools["resolvers"]
    )
    for entry in store.windows[: checkpoint.windows_done]:
        rollup.update(store.read_window(entry.index))
    if rollup.state_digest() != checkpoint.rollup_digest:
        raise CaptureError(
            "rollup state does not match the checkpoint digest even after "
            "re-folding the committed windows — the capture directory is "
            "corrupt; delete and regenerate"
        )
    rollup.save(rollup_path(capture_dir), injector=injector)
    return rollup


def run_stream_capture(
    config: StreamConfig,
    capture_dir: Union[str, Path],
    resume: bool = False,
    max_windows: Optional[int] = None,
    on_window: Optional[Callable[[WindowTelemetry], None]] = None,
    faults: Optional[FaultPlan] = None,
) -> StreamResult:
    """Run (or continue) a streaming capture into ``capture_dir``.

    Fresh runs initialize the directory; ``resume=True`` continues from
    the last committed checkpoint (and is a no-op on a complete
    capture). ``max_windows`` bounds how many windows *this call*
    produces — the checkpoint stays resumable, which is how the tests
    simulate a kill. ``on_window`` observes each window's telemetry as
    it commits.

    ``faults`` (or ``config.faults``) arms a deterministic chaos plan
    for *this run only*: injected IO errors retry with backoff, torn
    cache writes quarantine, plan-named kill-points SIGKILL the
    process, and the per-window fault/retry counters land in the
    telemetry. Faults never change the generated flows.
    """
    capture_dir = Path(capture_dir)
    injector = resolve_injector(faults if faults is not None else config.faults)
    before = injector.stats.copy()
    injector.kill_point("stream:init")
    generator = config.build_generator()
    producer = WindowedProducer(generator, config.window_days)
    key = config.capture_key()
    n_windows = len(producer.windows)
    workers = resolve_workers(config.workload.n_workers)

    existing = load_checkpoint(capture_dir) if resume else None
    if resume and existing is None:
        raise FileNotFoundError(
            f"nothing to resume: no checkpoint in {capture_dir}"
        )
    if existing is not None:
        if existing.capture_key != key:
            raise ValueError(
                "capture directory belongs to a different stream config "
                f"(key {existing.capture_key} != {key})"
            )
        store = FlowStore.open(capture_dir, injector=injector)
        rollup = _recover_rollup(capture_dir, store, existing, injector)
        checkpoint = existing
    else:
        if load_checkpoint(capture_dir) is not None and not resume:
            raise FileExistsError(
                f"{capture_dir} already holds a capture; pass resume=True "
                "to continue it or choose a fresh directory"
            )
        store = FlowStore.create(
            capture_dir,
            pools={
                "countries": generator.countries_pool,
                "beams": generator.beams_pool,
                "services": generator.services_pool,
                "domains": generator.domains_pool,
                "sites": generator.sites_pool,
                "resolvers": generator.resolvers_pool,
            },
            windows=[
                WindowEntry(w.index, w.day_lo, w.day_hi)
                for w in producer.windows
            ],
            capture_key=key,
            config=dataclasses.asdict(config.workload),
            compress=config.compress,
            injector=injector,
        )
        rollup = StreamRollup(
            generator.countries_pool,
            generator.services_pool,
            generator.resolvers_pool,
        )
        checkpoint = Checkpoint(
            capture_key=key,
            n_windows=n_windows,
            windows_done=0,
            rollup_digest=rollup.state_digest(),
        )

    produced = 0
    # Each window row attributes every fault since the previous commit:
    # directory-setup and resume-recovery faults land on the first row,
    # a checkpoint-write fault on the next row (the final checkpoint
    # write only shows in the run totals).
    for window in producer.windows[checkpoint.windows_done :]:
        if max_windows is not None and produced >= max_windows:
            break
        t0 = time.perf_counter()
        frame = producer.generate_window(
            window, n_workers=workers, injector=injector
        )
        injector.kill_point(f"stream:w{window.index}:generated")
        t1 = time.perf_counter()
        spilled = store.write_window(window.index, frame)
        injector.kill_point(f"stream:w{window.index}:spilled")
        rollup.update(frame)
        rollup.save(rollup_path(capture_dir), injector=injector)
        injector.kill_point(f"stream:w{window.index}:rollup-saved")
        t2 = time.perf_counter()
        window_stats = injector.stats.delta(before)
        before = injector.stats.copy()
        telemetry = WindowTelemetry(
            window=window.index,
            day_lo=window.day_lo,
            day_hi=window.day_hi,
            flows=len(frame),
            gen_seconds=t1 - t0,
            fold_seconds=t2 - t1,
            bytes_spilled=spilled,
            peak_rss_mb=peak_rss_mb(),
            faults=window_stats.faults,
            io_retries=window_stats.retries,
        )
        checkpoint.windows_done = window.index + 1
        checkpoint.rollup_digest = rollup.state_digest()
        checkpoint.telemetry.append(telemetry)
        write_checkpoint(capture_dir, checkpoint, injector=injector)
        injector.kill_point(f"stream:w{window.index}:committed")
        if on_window is not None:
            on_window(telemetry)
        produced += 1
        del frame  # the whole point: at most one window resident

    return StreamResult(
        capture_dir=capture_dir,
        rollup=rollup,
        checkpoint=checkpoint,
        store=store,
        fault_stats=injector.stats,
    )
