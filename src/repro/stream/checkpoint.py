"""Checkpoint/resume for streaming captures.

After every window the producer commits three artifacts, in order:

1. the window's npz shard file (``store.py``, atomic),
2. the folded rollup state (``rollup.npz``, atomic),
3. ``checkpoint.json`` — the *commit point*: next window index, the
   capture's content key, the rollup digest, and per-window telemetry.

A kill between any two steps is safe: on resume, everything at or
beyond ``windows_done`` is regenerated and atomically overwritten,
and everything before it is trusted because the checkpoint that
covered it only ever published after its window and rollup landed.
(A kill between steps 2 and 3 leaves ``rollup.npz`` one window ahead
of the checkpoint; the producer detects the digest mismatch and
re-folds the rollup from the committed windows instead of refusing.)

Resume is *bit-identical* to an uninterrupted run because each
(shard, window) cell draws from its own
``SeedSequence``-derived stream (:func:`repro.parallel.spawn_window_seed`)
— regenerating window *k* needs no RNG state from windows ``< k`` —
and because the rollup folds windows in index order with associative
merges, so "load saved state, keep folding" reproduces the exact
float-addition order of the one-shot run.
"""

from __future__ import annotations

import json
from dataclasses import asdict, dataclass, field
from pathlib import Path
from typing import List, Optional, Union

from repro.analysis.source import CaptureError
from repro.faults import FaultInjector, atomic_write_bytes

#: Bump on layout changes (refuse, never mis-resume). Unchanged by the
#: fault counters: the new telemetry fields default to zero, so
#: pre-fault checkpoints keep loading.
CHECKPOINT_SCHEMA = 1

_CHECKPOINT = "checkpoint.json"
ROLLUP_FILE = "rollup.npz"


@dataclass
class WindowTelemetry:
    """Per-window counters printed by the ``repro stream`` summary."""

    window: int
    day_lo: int
    day_hi: int
    flows: int
    gen_seconds: float
    fold_seconds: float
    bytes_spilled: int
    peak_rss_mb: float
    faults: int = 0
    """Fault events injected while producing this window."""
    io_retries: int = 0
    """IO attempts retried (after injected or real transient errors)."""
    spill_seconds: float = 0.0
    """Time writing the window's npz spill (split out of the fold so
    stage overlap is observable; defaults to zero so pre-split
    checkpoints keep loading)."""
    handovers: int = 0
    """Satellite handovers the window's time span crossed (always zero
    for static delay sources; defaults so pre-constellation
    checkpoints keep loading)."""

    @property
    def flows_per_s(self) -> float:
        busy = self.gen_seconds + self.spill_seconds + self.fold_seconds
        return self.flows / busy if busy > 0 else float("nan")

    @property
    def busy_seconds(self) -> float:
        """Total stage time of this window (gen + spill + fold).

        Under the pipelined producer the stages of *different* windows
        overlap, so the capture's wall clock is less than the sum of
        these — that gap is the pipelining win."""
        return self.gen_seconds + self.spill_seconds + self.fold_seconds


@dataclass
class Checkpoint:
    """The resume cursor of a capture directory."""

    capture_key: str
    n_windows: int
    windows_done: int
    rollup_digest: str
    telemetry: List[WindowTelemetry] = field(default_factory=list)
    schema: int = CHECKPOINT_SCHEMA

    @property
    def complete(self) -> bool:
        return self.windows_done >= self.n_windows

    def progress(self) -> float:
        """Fraction of windows committed, in ``[0, 1]``.

        The coordinator-facing probe: ``repro.fleet`` polls it (via
        :func:`load_checkpoint`) to tell a straggling worker from one
        that is still landing windows, and ``repro stream-report``
        prints it for partial captures.
        """
        if self.n_windows <= 0:
            return 1.0
        return min(1.0, self.windows_done / self.n_windows)


def checkpoint_path(directory: Union[str, Path]) -> Path:
    return Path(directory) / _CHECKPOINT


def rollup_path(directory: Union[str, Path]) -> Path:
    return Path(directory) / ROLLUP_FILE


def write_checkpoint(
    directory: Union[str, Path],
    checkpoint: Checkpoint,
    injector: Optional[FaultInjector] = None,
) -> None:
    """Atomically publish ``checkpoint`` as the directory's cursor."""
    payload = asdict(checkpoint)
    atomic_write_bytes(
        checkpoint_path(directory),
        lambda h: h.write(json.dumps(payload, indent=2).encode()),
        injector=injector,
        op="checkpoint.write",
    )


def load_checkpoint(directory: Union[str, Path]) -> Optional[Checkpoint]:
    """The directory's checkpoint, or ``None`` if none was committed.

    A damaged ``checkpoint.json`` (truncated, bit-flipped, not an
    object) raises :class:`CaptureError` with a diagnosis rather than
    a raw JSON traceback.
    """
    path = checkpoint_path(directory)
    if not path.exists():
        return None
    try:
        payload = json.loads(path.read_text())
    except ValueError as exc:
        raise CaptureError(f"corrupt checkpoint {path}: {exc}") from exc
    if not isinstance(payload, dict):
        raise CaptureError(f"corrupt checkpoint {path}: not a JSON object")
    if payload.get("schema") != CHECKPOINT_SCHEMA:
        raise CaptureError(
            f"checkpoint schema {payload.get('schema')} != {CHECKPOINT_SCHEMA}"
        )
    try:
        telemetry = [
            WindowTelemetry(**row) for row in payload.pop("telemetry", [])
        ]
        payload.pop("schema", None)
        return Checkpoint(telemetry=telemetry, **payload)
    except TypeError as exc:
        raise CaptureError(f"corrupt checkpoint {path}: {exc}") from exc
