"""Mergeable rollup sketches for streaming captures.

The paper's Spark jobs reduce 34.4 G flows to hourly aggregate views
(Section 3.1); this module is the streaming equivalent: every sketch
supports ``update(frame)`` with one capture window and ``merge(other)``
with another sketch, and both operations are associative — fold the
windows in any grouping and the bits come out the same. That is the
property checkpoint/resume relies on: a resumed capture replays *no*
flows, it just keeps folding new windows into the saved state.

What the sketches retain is exactly what the rollup-served figures
need:

* per-country volume/flow/customer counters         → Figure 2 / Table 1
* a (country, l7, hour) volume matrix               → Figure 3
* per-(country, day) hourly volume matrices         → Figure 4
* per-country customer-day histograms + counters    → Figure 5
* classifier service-popularity counters            → Figure 6
* per-(category, country) customer-day volume hists → Figure 7
* night/peak satellite-RTT histograms per country   → Figure 8a
* per-(country, local-hour) satellite-RTT histograms → Figure 8b
  (the RTT-vs-time-of-day axis the constellation engine needs)
* ground-RTT histograms (count & volume weighted)   → Figure 9
* (country, resolver) DNS counters + response hists → Figure 10
* per-country bulk-flow throughput histograms       → Figure 11
* per-(country, plan) video-session QoE bank        → Figure 12
* per-customer resolver/domain-group RTT banks      → Table 2

``update`` must see *whole* windows whose boundaries fall on day
edges (the producer guarantees this): the customer-day sketches
(Figures 5/6/7) are only exact when no customer-day straddles two
updates.

:class:`HourlyRollup` — the paper's Section 3.1 hourly aggregate view
— lives here too as the third member of the rollup family (frame →
hourly cells, mergeable across day-aligned chunks).
"""

from __future__ import annotations

import hashlib
import json
import os
import re
import zipfile
import zlib
from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np

from repro.analysis.aggregate import local_hour_of
from repro.analysis.source import CaptureError
from repro.faults import FaultInjector, atomic_write_bytes
from repro.analysis.classify import ServiceClassifier
from repro.analysis.dataset import FlowFrame
from repro.analysis.domains import TABLE2_DOMAIN_GROUPS
from repro.constants import BULK_FLOW_MIN_BYTES
from repro.flowmeter.records import L7Protocol, L7_ORDER
from repro.satcom.plans import PLAN_ORDER, plan_index_bulk
from repro.traffic.services import ServiceCategory

#: Bump when the sketch layout changes; saved states refuse to load
#: across schema versions instead of mis-merging.
#: v3 added the per-(country, local-hour) satellite-RTT bank (h8_hour).
#: v4 added the per-(country, plan) video-session QoE bank (Figure 12).
ROLLUP_SCHEMA = 4

#: Figure 7 category axis (must match fig7_service_volume.CATEGORIES).
FIG7_CATEGORIES = (
    ServiceCategory.AUDIO,
    ServiceCategory.CHAT,
    ServiceCategory.SEARCH,
    ServiceCategory.SOCIAL,
    ServiceCategory.VIDEO,
    ServiceCategory.WORK,
)

#: Figure 8a local-hour periods (match fig8_satellite_rtt).
NIGHT_HOURS = (2.0, 5.0)
PEAK_HOURS = (13.0, 20.0)

#: Figure 5 activity knee (flows/day below which a CPE counts as idle).
IDLE_FLOW_THRESHOLD = 250.0

_TCP_L7 = (L7Protocol.HTTPS, L7Protocol.HTTP, L7Protocol.OTHER_TCP)


def _decade_edges(lo_exp: int, hi_exp: int, per_decade: int = 12) -> np.ndarray:
    """Log-spaced bin edges with exact values at every decade."""
    return 10.0 ** (
        np.arange(0, (hi_exp - lo_exp) * per_decade + 1) / per_decade + lo_exp
    )


class HistFamily:
    """A bank of fixed-bin histograms, one row per category (country).

    Counts are float64 so the same class serves count-weighted and
    volume-weighted histograms; out-of-range mass is kept in explicit
    under/overflow columns so totals are exact. ``quantile``/``cdf_at``
    interpolate linearly inside a bin, which bounds their error by the
    bin width.
    """

    def __init__(self, edges: np.ndarray, n_rows: int) -> None:
        self.edges = np.asarray(edges, dtype=np.float64)
        if len(self.edges) < 2 or np.any(np.diff(self.edges) <= 0):
            raise ValueError("edges must be strictly increasing, len >= 2")
        self.counts = np.zeros((n_rows, len(self.edges) - 1), dtype=np.float64)
        self.under = np.zeros(n_rows, dtype=np.float64)
        self.over = np.zeros(n_rows, dtype=np.float64)

    @property
    def n_rows(self) -> int:
        return self.counts.shape[0]

    def update(
        self,
        rows: np.ndarray,
        values: np.ndarray,
        weights: Optional[np.ndarray] = None,
    ) -> None:
        """Fold ``values`` (category per ``rows``) into the bank."""
        values = np.asarray(values, dtype=np.float64)
        finite = np.isfinite(values)
        if not finite.all():
            rows, values = rows[finite], values[finite]
            if weights is not None:
                weights = weights[finite]
        if len(values) == 0:
            return
        w = np.ones(len(values)) if weights is None else np.asarray(weights, np.float64)
        bin_idx = np.searchsorted(self.edges, values, side="right") - 1
        low = bin_idx < 0
        high = bin_idx >= self.counts.shape[1]
        mid = ~(low | high)
        nb = self.counts.shape[1]
        if mid.any():
            flat = rows[mid].astype(np.int64) * nb + bin_idx[mid]
            self.counts += np.bincount(
                flat, weights=w[mid], minlength=self.n_rows * nb
            ).reshape(self.n_rows, nb)
        if low.any():
            self.under += np.bincount(rows[low], weights=w[low], minlength=self.n_rows)
        if high.any():
            self.over += np.bincount(rows[high], weights=w[high], minlength=self.n_rows)

    def merge(self, other: "HistFamily") -> None:
        if self.counts.shape != other.counts.shape or not np.array_equal(
            self.edges, other.edges
        ):
            raise ValueError("cannot merge histograms with different binning")
        self.counts += other.counts
        self.under += other.under
        self.over += other.over

    # -- queries -------------------------------------------------------

    def total(self, row: int) -> float:
        return float(self.counts[row].sum() + self.under[row] + self.over[row])

    def cdf_at(self, row: int, x: float) -> float:
        """P(X <= x), linear inside the containing bin."""
        total = self.total(row)
        if total == 0:
            return float("nan")
        below = self.under[row]
        idx = int(np.searchsorted(self.edges, x, side="right")) - 1
        if idx < 0:
            return float(below / total)
        if idx >= self.counts.shape[1]:
            return float((total - self.over[row]) / total + self.over[row] / total)
        below += self.counts[row, :idx].sum()
        lo, hi = self.edges[idx], self.edges[idx + 1]
        below += self.counts[row, idx] * (x - lo) / (hi - lo)
        return float(below / total)

    def ccdf_at(self, row: int, x: float) -> float:
        return 1.0 - self.cdf_at(row, x)

    def quantile(self, row: int, q: float) -> float:
        total = self.total(row)
        if total == 0:
            return float("nan")
        target = q * total
        cum = self.under[row]
        if target <= cum:
            return float(self.edges[0])
        for idx in range(self.counts.shape[1]):
            nxt = cum + self.counts[row, idx]
            if target <= nxt and self.counts[row, idx] > 0:
                frac = (target - cum) / self.counts[row, idx]
                return float(
                    self.edges[idx] + frac * (self.edges[idx + 1] - self.edges[idx])
                )
            cum = nxt
        return float(self.edges[-1])

    def quantiles(self, row: int, qs: Sequence[float] = (0.25, 0.5, 0.75)) -> np.ndarray:
        return np.array([self.quantile(row, q) for q in qs])


@dataclass
class _HistSpec:
    """(attribute name, bin edges) of one serialized histogram bank."""

    name: str
    edges: np.ndarray


class StreamRollup:
    """The composite mergeable aggregate of a streaming capture."""

    #: Customer-day flows per day: 1 .. 1e6, 12 bins/decade.
    FLOW_EDGES = _decade_edges(0, 6)
    #: Customer-day bytes: 1 kB .. 1 TB with exact decade edges, so the
    #: 1 GB / 10 GB heavy-hitter thresholds are bin boundaries.
    BYTE_EDGES = _decade_edges(3, 12)
    #: Satellite RTT, ms: linear 0..5000 in 25 ms bins.
    SAT_EDGES = np.linspace(0.0, 5000.0, 201)
    #: Ground RTT, ms: 1..1000, 24 bins/decade.
    GROUND_EDGES = _decade_edges(0, 3, per_decade=24)
    #: Figure 7 customer-day category bytes: 1 B .. 1 TB, 24 bins/decade.
    CAT_BYTE_EDGES = _decade_edges(0, 12, per_decade=24)
    #: Figure 10 DNS response time, ms: 0.1 ms .. 10 s, 24 bins/decade.
    DNS_EDGES = _decade_edges(-1, 4, per_decade=24)
    #: Figure 11 bulk-flow throughput, Mb/s: 0.01 .. 1000, 48 bins/decade.
    TPUT_EDGES = _decade_edges(-2, 3, per_decade=48)
    #: Figure 12 rebuffer ratio: linear 0..1 in 2 % bins.
    QOE_REBUF_EDGES = np.linspace(0.0, 1.0, 51)
    #: Figure 12 mean resolution level: linear 0..8 in 0.1-level bins
    #: (room for ladders longer than the default five rungs).
    QOE_LEVEL_EDGES = np.linspace(0.0, 8.0, 81)

    def __init__(
        self,
        countries: Sequence[str],
        services: Sequence[str],
        resolvers: Sequence[str] = (),
    ) -> None:
        self.countries = list(countries)
        self.services = list(services)
        self.resolvers = list(resolvers)
        nc, ns, nl = len(self.countries), len(self.services), len(L7_ORDER)
        nr = len(self.resolvers)

        self.flows_total = 0
        self.windows_folded = 0
        # Figure 2 counters
        self.bytes_up_c = np.zeros(nc, dtype=np.float64)
        self.bytes_down_c = np.zeros(nc, dtype=np.float64)
        self.flows_c = np.zeros(nc, dtype=np.int64)
        self._customers: List[set] = [set() for _ in range(nc)]
        # Figure 3: (country, l7, hour) volume
        self.vol_clh = np.zeros((nc, nl, 24), dtype=np.float64)
        # Figures 6/7-style: (country, service+1, hour) volume;
        # service index 0 is "unattributed" (service_true_idx == -1)
        self.vol_csh = np.zeros((nc, ns + 1, 24), dtype=np.float64)
        # Figure 4: day -> (country, hour) volume
        self.vol_day: Dict[int, np.ndarray] = {}
        # Figure 5
        self.cd_total_c = np.zeros(nc, dtype=np.int64)
        self.cd_idle_c = np.zeros(nc, dtype=np.int64)
        self.h5_flows = HistFamily(self.FLOW_EDGES, nc)
        self.h5_down = HistFamily(self.BYTE_EDGES, nc)
        self.h5_up = HistFamily(self.BYTE_EDGES, nc)
        # Figure 8a
        self.h8_night = HistFamily(self.SAT_EDGES, nc)
        self.h8_peak = HistFamily(self.SAT_EDGES, nc)
        self.sat_min_c = np.full(nc, np.inf, dtype=np.float64)
        # Figure 8b: satellite RTT vs local time of day,
        # row = country * 24 + local_hour. Flat for GEO; the
        # constellation engine makes the per-hour medians move.
        self.h8_hour = HistFamily(self.SAT_EDGES, nc * 24)
        # Figure 9
        self.h9_cnt = HistFamily(self.GROUND_EDGES, nc)
        self.h9_vol = HistFamily(self.GROUND_EDGES, nc)
        # Figure 6: Σ over days of distinct customers per
        # (country, classifier service); exact under day-aligned windows.
        self._classifier = ServiceClassifier()
        self.classifier_services = [r.service for r in self._classifier.rules]
        n_svc = len(self.classifier_services)
        self.svc_cust_days = np.zeros((nc, n_svc), dtype=np.int64)
        # Figure 7: customer-day category volume histograms,
        # row = category * nc + country.
        self.h7_volume = HistFamily(self.CAT_BYTE_EDGES, len(FIG7_CATEGORIES) * nc)
        # Figure 10: DNS flow counts per (country, resolver) — exact
        # shares — plus per-resolver response-time histograms.
        self.dns_cr = np.zeros((nc, nr), dtype=np.int64)
        self.h10_resp = HistFamily(self.DNS_EDGES, max(nr, 1))
        # Figure 11: per-country bulk-flow throughput (all / night / peak).
        self.h11_all = HistFamily(self.TPUT_EDGES, nc)
        self.h11_night = HistFamily(self.TPUT_EDGES, nc)
        self.h11_peak = HistFamily(self.TPUT_EDGES, nc)
        # Figure 12: video-session QoE per (plan, country),
        # row = plan * nc + country. Sessions are deduped per window
        # (every chunk of a session carries the same QoE triple), and
        # a session never straddles windows — it lives inside one
        # (customer, day) — so folding windows in any order is exact.
        n_plans = len(PLAN_ORDER)
        self.qoe_sessions = np.zeros(n_plans * nc, dtype=np.int64)
        self.qoe_rebuffer_sum = np.zeros(n_plans * nc, dtype=np.float64)
        self.qoe_level_sum = np.zeros(n_plans * nc, dtype=np.float64)
        self.qoe_switch_sum = np.zeros(n_plans * nc, dtype=np.float64)
        self.h12_rebuf = HistFamily(self.QOE_REBUF_EDGES, n_plans * nc)
        self.h12_level = HistFamily(self.QOE_LEVEL_EDGES, n_plans * nc)
        # Table 2: per-customer bank — DNS flows per resolver plus
        # ground-RTT (sum, count) per Table 2 domain group.
        self._t2_groups = list(TABLE2_DOMAIN_GROUPS)
        self._t2_compiled = [
            re.compile(TABLE2_DOMAIN_GROUPS[name]) for name in self._t2_groups
        ]
        self._t2: Dict[int, np.ndarray] = {}

    @property
    def _t2_vec_len(self) -> int:
        return len(self.resolvers) + 2 * len(self._t2_groups)

    @classmethod
    def for_frame(cls, frame: FlowFrame) -> "StreamRollup":
        """An empty rollup matching ``frame``'s categorical pools."""
        return cls(frame.countries, frame.services, frame.resolvers)

    def _hist_specs(self) -> List[_HistSpec]:
        return [
            _HistSpec("h5_flows", self.FLOW_EDGES),
            _HistSpec("h5_down", self.BYTE_EDGES),
            _HistSpec("h5_up", self.BYTE_EDGES),
            _HistSpec("h7_volume", self.CAT_BYTE_EDGES),
            _HistSpec("h8_night", self.SAT_EDGES),
            _HistSpec("h8_peak", self.SAT_EDGES),
            _HistSpec("h8_hour", self.SAT_EDGES),
            _HistSpec("h9_cnt", self.GROUND_EDGES),
            _HistSpec("h9_vol", self.GROUND_EDGES),
            _HistSpec("h10_resp", self.DNS_EDGES),
            _HistSpec("h11_all", self.TPUT_EDGES),
            _HistSpec("h11_night", self.TPUT_EDGES),
            _HistSpec("h11_peak", self.TPUT_EDGES),
            _HistSpec("h12_rebuf", self.QOE_REBUF_EDGES),
            _HistSpec("h12_level", self.QOE_LEVEL_EDGES),
        ]

    # -- update --------------------------------------------------------

    def update(self, frame: Optional[FlowFrame]) -> "StreamRollup":
        """Fold one capture window (or any day-aligned chunk) in.

        The chunk must contain *all* flows of every (customer, day)
        pair it touches — true for whole windows and for single-shard
        windows, since a customer lives in exactly one shard.
        """
        self.windows_folded += 1
        if frame is None or len(frame) == 0:
            return self
        if (
            frame.countries != self.countries
            or frame.services != self.services
            or frame.resolvers != self.resolvers
        ):
            raise ValueError("frame pools do not match this rollup")
        nc = len(self.countries)
        c = frame.country_idx.astype(np.int64)
        hour = frame.hour_utc.astype(np.int64) % 24
        vol = frame.bytes_total()
        self.flows_total += len(frame)
        self.bytes_up_c += np.bincount(c, weights=frame.bytes_up, minlength=nc)
        self.bytes_down_c += np.bincount(c, weights=frame.bytes_down, minlength=nc)
        self.flows_c += np.bincount(c, minlength=nc).astype(np.int64)

        nl = len(L7_ORDER)
        flat_l7 = (c * nl + frame.l7_idx.astype(np.int64)) * 24 + hour
        self.vol_clh += np.bincount(
            flat_l7, weights=vol, minlength=nc * nl * 24
        ).reshape(nc, nl, 24)

        ns1 = len(self.services) + 1
        svc = frame.service_true_idx.astype(np.int64) + 1
        flat_svc = (c * ns1 + svc) * 24 + hour
        self.vol_csh += np.bincount(
            flat_svc, weights=vol, minlength=nc * ns1 * 24
        ).reshape(nc, ns1, 24)

        for day in np.unique(frame.day):
            mask = frame.day == day
            matrix = self.vol_day.setdefault(
                int(day), np.zeros((nc, 24), dtype=np.float64)
            )
            matrix += np.bincount(
                c[mask] * 24 + hour[mask], weights=vol[mask], minlength=nc * 24
            ).reshape(nc, 24)

        for idx in np.unique(c):
            self._customers[int(idx)].update(
                int(x) for x in np.unique(frame.customer_id[c == idx])
            )

        self._update_customer_days(frame, c)
        self._update_rtt(frame, c, vol)
        self._update_services(frame, c, vol)
        self._update_dns(frame, c)
        self._update_qoe(frame, c)
        return self

    def _update_customer_days(self, frame: FlowFrame, c: np.ndarray) -> None:
        # One sort pass: group by (customer, day), each group belongs
        # to one country (a customer has one country).
        combined = frame.customer_id.astype(np.int64) * 100_000 + frame.day.astype(
            np.int64
        )
        order = np.argsort(combined, kind="stable")
        combined = combined[order]
        starts = np.concatenate(([0], np.flatnonzero(np.diff(combined)) + 1))
        flows = np.diff(np.concatenate((starts, [len(combined)]))).astype(np.float64)
        down = np.add.reduceat(frame.bytes_down[order], starts)
        up = np.add.reduceat(frame.bytes_up[order], starts)
        group_country = c[order][starts]

        nc = len(self.countries)
        self.cd_total_c += np.bincount(group_country, minlength=nc).astype(np.int64)
        idle = flows < IDLE_FLOW_THRESHOLD
        self.cd_idle_c += np.bincount(
            group_country[idle], minlength=nc
        ).astype(np.int64)
        self.h5_flows.update(group_country, flows)
        active = ~idle
        self.h5_down.update(group_country[active], down[active])
        self.h5_up.update(group_country[active], up[active])

    def _update_rtt(self, frame: FlowFrame, c: np.ndarray, vol: np.ndarray) -> None:
        local_hour = local_hour_of(frame)
        has_sat = np.isfinite(frame.sat_rtt_ms)
        night = (local_hour >= NIGHT_HOURS[0]) & (local_hour < NIGHT_HOURS[1]) & has_sat
        peak = (local_hour >= PEAK_HOURS[0]) & (local_hour < PEAK_HOURS[1]) & has_sat
        self.h8_night.update(c[night], frame.sat_rtt_ms[night])
        self.h8_peak.update(c[peak], frame.sat_rtt_ms[peak])
        hour_rows = c[has_sat] * 24 + local_hour[has_sat].astype(np.int64) % 24
        self.h8_hour.update(hour_rows, frame.sat_rtt_ms[has_sat])
        nc = len(self.countries)
        either = night | peak
        if either.any():
            sat = frame.sat_rtt_ms[either].astype(np.float64)
            np.minimum.at(self.sat_min_c, c[either], sat)

        tcp = np.isin(frame.l7_idx, [L7_ORDER.index(p) for p in _TCP_L7])
        ground_ok = tcp & np.isfinite(frame.ground_rtt_ms)
        rtt = frame.ground_rtt_ms[ground_ok].astype(np.float64)
        rows = c[ground_ok]
        self.h9_cnt.update(rows, rtt)
        self.h9_vol.update(rows, rtt, weights=vol[ground_ok])

        # Figure 11: bulk-download throughput (Mb/s), overall plus the
        # same night/peak local-hour periods as Figure 8a.
        with np.errstate(divide="ignore", invalid="ignore"):
            mbps = frame.bytes_down * 8.0 / frame.duration_s / 1e6
        bulk = (frame.bytes_down >= BULK_FLOW_MIN_BYTES) & np.isfinite(mbps)
        night_b = bulk & (local_hour >= NIGHT_HOURS[0]) & (local_hour < NIGHT_HOURS[1])
        peak_b = bulk & (local_hour >= PEAK_HOURS[0]) & (local_hour < PEAK_HOURS[1])
        self.h11_all.update(c[bulk], mbps[bulk])
        self.h11_night.update(c[night_b], mbps[night_b])
        self.h11_peak.update(c[peak_b], mbps[peak_b])

    def _update_services(self, frame: FlowFrame, c: np.ndarray, vol: np.ndarray) -> None:
        """Figures 6/7: classifier-labelled customer-day aggregates.

        Labels come from the Table 3 regexes over the window's domain
        pool (memoized — the pool is identical across windows), *not*
        from the generator's ground truth, mirroring the frame paths.
        """
        pool_labels, names = self._classifier.classify_pool(frame.domains)
        if names != self.classifier_services:
            raise ValueError("classifier rules changed under a live rollup")
        labels = np.full(len(frame), -1, dtype=np.int16)
        has_domain = frame.domain_idx >= 0
        labels[has_domain] = pool_labels[frame.domain_idx[has_domain]]
        matched = labels >= 0
        if not matched.any():
            return
        nc = len(self.countries)
        lab = labels[matched].astype(np.int64)
        cust = frame.customer_id[matched].astype(np.int64)
        day = frame.day[matched].astype(np.int64)
        cc = c[matched]

        # Figure 6: distinct customers per (country, service, day),
        # summed over days — group by (service, customer, day).
        combined = (lab * 1_000_000 + cust) * 100_000 + day
        order = np.argsort(combined, kind="stable")
        starts = np.concatenate(
            ([0], np.flatnonzero(np.diff(combined[order])) + 1)
        )
        g_country = cc[order][starts]
        g_svc = lab[order][starts]
        n_svc = len(self.classifier_services)
        self.svc_cust_days += np.bincount(
            g_country.astype(np.int64) * n_svc + g_svc, minlength=nc * n_svc
        ).reshape(nc, n_svc).astype(np.int64)

        # Figure 7: customer-day volume per category.
        cat_of_label = np.full(n_svc, -1, dtype=np.int64)
        for i, rule in enumerate(self._classifier.rules):
            if rule.category in FIG7_CATEGORIES:
                cat_of_label[i] = FIG7_CATEGORIES.index(rule.category)
        cat = cat_of_label[lab]
        has_cat = cat >= 0
        if not has_cat.any():
            return
        combined = ((cat[has_cat] * 1_000_000 + cust[has_cat])) * 100_000 + day[has_cat]
        values = vol[matched][has_cat]
        order = np.argsort(combined, kind="stable")
        combined = combined[order]
        starts = np.concatenate(([0], np.flatnonzero(np.diff(combined)) + 1))
        sums = np.add.reduceat(values[order], starts)
        g_country = cc[has_cat][order][starts].astype(np.int64)
        g_cat = cat[has_cat][order][starts]
        self.h7_volume.update(g_cat * nc + g_country, sums)

    def _update_qoe(self, frame: FlowFrame, c: np.ndarray) -> None:
        """Figure 12: per-(country, plan) video-session QoE.

        Every chunk flow of a session repeats the session's QoE triple,
        so the window's sessions are recovered by deduping on
        ``session_id`` (globally unique — the id encodes customer and
        day) and each session contributes exactly once.
        """
        has = frame.session_id >= 0
        if not has.any():
            return
        ids = frame.session_id[has]
        _, first = np.unique(ids, return_index=True)
        plan = plan_index_bulk(frame.plan_down_mbps[has][first]).astype(np.int64)
        rebuf = frame.qoe_rebuffer[has][first].astype(np.float64)
        level = frame.qoe_level[has][first].astype(np.float64)
        switches = frame.qoe_switches[has][first].astype(np.float64)
        ok = (plan >= 0) & np.isfinite(rebuf) & np.isfinite(level)
        if not ok.any():
            return
        nc = len(self.countries)
        rows = plan[ok] * nc + c[has][first][ok]
        size = len(PLAN_ORDER) * nc
        self.qoe_sessions += np.bincount(rows, minlength=size).astype(np.int64)
        self.qoe_rebuffer_sum += np.bincount(rows, weights=rebuf[ok], minlength=size)
        self.qoe_level_sum += np.bincount(rows, weights=level[ok], minlength=size)
        self.qoe_switch_sum += np.bincount(rows, weights=switches[ok], minlength=size)
        self.h12_rebuf.update(rows, rebuf[ok])
        self.h12_level.update(rows, level[ok])

    def _update_dns(self, frame: FlowFrame, c: np.ndarray) -> None:
        """Figure 10 counters/histograms and the Table 2 customer bank."""
        nr = len(self.resolvers)
        if nr == 0:
            return
        nc = len(self.countries)
        dns = frame.resolver_idx >= 0
        res = frame.resolver_idx.astype(np.int64)
        self.dns_cr += np.bincount(
            c[dns] * nr + res[dns], minlength=nc * nr
        ).reshape(nc, nr).astype(np.int64)
        resp_ok = dns & np.isfinite(frame.dns_response_ms)
        self.h10_resp.update(res[resp_ok], frame.dns_response_ms[resp_ok])

        # Table 2 bank: group flows by customer, then accumulate that
        # customer's resolver counts and per-domain-group RTT sums.
        ng = len(self._t2_groups)
        pool_group = np.full(len(frame.domains), -1, dtype=np.int16)
        for d_idx, domain in enumerate(frame.domains):
            for g_idx, pattern in enumerate(self._t2_compiled):
                if pattern.search(domain):
                    pool_group[d_idx] = g_idx
                    break
        flow_group = np.full(len(frame), -1, dtype=np.int16)
        has_domain = frame.domain_idx >= 0
        flow_group[has_domain] = pool_group[frame.domain_idx[has_domain]]
        rtt_ok = np.isfinite(frame.ground_rtt_ms) & (flow_group >= 0)

        relevant = dns | rtt_ok
        if not relevant.any():
            return
        cust = frame.customer_id[relevant].astype(np.int64)
        r_rel = res[relevant]
        g_rel = flow_group[relevant].astype(np.int64)
        rtt_rel = frame.ground_rtt_ms[relevant].astype(np.float64)
        dns_rel = dns[relevant]
        rtt_rel_ok = rtt_ok[relevant]
        order = np.argsort(cust, kind="stable")
        cust = cust[order]
        starts = np.concatenate(([0], np.flatnonzero(np.diff(cust)) + 1))
        ends = np.concatenate((starts[1:], [len(cust)]))
        for lo, hi in zip(starts, ends):
            seg = order[lo:hi]
            vec = self._t2.setdefault(
                int(cust[lo]), np.zeros(self._t2_vec_len, dtype=np.float64)
            )
            seg_dns = seg[dns_rel[order[lo:hi]]]
            if len(seg_dns):
                vec[:nr] += np.bincount(r_rel[seg_dns], minlength=nr)
            seg_rtt = seg[rtt_rel_ok[order[lo:hi]]]
            if len(seg_rtt):
                groups = g_rel[seg_rtt]
                vec[nr : nr + ng] += np.bincount(
                    groups, weights=rtt_rel[seg_rtt], minlength=ng
                )
                vec[nr + ng :] += np.bincount(groups, minlength=ng)

    # -- merge ---------------------------------------------------------

    def merge(self, other: "StreamRollup") -> "StreamRollup":
        """Fold another rollup in (associative, pools must match)."""
        if (
            other.countries != self.countries
            or other.services != self.services
            or other.resolvers != self.resolvers
        ):
            raise ValueError("cannot merge rollups with different pools")
        self.flows_total += other.flows_total
        self.windows_folded += other.windows_folded
        self.bytes_up_c += other.bytes_up_c
        self.bytes_down_c += other.bytes_down_c
        self.flows_c += other.flows_c
        self.vol_clh += other.vol_clh
        self.vol_csh += other.vol_csh
        for day, matrix in other.vol_day.items():
            if day in self.vol_day:
                self.vol_day[day] += matrix
            else:
                self.vol_day[day] = matrix.copy()
        for mine, theirs in zip(self._customers, other._customers):
            mine |= theirs
        self.cd_total_c += other.cd_total_c
        self.cd_idle_c += other.cd_idle_c
        for spec in self._hist_specs():
            getattr(self, spec.name).merge(getattr(other, spec.name))
        self.sat_min_c = np.minimum(self.sat_min_c, other.sat_min_c)
        self.svc_cust_days += other.svc_cust_days
        self.dns_cr += other.dns_cr
        self.qoe_sessions += other.qoe_sessions
        self.qoe_rebuffer_sum += other.qoe_rebuffer_sum
        self.qoe_level_sum += other.qoe_level_sum
        self.qoe_switch_sum += other.qoe_switch_sum
        for cid, vec in other._t2.items():
            mine = self._t2.setdefault(
                cid, np.zeros(self._t2_vec_len, dtype=np.float64)
            )
            mine += vec
        return self

    def copy(self) -> "StreamRollup":
        """A deep, digest-identical copy — the serve snapshot primitive.

        Every array is copied explicitly (no merge-into-empty, whose
        float adds could flip signed-zero bits, and no save/load round
        trip, which would pay npz compression per window), so
        ``copy().state_digest() == state_digest()`` holds bit for bit
        and the copy never aliases live mutable state.
        """
        other = StreamRollup(self.countries, self.services, self.resolvers)
        other.flows_total = self.flows_total
        other.windows_folded = self.windows_folded
        other.bytes_up_c = self.bytes_up_c.copy()
        other.bytes_down_c = self.bytes_down_c.copy()
        other.flows_c = self.flows_c.copy()
        other.vol_clh = self.vol_clh.copy()
        other.vol_csh = self.vol_csh.copy()
        other.vol_day = {day: matrix.copy() for day, matrix in self.vol_day.items()}
        other._customers = [set(s) for s in self._customers]
        other.cd_total_c = self.cd_total_c.copy()
        other.cd_idle_c = self.cd_idle_c.copy()
        other.sat_min_c = self.sat_min_c.copy()
        other.svc_cust_days = self.svc_cust_days.copy()
        other.dns_cr = self.dns_cr.copy()
        other.qoe_sessions = self.qoe_sessions.copy()
        other.qoe_rebuffer_sum = self.qoe_rebuffer_sum.copy()
        other.qoe_level_sum = self.qoe_level_sum.copy()
        other.qoe_switch_sum = self.qoe_switch_sum.copy()
        other._t2 = {cid: vec.copy() for cid, vec in self._t2.items()}
        for spec in self._hist_specs():
            mine: HistFamily = getattr(self, spec.name)
            theirs: HistFamily = getattr(other, spec.name)
            theirs.counts = mine.counts.copy()
            theirs.under = mine.under.copy()
            theirs.over = mine.over.copy()
        return other

    # -- queries used by the from_rollup report paths ------------------

    def country_row(self, country: str) -> int:
        return self.countries.index(country)

    def volume_c(self) -> np.ndarray:
        """Total bytes per country."""
        return self.bytes_up_c + self.bytes_down_c

    def customers_c(self) -> np.ndarray:
        return np.array([len(s) for s in self._customers], dtype=np.int64)

    def days_seen(self, country: str) -> int:
        row = self.country_row(country)
        return sum(1 for matrix in self.vol_day.values() if matrix[row].sum() > 0)

    def hourly_day_median(self, country: str) -> np.ndarray:
        """24-vector: per-hour volume, median across days, normalized.

        The streaming stand-in for the frame path's winsorized robust
        curve (Figure 4): the day-median damps single binge days the
        same way, without needing per-flow quantiles.
        """
        row = self.country_row(country)
        per_day = np.array(
            [matrix[row] for matrix in self.vol_day.values()], dtype=np.float64
        )
        if len(per_day) == 0:
            return np.zeros(24)
        totals = np.median(per_day, axis=0)
        peak = totals.max()
        return totals / peak if peak > 0 else totals

    def n_days(self) -> int:
        """Distinct capture days folded so far (days with any flow)."""
        return len(self.vol_day)

    def volume_by_l7(self) -> np.ndarray:
        """Total bytes per l7 protocol (Table 1) — exact."""
        return self.vol_clh.sum(axis=(0, 2))

    def service_row(self, service: str) -> int:
        return self.classifier_services.index(service)

    def fig7_row(self, category: ServiceCategory, country: str) -> int:
        """Row of :attr:`h7_volume` for one (category, country) cell."""
        return FIG7_CATEGORIES.index(category) * len(self.countries) + self.country_row(
            country
        )

    def qoe_row(self, country: str, plan: str) -> int:
        """Row of the Figure 12 QoE bank for one (country, plan) cell."""
        return PLAN_ORDER.index(plan) * len(self.countries) + self.country_row(
            country
        )

    def resolver_row(self, resolver: str) -> int:
        return self.resolvers.index(resolver)

    def customers_of(self, country: str) -> List[int]:
        """Distinct customer ids seen in ``country`` (sorted)."""
        return sorted(self._customers[self.country_row(country)])

    def t2_bank(self, customer: int) -> Optional[Tuple[np.ndarray, np.ndarray, np.ndarray]]:
        """One customer's Table 2 bank: (DNS flows per resolver,
        ground-RTT sum per domain group, sample count per group)."""
        vec = self._t2.get(int(customer))
        if vec is None:
            return None
        nr, ng = len(self.resolvers), len(self._t2_groups)
        return vec[:nr], vec[nr : nr + ng], vec[nr + ng :]

    @property
    def t2_groups(self) -> List[str]:
        """Table 2 domain-group names, in bank order."""
        return list(self._t2_groups)

    # -- persistence ---------------------------------------------------

    def _state_arrays(self) -> Dict[str, np.ndarray]:
        arrays: Dict[str, np.ndarray] = {
            "bytes_up_c": self.bytes_up_c,
            "bytes_down_c": self.bytes_down_c,
            "flows_c": self.flows_c,
            "vol_clh": self.vol_clh,
            "vol_csh": self.vol_csh,
            "cd_total_c": self.cd_total_c,
            "cd_idle_c": self.cd_idle_c,
            "sat_min_c": self.sat_min_c,
            "svc_cust_days": self.svc_cust_days,
            "dns_cr": self.dns_cr,
            "qoe_sessions": self.qoe_sessions,
            "qoe_rebuffer_sum": self.qoe_rebuffer_sum,
            "qoe_level_sum": self.qoe_level_sum,
            "qoe_switch_sum": self.qoe_switch_sum,
            "counters": np.array(
                [self.flows_total, self.windows_folded], dtype=np.int64
            ),
        }
        t2_ids = np.array(sorted(self._t2), dtype=np.int64)
        arrays["t2_ids"] = t2_ids
        arrays["t2_stats"] = (
            np.stack([self._t2[int(cid)] for cid in t2_ids])
            if len(t2_ids)
            else np.zeros((0, self._t2_vec_len), dtype=np.float64)
        )
        days = sorted(self.vol_day)
        arrays["day_keys"] = np.array(days, dtype=np.int64)
        arrays["day_vol"] = (
            np.stack([self.vol_day[d] for d in days])
            if days
            else np.zeros((0, len(self.countries), 24), dtype=np.float64)
        )
        ids = [np.array(sorted(s), dtype=np.int64) for s in self._customers]
        arrays["cust_ids"] = (
            np.concatenate(ids) if ids else np.zeros(0, dtype=np.int64)
        )
        arrays["cust_offsets"] = np.cumsum([0] + [len(x) for x in ids]).astype(
            np.int64
        )
        for spec in self._hist_specs():
            hist: HistFamily = getattr(self, spec.name)
            arrays[f"{spec.name}_counts"] = hist.counts
            arrays[f"{spec.name}_under"] = hist.under
            arrays[f"{spec.name}_over"] = hist.over
        return arrays

    def state_digest(self) -> str:
        """SHA-256 over the canonical state — the bit-identity oracle.

        Two rollups with equal digests folded the same flows (up to
        hash collision); the checkpoint stores it, and the stream tests
        compare one-shot vs killed-and-resumed captures with it.
        """
        digest = hashlib.sha256()
        digest.update(
            json.dumps(
                {
                    "schema": ROLLUP_SCHEMA,
                    "countries": self.countries,
                    "services": self.services,
                    "resolvers": self.resolvers,
                },
                sort_keys=True,
            ).encode()
        )
        for name, array in sorted(self._state_arrays().items()):
            digest.update(name.encode())
            digest.update(np.ascontiguousarray(array).tobytes())
        return digest.hexdigest()

    def save(self, path, injector: Optional[FaultInjector] = None) -> None:
        """Atomically persist the rollup state to an ``.npz``."""
        meta = json.dumps(
            {
                "schema": ROLLUP_SCHEMA,
                "countries": self.countries,
                "services": self.services,
                "resolvers": self.resolvers,
            }
        )
        arrays = self._state_arrays()
        atomic_write_bytes(
            os.fspath(path),
            lambda h: np.savez(h, meta=np.array(meta), **arrays),
            injector=injector,
            op="rollup.save",
        )

    @classmethod
    def load(cls, path) -> "StreamRollup":
        """Load a state written by :meth:`save`.

        Damage (truncation, flipped bits, another schema) raises
        :class:`CaptureError`, never a raw npz/zip error.
        """
        try:
            return cls._load(path)
        except CaptureError:
            raise
        except (OSError, EOFError, ValueError, KeyError, zipfile.BadZipFile, zlib.error) as exc:
            if isinstance(exc, FileNotFoundError):
                raise
            raise CaptureError(f"corrupt rollup state {path}: {exc}") from exc

    @classmethod
    def _load(cls, path) -> "StreamRollup":
        with np.load(path, allow_pickle=False) as data:
            meta = json.loads(str(data["meta"]))
            if meta.get("schema") != ROLLUP_SCHEMA:
                raise CaptureError(
                    f"corrupt rollup state {path}: schema "
                    f"{meta.get('schema')} != {ROLLUP_SCHEMA}"
                )
            rollup = cls(meta["countries"], meta["services"], meta["resolvers"])
            rollup.bytes_up_c = data["bytes_up_c"].copy()
            rollup.bytes_down_c = data["bytes_down_c"].copy()
            rollup.flows_c = data["flows_c"].copy()
            rollup.vol_clh = data["vol_clh"].copy()
            rollup.vol_csh = data["vol_csh"].copy()
            rollup.cd_total_c = data["cd_total_c"].copy()
            rollup.cd_idle_c = data["cd_idle_c"].copy()
            rollup.sat_min_c = data["sat_min_c"].copy()
            rollup.svc_cust_days = data["svc_cust_days"].copy()
            rollup.dns_cr = data["dns_cr"].copy()
            rollup.qoe_sessions = data["qoe_sessions"].copy()
            rollup.qoe_rebuffer_sum = data["qoe_rebuffer_sum"].copy()
            rollup.qoe_level_sum = data["qoe_level_sum"].copy()
            rollup.qoe_switch_sum = data["qoe_switch_sum"].copy()
            rollup._t2 = {
                int(cid): data["t2_stats"][i].copy()
                for i, cid in enumerate(data["t2_ids"])
            }
            counters = data["counters"]
            rollup.flows_total = int(counters[0])
            rollup.windows_folded = int(counters[1])
            day_keys = data["day_keys"]
            day_vol = data["day_vol"]
            rollup.vol_day = {
                int(day): day_vol[i].copy() for i, day in enumerate(day_keys)
            }
            ids = data["cust_ids"]
            offsets = data["cust_offsets"]
            rollup._customers = [
                set(int(x) for x in ids[offsets[i] : offsets[i + 1]])
                for i in range(len(rollup.countries))
            ]
            for spec in rollup._hist_specs():
                hist: HistFamily = getattr(rollup, spec.name)
                hist.counts = data[f"{spec.name}_counts"].copy()
                hist.under = data[f"{spec.name}_under"].copy()
                hist.over = data[f"{spec.name}_over"].copy()
        return rollup


@dataclass
class HourlyRollup:
    """The paper's Section 3.1 hourly aggregate view.

    "The second step is to create aggregated views of the data to
    obtain traffic breakdowns by protocols, server domains, time (with
    1 hour granularity), country of the customer, and contacted
    service" — one row per (day, hour, country, l7, service) with
    flow/byte/customer counters, built in one vectorized pass and
    queryable without touching the flow table again.

    Part of the mergeable rollup family: :meth:`merge` folds two views
    keyed on the same pools. Counters are exact; the distinct-customer
    column is exact only when the merged views cover *disjoint day
    ranges* (the streaming window discipline — a customer seen in the
    same cell from both sides would be double counted).
    """

    day: np.ndarray
    hour: np.ndarray
    country_idx: np.ndarray
    l7_idx: np.ndarray
    service_idx: np.ndarray  # -1 = unattributed
    flows: np.ndarray
    bytes_total: np.ndarray
    bytes_up: np.ndarray
    bytes_down: np.ndarray
    customers: np.ndarray  # distinct customers in the cell

    countries: list
    services: list

    def __len__(self) -> int:
        return len(self.day)

    @staticmethod
    def _decode_keys(unique: np.ndarray) -> Tuple[np.ndarray, ...]:
        service = (unique % 100) - 1
        rest = unique // 100
        l7 = rest % 10
        rest //= 10
        country = rest % 100
        rest //= 100
        hour = rest % 100
        day = rest // 100
        return day, hour, country, l7, service

    def _keys(self) -> np.ndarray:
        return (
            self.day.astype(np.int64) * 10_000_000
            + self.hour.astype(np.int64) * 100_000
            + self.country_idx.astype(np.int64) * 1_000
            + self.l7_idx.astype(np.int64) * 100
            + (self.service_idx.astype(np.int64) + 1)
        )

    @classmethod
    def from_frame(cls, frame: FlowFrame) -> "HourlyRollup":
        """Aggregate a flow table into hourly cells."""
        if frame.customer_id.max(initial=0) >= 1_000_000:
            raise ValueError("rollup keys assume customer ids below 1e6")
        hours = frame.hour_utc.astype(np.int64) % 24
        # Composite key: day | hour | country | l7 | service(+1)
        key = (
            frame.day.astype(np.int64) * 10_000_000
            + hours * 100_000
            + frame.country_idx.astype(np.int64) * 1_000
            + frame.l7_idx.astype(np.int64) * 100
            + (frame.service_true_idx.astype(np.int64) + 1)
        )
        # Sort by (cell, customer) so distinct-customer counting is a
        # simple adjacent-difference within each cell.
        combined = key * 1_000_000 + frame.customer_id.astype(np.int64)
        order = np.argsort(combined, kind="stable")
        sorted_combined = combined[order]
        sorted_key = sorted_combined // 1_000_000
        boundaries = np.concatenate(([0], np.flatnonzero(np.diff(sorted_key)) + 1))

        def segsum(values: np.ndarray) -> np.ndarray:
            return np.add.reduceat(values[order].astype(np.float64), boundaries)

        unique = sorted_key[boundaries]
        day, hour, country, l7, service = cls._decode_keys(unique)

        distinct_mask = np.ones(len(sorted_combined), dtype=bool)
        distinct_mask[1:] = np.diff(sorted_combined) != 0
        customers = np.add.reduceat(distinct_mask.astype(np.float64), boundaries)

        return cls(
            day=day.astype(np.int32),
            hour=hour.astype(np.int8),
            country_idx=country.astype(np.int16),
            l7_idx=l7.astype(np.int8),
            service_idx=service.astype(np.int16),
            flows=segsum(np.ones(len(frame))),
            bytes_total=segsum(frame.bytes_total()),
            bytes_up=segsum(frame.bytes_up),
            bytes_down=segsum(frame.bytes_down),
            customers=customers,
            countries=list(frame.countries),
            services=list(frame.services),
        )

    # -- merge -------------------------------------------------------------

    def merge(self, other: "HourlyRollup") -> "HourlyRollup":
        """Fold another view in (associative; pools must match)."""
        if other.countries != self.countries or other.services != self.services:
            raise ValueError("cannot merge rollups with different pools")
        key = np.concatenate((self._keys(), other._keys()))
        order = np.argsort(key, kind="stable")
        sorted_key = key[order]
        boundaries = np.concatenate(
            ([0], np.flatnonzero(np.diff(sorted_key)) + 1)
        )

        def segsum(mine: np.ndarray, theirs: np.ndarray) -> np.ndarray:
            both = np.concatenate(
                (mine.astype(np.float64), theirs.astype(np.float64))
            )
            return np.add.reduceat(both[order], boundaries)

        unique = sorted_key[boundaries]
        day, hour, country, l7, service = self._decode_keys(unique)
        self.flows = segsum(self.flows, other.flows)
        self.bytes_total = segsum(self.bytes_total, other.bytes_total)
        self.bytes_up = segsum(self.bytes_up, other.bytes_up)
        self.bytes_down = segsum(self.bytes_down, other.bytes_down)
        self.customers = segsum(self.customers, other.customers)
        self.day = day.astype(np.int32)
        self.hour = hour.astype(np.int8)
        self.country_idx = country.astype(np.int16)
        self.l7_idx = l7.astype(np.int8)
        self.service_idx = service.astype(np.int16)
        return self

    # -- queries -----------------------------------------------------------

    def _mask(
        self,
        country: Optional[str] = None,
        l7_idx: Optional[int] = None,
        service: Optional[str] = None,
        hour: Optional[int] = None,
        day: Optional[int] = None,
    ) -> np.ndarray:
        mask = np.ones(len(self), dtype=bool)
        if country is not None:
            mask &= self.country_idx == self.countries.index(country)
        if l7_idx is not None:
            mask &= self.l7_idx == l7_idx
        if service is not None:
            mask &= self.service_idx == self.services.index(service)
        if hour is not None:
            mask &= self.hour == hour
        if day is not None:
            mask &= self.day == day
        return mask

    def volume(self, **filters) -> float:
        """Total bytes matching the filters."""
        return float(self.bytes_total[self._mask(**filters)].sum())

    def flow_count(self, **filters) -> float:
        """Total flows matching the filters."""
        return float(self.flows[self._mask(**filters)].sum())

    def hourly_series(self, country: str) -> np.ndarray:
        """24-vector of volume per UTC hour (sums across days)."""
        out = np.zeros(24)
        mask = self._mask(country=country)
        np.add.at(out, self.hour[mask].astype(int), self.bytes_total[mask])
        return out

    def reduction_factor(self, frame: FlowFrame) -> float:
        """How many times smaller the rollup is than the flow table."""
        if len(self) == 0:
            return float("inf")
        return len(frame) / len(self)
