"""Mergeable rollup sketches for streaming captures.

The paper's Spark jobs reduce 34.4 G flows to hourly aggregate views
(Section 3.1); this module is the streaming equivalent: every sketch
supports ``update(frame)`` with one capture window and ``merge(other)``
with another sketch, and both operations are associative — fold the
windows in any grouping and the bits come out the same. That is the
property checkpoint/resume relies on: a resumed capture replays *no*
flows, it just keeps folding new windows into the saved state.

What the sketches retain is exactly what the rollup-served figures
need:

* per-country volume/flow/customer counters         → Figure 2
* a (country, l7, hour) volume matrix               → Figure 3
* per-(country, day) hourly volume matrices         → Figure 4
* per-country customer-day histograms + counters    → Figure 5
* a (country, service, hour) volume matrix          → Figures 6/7-style
* night/peak satellite-RTT histograms per country   → Figure 8a
* ground-RTT histograms (count & volume weighted)   → Figure 9

``update`` must see *whole* windows whose boundaries fall on day
edges (the producer guarantees this): Figure 5 aggregates per
(customer, day), which is only exact when no customer-day straddles
two updates.
"""

from __future__ import annotations

import hashlib
import json
import os
import tempfile
from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np

from repro.analysis.aggregate import local_hour_of
from repro.analysis.dataset import FlowFrame
from repro.flowmeter.records import L7Protocol, L7_ORDER

#: Bump when the sketch layout changes; saved states refuse to load
#: across schema versions instead of mis-merging.
ROLLUP_SCHEMA = 1

#: Figure 8a local-hour periods (match fig8_satellite_rtt).
NIGHT_HOURS = (2.0, 5.0)
PEAK_HOURS = (13.0, 20.0)

#: Figure 5 activity knee (flows/day below which a CPE counts as idle).
IDLE_FLOW_THRESHOLD = 250.0

_TCP_L7 = (L7Protocol.HTTPS, L7Protocol.HTTP, L7Protocol.OTHER_TCP)


def _decade_edges(lo_exp: int, hi_exp: int, per_decade: int = 12) -> np.ndarray:
    """Log-spaced bin edges with exact values at every decade."""
    return 10.0 ** (
        np.arange(0, (hi_exp - lo_exp) * per_decade + 1) / per_decade + lo_exp
    )


class HistFamily:
    """A bank of fixed-bin histograms, one row per category (country).

    Counts are float64 so the same class serves count-weighted and
    volume-weighted histograms; out-of-range mass is kept in explicit
    under/overflow columns so totals are exact. ``quantile``/``cdf_at``
    interpolate linearly inside a bin, which bounds their error by the
    bin width.
    """

    def __init__(self, edges: np.ndarray, n_rows: int) -> None:
        self.edges = np.asarray(edges, dtype=np.float64)
        if len(self.edges) < 2 or np.any(np.diff(self.edges) <= 0):
            raise ValueError("edges must be strictly increasing, len >= 2")
        self.counts = np.zeros((n_rows, len(self.edges) - 1), dtype=np.float64)
        self.under = np.zeros(n_rows, dtype=np.float64)
        self.over = np.zeros(n_rows, dtype=np.float64)

    @property
    def n_rows(self) -> int:
        return self.counts.shape[0]

    def update(
        self,
        rows: np.ndarray,
        values: np.ndarray,
        weights: Optional[np.ndarray] = None,
    ) -> None:
        """Fold ``values`` (category per ``rows``) into the bank."""
        values = np.asarray(values, dtype=np.float64)
        finite = np.isfinite(values)
        if not finite.all():
            rows, values = rows[finite], values[finite]
            if weights is not None:
                weights = weights[finite]
        if len(values) == 0:
            return
        w = np.ones(len(values)) if weights is None else np.asarray(weights, np.float64)
        bin_idx = np.searchsorted(self.edges, values, side="right") - 1
        low = bin_idx < 0
        high = bin_idx >= self.counts.shape[1]
        mid = ~(low | high)
        nb = self.counts.shape[1]
        if mid.any():
            flat = rows[mid].astype(np.int64) * nb + bin_idx[mid]
            self.counts += np.bincount(
                flat, weights=w[mid], minlength=self.n_rows * nb
            ).reshape(self.n_rows, nb)
        if low.any():
            self.under += np.bincount(rows[low], weights=w[low], minlength=self.n_rows)
        if high.any():
            self.over += np.bincount(rows[high], weights=w[high], minlength=self.n_rows)

    def merge(self, other: "HistFamily") -> None:
        if self.counts.shape != other.counts.shape or not np.array_equal(
            self.edges, other.edges
        ):
            raise ValueError("cannot merge histograms with different binning")
        self.counts += other.counts
        self.under += other.under
        self.over += other.over

    # -- queries -------------------------------------------------------

    def total(self, row: int) -> float:
        return float(self.counts[row].sum() + self.under[row] + self.over[row])

    def cdf_at(self, row: int, x: float) -> float:
        """P(X <= x), linear inside the containing bin."""
        total = self.total(row)
        if total == 0:
            return float("nan")
        below = self.under[row]
        idx = int(np.searchsorted(self.edges, x, side="right")) - 1
        if idx < 0:
            return float(below / total)
        if idx >= self.counts.shape[1]:
            return float((total - self.over[row]) / total + self.over[row] / total)
        below += self.counts[row, :idx].sum()
        lo, hi = self.edges[idx], self.edges[idx + 1]
        below += self.counts[row, idx] * (x - lo) / (hi - lo)
        return float(below / total)

    def ccdf_at(self, row: int, x: float) -> float:
        return 1.0 - self.cdf_at(row, x)

    def quantile(self, row: int, q: float) -> float:
        total = self.total(row)
        if total == 0:
            return float("nan")
        target = q * total
        cum = self.under[row]
        if target <= cum:
            return float(self.edges[0])
        for idx in range(self.counts.shape[1]):
            nxt = cum + self.counts[row, idx]
            if target <= nxt and self.counts[row, idx] > 0:
                frac = (target - cum) / self.counts[row, idx]
                return float(
                    self.edges[idx] + frac * (self.edges[idx + 1] - self.edges[idx])
                )
            cum = nxt
        return float(self.edges[-1])

    def quantiles(self, row: int, qs: Sequence[float] = (0.25, 0.5, 0.75)) -> np.ndarray:
        return np.array([self.quantile(row, q) for q in qs])


@dataclass
class _HistSpec:
    """(attribute name, bin edges) of one serialized histogram bank."""

    name: str
    edges: np.ndarray


class StreamRollup:
    """The composite mergeable aggregate of a streaming capture."""

    #: Customer-day flows per day: 1 .. 1e6, 12 bins/decade.
    FLOW_EDGES = _decade_edges(0, 6)
    #: Customer-day bytes: 1 kB .. 1 TB with exact decade edges, so the
    #: 1 GB / 10 GB heavy-hitter thresholds are bin boundaries.
    BYTE_EDGES = _decade_edges(3, 12)
    #: Satellite RTT, ms: linear 0..5000 in 25 ms bins.
    SAT_EDGES = np.linspace(0.0, 5000.0, 201)
    #: Ground RTT, ms: 1..1000, 24 bins/decade.
    GROUND_EDGES = _decade_edges(0, 3, per_decade=24)

    def __init__(self, countries: Sequence[str], services: Sequence[str]) -> None:
        self.countries = list(countries)
        self.services = list(services)
        nc, ns, nl = len(self.countries), len(self.services), len(L7_ORDER)

        self.flows_total = 0
        self.windows_folded = 0
        # Figure 2 counters
        self.bytes_up_c = np.zeros(nc, dtype=np.float64)
        self.bytes_down_c = np.zeros(nc, dtype=np.float64)
        self.flows_c = np.zeros(nc, dtype=np.int64)
        self._customers: List[set] = [set() for _ in range(nc)]
        # Figure 3: (country, l7, hour) volume
        self.vol_clh = np.zeros((nc, nl, 24), dtype=np.float64)
        # Figures 6/7-style: (country, service+1, hour) volume;
        # service index 0 is "unattributed" (service_true_idx == -1)
        self.vol_csh = np.zeros((nc, ns + 1, 24), dtype=np.float64)
        # Figure 4: day -> (country, hour) volume
        self.vol_day: Dict[int, np.ndarray] = {}
        # Figure 5
        self.cd_total_c = np.zeros(nc, dtype=np.int64)
        self.cd_idle_c = np.zeros(nc, dtype=np.int64)
        self.h5_flows = HistFamily(self.FLOW_EDGES, nc)
        self.h5_down = HistFamily(self.BYTE_EDGES, nc)
        self.h5_up = HistFamily(self.BYTE_EDGES, nc)
        # Figure 8a
        self.h8_night = HistFamily(self.SAT_EDGES, nc)
        self.h8_peak = HistFamily(self.SAT_EDGES, nc)
        self.sat_min_c = np.full(nc, np.inf, dtype=np.float64)
        # Figure 9
        self.h9_cnt = HistFamily(self.GROUND_EDGES, nc)
        self.h9_vol = HistFamily(self.GROUND_EDGES, nc)

    @classmethod
    def for_frame(cls, frame: FlowFrame) -> "StreamRollup":
        """An empty rollup matching ``frame``'s categorical pools."""
        return cls(frame.countries, frame.services)

    def _hist_specs(self) -> List[_HistSpec]:
        return [
            _HistSpec("h5_flows", self.FLOW_EDGES),
            _HistSpec("h5_down", self.BYTE_EDGES),
            _HistSpec("h5_up", self.BYTE_EDGES),
            _HistSpec("h8_night", self.SAT_EDGES),
            _HistSpec("h8_peak", self.SAT_EDGES),
            _HistSpec("h9_cnt", self.GROUND_EDGES),
            _HistSpec("h9_vol", self.GROUND_EDGES),
        ]

    # -- update --------------------------------------------------------

    def update(self, frame: Optional[FlowFrame]) -> "StreamRollup":
        """Fold one capture window (or any day-aligned chunk) in.

        The chunk must contain *all* flows of every (customer, day)
        pair it touches — true for whole windows and for single-shard
        windows, since a customer lives in exactly one shard.
        """
        self.windows_folded += 1
        if frame is None or len(frame) == 0:
            return self
        if frame.countries != self.countries or frame.services != self.services:
            raise ValueError("frame pools do not match this rollup")
        nc = len(self.countries)
        c = frame.country_idx.astype(np.int64)
        hour = frame.hour_utc.astype(np.int64) % 24
        vol = frame.bytes_total()
        self.flows_total += len(frame)
        self.bytes_up_c += np.bincount(c, weights=frame.bytes_up, minlength=nc)
        self.bytes_down_c += np.bincount(c, weights=frame.bytes_down, minlength=nc)
        self.flows_c += np.bincount(c, minlength=nc).astype(np.int64)

        nl = len(L7_ORDER)
        flat_l7 = (c * nl + frame.l7_idx.astype(np.int64)) * 24 + hour
        self.vol_clh += np.bincount(
            flat_l7, weights=vol, minlength=nc * nl * 24
        ).reshape(nc, nl, 24)

        ns1 = len(self.services) + 1
        svc = frame.service_true_idx.astype(np.int64) + 1
        flat_svc = (c * ns1 + svc) * 24 + hour
        self.vol_csh += np.bincount(
            flat_svc, weights=vol, minlength=nc * ns1 * 24
        ).reshape(nc, ns1, 24)

        for day in np.unique(frame.day):
            mask = frame.day == day
            matrix = self.vol_day.setdefault(
                int(day), np.zeros((nc, 24), dtype=np.float64)
            )
            matrix += np.bincount(
                c[mask] * 24 + hour[mask], weights=vol[mask], minlength=nc * 24
            ).reshape(nc, 24)

        for idx in np.unique(c):
            self._customers[int(idx)].update(
                int(x) for x in np.unique(frame.customer_id[c == idx])
            )

        self._update_customer_days(frame, c)
        self._update_rtt(frame, c, vol)
        return self

    def _update_customer_days(self, frame: FlowFrame, c: np.ndarray) -> None:
        # One sort pass: group by (customer, day), each group belongs
        # to one country (a customer has one country).
        combined = frame.customer_id.astype(np.int64) * 100_000 + frame.day.astype(
            np.int64
        )
        order = np.argsort(combined, kind="stable")
        combined = combined[order]
        starts = np.concatenate(([0], np.flatnonzero(np.diff(combined)) + 1))
        flows = np.diff(np.concatenate((starts, [len(combined)]))).astype(np.float64)
        down = np.add.reduceat(frame.bytes_down[order], starts)
        up = np.add.reduceat(frame.bytes_up[order], starts)
        group_country = c[order][starts]

        nc = len(self.countries)
        self.cd_total_c += np.bincount(group_country, minlength=nc).astype(np.int64)
        idle = flows < IDLE_FLOW_THRESHOLD
        self.cd_idle_c += np.bincount(
            group_country[idle], minlength=nc
        ).astype(np.int64)
        self.h5_flows.update(group_country, flows)
        active = ~idle
        self.h5_down.update(group_country[active], down[active])
        self.h5_up.update(group_country[active], up[active])

    def _update_rtt(self, frame: FlowFrame, c: np.ndarray, vol: np.ndarray) -> None:
        local_hour = local_hour_of(frame)
        has_sat = np.isfinite(frame.sat_rtt_ms)
        night = (local_hour >= NIGHT_HOURS[0]) & (local_hour < NIGHT_HOURS[1]) & has_sat
        peak = (local_hour >= PEAK_HOURS[0]) & (local_hour < PEAK_HOURS[1]) & has_sat
        self.h8_night.update(c[night], frame.sat_rtt_ms[night])
        self.h8_peak.update(c[peak], frame.sat_rtt_ms[peak])
        nc = len(self.countries)
        either = night | peak
        if either.any():
            sat = frame.sat_rtt_ms[either].astype(np.float64)
            np.minimum.at(self.sat_min_c, c[either], sat)

        tcp = np.isin(frame.l7_idx, [L7_ORDER.index(p) for p in _TCP_L7])
        ground_ok = tcp & np.isfinite(frame.ground_rtt_ms)
        rtt = frame.ground_rtt_ms[ground_ok].astype(np.float64)
        rows = c[ground_ok]
        self.h9_cnt.update(rows, rtt)
        self.h9_vol.update(rows, rtt, weights=vol[ground_ok])

    # -- merge ---------------------------------------------------------

    def merge(self, other: "StreamRollup") -> "StreamRollup":
        """Fold another rollup in (associative, pools must match)."""
        if other.countries != self.countries or other.services != self.services:
            raise ValueError("cannot merge rollups with different pools")
        self.flows_total += other.flows_total
        self.windows_folded += other.windows_folded
        self.bytes_up_c += other.bytes_up_c
        self.bytes_down_c += other.bytes_down_c
        self.flows_c += other.flows_c
        self.vol_clh += other.vol_clh
        self.vol_csh += other.vol_csh
        for day, matrix in other.vol_day.items():
            if day in self.vol_day:
                self.vol_day[day] += matrix
            else:
                self.vol_day[day] = matrix.copy()
        for mine, theirs in zip(self._customers, other._customers):
            mine |= theirs
        self.cd_total_c += other.cd_total_c
        self.cd_idle_c += other.cd_idle_c
        for spec in self._hist_specs():
            getattr(self, spec.name).merge(getattr(other, spec.name))
        self.sat_min_c = np.minimum(self.sat_min_c, other.sat_min_c)
        return self

    # -- queries used by the from_rollup report paths ------------------

    def country_row(self, country: str) -> int:
        return self.countries.index(country)

    def volume_c(self) -> np.ndarray:
        """Total bytes per country."""
        return self.bytes_up_c + self.bytes_down_c

    def customers_c(self) -> np.ndarray:
        return np.array([len(s) for s in self._customers], dtype=np.int64)

    def days_seen(self, country: str) -> int:
        row = self.country_row(country)
        return sum(1 for matrix in self.vol_day.values() if matrix[row].sum() > 0)

    def hourly_day_median(self, country: str) -> np.ndarray:
        """24-vector: per-hour volume, median across days, normalized.

        The streaming stand-in for the frame path's winsorized robust
        curve (Figure 4): the day-median damps single binge days the
        same way, without needing per-flow quantiles.
        """
        row = self.country_row(country)
        per_day = np.array(
            [matrix[row] for matrix in self.vol_day.values()], dtype=np.float64
        )
        if len(per_day) == 0:
            return np.zeros(24)
        totals = np.median(per_day, axis=0)
        peak = totals.max()
        return totals / peak if peak > 0 else totals

    # -- persistence ---------------------------------------------------

    def _state_arrays(self) -> Dict[str, np.ndarray]:
        arrays: Dict[str, np.ndarray] = {
            "bytes_up_c": self.bytes_up_c,
            "bytes_down_c": self.bytes_down_c,
            "flows_c": self.flows_c,
            "vol_clh": self.vol_clh,
            "vol_csh": self.vol_csh,
            "cd_total_c": self.cd_total_c,
            "cd_idle_c": self.cd_idle_c,
            "sat_min_c": self.sat_min_c,
            "counters": np.array(
                [self.flows_total, self.windows_folded], dtype=np.int64
            ),
        }
        days = sorted(self.vol_day)
        arrays["day_keys"] = np.array(days, dtype=np.int64)
        arrays["day_vol"] = (
            np.stack([self.vol_day[d] for d in days])
            if days
            else np.zeros((0, len(self.countries), 24), dtype=np.float64)
        )
        ids = [np.array(sorted(s), dtype=np.int64) for s in self._customers]
        arrays["cust_ids"] = (
            np.concatenate(ids) if ids else np.zeros(0, dtype=np.int64)
        )
        arrays["cust_offsets"] = np.cumsum([0] + [len(x) for x in ids]).astype(
            np.int64
        )
        for spec in self._hist_specs():
            hist: HistFamily = getattr(self, spec.name)
            arrays[f"{spec.name}_counts"] = hist.counts
            arrays[f"{spec.name}_under"] = hist.under
            arrays[f"{spec.name}_over"] = hist.over
        return arrays

    def state_digest(self) -> str:
        """SHA-256 over the canonical state — the bit-identity oracle.

        Two rollups with equal digests folded the same flows (up to
        hash collision); the checkpoint stores it, and the stream tests
        compare one-shot vs killed-and-resumed captures with it.
        """
        digest = hashlib.sha256()
        digest.update(
            json.dumps(
                {
                    "schema": ROLLUP_SCHEMA,
                    "countries": self.countries,
                    "services": self.services,
                },
                sort_keys=True,
            ).encode()
        )
        for name, array in sorted(self._state_arrays().items()):
            digest.update(name.encode())
            digest.update(np.ascontiguousarray(array).tobytes())
        return digest.hexdigest()

    def save(self, path) -> None:
        """Atomically persist the rollup state to an ``.npz``."""
        path = os.fspath(path)
        meta = json.dumps(
            {
                "schema": ROLLUP_SCHEMA,
                "countries": self.countries,
                "services": self.services,
            }
        )
        directory = os.path.dirname(path) or "."
        fd, tmp_name = tempfile.mkstemp(dir=directory, suffix=".tmp")
        try:
            with os.fdopen(fd, "wb") as handle:
                np.savez(
                    handle,
                    meta=np.array(meta),
                    **self._state_arrays(),
                )
            os.replace(tmp_name, path)
        except BaseException:
            try:
                os.unlink(tmp_name)
            except OSError:
                pass
            raise

    @classmethod
    def load(cls, path) -> "StreamRollup":
        """Load a state written by :meth:`save`."""
        with np.load(path, allow_pickle=False) as data:
            meta = json.loads(str(data["meta"]))
            if meta.get("schema") != ROLLUP_SCHEMA:
                raise ValueError(
                    f"rollup schema {meta.get('schema')} != {ROLLUP_SCHEMA}"
                )
            rollup = cls(meta["countries"], meta["services"])
            rollup.bytes_up_c = data["bytes_up_c"].copy()
            rollup.bytes_down_c = data["bytes_down_c"].copy()
            rollup.flows_c = data["flows_c"].copy()
            rollup.vol_clh = data["vol_clh"].copy()
            rollup.vol_csh = data["vol_csh"].copy()
            rollup.cd_total_c = data["cd_total_c"].copy()
            rollup.cd_idle_c = data["cd_idle_c"].copy()
            rollup.sat_min_c = data["sat_min_c"].copy()
            counters = data["counters"]
            rollup.flows_total = int(counters[0])
            rollup.windows_folded = int(counters[1])
            day_keys = data["day_keys"]
            day_vol = data["day_vol"]
            rollup.vol_day = {
                int(day): day_vol[i].copy() for i, day in enumerate(day_keys)
            }
            ids = data["cust_ids"]
            offsets = data["cust_offsets"]
            rollup._customers = [
                set(int(x) for x in ids[offsets[i] : offsets[i + 1]])
                for i in range(len(rollup.countries))
            ]
            for spec in rollup._hist_specs():
                hist: HistFamily = getattr(rollup, spec.name)
                hist.counts = data[f"{spec.name}_counts"].copy()
                hist.under = data[f"{spec.name}_under"].copy()
                hist.over = data[f"{spec.name}_over"].copy()
        return rollup
