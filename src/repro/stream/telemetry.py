"""Lightweight telemetry for streaming captures.

Per-window counters (flows/s, bytes spilled, peak RSS) accumulate in
the checkpoint so an interrupted capture's history survives the kill;
this module renders them as the ``repro stream`` summary table and
provides the process peak-RSS probe.
"""

from __future__ import annotations

from typing import List, Sequence

from repro.analysis.aggregate import format_table
from repro.stream.checkpoint import WindowTelemetry


def peak_rss_mb() -> float:
    """Lifetime peak resident set size of this process, in MB.

    Uses ``getrusage`` (kilobytes on Linux, bytes on macOS); returns
    ``nan`` where the ``resource`` module is unavailable (non-POSIX).
    """
    try:
        import resource
        import sys
    except ImportError:  # pragma: no cover - non-POSIX
        return float("nan")
    peak = resource.getrusage(resource.RUSAGE_SELF).ru_maxrss
    if sys.platform == "darwin":  # pragma: no cover - macOS units
        return peak / 1e6
    return peak / 1e3


def render_telemetry(rows: Sequence[WindowTelemetry]) -> str:
    """The per-window summary table of a streaming capture.

    The Faults/Retries columns count injected fault events and retried
    IO attempts per window (zero on a healthy run with no chaos plan).
    """
    table_rows: List[tuple] = []
    for t in rows:
        table_rows.append(
            (
                t.window,
                f"{t.day_lo}..{t.day_hi - 1}",
                f"{t.flows:,}",
                f"{t.flows_per_s:,.0f}",
                f"{t.bytes_spilled / 1e6:.1f}",
                f"{t.gen_seconds * 1e3:,.0f}",
                f"{t.spill_seconds * 1e3:,.0f}",
                f"{t.fold_seconds * 1e3:,.0f}",
                f"{t.busy_seconds:.2f}",
                f"{t.peak_rss_mb:.0f}",
                f"{t.faults}",
                f"{t.io_retries}",
                f"{t.handovers}",
            )
        )
    total_flows = sum(t.flows for t in rows)
    total_secs = sum(t.busy_seconds for t in rows)
    table_rows.append(
        (
            "total",
            "",
            f"{total_flows:,}",
            f"{total_flows / total_secs:,.0f}" if total_secs > 0 else "-",
            f"{sum(t.bytes_spilled for t in rows) / 1e6:.1f}",
            f"{sum(t.gen_seconds for t in rows) * 1e3:,.0f}",
            f"{sum(t.spill_seconds for t in rows) * 1e3:,.0f}",
            f"{sum(t.fold_seconds for t in rows) * 1e3:,.0f}",
            f"{total_secs:.2f}",
            f"{max((t.peak_rss_mb for t in rows), default=float('nan')):.0f}",
            f"{sum(t.faults for t in rows)}",
            f"{sum(t.io_retries for t in rows)}",
            f"{sum(t.handovers for t in rows)}",
        )
    )
    return format_table(
        [
            "Window",
            "Days",
            "Flows",
            "Flows/s",
            "Spilled MB",
            "Gen ms",
            "Spill ms",
            "Fold ms",
            "Seconds",
            "Peak RSS MB",
            "Faults",
            "Retries",
            "Handovers",
        ],
        table_rows,
        title="Streaming capture telemetry",
    )
