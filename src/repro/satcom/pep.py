"""Performance Enhancing Proxy: tunnel messages and capacity model.

Section 2.1 (RFC 3135 style): the CPE terminates subscriber TCP
connections and relays the byte stream over a reliable UDP tunnel to
the ground-station proxy, which opens the real TCP connection to the
server — decoupling congestion control across the satellite hop.

Section 6.1 adds the operational wrinkle this module's capacity model
captures: observed per-beam congestion "is not due to the beam
capacity, but rather to the saturation of the PEP processing ability.
This, in turn, slows down the forwarding of packets, especially during
the initial phase of the connection setup." The amount of PEP resource
per beam depends on the SLA the operator sells for that region.

The tunnel message types defined here are used by the packet-level
simulator (:mod:`repro.satcom.network`).
"""

from __future__ import annotations

import enum
from dataclasses import dataclass

import numpy as np

_TUNNEL_HEADER_BYTES = 24  # flow id + type + length + UDP framing


class TunnelMessageType(enum.Enum):
    """PEP tunnel message kinds."""

    CONNECT = "connect"
    CONNECT_OK = "connect-ok"
    DATA = "data"
    CLOSE = "close"


@dataclass
class TunnelMessage:
    """One message on the CPE↔ground-station PEP tunnel."""

    flow_id: int
    msg_type: TunnelMessageType
    payload: bytes = b""
    dst_ip: int = 0
    dst_port: int = 0
    src_ip: int = 0
    src_port: int = 0

    @property
    def wire_size(self) -> int:
        """Bytes the tunnel message occupies on the satellite link."""
        return _TUNNEL_HEADER_BYTES + len(self.payload)


@dataclass
class PepCapacityModel:
    """Connection-setup slowdown under PEP processing saturation.

    The mean extra setup delay grows like ``ρ/(1−ρ)`` in the PEP load
    ``ρ``; samples are exponential (processing queues drain in bursts).
    Data forwarding of established connections sees a much smaller
    penalty.
    """

    setup_scale_s: float = 0.080
    """Seconds of *median* setup delay per unit of ``ρ/(1−ρ)``."""

    setup_sigma: float = 1.1
    """Log-normal sigma of the setup delay (bursty queue drains give the
    distribution a heavy upper tail)."""

    forward_scale_s: float = 0.010
    """Mean forwarding delay per unit of ``ρ/(1−ρ)`` for established
    connections."""

    max_load_ratio: float = 10.0
    """Cap on ``ρ/(1−ρ)`` (finite processing queues)."""

    def _ratio(self, load: float) -> float:
        if not 0.0 <= load < 1.0:
            raise ValueError("PEP load must be in [0, 1)")
        return min(load / (1.0 - load), self.max_load_ratio)

    def median_setup_delay_s(self, load: float) -> float:
        """Median extra connection-setup delay at PEP load ``ρ``."""
        return self.setup_scale_s * self._ratio(load)

    def sample_setup_delay_s(
        self, load: float, rng: np.random.Generator, n: int = 1
    ) -> np.ndarray:
        """Extra setup delay for ``n`` new connections (log-normal)."""
        median = self.median_setup_delay_s(load)
        if median <= 0:
            return np.zeros(n)
        return median * rng.lognormal(0.0, self.setup_sigma, size=n)

    def sample_forward_delay_s(
        self, load: float, rng: np.random.Generator, n: int = 1
    ) -> np.ndarray:
        """Extra forwarding delay for ``n`` bursts of established flows."""
        return rng.exponential(self.forward_scale_s * self._ratio(load), size=n)
