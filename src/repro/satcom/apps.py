"""Endpoint applications for the packet-level simulator.

Client and server state machines that speak the real wire formats of
:mod:`repro.protocols` over the PEP-proxied byte streams: a TLS client
(handshake → request → download), a TLS/HTTP server, and a DNS client.
Their timing is what the ground-station flow meter must recover.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Optional

from repro.protocols import http, tls
from repro.simnet.engine import Simulator


class TlsServerApp:
    """Server side of a TLS exchange over a byte-stream connection.

    TLS 1.2 flavour: ClientHello → ServerHello flight; ClientKeyExchange
    flight → server Finished; request record → ``response_bytes`` of
    application data, then close. TLS 1.3 flavour (``tls13=True``):
    ClientHello → ServerHello+CCS+encrypted handshake; the client's CCS
    + Finished + request trigger the response (no ClientKeyExchange).
    """

    def __init__(
        self,
        send: Callable[[bytes], None],
        close: Callable[[], None],
        response_bytes: int = 100_000,
        certificate_len: int = 2000,
        tls13: bool = False,
    ) -> None:
        self._send = send
        self._close = close
        self.response_bytes = response_bytes
        self.certificate_len = certificate_len
        self.tls13 = tls13
        self._buffer = bytearray()
        self._sent_server_hello = False
        self._sent_finished = False
        self._sent_response = False

    def on_data(self, data: bytes) -> None:
        """Feed bytes received from the client."""
        self._buffer += data
        parsed = tls.parse_stream(bytes(self._buffer))
        types = parsed.handshake_types
        if not self._sent_server_hello and tls.HandshakeType.CLIENT_HELLO in types:
            self._sent_server_hello = True
            if self.tls13:
                self._sent_finished = True  # rides in the same flight
                self._send(tls.server_hello_tls13(certificate_len=self.certificate_len))
            else:
                self._send(tls.server_hello(certificate_len=self.certificate_len))
        if (
            not self.tls13
            and not self._sent_finished
            and tls.HandshakeType.CLIENT_KEY_EXCHANGE in types
        ):
            self._sent_finished = True
            self._send(tls.server_finished())
        if self._sent_finished and not self._sent_response:
            app_bytes = sum(
                r.length
                for r in parsed.records
                if r.content_type == tls.ContentType.APPLICATION_DATA
            )
            # TLS 1.3: the first ~52 app-data bytes are the encrypted
            # Finished, not the request.
            threshold = 60 if self.tls13 else 1
            if app_bytes >= threshold:
                self._sent_response = True
                self._send(tls.application_data(self.response_bytes))
                self._close()


class HttpServerApp:
    """Plain-HTTP server: full request head in → response out → close."""

    def __init__(
        self,
        send: Callable[[bytes], None],
        close: Callable[[], None],
        response_bytes: int = 50_000,
    ) -> None:
        self._send = send
        self._close = close
        self.response_bytes = response_bytes
        self._buffer = bytearray()
        self._responded = False

    def on_data(self, data: bytes) -> None:
        """Feed bytes received from the client."""
        if self._responded:
            return
        self._buffer += data
        if b"\r\n\r\n" in self._buffer:
            self._responded = True
            self._send(http.encode_response(self.response_bytes))
            self._close()


@dataclass
class TlsClientResult:
    """Ground truth collected by a TLS client run."""

    connect_at: Optional[float] = None
    sent_client_hello_at: Optional[float] = None
    got_server_hello_at: Optional[float] = None
    sent_key_exchange_at: Optional[float] = None
    handshake_done_at: Optional[float] = None
    bytes_received: int = 0
    finished_at: Optional[float] = None

    @property
    def complete(self) -> bool:
        return self.finished_at is not None


class TlsClientApp:
    """Client side: handshake, one request, download, done.

    ``compute_delay_s`` models the end device's key-exchange computation
    — part of what the paper's satellite-RTT estimator (deliberately)
    includes, since the home segment is negligible next to it.
    ``tls13=True`` switches to the TLS 1.3 message flow (no
    ClientKeyExchange; the return milestone is the client CCS).
    """

    def __init__(
        self,
        sim: Simulator,
        sni: str,
        request_bytes: int = 350,
        expected_response_bytes: int = 100_000,
        compute_delay_s: float = 0.012,
        on_finished: Optional[Callable[["TlsClientApp"], None]] = None,
        tls13: bool = False,
    ) -> None:
        self.sim = sim
        self.sni = sni
        self.request_bytes = request_bytes
        self.expected_response_bytes = expected_response_bytes
        self.compute_delay_s = compute_delay_s
        self.on_finished = on_finished
        self.tls13 = tls13
        self.result = TlsClientResult()
        self._send: Optional[Callable[[bytes], None]] = None
        self._close: Optional[Callable[[], None]] = None
        self._buffer = bytearray()
        self._consumed = 0
        self._sent_key_exchange = False
        self._sent_request = False
        self._app_overhead = 0

    def start(self, send: Callable[[bytes], None], close: Callable[[], None]) -> None:
        """Attach the transport (PEP client socket) and kick off."""
        self._send = send
        self._close = close
        self.result.connect_at = self.sim.now
        self.result.sent_client_hello_at = self.sim.now
        send(tls.client_hello(self.sni))

    def on_data(self, data: bytes) -> None:
        """Bytes delivered by the CPE proxy."""
        self._buffer += data
        parsed = tls.parse_stream(bytes(self._buffer))
        types = parsed.handshake_types
        milestone = (
            tls.HandshakeType.SERVER_HELLO
            if self.tls13
            else tls.HandshakeType.SERVER_HELLO_DONE
        )
        if not self._sent_key_exchange and milestone in types:
            self._sent_key_exchange = True
            self.result.got_server_hello_at = self.sim.now
            self.sim.schedule(self.compute_delay_s, self._send_key_exchange)
        app_bytes = sum(
            r.length for r in parsed.records if r.content_type == tls.ContentType.APPLICATION_DATA
        )
        # TLS 1.3 wraps the server's encrypted handshake in app-data
        # records; discount what had arrived by the time we sent our
        # Finished (see _send_key_exchange) before declaring completion.
        handshake_overhead = self._app_overhead if self.tls13 else 0
        self.result.bytes_received = max(0, app_bytes - handshake_overhead)
        if (
            self.result.bytes_received >= self.expected_response_bytes
            and self.result.finished_at is None
        ):
            self.result.finished_at = self.sim.now
            if self._close:
                self._close()
            if self.on_finished:
                self.on_finished(self)

    def _send_key_exchange(self) -> None:
        self.result.sent_key_exchange_at = self.sim.now
        if self.tls13:
            # Everything app-data so far is the server's encrypted
            # handshake, not response payload.
            parsed = tls.parse_stream(bytes(self._buffer))
            self._app_overhead = sum(
                r.length
                for r in parsed.records
                if r.content_type == tls.ContentType.APPLICATION_DATA
            )
            self._send(tls.client_finished_tls13())
        else:
            self._send(tls.client_key_exchange())
        # The request rides right behind the Finished flight.
        self._send(tls.application_data(self.request_bytes))
        self._sent_request = True
        self.result.handshake_done_at = self.sim.now

    @property
    def tls13_mode(self) -> bool:
        """Whether this client ran the TLS 1.3 flow."""
        return self.tls13

    @property
    def key_exchange_compute_s(self) -> Optional[float]:
        """Client-side time between receiving the ServerHello flight and
        sending the ClientKeyExchange — the only non-satellite component
        inside the probe's satellite-RTT estimate (beyond the negligible
        home RTT)."""
        if self.result.got_server_hello_at is None or self.result.sent_key_exchange_at is None:
            return None
        return self.result.sent_key_exchange_at - self.result.got_server_hello_at


class HttpClientApp:
    """Plain-HTTP client: one GET, read Content-Length, count the body.

    Exercises the probe's Host-header DPI path (12.1 % of the paper's
    volume is unencrypted HTTP — Sky video, software updates).
    """

    def __init__(
        self,
        sim: Simulator,
        host: str,
        path: str = "/",
        on_finished: Optional[Callable[["HttpClientApp"], None]] = None,
    ) -> None:
        self.sim = sim
        self.host = host
        self.path = path
        self.on_finished = on_finished
        self.started_at: Optional[float] = None
        self.finished_at: Optional[float] = None
        self.bytes_received = 0
        self._close: Optional[Callable[[], None]] = None
        self._buffer = bytearray()
        self._content_length: Optional[int] = None

    def start(self, send: Callable[[bytes], None], close: Callable[[], None]) -> None:
        """Attach the transport and send the request."""
        from repro.protocols import http

        self._close = close
        self.started_at = self.sim.now
        send(http.encode_request(self.host, self.path))

    def on_data(self, data: bytes) -> None:
        """Bytes delivered by the CPE proxy."""
        self._buffer += data
        if self._content_length is None and b"\r\n\r\n" in self._buffer:
            head, _, _ = bytes(self._buffer).partition(b"\r\n\r\n")
            for line in head.split(b"\r\n"):
                if line.lower().startswith(b"content-length:"):
                    self._content_length = int(line.split(b":", 1)[1].strip())
        if self._content_length is not None:
            head_len = bytes(self._buffer).find(b"\r\n\r\n") + 4
            self.bytes_received = len(self._buffer) - head_len
            if self.bytes_received >= self._content_length and self.finished_at is None:
                self.finished_at = self.sim.now
                if self._close:
                    self._close()
                if self.on_finished:
                    self.on_finished(self)

    @property
    def complete(self) -> bool:
        return self.finished_at is not None


class QuicClientApp:
    """QUIC download over the (un-proxied) UDP path.

    Sends an Initial carrying the SNI, then counts short-header data
    packets until ``expected_response_bytes`` arrive. UDP bypasses the
    PEP (Section 2.1 footnote 3), so the full satellite RTT is visible
    in the transfer timeline.
    """

    def __init__(
        self,
        sim: Simulator,
        sni: str,
        expected_response_bytes: int = 60_000,
        on_finished: Optional[Callable[["QuicClientApp"], None]] = None,
    ) -> None:
        self.sim = sim
        self.sni = sni
        self.expected_response_bytes = expected_response_bytes
        self.on_finished = on_finished
        self.started_at: Optional[float] = None
        self.first_byte_at: Optional[float] = None
        self.finished_at: Optional[float] = None
        self.bytes_received = 0

    def initial_datagram(self) -> bytes:
        """The Initial packet to hand to ``CustomerHost.send_udp``."""
        from repro.protocols import quic

        self.started_at = self.sim.now
        return quic.encode_initial(self.sni)

    def on_datagram(self, payload: bytes, now: float) -> None:
        """A downlink datagram from the server."""
        if self.first_byte_at is None:
            self.first_byte_at = now
        self.bytes_received += len(payload)
        if (
            self.bytes_received >= self.expected_response_bytes
            and self.finished_at is None
        ):
            self.finished_at = now
            if self.on_finished:
                self.on_finished(self)

    @property
    def complete(self) -> bool:
        return self.finished_at is not None


class RtpSessionApp:
    """A paced RTP stream (voice call leg) over the UDP path.

    Emits ``n_packets`` at ``interval_s``; the far end echoes them, and
    we track the mouth-to-ear round trips the probe cannot see (it only
    observes the ground side).
    """

    def __init__(
        self,
        sim: Simulator,
        n_packets: int = 20,
        interval_s: float = 0.02,
        payload_bytes: int = 160,
        ssrc: int = 0x1234,
    ) -> None:
        self.sim = sim
        self.n_packets = n_packets
        self.interval_s = interval_s
        self.payload_bytes = payload_bytes
        self.ssrc = ssrc
        self.sent = 0
        self.echoes = 0
        self.round_trips_s: list = []
        self._send: Optional[Callable[[bytes], None]] = None
        self._sent_at: dict = {}

    def start(self, send_datagram: Callable[[bytes], None]) -> None:
        """Begin pacing packets through ``send_datagram``."""
        self._send = send_datagram
        self._tick()

    def _tick(self) -> None:
        from repro.protocols import rtp

        if self.sent >= self.n_packets:
            return
        sequence = self.sent
        self._sent_at[sequence] = self.sim.now
        self._send(
            rtp.encode(sequence, sequence * 160, self.ssrc, b"\x00" * self.payload_bytes)
        )
        self.sent += 1
        self.sim.schedule(self.interval_s, self._tick)

    def on_datagram(self, payload: bytes, now: float) -> None:
        """An echoed RTP packet from the far end."""
        from repro.protocols import rtp

        header = rtp.decode(payload)
        if header is None:
            return
        sent_at = self._sent_at.get(header.sequence)
        if sent_at is not None:
            self.echoes += 1
            self.round_trips_s.append(now - sent_at)
