"""Packet-level SatCom network (Figure 1 of the paper, end to end).

Assembles the full forwarding path::

    client app ── CPE (PEP client proxy) ──(satellite UDP tunnel)──
        ground station (PEP terminator, NAT, shaper) ──(backbone)── server

with a :class:`~repro.flowmeter.meter.FlowMeter` tapping the ground
station's Internet side, exactly where the paper's probe sits. TCP
application byte streams are PEP-relayed (TLS bytes survive end to end,
so the handshake-timing trick works); UDP (DNS, QUIC) is forwarded
as-is through the tunnel.

This substrate exists to *validate the measurement methodology* at a
few hundred flows — the flow-level generator handles scale.
"""

from __future__ import annotations

import dataclasses
from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Callable, Dict, Optional, Tuple

import numpy as np

from repro.flowmeter.meter import FlowMeter
from repro.internet.geo import COUNTRIES, Location, local_hour
from repro.internet.resolvers import Resolver
from repro.internet.topology import InternetModel
from repro.net.inet import ip_to_int
from repro.net.packet import IPProtocol, Packet
from repro.net.tcp import TcpEndpoint
from repro.protocols import dns as dnsproto
from repro.satcom.beams import Beam
from repro.satcom.delay_model import SatelliteRttModel
from repro.satcom.pep import TunnelMessage, TunnelMessageType
from repro.satcom.plans import PLANS, Plan
from repro.simnet.engine import Simulator
from repro.simnet.link import Link

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from repro.satcom.delaysource import DelaySource

_MSS = 1400  # tunnel payload chunk
_BASE_CUSTOMER_NET = "100.64.0.0"  # operator per-country pools: 100.64+idx


@dataclass
class PepClientSocket:
    """Application-facing socket offered by the CPE proxy.

    The CPE completes the local handshake instantly (it impersonates
    the server, Section 2.1), so apps may send immediately.
    """

    flow_id: int
    customer: "CustomerHost"
    on_data: Optional[Callable[[bytes], None]] = None
    on_close: Optional[Callable[[], None]] = None
    closed: bool = False

    def send(self, data: bytes) -> None:
        """Write application bytes into the proxied connection."""
        if self.closed:
            raise RuntimeError("socket closed")
        self.customer._socket_send(self, data)

    def close(self) -> None:
        """Half-close from the application side."""
        if not self.closed:
            self.closed = True
            self.customer._socket_close(self)


class CustomerHost:
    """A subscriber CPE: PEP client proxy + UDP forwarding."""

    def __init__(
        self,
        network: "SatComPacketNetwork",
        customer_id: int,
        country: str,
        beam: Beam,
        plan: Plan,
        public_ip: int,
    ) -> None:
        self.network = network
        self.customer_id = customer_id
        self.country = country
        self.beam = beam
        self.plan = plan
        self.public_ip = public_ip
        self._next_flow_id = 1
        self._next_port = 40000
        self._sockets: Dict[int, PepClientSocket] = {}
        self._udp_handlers: Dict[int, Callable[[bytes, float], None]] = {}

        location = COUNTRIES[country]
        sim = network.sim
        self.uplink = Link(
            sim,
            rate_bps=plan.up_bps,
            prop_delay_s=network.geometry.one_way_path_delay_s(location),
            name=f"up-{customer_id}",
            extra_delay_fn=network._uplink_extra_sampler(country, beam),
        )
        self.downlink = Link(
            sim,
            rate_bps=plan.down_bps,
            prop_delay_s=network.geometry.one_way_path_delay_s(location),
            name=f"down-{customer_id}",
            extra_delay_fn=network._downlink_extra_sampler(country, beam),
        )

    # -- TCP via PEP -----------------------------------------------------

    def open_tcp(
        self,
        dst_ip: int,
        dst_port: int,
        on_data: Optional[Callable[[bytes], None]] = None,
        on_close: Optional[Callable[[], None]] = None,
    ) -> PepClientSocket:
        """Open a proxied TCP connection (returns immediately usable socket)."""
        flow_id = (self.customer_id << 20) | self._next_flow_id
        self._next_flow_id += 1
        src_port = self._alloc_port()
        socket = PepClientSocket(flow_id=flow_id, customer=self, on_data=on_data, on_close=on_close)
        self._sockets[flow_id] = socket
        connect = TunnelMessage(
            flow_id=flow_id,
            msg_type=TunnelMessageType.CONNECT,
            dst_ip=dst_ip,
            dst_port=dst_port,
            src_ip=self.public_ip,
            src_port=src_port,
        )
        self._tunnel_up(connect)
        return socket

    def _socket_send(self, socket: PepClientSocket, data: bytes) -> None:
        for offset in range(0, len(data), _MSS):
            chunk = data[offset : offset + _MSS]
            self._tunnel_up(
                TunnelMessage(flow_id=socket.flow_id, msg_type=TunnelMessageType.DATA, payload=chunk)
            )

    def _socket_close(self, socket: PepClientSocket) -> None:
        self._tunnel_up(TunnelMessage(flow_id=socket.flow_id, msg_type=TunnelMessageType.CLOSE))

    def _tunnel_up(self, message: TunnelMessage) -> None:
        self.uplink.send(message, message.wire_size, self.network._gs_tunnel_receive)

    def deliver_tunnel(self, message: TunnelMessage) -> None:
        """Tunnel message arriving from the ground station."""
        socket = self._sockets.get(message.flow_id)
        if socket is None:
            return
        if message.msg_type == TunnelMessageType.DATA and socket.on_data:
            socket.on_data(message.payload)
        elif message.msg_type == TunnelMessageType.CLOSE:
            socket.closed = True
            if socket.on_close:
                socket.on_close()

    # -- UDP -------------------------------------------------------------

    def send_udp(
        self,
        dst_ip: int,
        dst_port: int,
        payload: bytes,
        on_reply: Optional[Callable[[bytes, float], None]] = None,
    ) -> int:
        """Send a UDP datagram; replies come back via ``on_reply``."""
        src_port = self._alloc_port()
        if on_reply:
            self._udp_handlers[src_port] = on_reply
        packet = Packet(
            src_ip=self.public_ip,
            dst_ip=dst_ip,
            src_port=src_port,
            dst_port=dst_port,
            protocol=IPProtocol.UDP,
            payload=payload,
        )
        self.uplink.send(packet, packet.size_bytes, self.network._gs_udp_from_customer)
        return src_port

    def open_udp(
        self,
        dst_ip: int,
        dst_port: int,
        on_reply: Optional[Callable[[bytes, float], None]] = None,
    ) -> Callable[[bytes], None]:
        """A persistent UDP 'socket': one source port for many datagrams.

        Returns a sender callable; replies arrive via ``on_reply``.
        Used for streams (RTP, QUIC) that must keep a stable 5-tuple.
        """
        src_port = self._alloc_port()
        if on_reply:
            self._udp_handlers[src_port] = on_reply

        def send(payload: bytes) -> None:
            packet = Packet(
                src_ip=self.public_ip,
                dst_ip=dst_ip,
                src_port=src_port,
                dst_port=dst_port,
                protocol=IPProtocol.UDP,
                payload=payload,
            )
            self.uplink.send(packet, packet.size_bytes, self.network._gs_udp_from_customer)

        return send

    def deliver_udp(self, packet: Packet) -> None:
        """UDP reply arriving from the ground station."""
        handler = self._udp_handlers.get(packet.dst_port)
        if handler:
            handler(packet.payload, self.network.sim.now)

    def _alloc_port(self) -> int:
        port = self._next_port
        self._next_port += 1
        if self._next_port > 65000:
            self._next_port = 40000
        return port


class ServerHost:
    """An Internet server with per-connection application factories."""

    def __init__(
        self,
        network: "SatComPacketNetwork",
        ip: int,
        site: Location,
        app_factory: Callable[[TcpEndpoint], object],
    ) -> None:
        self.network = network
        self.ip = ip
        self.site = site
        self.app_factory = app_factory
        self._endpoints: Dict[Tuple[int, int, int], TcpEndpoint] = {}
        one_way = network.internet.base_ground_rtt_ms(site) / 2000.0
        self.link_to_gs = Link(network.sim, prop_delay_s=one_way, name=f"srv-{ip}-gs")
        self.link_from_gs = Link(network.sim, prop_delay_s=one_way, name=f"gs-srv-{ip}")

    def handle_packet(self, packet: Packet) -> None:
        """Packet arriving from the ground station."""
        key = (packet.src_ip, packet.src_port, packet.dst_port)
        endpoint = self._endpoints.get(key)
        if endpoint is None:
            endpoint = TcpEndpoint(
                self.network.sim,
                local_ip=self.ip,
                local_port=packet.dst_port,
                remote_ip=packet.src_ip,
                remote_port=packet.src_port,
                send_packet=self._send_packet,
            )
            endpoint.listen()
            app = self.app_factory(endpoint)
            endpoint.on_data = getattr(app, "on_data", None)
            self._endpoints[key] = endpoint
        endpoint.handle_packet(packet)

    def _send_packet(self, packet: Packet) -> None:
        self.link_to_gs.send(packet, packet.size_bytes, self.network._gs_receive_from_ground)


class UdpServerHost:
    """A generic UDP service (QUIC server, RTP reflector, game server).

    ``handler(packet, respond)`` is invoked per datagram; ``respond``
    sends a payload back to the packet's source through the host's
    link (the ground station NATs it down to the customer).
    """

    def __init__(
        self,
        network: "SatComPacketNetwork",
        ip: int,
        site: Location,
        handler: Callable[[Packet, Callable[[bytes], None]], None],
    ) -> None:
        self.network = network
        self.ip = ip
        self.site = site
        self.handler = handler
        one_way = network.internet.base_ground_rtt_ms(site) / 2000.0
        self.link_to_gs = Link(network.sim, prop_delay_s=one_way, name=f"udpsrv-{ip}-gs")
        self.link_from_gs = Link(network.sim, prop_delay_s=one_way, name=f"gs-udpsrv-{ip}")
        self.datagrams_handled = 0

    def handle_packet(self, packet: Packet) -> None:
        """A datagram arriving from the ground station."""
        self.datagrams_handled += 1

        def respond(payload: bytes) -> None:
            reply = Packet(
                src_ip=self.ip,
                dst_ip=packet.src_ip,
                src_port=packet.dst_port,
                dst_port=packet.src_port,
                protocol=IPProtocol.UDP,
                payload=payload,
            )
            self.link_to_gs.send(
                reply, reply.size_bytes, self.network._gs_receive_from_ground
            )

        self.handler(packet, respond)


def quic_server_handler(
    response_bytes: int = 60_000, datagram_bytes: int = 1200
) -> Callable[[Packet, Callable[[bytes], None]], None]:
    """A QUIC server behavior for :class:`UdpServerHost`.

    Replies to an Initial with a Handshake packet followed by enough
    short-header packets to deliver ``response_bytes``.
    """
    from repro.protocols import quic as quicproto

    def handler(packet: Packet, respond: Callable[[bytes], None]) -> None:
        header = quicproto.parse_long_header(packet.payload)
        if header is None or not header.is_initial:
            return
        respond(quicproto.encode_handshake_packet(180))
        remaining = response_bytes
        while remaining > 0:
            chunk = min(datagram_bytes, remaining)
            respond(quicproto.encode_short_header_packet(chunk))
            remaining -= chunk

    return handler


def rtp_echo_handler() -> Callable[[Packet, Callable[[bytes], None]], None]:
    """An RTP reflector: echoes every valid RTP packet back."""
    from repro.protocols import rtp as rtpproto

    def handler(packet: Packet, respond: Callable[[bytes], None]) -> None:
        if rtpproto.decode(packet.payload) is not None:
            respond(packet.payload)

    return handler


class ResolverHost:
    """A DNS resolver answering A queries after a processing delay."""

    def __init__(
        self,
        network: "SatComPacketNetwork",
        resolver: Resolver,
        answer_fn: Callable[[str], int],
    ) -> None:
        self.network = network
        self.resolver = resolver
        self.ip = resolver.address
        one_way = network.internet.latency.base_rtt_ms(
            network.internet.ground_station, resolver.egress
        ) / 2000.0
        self.link_to_gs = Link(network.sim, prop_delay_s=one_way, name=f"dns-{resolver.name}-gs")
        self.link_from_gs = Link(network.sim, prop_delay_s=one_way, name=f"gs-dns-{resolver.name}")
        self.answer_fn = answer_fn
        self.queries_served = 0

    def handle_packet(self, packet: Packet) -> None:
        """A DNS query from the ground station."""
        try:
            message = dnsproto.decode(packet.payload)
        except ValueError:
            return
        if message.is_response or message.qname is None:
            return
        delay = self.resolver.processing_ms / 1000.0
        self.network.sim.schedule(delay, self._respond, packet, message)

    def _respond(self, query: Packet, message: dnsproto.Message) -> None:
        self.queries_served += 1
        address = self.answer_fn(message.qname)
        payload = dnsproto.encode_response(message.txid, message.qname, [address])
        reply = Packet(
            src_ip=self.ip,
            dst_ip=query.src_ip,
            src_port=53,
            dst_port=query.src_port,
            protocol=IPProtocol.UDP,
            payload=payload,
        )
        self.link_to_gs.send(reply, reply.size_bytes, self.network._gs_receive_from_ground)


@dataclass
class _GsFlow:
    """Ground-station PEP state for one proxied connection."""

    flow_id: int
    customer: CustomerHost
    endpoint: Optional[TcpEndpoint] = None
    pending: list = field(default_factory=list)
    established: bool = False
    close_requested: bool = False


class SatComPacketNetwork:
    """The assembled network; see module docstring."""

    def __init__(
        self,
        sim: Simulator,
        internet: InternetModel,
        rtt_model: Optional[SatelliteRttModel] = None,
        meter: Optional[FlowMeter] = None,
        rng: Optional[np.random.Generator] = None,
        hour_utc: float = 20.0,
        delay_source: Optional["DelaySource"] = None,
    ) -> None:
        self.sim = sim
        self.internet = internet
        if delay_source is not None and rtt_model is not None:
            raise ValueError("pass delay_source or rtt_model, not both")
        if delay_source is None:
            if rtt_model is not None:
                from repro.satcom.delaysource import StaticDelaySource

                delay_source = StaticDelaySource(rtt_model=rtt_model)
            else:
                # the baseline scenario owns the default model tree
                from repro.scenario import get_scenario

                delay_source = get_scenario("baseline-geo").build_delay_source()
        self.delay_source = delay_source
        self.rtt_model = delay_source.rtt_model
        self.geometry = self.rtt_model.geometry
        self.meter = meter
        self.rng = rng or np.random.default_rng(0)
        self.hour_utc = hour_utc

        self._customers: Dict[int, CustomerHost] = {}
        self._customers_by_ip: Dict[int, CustomerHost] = {}
        self._servers: Dict[int, ServerHost] = {}
        self._udp_servers: Dict[int, UdpServerHost] = {}
        self._resolvers: Dict[int, ResolverHost] = {}
        self._gs_flows: Dict[int, _GsFlow] = {}
        self._gs_flows_by_conn: Dict[Tuple[int, int, int, int], _GsFlow] = {}
        self._country_counters: Dict[str, int] = {}

    # -- topology construction -------------------------------------------

    def add_customer(self, country: str, plan_name: Optional[str] = None) -> CustomerHost:
        """Provision a subscriber in ``country``."""
        index = self._country_counters.get(country, 0)
        self._country_counters[country] = index + 1
        customer_id = len(self._customers) + 1
        beam = self.rtt_model.beam_map.assign_beam(country, index)
        if plan_name is None:
            continent = COUNTRIES[country].continent
            plan_name = "sat-30" if continent == "Africa" else "sat-50"
        plan = PLANS[plan_name]
        country_idx = list(COUNTRIES).index(country)
        public_ip = ip_to_int(_BASE_CUSTOMER_NET) + (country_idx << 16) + index + 1
        customer = CustomerHost(self, customer_id, country, beam, plan, public_ip)
        self._customers[customer_id] = customer
        self._customers_by_ip[public_ip] = customer
        return customer

    def add_server(
        self,
        domain: str,
        site_name: str,
        app_factory: Callable[[TcpEndpoint], object],
    ) -> ServerHost:
        """Deploy a server for ``domain`` at a named site."""
        site = self.internet.site(site_name)
        ip = self.internet.server_ip(site, domain)
        server = ServerHost(self, ip, site, app_factory)
        self._servers[ip] = server
        return server

    def add_resolver(self, resolver: Resolver, answer_fn: Callable[[str], int]) -> ResolverHost:
        """Deploy a resolver host."""
        host = ResolverHost(self, resolver, answer_fn)
        self._resolvers[host.ip] = host
        return host

    def add_udp_server(
        self,
        domain: str,
        site_name: str,
        handler: Callable[[Packet, Callable[[bytes], None]], None],
    ) -> UdpServerHost:
        """Deploy a UDP service (QUIC server, RTP reflector, …)."""
        site = self.internet.site(site_name)
        ip = self.internet.server_ip(site, domain)
        host = UdpServerHost(self, ip, site, handler)
        self._udp_servers[ip] = host
        return host

    # -- satellite-segment delay samplers ---------------------------------

    def _uplink_extra_sampler(self, country: str, beam: Beam) -> Callable[[int], float]:
        location = COUNTRIES[country]
        elevation = self.geometry.elevation_angle_deg(location)

        def sample(_size: int) -> float:
            hour_loc = local_hour(location, self.hour_utc)
            utilization = self.rtt_model.beam_map.utilization(beam, hour_loc)
            scheduling = float(
                self.rtt_model.tdma.sample_scheduling_delay_s(utilization, self.rng, 1)[0]
            )
            arq = float(
                self.rtt_model.channel.sample_arq_delay_s(elevation, self.rng, 1, 1)[0]
            )
            # Zero for static sources (draw-free), the moving one-way
            # share of the constellation floor otherwise.
            orbital = self.delay_source.propagation_extra_s(country, self.sim.now)
            return scheduling + arq + orbital

        return sample

    def _downlink_extra_sampler(self, country: str, beam: Beam) -> Callable[[int], float]:
        location = COUNTRIES[country]
        elevation = self.geometry.elevation_angle_deg(location)

        def sample(_size: int) -> float:
            hour_loc = local_hour(location, self.hour_utc)
            utilization = self.rtt_model.beam_map.utilization(beam, hour_loc)
            queue = float(
                self.rng.exponential(0.010 * min(utilization / (1.0 - utilization), 20.0) + 1e-6)
            )
            arq = float(
                self.rtt_model.channel.sample_arq_delay_s(elevation, self.rng, 1, 1)[0]
            )
            orbital = self.delay_source.propagation_extra_s(country, self.sim.now)
            return queue + arq + orbital

        return sample

    # -- ground-station forwarding ----------------------------------------

    def _observe(self, packet: Packet) -> None:
        if self.meter is not None:
            self.meter.process(dataclasses.replace(packet, timestamp=self.sim.now))

    def _gs_send_to_ground(self, packet: Packet) -> None:
        """GS → Internet: tap, then forward on the right server link."""
        packet = dataclasses.replace(packet, timestamp=self.sim.now)
        self._observe(packet)
        server = self._servers.get(packet.dst_ip)
        if server is not None:
            server.link_from_gs.send(packet, packet.size_bytes, server.handle_packet)
            return
        udp_server = self._udp_servers.get(packet.dst_ip)
        if udp_server is not None:
            udp_server.link_from_gs.send(
                packet, packet.size_bytes, udp_server.handle_packet
            )
            return
        resolver = self._resolvers.get(packet.dst_ip)
        if resolver is not None:
            resolver.link_from_gs.send(packet, packet.size_bytes, resolver.handle_packet)

    def _gs_receive_from_ground(self, packet: Packet) -> None:
        """Internet → GS: tap, then dispatch (PEP flow or NAT'd UDP)."""
        self._observe(packet)
        if packet.protocol == IPProtocol.TCP:
            key = (packet.src_ip, packet.src_port, packet.dst_ip, packet.dst_port)
            flow = self._gs_flows_by_conn.get(key)
            if flow is not None and flow.endpoint is not None:
                flow.endpoint.handle_packet(packet)
            return
        customer = self._customers_by_ip.get(packet.dst_ip)
        if customer is not None:
            customer.downlink.send(packet, packet.size_bytes, customer.deliver_udp)

    def _gs_udp_from_customer(self, packet: Packet) -> None:
        """UDP tunneled up from a CPE — forwarded as-is (no PEP)."""
        self._gs_send_to_ground(packet)

    # -- ground-station PEP ------------------------------------------------

    def _gs_tunnel_receive(self, message: TunnelMessage) -> None:
        if message.msg_type == TunnelMessageType.CONNECT:
            self._gs_open_flow(message)
            return
        flow = self._gs_flows.get(message.flow_id)
        if flow is None:
            return
        if message.msg_type == TunnelMessageType.DATA:
            if flow.established and flow.endpoint is not None:
                flow.endpoint.send(message.payload)
            else:
                flow.pending.append(message.payload)
        elif message.msg_type == TunnelMessageType.CLOSE:
            flow.close_requested = True
            if flow.established and flow.endpoint is not None:
                flow.endpoint.close()

    def _gs_open_flow(self, message: TunnelMessage) -> None:
        customer = self._customers_by_ip.get(message.src_ip)
        if customer is None:
            return
        flow = _GsFlow(flow_id=message.flow_id, customer=customer)
        self._gs_flows[message.flow_id] = flow
        hour_loc = local_hour(COUNTRIES[customer.country], self.hour_utc)
        pep_load = self.rtt_model.beam_map.pep_utilization(customer.beam, hour_loc)
        setup_delay = float(self.rtt_model.pep.sample_setup_delay_s(pep_load, self.rng, 1)[0])
        self.sim.schedule(setup_delay, self._gs_connect_flow, flow, message)

    def _gs_connect_flow(self, flow: _GsFlow, message: TunnelMessage) -> None:
        endpoint = TcpEndpoint(
            self.sim,
            local_ip=message.src_ip,
            local_port=message.src_port,
            remote_ip=message.dst_ip,
            remote_port=message.dst_port,
            send_packet=self._gs_send_to_ground,
            on_data=lambda data: self._gs_forward_down(flow, data),
            on_established=lambda: self._gs_flow_established(flow),
            on_closed=lambda: self._gs_flow_closed(flow),
        )
        flow.endpoint = endpoint
        key = (message.dst_ip, message.dst_port, message.src_ip, message.src_port)
        self._gs_flows_by_conn[key] = flow
        endpoint.connect()

    def _gs_flow_established(self, flow: _GsFlow) -> None:
        flow.established = True
        for chunk in flow.pending:
            flow.endpoint.send(chunk)
        flow.pending.clear()
        if flow.close_requested:
            flow.endpoint.close()

    def _gs_forward_down(self, flow: _GsFlow, data: bytes) -> None:
        for offset in range(0, len(data), _MSS):
            chunk = data[offset : offset + _MSS]
            message = TunnelMessage(
                flow_id=flow.flow_id, msg_type=TunnelMessageType.DATA, payload=chunk
            )
            flow.customer.downlink.send(
                message, message.wire_size, flow.customer.deliver_tunnel
            )

    def _gs_flow_closed(self, flow: _GsFlow) -> None:
        message = TunnelMessage(flow_id=flow.flow_id, msg_type=TunnelMessageType.CLOSE)
        flow.customer.downlink.send(message, message.wire_size, flow.customer.deliver_tunnel)
