"""GEO orbital geometry.

Physics behind the paper's numbers: the satellite sits 35 786 km above
the equator; a subscriber's *slant range* (and therefore propagation
delay) depends on the central angle between the subscriber and the
sub-satellite point, and the *elevation angle* determines channel
quality — Ireland, at the coverage edge, sees the satellite barely 27°
above the horizon and "suffers from severe transmission impairments"
(Section 6.1).

One round trip traverses the space segment four times (user→sat→ground
station and back), giving the 480–560 ms propagation floor the paper
cites; MAC/scheduling overheads push the observed total above 550 ms.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

from repro.constants import (
    EARTH_RADIUS_M,
    GEO_ORBIT_RADIUS_M,
    SPEED_OF_LIGHT_M_S,
)
from repro.internet.geo import GROUND_STATION, SATELLITE_LONGITUDE_DEG, Location


def slant_range_from_central_angle_m(
    orbit_radius_m: float, central_angle_rad: float
) -> float:
    """Slant range to a satellite at ``central_angle_rad`` from the site.

    Law of cosines on the triangle Earth-centre / location / satellite.
    Shared by the GEO geometry and any circular-orbit shell — the
    single home of this expression (see also
    :func:`slant_range_from_elevation_m` for the elevation-parameterized
    form used by LEO shells).
    """
    return math.sqrt(
        EARTH_RADIUS_M**2
        + orbit_radius_m**2
        - 2 * EARTH_RADIUS_M * orbit_radius_m * math.cos(central_angle_rad)
    )


def slant_range_from_elevation_m(
    orbit_radius_m: float, elevation_deg: float
) -> float:
    """Slant range to a satellite seen at ``elevation_deg``.

    Law of sines on the Earth-centre triangle; valid for any circular
    orbit of radius ``orbit_radius_m``. Raises :class:`ValueError`
    outside ``[0, 90]`` degrees.
    """
    if not 0.0 <= elevation_deg <= 90.0:
        raise ValueError("elevation must be in [0, 90]")
    elevation = math.radians(elevation_deg)
    r, R = orbit_radius_m, EARTH_RADIUS_M
    return -R * math.sin(elevation) + math.sqrt(
        r**2 - (R * math.cos(elevation)) ** 2
    )


@dataclass(frozen=True)
class SatelliteGeometry:
    """Geometry of one GEO satellite relative to Earth locations."""

    satellite_longitude_deg: float = SATELLITE_LONGITUDE_DEG
    ground_station: Location = GROUND_STATION

    def central_angle_rad(self, location: Location) -> float:
        """Central angle between ``location`` and the sub-satellite point."""
        lat = math.radians(location.lat_deg)
        dlon = math.radians(location.lon_deg - self.satellite_longitude_deg)
        return math.acos(max(-1.0, min(1.0, math.cos(lat) * math.cos(dlon))))

    def slant_range_m(self, location: Location) -> float:
        """Line-of-sight distance from ``location`` to the satellite.

        Law of cosines on the triangle Earth-centre / location /
        satellite.
        """
        gamma = self.central_angle_rad(location)
        return slant_range_from_central_angle_m(GEO_ORBIT_RADIUS_M, gamma)

    def elevation_angle_deg(self, location: Location) -> float:
        """Elevation of the satellite above the local horizon.

        Negative values mean the satellite is below the horizon (no
        coverage).
        """
        gamma = self.central_angle_rad(location)
        ratio = EARTH_RADIUS_M / GEO_ORBIT_RADIUS_M
        sin_gamma = math.sin(gamma)
        if sin_gamma < 1e-9:
            # Degenerate: directly under the satellite (zenith) or at the
            # antipode (satellite below the nadir horizon).
            return 90.0 if math.cos(gamma) > 0 else -90.0
        elevation = math.atan2(math.cos(gamma) - ratio, sin_gamma)
        return math.degrees(elevation)

    def is_covered(self, location: Location, min_elevation_deg: float = 5.0) -> bool:
        """Whether ``location`` sees the satellite usefully."""
        return self.elevation_angle_deg(location) >= min_elevation_deg

    def one_way_hop_delay_s(self, location: Location) -> float:
        """Propagation time of one ground↔satellite traversal."""
        return self.slant_range_m(location) / SPEED_OF_LIGHT_M_S

    def one_way_path_delay_s(self, location: Location) -> float:
        """CPE → satellite → ground station propagation (one direction)."""
        return self.one_way_hop_delay_s(location) + self.one_way_hop_delay_s(self.ground_station)

    def propagation_rtt_s(self, location: Location) -> float:
        """Round-trip propagation between CPE and ground station.

        Two passes through the satellite link — "about 550 ms"
        (Section 1) once MAC overheads are included; the pure
        propagation component computed here is 480–520 ms.
        """
        return 2.0 * self.one_way_path_delay_s(location)
