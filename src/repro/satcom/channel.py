"""Channel impairments: FEC residual loss and ARQ recovery delay.

Section 6.1 explains Ireland's anomaly: it sits at the edge of the
coverage area with a large zenith angle, so "the satellite transmission
channel suffers from severe transmission impairments" and its RTT tail
is heavy *independently of load* (night ≈ peak). We model a residual
frame-error probability that decays with elevation angle; each ARQ
recovery costs a reservation round trip plus re-scheduling.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

import numpy as np

from repro.constants import TDMA_FRAME_S


@dataclass
class ChannelModel:
    """Elevation-driven residual error / ARQ delay model."""

    floor_probability: float = 0.002
    """Residual frame-error probability at zenith (clear sky)."""

    edge_probability: float = 0.55
    """Additional error probability as elevation → reference angle."""

    reference_elevation_deg: float = 20.0
    """Elevation at which the exponential term equals ``edge_probability``."""

    decay_deg: float = 3.5
    """e-folding scale of the error probability with elevation."""

    arq_rtt_s: float = 0.52
    """Cost of one ARQ recovery: retransmission request + re-delivery
    through the satellite."""

    def frame_error_probability(
        self, elevation_deg: float, weather_factor: float = 1.0
    ) -> float:
        """Residual (post-FEC) frame error probability.

        ``weather_factor`` ≥ 1 scales the error probability during rain
        fade (Ka/Ku-band attenuation); see :class:`RainFadeProcess`.
        """
        if elevation_deg <= 0:
            return 1.0
        if weather_factor < 1.0:
            raise ValueError("weather_factor must be >= 1")
        excess = max(0.0, elevation_deg - self.reference_elevation_deg)
        p = self.floor_probability + self.edge_probability * math.exp(-excess / self.decay_deg)
        return min(0.95, p * weather_factor)

    def sample_arq_delay_s(
        self,
        elevation_deg: float,
        rng: np.random.Generator,
        n: int = 1,
        frames_per_exchange: int = 4,
        weather_factor: float = 1.0,
    ) -> np.ndarray:
        """Extra delay a small exchange suffers from ARQ recoveries.

        ``frames_per_exchange`` data-link frames are at risk; each
        erred frame costs a recovery round trip plus re-scheduling
        within the next frames (uniform).
        """
        p = self.frame_error_probability(elevation_deg, weather_factor)
        errors = rng.binomial(frames_per_exchange, p, size=n)
        recovery = errors * self.arq_rtt_s
        reschedule = np.where(
            errors > 0, rng.uniform(0.0, 2.0 * TDMA_FRAME_S, size=n) * errors, 0.0
        )
        return recovery + reschedule


@dataclass
class RainFadeProcess:
    """Time-varying rain attenuation (extension beyond the paper).

    The paper's channel observations are time-averaged; operational
    Ka/Ku links additionally suffer episodic rain fade. We model a
    two-state (clear/fade) continuous-time process: exponential sojourn
    times, Gamma-distributed fade severity mapped onto the channel's
    ``weather_factor``. Tropical beams (Congo, Nigeria) fade more often
    — set a higher ``fade_probability``.
    """

    fade_probability: float = 0.04
    """Long-run fraction of time in fade."""

    mean_fade_duration_s: float = 900.0
    """Average fade episode length (~15 min convective cells)."""

    severity_shape: float = 2.0
    severity_scale: float = 3.0
    """Gamma parameters of the extra error multiplier during fade."""

    def __post_init__(self) -> None:
        if not 0.0 <= self.fade_probability < 1.0:
            raise ValueError("fade_probability must be in [0, 1)")
        if self.mean_fade_duration_s <= 0:
            raise ValueError("mean_fade_duration_s must be positive")

    @property
    def mean_clear_duration_s(self) -> float:
        """Clear-sky sojourn implied by the stationary distribution."""
        p = self.fade_probability
        if p == 0:
            return math.inf
        return self.mean_fade_duration_s * (1.0 - p) / p

    def sample_weather_factor(
        self, rng: np.random.Generator, n: int = 1
    ) -> np.ndarray:
        """Stationary samples of the channel weather factor (≥1)."""
        fading = rng.random(n) < self.fade_probability
        severity = 1.0 + rng.gamma(self.severity_shape, self.severity_scale, n)
        return np.where(fading, severity, 1.0)

    def sample_episode(
        self, rng: np.random.Generator
    ) -> "RainFadeEpisode":
        """One fade episode (duration + severity)."""
        return RainFadeEpisode(
            duration_s=float(rng.exponential(self.mean_fade_duration_s)),
            weather_factor=float(1.0 + rng.gamma(self.severity_shape, self.severity_scale)),
        )


@dataclass(frozen=True)
class RainFadeEpisode:
    """A single rain-fade event."""

    duration_s: float
    weather_factor: float
