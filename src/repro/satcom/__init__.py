"""The GEO SatCom access network (the paper's Section 2.1 substrate).

Modules:

* :mod:`repro.satcom.geometry` — orbital geometry: slant range,
  elevation angle, propagation delay per subscriber location.
* :mod:`repro.satcom.plans` — commercial capacity plans.
* :mod:`repro.satcom.beams` — spot beams, capacity, diurnal utilization.
* :mod:`repro.satcom.mac` — slotted-Aloha reservation + TDMA scheduling.
* :mod:`repro.satcom.channel` — FEC/ARQ channel-impairment model driven
  by elevation angle (why Ireland suffers at any load).
* :mod:`repro.satcom.pep` — split-TCP Performance Enhancing Proxy and
  its per-beam processing-capacity model.
* :mod:`repro.satcom.shaper` — token-bucket QoS shaper enforcing plans.
* :mod:`repro.satcom.delay_model` — the analytic satellite-RTT sampler
  combining all of the above (used by the flow-level generator).
* :mod:`repro.satcom.network` — packet-level assembly on
  :mod:`repro.simnet` (used to validate the measurement methodology).
"""

from repro.satcom.geometry import SatelliteGeometry
from repro.satcom.plans import PLANS, Plan, plan_by_downlink
from repro.satcom.beams import Beam, BeamMap, build_default_beam_map
from repro.satcom.mac import SlottedAlohaModel, TdmaModel
from repro.satcom.channel import ChannelModel, RainFadeProcess
from repro.satcom.pep import PepCapacityModel
from repro.satcom.shaper import TokenBucketShaper
from repro.satcom.qos import PriorityShapingScheduler, TrafficClass, classify
from repro.satcom.delay_model import SatelliteRttModel

__all__ = [
    "SatelliteGeometry",
    "PLANS",
    "Plan",
    "plan_by_downlink",
    "Beam",
    "BeamMap",
    "build_default_beam_map",
    "SlottedAlohaModel",
    "TdmaModel",
    "ChannelModel",
    "RainFadeProcess",
    "PepCapacityModel",
    "TokenBucketShaper",
    "PriorityShapingScheduler",
    "TrafficClass",
    "classify",
    "SatelliteRttModel",
]
