"""Multi-shell LEO constellation with deterministic orbital motion.

The GEO paper's 550 ms is a constant; the LEO related work (Michel et
al., and the region-level signature studies in PAPERS.md) shows RTT
that *moves*: the serving satellite changes on a ~15 s reconfiguration
boundary, the visible elevation depends on the subscriber's latitude
band, and every handover adds a brief RTT spike. This module models
exactly that much — no ephemerides, no ISL routing — as a pure
function of time:

- Time is quantized into *epochs* of ``reconfiguration_s`` seconds
  (Starlink reshuffles its schedule every 15 s).
- Per (epoch, latitude band, shell) a deterministic integer hash picks
  the serving shell (weighted by satellite count) and the visible
  elevation inside ``[min_elevation_deg, max usable elevation]``, with
  the usable cap shrinking toward the poles/high latitudes.
- The propagation RTT follows from the elevation-dependent slant range
  (:func:`repro.satcom.geometry.slant_range_from_elevation_m`) and the
  shell's bent-pipe hop count.

Everything is hash-derived — **no RNG draws** — so the time-varying
floor can be added on top of the existing bulk sampler without
perturbing its stream, which is what keeps captures bit-identical
across workers / pipeline depth / fleet partitioning (DESIGN §7).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Tuple

import numpy as np

from repro.constants import SPEED_OF_LIGHT_M_S, EARTH_RADIUS_M
from repro.satcom.leo import LeoShell

_GOLDEN = np.uint64(0x9E3779B97F4A7C15)
_MIX1 = np.uint64(0xBF58476D1CE4E5B9)
_MIX2 = np.uint64(0x94D049BB133111EB)
_TO_UNIT = float(2.0**-53)

#: Latitude bands are 10° wide — coarse enough that a whole country
#: shares one band, fine enough that Ireland and Congo differ.
LATITUDE_BAND_DEG = 10.0


def _splitmix64(x: np.ndarray) -> np.ndarray:
    """Vectorized splitmix64 finalizer (uint64 in, uint64 out)."""
    z = (x + _GOLDEN).astype(np.uint64)
    z = (z ^ (z >> np.uint64(30))) * _MIX1
    z = (z ^ (z >> np.uint64(27))) * _MIX2
    return z ^ (z >> np.uint64(31))


def _hash_unit(epoch: np.ndarray, *salts: int) -> np.ndarray:
    """Deterministic uniform in ``[0, 1)`` per epoch, salted.

    Chains the splitmix64 finalizer over the epoch index and the salt
    integers; the low 53 bits become the mantissa.
    """
    z = _splitmix64(epoch.astype(np.uint64))
    for salt in salts:
        z = _splitmix64(z ^ np.uint64(salt & 0xFFFFFFFFFFFFFFFF))
    return (z >> np.uint64(11)).astype(np.float64) * _TO_UNIT


def slant_range_m_vec(orbit_radius_m: float, elevation_deg: np.ndarray) -> np.ndarray:
    """Vectorized :func:`~repro.satcom.geometry.slant_range_from_elevation_m`."""
    elevation = np.radians(elevation_deg)
    r, R = orbit_radius_m, EARTH_RADIUS_M
    return -R * np.sin(elevation) + np.sqrt(r**2 - (R * np.cos(elevation)) ** 2)


@dataclass(frozen=True)
class ConstellationModel:
    """Deterministic time-varying RTT floor of a multi-shell constellation.

    ``shells`` and ``satellites_per_shell`` must be the same length;
    the per-epoch shell choice is weighted by satellite count, so a
    550 km shell with 1584 birds serves most epochs even when an
    1150 km shell is present.
    """

    shells: Tuple[LeoShell, ...] = (LeoShell(),)
    satellites_per_shell: Tuple[int, ...] = (1584,)
    reconfiguration_s: float = 15.0
    """Scheduling epoch: the serving satellite is re-chosen on this
    boundary (Starlink's 15 s reconfiguration interval)."""
    handover_window_s: float = 1.0
    """Flows starting within this long after an epoch boundary see the
    handover RTT spike."""

    def __post_init__(self) -> None:
        if len(self.shells) != len(self.satellites_per_shell):
            raise ValueError(
                "shells and satellites_per_shell must have the same length"
            )
        if not self.shells:
            raise ValueError("a constellation needs at least one shell")

    # -- time quantization -------------------------------------------------

    def epoch_of(self, t_s: np.ndarray) -> np.ndarray:
        """Scheduling-epoch index of each timestamp (int64)."""
        return np.floor_divide(
            np.asarray(t_s, dtype=np.float64), self.reconfiguration_s
        ).astype(np.int64)

    def handover_mask(self, t_s: np.ndarray) -> np.ndarray:
        """True where a flow starts inside the post-handover window."""
        phase = np.mod(np.asarray(t_s, dtype=np.float64), self.reconfiguration_s)
        return phase < self.handover_window_s

    def handovers_between(self, t0_s: float, t1_s: float) -> int:
        """Epoch boundaries crossed in ``[t0_s, t1_s)``."""
        if t1_s <= t0_s:
            return 0
        return int(
            np.floor(t1_s / self.reconfiguration_s)
            - np.floor(t0_s / self.reconfiguration_s)
        )

    # -- geometry ----------------------------------------------------------

    def latitude_band(self, lat_deg: float) -> int:
        """Band index of a latitude (10° bands, hemisphere-symmetric)."""
        return int(abs(lat_deg) // LATITUDE_BAND_DEG)

    def max_usable_elevation_deg(self, lat_deg: float) -> float:
        """Highest pass elevation the latitude band ever sees.

        Inclined shells cross the zenith only near their inclination
        limit; high-latitude terminals watch passes lower on the
        horizon. Modeled as a linear cap on the band-centre latitude,
        floored a few degrees above every shell's mask.
        """
        band_centre = self.latitude_band(lat_deg) * LATITUDE_BAND_DEG + 5.0
        floor = max(s.min_elevation_deg for s in self.shells) + 5.0
        return max(floor, 90.0 - 0.5 * band_centre)

    def serving_shell(self, lat_deg: float, t_s: np.ndarray) -> np.ndarray:
        """Per-flow serving shell index — a hash of (epoch, band).

        Weighted by ``satellites_per_shell`` so denser shells serve
        proportionally more epochs.
        """
        epoch = self.epoch_of(t_s)
        band = self.latitude_band(lat_deg)
        u = _hash_unit(epoch, 0x5348454C, band)
        weights = np.asarray(self.satellites_per_shell, dtype=np.float64)
        cumulative = np.cumsum(weights) / weights.sum()
        return np.searchsorted(cumulative, u, side="right").astype(np.int64)

    def visible_elevation_deg(self, lat_deg: float, t_s: np.ndarray) -> np.ndarray:
        """Per-flow elevation of the serving satellite (degrees).

        Per (epoch, band, shell) a hash draws from the visible cap with
        the cos-weighting geometry dictates (same transform as
        :meth:`LeoShell.sample_rtt_s`, but hash-derived, not RNG).
        """
        epoch = self.epoch_of(t_s)
        band = self.latitude_band(lat_deg)
        shell_idx = self.serving_shell(lat_deg, t_s)
        hi = np.sin(np.radians(self.max_usable_elevation_deg(lat_deg)))
        elevation = np.empty(len(epoch), dtype=np.float64)
        for k, shell in enumerate(self.shells):
            mask = shell_idx == k
            if not mask.any():
                continue
            u = _hash_unit(epoch[mask], 0x454C4556, band, k)
            lo = np.sin(np.radians(shell.min_elevation_deg))
            elevation[mask] = np.degrees(np.arcsin(lo + u * (max(hi, lo) - lo)))
        return elevation

    def rtt_floor_s(self, lat_deg: float, t_s: np.ndarray) -> np.ndarray:
        """Propagation RTT of the serving satellite at each timestamp.

        Both links of the bent pipe are taken at the selected pass
        elevation; non-bent-pipe shells traverse the space segment once
        per direction.
        """
        shell_idx = self.serving_shell(lat_deg, t_s)
        elevation = self.visible_elevation_deg(lat_deg, t_s)
        rtt = np.empty(len(shell_idx), dtype=np.float64)
        for k, shell in enumerate(self.shells):
            mask = shell_idx == k
            if not mask.any():
                continue
            hop_s = slant_range_m_vec(shell.orbit_radius_m, elevation[mask])
            hops = 4 if shell.bent_pipe else 2
            rtt[mask] = hops * hop_s / SPEED_OF_LIGHT_M_S
        return rtt

    # -- bounds ------------------------------------------------------------

    def min_rtt_s(self) -> float:
        """Best case across shells (zenith pass of the lowest shell)."""
        return min(shell.min_rtt_s() for shell in self.shells)

    def max_rtt_s(self) -> float:
        """Worst case across shells (mask-grazing pass, highest shell)."""
        return max(shell.max_rtt_s() for shell in self.shells)

    def mean_rtt_s(self, lat_deg: float = 40.0, n_epochs: int = 256) -> float:
        """Long-run mean floor at a latitude (epoch-averaged)."""
        t = np.arange(n_epochs, dtype=np.float64) * self.reconfiguration_s
        return float(self.rtt_floor_s(lat_deg, t).mean())
