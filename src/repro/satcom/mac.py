"""Return-link medium access: slotted Aloha + TDMA scheduling.

Section 2.1: "a slotted-Aloha protocol allows the CPE to access the
shared reservation channel the first time it needs to transmit. Then, a
TDMA scheduling protocol run by the satellite allocates time-slots to
each active CPE … By combining these MAC, scheduling, FEC and ARQ
protocols, further random delays are added".

Model:

* **Slotted Aloha** (reservation channel): with offered load ``G`` the
  per-attempt success probability is ``exp(-2G)``; each failed attempt
  costs a binary-exponential backoff plus the reservation round trip
  through the satellite (the collision is only discovered ~270 ms
  later).
* **TDMA** (data slots): a packet waits for its slot within the frame
  (uniform), the demand-assignment loop adds about half a frame, and
  under utilization ``ρ`` queueing adds an exponential delay with mean
  ``frame · ρ/(1−ρ)`` (M/M/1-flavored, capped).
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.constants import ALOHA_SLOT_S, TDMA_FRAME_S

#: One traversal of the space segment — a collision or a capacity
#: request is only resolved after the reservation message reaches the
#: scheduler and the response comes back (~2 hops).
_RESERVATION_RTT_S = 0.52


@dataclass
class SlottedAlohaModel:
    """First-access contention on the shared reservation channel."""

    slot_s: float = ALOHA_SLOT_S
    reservation_rtt_s: float = _RESERVATION_RTT_S
    max_backoff_slots: int = 64

    def success_probability(self, offered_load: float) -> float:
        """Per-attempt success probability at offered load ``G``."""
        if offered_load < 0:
            raise ValueError("offered_load must be non-negative")
        return float(np.exp(-2.0 * offered_load))

    def sample_access_delay_s(
        self, offered_load: float, rng: np.random.Generator, n: int = 1
    ) -> np.ndarray:
        """Delay to win a reservation slot, for ``n`` independent CPEs.

        A successful first attempt costs only the slot alignment; each
        retry costs a full reservation RTT plus backoff.
        """
        p = max(1e-3, self.success_probability(offered_load))
        attempts = rng.geometric(p, size=n)
        retries = attempts - 1
        backoff_slots = rng.integers(1, self.max_backoff_slots + 1, size=n)
        alignment = rng.uniform(0.0, self.slot_s, size=n)
        return alignment + retries * (self.reservation_rtt_s + backoff_slots * self.slot_s)


@dataclass
class TdmaModel:
    """Demand-assigned TDMA on the return link."""

    frame_s: float = TDMA_FRAME_S
    max_queue_frames: float = 10.0
    """Cap on the mean queueing delay, in frames (finite MAC buffers)."""

    def mean_queue_delay_s(self, utilization: float) -> float:
        """Mean queueing delay at radio utilization ``ρ``."""
        if not 0.0 <= utilization < 1.0:
            raise ValueError("utilization must be in [0, 1)")
        rho_term = min(utilization / (1.0 - utilization), self.max_queue_frames)
        return self.frame_s * rho_term

    def sample_scheduling_delay_s(
        self,
        utilization: float,
        rng: np.random.Generator,
        n: int = 1,
    ) -> np.ndarray:
        """Per-burst scheduling delay at radio utilization ``ρ``.

        slot alignment (uniform within the frame) + demand-assignment
        overhead (~half a frame) + exponential queueing.
        """
        alignment = rng.uniform(0.0, self.frame_s, size=n)
        assignment = 0.5 * self.frame_s * np.ones(n)
        queue = rng.exponential(self.mean_queue_delay_s(utilization), size=n)
        return alignment + assignment + queue
