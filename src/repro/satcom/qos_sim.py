"""QoS scheduler micro-simulation.

A self-contained scenario quantifying why the operator runs the
Section 2.1 QoS machinery: a congested downlink carries a mix of
interactive (DNS/VoIP), web, bulk and video traffic; we measure
per-class queueing latency with the priority scheduler on and off.
Used by the QoS ablation benchmark and the tests.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Dict, List, Optional

import numpy as np

from repro.satcom.qos import PriorityShapingScheduler, TrafficClass
from repro.simnet.engine import Simulator

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from repro.satcom.delaysource import DelaySource


@dataclass
class QosScenarioConfig:
    """Offered load and link parameters."""

    link_rate_bps: float = 20e6
    duration_s: float = 20.0
    seed: int = 0
    #: per-class (packets/s, packet bytes)
    offered: Dict[TrafficClass, tuple] = field(
        default_factory=lambda: {
            TrafficClass.INTERACTIVE: (40.0, 300),
            TrafficClass.WEB: (250.0, 1400),
            TrafficClass.BULK: (900.0, 1400),
            TrafficClass.VIDEO: (800.0, 1400),
        }
    )
    video_shape_bps: Optional[float] = 6e6
    """Token-bucket rate applied to the VIDEO class (None = unshaped)."""


@dataclass
class QosScenarioResult:
    """Mean queueing latency (s) and delivery counts per class."""

    mean_latency_s: Dict[TrafficClass, float]
    delivered: Dict[TrafficClass, int]
    drops: int

    def latency_ms(self, traffic_class: TrafficClass) -> float:
        return self.mean_latency_s[traffic_class] * 1000.0


def run_qos_scenario(
    config: Optional[QosScenarioConfig] = None,
    use_scheduler: bool = True,
    delay_source: Optional["DelaySource"] = None,
    country: str = "Spain",
) -> QosScenarioResult:
    """Run the scenario; with ``use_scheduler=False`` the link is a
    single FIFO (every class suffers the bulk/video queue).

    ``delay_source`` optionally adds the satellite-segment floor RTT
    (at each packet's delivery instant, so constellation sources make
    the floor move mid-run) on top of the queueing latency — the
    end-to-end view of the same experiment. ``None`` keeps the
    historical queueing-only measurement. The addition is draw-free, so
    the arrival/drain event sequence is identical either way.
    """
    if config is None:
        # the baseline scenario owns the default QoS knobs
        from repro.scenario import get_scenario

        config = get_scenario("baseline-geo").qos_config()
    sim = Simulator()
    rng = np.random.default_rng(config.seed)

    scheduler = PriorityShapingScheduler(
        class_rate_bps=(
            {TrafficClass.VIDEO: config.video_shape_bps}
            if (use_scheduler and config.video_shape_bps)
            else None
        ),
        queue_limit_bytes=12_000_000,
    )
    latencies: Dict[TrafficClass, List[float]] = {cls: [] for cls in TrafficClass}
    delivered: Dict[TrafficClass, int] = {cls: 0 for cls in TrafficClass}
    fifo: List[tuple] = []

    def arrival(cls: TrafficClass, size: int) -> None:
        t_in = sim.now

        def deliver(_payload) -> None:
            latency = sim.now - t_in
            if delay_source is not None:
                latency += delay_source.floor_rtt_s(country, sim.now)
            latencies[cls].append(latency)
            delivered[cls] += 1

        if use_scheduler:
            scheduler.enqueue(cls, None, size, deliver)
        else:
            fifo.append((size, deliver))

    # Poisson arrivals per class, bulk-scheduled: tens of thousands of
    # pre-known events heapify once instead of sifting one by one
    # (identical pop order — at_batch draws the same seq counter).
    arrivals: List[tuple] = []
    for cls, (rate, size) in config.offered.items():
        t = float(rng.exponential(1.0 / rate))
        while t < config.duration_s:
            arrivals.append((t, arrival, (cls, size)))
            t += float(rng.exponential(1.0 / rate))
    sim.at_batch(arrivals)

    # Service loop: every tick, drain what the link can carry.
    tick = 0.005
    budget = int(config.link_rate_bps * tick / 8.0)

    def service() -> None:
        if use_scheduler:
            scheduler.drain(sim.now, budget)
        else:
            remaining = budget
            while fifo and fifo[0][0] <= remaining:
                size, deliver = fifo.pop(0)
                remaining -= size
                deliver(None)
        if sim.now < config.duration_s + 5.0:
            sim.schedule(tick, service)

    sim.schedule(0.0, service)
    sim.run(until=config.duration_s + 6.0)

    return QosScenarioResult(
        mean_latency_s={
            cls: float(np.mean(values)) if values else float("nan")
            for cls, values in latencies.items()
        },
        delivered=delivered,
        drops=scheduler.drops,
    )
