"""Spot beams: capacity, coverage and load.

Each region is covered by an uplink/downlink beam pair providing
aggregate capacity "on the order of Gb/s" (Section 2.1). Figure 8b
relates per-beam median satellite RTT to beam utilization and reveals
that Congo's and some Nigerian beams are congested — and that part of
the congestion is *PEP processing saturation* rather than raw beam
capacity (the operator confirmed this to the authors).

A :class:`Beam` therefore carries two load figures: ``peak_utilization``
(radio capacity) and ``pep_load`` (PEP processing). Utilization over
the day follows a continent-typical diurnal shape.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import Dict, List

import numpy as np

from repro.internet.geo import COUNTRIES


@dataclass(frozen=True)
class Beam:
    """One spot beam serving a country (or part of one)."""

    beam_id: str
    country: str
    capacity_gbps: float
    peak_utilization: float
    pep_load: float

    def __post_init__(self) -> None:
        if not 0.0 <= self.peak_utilization < 1.0:
            raise ValueError("peak_utilization must be in [0, 1)")
        if not 0.0 <= self.pep_load < 1.0:
            raise ValueError("pep_load must be in [0, 1)")


def _circular_bump(hour_local, peak: float, width: float):
    """Gaussian bump over the 24 h circle (scalar or ndarray)."""
    distance = (np.asarray(hour_local) - peak + 12.0) % 24.0 - 12.0
    return np.exp(-(distance**2) / (2.0 * width**2))


def _diurnal_shape(hour_local, continent: str):
    """Relative load in [~0.2, 1.0] over the local day (vectorized).

    Europe peaks in the evening; African load is high through the
    morning too and never drops as low at night (Figure 4) because
    community access points serve users all day.
    """
    if continent == "Africa":
        morning = _circular_bump(hour_local, 10.0, 3.5)
        evening = _circular_bump(hour_local, 19.0, 2.5)
        shape = 0.45 + 0.55 * np.maximum(morning * 0.95, evening)
    else:
        evening = _circular_bump(hour_local, 19.0, 2.2)
        day = _circular_bump(hour_local, 12.0, 4.0)
        shape = 0.22 + 0.78 * np.maximum(evening, 0.55 * day)
    if np.ndim(hour_local) == 0:
        return float(shape)
    return shape


@dataclass
class BeamMap:
    """All beams of the satellite, grouped by country."""

    beams: List[Beam] = field(default_factory=list)

    def __post_init__(self) -> None:
        self._by_country: Dict[str, List[Beam]] = {}
        for beam in self.beams:
            self._by_country.setdefault(beam.country, []).append(beam)

    def beams_for(self, country: str) -> List[Beam]:
        """Beams covering ``country`` (raises KeyError when uncovered)."""
        if country not in self._by_country:
            raise KeyError(f"no beam covers {country}")
        return self._by_country[country]

    def assign_beam(self, country: str, index: int) -> Beam:
        """Deterministically assign the ``index``-th customer to a beam."""
        beams = self.beams_for(country)
        return beams[index % len(beams)]

    def utilization(self, beam: Beam, hour_local: float) -> float:
        """Radio utilization of ``beam`` at local time ``hour_local``."""
        continent = COUNTRIES[beam.country].continent
        return min(0.99, beam.peak_utilization * _diurnal_shape(hour_local, continent))

    def pep_utilization(self, beam: Beam, hour_local: float) -> float:
        """PEP processing load of ``beam`` at local time ``hour_local``.

        Flatter than radio utilization: PEP resources are allocated per
        SLA, and under-provisioned beams (Congo) stay saturated even at
        night — the paper observes "high RTT values already occur
        during periods of low peak traffic" (Section 6.1).
        """
        continent = COUNTRIES[beam.country].continent
        shape = 0.72 + 0.28 * _diurnal_shape(hour_local, continent)
        return min(0.99, beam.pep_load * shape)

    def utilization_bulk(
        self, peak_utilization: np.ndarray, hour_local: np.ndarray, continent: str
    ) -> np.ndarray:
        """Vectorized :meth:`utilization` over per-flow arrays."""
        return np.minimum(0.99, peak_utilization * _diurnal_shape(hour_local, continent))

    def pep_utilization_bulk(
        self, pep_load: np.ndarray, hour_local: np.ndarray, continent: str
    ) -> np.ndarray:
        """Vectorized :meth:`pep_utilization` over per-flow arrays."""
        shape = 0.72 + 0.28 * _diurnal_shape(hour_local, continent)
        return np.minimum(0.99, pep_load * shape)


#: Peak radio / PEP loads per country. Congo is congested on both
#: dimensions; two of Nigeria's beams are PEP-saturated; European
#: beams are lightly loaded (Section 6.1).
_BEAM_SPECS: Dict[str, List[tuple]] = {
    # (capacity_gbps, peak_utilization, pep_load)
    "Congo": [(1.4, 0.95, 0.96), (1.4, 0.92, 0.94)],
    "Nigeria": [(1.8, 0.88, 0.82), (1.8, 0.82, 0.72), (1.8, 0.60, 0.45), (1.8, 0.52, 0.38)],
    "South Africa": [(1.6, 0.58, 0.50), (1.6, 0.64, 0.58)],
    "Ireland": [(1.2, 0.46, 0.40)],
    "Spain": [(1.6, 0.50, 0.42), (1.6, 0.44, 0.38), (1.6, 0.38, 0.33)],
    "UK": [(1.6, 0.52, 0.46), (1.6, 0.56, 0.50)],
}

_DEFAULT_SPEC = {"Africa": (1.4, 0.75, 0.75), "Europe": (1.4, 0.45, 0.40)}


def build_default_beam_map() -> BeamMap:
    """The beam plan used throughout the reproduction.

    Every subscriber country gets at least one beam; the six focus
    countries follow the load pattern the paper reports.
    """
    beams: List[Beam] = []
    for country, location in COUNTRIES.items():
        specs = _BEAM_SPECS.get(country)
        if specs is None:
            capacity, peak, pep = _DEFAULT_SPEC[location.continent]
            specs = [(capacity, peak, pep)]
        for i, (capacity, peak, pep) in enumerate(specs):
            beams.append(
                Beam(
                    beam_id=f"{country.lower().replace(' ', '-')}-{i}",
                    country=country,
                    capacity_gbps=capacity,
                    peak_utilization=peak,
                    pep_load=pep,
                )
            )
    return BeamMap(beams=beams)
