"""Commercial capacity plans.

Section 2.1: the shaper enforces "commercial maximum capacity of up to
5 Mb/s in the uplink, and 10, 20, 30, 100 Mb/s in the downlink based on
the subscriber's contract"; Section 6.5 adds that 30/50/100 Mb/s plans
are popular in Europe while Africa buys 10 and 30 Mb/s — these plan
rates are the knees of Figure 11a.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Tuple

import numpy as np


@dataclass(frozen=True)
class Plan:
    """One commercial subscription tier."""

    name: str
    down_mbps: float
    up_mbps: float

    @property
    def down_bps(self) -> float:
        return self.down_mbps * 1e6

    @property
    def up_bps(self) -> float:
        return self.up_mbps * 1e6


PLANS: Dict[str, Plan] = {
    plan.name: plan
    for plan in (
        Plan("sat-10", 10.0, 2.0),
        Plan("sat-20", 20.0, 3.0),
        Plan("sat-30", 30.0, 5.0),
        Plan("sat-50", 50.0, 5.0),
        Plan("sat-100", 100.0, 5.0),
    )
}


#: Plan adoption by continent (Section 6.5): the probability a new
#: subscriber buys each tier.
PLAN_MIX_BY_CONTINENT: Dict[str, Dict[str, float]] = {
    "Europe": {"sat-30": 0.30, "sat-50": 0.35, "sat-100": 0.35},
    "Africa": {"sat-10": 0.55, "sat-20": 0.08, "sat-30": 0.37},
}


#: Canonical plan ordering — the per-plan axis of the rollup's QoE bank.
PLAN_ORDER: Tuple[str, ...] = tuple(PLANS)


def plan_by_downlink(down_mbps: float) -> Plan:
    """The plan whose downlink rate matches ``down_mbps`` (raises KeyError)."""
    for plan in PLANS.values():
        if plan.down_mbps == down_mbps:
            return plan
    raise KeyError(f"no plan with downlink {down_mbps} Mb/s")


def plan_index_bulk(down_mbps: np.ndarray) -> np.ndarray:
    """Vectorized ``plan_down_mbps`` → :data:`PLAN_ORDER` index.

    Unknown or NaN rates map to ``-1`` (callers mask them out). Plan
    rates are integer Mb/s values, exact in float32, so the equality
    match is stable across dtypes.
    """
    rates = np.asarray(down_mbps, dtype=np.float64)
    out = np.full(rates.shape, -1, dtype=np.int16)
    for idx, name in enumerate(PLAN_ORDER):
        out[rates == PLANS[name].down_mbps] = idx
    return out
