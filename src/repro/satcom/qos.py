"""QoS scheduling at the ground station.

Section 2.1: the ground station "supports Quality of Service (QoS)
schedulers to prioritize and shape traffic depending on the
application. To this end, the SatCom operator uses L3/L4 and domain
name-specific rules to prioritize interactive traffic and shape video
streaming flows."

We model exactly that: a rule table mapping flows to traffic classes
(by port, protocol, or domain pattern), a strict-priority scheduler
with per-class token-bucket shaping for the classes the operator rate
limits (video), and counters for observability.
"""

from __future__ import annotations

import enum
import re
from collections import deque
from dataclasses import dataclass, field
from typing import Callable, Deque, Dict, List, Optional, Tuple

from repro.satcom.shaper import TokenBucketShaper


class TrafficClass(enum.IntEnum):
    """Priority classes, highest first."""

    INTERACTIVE = 0  # DNS, VoIP/RTP, small interactive exchanges
    WEB = 1          # browsing, chat, APIs
    BULK = 2         # downloads, updates, uploads
    VIDEO = 3        # streaming (shaped, not prioritized)


@dataclass(frozen=True)
class ClassificationRule:
    """One operator rule: match by L4 port, protocol, or domain regex."""

    traffic_class: TrafficClass
    ports: Tuple[int, ...] = ()
    protocol: Optional[str] = None  # 'tcp' | 'udp'
    domain_pattern: Optional[str] = None

    def matches(self, protocol: str, port: int, domain: Optional[str]) -> bool:
        if self.protocol is not None and protocol != self.protocol:
            return False
        if self.ports and port not in self.ports:
            return False
        if self.domain_pattern is not None:
            if not domain or not re.search(self.domain_pattern, domain):
                return False
        return True


#: The operator's default rule table (first match wins).
DEFAULT_RULES: Tuple[ClassificationRule, ...] = (
    ClassificationRule(TrafficClass.INTERACTIVE, ports=(53,), protocol="udp"),
    ClassificationRule(TrafficClass.INTERACTIVE, domain_pattern=r"voip|turn|rtc"),
    ClassificationRule(
        TrafficClass.VIDEO,
        domain_pattern=r"googlevideo|nflxvideo|pv-cdn|sky\.com|tiktokcdn|video",
    ),
    ClassificationRule(TrafficClass.BULK, domain_pattern=r"windowsupdate|download|dl-|cdn-apple"),
    ClassificationRule(TrafficClass.WEB, ports=(80, 443)),
)


def video_session_shaper(shape_bps: Optional[float]) -> Optional[TokenBucketShaper]:
    """The per-session video token bucket (``None`` = unshaped plan).

    Session-structured video (:mod:`repro.traffic.sessions`) runs its
    chunk schedule through this bucket — the same primitive the
    strict-priority scheduler uses for the VIDEO class — so scenario
    ``traffic.qoe.shape_bps`` and packet-level shaping agree.
    """
    if shape_bps is None:
        return None
    return TokenBucketShaper(rate_bps=float(shape_bps))


def classify(
    protocol: str,
    port: int,
    domain: Optional[str],
    rules: Tuple[ClassificationRule, ...] = DEFAULT_RULES,
) -> TrafficClass:
    """Apply the rule table (first match wins; default BULK)."""
    for rule in rules:
        if rule.matches(protocol, port, domain):
            return rule.traffic_class
    return TrafficClass.BULK


@dataclass
class _Queued:
    payload: object
    size_bytes: int
    deliver: Callable[[object], None]


class PriorityShapingScheduler:
    """Strict-priority scheduler with optional per-class shaping.

    ``enqueue`` accepts classified packets; ``drain(now, budget_bytes)``
    releases them highest-priority-first, holding back packets of
    shaped classes whose token bucket is empty (video shaping). Returns
    the packets released this round, in order.
    """

    def __init__(
        self,
        class_rate_bps: Optional[Dict[TrafficClass, float]] = None,
        queue_limit_bytes: int = 4_000_000,
    ) -> None:
        self.queues: Dict[TrafficClass, Deque[_Queued]] = {
            cls: deque() for cls in TrafficClass
        }
        self.shapers: Dict[TrafficClass, TokenBucketShaper] = {
            cls: TokenBucketShaper(rate_bps=rate)
            for cls, rate in (class_rate_bps or {}).items()
        }
        self.queue_limit_bytes = queue_limit_bytes
        self.backlog_bytes = 0
        self.drops = 0
        self.released_by_class: Dict[TrafficClass, int] = {cls: 0 for cls in TrafficClass}

    def enqueue(
        self,
        traffic_class: TrafficClass,
        payload: object,
        size_bytes: int,
        deliver: Callable[[object], None],
    ) -> bool:
        """Queue a packet; returns False when the buffer is full."""
        if self.backlog_bytes + size_bytes > self.queue_limit_bytes:
            self.drops += 1
            return False
        self.queues[traffic_class].append(_Queued(payload, size_bytes, deliver))
        self.backlog_bytes += size_bytes
        return True

    def drain(self, now: float, budget_bytes: int) -> List[object]:
        """Release up to ``budget_bytes``, strict priority order."""
        released: List[object] = []
        remaining = budget_bytes
        for cls in TrafficClass:  # ascending value = descending priority
            queue = self.queues[cls]
            shaper = self.shapers.get(cls)
            while queue and queue[0].size_bytes <= remaining:
                head = queue[0]
                if shaper is not None and not shaper.would_conform(head.size_bytes, now):
                    break  # shaped class out of tokens — let lower classes run
                if shaper is not None:
                    shaper.delay_for(head.size_bytes, now)
                queue.popleft()
                self.backlog_bytes -= head.size_bytes
                remaining -= head.size_bytes
                self.released_by_class[cls] += 1
                head.deliver(head.payload)
                released.append(head.payload)
        return released

    @property
    def pending(self) -> int:
        """Packets currently queued across all classes."""
        return sum(len(q) for q in self.queues.values())
