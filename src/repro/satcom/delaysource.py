"""Time-indexed delay interface: one seam for GEO and LEO RTT.

Every layer that used to hold a raw :class:`SatelliteRttModel` —
workload generation, the packet network, the QoS micro-sim, the
flowmeter helpers — now holds a :class:`DelaySource` instead. The
source answers the same vectorized sampling questions the model did,
*plus* a flow start-time axis:

- :class:`StaticDelaySource` ignores the time axis entirely and
  delegates to the wrapped model verbatim — byte-identical to the
  pre-refactor stack (parity tests pin this), so every existing
  scenario keeps its capture digest.
- :class:`ConstellationDelaySource` adds a deterministic, hash-derived
  time-varying floor from a :class:`ConstellationModel` on top of the
  model's sample: orbital motion moves the propagation floor every
  ~15 s scheduling epoch, and flows that start inside the post-handover
  window pay a reconfiguration spike.

The determinism contract (DESIGN §7) survives because the constellation
adjustment consumes **zero RNG draws**: the wrapped model's bulk
sampler is called with the exact argument sequence it always saw, and
the time-varying delta is a pure function of each flow's timestamp.
Captures therefore stay bit-identical across ``--workers``,
``--pipeline-depth``, ``--engine`` and fleet partitioning, for GEO and
LEO alike.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional, Sequence

import numpy as np

from repro.constants import SECONDS_PER_DAY
from repro.internet.geo import COUNTRIES, local_hour
from repro.satcom.constellation import ConstellationModel
from repro.satcom.delay_model import SatelliteRttModel

__all__ = [
    "DelaySource",
    "StaticDelaySource",
    "ConstellationDelaySource",
]


@dataclass
class DelaySource:
    """Base time-indexed RTT source wrapping a :class:`SatelliteRttModel`.

    The base class *is* the static behavior; subclasses override
    :meth:`floor_delta_s` (and the telemetry hooks) to make the floor
    move. Consumers treat the source as opaque: the hot path calls
    :meth:`sample_handshake_rtt_bulk` with per-flow loads and start
    times, casual callers use :meth:`sample_rtt` with customer ids.
    """

    rtt_model: SatelliteRttModel = field(default_factory=SatelliteRttModel)
    _customer_countries: Optional[np.ndarray] = field(
        default=None, repr=False, compare=False
    )

    @property
    def beam_map(self):
        return self.rtt_model.beam_map

    @property
    def is_time_varying(self) -> bool:
        return False

    # -- customer binding --------------------------------------------------

    def bind_customers(self, countries: Sequence[str]) -> None:
        """Attach the per-customer country table (population order).

        Lets :meth:`sample_rtt` resolve ``customer_ids`` to countries;
        the workload generator binds its population automatically.
        """
        self._customer_countries = np.asarray(countries, dtype=object)

    # -- time-varying hooks (identity for the static source) ---------------

    def floor_delta_s(self, country_name: str, t_s: np.ndarray) -> np.ndarray:
        """Per-flow adjustment to the model's static floor (seconds)."""
        return np.zeros(len(np.atleast_1d(t_s)), dtype=np.float64)

    def propagation_extra_s(self, country_name: str, t_s: float) -> float:
        """Scalar one-way extra propagation at an instant (packet path)."""
        return 0.0

    def handovers_between(self, t0_s: float, t1_s: float) -> int:
        """Satellite handovers a capture window ``[t0_s, t1_s)`` spans."""
        return 0

    # -- sampling ----------------------------------------------------------

    def floor_rtt_s(self, country_name: str, t_s: Optional[float] = None) -> float:
        """Propagation + fixed processing floor, optionally at a time."""
        static = self.rtt_model.floor_rtt_s(country_name)
        if t_s is None:
            return static
        delta = self.floor_delta_s(country_name, np.asarray([float(t_s)]))
        return float(static + delta[0])

    def sample_handshake_rtt_bulk(
        self,
        country_name: str,
        utilization: np.ndarray,
        pep_load: np.ndarray,
        t_s: np.ndarray,
        rng: np.random.Generator,
    ) -> np.ndarray:
        """Vectorized handshake RTTs with per-flow loads *and* times.

        The wrapped model's sampler runs first with its historical
        argument sequence (identical RNG stream); the time-varying
        floor delta is then added draw-free.
        """
        base = self.rtt_model.sample_handshake_rtt_bulk(
            country_name, utilization, pep_load, rng
        )
        if not self.is_time_varying:
            return base
        return np.maximum(base + self.floor_delta_s(country_name, t_s), 1e-3)

    def sample_rtt(
        self,
        customer_ids: np.ndarray,
        t_s: np.ndarray,
        rng: np.random.Generator,
    ) -> np.ndarray:
        """Handshake RTTs (seconds) for customers at flow start times.

        The convenience entry point named by the refactor: resolves
        each customer's country (via :meth:`bind_customers`), derives
        the beam loads from each flow's local hour, and samples one
        RTT per (customer, time) pair. Countries are processed in
        sorted order with per-country sub-streams, so the result is
        independent of input ordering only in distribution — use the
        bulk path for reproducible captures.
        """
        if self._customer_countries is None:
            raise ValueError(
                "DelaySource.sample_rtt needs bind_customers() first "
                "(the workload generator does this automatically)"
            )
        customer_ids = np.asarray(customer_ids)
        t_s = np.asarray(t_s, dtype=np.float64)
        if customer_ids.shape != t_s.shape:
            raise ValueError("customer_ids and t_s must have the same shape")
        out = np.empty(len(customer_ids), dtype=np.float64)
        flow_countries = self._customer_countries[customer_ids]
        for country in sorted(set(flow_countries.tolist())):
            mask = flow_countries == country
            location = COUNTRIES[country]
            beam = self.beam_map.beams_for(country)[0]
            hour_utc = (t_s[mask] % SECONDS_PER_DAY) / 3600.0
            hour_loc = local_hour(location, hour_utc)
            util = self.beam_map.utilization_bulk(
                np.full(mask.sum(), beam.peak_utilization),
                hour_loc,
                location.continent,
            )
            pep = self.beam_map.pep_utilization_bulk(
                np.full(mask.sum(), beam.pep_load), hour_loc, location.continent
            )
            out[mask] = self.sample_handshake_rtt_bulk(
                country, util, pep, t_s[mask], rng
            )
        return out


@dataclass
class StaticDelaySource(DelaySource):
    """The pre-refactor behavior behind the new interface.

    Pure delegation: time arguments are accepted and ignored, no extra
    RNG draws, no floor delta — the parity tests assert byte-identical
    samples against a bare :class:`SatelliteRttModel`.
    """


@dataclass
class ConstellationDelaySource(DelaySource):
    """Time-varying LEO floor on top of the static MAC/PEP/channel stack.

    The wrapped model (with its LEO-scale MAC constants and
    :class:`~repro.satcom.leo.LeoGeometryAdapter` mid-range floor)
    still produces the distribution body; this source swaps the static
    propagation component for the constellation's per-epoch floor and
    adds the handover spike. Both adjustments are pure functions of
    the flow timestamp (no RNG), preserving the capture determinism
    contract.
    """

    constellation: ConstellationModel = field(default_factory=ConstellationModel)
    handover_penalty_s: float = 0.008
    """Extra RTT paid by flows starting inside the post-handover window
    (path re-establishment through the new satellite)."""

    @property
    def is_time_varying(self) -> bool:
        return True

    def floor_delta_s(self, country_name: str, t_s: np.ndarray) -> np.ndarray:
        location = COUNTRIES[country_name]
        t_s = np.asarray(t_s, dtype=np.float64)
        static = self.rtt_model.geometry.propagation_rtt_s(location)
        dynamic = self.constellation.rtt_floor_s(location.lat_deg, t_s)
        delta = dynamic - static
        if self.handover_penalty_s > 0.0:
            delta = delta + np.where(
                self.constellation.handover_mask(t_s), self.handover_penalty_s, 0.0
            )
        return delta

    def propagation_extra_s(self, country_name: str, t_s: float) -> float:
        """One-way share of the floor delta at an instant (packet path)."""
        return 0.5 * float(
            self.floor_delta_s(country_name, np.asarray([float(t_s)]))[0]
        )

    def handovers_between(self, t0_s: float, t1_s: float) -> int:
        return self.constellation.handovers_between(t0_s, t1_s)
