"""Analytic satellite-segment RTT sampler.

Composes geometry (propagation), MAC (Aloha + TDMA), channel (ARQ) and
PEP (setup saturation) into the distribution the paper measures with
the TLS-handshake method (Section 2.2 / Figure 8): the time between the
``ServerHello`` leaving the ground station and the client's
``ClientKeyExchange`` returning, i.e. one full traversal of the
satellite segment in each direction plus everything the SatCom stack
adds.

The same object serves the flow-level workload generator (vectorized
sampling for hundreds of thousands of flows) and the calibration tests
that check the paper's headline numbers (>550 ms floor everywhere,
Spain 82 % < 1 s at night, Congo ~20 % > 2 s, Ireland load-independent
heavy tail).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional

import numpy as np

from repro.internet.geo import COUNTRIES, Location, local_hour
from repro.satcom.beams import Beam, BeamMap, build_default_beam_map
from repro.satcom.channel import ChannelModel
from repro.satcom.geometry import SatelliteGeometry
from repro.satcom.mac import SlottedAlohaModel, TdmaModel
from repro.satcom.pep import PepCapacityModel

__all__ = ["SatelliteRttModel", "local_hour"]


@dataclass
class SatelliteRttModel:
    """Sampler for satellite-segment RTTs per (country, beam, hour)."""

    geometry: SatelliteGeometry = field(default_factory=SatelliteGeometry)
    beam_map: BeamMap = field(default_factory=build_default_beam_map)
    tdma: TdmaModel = field(default_factory=TdmaModel)
    aloha: SlottedAlohaModel = field(default_factory=SlottedAlohaModel)
    channel: ChannelModel = field(default_factory=ChannelModel)
    pep: PepCapacityModel = field(default_factory=PepCapacityModel)

    base_processing_s: float = 0.020
    """Fixed modem/framing/encapsulation processing per round trip."""

    terminal_median_s: float = 0.030
    terminal_sigma: float = 0.85
    """Log-normal end-device processing (TLS key computation on cheap
    CPE/user hardware — contributes the body-level variability)."""

    stack_jitter_median_s: float = 0.095
    stack_jitter_sigma: float = 1.0
    """Log-normal catch-all for the proprietary data-link stack
    ("further random delays", Section 2.1): interleaving, grant
    re-negotiation, encapsulation batching."""

    contention_fraction: float = 0.12
    """Fraction of handshakes that find the CPE idle and must win a
    slotted-Aloha reservation first (most flows arrive on already
    active terminals)."""

    def floor_rtt_s(self, country_name: str) -> float:
        """Propagation + fixed processing floor for a country."""
        location = COUNTRIES[country_name]
        return self.geometry.propagation_rtt_s(location) + self.base_processing_s

    def sample_handshake_rtt_s(
        self,
        country_name: str,
        hour_utc: float,
        rng: np.random.Generator,
        n: int = 1,
        beam: Optional[Beam] = None,
    ) -> np.ndarray:
        """Satellite RTT as measured by the TLS-handshake method.

        Includes the connection-setup PEP penalty and first-burst Aloha
        contention — this is precisely the phase the paper's estimator
        observes once per flow.
        """
        location = COUNTRIES[country_name]
        if beam is None:
            beam = self.beam_map.beams_for(country_name)[0]
        hour_loc = local_hour(location, hour_utc)
        utilization = self.beam_map.utilization(beam, hour_loc)
        pep_load = self.beam_map.pep_utilization(beam, hour_loc)
        elevation = self.geometry.elevation_angle_deg(location)

        floor = self.floor_rtt_s(country_name)
        terminal = self.terminal_median_s * rng.lognormal(0.0, self.terminal_sigma, size=n)
        jitter = self.stack_jitter_median_s * rng.lognormal(0.0, self.stack_jitter_sigma, size=n)
        scheduling = self.tdma.sample_scheduling_delay_s(utilization, rng, n)
        idle_start = rng.random(n) < self.contention_fraction
        contention = np.where(
            idle_start,
            self.aloha.sample_access_delay_s(0.35 * utilization, rng, n),
            0.0,
        )
        arq = self.channel.sample_arq_delay_s(elevation, rng, n, frames_per_exchange=6)
        pep_setup = self.pep.sample_setup_delay_s(pep_load, rng, n)
        downlink_queue = rng.exponential(
            0.010 * min(utilization / (1.0 - utilization), 20.0) + 1e-6, size=n
        )
        return floor + terminal + jitter + scheduling + contention + arq + pep_setup + downlink_queue

    def sample_data_rtt_s(
        self,
        country_name: str,
        hour_utc: float,
        rng: np.random.Generator,
        n: int = 1,
        beam: Optional[Beam] = None,
    ) -> np.ndarray:
        """Satellite RTT for established flows (no setup penalties)."""
        location = COUNTRIES[country_name]
        if beam is None:
            beam = self.beam_map.beams_for(country_name)[0]
        hour_loc = local_hour(location, hour_utc)
        utilization = self.beam_map.utilization(beam, hour_loc)
        pep_load = self.beam_map.pep_utilization(beam, hour_loc)
        elevation = self.geometry.elevation_angle_deg(location)

        floor = self.floor_rtt_s(country_name)
        terminal = 0.25 * self.terminal_median_s * rng.lognormal(0.0, self.terminal_sigma, size=n)
        jitter = 0.5 * self.stack_jitter_median_s * rng.lognormal(0.0, self.stack_jitter_sigma, size=n)
        scheduling = self.tdma.sample_scheduling_delay_s(utilization, rng, n)
        arq = self.channel.sample_arq_delay_s(elevation, rng, n, frames_per_exchange=3)
        pep_forward = self.pep.sample_forward_delay_s(pep_load, rng, n)
        return floor + terminal + jitter + scheduling + arq + pep_forward

    def sample_handshake_rtt_bulk(
        self,
        country_name: str,
        utilization: np.ndarray,
        pep_load: np.ndarray,
        rng: np.random.Generator,
    ) -> np.ndarray:
        """Vectorized handshake-RTT sampling with per-flow loads.

        ``utilization`` and ``pep_load`` are per-flow arrays (already
        resolved for each flow's beam and local hour, e.g. via
        :meth:`repro.satcom.beams.BeamMap.utilization_bulk`).
        """
        location = COUNTRIES[country_name]
        elevation = self.geometry.elevation_angle_deg(location)
        n = len(utilization)

        floor = self.floor_rtt_s(country_name)
        terminal = self.terminal_median_s * rng.lognormal(0.0, self.terminal_sigma, n)
        jitter = self.stack_jitter_median_s * rng.lognormal(0.0, self.stack_jitter_sigma, n)

        # TDMA scheduling: alignment + assignment + exponential queueing
        # with a per-flow mean.
        frame = self.tdma.frame_s
        rho_term = np.minimum(utilization / (1.0 - utilization), self.tdma.max_queue_frames)
        scheduling = (
            rng.uniform(0.0, frame, n)
            + 0.5 * frame
            + rng.exponential(1.0, n) * frame * rho_term
        )

        # Slotted-Aloha contention for the fraction of flows that find
        # the CPE idle.
        idle_start = rng.random(n) < self.contention_fraction
        load = 0.35 * utilization
        p_success = np.maximum(1e-3, np.exp(-2.0 * load))
        retries = rng.geometric(p_success) - 1
        backoff = rng.integers(1, self.aloha.max_backoff_slots + 1, n)
        contention = np.where(
            idle_start,
            rng.uniform(0.0, self.aloha.slot_s, n)
            + retries * (self.aloha.reservation_rtt_s + backoff * self.aloha.slot_s),
            0.0,
        )

        # ARQ recoveries (scalar error probability per country).
        p_err = self.channel.frame_error_probability(elevation)
        errors = rng.binomial(6, p_err, n)
        arq = errors * self.channel.arq_rtt_s + np.where(
            errors > 0, rng.uniform(0.0, 2.0 * frame, n) * errors, 0.0
        )

        # PEP setup saturation with per-flow median.
        pep_ratio = np.minimum(pep_load / (1.0 - pep_load), self.pep.max_load_ratio)
        pep_median = self.pep.setup_scale_s * pep_ratio
        pep_setup = pep_median * rng.lognormal(0.0, self.pep.setup_sigma, n)

        downlink_queue = rng.exponential(1.0, n) * (
            0.010 * np.minimum(utilization / (1.0 - utilization), 20.0) + 1e-6
        )
        return (
            floor + terminal + jitter + scheduling + contention + arq + pep_setup + downlink_queue
        )

    def median_beam_rtt_s(
        self,
        beam: Beam,
        hour_utc: float,
        rng: np.random.Generator,
        samples: int = 400,
    ) -> float:
        """Median handshake RTT on one beam (Figure 8b's y-axis)."""
        values = self.sample_handshake_rtt_s(beam.country, hour_utc, rng, samples, beam=beam)
        return float(np.median(values))
