"""Token-bucket QoS shaper.

The ground station "supports QoS schedulers to prioritize and shape
traffic depending on the application … The shaper allows also to
enforce commercial maximum capacity" (Section 2.1). The token bucket
here enforces plan rates in the packet-level simulator and provides the
rate arithmetic the flow-level throughput model uses.
"""

from __future__ import annotations

from dataclasses import dataclass


@dataclass
class TokenBucketShaper:
    """Classic token bucket: ``rate_bps`` sustained, ``burst_bytes`` depth."""

    rate_bps: float
    burst_bytes: float = 256 * 1024

    def __post_init__(self) -> None:
        if self.rate_bps <= 0:
            raise ValueError("rate_bps must be positive")
        if self.burst_bytes <= 0:
            raise ValueError("burst_bytes must be positive")
        self._tokens = float(self.burst_bytes)
        self._last_update = 0.0

    @property
    def tokens(self) -> float:
        """Tokens currently in the bucket (bytes)."""
        return self._tokens

    def _refill(self, now: float) -> None:
        if now < self._last_update:
            raise ValueError("time went backwards")
        elapsed = now - self._last_update
        self._tokens = min(self.burst_bytes, self._tokens + elapsed * self.rate_bps / 8.0)
        self._last_update = now

    def delay_for(self, size_bytes: float, now: float) -> float:
        """Seconds until ``size_bytes`` may be released, updating state.

        Sizes are accepted as any real number (workload callers pass
        numpy float64 chunk sizes); they must be finite and
        non-negative. Returns 0.0 when the bucket has enough tokens;
        otherwise the debt is paid at the sustained rate (the packet
        is scheduled into the future, like a real shaper queue).
        """
        size_bytes = float(size_bytes)
        if not size_bytes >= 0:  # rejects negatives AND NaN
            raise ValueError(f"size_bytes must be non-negative, got {size_bytes}")
        if size_bytes == float("inf"):
            raise ValueError("size_bytes must be finite")
        self._refill(now)
        self._tokens -= size_bytes
        if self._tokens >= 0:
            return 0.0
        return -self._tokens * 8.0 / self.rate_bps

    def would_conform(self, size_bytes: float, now: float) -> bool:
        """Whether ``size_bytes`` would pass without delay (no state change)."""
        elapsed = max(0.0, now - self._last_update)
        tokens = min(self.burst_bytes, self._tokens + elapsed * self.rate_bps / 8.0)
        return tokens >= size_bytes
