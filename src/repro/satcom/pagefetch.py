"""Analytic object-fetch model: what the PEP buys (and what it can't).

Section 2.1: the CPE completes the TCP handshake locally, and the
split proxies decouple congestion control, so with the PEP a fetch
costs roughly one satellite round trip for the (end-to-end) TLS
exchange plus serialized transfer at the shaped rate. Without the PEP
every TCP round trip — handshake, TLS, and each slow-start round —
pays the full ~550 ms satellite RTT.

Used by the PEP ablation benchmark and the ERRANT emulator.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

from repro.constants import ETHERNET_MTU

_MSS = ETHERNET_MTU - 40
_INITIAL_CWND_SEGMENTS = 10


@dataclass(frozen=True)
class FetchParameters:
    """Inputs of one object fetch."""

    size_bytes: float
    satellite_rtt_s: float
    ground_rtt_s: float
    rate_bps: float
    tls: bool = True

    def __post_init__(self) -> None:
        if self.size_bytes < 0 or self.rate_bps <= 0:
            raise ValueError("invalid fetch parameters")
        if self.satellite_rtt_s < 0 or self.ground_rtt_s < 0:
            raise ValueError("RTTs must be non-negative")


def slow_start_rounds(size_bytes: float, rate_bps: float, rtt_s: float) -> int:
    """Round trips spent in slow start before the pipe fills.

    cwnd doubles each RTT from 10 segments; a round is "free" once the
    window covers the bandwidth-delay product or the remaining bytes.
    """
    if size_bytes <= 0:
        return 0
    bdp_bytes = rate_bps * rtt_s / 8.0
    cwnd = _INITIAL_CWND_SEGMENTS * _MSS
    rounds = 0
    sent = 0.0
    while sent < size_bytes and cwnd < bdp_bytes:
        sent += cwnd
        cwnd *= 2
        rounds += 1
    return rounds


def fetch_time_with_pep(params: FetchParameters) -> float:
    """Fetch latency through the split-TCP PEP.

    The CPE answers the handshake instantly; the TLS exchange (which
    the PEP cannot terminate) costs one satellite round trip; the
    ground-side proxy fills its buffer at backbone speed, so the
    transfer is serialized only at the shaped access rate.
    """
    tls_cost = params.satellite_rtt_s + params.ground_rtt_s if params.tls else 0.0
    request = (params.satellite_rtt_s + params.ground_rtt_s) / 2.0 * 2.0  # req→first byte
    transfer = params.size_bytes * 8.0 / params.rate_bps
    return tls_cost + request + transfer


def fetch_time_without_pep(params: FetchParameters) -> float:
    """Fetch latency with plain end-to-end TCP over the satellite.

    Handshake (1 RTT) + TLS (2 RTTs) + a request round trip + slow
    start at the full end-to-end RTT + serialized transfer.
    """
    rtt = params.satellite_rtt_s + params.ground_rtt_s
    handshake = rtt
    tls_cost = 2.0 * rtt if params.tls else 0.0
    rounds = slow_start_rounds(params.size_bytes, params.rate_bps, rtt)
    transfer = params.size_bytes * 8.0 / params.rate_bps
    return handshake + tls_cost + rtt + rounds * rtt + transfer


def pep_speedup(params: FetchParameters) -> float:
    """without-PEP time / with-PEP time (>1 when the PEP helps)."""
    with_pep = fetch_time_with_pep(params)
    if with_pep <= 0:
        return float("inf")
    return fetch_time_without_pep(params) / with_pep
