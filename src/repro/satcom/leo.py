"""LEO constellation geometry (the Starlink comparison's physics).

The paper contrasts its GEO findings with Starlink via Michel et al.
[26]. This module grounds the built-in ``starlink`` ERRANT profile in
orbital geometry: a user terminal talks to whichever satellite of a
~550 km shell is above its minimum elevation, so the propagation floor
is two orders of magnitude below GEO — the whole reason the paper's
550 ms story does not apply to LEO.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.constants import EARTH_RADIUS_M, SPEED_OF_LIGHT_M_S
from repro.satcom.geometry import slant_range_from_elevation_m


@dataclass(frozen=True)
class LeoShell:
    """One orbital shell of a LEO constellation."""

    altitude_m: float = 550_000.0
    min_elevation_deg: float = 25.0
    bent_pipe: bool = True
    """First-generation Starlink: user → satellite → gateway (bent pipe);
    the gateway sits within the same cell, so two hops bound the path."""

    @property
    def orbit_radius_m(self) -> float:
        return EARTH_RADIUS_M + self.altitude_m

    def slant_range_m(self, elevation_deg: float) -> float:
        """Distance to a satellite seen at ``elevation_deg``."""
        return slant_range_from_elevation_m(self.orbit_radius_m, elevation_deg)

    def min_rtt_s(self) -> float:
        """Best case: satellite at zenith, gateway co-located (4 hops)."""
        hop = self.altitude_m / SPEED_OF_LIGHT_M_S
        hops = 4 if self.bent_pipe else 2
        return hops * hop

    def max_rtt_s(self) -> float:
        """Worst case: both links at minimum elevation."""
        hop = self.slant_range_m(self.min_elevation_deg) / SPEED_OF_LIGHT_M_S
        hops = 4 if self.bent_pipe else 2
        return hops * hop

    def sample_rtt_s(self, rng: np.random.Generator, n: int = 1) -> np.ndarray:
        """Propagation RTTs for random satellite positions.

        Elevation is drawn from the visible cap (area-weighted toward
        low elevations, as geometry dictates), both links resampled per
        round trip, plus a small processing/queueing floor — this
        reproduces the ~25–60 ms medians Michel et al. measured once the
        terrestrial segment is added.
        """
        def hop_delays() -> np.ndarray:
            # cos(elevation)-weighted sampling over the visible cap
            u = rng.random(n)
            elevation = np.degrees(
                np.arcsin(
                    np.sin(np.radians(self.min_elevation_deg))
                    + u * (1.0 - np.sin(np.radians(self.min_elevation_deg)))
                )
            )
            ranges = np.array([self.slant_range_m(e) for e in elevation])
            return ranges / SPEED_OF_LIGHT_M_S

        hops = 2 if self.bent_pipe else 1
        one_way = sum(hop_delays() for _ in range(hops))
        processing = rng.gamma(2.0, 0.004, n) + 0.010  # scheduling + terrestrial
        return 2.0 * one_way + processing


@dataclass(frozen=True)
class LeoGeometryAdapter:
    """A :class:`LeoShell` behind the GEO geometry duck-type.

    ``SatelliteRttModel`` only asks its geometry for a per-location
    propagation floor and an elevation angle, so a LEO shell can stand
    in for the GEO bird: the floor is the shell's mid-range RTT (the
    satellite overhead moves, so no single location-dependent figure
    exists) and the elevation is a typical mid-cap pass. This is what
    lets the ``leo`` scenario reuse the entire MAC/PEP/channel stack
    with LEO-scale constants.
    """

    shell: LeoShell = LeoShell()
    typical_elevation_deg: float = 50.0

    def propagation_rtt_s(self, location) -> float:
        """Mid-range shell RTT — location-independent for a moving shell."""
        return 0.5 * (self.shell.min_rtt_s() + self.shell.max_rtt_s())

    def elevation_angle_deg(self, location) -> float:
        return self.typical_elevation_deg


def geo_vs_leo_floor_ratio() -> float:
    """How many times higher the GEO propagation floor sits (~50–70×)."""
    from repro.satcom.geometry import SatelliteGeometry
    from repro.internet.geo import COUNTRIES

    geo = SatelliteGeometry().propagation_rtt_s(COUNTRIES["Spain"])
    leo = LeoShell().min_rtt_s()
    return geo / leo
