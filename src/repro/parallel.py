"""Sharded parallel execution of the workload generator.

The paper's probe digests 4.3 PB with a Spark cluster; our equivalent
splits the synthetic capture across worker processes the way Tstat
deployments split a capture across trace files. A *shard* is a
contiguous range of customer ids; each shard draws from its own RNG
stream spawned from the config seed with
``np.random.SeedSequence(seed).spawn(n_shards)``, so the merged output
is **bit-identical regardless of how many workers execute the shards**
— one process or eight, the same flows come out in the same order.

Workers are forked (copy-on-write) so the parent's fully initialized
:class:`~repro.traffic.workload.WorkloadGenerator` — population,
categorical pools, precomputed site tables — is inherited for free
instead of being pickled per task. On platforms without ``fork`` (or
when process creation fails, e.g. in a sandbox) execution falls back
to an in-process loop over the same shards, preserving output
byte-for-byte.
"""

from __future__ import annotations

import multiprocessing
import os
import warnings
from concurrent.futures import ProcessPoolExecutor
from concurrent.futures.process import BrokenProcessPool
from dataclasses import dataclass
from typing import TYPE_CHECKING, List, Optional, Sequence, Tuple, Union

import numpy as np

from repro.faults import NO_FAULTS, FaultInjector

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from repro.analysis.dataset import FlowFrame
    from repro.traffic.workload import WorkloadGenerator

#: Default upper bound on the number of shards.
DEFAULT_MAX_SHARDS = 8

#: Customers per shard the default plan aims for. Sharding splits the
#: vectorized per-(country, service) batches, so below this size the
#: fixed per-batch numpy cost outweighs any parallelism win and the
#: default collapses to fewer (down to one) wide shards.
TARGET_SHARD_CUSTOMERS = 150


@dataclass(frozen=True)
class ShardSpec:
    """A contiguous customer-id range assigned to one RNG stream.

    ``index``/``n_shards`` identify the spawned seed stream;
    ``lo``/``hi`` bound the half-open customer-index range
    ``[lo, hi)`` the shard generates flows for.
    """

    index: int
    n_shards: int
    lo: int
    hi: int

    def __len__(self) -> int:
        return self.hi - self.lo


def plan_shards(n_customers: int, n_shards: int) -> List[ShardSpec]:
    """Split ``n_customers`` into ``n_shards`` contiguous ranges.

    The split depends only on its arguments — never on worker count —
    which is what makes the parallel output deterministic. Ranges
    differ in size by at most one customer.

    >>> [(s.lo, s.hi) for s in plan_shards(10, 3)]
    [(0, 4), (4, 7), (7, 10)]
    """
    if n_customers <= 0:
        raise ValueError(f"need at least one customer (got {n_customers})")
    n_shards = max(1, min(n_shards, n_customers))
    base, extra = divmod(n_customers, n_shards)
    shards: List[ShardSpec] = []
    lo = 0
    for index in range(n_shards):
        hi = lo + base + (1 if index < extra else 0)
        shards.append(ShardSpec(index=index, n_shards=n_shards, lo=lo, hi=hi))
        lo = hi
    return shards


def default_shard_count(n_customers: int) -> int:
    """Shard count used when the config does not pin one.

    Derived from the population size only (*not* from the machine), so
    the same config yields the same RNG streams everywhere.

    >>> [default_shard_count(n) for n in (100, 300, 600, 5000)]
    [1, 2, 4, 8]
    """
    return max(1, min(DEFAULT_MAX_SHARDS, n_customers // TARGET_SHARD_CUSTOMERS))


def resolve_workers(n_workers: Union[int, str, None], slots: int = 1) -> int:
    """Map the ``n_workers`` knob to a concrete process count.

    ``None``, ``0`` or the string ``"auto"`` mean "one per *available*
    core": the CPUs this process may actually run on
    (``os.sched_getaffinity``), not the machine total (``os.cpu_count``)
    — in a container or cgroup-restricted CI runner the two differ, and
    sizing the fork pool by the machine total oversubscribes the quota.
    Negative counts and other strings are rejected.

    ``slots`` divides the automatic sizing between sibling processes
    that share the affinity set: a ``repro.fleet`` worker running
    alongside ``max_parallel - 1`` peers passes ``slots=max_parallel``
    and gets ``max(1, cores // slots)`` instead of every sibling
    claiming all cores. Explicit counts are honoured verbatim — the
    user pinned them.
    """
    if slots < 1:
        raise ValueError(f"slots must be >= 1 (got {slots})")
    if isinstance(n_workers, str):
        if n_workers.strip().lower() == "auto":
            n_workers = 0
        else:
            raise ValueError(
                f"n_workers must be an integer or 'auto' (got {n_workers!r})"
            )
    if n_workers is None or n_workers == 0:
        try:
            affinity = len(os.sched_getaffinity(0))
        except AttributeError:  # pragma: no cover - non-Linux
            affinity = os.cpu_count() or 1
        return max(1, affinity // slots)
    if n_workers < 0:
        raise ValueError(f"n_workers must be >= 0 (got {n_workers})")
    return n_workers


# The forked workers read the generator from this module global instead
# of unpickling it per task (copy-on-write: no serialization of the
# population or the precomputed site tables).
_WORKER_GENERATOR: Optional["WorkloadGenerator"] = None


def _run_shard(shard: ShardSpec) -> Optional["FlowFrame"]:
    assert _WORKER_GENERATOR is not None, "worker started without a generator"
    return _WORKER_GENERATOR.generate_shard(shard)


def generate_shards(
    generator: "WorkloadGenerator",
    shards: Sequence[ShardSpec],
    n_workers: int,
) -> List[Optional["FlowFrame"]]:
    """Generate every shard, in parallel when possible.

    Returns one optional frame per shard, **in shard order** (a shard
    whose customers produce no flows yields ``None``). Output is
    independent of ``n_workers``.
    """
    n_workers = min(n_workers, len(shards))
    if n_workers > 1 and "fork" in multiprocessing.get_all_start_methods():
        global _WORKER_GENERATOR
        _WORKER_GENERATOR = generator
        try:
            context = multiprocessing.get_context("fork")
            with ProcessPoolExecutor(
                max_workers=n_workers, mp_context=context
            ) as pool:
                return list(pool.map(_run_shard, shards))
        except (OSError, PermissionError) as exc:  # pragma: no cover
            warnings.warn(
                f"parallel generation unavailable ({exc}); falling back to "
                "in-process execution",
                RuntimeWarning,
                stacklevel=2,
            )
        finally:
            _WORKER_GENERATOR = None
    return [generator.generate_shard(shard) for shard in shards]


# -- streaming windows -------------------------------------------------------


def spawn_window_seed(
    seed: int, shard: ShardSpec, n_windows: int, window_index: int
) -> np.random.SeedSequence:
    """The RNG stream of one (shard, window) cell of a streaming capture.

    Derived in two spawn levels — shard first, then window — so the
    stream is a pure function of ``(seed, n_shards, shard index,
    n_windows, window index)``: any subset of windows can be
    (re)generated in any order, by any process, and sample the same
    flows. This is what makes checkpoint/resume bit-identical (see
    :mod:`repro.stream.checkpoint`).
    """
    shard_seq = np.random.SeedSequence(seed).spawn(shard.n_shards)[shard.index]
    return shard_seq.spawn(n_windows)[window_index]


# (generator, n_windows, window_index, day_lo, day_hi, injector,
# parent_pid) read by forked window workers, mirroring
# _WORKER_GENERATOR above. parent_pid gates crash injection: only a
# forked child may die, never the in-process fallback.
_WORKER_WINDOW: Optional[
    Tuple["WorkloadGenerator", int, int, int, int, FaultInjector, int]
] = None


def _run_window_shard(shard: ShardSpec) -> Optional["FlowFrame"]:
    assert _WORKER_WINDOW is not None, "worker started without window context"
    generator, n_windows, window_index, day_lo, day_hi, injector, parent_pid = (
        _WORKER_WINDOW
    )
    if os.getpid() != parent_pid and injector.crash_worker(
        window_index, shard.index
    ):
        # A forked worker dying mid-shard: no cleanup, no return value,
        # the parent's pool surfaces BrokenProcessPool.
        os._exit(66)
    rng = np.random.default_rng(
        spawn_window_seed(generator.config.seed, shard, n_windows, window_index)
    )
    return generator.generate_shard_days(shard, day_lo, day_hi, rng)


def generate_window_shards(
    generator: "WorkloadGenerator",
    shards: Sequence[ShardSpec],
    n_windows: int,
    window_index: int,
    day_lo: int,
    day_hi: int,
    n_workers: int,
    injector: Optional[FaultInjector] = None,
) -> List[Optional["FlowFrame"]]:
    """Generate every shard of one time window, in shard order.

    The streaming counterpart of :func:`generate_shards`: same fork
    pool, same in-process fallback, same contract that ``n_workers``
    never changes a byte of the output. A worker killed mid-window
    (injected via ``injector`` or real) costs the pool, not the run:
    the parent falls back to in-process generation of the same shards,
    which samples the same RNG streams and yields identical frames.
    """
    global _WORKER_WINDOW
    injector = injector if injector is not None else NO_FAULTS
    n_workers = min(n_workers, len(shards))
    context_value = (
        generator, n_windows, window_index, day_lo, day_hi, injector, os.getpid()
    )
    if n_workers > 1 and "fork" in multiprocessing.get_all_start_methods():
        _WORKER_WINDOW = context_value
        try:
            context = multiprocessing.get_context("fork")
            with ProcessPoolExecutor(
                max_workers=n_workers, mp_context=context
            ) as pool:
                return list(pool.map(_run_window_shard, shards))
        except (OSError, PermissionError) as exc:  # pragma: no cover
            warnings.warn(
                f"parallel window generation unavailable ({exc}); falling "
                "back to in-process execution",
                RuntimeWarning,
                stacklevel=2,
            )
        except BrokenProcessPool:
            injector.stats.worker_crashes += 1
            warnings.warn(
                f"worker process died generating window {window_index}; "
                "regenerating its shards in-process (output unchanged)",
                RuntimeWarning,
                stacklevel=2,
            )
        finally:
            _WORKER_WINDOW = None
    _WORKER_WINDOW = context_value
    try:
        return [_run_window_shard(shard) for shard in shards]
    finally:
        _WORKER_WINDOW = None


# -- persistent pool ---------------------------------------------------------


# (generator, injector, parent_pid) inherited copy-on-write by the
# persistent pool's forked workers. Unlike _WORKER_WINDOW this stays
# set for the pool's whole lifetime: the window coordinates travel as
# small picklable per-task arguments instead, so one fork serves every
# window of the capture.
_POOL_CONTEXT: Optional[Tuple["WorkloadGenerator", FaultInjector, int]] = None

#: One pool task: (shard, n_windows, window_index, day_lo, day_hi).
_PoolTask = Tuple[ShardSpec, int, int, int, int]


def _run_pool_task(task: _PoolTask) -> Optional["FlowFrame"]:
    assert _POOL_CONTEXT is not None, "pool worker started without context"
    generator, injector, parent_pid = _POOL_CONTEXT
    shard, n_windows, window_index, day_lo, day_hi = task
    if os.getpid() != parent_pid and injector.crash_worker(
        window_index, shard.index
    ):
        os._exit(66)
    rng = np.random.default_rng(
        spawn_window_seed(generator.config.seed, shard, n_windows, window_index)
    )
    return generator.generate_shard_days(shard, day_lo, day_hi, rng)


class ShardWorkerPool:
    """A fork pool kept hot across the windows of a streaming capture.

    :func:`generate_window_shards` re-forks a fresh
    ``ProcessPoolExecutor`` for every window, paying process spawn and
    teardown per window. This pool forks **once** — the workers inherit
    the fully initialized generator copy-on-write via
    :data:`_POOL_CONTEXT` — and then serves every window over the same
    processes; only the tiny ``(shard, window)`` coordinates cross the
    pipe per task. Output is byte-identical to the per-window pool and
    to serial execution because each (shard, window) cell draws from
    its own :func:`spawn_window_seed` stream.

    Fork-with-threads note: with the ``fork`` start method the executor
    launches *all* workers in its constructor, so creating the pool
    before any sibling thread starts (the pipelined producer's commit
    thread) guarantees the children never inherit a mid-held lock. A
    worker killed mid-window breaks the executor; the window is then
    regenerated in-process (identical frames) and the pool is lazily
    re-forked for the next window — the only fork that can race a live
    thread, and the children run nothing but generator code.

    On platforms without ``fork``, with ``n_workers <= 1``, or when
    process creation fails outright, every window runs in-process.
    """

    def __init__(
        self,
        generator: "WorkloadGenerator",
        n_workers: int,
        injector: Optional[FaultInjector] = None,
    ) -> None:
        self.generator = generator
        self.injector = injector if injector is not None else NO_FAULTS
        self.n_workers = max(0, n_workers)
        self._executor: Optional[ProcessPoolExecutor] = None
        self._serial_forever = (
            self.n_workers <= 1
            or "fork" not in multiprocessing.get_all_start_methods()
        )

    # -- lifecycle -----------------------------------------------------

    def _ensure_executor(self) -> Optional[ProcessPoolExecutor]:
        global _POOL_CONTEXT
        if self._executor is not None or self._serial_forever:
            return self._executor
        _POOL_CONTEXT = (self.generator, self.injector, os.getpid())
        try:
            context = multiprocessing.get_context("fork")
            # Forks all n_workers children right here (fork pools do not
            # spawn lazily) — each snapshots _POOL_CONTEXT.
            self._executor = ProcessPoolExecutor(
                max_workers=self.n_workers, mp_context=context
            )
        except (OSError, PermissionError) as exc:  # pragma: no cover
            warnings.warn(
                f"persistent worker pool unavailable ({exc}); generating "
                "windows in-process",
                RuntimeWarning,
                stacklevel=3,
            )
            self._serial_forever = True
            _POOL_CONTEXT = None
        return self._executor

    def _discard_executor(self) -> None:
        # _POOL_CONTEXT stays set: the next window lazily re-forks.
        if self._executor is not None:
            self._executor.shutdown(wait=False, cancel_futures=True)
            self._executor = None

    def warm(self) -> None:
        """Fork the workers now (no-op when running serially).

        Call before starting any sibling thread: fork pools launch all
        their children inside the executor constructor, so a warmed
        pool's workers are guaranteed thread-free copies.
        """
        self._ensure_executor()

    def close(self) -> None:
        """Shut the workers down (idempotent)."""
        global _POOL_CONTEXT
        if self._executor is not None:
            self._executor.shutdown(wait=True, cancel_futures=True)
            self._executor = None
        _POOL_CONTEXT = None

    def __enter__(self) -> "ShardWorkerPool":
        self._ensure_executor()
        return self

    def __exit__(self, *_exc) -> None:
        self.close()

    # -- work ----------------------------------------------------------

    def generate_window(
        self,
        shards: Sequence[ShardSpec],
        n_windows: int,
        window_index: int,
        day_lo: int,
        day_hi: int,
    ) -> List[Optional["FlowFrame"]]:
        """One window's shard frames, in shard order.

        Same contract as :func:`generate_window_shards`: the worker
        count never changes a byte of the output, and a worker crash
        costs the pool, not the run — the window is regenerated
        in-process from the same RNG streams.
        """
        executor = self._ensure_executor()
        if executor is not None:
            tasks = [
                (shard, n_windows, window_index, day_lo, day_hi)
                for shard in shards
            ]
            try:
                return list(executor.map(_run_pool_task, tasks))
            except BrokenProcessPool:
                self.injector.stats.worker_crashes += 1
                warnings.warn(
                    f"pool worker died generating window {window_index}; "
                    "regenerating its shards in-process (output unchanged) "
                    "and re-forking the pool",
                    RuntimeWarning,
                    stacklevel=2,
                )
                self._discard_executor()
        return [
            self._generate_local(shard, n_windows, window_index, day_lo, day_hi)
            for shard in shards
        ]

    def _generate_local(
        self,
        shard: ShardSpec,
        n_windows: int,
        window_index: int,
        day_lo: int,
        day_hi: int,
    ) -> Optional["FlowFrame"]:
        # In-process execution never crash-injects (mirrors the
        # parent_pid gate of the forked path).
        rng = np.random.default_rng(
            spawn_window_seed(
                self.generator.config.seed, shard, n_windows, window_index
            )
        )
        return self.generator.generate_shard_days(shard, day_lo, day_hi, rng)
