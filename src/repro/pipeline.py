"""End-to-end orchestration.

Two entry points mirror the reproduction's two fidelity levels:

* :func:`run_packet_simulation` — a packet-level run of the full
  Figure 1 path (clients ↔ CPE PEP ↔ satellite ↔ ground-station PEP ↔
  servers/resolvers) with the flow meter tapping the ground station.
  Validates the measurement methodology against ground truth.
* :func:`generate_flow_dataset` — the scaled, flow-level synthetic
  capture every table/figure benchmark consumes.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Dict, List, Optional, Sequence, Tuple

import numpy as np

from repro.analysis.dataset import FlowFrame
from repro.flowmeter.meter import FlowMeter
from repro.flowmeter.records import FlowRecord
from repro.internet.resolvers import RESOLVERS, Resolver, ResolverCatalog
from repro.internet.servers import deployment
from repro.internet.topology import InternetModel
from repro.net.cryptopan import PrefixPreservingAnonymizer
from repro.satcom.apps import TlsClientApp, TlsServerApp
from repro.satcom.delay_model import SatelliteRttModel
from repro.satcom.network import CustomerHost, SatComPacketNetwork, ServerHost
from repro.simnet.engine import Simulator
from repro.traffic.services import SERVICES
from repro.traffic.subscribers import Population, synthesize_population
from repro.traffic.workload import WorkloadConfig, WorkloadGenerator

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from repro.scenario import Scenario


@dataclass
class PacketSimConfig:
    """Configuration of the packet-level validation run."""

    countries: Sequence[str] = ("Spain", "Congo", "Ireland", "Nigeria")
    flows_per_customer: int = 6
    response_bytes: int = 120_000
    hour_utc: float = 20.0
    seed: int = 11
    resolver_names: Sequence[str] = ("Operator-EU", "Google", "Nigerian")
    anonymize: bool = True
    sim_horizon_s: float = 600.0


@dataclass
class PacketSimResult:
    """Everything a validation needs: records + ground truth."""

    records: List[FlowRecord]
    clients: List[TlsClientApp]
    client_country: Dict[int, str]
    dns_ground_truth_ms: List[Tuple[str, float]]
    meter: FlowMeter
    network: SatComPacketNetwork

    @property
    def tls_records(self) -> List[FlowRecord]:
        return [r for r in self.records if r.l7.value == "tcp/https"]

    @property
    def dns_records(self) -> List[FlowRecord]:
        return [r for r in self.records if r.l7.value == "udp/dns"]


def run_packet_simulation(
    config: Optional[PacketSimConfig] = None,
    scenario: Optional["Scenario"] = None,
    engine: Optional[str] = None,
) -> PacketSimResult:
    """Drive TLS downloads and DNS lookups through the packet network.

    Each customer opens ``flows_per_customer`` TLS connections (staggered)
    to a CDN server plus one DNS query; the flow meter observes the
    ground station. The result carries app-side ground truth so tests
    can check the probe's estimators. ``scenario`` selects which
    satellite model the packets traverse (default: ``baseline-geo``) and
    its ``execution.engine`` drives the flow meter unless ``engine``
    overrides it — records are identical either way.
    """
    config = config or PacketSimConfig()
    if engine is None:
        engine = scenario.execution.engine if scenario is not None else "python"
    sim = Simulator()
    internet = InternetModel()
    for svc in SERVICES.values():
        internet.register_deployment(deployment(svc.name, svc.footprint, svc.policy))
    meter = FlowMeter(
        anonymizer=PrefixPreservingAnonymizer(b"repro-key") if config.anonymize else None,
        engine=engine,
    )
    rng = np.random.default_rng(config.seed)
    network = SatComPacketNetwork(
        sim,
        internet,
        delay_source=scenario.build_delay_source() if scenario is not None else None,
        meter=meter,
        rng=rng,
        hour_utc=config.hour_utc,
    )

    server = network.add_server(
        "edge.example-cdn.com",
        "Milan-IX",
        app_factory=lambda ep: TlsServerApp(
            send=ep.send, close=ep.close, response_bytes=config.response_bytes
        ),
    )
    resolvers = [RESOLVERS[name] for name in config.resolver_names]
    for resolver in resolvers:
        network.add_resolver(resolver, answer_fn=lambda _qname: server.ip)

    clients: List[TlsClientApp] = []
    client_country: Dict[int, str] = {}
    dns_truth: List[Tuple[str, float]] = []

    def launch_tls(customer: CustomerHost) -> None:
        app = TlsClientApp(
            sim,
            "edge.example-cdn.com",
            expected_response_bytes=config.response_bytes,
            compute_delay_s=float(rng.uniform(0.005, 0.04)),
        )
        socket = customer.open_tcp(server.ip, 443, on_data=app.on_data)
        app.start(socket.send, socket.close)
        clients.append(app)

    def launch_dns(customer: CustomerHost, resolver: Resolver) -> None:
        from repro.protocols import dns as dnsproto

        sent_at = sim.now

        def on_reply(_payload: bytes, _now: float) -> None:
            dns_truth.append((resolver.name, (sim.now - sent_at) * 1000.0))

        query = dnsproto.encode_query(int(rng.integers(1, 60000)), "edge.example-cdn.com")
        customer.send_udp(resolver.address, 53, query, on_reply=on_reply)

    for country in config.countries:
        customer = network.add_customer(country)
        client_country[customer.public_ip] = country
        for i in range(config.flows_per_customer):
            sim.schedule(float(rng.uniform(0.0, 30.0)), launch_tls, customer)
        resolver = resolvers[int(rng.integers(len(resolvers)))]
        sim.schedule(float(rng.uniform(0.0, 5.0)), launch_dns, customer, resolver)

    sim.run(until=config.sim_horizon_s)
    meter.flush_all()
    return PacketSimResult(
        records=meter.records,
        clients=clients,
        client_country=client_country,
        dns_ground_truth_ms=dns_truth,
        meter=meter,
        network=network,
    )


@dataclass
class MixedSimResult:
    """Outcome of the mixed-protocol packet run."""

    records: List[FlowRecord]
    tls13_clients: List[object]
    http_clients: List[object]
    quic_clients: List[object]
    rtp_sessions: List[object]
    meter: FlowMeter

    def records_of(self, l7_value: str) -> List[FlowRecord]:
        return [r for r in self.records if r.l7.value == l7_value]


def run_mixed_protocol_simulation(
    seed: int = 21,
    country: str = "Spain",
    n_each: int = 3,
    engine: str = "python",
) -> MixedSimResult:
    """Drive TLS 1.3, plain HTTP, QUIC and RTP through the packet path.

    Exercises every DPI branch of the probe end to end: SNI from TLS 1.3
    (satellite RTT via the client CCS), Host from HTTP, SNI from the
    QUIC Initial, and RTP detection — all through the PEP/tunnel split
    of Figure 1.
    """
    from repro.satcom.apps import (
        HttpClientApp,
        HttpServerApp,
        QuicClientApp,
        RtpSessionApp,
        TlsClientApp,
        TlsServerApp,
    )
    from repro.satcom.network import quic_server_handler, rtp_echo_handler

    sim = Simulator()
    internet = InternetModel()
    for svc in SERVICES.values():
        internet.register_deployment(deployment(svc.name, svc.footprint, svc.policy))
    meter = FlowMeter(engine=engine)
    rng = np.random.default_rng(seed)
    network = SatComPacketNetwork(sim, internet, meter=meter, rng=rng, hour_utc=15.0)

    tls_server = network.add_server(
        "modern.example-cdn.com",
        "Milan-IX",
        app_factory=lambda ep: TlsServerApp(
            send=ep.send, close=ep.close, response_bytes=80_000, tls13=True
        ),
    )
    http_server = network.add_server(
        "downloads.example-http.com",
        "Frankfurt",
        app_factory=lambda ep: HttpServerApp(
            send=ep.send, close=ep.close, response_bytes=40_000
        ),
    )
    quic_server = network.add_udp_server(
        "video.example-quic.com", "Milan-IX", quic_server_handler(response_bytes=50_000)
    )
    rtp_server = network.add_udp_server(
        "turn1.voip-relay.net", "Frankfurt", rtp_echo_handler()
    )

    tls13_clients: List[TlsClientApp] = []
    http_clients: List[HttpClientApp] = []
    quic_clients: List[QuicClientApp] = []
    rtp_sessions: List[RtpSessionApp] = []

    for i in range(n_each):
        customer = network.add_customer(country)

        tls_app = TlsClientApp(
            sim, "modern.example-cdn.com", expected_response_bytes=80_000, tls13=True
        )
        socket = customer.open_tcp(tls_server.ip, 443, on_data=tls_app.on_data)
        sim.schedule(0.1 * i, tls_app.start, socket.send, socket.close)
        tls13_clients.append(tls_app)

        http_app = HttpClientApp(sim, "downloads.example-http.com", "/update.bin")
        http_socket = customer.open_tcp(http_server.ip, 80, on_data=http_app.on_data)
        sim.schedule(0.2 + 0.1 * i, http_app.start, http_socket.send, http_socket.close)
        http_clients.append(http_app)

        quic_app = QuicClientApp(sim, "video.example-quic.com", expected_response_bytes=50_000)

        def launch_quic(c=customer, app=quic_app):
            c.send_udp(quic_server.ip, 443, app.initial_datagram(), on_reply=app.on_datagram)

        sim.schedule(0.4 + 0.1 * i, launch_quic)
        quic_clients.append(quic_app)

        rtp_app = RtpSessionApp(sim, n_packets=15)

        def launch_rtp(c=customer, app=rtp_app):
            sender = c.open_udp(rtp_server.ip, 40000, on_reply=app.on_datagram)
            app.start(sender)

        sim.schedule(0.6 + 0.1 * i, launch_rtp)
        rtp_sessions.append(rtp_app)

    sim.run(until=400.0)
    meter.flush_all()
    return MixedSimResult(
        records=meter.records,
        tls13_clients=tls13_clients,
        http_clients=http_clients,
        quic_clients=quic_clients,
        rtp_sessions=rtp_sessions,
        meter=meter,
    )


def generate_flow_dataset(
    config: Optional[WorkloadConfig] = None,
    rtt_model: Optional[SatelliteRttModel] = None,
    internet: Optional[InternetModel] = None,
    population: Optional[Population] = None,
    cache=None,
    scenario: Optional["Scenario"] = None,
) -> Tuple[FlowFrame, WorkloadGenerator]:
    """Generate the flow-level synthetic capture.

    ``scenario`` builds the whole generator (models, plan mix, workload)
    from one :class:`~repro.scenario.Scenario`; it is mutually
    exclusive with ``config``/``rtt_model``/``internet``/``population``
    and caches by the scenario digest.

    ``cache`` may be ``True`` (default cache dir), a directory path, or
    a :class:`~repro.cache.CaptureCache`; the capture is then loaded
    from — or generated once and stored into — the content-keyed cache
    (see :mod:`repro.cache`). In the legacy-config form caching only
    engages when the generator is built purely from ``config``: custom
    ``rtt_model`` / ``internet`` / ``population`` objects are not part
    of the cache key, so passing any of them bypasses the cache rather
    than risking a wrong hit.
    """
    from repro.cache import resolve_cache

    capture_cache = resolve_cache(cache)
    if scenario is not None:
        if any(o is not None for o in (config, rtt_model, internet, population)):
            raise ValueError(
                "scenario= is mutually exclusive with "
                "config/rtt_model/internet/population"
            )
        fault_plan = scenario.fault_plan()
        if capture_cache is not None and fault_plan is not None:
            from repro.cache import CaptureCache
            from repro.faults import FaultInjector

            capture_cache = CaptureCache(
                directory=capture_cache.directory,
                injector=FaultInjector(fault_plan),
            )
        if capture_cache is not None:
            cached = capture_cache.load(scenario)
            if cached is not None:
                return cached, scenario.build_generator()
        generator = scenario.build_generator()
        frame = generator.generate()
        if capture_cache is not None:
            capture_cache.store(scenario, frame)
        return frame, generator
    if capture_cache is not None and any(
        override is not None for override in (rtt_model, internet, population)
    ):
        capture_cache = None
    resolved_config = config or WorkloadConfig()
    if capture_cache is not None:
        cached = capture_cache.load(resolved_config)
        if cached is not None:
            generator = WorkloadGenerator(config=resolved_config)
            return cached, generator
    generator = WorkloadGenerator(
        config=resolved_config,
        internet=internet,
        rtt_model=rtt_model,
        population=population,
    )
    frame = generator.generate()
    if capture_cache is not None:
        capture_cache.store(resolved_config, frame)
    return frame, generator


def generate_with_forced_resolver(
    resolver_name: str, config: Optional[WorkloadConfig] = None
) -> Tuple[FlowFrame, WorkloadGenerator]:
    """Ablation of Section 6.4: every customer on one resolver."""
    from repro.scenario import get_scenario

    config = config or WorkloadConfig()
    rng = np.random.default_rng(config.seed)
    rtt_model = get_scenario("baseline-geo").build_rtt_model()
    population = synthesize_population(
        config.n_customers,
        rng,
        countries=config.countries,
        beam_map=rtt_model.beam_map,
        resolver_catalog=ResolverCatalog.forced(resolver_name),
    )
    return generate_flow_dataset(config, rtt_model=rtt_model, population=population)
