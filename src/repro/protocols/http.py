"""Plain-text HTTP/1.1 request/response encoding and Host extraction.

12.1 % of the paper's traffic volume is unencrypted HTTP (Table 1),
largely Sky video and Microsoft software updates in Ireland/U.K.; the
probe annotates those flows with the ``Host`` header.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Optional

_CRLF = b"\r\n"


@dataclass
class Request:
    """A parsed HTTP request line + headers."""

    method: str
    path: str
    version: str
    headers: Dict[str, str]

    @property
    def host(self) -> Optional[str]:
        return self.headers.get("host")


def encode_request(
    host: str,
    path: str = "/",
    method: str = "GET",
    headers: Optional[Dict[str, str]] = None,
) -> bytes:
    """Encode an HTTP/1.1 request with a Host header.

    >>> req = parse_request(encode_request("example.com", "/index.html"))
    >>> req.host
    'example.com'
    """
    lines = [f"{method} {path} HTTP/1.1".encode("ascii"), b"Host: " + host.encode("ascii")]
    for name, value in (headers or {}).items():
        lines.append(f"{name}: {value}".encode("ascii"))
    return _CRLF.join(lines) + _CRLF * 2


def encode_response(body_length: int, status: int = 200, reason: str = "OK") -> bytes:
    """Encode a response with ``body_length`` placeholder body bytes."""
    if body_length < 0:
        raise ValueError("body_length must be non-negative")
    head = (
        f"HTTP/1.1 {status} {reason}".encode("ascii")
        + _CRLF
        + f"Content-Length: {body_length}".encode("ascii")
        + _CRLF
        + b"Content-Type: application/octet-stream"
        + _CRLF * 2
    )
    return head + b"\x00" * body_length


def parse_request(data: bytes) -> Optional[Request]:
    """Parse a request head; returns None when ``data`` is not HTTP."""
    head, _, _ = data.partition(_CRLF * 2)
    lines = head.split(_CRLF)
    if not lines:
        return None
    parts = lines[0].split(b" ")
    if len(parts) != 3 or not parts[2].startswith(b"HTTP/"):
        return None
    method = parts[0].decode("ascii", errors="replace")
    if not method.isalpha() or not method.isupper():
        return None
    headers: Dict[str, str] = {}
    for line in lines[1:]:
        name, sep, value = line.partition(b":")
        if not sep:
            continue
        headers[name.strip().decode("ascii", errors="replace").lower()] = (
            value.strip().decode("ascii", errors="replace")
        )
    return Request(
        method=method,
        path=parts[1].decode("ascii", errors="replace"),
        version=parts[2].decode("ascii", errors="replace"),
        headers=headers,
    )


def extract_host(data: bytes) -> Optional[str]:
    """The Host header of a request byte stream, if parseable."""
    request = parse_request(data)
    return request.host if request else None


def looks_like_http(data: bytes) -> bool:
    """Cheap method-prefix check used by the DPI."""
    return data[:8].split(b" ")[0] in (
        b"GET",
        b"POST",
        b"PUT",
        b"HEAD",
        b"DELETE",
        b"OPTIONS",
        b"CONNECT",
        b"PATCH",
    )
