"""DNS wire format (RFC 1035 subset).

Customers in the paper resolve names through a mix of operator and open
resolvers over UDP/53; the probe logs every requested domain, the
response, and the resolver address. We encode/decode real DNS messages:
header, QNAME label encoding (with compression-pointer support on the
decode side), question section, and A-record answers.
"""

from __future__ import annotations

import struct
from dataclasses import dataclass, field
from typing import List, Optional, Tuple

_HEADER = struct.Struct("!HHHHHH")

QTYPE_A = 1
QTYPE_AAAA = 28
QCLASS_IN = 1

FLAG_QR_RESPONSE = 0x8000
FLAG_RD = 0x0100
FLAG_RA = 0x0080

RCODE_NOERROR = 0
RCODE_NXDOMAIN = 3


@dataclass
class Question:
    """One entry of the question section."""

    name: str
    qtype: int = QTYPE_A
    qclass: int = QCLASS_IN


@dataclass
class Answer:
    """One A-record answer."""

    name: str
    address: int
    ttl: int = 300


@dataclass
class Message:
    """A parsed DNS message."""

    txid: int
    is_response: bool
    rcode: int = RCODE_NOERROR
    questions: List[Question] = field(default_factory=list)
    answers: List[Answer] = field(default_factory=list)

    @property
    def qname(self) -> Optional[str]:
        """The first question name, if any."""
        return self.questions[0].name if self.questions else None


def encode_name(name: str) -> bytes:
    """Encode a domain name as length-prefixed labels."""
    if name.endswith("."):
        name = name[:-1]
    out = bytearray()
    if name:
        for label in name.split("."):
            raw = label.encode("ascii")
            if not 0 < len(raw) < 64:
                raise ValueError(f"invalid DNS label in {name!r}")
            out.append(len(raw))
            out += raw
    out.append(0)
    return bytes(out)


def decode_name(data: bytes, offset: int, _depth: int = 0) -> Tuple[str, int]:
    """Decode a (possibly compressed) name; returns (name, next_offset)."""
    if _depth > 10:
        raise ValueError("DNS name compression loop")
    labels: List[str] = []
    while True:
        if offset >= len(data):
            raise ValueError("truncated DNS name")
        length = data[offset]
        if length == 0:
            offset += 1
            break
        if length & 0xC0 == 0xC0:
            if offset + 2 > len(data):
                raise ValueError("truncated DNS compression pointer")
            pointer = struct.unpack_from("!H", data, offset)[0] & 0x3FFF
            suffix, _ = decode_name(data, pointer, _depth + 1)
            labels.append(suffix)
            offset += 2
            return ".".join(labels), offset
        if length >= 64:
            raise ValueError("invalid DNS label length")
        offset += 1
        labels.append(data[offset : offset + length].decode("ascii", errors="replace"))
        offset += length
    return ".".join(labels), offset


def encode_query(txid: int, name: str, qtype: int = QTYPE_A) -> bytes:
    """Encode a standard recursive query for ``name``.

    >>> msg = decode(encode_query(7, "example.com"))
    >>> (msg.txid, msg.qname, msg.is_response)
    (7, 'example.com', False)
    """
    header = _HEADER.pack(txid & 0xFFFF, FLAG_RD, 1, 0, 0, 0)
    return header + encode_name(name) + struct.pack("!HH", qtype, QCLASS_IN)


def encode_response(
    txid: int,
    name: str,
    addresses: List[int],
    ttl: int = 300,
    rcode: int = RCODE_NOERROR,
) -> bytes:
    """Encode a response with A records for ``name``."""
    flags = FLAG_QR_RESPONSE | FLAG_RD | FLAG_RA | (rcode & 0xF)
    header = _HEADER.pack(txid & 0xFFFF, flags, 1, len(addresses), 0, 0)
    question = encode_name(name) + struct.pack("!HH", QTYPE_A, QCLASS_IN)
    out = bytearray(header + question)
    for address in addresses:
        out += struct.pack("!H", 0xC000 | _HEADER.size)  # pointer to QNAME
        out += struct.pack("!HHIH", QTYPE_A, QCLASS_IN, ttl, 4)
        out += struct.pack("!I", address & 0xFFFFFFFF)
    return bytes(out)


def decode(data: bytes) -> Message:
    """Decode a DNS message (questions + A answers)."""
    if len(data) < _HEADER.size:
        raise ValueError("truncated DNS header")
    txid, flags, qdcount, ancount, _, _ = _HEADER.unpack_from(data, 0)
    message = Message(
        txid=txid,
        is_response=bool(flags & FLAG_QR_RESPONSE),
        rcode=flags & 0xF,
    )
    offset = _HEADER.size
    for _ in range(qdcount):
        name, offset = decode_name(data, offset)
        if offset + 4 > len(data):
            raise ValueError("truncated DNS question")
        qtype, qclass = struct.unpack_from("!HH", data, offset)
        offset += 4
        message.questions.append(Question(name=name, qtype=qtype, qclass=qclass))
    for _ in range(ancount):
        name, offset = decode_name(data, offset)
        if offset + 10 > len(data):
            raise ValueError("truncated DNS answer")
        rtype, rclass, ttl, rdlength = struct.unpack_from("!HHIH", data, offset)
        offset += 10
        rdata = data[offset : offset + rdlength]
        offset += rdlength
        if rtype == QTYPE_A and rdlength == 4:
            message.answers.append(
                Answer(name=name, address=struct.unpack("!I", rdata)[0], ttl=ttl)
            )
    return message


def looks_like_dns(data: bytes) -> bool:
    """Heuristic used by the DPI before attempting a full decode."""
    if len(data) < _HEADER.size + 5:
        return False
    _, flags, qdcount, _, _, _ = _HEADER.unpack_from(data, 0)
    opcode = (flags >> 11) & 0xF
    return opcode == 0 and 1 <= qdcount <= 4
