"""RTP header encoding/decoding (RFC 3550 fixed header).

The paper observes a non-negligible 1.1 % of volume on RTP despite the
550 ms floor (Table 1) — real-time voice/video that cannot use the PEP.
"""

from __future__ import annotations

import struct
from dataclasses import dataclass
from typing import Optional

_RTP_VERSION = 2
_HEADER = struct.Struct("!BBHII")
HEADER_LEN = _HEADER.size

PAYLOAD_TYPE_PCMU = 0
PAYLOAD_TYPE_H264 = 96


@dataclass
class RTPHeader:
    """Parsed fixed RTP header."""

    payload_type: int
    sequence: int
    timestamp: int
    ssrc: int
    marker: bool = False


def encode(
    sequence: int,
    timestamp: int,
    ssrc: int,
    payload: bytes = b"",
    payload_type: int = PAYLOAD_TYPE_PCMU,
    marker: bool = False,
) -> bytes:
    """Encode an RTP packet.

    >>> hdr = decode(encode(5, 160, 0xABCD, b"x" * 20))
    >>> (hdr.sequence, hdr.ssrc)
    (5, 43981)
    """
    if not 0 <= payload_type <= 127:
        raise ValueError("payload_type must fit in 7 bits")
    byte0 = _RTP_VERSION << 6
    byte1 = (0x80 if marker else 0) | payload_type
    return _HEADER.pack(byte0, byte1, sequence & 0xFFFF, timestamp & 0xFFFFFFFF, ssrc & 0xFFFFFFFF) + payload


def decode(data: bytes) -> Optional[RTPHeader]:
    """Decode the fixed header; None when ``data`` is not RTP."""
    if len(data) < HEADER_LEN:
        return None
    byte0, byte1, sequence, timestamp, ssrc = _HEADER.unpack_from(data, 0)
    if byte0 >> 6 != _RTP_VERSION:
        return None
    return RTPHeader(
        payload_type=byte1 & 0x7F,
        sequence=sequence,
        timestamp=timestamp,
        ssrc=ssrc,
        marker=bool(byte1 & 0x80),
    )


def looks_like_rtp(data: bytes) -> bool:
    """Version-bit check used by the DPI (after QUIC/DNS are excluded)."""
    return len(data) >= HEADER_LEN and data[0] >> 6 == _RTP_VERSION
