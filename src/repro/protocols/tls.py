"""TLS record-layer and handshake encoding/decoding.

The paper's probe (Section 2.2) measures the *satellite-segment* RTT as
the time between the ``ServerHello`` leaving the ground station and the
client's ``ClientKeyExchange``/``ChangeCipherSpec`` arriving back, and it
extracts the visited domain from the ``server_name`` (SNI) extension of
the ``ClientHello``. This module provides byte-exact encoders for those
messages and the parsers the DPI uses.

Certificates and key material are placeholder bytes: the measurement
methodology only depends on message *types*, *framing* and the SNI
extension.
"""

from __future__ import annotations

import enum
import struct
from dataclasses import dataclass, field
from typing import List, Optional

TLS_VERSION_1_2 = 0x0303

_RECORD_HEADER = struct.Struct("!BHH")  # type, version, length


class ContentType(enum.IntEnum):
    """TLS record-layer content types."""

    CHANGE_CIPHER_SPEC = 20
    ALERT = 21
    HANDSHAKE = 22
    APPLICATION_DATA = 23


class HandshakeType(enum.IntEnum):
    """TLS handshake message types (subset)."""

    CLIENT_HELLO = 1
    SERVER_HELLO = 2
    CERTIFICATE = 11
    SERVER_KEY_EXCHANGE = 12
    SERVER_HELLO_DONE = 14
    CLIENT_KEY_EXCHANGE = 16
    FINISHED = 20


SNI_EXTENSION_TYPE = 0
SNI_HOSTNAME_TYPE = 0


@dataclass
class HandshakeMessage:
    """A parsed handshake message."""

    msg_type: HandshakeType
    body: bytes

    @property
    def length(self) -> int:
        return len(self.body)


@dataclass
class Record:
    """A parsed TLS record."""

    content_type: ContentType
    version: int
    payload: bytes

    @property
    def length(self) -> int:
        return len(self.payload)


@dataclass
class ParsedHandshake:
    """Summary of what the DPI saw in a byte stream."""

    records: List[Record] = field(default_factory=list)
    handshake_types: List[HandshakeType] = field(default_factory=list)
    sni: Optional[str] = None


def encode_record(content_type: ContentType, payload: bytes, version: int = TLS_VERSION_1_2) -> bytes:
    """Wrap ``payload`` in a TLS record header."""
    if len(payload) > 0xFFFF:
        raise ValueError("TLS record payload too large")
    return _RECORD_HEADER.pack(int(content_type), version, len(payload)) + payload


def encode_handshake(msg_type: HandshakeType, body: bytes) -> bytes:
    """Encode a handshake message (type + 24-bit length + body)."""
    if len(body) > 0xFFFFFF:
        raise ValueError("handshake body too large")
    return bytes([int(msg_type)]) + len(body).to_bytes(3, "big") + body


def _encode_sni_extension(server_name: str) -> bytes:
    """The server_name extension (RFC 6066)."""
    name = server_name.encode("ascii")
    entry = bytes([SNI_HOSTNAME_TYPE]) + struct.pack("!H", len(name)) + name
    server_name_list = struct.pack("!H", len(entry)) + entry
    return struct.pack("!HH", SNI_EXTENSION_TYPE, len(server_name_list)) + server_name_list


def client_hello(server_name: str, session_id: bytes = b"", random: bytes = b"\x00" * 32) -> bytes:
    """A ClientHello record carrying an SNI extension.

    >>> data = client_hello("www.example.com")
    >>> extract_sni(data)
    'www.example.com'
    """
    if len(random) != 32:
        raise ValueError("TLS random must be 32 bytes")
    if len(session_id) > 32:
        raise ValueError("session_id too long")
    cipher_suites = struct.pack("!H", 2) + struct.pack("!H", 0xC02F)  # one suite
    compression = b"\x01\x00"
    extensions = _encode_sni_extension(server_name)
    body = (
        struct.pack("!H", TLS_VERSION_1_2)
        + random
        + bytes([len(session_id)])
        + session_id
        + cipher_suites
        + compression
        + struct.pack("!H", len(extensions))
        + extensions
    )
    return encode_record(ContentType.HANDSHAKE, encode_handshake(HandshakeType.CLIENT_HELLO, body))


def server_hello(random: bytes = b"\x00" * 32, certificate_len: int = 2000) -> bytes:
    """ServerHello + Certificate + ServerHelloDone flight (one record).

    ``certificate_len`` controls the size of the placeholder certificate
    chain, so simulations can model realistic handshake flight sizes.
    """
    if len(random) != 32:
        raise ValueError("TLS random must be 32 bytes")
    hello_body = (
        struct.pack("!H", TLS_VERSION_1_2)
        + random
        + b"\x00"  # empty session id
        + struct.pack("!H", 0xC02F)
        + b"\x00"  # null compression
    )
    messages = encode_handshake(HandshakeType.SERVER_HELLO, hello_body)
    messages += encode_handshake(HandshakeType.CERTIFICATE, b"\x00" * certificate_len)
    messages += encode_handshake(HandshakeType.SERVER_HELLO_DONE, b"")
    return encode_record(ContentType.HANDSHAKE, messages)


def client_key_exchange() -> bytes:
    """ClientKeyExchange + ChangeCipherSpec + (encrypted) Finished flight."""
    cke = encode_record(
        ContentType.HANDSHAKE, encode_handshake(HandshakeType.CLIENT_KEY_EXCHANGE, b"\x00" * 66)
    )
    ccs = encode_record(ContentType.CHANGE_CIPHER_SPEC, b"\x01")
    finished = encode_record(ContentType.HANDSHAKE, b"\x16" + b"\x00" * 39)
    return cke + ccs + finished


def server_finished() -> bytes:
    """Server ChangeCipherSpec + Finished flight."""
    ccs = encode_record(ContentType.CHANGE_CIPHER_SPEC, b"\x01")
    finished = encode_record(ContentType.HANDSHAKE, b"\x16" + b"\x00" * 39)
    return ccs + finished


def server_hello_tls13(random: bytes = b"\x00" * 32, certificate_len: int = 2400) -> bytes:
    """TLS 1.3 server flight: ServerHello + CCS + encrypted handshake.

    In TLS 1.3 the certificate/Finished messages ride encrypted after a
    compatibility ChangeCipherSpec; to the wire (and to the DPI) they
    look like opaque APPLICATION_DATA records.
    """
    if len(random) != 32:
        raise ValueError("TLS random must be 32 bytes")
    hello_body = (
        struct.pack("!H", TLS_VERSION_1_2)  # legacy_version on the wire
        + random
        + b"\x00"
        + struct.pack("!H", 0x1301)  # TLS_AES_128_GCM_SHA256
        + b"\x00"
    )
    hello = encode_record(
        ContentType.HANDSHAKE, encode_handshake(HandshakeType.SERVER_HELLO, hello_body)
    )
    ccs = encode_record(ContentType.CHANGE_CIPHER_SPEC, b"\x01")
    return hello + ccs + application_data(certificate_len)


def client_finished_tls13() -> bytes:
    """TLS 1.3 client return flight: compatibility CCS + encrypted
    Finished. There is no ClientKeyExchange — this CCS is the milestone
    the paper's satellite-RTT estimator falls back to."""
    ccs = encode_record(ContentType.CHANGE_CIPHER_SPEC, b"\x01")
    return ccs + application_data(52)


def application_data(length: int) -> bytes:
    """An APPLICATION_DATA record of ``length`` payload bytes."""
    if length < 0:
        raise ValueError("length must be non-negative")
    remaining = length
    out = bytearray()
    while remaining > 0:
        chunk = min(remaining, 0x4000)
        out += encode_record(ContentType.APPLICATION_DATA, b"\x00" * chunk)
        remaining -= chunk
    return bytes(out)


def parse_records(data: bytes) -> List[Record]:
    """Split a byte stream into TLS records; tolerates a trailing partial record."""
    records: List[Record] = []
    offset = 0
    while offset + _RECORD_HEADER.size <= len(data):
        ctype, version, length = _RECORD_HEADER.unpack_from(data, offset)
        end = offset + _RECORD_HEADER.size + length
        if end > len(data):
            break
        try:
            content = ContentType(ctype)
        except ValueError:
            break  # not TLS after all
        records.append(Record(content_type=content, version=version, payload=data[offset + _RECORD_HEADER.size : end]))
        offset = end
    return records


def parse_handshake_messages(record_payload: bytes) -> List[HandshakeMessage]:
    """Parse the handshake messages inside one HANDSHAKE record payload."""
    messages: List[HandshakeMessage] = []
    offset = 0
    while offset + 4 <= len(record_payload):
        raw_type = record_payload[offset]
        length = int.from_bytes(record_payload[offset + 1 : offset + 4], "big")
        end = offset + 4 + length
        if end > len(record_payload):
            break
        try:
            msg_type = HandshakeType(raw_type)
        except ValueError:
            break  # encrypted Finished or unknown — stop walking
        messages.append(HandshakeMessage(msg_type=msg_type, body=record_payload[offset + 4 : end]))
        offset = end
    return messages


def _parse_sni_from_client_hello(body: bytes) -> Optional[str]:
    """Walk a ClientHello body to the SNI extension."""
    offset = 2 + 32  # version + random
    if offset >= len(body):
        return None
    sid_len = body[offset]
    offset += 1 + sid_len
    if offset + 2 > len(body):
        return None
    cs_len = struct.unpack_from("!H", body, offset)[0]
    offset += 2 + cs_len
    if offset >= len(body):
        return None
    comp_len = body[offset]
    offset += 1 + comp_len
    if offset + 2 > len(body):
        return None
    ext_total = struct.unpack_from("!H", body, offset)[0]
    offset += 2
    ext_end = min(offset + ext_total, len(body))
    while offset + 4 <= ext_end:
        ext_type, ext_len = struct.unpack_from("!HH", body, offset)
        offset += 4
        if ext_type == SNI_EXTENSION_TYPE and offset + 2 <= ext_end:
            # server_name_list: u16 length, then entries
            cursor = offset + 2
            while cursor + 3 <= offset + 2 + struct.unpack_from("!H", body, offset)[0]:
                name_type = body[cursor]
                name_len = struct.unpack_from("!H", body, cursor + 1)[0]
                cursor += 3
                if name_type == SNI_HOSTNAME_TYPE and cursor + name_len <= len(body):
                    return body[cursor : cursor + name_len].decode("ascii", errors="replace")
                cursor += name_len
            return None
        offset += ext_len
    return None


def extract_sni(data: bytes) -> Optional[str]:
    """Extract the SNI from a byte stream starting with a ClientHello."""
    parsed = parse_stream(data)
    return parsed.sni


def parse_stream(data: bytes) -> ParsedHandshake:
    """Parse a TLS byte stream and summarize handshake content."""
    result = ParsedHandshake()
    result.records = parse_records(data)
    for record in result.records:
        if record.content_type != ContentType.HANDSHAKE:
            continue
        for message in parse_handshake_messages(record.payload):
            result.handshake_types.append(message.msg_type)
            if message.msg_type == HandshakeType.CLIENT_HELLO and result.sni is None:
                result.sni = _parse_sni_from_client_hello(message.body)
    return result


def looks_like_tls(data: bytes) -> bool:
    """Cheap check used by the DPI to decide whether to try TLS parsing."""
    if len(data) < _RECORD_HEADER.size:
        return False
    ctype = data[0]
    version_major = data[1]
    return ctype in (20, 21, 22, 23) and version_major == 3
