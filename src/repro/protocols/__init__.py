"""Wire-format protocol encoders and decoders.

These are *real* byte formats (TLS record layer, RFC 1035 DNS, HTTP/1.1,
QUIC long header, RTP). The traffic generators emit them and the flow
meter's DPI parses them, so the measurement methodology of the paper is
exercised against genuine formats rather than in-memory shortcuts.
"""

from repro.protocols import dns, http, quic, rtp, tls

__all__ = ["dns", "http", "quic", "rtp", "tls"]
