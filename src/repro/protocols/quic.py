"""QUIC long-header framing (simplified Initial with embedded SNI).

19.6 % of the paper's volume is QUIC (Table 1). Tstat recovers the SNI
from the QUIC Initial by deriving the version-specific Initial keys and
decrypting the embedded CRYPTO frames. We keep the header structurally
faithful (RFC 9000 long header: flags, version, DCID/SCID with length
prefixes) but carry the ClientHello *unencrypted* in the payload — the
key derivation is deterministic public crypto that adds nothing to the
measurement pipeline (DESIGN.md §6).
"""

from __future__ import annotations

import struct
from dataclasses import dataclass
from typing import Optional

from repro.protocols import tls

QUIC_VERSION_1 = 0x00000001

_LONG_HEADER_FORM = 0x80
_FIXED_BIT = 0x40
_PACKET_TYPE_INITIAL = 0x00
_PACKET_TYPE_HANDSHAKE = 0x20
_PACKET_TYPE_MASK = 0x30


@dataclass
class LongHeader:
    """Parsed QUIC long header."""

    packet_type: int
    version: int
    dcid: bytes
    scid: bytes
    payload: bytes

    @property
    def is_initial(self) -> bool:
        return self.packet_type == _PACKET_TYPE_INITIAL


def encode_initial(sni: str, dcid: bytes = b"\x01" * 8, scid: bytes = b"\x02" * 8) -> bytes:
    """A QUIC Initial carrying a ClientHello with ``sni``.

    >>> extract_sni(encode_initial("video.example.org"))
    'video.example.org'
    """
    crypto = tls.client_hello(sni)
    return _encode_long_header(_PACKET_TYPE_INITIAL, dcid, scid, crypto)


def encode_handshake_packet(payload_len: int, dcid: bytes = b"\x01" * 8, scid: bytes = b"\x02" * 8) -> bytes:
    """A QUIC Handshake-type packet with opaque payload."""
    return _encode_long_header(_PACKET_TYPE_HANDSHAKE, dcid, scid, b"\x00" * payload_len)


def encode_short_header_packet(payload_len: int, dcid: bytes = b"\x01" * 8) -> bytes:
    """A 1-RTT (short header) packet: flags byte + DCID + payload."""
    return bytes([_FIXED_BIT]) + dcid + b"\x00" * payload_len


def _encode_long_header(packet_type: int, dcid: bytes, scid: bytes, payload: bytes) -> bytes:
    if len(dcid) > 20 or len(scid) > 20:
        raise ValueError("QUIC connection IDs are at most 20 bytes")
    flags = _LONG_HEADER_FORM | _FIXED_BIT | packet_type
    return (
        bytes([flags])
        + struct.pack("!I", QUIC_VERSION_1)
        + bytes([len(dcid)])
        + dcid
        + bytes([len(scid)])
        + scid
        + payload
    )


def parse_long_header(data: bytes) -> Optional[LongHeader]:
    """Parse a long-header packet; None when not QUIC long header."""
    if len(data) < 7:
        return None
    flags = data[0]
    if not flags & _LONG_HEADER_FORM or not flags & _FIXED_BIT:
        return None
    version = struct.unpack_from("!I", data, 1)[0]
    offset = 5
    dcid_len = data[offset]
    offset += 1
    if dcid_len > 20 or offset + dcid_len >= len(data):
        return None
    dcid = data[offset : offset + dcid_len]
    offset += dcid_len
    scid_len = data[offset]
    offset += 1
    if scid_len > 20 or offset + scid_len > len(data):
        return None
    scid = data[offset : offset + scid_len]
    offset += scid_len
    return LongHeader(
        packet_type=flags & _PACKET_TYPE_MASK,
        version=version,
        dcid=dcid,
        scid=scid,
        payload=data[offset:],
    )


def extract_sni(data: bytes) -> Optional[str]:
    """SNI from an Initial packet, if present."""
    header = parse_long_header(data)
    if header is None or not header.is_initial:
        return None
    return tls.extract_sni(header.payload)


def looks_like_quic(data: bytes) -> bool:
    """Heuristic: long-header form bit + fixed bit + version 1."""
    if len(data) < 5:
        return False
    flags = data[0]
    if not flags & _FIXED_BIT:
        return False
    if flags & _LONG_HEADER_FORM:
        return struct.unpack_from("!I", data, 1)[0] == QUIC_VERSION_1
    return True  # short header: fixed bit only
