"""Deterministic partition planning for distributed fleet captures.

A *partition* is a contiguous range of the capture's full shard plan
(:meth:`WorkloadGenerator.shard_plan`), executed as an ordinary
streaming capture restricted to those shards
(``run_stream_capture(..., shard_range=...)``). Because every
:class:`~repro.parallel.ShardSpec` keeps its full-plan ``index`` and
``n_shards``, a partition samples byte-identical flows to the slice of
the single-process capture it covers — partitioning is pure execution,
never content.

The plan is a pure function of the scenario (customer count, shard
count, scenario digest) and the requested partition count: every
coordinator, worker, and resumed run derives the same partitions, the
same capture keys, and the same per-partition fault seeds without
coordination.
"""

from __future__ import annotations

import hashlib
from dataclasses import dataclass
from typing import TYPE_CHECKING, Optional, Tuple

from repro.cache import stream_capture_key
from repro.parallel import default_shard_count, plan_shards
from repro.stream.producer import partition_capture_key

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from repro.scenario import Scenario


@dataclass(frozen=True)
class PartitionSpec:
    """One worker's slice of the capture.

    ``shard_lo``/``shard_hi`` index the *full* shard plan (half-open);
    ``customer_lo``/``customer_hi`` are the customer ids those shards
    cover (contiguous, because shards are). ``capture_key`` is the
    partition-scoped stream key its capture directory commits under,
    and ``fault_seed`` gives each partition an independent fault
    domain: the same chaos plan armed fleet-wide draws different (but
    reproducible) faults per worker.
    """

    index: int
    n_partitions: int
    shard_lo: int
    shard_hi: int
    customer_lo: int
    customer_hi: int
    capture_key: str
    fault_seed: int

    @property
    def n_shards(self) -> int:
        return self.shard_hi - self.shard_lo

    @property
    def shard_range(self) -> Tuple[int, int]:
        return (self.shard_lo, self.shard_hi)

    @property
    def name(self) -> str:
        return partition_dir_name(self.index)


@dataclass(frozen=True)
class FleetPlan:
    """The full deterministic partitioning of one scenario's capture."""

    scenario_digest: str
    base_capture_key: str
    """Key of the equivalent single-process stream capture."""
    n_customers: int
    n_shards: int
    """Shards in the full plan (partitioning never changes it)."""
    n_windows: int
    partitions: Tuple[PartitionSpec, ...]

    @property
    def n_partitions(self) -> int:
        return len(self.partitions)


def partition_dir_name(index: int) -> str:
    """Directory name of partition ``index`` under ``partitions/``."""
    return f"p{index:03d}"


def _partition_fault_seed(scenario_digest: str, base_seed: int, index: int) -> int:
    """A reproducible per-partition fault-domain seed.

    Hash-derived (not ``base_seed + index``) so neighbouring partitions
    never share correlated fault streams, and tied to the scenario
    digest so two scenarios with the same fault seed still chaos
    differently.
    """
    blob = f"{scenario_digest}:{base_seed}:{index}".encode()
    return int.from_bytes(hashlib.sha256(blob).digest()[:4], "big")


def plan_partitions(
    scenario: "Scenario", partitions: Optional[int] = None
) -> FleetPlan:
    """Split ``scenario``'s capture into disjoint shard-range partitions.

    ``partitions`` overrides ``scenario.fleet.partitions``. The
    effective count is clamped to the shard count — a shard is the
    atom of determinism (its RNG stream cannot be split), so asking
    for more partitions than shards yields one partition per shard.
    """
    n_partitions = (
        partitions if partitions is not None else scenario.fleet.partitions
    )
    if n_partitions < 1:
        raise ValueError(f"partitions must be >= 1 (got {n_partitions})")
    n_customers = scenario.population.n_customers
    n_shards = scenario.workload.n_shards or default_shard_count(n_customers)
    full_plan = plan_shards(n_customers, n_shards)
    n_shards = len(full_plan)  # plan_shards clamps to n_customers
    n_partitions = min(n_partitions, n_shards)
    digest = scenario.digest()
    base_key = stream_capture_key(scenario, scenario.stream.window_days)
    n_windows = -(-scenario.workload.days // scenario.stream.window_days)
    # Reuse the shard splitter to cut shard *indices* into contiguous
    # groups: same divmod discipline, sizes differ by at most one.
    groups = plan_shards(n_shards, n_partitions)
    specs = []
    for group in groups:
        shard_lo, shard_hi = group.lo, group.hi
        specs.append(
            PartitionSpec(
                index=group.index,
                n_partitions=n_partitions,
                shard_lo=shard_lo,
                shard_hi=shard_hi,
                customer_lo=full_plan[shard_lo].lo,
                customer_hi=full_plan[shard_hi - 1].hi,
                capture_key=partition_capture_key(
                    base_key, shard_lo, shard_hi, n_shards
                ),
                fault_seed=_partition_fault_seed(
                    digest, scenario.faults.seed, group.index
                ),
            )
        )
    return FleetPlan(
        scenario_digest=digest,
        base_capture_key=base_key,
        n_customers=n_customers,
        n_shards=n_shards,
        n_windows=n_windows,
        partitions=tuple(specs),
    )
