"""Reduce completed partition captures into one analysis-ready rollup.

Bit-identity is the whole design. ``StreamRollup.merge`` of partition
*states* cannot reproduce the single-process digest exactly — the
byte-volume accumulators are float sums, and float addition is not
associative across regroupings (PR 5's associativity tests assert
exactly this: integer state is exact under regrouping, float state
only ``allclose``). What *is* exact and associative is frame
concatenation: ``FlowFrame.concat`` is a pure pool-validated
``np.concatenate``, so nested concats equal flat concats byte for
byte.

The merge tree therefore operates at **window-frame granularity**: an
internal node concatenates its children's frames for one window, the
root folds each fully-assembled window into a fresh
:class:`StreamRollup` in window-index order — the byte-exact
float-addition order of the single-process ``_WindowCommitter`` fold.
Any tree shape over in-order leaves yields the same bytes, which is
what the shape-sweep property tests assert. Memory stays bounded: one
window's frames are resident at a time, never the capture.

Per-partition ``rollup.npz``/checkpoint digests remain as integrity
guards (``verify=True`` re-checks them before merging), exactly the
contract :func:`~repro.stream.producer._recover_rollup` relies on.
"""

from __future__ import annotations

from dataclasses import dataclass
from pathlib import Path
from typing import Callable, List, Optional, Sequence, Union

import numpy as np

from repro.analysis.dataset import FlowFrame
from repro.analysis.source import CaptureError
from repro.stream.checkpoint import load_checkpoint, rollup_path
from repro.stream.rollup import StreamRollup
from repro.stream.store import FlowStore

MERGE_TREE_SHAPES = ("balanced", "left", "right", "random")


@dataclass(frozen=True)
class MergeNode:
    """One node of a binary merge tree over partition indices.

    A leaf names one partition; an internal node concatenates its two
    children. The in-order traversal of any valid tree is
    ``0..n_partitions-1`` — leaf order is partition order is shard
    order, which is what keeps concatenation bit-exact against the
    single-process capture.
    """

    leaf: Optional[int] = None
    left: Optional["MergeNode"] = None
    right: Optional["MergeNode"] = None

    def __post_init__(self) -> None:
        if (self.leaf is None) == (self.left is None or self.right is None):
            raise ValueError("a MergeNode is either a leaf or has two children")

    def leaves(self) -> List[int]:
        """Partition indices in in-order (left-to-right) order."""
        if self.leaf is not None:
            return [self.leaf]
        return self.left.leaves() + self.right.leaves()

    def shape(self) -> str:
        """Parenthesized rendering, e.g. ``((0+1)+(2+3))``."""
        if self.leaf is not None:
            return str(self.leaf)
        return f"({self.left.shape()}+{self.right.shape()})"


def _build(lo: int, hi: int, split_at: Callable[[int, int], int]) -> MergeNode:
    if hi - lo == 1:
        return MergeNode(leaf=lo)
    mid = split_at(lo, hi)
    return MergeNode(
        left=_build(lo, mid, split_at), right=_build(mid, hi, split_at)
    )


def plan_merge_tree(
    n_partitions: int, shape: str = "balanced", seed: Optional[int] = None
) -> MergeNode:
    """A merge tree over partitions ``0..n_partitions-1``.

    Shapes: ``balanced`` (log-depth, the default), ``left``/``right``
    (maximally skewed folds, the degenerate flat-reduce cases), and
    ``random`` (a seed-reproducible random shape — the property tests
    sweep these). Every shape produces the same merged bytes.
    """
    if n_partitions < 1:
        raise ValueError(f"need at least one partition (got {n_partitions})")
    if shape == "balanced":
        return _build(0, n_partitions, lambda lo, hi: (lo + hi) // 2)
    if shape == "left":
        return _build(0, n_partitions, lambda lo, hi: hi - 1)
    if shape == "right":
        return _build(0, n_partitions, lambda lo, hi: lo + 1)
    if shape == "random":
        rng = np.random.default_rng(seed)
        return _build(
            0, n_partitions, lambda lo, hi: int(rng.integers(lo + 1, hi))
        )
    raise ValueError(
        f"unknown merge-tree shape {shape!r} "
        f"(known: {', '.join(MERGE_TREE_SHAPES)})"
    )


def _assemble(
    node: MergeNode, stores: Sequence[FlowStore], window_index: int
) -> FlowFrame:
    """One window's frame for the subtree — nested, bit-exact concat."""
    if node.leaf is not None:
        return stores[node.leaf].read_window(window_index)
    return FlowFrame.concat(
        [
            _assemble(node.left, stores, window_index),
            _assemble(node.right, stores, window_index),
        ]
    )


def merge_partition_captures(
    directories: Sequence[Union[str, Path]],
    tree: Optional[MergeNode] = None,
    verify: bool = True,
    on_window: Optional[Callable[[int, int], None]] = None,
) -> StreamRollup:
    """Merge completed partition capture directories into one rollup.

    ``directories`` must be in partition-index order. ``tree`` defaults
    to the balanced shape; any shape gives identical bytes. With
    ``verify=True`` every partition's saved rollup state is re-checked
    against its checkpoint digest first, so a torn partition artifact
    is diagnosed here instead of corrupting the merge. ``on_window``
    observes ``(window_index, flows)`` as each window folds.

    The result's ``state_digest()`` equals the single-process
    ``repro stream`` digest of the same scenario — the fleet acceptance
    oracle.
    """
    if not directories:
        raise ValueError("need at least one partition directory")
    if tree is None:
        tree = plan_merge_tree(len(directories))
    leaves = tree.leaves()
    if leaves != list(range(len(directories))):
        raise ValueError(
            f"merge tree leaves {leaves} are not partitions "
            f"0..{len(directories) - 1} in order"
        )
    stores = [FlowStore.open(d) for d in directories]
    checkpoints = []
    for directory, store in zip(directories, stores):
        checkpoint = load_checkpoint(directory)
        if checkpoint is None:
            raise CaptureError(f"{directory}: no checkpoint — not a capture")
        if not checkpoint.complete:
            raise CaptureError(
                f"{directory}: partition incomplete "
                f"({checkpoint.windows_done}/{checkpoint.n_windows} windows); "
                "heal it before merging"
            )
        checkpoints.append(checkpoint)
    entries = stores[0].windows
    for directory, store in zip(directories[1:], stores[1:]):
        if store.windows != entries:
            raise CaptureError(
                f"{directory}: window plan differs from partition 0 — "
                "the partitions belong to different captures"
            )
    if verify:
        for directory, checkpoint in zip(directories, checkpoints):
            saved = StreamRollup.load(rollup_path(directory))
            if saved.state_digest() != checkpoint.rollup_digest:
                raise CaptureError(
                    f"{directory}: rollup state does not match its "
                    "checkpoint digest — partition is corrupt"
                )
    pools = stores[0].pools
    rollup = StreamRollup(
        pools["countries"], pools["services"], pools["resolvers"]
    )
    for entry in entries:
        frame = _assemble(tree, stores, entry.index)
        rollup.update(frame)
        if on_window is not None:
            on_window(entry.index, len(frame))
        del frame
    return rollup
