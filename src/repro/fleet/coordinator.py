"""The fleet coordinator: dispatch, watch, heal, merge.

Drives one :class:`~repro.fleet.plan.FleetPlan` to completion:

* **dispatch** — partitions run as forked worker subprocesses through a
  pool bounded at ``fleet.max_parallel`` (platforms without ``fork``
  fall back to sequential in-process execution, same bytes);
* **watch** — every poll tick reads each live worker's checkpoint and
  its :meth:`~repro.stream.checkpoint.Checkpoint.progress`; a worker
  whose progress stalls past ``fleet.straggler_timeout_s`` is SIGKILLed
  and treated exactly like a crash;
* **heal** — a dead worker (crashed, killed, or straggler-reaped) is
  respawned through the PR-5 resume path with kill-points stripped, up
  to ``fleet.max_heals`` times per partition;
* **merge** — completed partitions reduce through the
  :mod:`repro.fleet.merge` tree into ``merged_rollup.npz``, loadable by
  ``repro report``/``scorecard`` as a plain
  :class:`~repro.analysis.source.RollupSource`.

State lives in an atomically-written ``fleet.json`` manifest
(:func:`repro.faults.atomic_write_bytes`, op ``fleet.manifest`` — the
chaos matrix's IO faults extend to the coordinator), but the
*authoritative* progress record is each partition's own checkpoint: a
coordinator killed at any of its ``fleet:*`` kill-points resumes by
re-reading the partition directories, so a stale manifest can never
mis-resume the fleet. Per-partition telemetry (flows/s, windows,
retries, heals) is serialized to ``fleet_telemetry.json`` next to the
manifest and rendered as the ``repro fleet`` summary table.
"""

from __future__ import annotations

import dataclasses
import json
import multiprocessing
import os
import signal
import time
from dataclasses import dataclass, field
from pathlib import Path
from typing import TYPE_CHECKING, Callable, Dict, List, Optional, Union

from repro.analysis.aggregate import format_table
from repro.analysis.source import CaptureError
from repro.faults import (
    FaultInjector,
    FaultPlan,
    FaultStats,
    atomic_write_bytes,
    resolve_injector,
)
from repro.fleet.merge import (
    MERGE_TREE_SHAPES,
    merge_partition_captures,
    plan_merge_tree,
)
from repro.fleet.plan import FleetPlan, PartitionSpec, plan_partitions
from repro.fleet.worker import partition_process_entry, run_partition
from repro.stream.checkpoint import Checkpoint, load_checkpoint
from repro.stream.rollup import StreamRollup

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from repro.scenario import Scenario
    from repro.serve.snapshot import SnapshotHub

FLEET_SCHEMA = 1
FLEET_MANIFEST = "fleet.json"
FLEET_TELEMETRY = "fleet_telemetry.json"
MERGED_ROLLUP = "merged_rollup.npz"
PARTITIONS_DIR = "partitions"


@dataclass
class PartitionState:
    """Lifecycle record of one partition, as tracked in ``fleet.json``."""

    index: int
    status: str = "pending"
    """``pending`` → ``running`` → ``done``; detours through
    ``healing`` after a crash/straggler kill, terminal ``failed``."""
    attempts: int = 0
    """Worker processes spawned for this partition (first run + heals)."""
    heals: int = 0
    """Respawns after a crash or straggler kill."""
    straggler_kills: int = 0
    """Workers SIGKILLed by the coordinator for stalled progress."""
    windows_done: int = 0
    n_windows: int = 0

    def to_payload(self) -> Dict:
        return dataclasses.asdict(self)


@dataclass
class FleetResult:
    """What a completed fleet capture produced."""

    fleet_dir: Path
    plan: FleetPlan
    rollup: StreamRollup
    digest: str
    states: List[PartitionState]
    merged_path: Path
    telemetry_rows: List[Dict]
    fault_stats: FaultStats = field(default_factory=FaultStats)

    @property
    def total_heals(self) -> int:
        return sum(state.heals for state in self.states)


def fleet_dir_paths(fleet_dir: Union[str, Path]) -> Dict[str, Path]:
    """The artifact paths of a fleet directory, by role."""
    fleet_dir = Path(fleet_dir)
    return {
        "manifest": fleet_dir / FLEET_MANIFEST,
        "telemetry": fleet_dir / FLEET_TELEMETRY,
        "merged": fleet_dir / MERGED_ROLLUP,
        "partitions": fleet_dir / PARTITIONS_DIR,
    }


def partition_dir(fleet_dir: Union[str, Path], partition: PartitionSpec) -> Path:
    return Path(fleet_dir) / PARTITIONS_DIR / partition.name


def fleet_kill_points(n_partitions: int) -> List[str]:
    """Every coordinator-level kill-point of a fleet run, in order.

    The fleet crash matrix SIGKILLs the coordinator at each and asserts
    the resumed fleet still produces the single-process digest. Worker
    kill-points are the stream ones, prefixed ``pNNN:`` (see
    :mod:`repro.fleet.worker`).
    """
    points = ["fleet:init", "fleet:planned"]
    points.extend(f"fleet:p{i:03d}:done" for i in range(n_partitions))
    points.extend(["fleet:merge", "fleet:done"])
    return points


# -- manifest ----------------------------------------------------------------


def _write_manifest(
    fleet_dir: Path,
    plan: FleetPlan,
    states: List[PartitionState],
    status: str,
    merge_tree: str,
    injector: FaultInjector,
    merged_digest: str = "",
) -> None:
    payload = {
        "schema": FLEET_SCHEMA,
        "status": status,
        "scenario_digest": plan.scenario_digest,
        "base_capture_key": plan.base_capture_key,
        "n_partitions": plan.n_partitions,
        "n_shards": plan.n_shards,
        "n_windows": plan.n_windows,
        "merge_tree": merge_tree,
        "merged_digest": merged_digest,
        "partitions": [
            {
                **state.to_payload(),
                "dir": f"{PARTITIONS_DIR}/{spec.name}",
                "shard_range": [spec.shard_lo, spec.shard_hi],
                "customer_range": [spec.customer_lo, spec.customer_hi],
                "capture_key": spec.capture_key,
            }
            for spec, state in zip(plan.partitions, states)
        ],
    }
    atomic_write_bytes(
        fleet_dir / FLEET_MANIFEST,
        lambda h: h.write(json.dumps(payload, indent=2).encode()),
        injector=injector,
        op="fleet.manifest",
    )


def load_fleet_manifest(fleet_dir: Union[str, Path]) -> Optional[Dict]:
    """The fleet manifest, or ``None``; :class:`CaptureError` if damaged."""
    path = Path(fleet_dir) / FLEET_MANIFEST
    if not path.exists():
        return None
    try:
        payload = json.loads(path.read_text())
    except ValueError as exc:
        raise CaptureError(f"corrupt fleet manifest {path}: {exc}") from exc
    if not isinstance(payload, dict):
        raise CaptureError(f"corrupt fleet manifest {path}: not a JSON object")
    if payload.get("schema") != FLEET_SCHEMA:
        raise CaptureError(
            f"fleet manifest schema {payload.get('schema')} != {FLEET_SCHEMA}"
        )
    return payload


# -- telemetry ---------------------------------------------------------------


def fleet_telemetry_rows(
    plan: FleetPlan,
    states: List[PartitionState],
    fleet_dir: Union[str, Path],
) -> List[Dict]:
    """Per-partition counters for the summary table and the bench harness."""
    rows: List[Dict] = []
    for spec, state in zip(plan.partitions, states):
        checkpoint = _safe_checkpoint(partition_dir(fleet_dir, spec))
        telemetry = checkpoint.telemetry if checkpoint is not None else []
        flows = sum(t.flows for t in telemetry)
        busy = sum(t.busy_seconds for t in telemetry)
        rows.append(
            {
                "partition": spec.name,
                "shards": f"{spec.shard_lo}-{spec.shard_hi - 1}",
                "customers": spec.customer_hi - spec.customer_lo,
                "windows_done": state.windows_done,
                "n_windows": state.n_windows,
                "flows": flows,
                "flows_per_s": flows / busy if busy > 0 else 0.0,
                "busy_seconds": busy,
                "faults": sum(t.faults for t in telemetry),
                "io_retries": sum(t.io_retries for t in telemetry),
                "attempts": state.attempts,
                "heals": state.heals,
                "straggler_kills": state.straggler_kills,
                "status": state.status,
            }
        )
    return rows


def render_fleet_telemetry(rows: List[Dict]) -> str:
    """The per-partition summary table printed by ``repro fleet``."""
    table_rows = [
        (
            row["partition"],
            row["shards"],
            f"{row['windows_done']}/{row['n_windows']}",
            f"{row['flows']:,}",
            f"{row['flows_per_s']:,.0f}",
            f"{row['busy_seconds']:.2f}",
            f"{row['faults']}",
            f"{row['io_retries']}",
            f"{row['heals']}",
            f"{row['straggler_kills']}",
            row["status"],
        )
        for row in rows
    ]
    total_flows = sum(row["flows"] for row in rows)
    total_busy = sum(row["busy_seconds"] for row in rows)
    table_rows.append(
        (
            "total",
            "",
            "",
            f"{total_flows:,}",
            f"{total_flows / total_busy:,.0f}" if total_busy > 0 else "-",
            f"{total_busy:.2f}",
            f"{sum(row['faults'] for row in rows)}",
            f"{sum(row['io_retries'] for row in rows)}",
            f"{sum(row['heals'] for row in rows)}",
            f"{sum(row['straggler_kills'] for row in rows)}",
            "",
        )
    )
    return format_table(
        [
            "Partition",
            "Shards",
            "Windows",
            "Flows",
            "Flows/s",
            "Busy s",
            "Faults",
            "Retries",
            "Heals",
            "Straggled",
            "Status",
        ],
        table_rows,
        title="Fleet capture telemetry",
    )


# -- coordination ------------------------------------------------------------


def _safe_checkpoint(directory: Path) -> Optional[Checkpoint]:
    """A partition's checkpoint; ``None`` when missing *or* unreadable.

    The coordinator polls while the worker commits; an unreadable
    checkpoint is treated as "no progress yet", never as fatal — the
    worker's own resume path heals real damage.
    """
    try:
        return load_checkpoint(directory)
    except CaptureError:
        return None


@dataclass
class _LiveWorker:
    process: "multiprocessing.process.BaseProcess"
    spec: PartitionSpec
    last_progress: float
    last_change: float


class _FleetPublisher:
    """Publishes the coordinator's merged partial state to a serve hub.

    Every partition's committed prefix is itself consistent (its
    checkpoint digest covers it); merging the loadable, digest-verified
    prefixes gives the fleet-level snapshot the live server renders.
    Publication is cheap relative to the capture but not free (it
    loads and merges every partition rollup), so it is rate-limited and
    only fires when the fleet-wide committed window count moves.
    """

    def __init__(
        self,
        hub: "SnapshotHub",
        plan: FleetPlan,
        fleet_dir: Path,
        min_interval_s: float = 0.25,
    ) -> None:
        self.hub = hub
        self.plan = plan
        self.fleet_dir = fleet_dir
        self.min_interval_s = min_interval_s
        self._last_windows = -1
        self._last_time = 0.0

    def maybe_publish(self, states: List[PartitionState]) -> None:
        from repro.serve.snapshot import RollupSnapshot

        total_done = sum(state.windows_done for state in states)
        now = time.monotonic()
        if total_done == self._last_windows:
            return
        if now - self._last_time < self.min_interval_s and total_done > 0:
            return
        merged: Optional[StreamRollup] = None
        windows_covered = 0
        for spec in self.plan.partitions:
            directory = partition_dir(self.fleet_dir, spec)
            checkpoint = _safe_checkpoint(directory)
            if checkpoint is None or checkpoint.windows_done <= 0:
                continue
            try:
                rollup = StreamRollup.load(directory / "rollup.npz")
            except (CaptureError, FileNotFoundError):
                continue
            if rollup.state_digest() != checkpoint.rollup_digest:
                continue  # mid-commit: skip this poll, catch it next tick
            windows_covered += checkpoint.windows_done
            merged = rollup if merged is None else merged.merge(rollup)
        if merged is None:
            return
        self._last_windows = total_done
        self._last_time = now
        self.hub.publish(
            RollupSnapshot(
                rollup=merged,
                digest=merged.state_digest(),
                capture_key=self.plan.base_capture_key,
                windows_done=windows_covered,
                n_windows=self.plan.n_windows * self.plan.n_partitions,
            )
        )

    def publish_final(self, rollup: StreamRollup, digest: str) -> None:
        """The completed, merged capture — digest equals the merge
        artifact's (and the single-process stream's)."""
        from repro.serve.snapshot import RollupSnapshot

        total = self.plan.n_windows * self.plan.n_partitions
        self.hub.publish(
            RollupSnapshot(
                rollup=rollup.copy(),
                digest=digest,
                capture_key=self.plan.base_capture_key,
                windows_done=total,
                n_windows=total,
            )
        )


def run_fleet_capture(
    scenario: "Scenario",
    fleet_dir: Union[str, Path],
    partitions: Optional[int] = None,
    max_parallel: Optional[int] = None,
    straggler_timeout_s: Optional[float] = None,
    merge_tree: str = "balanced",
    merge_seed: Optional[int] = None,
    resume: bool = False,
    faults: Optional[FaultPlan] = None,
    on_event: Optional[Callable[[str], None]] = None,
    poll_interval_s: float = 0.05,
    snapshot_hub: Optional["SnapshotHub"] = None,
) -> FleetResult:
    """Run (or resume) a distributed fleet capture into ``fleet_dir``.

    The explicit keyword arguments override the scenario's ``fleet``
    section. ``faults`` (or the scenario's ``faults`` section) arms the
    chaos plan: the coordinator honours ``fleet:*`` kill-points and IO
    faults on its manifest writes; each worker receives the plan scoped
    to its own fault domain (see
    :func:`repro.fleet.worker.partition_fault_plan`). ``on_event``
    observes one-line progress strings.

    The merged rollup's ``state_digest()`` is bit-identical to a
    single-process ``repro stream`` of the same scenario — for any
    partition count, any ``max_parallel``, any merge-tree shape, and
    across worker crashes and heals.

    ``snapshot_hub`` (a :class:`repro.serve.SnapshotHub`) receives the
    coordinator's merged *partial* state as partitions commit windows
    — each publication merges the digest-verified committed prefixes —
    and the final merged rollup on completion, so ``repro fleet
    --serve-port`` serves the fleet exactly like a live stream.
    """
    fleet_dir = Path(fleet_dir)
    if merge_tree not in MERGE_TREE_SHAPES:
        raise ValueError(
            f"unknown merge tree {merge_tree!r} "
            f"(known: {', '.join(MERGE_TREE_SHAPES)})"
        )
    max_parallel = (
        max_parallel if max_parallel is not None else scenario.fleet.max_parallel
    )
    if max_parallel < 1:
        raise ValueError(f"max_parallel must be >= 1 (got {max_parallel})")
    timeout = (
        straggler_timeout_s
        if straggler_timeout_s is not None
        else scenario.fleet.straggler_timeout_s
    )
    if timeout <= 0:
        raise ValueError(f"straggler_timeout_s must be > 0 (got {timeout})")
    max_heals = scenario.fleet.max_heals
    fault_plan = faults if faults is not None else scenario.fault_plan()
    injector = resolve_injector(fault_plan)
    injector.kill_point("fleet:init")
    plan = plan_partitions(scenario, partitions)
    emit = on_event if on_event is not None else (lambda _line: None)

    manifest = load_fleet_manifest(fleet_dir)
    if manifest is not None:
        if not resume:
            raise FileExistsError(
                f"{fleet_dir} already holds a fleet capture; pass resume=True "
                "to continue it or choose a fresh directory"
            )
        if manifest["scenario_digest"] != plan.scenario_digest:
            raise ValueError(
                "fleet directory belongs to a different scenario "
                f"(digest {manifest['scenario_digest']} != "
                f"{plan.scenario_digest})"
            )
        if manifest["n_partitions"] != plan.n_partitions:
            raise ValueError(
                "fleet directory was planned with "
                f"{manifest['n_partitions']} partitions, not "
                f"{plan.n_partitions} — partition counts cannot change "
                "mid-capture"
            )
    elif resume:
        raise FileNotFoundError(f"nothing to resume: no manifest in {fleet_dir}")
    fleet_dir.mkdir(parents=True, exist_ok=True)
    (fleet_dir / PARTITIONS_DIR).mkdir(exist_ok=True)

    # Disk is the authority: partition state is recomputed from each
    # partition's checkpoint, never trusted from a possibly-stale
    # manifest (the coordinator itself is in the crash matrix).
    states: List[PartitionState] = []
    by_index = {
        row["index"]: row for row in (manifest or {}).get("partitions", [])
    }
    for spec in plan.partitions:
        checkpoint = _safe_checkpoint(partition_dir(fleet_dir, spec))
        done = checkpoint is not None and checkpoint.complete
        previous = by_index.get(spec.index, {})
        states.append(
            PartitionState(
                index=spec.index,
                status="done" if done else "pending",
                attempts=previous.get("attempts", 0),
                heals=previous.get("heals", 0),
                straggler_kills=previous.get("straggler_kills", 0),
                windows_done=(
                    checkpoint.windows_done if checkpoint is not None else 0
                ),
                n_windows=plan.n_windows,
            )
        )
    _write_manifest(fleet_dir, plan, states, "running", merge_tree, injector)
    injector.kill_point("fleet:planned")

    publisher: Optional[_FleetPublisher] = None
    if snapshot_hub is not None:
        publisher = _FleetPublisher(
            snapshot_hub, plan, fleet_dir,
            min_interval_s=scenario.serve.publish_interval_s,
        )
        publisher.maybe_publish(states)  # resumed prefixes serve at once

    merged_path = fleet_dir / MERGED_ROLLUP
    if (
        resume
        and manifest is not None
        and manifest.get("status") == "complete"
        and merged_path.exists()
        and all(state.status == "done" for state in states)
    ):
        rollup = StreamRollup.load(merged_path)
        if rollup.state_digest() == manifest.get("merged_digest"):
            if publisher is not None:
                publisher.publish_final(rollup, rollup.state_digest())
            rows = fleet_telemetry_rows(plan, states, fleet_dir)
            _write_manifest(
                fleet_dir, plan, states, "complete", merge_tree, injector,
                merged_digest=rollup.state_digest(),
            )
            return FleetResult(
                fleet_dir=fleet_dir,
                plan=plan,
                rollup=rollup,
                digest=rollup.state_digest(),
                states=states,
                merged_path=merged_path,
                telemetry_rows=rows,
                fault_stats=injector.stats,
            )

    pending: List[PartitionSpec] = [
        spec
        for spec, state in zip(plan.partitions, states)
        if state.status != "done"
    ]
    can_fork = "fork" in multiprocessing.get_all_start_methods()
    if can_fork:
        _dispatch_forked(
            scenario, plan, states, pending, fleet_dir,
            max_parallel, timeout, max_heals, poll_interval_s,
            injector, fault_plan, merge_tree, emit, publisher,
        )
    else:  # pragma: no cover - platforms without fork
        # Sequential in-process fallback: same bytes, no crash
        # isolation — worker kill-points are stripped (heal-mode plan)
        # because a SIGKILL here would take down the coordinator.
        for spec in pending:
            state = states[spec.index]
            state.status, state.attempts = "running", state.attempts + 1
            result = run_partition(
                scenario, spec, partition_dir(fleet_dir, spec), heal=True,
                faults=fault_plan,
            )
            state.status = "done"
            state.windows_done = result.checkpoint.windows_done
            if publisher is not None:
                publisher.maybe_publish(states)
            _write_manifest(
                fleet_dir, plan, states, "running", merge_tree, injector
            )
            injector.kill_point(f"fleet:{spec.name}:done")

    injector.kill_point("fleet:merge")
    tree = plan_merge_tree(plan.n_partitions, merge_tree, seed=merge_seed)
    emit(f"merging {plan.n_partitions} partitions: {tree.shape()}")
    rollup = merge_partition_captures(
        [partition_dir(fleet_dir, spec) for spec in plan.partitions],
        tree=tree,
    )
    rollup.save(merged_path, injector=injector)
    digest = rollup.state_digest()
    if publisher is not None:
        publisher.publish_final(rollup, digest)
    rows = fleet_telemetry_rows(plan, states, fleet_dir)
    atomic_write_bytes(
        fleet_dir / FLEET_TELEMETRY,
        lambda h: h.write(json.dumps(rows, indent=2).encode()),
        injector=injector,
        op="fleet.telemetry",
    )
    _write_manifest(
        fleet_dir, plan, states, "complete", merge_tree, injector,
        merged_digest=digest,
    )
    injector.kill_point("fleet:done")
    return FleetResult(
        fleet_dir=fleet_dir,
        plan=plan,
        rollup=rollup,
        digest=digest,
        states=states,
        merged_path=merged_path,
        telemetry_rows=rows,
        fault_stats=injector.stats,
    )


def _dispatch_forked(
    scenario: "Scenario",
    plan: FleetPlan,
    states: List[PartitionState],
    pending: List[PartitionSpec],
    fleet_dir: Path,
    max_parallel: int,
    timeout: float,
    max_heals: int,
    poll_interval_s: float,
    injector: FaultInjector,
    fault_plan: Optional[FaultPlan],
    merge_tree: str,
    emit: Callable[[str], None],
    publisher: Optional["_FleetPublisher"] = None,
) -> None:
    """The bounded worker pool: spawn, poll progress, reap, heal."""
    context = multiprocessing.get_context("fork")
    queue: List[PartitionSpec] = list(pending)
    live: Dict[int, _LiveWorker] = {}
    try:
        while queue or live:
            while queue and len(live) < max_parallel:
                spec = queue.pop(0)
                state = states[spec.index]
                heal = state.heals > 0
                process = context.Process(
                    target=partition_process_entry,
                    args=(
                        scenario, spec, partition_dir(fleet_dir, spec),
                        heal, fault_plan,
                    ),
                    name=f"fleet-{spec.name}",
                )
                process.start()
                state.status = "running"
                state.attempts += 1
                now = time.monotonic()
                checkpoint = _safe_checkpoint(partition_dir(fleet_dir, spec))
                live[spec.index] = _LiveWorker(
                    process=process,
                    spec=spec,
                    last_progress=(
                        checkpoint.progress() if checkpoint is not None else 0.0
                    ),
                    last_change=now,
                )
                _write_manifest(
                    fleet_dir, plan, states, "running", merge_tree, injector
                )
                emit(
                    f"{spec.name}: {'healing' if heal else 'started'} "
                    f"(attempt {state.attempts}, shards "
                    f"{spec.shard_lo}-{spec.shard_hi - 1})"
                )
            time.sleep(poll_interval_s)
            now = time.monotonic()
            for index in list(live):
                worker = live[index]
                spec, state = worker.spec, states[index]
                directory = partition_dir(fleet_dir, spec)
                checkpoint = _safe_checkpoint(directory)
                progress = (
                    checkpoint.progress() if checkpoint is not None else 0.0
                )
                if checkpoint is not None:
                    state.windows_done = checkpoint.windows_done
                if progress > worker.last_progress:
                    worker.last_progress = progress
                    worker.last_change = now
                if worker.process.is_alive():
                    if now - worker.last_change > timeout:
                        # Stalled past the deadline: reap it like a
                        # crash — the next loop iteration heals it.
                        os.kill(worker.process.pid, signal.SIGKILL)
                        state.straggler_kills += 1
                        emit(
                            f"{spec.name}: no progress for {timeout:.1f} s — "
                            "killed as straggler"
                        )
                        worker.process.join()
                    else:
                        continue
                worker.process.join()
                exitcode = worker.process.exitcode
                del live[index]
                checkpoint = _safe_checkpoint(directory)
                if (
                    exitcode == 0
                    and checkpoint is not None
                    and checkpoint.complete
                ):
                    state.status = "done"
                    state.windows_done = checkpoint.windows_done
                    _write_manifest(
                        fleet_dir, plan, states, "running", merge_tree, injector
                    )
                    emit(
                        f"{spec.name}: done "
                        f"({checkpoint.windows_done} windows, "
                        f"{state.heals} heals)"
                    )
                    injector.kill_point(f"fleet:{spec.name}:done")
                    continue
                if state.heals >= max_heals:
                    state.status = "failed"
                    _write_manifest(
                        fleet_dir, plan, states, "failed", merge_tree, injector
                    )
                    raise CaptureError(
                        f"partition {spec.name} failed after {state.heals} "
                        f"heals (last exit code {exitcode}); fleet aborted — "
                        "fix the cause and rerun with resume=True"
                    )
                state.heals += 1
                state.status = "healing"
                queue.insert(0, spec)
                _write_manifest(
                    fleet_dir, plan, states, "running", merge_tree, injector
                )
                emit(
                    f"{spec.name}: worker died (exit {exitcode}) — healing "
                    f"via resume ({state.heals}/{max_heals})"
                )
            if publisher is not None:
                # Serve whatever prefix the partitions have committed so
                # far; the publisher skips mid-commit partition states.
                publisher.maybe_publish(states)
    finally:
        for worker in live.values():  # abort path: no orphans
            if worker.process.is_alive():
                worker.process.terminate()
            worker.process.join()
