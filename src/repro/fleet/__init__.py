"""Distributed multi-process capture: partition, dispatch, heal, merge.

The paper's probe watches an entire subscriber population from one
vantage; scaling the reproduction toward millions of subscribers
(ROADMAP north star) splits the capture across a fleet of worker
processes and reduces their outputs. The package is four small layers:

* :mod:`repro.fleet.plan` — deterministic partitioning of a scenario's
  shard plan into disjoint contiguous slices;
* :mod:`repro.fleet.worker` — one partition as an ordinary
  checkpointed stream capture with a scoped fault domain;
* :mod:`repro.fleet.coordinator` — the bounded dispatch pool,
  straggler detection via checkpoint progress, crash healing through
  the resume path, and the ``fleet.json`` manifest;
* :mod:`repro.fleet.merge` — the binary merge tree reducing partition
  captures into one ``merged_rollup.npz``, bit-identical to the
  single-process stream digest.

See DESIGN.md §13.
"""

from repro.fleet.coordinator import (
    FLEET_MANIFEST,
    FLEET_TELEMETRY,
    MERGED_ROLLUP,
    FleetResult,
    PartitionState,
    fleet_kill_points,
    fleet_telemetry_rows,
    load_fleet_manifest,
    partition_dir,
    render_fleet_telemetry,
    run_fleet_capture,
)
from repro.fleet.merge import (
    MERGE_TREE_SHAPES,
    MergeNode,
    merge_partition_captures,
    plan_merge_tree,
)
from repro.fleet.plan import (
    FleetPlan,
    PartitionSpec,
    partition_dir_name,
    plan_partitions,
)
from repro.fleet.worker import (
    partition_fault_plan,
    partition_kill_prefix,
    run_partition,
)

__all__ = [
    "FLEET_MANIFEST",
    "FLEET_TELEMETRY",
    "MERGED_ROLLUP",
    "MERGE_TREE_SHAPES",
    "FleetPlan",
    "FleetResult",
    "MergeNode",
    "PartitionSpec",
    "PartitionState",
    "fleet_kill_points",
    "fleet_telemetry_rows",
    "load_fleet_manifest",
    "merge_partition_captures",
    "partition_dir",
    "partition_dir_name",
    "partition_fault_plan",
    "partition_kill_prefix",
    "plan_merge_tree",
    "plan_partitions",
    "render_fleet_telemetry",
    "run_fleet_capture",
]
