"""The fleet worker: one partition, executed as a normal stream capture.

A worker owns exactly one :class:`~repro.fleet.plan.PartitionSpec` and
runs :func:`repro.stream.run_stream_capture` restricted to its shard
range — every PR-2/PR-5/PR-6 guarantee (atomic commits, named
kill-points, checkpoint/resume bit-identity, pipelined generation)
applies unchanged inside the partition. The only fleet-specific logic
here is fault-domain scoping: which parts of a fleet-wide chaos plan a
given worker executes, and how a *heal* attempt differs from a first
attempt.

Kill-point naming: a plan entry ``p002:stream:w1:spilled`` targets
partition 2's worker (the prefix is stripped before arming); an
un-prefixed non-``fleet:`` entry like ``stream:w0:committed`` arms in
*every* worker; ``fleet:*`` entries belong to the coordinator and are
never armed in workers. Heal attempts strip ``kill_at`` entirely — the
same discipline as the crash-matrix's clean resume — so a healed
partition always makes progress instead of dying at the same point
forever.
"""

from __future__ import annotations

import dataclasses
import re
from pathlib import Path
from typing import TYPE_CHECKING, Callable, Optional, Union

from repro.faults import FaultPlan
from repro.fleet.plan import PartitionSpec
from repro.parallel import resolve_workers
from repro.stream.checkpoint import WindowTelemetry, load_checkpoint
from repro.stream.producer import StreamResult, run_stream_capture

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from repro.scenario import Scenario


def partition_kill_prefix(index: int) -> str:
    """The ``kill_at`` prefix targeting partition ``index``'s worker."""
    return f"p{index:03d}:"


#: A kill-point targeted at *some* partition (mine or a sibling's).
_TARGETED_KILL = re.compile(r"^p\d{3}:")


def partition_fault_plan(
    plan: Optional[FaultPlan], partition: PartitionSpec, heal: bool = False
) -> Optional[FaultPlan]:
    """Scope a fleet-wide chaos plan to one partition's fault domain.

    The worker's plan is reseeded with the partition's own
    ``fault_seed`` (independent fault streams per worker) and its
    ``kill_at`` reduced to the points this worker should honour. On a
    heal attempt every kill-point is dropped so the resume is clean.
    """
    if plan is None:
        return None
    prefix = partition_kill_prefix(partition.index)
    kill_at = []
    if not heal:
        for name in plan.kill_at:
            if name.startswith(prefix):
                kill_at.append(name[len(prefix):])
            elif not _TARGETED_KILL.match(name) and not name.startswith("fleet:"):
                kill_at.append(name)
    return dataclasses.replace(
        plan, seed=partition.fault_seed, kill_at=tuple(kill_at)
    )


def run_partition(
    scenario: "Scenario",
    partition: PartitionSpec,
    directory: Union[str, Path],
    heal: bool = False,
    faults: Optional[FaultPlan] = None,
    on_window: Optional[Callable[[WindowTelemetry], None]] = None,
    max_windows: Optional[int] = None,
) -> StreamResult:
    """Run (or continue) one partition's capture into ``directory``.

    Resume is automatic: a directory with a committed checkpoint is
    continued, a fresh one is initialized — the coordinator respawns
    crashed or straggling workers through this same entry point.

    Nested-parallelism sizing: with ``execution.workers`` on automatic
    (``0``), the partition's shard pool gets
    ``max(1, cores // fleet.max_parallel)`` workers so a full fleet of
    siblings shares the affinity set instead of each claiming all of it.
    """
    config = scenario.stream_config()
    workers = resolve_workers(
        scenario.execution.workers, slots=scenario.fleet.max_parallel
    )
    config.workload = dataclasses.replace(config.workload, n_workers=workers)
    plan = faults if faults is not None else scenario.fault_plan()
    config.faults = partition_fault_plan(plan, partition, heal=heal)
    resume = load_checkpoint(directory) is not None
    return run_stream_capture(
        config,
        directory,
        resume=resume,
        max_windows=max_windows,
        on_window=on_window,
        shard_range=partition.shard_range,
    )


def partition_process_entry(
    scenario: "Scenario",
    partition: PartitionSpec,
    directory: Union[str, Path],
    heal: bool = False,
    faults: Optional[FaultPlan] = None,
) -> None:
    """``multiprocessing.Process`` target for one worker subprocess.

    Runs in a forked child: a normal return exits 0, an exception
    prints its traceback and exits nonzero, and an armed kill-point
    SIGKILLs the child — all three surface to the coordinator as the
    process exit code. ``faults`` is the *fleet-wide* plan; it is
    scoped to this partition's fault domain inside
    :func:`run_partition`.
    """
    run_partition(scenario, partition, directory, heal=heal, faults=faults)
