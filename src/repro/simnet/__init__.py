"""A compact discrete-event simulation engine.

Used by :mod:`repro.satcom.network` to run packet-level simulations of
the SatCom access network. The engine is deliberately minimal: a binary
heap of timestamped callbacks plus link models with transmission,
queueing and propagation delay.
"""

from repro.simnet.engine import Event, Simulator
from repro.simnet.link import Link, LinkStats

__all__ = ["Event", "Simulator", "Link", "LinkStats"]
