"""Point-to-point link model with rate, queue and propagation delay.

A :class:`Link` serializes payloads at ``rate_bps``, holds them in a
FIFO drop-tail queue bounded by ``queue_bytes``, and delivers them
``prop_delay_s`` after transmission completes. An optional per-packet
``extra_delay_fn`` lets callers inject stochastic delays (MAC access,
ARQ retransmissions) without subclassing.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Optional

from repro.simnet.engine import Simulator


@dataclass
class LinkStats:
    """Counters accumulated by a link over its lifetime."""

    packets_sent: int = 0
    packets_dropped: int = 0
    bytes_sent: int = 0
    bytes_dropped: int = 0
    busy_time_s: float = 0.0
    queue_delay_total_s: float = 0.0

    def mean_queue_delay_s(self) -> float:
        """Average queueing delay over delivered packets."""
        if self.packets_sent == 0:
            return 0.0
        return self.queue_delay_total_s / self.packets_sent


class Link:
    """Unidirectional link delivering opaque payloads to a callback.

    Parameters
    ----------
    sim:
        The simulator driving virtual time.
    rate_bps:
        Transmission rate in bits per second. ``None`` means infinite
        (zero serialization delay).
    prop_delay_s:
        One-way propagation delay applied after serialization.
    queue_bytes:
        Drop-tail buffer size. Packets arriving when ``backlog`` exceeds
        this are dropped.
    extra_delay_fn:
        Optional callable ``(size_bytes) -> seconds`` sampled per packet
        and added between dequeue and delivery (models MAC/ARQ delays).
    preserve_order:
        When True (default) deliveries never overtake each other even if
        a later packet samples a smaller extra delay — the PEP tunnel
        and the data-link ARQ provide reliable *in-order* service
        (Section 2.1).
    loss_probability:
        Per-packet random drop probability (backbone loss on the ground
        segment). Requires ``rng`` when non-zero.
    """

    def __init__(
        self,
        sim: Simulator,
        rate_bps: Optional[float] = None,
        prop_delay_s: float = 0.0,
        queue_bytes: int = 1_000_000,
        name: str = "link",
        extra_delay_fn: Optional[Callable[[int], float]] = None,
        preserve_order: bool = True,
        loss_probability: float = 0.0,
        rng=None,
    ) -> None:
        if rate_bps is not None and rate_bps <= 0:
            raise ValueError("rate_bps must be positive or None")
        if prop_delay_s < 0:
            raise ValueError("prop_delay_s must be non-negative")
        self.sim = sim
        self.rate_bps = rate_bps
        self.prop_delay_s = prop_delay_s
        self.queue_bytes = queue_bytes
        self.name = name
        if not 0.0 <= loss_probability < 1.0:
            raise ValueError("loss_probability must be in [0, 1)")
        if loss_probability > 0.0 and rng is None:
            raise ValueError("loss_probability requires an rng")
        self.extra_delay_fn = extra_delay_fn
        self.preserve_order = preserve_order
        self.loss_probability = loss_probability
        self.rng = rng
        self.stats = LinkStats()
        self._backlog_bytes = 0
        self._busy_until = 0.0
        self._last_arrival = 0.0

    @property
    def backlog_bytes(self) -> int:
        """Bytes currently queued or in transmission."""
        return self._backlog_bytes

    def serialization_delay_s(self, size_bytes: int) -> float:
        """Time to clock ``size_bytes`` onto the wire."""
        if self.rate_bps is None:
            return 0.0
        return size_bytes * 8.0 / self.rate_bps

    def send(self, payload: object, size_bytes: int, deliver: Callable[[object], None]) -> bool:
        """Enqueue ``payload`` for delivery; returns False if dropped.

        ``deliver(payload)`` is invoked when the last bit arrives at the
        far end.
        """
        if size_bytes < 0:
            raise ValueError("size_bytes must be non-negative")
        if self._backlog_bytes + size_bytes > self.queue_bytes:
            self.stats.packets_dropped += 1
            self.stats.bytes_dropped += size_bytes
            return False
        if self.loss_probability > 0.0 and self.rng.random() < self.loss_probability:
            self.stats.packets_dropped += 1
            self.stats.bytes_dropped += size_bytes
            return False

        now = self.sim.now
        start_tx = max(now, self._busy_until)
        tx_delay = self.serialization_delay_s(size_bytes)
        self._busy_until = start_tx + tx_delay
        self._backlog_bytes += size_bytes

        queue_delay = start_tx - now
        self.stats.queue_delay_total_s += queue_delay
        self.stats.busy_time_s += tx_delay

        extra = self.extra_delay_fn(size_bytes) if self.extra_delay_fn else 0.0
        arrival = self._busy_until + self.prop_delay_s + extra
        if self.preserve_order:
            arrival = max(arrival, self._last_arrival)
            self._last_arrival = arrival
        self.sim.at(arrival, self._deliver, payload, size_bytes, deliver)
        return True

    def _deliver(self, payload: object, size_bytes: int, deliver: Callable[[object], None]) -> None:
        self._backlog_bytes -= size_bytes
        self.stats.packets_sent += 1
        self.stats.bytes_sent += size_bytes
        deliver(payload)

    def utilization(self, elapsed_s: float) -> float:
        """Fraction of ``elapsed_s`` the transmitter was busy."""
        if elapsed_s <= 0:
            return 0.0
        return min(1.0, self.stats.busy_time_s / elapsed_s)
