"""Discrete-event scheduler.

The :class:`Simulator` keeps a priority queue of ``(time, seq, event)``
tuples and executes events in timestamp order. Ties are broken by
insertion order so simulations are fully deterministic.

The queue holds plain tuples rather than rich-comparing :class:`Event`
objects: every heap sift compares ``(float, int)`` pairs directly
instead of dispatching through a generated dataclass ``__lt__``, and
``Event`` itself is a ``__slots__`` class — the packet path schedules
one event per packet per hop, so allocation and comparison cost here
is a per-packet tax.
"""

from __future__ import annotations

import heapq
import itertools
from typing import Any, Callable, Optional


class Event:
    """A scheduled callback handle (cancellable).

    Ordering lives in the simulator's ``(time, seq)`` heap tuples;
    ``seq`` is unique per simulator so ties resolve by scheduling
    order and comparison never reaches the event object.
    """

    __slots__ = ("time", "seq", "callback", "args", "cancelled")

    def __init__(
        self,
        time: float,
        seq: int,
        callback: Callable[..., None],
        args: tuple = (),
        cancelled: bool = False,
    ) -> None:
        self.time = time
        self.seq = seq
        self.callback = callback
        self.args = args
        self.cancelled = cancelled

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        state = " cancelled" if self.cancelled else ""
        return f"Event(time={self.time!r}, seq={self.seq!r}{state})"

    def cancel(self) -> None:
        """Mark the event so the simulator skips it when it is popped."""
        self.cancelled = True


class Simulator:
    """Event loop with virtual time.

    >>> sim = Simulator()
    >>> out = []
    >>> _ = sim.schedule(1.0, out.append, "a")
    >>> _ = sim.schedule(0.5, out.append, "b")
    >>> sim.run()
    >>> out
    ['b', 'a']
    """

    def __init__(self, start_time: float = 0.0) -> None:
        self._now = start_time
        self._queue: list[tuple[float, int, Event]] = []
        self._counter = itertools.count()
        self._events_processed = 0

    @property
    def now(self) -> float:
        """Current virtual time in seconds."""
        return self._now

    @property
    def events_processed(self) -> int:
        """Number of events executed so far."""
        return self._events_processed

    @property
    def pending(self) -> int:
        """Number of events still queued (including cancelled ones)."""
        return len(self._queue)

    def schedule(self, delay: float, callback: Callable[..., None], *args: Any) -> Event:
        """Schedule ``callback(*args)`` to run ``delay`` seconds from now."""
        if delay < 0:
            raise ValueError(f"cannot schedule into the past (delay={delay})")
        return self.at(self._now + delay, callback, *args)

    def at(self, time: float, callback: Callable[..., None], *args: Any) -> Event:
        """Schedule ``callback(*args)`` at absolute virtual ``time``."""
        if time < self._now:
            raise ValueError(f"cannot schedule into the past ({time} < {self._now})")
        seq = next(self._counter)
        event = Event(time, seq, callback, args)
        heapq.heappush(self._queue, (time, seq, event))
        return event

    def schedule_batch(
        self, tasks: "list[tuple[float, Callable[..., None], tuple]]"
    ) -> "list[Event]":
        """Bulk form of :meth:`schedule`: ``(delay, callback, args)``
        rows, returned as events in input order."""
        now = self._now
        return self.at_batch(
            [(now + delay, callback, args) for delay, callback, args in tasks]
        )

    def at_batch(
        self, tasks: "list[tuple[float, Callable[..., None], tuple]]"
    ) -> "list[Event]":
        """Bulk form of :meth:`at`: schedule many ``(time, callback,
        args)`` rows with one heapify instead of a sift per push.

        Sequence numbers are drawn in input order from the same counter
        as :meth:`at`, so the pop order (and therefore the simulation)
        is identical to scheduling the rows one by one — this is a
        throughput optimisation for the pre-scheduled workloads (e.g.
        Poisson arrival trains), not a semantic change. Validation runs
        before anything is queued, so a bad row leaves the heap intact.
        """
        now = self._now
        for time, _callback, _args in tasks:
            if time < now:
                raise ValueError(f"cannot schedule into the past ({time} < {now})")
        queue = self._queue
        events = []
        for time, callback, args in tasks:
            seq = next(self._counter)
            event = Event(time, seq, callback, args)
            queue.append((time, seq, event))
            events.append(event)
        heapq.heapify(queue)
        return events

    def step(self) -> bool:
        """Execute the next event. Returns False if the queue is empty."""
        queue = self._queue
        while queue:
            time, _seq, event = heapq.heappop(queue)
            if event.cancelled:
                continue
            self._now = time
            event.callback(*event.args)
            self._events_processed += 1
            return True
        return False

    def run(self, until: Optional[float] = None, max_events: Optional[int] = None) -> None:
        """Run events until the queue drains, ``until`` is reached, or
        ``max_events`` have been executed.

        When ``until`` is given, virtual time is advanced to exactly
        ``until`` even if the queue drains earlier.
        """
        executed = 0
        queue = self._queue
        while queue:
            if max_events is not None and executed >= max_events:
                return
            head_time, _seq, head_event = queue[0]
            if head_event.cancelled:
                heapq.heappop(queue)
                continue
            if until is not None and head_time > until:
                break
            if not self.step():
                break
            executed += 1
        if until is not None and until > self._now:
            self._now = until
