"""Discrete-event scheduler.

The :class:`Simulator` keeps a priority queue of :class:`Event` objects
and executes them in timestamp order. Ties are broken by insertion order
so simulations are fully deterministic.
"""

from __future__ import annotations

import heapq
import itertools
from dataclasses import dataclass, field
from typing import Any, Callable, Optional


@dataclass(order=True)
class Event:
    """A scheduled callback.

    Events compare by ``(time, seq)`` so that simultaneous events run in
    the order they were scheduled.
    """

    time: float
    seq: int
    callback: Callable[..., None] = field(compare=False)
    args: tuple = field(compare=False, default=())
    cancelled: bool = field(compare=False, default=False)

    def cancel(self) -> None:
        """Mark the event so the simulator skips it when it is popped."""
        self.cancelled = True


class Simulator:
    """Event loop with virtual time.

    >>> sim = Simulator()
    >>> out = []
    >>> _ = sim.schedule(1.0, out.append, "a")
    >>> _ = sim.schedule(0.5, out.append, "b")
    >>> sim.run()
    >>> out
    ['b', 'a']
    """

    def __init__(self, start_time: float = 0.0) -> None:
        self._now = start_time
        self._queue: list[Event] = []
        self._counter = itertools.count()
        self._events_processed = 0

    @property
    def now(self) -> float:
        """Current virtual time in seconds."""
        return self._now

    @property
    def events_processed(self) -> int:
        """Number of events executed so far."""
        return self._events_processed

    @property
    def pending(self) -> int:
        """Number of events still queued (including cancelled ones)."""
        return len(self._queue)

    def schedule(self, delay: float, callback: Callable[..., None], *args: Any) -> Event:
        """Schedule ``callback(*args)`` to run ``delay`` seconds from now."""
        if delay < 0:
            raise ValueError(f"cannot schedule into the past (delay={delay})")
        return self.at(self._now + delay, callback, *args)

    def at(self, time: float, callback: Callable[..., None], *args: Any) -> Event:
        """Schedule ``callback(*args)`` at absolute virtual ``time``."""
        if time < self._now:
            raise ValueError(f"cannot schedule into the past ({time} < {self._now})")
        event = Event(time=time, seq=next(self._counter), callback=callback, args=args)
        heapq.heappush(self._queue, event)
        return event

    def step(self) -> bool:
        """Execute the next event. Returns False if the queue is empty."""
        while self._queue:
            event = heapq.heappop(self._queue)
            if event.cancelled:
                continue
            self._now = event.time
            event.callback(*event.args)
            self._events_processed += 1
            return True
        return False

    def run(self, until: Optional[float] = None, max_events: Optional[int] = None) -> None:
        """Run events until the queue drains, ``until`` is reached, or
        ``max_events`` have been executed.

        When ``until`` is given, virtual time is advanced to exactly
        ``until`` even if the queue drains earlier.
        """
        executed = 0
        while self._queue:
            if max_events is not None and executed >= max_events:
                return
            head = self._queue[0]
            if head.cancelled:
                heapq.heappop(self._queue)
                continue
            if until is not None and head.time > until:
                break
            if not self.step():
                break
            executed += 1
        if until is not None and until > self._now:
            self._now = until
