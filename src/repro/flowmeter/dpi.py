"""Deep packet inspection.

Classifies each flow into the protocol classes of Table 1 and extracts
the server *domain*: the SNI of TLS ClientHellos (port 443/TCP and
QUIC), the Host header of plain HTTP, and the QNAME of DNS queries
(plus response timing and resolver address). Parsing is incremental —
payload bytes are appended per packet and the reassembled stream is
re-examined, so handshake messages are timestamped by the packet that
completed them (which is what makes the TLS satellite-RTT trick work).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Dict, Optional, Set

from repro.net.flowkey import Direction
from repro.protocols import dns, http, quic, rtp, tls
from repro.flowmeter.records import L7Protocol

_MAX_REASSEMBLY_BYTES = 16 * 1024
"""DPI only needs the first flights of each flow."""


@dataclass
class DpiResult:
    """What the DPI learned about a flow so far."""

    l7: Optional[L7Protocol] = None
    domain: Optional[str] = None
    dns_qname: Optional[str] = None
    dns_query_at: Optional[float] = None
    dns_response_at: Optional[float] = None
    dns_rcode: Optional[int] = None

    @property
    def dns_response_ms(self) -> Optional[float]:
        if self.dns_query_at is None or self.dns_response_at is None:
            return None
        return (self.dns_response_at - self.dns_query_at) * 1000.0


class DpiEngine:
    """Per-flow incremental protocol identification.

    Callers feed ``on_payload`` with each packet's payload; TLS
    handshake milestones are reported through the two callbacks so the
    flow meter can drive its satellite-RTT estimator.
    """

    def __init__(
        self,
        protocol: str,
        server_port: int,
        on_server_hello: Optional[Callable[[float], None]] = None,
        on_client_key_exchange: Optional[Callable[[float], None]] = None,
    ) -> None:
        self.protocol = protocol
        self.server_port = server_port
        self.result = DpiResult()
        self._on_server_hello = on_server_hello
        self._on_client_key_exchange = on_client_key_exchange
        self._buffers: Dict[Direction, bytearray] = {
            Direction.CLIENT_TO_SERVER: bytearray(),
            Direction.SERVER_TO_CLIENT: bytearray(),
        }
        self._seen_handshake: Set[tls.HandshakeType] = set()
        self._client_ccs_seen = False
        self._tls_ruled_out = False
        self._http_ruled_out = False

    @property
    def observable_frozen(self) -> bool:
        """True once no future payload can change anything observable —
        the :class:`DpiResult` or the TLS milestone callbacks.

        A conservative, monotone predicate (once true it stays true)
        that the batch kernel uses to skip reassembly for settled
        flows; ``False`` never means "will change", only "cannot prove
        it won't". The proven-frozen cases:

        * TCP classified ``OTHER_TCP`` with both TLS and HTTP ruled
          out — every inspection branch is gated off.
        * TCP classified ``HTTPS`` with the domain extracted and both
          RTT milestones (ServerHello, ClientKeyExchange) already
          seen, provided the client→server stream is TLS-framed: new
          records can only repeat handshake types already in the seen
          set, and a TLS-looking buffer prefix keeps the HTTP branch
          unreachable forever.
        * UDP classified ``QUIC`` with the domain extracted on a
          non-DNS port — the remaining branches only re-derive the
          same classification.
        """
        result = self.result
        if self.protocol == "tcp":
            if result.l7 is L7Protocol.OTHER_TCP:
                return self._tls_ruled_out and self._http_ruled_out
            if result.l7 is L7Protocol.HTTPS:
                return (
                    result.domain is not None
                    and tls.HandshakeType.SERVER_HELLO in self._seen_handshake
                    and tls.HandshakeType.CLIENT_KEY_EXCHANGE in self._seen_handshake
                    and tls.looks_like_tls(
                        bytes(self._buffers[Direction.CLIENT_TO_SERVER][:5])
                    )
                )
            return False
        if result.l7 is L7Protocol.QUIC:
            return result.domain is not None and self.server_port != 53
        return False

    def on_payload(self, direction: Direction, payload: bytes, now: float) -> None:
        """Feed one packet's L4 payload to the engine."""
        if not payload:
            return
        if self.protocol == "udp":
            self._inspect_udp(direction, payload, now)
            return
        buffer = self._buffers[direction]
        if len(buffer) < _MAX_REASSEMBLY_BYTES:
            buffer += payload
        self._inspect_tcp(direction, now)

    # -- TCP ----------------------------------------------------------

    def _inspect_tcp(self, direction: Direction, now: float) -> None:
        buffer = bytes(self._buffers[direction])
        if not self._tls_ruled_out and tls.looks_like_tls(buffer):
            self._inspect_tls(direction, buffer, now)
            return
        if direction is Direction.CLIENT_TO_SERVER and not self._http_ruled_out:
            if http.looks_like_http(buffer):
                request = http.parse_request(buffer)
                if request is not None:
                    self.result.l7 = L7Protocol.HTTP
                    if request.host:
                        self.result.domain = request.host
                    return
            self._http_ruled_out = True
        if self.result.l7 is None:
            self._tls_ruled_out = self._tls_ruled_out or bool(buffer)
            self.result.l7 = L7Protocol.OTHER_TCP

    def _inspect_tls(self, direction: Direction, buffer: bytes, now: float) -> None:
        parsed = tls.parse_stream(buffer)
        if not parsed.records:
            return
        self.result.l7 = L7Protocol.HTTPS
        if parsed.sni and self.result.domain is None:
            self.result.domain = parsed.sni
        for msg_type in parsed.handshake_types:
            if msg_type in self._seen_handshake:
                continue
            self._seen_handshake.add(msg_type)
            if msg_type == tls.HandshakeType.SERVER_HELLO and self._on_server_hello:
                self._on_server_hello(now)
            if (
                msg_type == tls.HandshakeType.CLIENT_KEY_EXCHANGE
                and self._on_client_key_exchange
            ):
                self._on_client_key_exchange(now)
        # TLS 1.3 has no ClientKeyExchange; the paper's estimator accepts
        # the client's ChangeCipherSpec as the return milestone instead
        # ("Client Key Exchange message/Change Cipher Spec message").
        if (
            direction is Direction.CLIENT_TO_SERVER
            and not self._client_ccs_seen
            and tls.HandshakeType.CLIENT_KEY_EXCHANGE not in self._seen_handshake
            and any(
                r.content_type == tls.ContentType.CHANGE_CIPHER_SPEC
                for r in parsed.records
            )
        ):
            self._client_ccs_seen = True
            if self._on_client_key_exchange:
                self._on_client_key_exchange(now)

    # -- UDP ----------------------------------------------------------

    def _inspect_udp(self, direction: Direction, payload: bytes, now: float) -> None:
        if self.server_port == 53 and dns.looks_like_dns(payload):
            self._inspect_dns(direction, payload, now)
            return
        if quic.looks_like_quic(payload):
            self.result.l7 = L7Protocol.QUIC
            if self.result.domain is None:
                sni = quic.extract_sni(payload)
                if sni:
                    self.result.domain = sni
            return
        if rtp.looks_like_rtp(payload) and self.result.l7 in (None, L7Protocol.RTP):
            if rtp.decode(payload) is not None:
                self.result.l7 = L7Protocol.RTP
                return
        if self.result.l7 is None:
            self.result.l7 = L7Protocol.OTHER_UDP

    def _inspect_dns(self, direction: Direction, payload: bytes, now: float) -> None:
        try:
            message = dns.decode(payload)
        except ValueError:
            if self.result.l7 is None:
                self.result.l7 = L7Protocol.OTHER_UDP
            return
        self.result.l7 = L7Protocol.DNS
        if not message.is_response:
            if self.result.dns_query_at is None:
                self.result.dns_query_at = now
                self.result.dns_qname = message.qname
        else:
            if self.result.dns_response_at is None:
                self.result.dns_response_at = now
                self.result.dns_rcode = message.rcode
                if self.result.dns_qname is None:
                    self.result.dns_qname = message.qname
