"""RTT estimators.

Two estimators, matching Section 2.2:

* :class:`TcpRttEstimator` — the classic data↔ACK matcher. At the
  ground-station vantage point, a data segment toward the server and
  the ACK covering it measure the *ground RTT* (ground station →
  server → back).
* :class:`TlsHandshakeRttEstimator` — the paper's trick for the
  *satellite RTT*: the time from the ``ServerHello`` leaving the ground
  station to the ``ClientKeyExchange``/``ChangeCipherSpec`` coming back
  covers the satellite segment twice (plus the negligible home RTT),
  because the PEP relays TLS bytes end-to-end without terminating them.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Dict, List, Optional

import numpy as np

from repro.net.flowkey import Direction

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from repro.satcom.delaysource import DelaySource

_SEQ_MOD = 1 << 32


def floor_rtt_series_ms(
    delay_source: "DelaySource", country: str, t_s
) -> np.ndarray:
    """Expected satellite-RTT floor (ms) at each flow start time.

    The estimator-side companion of the delay refactor: analyses that
    compare measured handshake RTTs against the physical floor (fig8b's
    overlay, the scorecard's GEO-vs-LEO sanity band) get the same
    time-varying floor the generator used — static sources yield a
    constant series, constellation sources a moving one. Pure function
    of the timestamps; consumes no RNG.
    """
    t = np.asarray(t_s, dtype=np.float64)
    static = delay_source.rtt_model.floor_rtt_s(country)
    return (static + delay_source.floor_delta_s(country, t)) * 1000.0


def _seq_leq(a: int, b: int) -> bool:
    """a <= b in 32-bit sequence space (RFC 1323 style comparison)."""
    return ((b - a) % _SEQ_MOD) < (_SEQ_MOD >> 1)


@dataclass
class _Outstanding:
    seq_end: int
    sent_at: float


class TcpRttEstimator:
    """Per-direction data→ACK RTT sampler with Karn's rule.

    ``on_data`` records an outstanding segment; ``on_ack`` (seen in the
    opposite direction) closes every covered segment and emits one
    sample measured from the *latest* covered segment — cumulative ACKs
    therefore do not inflate samples. Retransmitted sequence ranges are
    discarded (Karn's algorithm): a retransmission removes the pending
    sample for that range.
    """

    def __init__(self) -> None:
        self._pending: Dict[Direction, List[_Outstanding]] = {
            Direction.CLIENT_TO_SERVER: [],
            Direction.SERVER_TO_CLIENT: [],
        }
        self._highest_seq: Dict[Direction, Optional[int]] = {
            Direction.CLIENT_TO_SERVER: None,
            Direction.SERVER_TO_CLIENT: None,
        }
        self.samples: Dict[Direction, List[float]] = {
            Direction.CLIENT_TO_SERVER: [],
            Direction.SERVER_TO_CLIENT: [],
        }

    def on_data(self, direction: Direction, seq: int, payload_len: int, now: float) -> None:
        """Record a data segment sent in ``direction`` at ``now``."""
        if payload_len <= 0:
            return
        seq_end = (seq + payload_len) % _SEQ_MOD
        highest = self._highest_seq[direction]
        if highest is not None and _seq_leq(seq_end, highest):
            # Retransmission (or reordering): Karn — drop any pending
            # sample overlapping this range.
            self._pending[direction] = [
                out for out in self._pending[direction] if not _seq_leq(out.seq_end, seq_end)
            ]
            return
        self._highest_seq[direction] = seq_end
        self._pending[direction].append(_Outstanding(seq_end=seq_end, sent_at=now))

    def on_ack(self, ack_direction: Direction, ack: int, now: float) -> None:
        """Process an ACK seen in ``ack_direction`` at ``now``.

        The ACK acknowledges data flowing the *opposite* way; samples
        are attributed to that data direction.
        """
        data_direction = ack_direction.flipped()
        pending = self._pending[data_direction]
        covered = [out for out in pending if _seq_leq(out.seq_end, ack)]
        if not covered:
            return
        latest = max(covered, key=lambda out: out.sent_at)
        self.samples[data_direction].append(now - latest.sent_at)
        self._pending[data_direction] = [
            out for out in pending if not _seq_leq(out.seq_end, ack)
        ]

    def ground_rtt_samples(self) -> List[float]:
        """Samples for data sent toward the server (the external path
        from the ground-station vantage point)."""
        return self.samples[Direction.CLIENT_TO_SERVER]

    def all_samples(self) -> List[float]:
        """Samples from both directions."""
        return (
            self.samples[Direction.CLIENT_TO_SERVER]
            + self.samples[Direction.SERVER_TO_CLIENT]
        )


class TlsHandshakeRttEstimator:
    """Satellite RTT from ServerHello → ClientKeyExchange timing."""

    def __init__(self) -> None:
        self._server_hello_at: Optional[float] = None
        self._estimate_s: Optional[float] = None

    def on_server_hello(self, now: float) -> None:
        """The ServerHello left the ground station toward the customer."""
        if self._server_hello_at is None:
            self._server_hello_at = now

    def on_client_key_exchange(self, now: float) -> None:
        """The ClientKeyExchange / ChangeCipherSpec came back."""
        if self._server_hello_at is not None and self._estimate_s is None:
            self._estimate_s = now - self._server_hello_at

    @property
    def estimate_s(self) -> Optional[float]:
        """The satellite-segment RTT estimate, once per flow."""
        return self._estimate_s
