"""Tstat-like passive flow monitor (paper Section 2.2).

Deployed at the ground station, after the PEP: it observes every packet
exchanged between the ground station and the Internet plus the DNS/UDP
and QUIC traffic tunneled through unchanged. Per flow it produces a
:class:`~repro.flowmeter.records.FlowRecord` with volume, timing,
ground-segment TCP RTT statistics (data↔ACK), the satellite-segment RTT
estimated from the TLS handshake (ServerHello → ClientKeyExchange), and
the server domain name from SNI / Host / DNS.
"""

from repro.flowmeter.records import FlowRecord, L7Protocol
from repro.flowmeter.rtt import TcpRttEstimator, TlsHandshakeRttEstimator
from repro.flowmeter.dpi import DpiEngine, DpiResult
from repro.flowmeter.meter import FlowMeter
from repro.flowmeter.export import read_jsonl, write_csv, write_jsonl

__all__ = [
    "FlowRecord",
    "L7Protocol",
    "TcpRttEstimator",
    "TlsHandshakeRttEstimator",
    "DpiEngine",
    "DpiResult",
    "FlowMeter",
    "read_jsonl",
    "write_csv",
    "write_jsonl",
]
