"""The flow meter facade: packets in, flow records out.

Mirrors the paper's probe: packets (already mirrored at the ground
station) are tracked per 5-tuple; each flow accumulates counters, RTT
samples and DPI annotations; records are emitted on TCP teardown or
idle timeout. Customer addresses are anonymized on export with the
prefix-preserving anonymizer (CryptoPan in the paper, Section 2.3).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

from repro.net.cryptopan import PrefixPreservingAnonymizer
from repro.net.flowkey import Direction, FiveTuple
from repro.net.packet import IPProtocol, Packet, TCPFlags
from repro.flowmeter.dpi import DpiEngine
from repro.flowmeter.records import FlowRecord, L7Protocol, rtt_stats_ms
from repro.flowmeter.rtt import TcpRttEstimator, TlsHandshakeRttEstimator

_FIRST_PKT_TIMES_KEPT = 10


@dataclass
class _FlowState:
    key: FiveTuple
    ts_start: float
    ts_end: float
    #: The server-perspective orientation of ``key``, computed once at
    #: flow creation so the per-packet lookup never rebuilds it.
    key_reversed: Optional[FiveTuple] = None
    bytes_up: int = 0
    bytes_down: int = 0
    pkts_up: int = 0
    pkts_down: int = 0
    fin_seen: Dict[Direction, bool] = field(
        default_factory=lambda: {Direction.CLIENT_TO_SERVER: False, Direction.SERVER_TO_CLIENT: False}
    )
    rst_seen: bool = False
    first_pkt_times: List[float] = field(default_factory=list)
    rtt: TcpRttEstimator = field(default_factory=TcpRttEstimator)
    tls_rtt: TlsHandshakeRttEstimator = field(default_factory=TlsHandshakeRttEstimator)
    dpi: Optional[DpiEngine] = None

    def __post_init__(self) -> None:
        if self.key_reversed is None:
            self.key_reversed = self.key.reversed()
        if self.dpi is None:
            self.dpi = DpiEngine(
                protocol="tcp" if self.key.protocol == IPProtocol.TCP else "udp",
                server_port=self.key.server_port,
                on_server_hello=self.tls_rtt.on_server_hello,
                on_client_key_exchange=self.tls_rtt.on_client_key_exchange,
            )


class FlowMeter:
    """Track flows from a packet stream and emit :class:`FlowRecord`.

    Parameters
    ----------
    anonymizer:
        Optional prefix-preserving anonymizer applied to the customer
        (client) address on record export — server addresses stay in
        the clear, as in the paper.
    idle_timeout_s:
        Flows idle longer than this are flushed by :meth:`expire`.
    engine:
        ``"python"`` (the per-packet oracle) or ``"vectorized"`` (the
        :mod:`repro.kernels.flow` batch kernel). The vectorized engine
        stages packets into batches of ``batch_size`` and drains them
        through the kernel — which falls back to the oracle for any
        batch it cannot reproduce exactly — so records, counters and
        RTT samples are identical between engines; only mid-stream
        reads of :attr:`records` may lag until the next drain point
        (:meth:`expire`, :meth:`flush_all`, :attr:`active_flows`, or a
        full batch).
    batch_size:
        Packets staged per vectorized drain; irrelevant for the python
        engine.
    """

    def __init__(
        self,
        anonymizer: Optional[PrefixPreservingAnonymizer] = None,
        idle_timeout_s: float = 120.0,
        engine: str = "python",
        batch_size: int = 512,
    ) -> None:
        from repro.kernels import resolve_engine

        self.anonymizer = anonymizer
        self.idle_timeout_s = idle_timeout_s
        self.engine = resolve_engine(engine)
        self._batch_size = max(1, int(batch_size))
        self._pending: List[Packet] = []
        self._flows: Dict[FiveTuple, _FlowState] = {}
        # both orientations of every active flow, resolved in a single
        # dict probe per packet (the paper's probe sees every packet of
        # every flow twice-directional — this is the hottest lookup)
        self._by_orientation: Dict[FiveTuple, Tuple[_FlowState, Direction]] = {}
        self.records: List[FlowRecord] = []
        self.packets_processed = 0

    @property
    def active_flows(self) -> int:
        """Number of flows currently tracked."""
        self._drain_pending()
        return len(self._flows)

    def process(self, packet: Packet) -> None:
        """Consume one mirrored packet.

        The vectorized engine stages the packet and meters it at the
        next drain point; observable results are identical to the
        per-packet path."""
        if self.engine == "vectorized":
            self._pending.append(packet)
            if len(self._pending) >= self._batch_size:
                self._drain_pending()
            return
        self._process_one(packet)

    def process_batch(self, packets: List[Packet]) -> None:
        """Consume many packets at once — identical observable state to
        calling :meth:`process` on each, in order. The vectorized
        engine drains immediately, so this is the preferred entry point
        when the caller already holds a batch."""
        if self.engine == "vectorized":
            self._pending.extend(packets)
            self._drain_pending()
            return
        for packet in packets:
            self._process_one(packet)

    #: Below this size a refused batch replays on the oracle instead of
    #: splitting further — the kernel's fixed overhead stops paying.
    _MIN_SPLIT = 32

    def _drain_pending(self) -> None:
        if not self._pending:
            return
        pending, self._pending = self._pending, []
        self._meter_batch(pending)

    def _meter_batch(self, packets: List[Packet]) -> None:
        from repro.kernels.flow import process_packet_batch

        if process_packet_batch(self, packets):
            return
        # The kernel refused (a flow finished mid-batch, or a stray-ACK
        # prefix) without mutating anything. Halve and retry: the kernel
        # is exact per sub-batch and order is preserved, so splitting
        # isolates the offending packet while the rest stays vectorized.
        if len(packets) < self._MIN_SPLIT:
            for packet in packets:
                self._process_one(packet)
            return
        mid = len(packets) // 2
        self._meter_batch(packets[:mid])
        self._meter_batch(packets[mid:])

    def _process_one(self, packet: Packet) -> None:
        self.packets_processed += 1
        lookup = self._lookup(packet)
        if lookup is None:
            return
        state, direction = lookup
        now = packet.timestamp
        state.ts_end = max(state.ts_end, now)
        if len(state.first_pkt_times) < _FIRST_PKT_TIMES_KEPT:
            state.first_pkt_times.append(now)

        if direction is Direction.CLIENT_TO_SERVER:
            state.bytes_up += packet.payload_len
            state.pkts_up += 1
        else:
            state.bytes_down += packet.payload_len
            state.pkts_down += 1

        if packet.protocol == IPProtocol.TCP:
            self._process_tcp(state, direction, packet, now)
        if packet.payload:
            state.dpi.on_payload(direction, packet.payload, now)

        if packet.protocol == IPProtocol.TCP and self._flow_finished(state):
            self._emit(state)

    def _process_tcp(
        self, state: _FlowState, direction: Direction, packet: Packet, now: float
    ) -> None:
        if packet.payload_len > 0:
            state.rtt.on_data(direction, packet.seq, packet.payload_len, now)
        if packet.has_flag(TCPFlags.ACK):
            state.rtt.on_ack(direction, packet.ack, now)
        if packet.has_flag(TCPFlags.FIN):
            state.fin_seen[direction] = True
        if packet.has_flag(TCPFlags.RST):
            state.rst_seen = True

    def _lookup(self, packet: Packet):
        forward, _ = FiveTuple.from_packet(packet)
        hit = self._by_orientation.get(forward)
        if hit is not None:
            return hit
        if packet.protocol == IPProtocol.TCP and not (
            packet.has_flag(TCPFlags.SYN) or packet.payload_len > 0
        ):
            # Stray teardown ACK of an already-exported flow: Tstat only
            # opens TCP flows on SYN or data.
            return None
        state = _FlowState(key=forward, ts_start=packet.timestamp, ts_end=packet.timestamp)
        self._flows[forward] = state
        self._by_orientation[forward] = (state, Direction.CLIENT_TO_SERVER)
        if state.key_reversed != forward:  # guard pathological symmetric keys
            self._by_orientation[state.key_reversed] = (
                state,
                Direction.SERVER_TO_CLIENT,
            )
        return state, Direction.CLIENT_TO_SERVER

    @staticmethod
    def _flow_finished(state: _FlowState) -> bool:
        return state.rst_seen or all(state.fin_seen.values())

    def _emit(self, state: _FlowState) -> None:
        self._flows.pop(state.key, None)
        self._by_orientation.pop(state.key, None)
        self._by_orientation.pop(state.key_reversed, None)
        self.records.append(self._to_record(state))

    def _to_record(self, state: _FlowState) -> FlowRecord:
        result = state.dpi.result
        l7 = result.l7
        if l7 is None:
            l7 = (
                L7Protocol.OTHER_TCP
                if state.key.protocol == IPProtocol.TCP
                else L7Protocol.OTHER_UDP
            )
        client_ip = state.key.client_ip
        if self.anonymizer is not None:
            client_ip = self.anonymizer.anonymize_int(client_ip)
        samples = state.rtt.ground_rtt_samples()
        stats = rtt_stats_ms(samples)
        sat_rtt = state.tls_rtt.estimate_s
        dns_resolver_ip = state.key.server_ip if l7 is L7Protocol.DNS else None
        return FlowRecord(
            client_ip=client_ip,
            server_ip=state.key.server_ip,
            client_port=state.key.client_port,
            server_port=state.key.server_port,
            l7=l7,
            ts_start=state.ts_start,
            ts_end=state.ts_end,
            bytes_up=state.bytes_up,
            bytes_down=state.bytes_down,
            pkts_up=state.pkts_up,
            pkts_down=state.pkts_down,
            sat_rtt_ms=None if sat_rtt is None else sat_rtt * 1000.0,
            domain=result.domain,
            dns_qname=result.dns_qname,
            dns_resolver_ip=dns_resolver_ip,
            dns_response_ms=result.dns_response_ms,
            dns_rcode=result.dns_rcode,
            first_pkt_times=list(state.first_pkt_times),
            **stats,
        )

    def expire(self, now: float) -> int:
        """Flush flows idle since before ``now - idle_timeout_s``."""
        self._drain_pending()
        stale = [
            state
            for state in self._flows.values()
            if now - state.ts_end >= self.idle_timeout_s
        ]
        for state in stale:
            self._emit(state)
        return len(stale)

    def flush_all(self) -> None:
        """Emit every tracked flow (end of capture)."""
        self._drain_pending()
        for state in list(self._flows.values()):
            self._emit(state)
