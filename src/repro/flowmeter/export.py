"""Flow-log I/O.

The paper's probe writes flow summaries that are shipped daily to a
Hadoop cluster. We provide JSONL (lossless round trip) and CSV (for
eyeballing / external tools).
"""

from __future__ import annotations

import csv
import json
from pathlib import Path
from typing import Iterable, List, Union

from repro.flowmeter.records import FlowRecord, L7Protocol

_FIELDS = [
    "client_ip",
    "server_ip",
    "client_port",
    "server_port",
    "l7",
    "ts_start",
    "ts_end",
    "bytes_up",
    "bytes_down",
    "pkts_up",
    "pkts_down",
    "rtt_samples",
    "rtt_min_ms",
    "rtt_avg_ms",
    "rtt_max_ms",
    "rtt_std_ms",
    "sat_rtt_ms",
    "domain",
    "dns_qname",
    "dns_resolver_ip",
    "dns_response_ms",
    "dns_rcode",
    "first_pkt_times",
]


def _record_to_dict(record: FlowRecord) -> dict:
    data = {name: getattr(record, name) for name in _FIELDS}
    data["l7"] = record.l7.value
    return data


def write_jsonl(records: Iterable[FlowRecord], path: Union[str, Path]) -> int:
    """Write records as JSON lines; returns the number written."""
    count = 0
    with open(path, "w", encoding="utf-8") as handle:
        for record in records:
            handle.write(json.dumps(_record_to_dict(record)) + "\n")
            count += 1
    return count


def read_jsonl(path: Union[str, Path]) -> List[FlowRecord]:
    """Read records written by :func:`write_jsonl`."""
    records: List[FlowRecord] = []
    with open(path, encoding="utf-8") as handle:
        for line in handle:
            line = line.strip()
            if not line:
                continue
            data = json.loads(line)
            data["l7"] = L7Protocol(data["l7"])
            records.append(FlowRecord(**data))
    return records


def write_csv(records: Iterable[FlowRecord], path: Union[str, Path]) -> int:
    """Write records as CSV; ``first_pkt_times`` is JSON-encoded."""
    count = 0
    with open(path, "w", encoding="utf-8", newline="") as handle:
        writer = csv.DictWriter(handle, fieldnames=_FIELDS)
        writer.writeheader()
        for record in records:
            row = _record_to_dict(record)
            row["first_pkt_times"] = json.dumps(row["first_pkt_times"])
            writer.writerow(row)
            count += 1
    return count
