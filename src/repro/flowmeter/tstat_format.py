"""Tstat-compatible log export.

The paper's probe is Tstat [39], whose canonical output is
``log_tcp_complete`` / ``log_udp_complete``: one whitespace-separated
line per flow with positional columns. We emit the most commonly used
subset of those columns (client/server sides, packets/bytes, timing,
RTT statistics) so downstream tooling written against Tstat logs can
consume our flow meter's output directly.

Column layout (1-based, following Tstat's documentation conventions):

TCP: c_ip c_port c_pkts c_bytes s_ip s_port s_pkts s_bytes
     first last durat c_rtt_avg c_rtt_min c_rtt_max c_rtt_std
     sat_rtt fqdn
UDP: c_ip c_port s_ip s_port c_bytes s_bytes first last durat fqdn
"""

from __future__ import annotations

from pathlib import Path
from typing import Iterable, List, Tuple, Union

from repro.flowmeter.records import FlowRecord
from repro.net.inet import ip_from_int

TCP_COLUMNS = (
    "c_ip", "c_port", "c_pkts", "c_bytes",
    "s_ip", "s_port", "s_pkts", "s_bytes",
    "first", "last", "durat",
    "c_rtt_avg", "c_rtt_min", "c_rtt_max", "c_rtt_std",
    "sat_rtt", "fqdn",
)

UDP_COLUMNS = (
    "c_ip", "c_port", "s_ip", "s_port",
    "c_bytes", "s_bytes", "first", "last", "durat", "fqdn",
)

_MISSING = "-"


def _fmt(value, scale: float = 1.0) -> str:
    if value is None:
        return _MISSING
    if isinstance(value, float):
        return f"{value * scale:.3f}"
    return str(value)


def tcp_line(record: FlowRecord) -> str:
    """One ``log_tcp_complete`` line."""
    fields = [
        ip_from_int(record.client_ip),
        str(record.client_port),
        str(record.pkts_up),
        str(record.bytes_up),
        ip_from_int(record.server_ip),
        str(record.server_port),
        str(record.pkts_down),
        str(record.bytes_down),
        _fmt(record.ts_start, 1000.0),  # Tstat logs milliseconds
        _fmt(record.ts_end, 1000.0),
        _fmt(record.duration_s, 1000.0),
        _fmt(record.rtt_avg_ms),
        _fmt(record.rtt_min_ms),
        _fmt(record.rtt_max_ms),
        _fmt(record.rtt_std_ms),
        _fmt(record.sat_rtt_ms),
        record.domain or _MISSING,
    ]
    return " ".join(fields)


def udp_line(record: FlowRecord) -> str:
    """One ``log_udp_complete`` line."""
    fields = [
        ip_from_int(record.client_ip),
        str(record.client_port),
        ip_from_int(record.server_ip),
        str(record.server_port),
        str(record.bytes_up),
        str(record.bytes_down),
        _fmt(record.ts_start, 1000.0),
        _fmt(record.ts_end, 1000.0),
        _fmt(record.duration_s, 1000.0),
        record.domain or record.dns_qname or _MISSING,
    ]
    return " ".join(fields)


def write_tstat_logs(
    records: Iterable[FlowRecord], directory: Union[str, Path]
) -> Tuple[Path, Path]:
    """Write ``log_tcp_complete`` and ``log_udp_complete``.

    Returns the two paths. Header lines start with ``#`` as in Tstat.
    """
    directory = Path(directory)
    directory.mkdir(parents=True, exist_ok=True)
    tcp_path = directory / "log_tcp_complete"
    udp_path = directory / "log_udp_complete"
    tcp_lines: List[str] = ["#" + " ".join(TCP_COLUMNS)]
    udp_lines: List[str] = ["#" + " ".join(UDP_COLUMNS)]
    for record in records:
        if record.l7.is_tcp:
            tcp_lines.append(tcp_line(record))
        else:
            udp_lines.append(udp_line(record))
    tcp_path.write_text("\n".join(tcp_lines) + "\n", encoding="utf-8")
    udp_path.write_text("\n".join(udp_lines) + "\n", encoding="utf-8")
    return tcp_path, udp_path


def parse_tcp_line(line: str) -> dict:
    """Parse a ``log_tcp_complete`` line back into a dict (round trip
    for tooling tests)."""
    parts = line.split()
    if len(parts) != len(TCP_COLUMNS):
        raise ValueError(
            f"expected {len(TCP_COLUMNS)} columns, got {len(parts)}"
        )
    out = dict(zip(TCP_COLUMNS, parts))
    for key in ("c_pkts", "c_bytes", "s_pkts", "s_bytes", "c_port", "s_port"):
        out[key] = int(out[key])
    for key in ("first", "last", "durat", "c_rtt_avg", "c_rtt_min",
                "c_rtt_max", "c_rtt_std", "sat_rtt"):
        out[key] = None if out[key] == _MISSING else float(out[key])
    return out
