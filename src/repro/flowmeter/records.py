"""Per-flow summary records.

The paper's probe extracts "hundreds of statistics" per flow; we keep
the ones the analyses use: size and duration, per-direction volume,
timing of the first packets, the ground TCP RTT statistics, the
TLS-estimated satellite RTT, the contacted domain, and the DNS fields.
"""

from __future__ import annotations

import enum
import math
from dataclasses import dataclass, field
from typing import List, Optional


class L7Protocol(enum.Enum):
    """Application protocol labels used in Table 1 / Figure 3."""

    HTTPS = "tcp/https"
    HTTP = "tcp/http"
    OTHER_TCP = "tcp/other"
    QUIC = "udp/quic"
    RTP = "udp/rtp"
    DNS = "udp/dns"
    OTHER_UDP = "udp/other"

    @property
    def is_tcp(self) -> bool:
        return self.value.startswith("tcp/")

    @property
    def is_udp(self) -> bool:
        return self.value.startswith("udp/")


#: Stable ordering of protocol labels for columnar encoding.
L7_ORDER = [
    L7Protocol.HTTPS,
    L7Protocol.HTTP,
    L7Protocol.OTHER_TCP,
    L7Protocol.QUIC,
    L7Protocol.RTP,
    L7Protocol.DNS,
    L7Protocol.OTHER_UDP,
]


@dataclass
class FlowRecord:
    """One monitored flow, as exported by the probe."""

    # Identity (client = the customer side; address already anonymized
    # when the meter is configured with an anonymizer).
    client_ip: int
    server_ip: int
    client_port: int
    server_port: int
    l7: L7Protocol

    # Timing.
    ts_start: float
    ts_end: float

    # Volume.
    bytes_up: int = 0
    bytes_down: int = 0
    pkts_up: int = 0
    pkts_down: int = 0

    # Ground-segment TCP RTT statistics (ms), from data↔ACK matching.
    rtt_samples: int = 0
    rtt_min_ms: Optional[float] = None
    rtt_avg_ms: Optional[float] = None
    rtt_max_ms: Optional[float] = None
    rtt_std_ms: Optional[float] = None

    # Satellite-segment RTT (ms) from the TLS-handshake method.
    sat_rtt_ms: Optional[float] = None

    # DPI annotations.
    domain: Optional[str] = None
    dns_qname: Optional[str] = None
    dns_resolver_ip: Optional[int] = None
    dns_response_ms: Optional[float] = None
    dns_rcode: Optional[int] = None

    # Timestamps of the first packets (Section 2.2 metric ii).
    first_pkt_times: List[float] = field(default_factory=list)

    @property
    def duration_s(self) -> float:
        """Flow duration, first to last packet."""
        return max(0.0, self.ts_end - self.ts_start)

    @property
    def bytes_total(self) -> int:
        return self.bytes_up + self.bytes_down

    def download_throughput_bps(self) -> Optional[float]:
        """Gross download rate (Section 6.5); None for instantaneous flows."""
        if self.duration_s <= 0 or self.bytes_down == 0:
            return None
        return self.bytes_down * 8.0 / self.duration_s


def rtt_stats_ms(samples_s: List[float]) -> dict:
    """min/avg/max/std over RTT samples, converted to milliseconds."""
    if not samples_s:
        return {
            "rtt_samples": 0,
            "rtt_min_ms": None,
            "rtt_avg_ms": None,
            "rtt_max_ms": None,
            "rtt_std_ms": None,
        }
    ms = [s * 1000.0 for s in samples_s]
    n = len(ms)
    mean = sum(ms) / n
    variance = sum((x - mean) ** 2 for x in ms) / n
    return {
        "rtt_samples": n,
        "rtt_min_ms": min(ms),
        "rtt_avg_ms": mean,
        "rtt_max_ms": max(ms),
        "rtt_std_ms": math.sqrt(variance),
    }
