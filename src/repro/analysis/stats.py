"""Distribution statistics used across the report modules.

Empirical CDF/CCDF helpers, quantiles, and the boxplot summary the
paper uses in Figures 7 and 11b (box = quartiles, whiskers = 5th/95th
percentiles).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Sequence, Tuple

import numpy as np


def _clean(values: np.ndarray) -> np.ndarray:
    values = np.asarray(values, dtype=np.float64)
    return values[np.isfinite(values)]


def ccdf(values: np.ndarray) -> Tuple[np.ndarray, np.ndarray]:
    """Empirical complementary CDF.

    Returns ``(x, p)`` with ``p[i] = P(X > x[i])`` over sorted unique
    sample points — the format of Figures 5 and 11a.
    """
    values = _clean(values)
    if len(values) == 0:
        return np.array([]), np.array([])
    x = np.sort(values)
    p = 1.0 - (np.arange(1, len(x) + 1) / len(x))
    return x, p


def cdf_at(values: np.ndarray, threshold: float) -> float:
    """P(X <= threshold)."""
    values = _clean(values)
    if len(values) == 0:
        return float("nan")
    return float((values <= threshold).mean())


def ccdf_at(values: np.ndarray, threshold: float) -> float:
    """P(X > threshold) — e.g. the share of heavy hitters above 10 GB."""
    values = _clean(values)
    if len(values) == 0:
        return float("nan")
    return float((values > threshold).mean())


def quantiles(values: np.ndarray, qs: Sequence[float] = (0.25, 0.5, 0.75)) -> np.ndarray:
    """Quantiles over finite samples."""
    values = _clean(values)
    if len(values) == 0:
        return np.full(len(qs), np.nan)
    return np.quantile(values, qs)


@dataclass(frozen=True)
class BoxplotStats:
    """Five-number summary matching the paper's boxplot convention."""

    p5: float
    q1: float
    median: float
    q3: float
    p95: float
    n: int

    def as_dict(self) -> Dict[str, float]:
        return {
            "p5": self.p5,
            "q1": self.q1,
            "median": self.median,
            "q3": self.q3,
            "p95": self.p95,
            "n": self.n,
        }


def boxplot_stats(values: np.ndarray) -> BoxplotStats:
    """Box (quartiles) and whiskers (5th/95th percentiles)."""
    values = _clean(values)
    if len(values) == 0:
        return BoxplotStats(*([float("nan")] * 5), n=0)
    p5, q1, median, q3, p95 = np.quantile(values, [0.05, 0.25, 0.5, 0.75, 0.95])
    return BoxplotStats(float(p5), float(q1), float(median), float(q3), float(p95), len(values))


def share_by_group(keys: np.ndarray, weights: np.ndarray) -> Dict[int, float]:
    """Fraction of total ``weights`` per integer key."""
    keys = np.asarray(keys)
    weights = np.asarray(weights, dtype=np.float64)
    total = weights.sum()
    if total <= 0:
        return {}
    out: Dict[int, float] = {}
    for key in np.unique(keys):
        out[int(key)] = float(weights[keys == key].sum() / total)
    return out


def median_by_group(keys: np.ndarray, values: np.ndarray) -> Dict[int, float]:
    """Median of ``values`` per integer key (finite values only)."""
    keys = np.asarray(keys)
    out: Dict[int, float] = {}
    for key in np.unique(keys):
        group = _clean(values[keys == key])
        if len(group):
            out[int(key)] = float(np.median(group))
    return out
