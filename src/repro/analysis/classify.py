"""Regex-based service classification (the paper's Table 3).

The paper maps server domains to services with manually curated regular
expressions. We reproduce the Table 3 list; a few entries contain OCR
artifacts in the available text (e.g. ``bingcoms``, ``tiktokch``,
``db.tts``) which we restore to their obvious intent, and patterns with
a leading dot ("subdomain of") are translated to ``(^|\\.)…$`` anchors.

Order matters where pattern sets overlap (Office365 lists ``skype`` and
``lync``); we keep the table's category layout but place Chat/Skype
before Work/Office365, as the paper's pipeline evidently must.
"""

from __future__ import annotations

import re
from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np

from repro.traffic.services import ServiceCategory


@dataclass(frozen=True)
class Rule:
    """One service's classification rule."""

    service: str
    category: ServiceCategory
    patterns: Tuple[str, ...]


def _dot(suffix: str) -> str:
    """Translate a Table 3 leading-dot pattern: subdomain-of ``suffix``."""
    return r"(^|\.)" + re.escape(suffix) + "$"


def _end(suffix: str) -> str:
    """Pattern anchored at the end of the domain."""
    return re.escape(suffix) + "$"


#: Table 3, in evaluation order.
TABLE3_RULES: Tuple[Rule, ...] = (
    Rule("Spotify", ServiceCategory.AUDIO, (_end("spotify.com"), _dot("scdn.com"))),
    Rule(
        "Youtube",
        ServiceCategory.VIDEO,
        (
            _end("googlevideo.com"),
            _dot("ytimg.com"),
            _dot("youtube.com"),
            _dot("gvt1.com"),
            _dot("gvt2.com"),
            _dot("youtube-nocookie.com"),
        ),
    ),
    Rule(
        "Netflix",
        ServiceCategory.VIDEO,
        (r"netflix", r"nflxext\.", r"nflximg", r"nflxvideo", r"nflxso\."),
    ),
    Rule("Sky", ServiceCategory.VIDEO, (_dot("sky.com"),)),
    Rule(
        "Primevideo",
        ServiceCategory.VIDEO,
        (
            _end("amazonvideo.com"),
            _end("primevideo.com"),
            _end("pv-cdn.net"),
            _end("atv-ps.amazon.com"),
            _end("atv-ext.amazon.com"),
            _end("atv-ext-eu.amazon.com"),
            _end("atv-ext-fe.amazon.com"),
            r"atv-ps-eu\.amazon",
            r"atv-ps-fe\.amazon",
        ),
    ),
    Rule(
        "Facebook",
        ServiceCategory.SOCIAL,
        (
            _end("facebook.com"),
            _end("fbcdn.net"),
            _end("facebook.net"),
            r"^fbcdn",
            r"^fbstatic",
            r"^fbexternal",
            _end("fbsbx.com"),
            _end("fb.com"),
        ),
    ),
    Rule(
        "Twitter",
        ServiceCategory.SOCIAL,
        (
            r"\.twitter",
            r"\.twimg",
            r"^twitter\.com$",
            r"twitter\.com\.edgesuite\.net",
            r"twitter-any\.s3\.amazonaws\.com",
            r"twitter-blog\.s3\.amazonaws\.com",
        ),
    ),
    Rule(
        "Linkedin",
        ServiceCategory.SOCIAL,
        (_end("linkedin.com"), _end("licdn.com"), _end("lnkd.in")),
    ),
    Rule(
        "Instagram",
        ServiceCategory.SOCIAL,
        (_dot("instagram.com"), _end("cdninstagram.com"), r"igcdn"),
    ),
    Rule(
        "Tiktok",
        ServiceCategory.SOCIAL,
        (_end("tiktok.com"), r"tiktokcdn", _end("tiktokv.com")),
    ),
    # Chat before Work so Skype wins over Office365's 'skype' pattern.
    Rule("Whatsapp", ServiceCategory.CHAT, (_dot("whatsapp.com"), _dot("whatsapp.net"))),
    Rule("Telegram", ServiceCategory.CHAT, (_dot("telegram.org"),)),
    Rule(
        "Snapchat",
        ServiceCategory.CHAT,
        (
            _dot("snapchat.com"),
            _end("feelinsonice.appspot.com"),
            _end("feelinsonice-hrd.appspot.com"),
            _end("feelinsonice.l.google.com"),
        ),
    ),
    Rule(
        "Skype",
        ServiceCategory.CHAT,
        (_end("skypeassets.com"), _dot("skype.com"), _dot("skype.net")),
    ),
    Rule(
        "Wechat",
        ServiceCategory.CHAT,
        (_end("wechat.com"), _end("weixin.qq.com"), _end("wxs.qq.com")),
    ),
    Rule("Google", ServiceCategory.SEARCH, (r"^www\.google", r"^google\.")),
    Rule("Bing", ServiceCategory.SEARCH, (_end("bing.com"),)),
    Rule(
        "Yahoo",
        ServiceCategory.SEARCH,
        (_dot("yahoo.com"), _dot("yahoo.net"), _dot("yimg.com")),
    ),
    Rule("Duckduck", ServiceCategory.SEARCH, (r"\.?duckduckgo\.",)),
    Rule(
        "Office365",
        ServiceCategory.WORK,
        (
            _end("sharepoint.com"),
            _end("office.net"),
            _end("onenote.com"),
            _end("office365.com"),
            _end("office.com"),
            r"teams\.microsoft",
            r"teams\.office",
            r"lync",
            r"skype",
            _end("live.com"),
        ),
    ),
    Rule(
        "Gsuite",
        ServiceCategory.WORK,
        (
            _end("googledrive.com"),
            _dot("drive.google.com"),
            _dot("docs.google.com"),
            _dot("sheets.google.com"),
            _dot("slides.google.com"),
            _dot("takeout.google.com"),
        ),
    ),
    Rule("Dropbox", ServiceCategory.WORK, (r"dropbox", _end("db.tt"))),
)


class ServiceClassifier:
    """Compiled Table 3 classifier with per-domain memoization."""

    def __init__(self, rules: Sequence[Rule] = TABLE3_RULES) -> None:
        self.rules = list(rules)
        self._compiled: List[Tuple[Rule, re.Pattern]] = [
            (rule, re.compile("|".join(f"(?:{p})" for p in rule.patterns)))
            for rule in self.rules
        ]
        self._cache: Dict[str, Optional[Rule]] = {}

    def classify(self, domain: Optional[str]) -> Optional[Rule]:
        """The first rule matching ``domain`` (None when unmatched)."""
        if not domain:
            return None
        domain = domain.lower()
        if domain in self._cache:
            return self._cache[domain]
        hit: Optional[Rule] = None
        for rule, pattern in self._compiled:
            if pattern.search(domain):
                hit = rule
                break
        self._cache[domain] = hit
        return hit

    def service_of(self, domain: Optional[str]) -> Optional[str]:
        """Service name for ``domain``, or None."""
        rule = self.classify(domain)
        return rule.service if rule else None

    def category_of(self, domain: Optional[str]) -> Optional[ServiceCategory]:
        """Category for ``domain``, or None."""
        rule = self.classify(domain)
        return rule.category if rule else None

    def classify_pool(
        self, domains: Sequence[str]
    ) -> Tuple[np.ndarray, List[str]]:
        """Classify a domain pool.

        Returns ``(service_idx_per_domain, service_names)`` where the
        index is -1 for unmatched domains — apply it to a frame's
        ``domain_idx`` column to label every flow in O(pool) regex work.
        """
        names = [rule.service for rule in self.rules]
        name_index = {name: i for i, name in enumerate(names)}
        out = np.full(len(domains), -1, dtype=np.int16)
        for i, domain in enumerate(domains):
            service = self.service_of(domain)
            if service is not None:
                out[i] = name_index[service]
        return out, names

    def label_frame(self, frame) -> Tuple[np.ndarray, List[str]]:
        """Per-flow service index for a :class:`FlowFrame`.

        Runs the regexes over the (small) domain pool only, then gathers
        per flow. Unmatched/absent domains get -1.
        """
        pool_labels, names = self.classify_pool(frame.domains)
        per_flow = np.full(len(frame), -1, dtype=np.int16)
        has_domain = frame.domain_idx >= 0
        per_flow[has_domain] = pool_labels[frame.domain_idx[has_domain]]
        return per_flow, names
