"""Terminal plots: ASCII CDFs and sparklines.

The paper's evaluation is mostly CDFs/CCDFs; these helpers let the
report renders and examples show distribution *shapes* in a terminal
without a plotting dependency.
"""

from __future__ import annotations

from typing import Dict, Optional, Sequence

import numpy as np

_SPARK_LEVELS = " ▁▂▃▄▅▆▇█"


def sparkline(values: Sequence[float], width: Optional[int] = None) -> str:
    """A one-line bar chart (e.g. the Figure 4 hourly curves).

    >>> sparkline([0, 1, 2, 3])[0]
    ' '
    """
    data = np.asarray(list(values), dtype=float)
    if width is not None and len(data) > width:
        idx = np.linspace(0, len(data) - 1, width).astype(int)
        data = data[idx]
    finite = data[np.isfinite(data)]
    if len(finite) == 0:
        return ""
    low, high = float(finite.min()), float(finite.max())
    span = high - low or 1.0
    out = []
    for value in data:
        if not np.isfinite(value):
            out.append(" ")
            continue
        level = int((value - low) / span * (len(_SPARK_LEVELS) - 1))
        out.append(_SPARK_LEVELS[level])
    return "".join(out)


def ascii_cdf(
    series: Dict[str, np.ndarray],
    width: int = 60,
    height: int = 12,
    x_log: bool = True,
    x_label: str = "",
) -> str:
    """Plot one or more empirical CDFs as ASCII art.

    ``series`` maps a label to its samples; each series is drawn with
    its own marker character. The x-axis is log-scaled by default (like
    Figures 5, 8 and 11).
    """
    markers = "*o+x#@%&"
    cleaned = {
        label: np.sort(np.asarray(values, dtype=float)[np.isfinite(values)])
        for label, values in series.items()
    }
    cleaned = {label: v for label, v in cleaned.items() if len(v) > 0}
    if not cleaned:
        return "(no data)"

    lo = min(v[0] for v in cleaned.values())
    hi = max(v[-1] for v in cleaned.values())
    if x_log:
        lo = max(lo, 1e-9)
        xs = np.logspace(np.log10(lo), np.log10(max(hi, lo * 1.001)), width)
    else:
        xs = np.linspace(lo, hi, width)

    grid = [[" "] * width for _ in range(height)]
    for (label, values), marker in zip(cleaned.items(), markers):
        fractions = np.searchsorted(values, xs, side="right") / len(values)
        for col, fraction in enumerate(fractions):
            row = height - 1 - int(fraction * (height - 1))
            grid[row][col] = marker

    lines = []
    for i, row in enumerate(grid):
        y_value = 1.0 - i / (height - 1)
        lines.append(f"{y_value:4.2f} |" + "".join(row))
    axis = "     +" + "-" * width
    lines.append(axis)
    if x_log:
        lines.append(f"      {lo:.3g}  (log x)  {hi:.3g}  {x_label}")
    else:
        lines.append(f"      {lo:.3g}  →  {hi:.3g}  {x_label}")
    legend = "      " + "   ".join(
        f"{marker}={label}" for (label, _), marker in zip(cleaned.items(), markers)
    )
    lines.append(legend)
    return "\n".join(lines)
