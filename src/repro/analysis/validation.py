"""Calibration scorecard: every headline paper number vs the dataset.

One entry per quantitative claim the reproduction targets (DESIGN.md
§5), each with the paper value, the measured value, a tolerance, and a
pass flag — printable as a table and consumable by tests and the CLI.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, List

import numpy as np

from repro.analysis.aggregate import format_table
from repro.analysis.dataset import FlowFrame
from repro.analysis.reports import (
    fig2_country,
    fig4_diurnal,
    fig5_volumes,
    fig8_satellite_rtt,
    fig9_ground_rtt,
    fig10_dns,
    fig12_video_qoe,
    table1_protocols,
)


@dataclass(frozen=True)
class Check:
    """One paper-vs-measured comparison."""

    name: str
    paper: float
    measured: float
    tolerance: float
    unit: str = ""

    @property
    def passed(self) -> bool:
        return abs(self.measured - self.paper) <= self.tolerance

    @property
    def error(self) -> float:
        return self.measured - self.paper


@dataclass
class Scorecard:
    """The full calibration scorecard."""

    checks: List[Check]

    @property
    def passed(self) -> int:
        return sum(1 for c in self.checks if c.passed)

    @property
    def total(self) -> int:
        return len(self.checks)

    def failing(self) -> List[Check]:
        return [c for c in self.checks if not c.passed]

    def render(self) -> str:
        rows = [
            (
                c.name,
                f"{c.paper:g}{c.unit}",
                f"{c.measured:.2f}{c.unit}",
                f"±{c.tolerance:g}",
                "ok" if c.passed else "MISS",
            )
            for c in self.checks
        ]
        table = format_table(
            ["Claim", "Paper", "Measured", "Tol", ""],
            rows,
            title="Calibration scorecard (paper vs measured)",
        )
        return table + f"\n{self.passed}/{self.total} checks within tolerance"


def _headline_checks(t1, f2, f4, f5, f8, f9, f10, f12) -> List[Check]:
    """The claim list, shared by the frame and rollup scorecards.

    Each argument is a computed report result; the frame results and
    their rollup views expose the same query surface, so one check
    builder serves both ``repro scorecard`` and the live ``/scorecard``
    endpoint. ``f12`` is ``None`` for QoE-less captures, keeping the
    original check list byte-for-byte.
    """
    checks: List[Check] = []

    for label, paper, tol in (
        ("tcp/https", 56.0, 8.0),
        ("udp/quic", 19.6, 6.0),
        ("tcp/http", 12.1, 6.0),
        ("tcp/other", 7.0, 5.0),
        ("udp/other", 4.2, 3.0),
        ("udp/rtp", 1.1, 1.5),
    ):
        checks.append(
            Check(f"Table1 {label} volume share", paper, t1.share(label), tol, " %")
        )

    congo_vol, congo_cust = f2.shares("Congo")
    spain_vol, spain_cust = f2.shares("Spain")
    checks.append(Check("Fig2 Congo customer share", 20.0, congo_cust, 4.0, " %"))
    checks.append(Check("Fig2 Congo volume share", 27.0, congo_vol, 10.0, " %"))
    checks.append(Check("Fig2 Spain customer share", 16.0, spain_cust, 4.0, " %"))
    checks.append(Check("Fig2 Spain volume share", 10.0, spain_vol, 6.0, " %"))

    checks.append(Check("Fig4 Congo peak hour (UTC)", 9.0, f4.peak_hour_utc("Congo"), 2.0, "h"))
    checks.append(Check("Fig4 Spain peak hour (UTC)", 19.0, f4.peak_hour_utc("Spain"), 2.0, "h"))

    checks.append(
        Check("Fig5a Europe <250 flows/day", 55.0, f5.idle_fraction("Spain") * 100, 12.0, " %")
    )

    checks.append(
        Check(
            "Fig8a Spain night <1s",
            82.0,
            f8.fraction_under("Spain", "night", 1000.0) * 100,
            9.0,
            " %",
        )
    )
    checks.append(
        Check(
            "Fig8a Congo night >2s",
            20.0,
            f8.fraction_over("Congo", "night", 2000.0) * 100,
            10.0,
            " %",
        )
    )
    minimum = min(f8.minimum_ms(c) for c in f8.samples)
    checks.append(Check("Fig8a satellite RTT floor", 550.0, minimum, 40.0, " ms"))

    eu_below = np.mean(
        [f9.fraction_below(c, 40.0) for c in ("Spain", "UK", "Ireland")]
    )
    checks.append(Check("Fig9 Europe ground RTT <40ms", 80.0, eu_below * 100, 12.0, " %"))

    for resolver, paper in (
        ("Operator-EU", 3.98),
        ("Google", 21.98),
        ("Nigerian", 119.98),
        ("Baidu", 355.97),
        ("114DNS", 109.98),
    ):
        checks.append(
            Check(
                f"Fig10 {resolver} median response",
                paper,
                f10.median_response_ms.get(resolver, float("nan")),
                paper * 0.25,
                " ms",
            )
        )
    checks.append(
        Check("Fig10 Google share in Congo", 85.68, f10.share("Google", "Congo"), 14.0, " %")
    )

    if f12 is not None:
        n = f12.total_sessions()
        rebuf = float(f12.rebuffer_sum.sum() / n) * 100.0
        level = float(f12.level_sum.sum() / n)
        checks.append(Check("Fig12 mean rebuffer ratio", 1.0, rebuf, 5.0, " %"))
        checks.append(Check("Fig12 mean resolution level", 2.5, level, 1.5, ""))

    return checks


def build_scorecard(frame: FlowFrame) -> Scorecard:
    """Evaluate the headline claims against ``frame``."""
    # Figure 12 (extension) — only when the capture carries video
    # sessions (traffic.qoe enabled); QoE-less captures keep the
    # original check list byte-for-byte.
    f12 = (
        fig12_video_qoe.compute(frame)
        if np.any(frame.session_id >= 0)
        else None
    )
    return Scorecard(
        checks=_headline_checks(
            table1_protocols.compute(frame),
            fig2_country.compute(frame),
            fig4_diurnal.compute(frame),
            fig5_volumes.compute(frame),
            fig8_satellite_rtt.compute_fig8a(frame),
            fig9_ground_rtt.compute(frame),
            fig10_dns.compute(frame),
            f12,
        )
    )


def build_scorecard_rollup(rollup) -> Scorecard:
    """The scorecard from streaming sketches — the live ``/scorecard``.

    Same claim list as :func:`build_scorecard`, evaluated through each
    report's ``from_rollup`` path, so a running capture can grade
    itself mid-flight without materializing flows. Quantile-backed
    checks interpolate inside histogram bins (the documented rollup
    tolerance), which the check tolerances absorb.
    """
    f12 = (
        fig12_video_qoe.from_rollup(rollup)
        if int(rollup.qoe_sessions.sum()) > 0
        else None
    )
    return Scorecard(
        checks=_headline_checks(
            table1_protocols.from_rollup(rollup),
            fig2_country.from_rollup(rollup),
            fig4_diurnal.from_rollup(rollup),
            fig5_volumes.from_rollup(rollup),
            fig8_satellite_rtt.from_rollup(rollup),
            fig9_ground_rtt.from_rollup(rollup),
            fig10_dns.from_rollup(rollup),
            f12,
        )
    )


def render_delay_comparison(
    frame_a: FlowFrame,
    frame_b: FlowFrame,
    label_a: str = "A",
    label_b: str = "B",
) -> str:
    """Side-by-side satellite-delay profile of two captures.

    The GEO-vs-LEO view of the delay refactor: run the same workload
    under two scenarios (``repro scorecard --compare leo-starlink``)
    and diff the satellite-RTT floor, the night/peak medians, and the
    fig8b time-of-day spread — the numbers the constellation engine is
    supposed to move while everything else stays put.
    """
    from repro.analysis.reports import fig8b_rtt_timeseries

    a8 = fig8_satellite_rtt.compute_fig8a(frame_a)
    b8 = fig8_satellite_rtt.compute_fig8a(frame_b)
    a8b = fig8b_rtt_timeseries.compute(frame_a)
    b8b = fig8b_rtt_timeseries.compute(frame_b)

    def floor(result) -> float:
        return min(result.minimum_ms(c) for c in result.samples)

    def median(result, country: str, period: str) -> float:
        return float(result.quartiles_ms(country, period)[1])

    def max_spread(result) -> float:
        return max(result.spread_ms(c) for c in result.medians_ms)

    metrics = [
        ("Satellite RTT floor (ms)", floor(a8), floor(b8)),
        ("Spain night median (ms)", median(a8, "Spain", "night"), median(b8, "Spain", "night")),
        ("Spain peak median (ms)", median(a8, "Spain", "peak"), median(b8, "Spain", "peak")),
        ("Congo peak median (ms)", median(a8, "Congo", "peak"), median(b8, "Congo", "peak")),
        (
            "Spain night <1 s (%)",
            a8.fraction_under("Spain", "night", 1000.0) * 100,
            b8.fraction_under("Spain", "night", 1000.0) * 100,
        ),
        ("Max time-of-day spread (ms)", max_spread(a8b), max_spread(b8b)),
    ]
    rows = [
        (name, f"{va:.0f}", f"{vb:.0f}", f"{vb - va:+.0f}")
        for name, va, vb in metrics
    ]
    return format_table(
        ["Metric", label_a, label_b, "Δ"],
        rows,
        title=f"Satellite delay comparison: {label_a} vs {label_b}",
    )


def render_qoe_comparison(
    frame_a: FlowFrame,
    frame_b: FlowFrame,
    label_a: str = "A",
    label_b: str = "B",
) -> str:
    """Side-by-side video-QoE profile of two captures.

    The shaping-policy view of the session model: run the same video
    workload with and without an operator shaper
    (``repro scorecard --scenario video-streaming
    --compare shaped-vs-unshaped``) and diff the session-weighted QoE
    aggregates — the shaper should trade resolution level for a bounded
    rebuffer ratio, not silently wreck both.
    """
    a12 = fig12_video_qoe.compute(frame_a)
    b12 = fig12_video_qoe.compute(frame_b)

    def agg(result, sums) -> float:
        n = result.total_sessions()
        return float(sums.sum() / n) if n else float("nan")

    metrics = [
        (
            "Video sessions",
            float(a12.total_sessions()),
            float(b12.total_sessions()),
            "{:.0f}",
        ),
        (
            "Mean rebuffer ratio (%)",
            agg(a12, a12.rebuffer_sum) * 100.0,
            agg(b12, b12.rebuffer_sum) * 100.0,
            "{:.2f}",
        ),
        (
            "Mean resolution level",
            agg(a12, a12.level_sum),
            agg(b12, b12.level_sum),
            "{:.2f}",
        ),
        (
            "Mean switches/session",
            agg(a12, a12.switch_sum),
            agg(b12, b12.switch_sum),
            "{:.2f}",
        ),
    ]
    rows = [
        (name, fmt.format(va), fmt.format(vb), f"{vb - va:+.2f}")
        for name, va, vb, fmt in metrics
    ]
    return format_table(
        ["Metric", label_a, label_b, "Δ"],
        rows,
        title=f"Video QoE comparison: {label_a} vs {label_b}",
    )
