"""Shared aggregation primitives for the report modules."""

from __future__ import annotations

from typing import Dict, Iterable, List, Optional, Sequence, Tuple

import numpy as np

from repro.analysis.dataset import FlowFrame
from repro.constants import ACTIVE_CUSTOMER_FLOW_THRESHOLD
from repro.flowmeter.records import L7Protocol, L7_ORDER
from repro.internet.geo import COUNTRIES, lon_hour_shift


def protocol_volume_share(frame: FlowFrame, mask: Optional[np.ndarray] = None) -> Dict[str, float]:
    """Volume share (percent) per protocol label (Table 1 / Figure 3)."""
    if mask is None:
        mask = np.ones(len(frame), dtype=bool)
    volume = frame.bytes_total()[mask]
    l7 = frame.l7_idx[mask]
    total = volume.sum()
    if total <= 0:
        return {label.value: 0.0 for label in L7_ORDER}
    return {
        label.value: float(volume[l7 == i].sum() / total * 100.0)
        for i, label in enumerate(L7_ORDER)
    }


def country_breakdown(frame: FlowFrame) -> List[Tuple[str, float, float]]:
    """(country, volume %, customer %) sorted by decreasing volume (Fig. 2)."""
    volume = frame.bytes_total()
    total_volume = volume.sum()
    total_customers = len(np.unique(frame.customer_id))
    rows: List[Tuple[str, float, float]] = []
    for country, mask in frame.groupby_country().items():
        vol_pct = float(volume[mask].sum() / total_volume * 100.0)
        cust_pct = float(len(np.unique(frame.customer_id[mask])) / total_customers * 100.0)
        rows.append((country, vol_pct, cust_pct))
    rows.sort(key=lambda row: -row[1])
    return rows


def top_countries_by_volume(frame: FlowFrame, n: int = 10) -> List[str]:
    """The top-``n`` countries by traffic volume."""
    return [row[0] for row in country_breakdown(frame)[:n]]


def hourly_volume_utc(frame: FlowFrame, country: str, robust: bool = True) -> np.ndarray:
    """Volume per UTC hour, normalized to its own maximum (Fig. 4).

    The paper averages three months of traffic over ~500 k subscribers;
    short synthetic captures are vulnerable to a single binge day — a
    handful of enormous flows — dominating an hour bin. The robust
    default therefore winsorizes flow volumes at the country's 99.5th
    percentile and takes the *median across days* per hour bin (set
    ``robust=False`` for the plain sum).
    """
    mask = frame.country_mask(country)
    hours = frame.hour_utc[mask].astype(int) % 24
    volume = frame.bytes_total()[mask].astype(np.float64)
    if robust:
        if len(volume):
            volume = np.minimum(volume, np.quantile(volume, 0.995))
        days = frame.day[mask]
        day_values = np.unique(days)
        per_day = np.zeros((len(day_values), 24))
        for row, day in enumerate(day_values):
            day_mask = days == day
            np.add.at(per_day[row], hours[day_mask], volume[day_mask])
        totals = np.median(per_day, axis=0)
    else:
        totals = np.zeros(24)
        np.add.at(totals, hours, volume)
    peak = totals.max()
    return totals / peak if peak > 0 else totals


def local_hour_of(frame: FlowFrame) -> np.ndarray:
    """Approximate local hour per flow (longitude/15 offset)."""
    offsets = np.array(
        [lon_hour_shift(COUNTRIES[name]) for name in frame.countries],
        dtype=np.float64,
    )
    return (frame.hour_utc + offsets[frame.country_idx]) % 24.0


def customer_day_flow_counts(frame: FlowFrame, country: str) -> np.ndarray:
    """Flows per (customer, day) for one country (Figure 5a samples)."""
    mask = frame.country_mask(country)
    totals = frame.customer_day_totals(np.ones(len(frame)), mask)
    return np.array(list(totals.values()), dtype=np.float64)


def customer_day_bytes(
    frame: FlowFrame,
    country: str,
    direction: str = "down",
    active_only: bool = True,
) -> np.ndarray:
    """Daily bytes per customer (Figures 5b/5c samples).

    ``active_only`` applies the paper's ≥250 flows/day filter.
    """
    if direction not in ("down", "up"):
        raise ValueError("direction must be 'down' or 'up'")
    mask = frame.country_mask(country)
    value = frame.bytes_down if direction == "down" else frame.bytes_up
    volumes = frame.customer_day_totals(value, mask)
    if not active_only:
        return np.array(list(volumes.values()), dtype=np.float64)
    counts = frame.customer_day_totals(np.ones(len(frame)), mask)
    active = {
        key for key, count in counts.items() if count >= ACTIVE_CUSTOMER_FLOW_THRESHOLD
    }
    return np.array(
        [volume for key, volume in volumes.items() if key in active], dtype=np.float64
    )


def customers_per_country(frame: FlowFrame) -> Dict[str, int]:
    """Distinct customers observed per country."""
    return {
        country: int(len(np.unique(frame.customer_id[mask])))
        for country, mask in frame.groupby_country().items()
    }


def dominant_resolver_per_customer(frame: FlowFrame) -> Dict[int, int]:
    """customer → most-used resolver index, from DNS flows.

    This mirrors the paper's join for Table 2: TCP flows don't carry the
    resolver, so the analysis attributes each customer to the resolver
    answering most of its DNS queries.
    """
    dns_mask = frame.resolver_idx >= 0
    customers = frame.customer_id[dns_mask]
    resolvers = frame.resolver_idx[dns_mask]
    out: Dict[int, Dict[int, int]] = {}
    for customer, resolver in zip(customers, resolvers):
        out.setdefault(int(customer), {}).setdefault(int(resolver), 0)
        out[int(customer)][int(resolver)] += 1
    # Ties break to the lowest resolver index — deterministic, and the
    # same rule the streamed Table 2 bank applies (argmax).
    return {
        customer: max(counts, key=lambda r: (counts[r], -r))
        for customer, counts in out.items()
    }


def format_table(
    headers: Sequence[str], rows: Iterable[Sequence[object]], title: str = ""
) -> str:
    """Plain-text table used by every report's ``render``."""
    str_rows = [[str(cell) for cell in row] for row in rows]
    widths = [len(h) for h in headers]
    for row in str_rows:
        for i, cell in enumerate(row):
            widths[i] = max(widths[i], len(cell))
    lines = []
    if title:
        lines.append(title)
    lines.append("  ".join(h.ljust(w) for h, w in zip(headers, widths)))
    lines.append("  ".join("-" * w for w in widths))
    for row in str_rows:
        lines.append("  ".join(cell.ljust(w) for cell, w in zip(row, widths)))
    return "\n".join(lines)
