"""Figure 11 — download throughput per customer.

(a) CCDF per country over bulk flows (≥10 MB): knees sit at the
commercial plan rates — 30/50/100 Mb/s in Europe (customers can
saturate their plan with one flow), 10/30 Mb/s in Africa where "only
few customers can saturate" (congestion, community APs, weaker
terminals). (b) night vs peak boxplots: throughput drops at peak
everywhere, most visibly in Congo and South Africa.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Sequence

import numpy as np

from repro.analysis.aggregate import format_table, local_hour_of
from repro.analysis.dataset import FlowFrame
from repro.analysis.stats import BoxplotStats, boxplot_stats, ccdf_at
from repro.constants import BULK_FLOW_MIN_BYTES
from repro.traffic.profiles import TOP_COUNTRIES

NIGHT_HOURS = (2.0, 5.0)
PEAK_HOURS = (13.0, 20.0)

PAPER_PLAN_KNEES_MBPS = {
    "Europe": (30.0, 50.0, 100.0),
    "Africa": (10.0, 30.0),
}


@dataclass
class Fig11Result:
    """Per-country bulk-flow throughput samples (Mb/s) and night/peak."""

    samples_mbps: Dict[str, np.ndarray]
    night_boxes: Dict[str, BoxplotStats]
    peak_boxes: Dict[str, BoxplotStats]

    def countries(self) -> List[str]:
        return list(self.samples_mbps)

    def n_samples(self, country: str) -> int:
        return int(len(self.samples_mbps[country]))

    def median_mbps(self, country: str) -> float:
        return float(np.median(self.samples_mbps[country]))

    def fraction_above(self, country: str, mbps: float) -> float:
        return ccdf_at(self.samples_mbps[country], mbps)

    def night_median(self, country: str) -> float:
        return self.night_boxes[country].median

    def peak_median(self, country: str) -> float:
        return self.peak_boxes[country].median

    def peak_degradation(self, country: str) -> float:
        """Relative median drop from night to peak (0 = none)."""
        night = self.night_median(country)
        peak = self.peak_median(country)
        if not np.isfinite(night) or night <= 0:
            return float("nan")
        return 1.0 - peak / night


@dataclass
class Fig11RollupView:
    """Figure 11 stats served from per-country throughput histograms.

    Same query surface as :class:`Fig11Result` (:func:`render` accepts
    either): medians and CCDF fractions interpolate inside a sub-decade
    log bin of the all/night/peak banks.
    """

    rollup: object
    rows: Dict[str, int]  # country -> rollup row

    def countries(self) -> List[str]:
        return list(self.rows)

    def n_samples(self, country: str) -> int:
        return int(round(self.rollup.h11_all.total(self.rows[country])))

    def median_mbps(self, country: str) -> float:
        return self.rollup.h11_all.quantile(self.rows[country], 0.5)

    def fraction_above(self, country: str, mbps: float) -> float:
        return self.rollup.h11_all.ccdf_at(self.rows[country], mbps)

    def night_median(self, country: str) -> float:
        row = self.rows[country]
        if self.rollup.h11_night.total(row) == 0:
            return float("nan")
        return self.rollup.h11_night.quantile(row, 0.5)

    def peak_median(self, country: str) -> float:
        row = self.rows[country]
        if self.rollup.h11_peak.total(row) == 0:
            return float("nan")
        return self.rollup.h11_peak.quantile(row, 0.5)

    def peak_degradation(self, country: str) -> float:
        night = self.night_median(country)
        peak = self.peak_median(country)
        if not np.isfinite(night) or night <= 0:
            return float("nan")
        return 1.0 - peak / night


def from_rollup(
    rollup, countries: Sequence[str] = TOP_COUNTRIES
) -> Fig11RollupView:
    """Figure 11 from a :class:`~repro.stream.StreamRollup`."""
    return Fig11RollupView(
        rollup=rollup, rows={c: rollup.country_row(c) for c in countries}
    )


def compute(
    frame: FlowFrame,
    countries: Sequence[str] = TOP_COUNTRIES,
    min_bytes: float = BULK_FLOW_MIN_BYTES,
) -> Fig11Result:
    """Bulk-download throughput distributions per country."""
    throughput = frame.download_throughput_bps() / 1e6
    bulk = (frame.bytes_down >= min_bytes) & np.isfinite(throughput)
    local_hour = local_hour_of(frame)
    night = (local_hour >= NIGHT_HOURS[0]) & (local_hour < NIGHT_HOURS[1])
    peak = (local_hour >= PEAK_HOURS[0]) & (local_hour < PEAK_HOURS[1])

    samples: Dict[str, np.ndarray] = {}
    night_boxes: Dict[str, BoxplotStats] = {}
    peak_boxes: Dict[str, BoxplotStats] = {}
    for country in countries:
        mask = frame.country_mask(country) & bulk
        samples[country] = throughput[mask]
        night_boxes[country] = boxplot_stats(throughput[mask & night])
        peak_boxes[country] = boxplot_stats(throughput[mask & peak])
    return Fig11Result(
        samples_mbps=samples, night_boxes=night_boxes, peak_boxes=peak_boxes
    )


def render(result: Fig11Result) -> str:
    rows = []
    for country in result.countries():
        n = result.n_samples(country)
        if n == 0:
            continue
        rows.append(
            (
                country,
                n,
                f"{result.median_mbps(country):.1f}",
                f"{result.fraction_above(country, 25.0) * 100:.0f} %",
                f"{result.night_median(country):.1f}",
                f"{result.peak_median(country):.1f}",
                f"{result.peak_degradation(country) * 100:.0f} %",
            )
        )
    return format_table(
        ["Country", "Bulk flows", "Median Mb/s", ">25 Mb/s", "Night med", "Peak med", "Drop"],
        rows,
        title="Figure 11: bulk download throughput (flows ≥ 10 MB)",
    )


from repro.analysis import registry as _registry

_registry.register(
    name="fig11",
    title="Bulk download throughput",
    module=__name__,
    columns=("country_idx", "hour_utc", "bytes_down", "duration_s"),
    compute_frame=compute,
    compute_rollup=from_rollup,
    render=render,
)
