"""Figure 12 — video-session QoE per country and plan (extension).

The paper stops at bulk throughput (Figure 11a), whose CCDF knees sit
at the commercial plan rates. This extension projects those same plan
rates onto adaptive-bitrate video sessions
(:class:`~repro.traffic.sessions.VideoSessionModel`): per-session
rebuffer ratio, mean resolution level on the bitrate ladder, and level
switches, aggregated per (country, plan). The shaping presets
(``shaped-vs-unshaped``) make the operator-policy trade-off visible as
a QoE delta rather than a raw rate cap.

No published values exist for this figure; the Figure 11a plan-rate
knees (30/50/100 Mb/s Europe, 10/30 Mb/s Africa) are the reference
points a sensible QoE gradient must follow.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Tuple

import numpy as np

from repro.analysis.aggregate import format_table
from repro.analysis.dataset import FlowFrame
from repro.satcom.plans import PLAN_ORDER, plan_index_bulk

#: Figure 11a plan-rate knees — the throughput context for the QoE rows.
PAPER_PLAN_KNEES_MBPS = {
    "Europe": (30.0, 50.0, 100.0),
    "Africa": (10.0, 30.0),
}


@dataclass
class Fig12Result:
    """Per-(plan, country) session counters and QoE sums.

    Arrays are ``(n_plans, n_countries)`` over the capture's full
    country pool and :data:`PLAN_ORDER`; both the frame and the rollup
    path produce this exact shape, which is what makes the render
    parity trivial.
    """

    countries: List[str]
    plans: Tuple[str, ...]
    sessions: np.ndarray  # int64
    rebuffer_sum: np.ndarray  # float64
    level_sum: np.ndarray  # float64
    switch_sum: np.ndarray  # float64

    def total_sessions(self) -> int:
        return int(self.sessions.sum())

    def cell(self, country: str, plan: str) -> Tuple[int, float, float, float]:
        """(sessions, mean rebuffer, mean level, mean switches)."""
        p = self.plans.index(plan)
        c = self.countries.index(country)
        n = int(self.sessions[p, c])
        if n == 0:
            return 0, float("nan"), float("nan"), float("nan")
        return (
            n,
            float(self.rebuffer_sum[p, c] / n),
            float(self.level_sum[p, c] / n),
            float(self.switch_sum[p, c] / n),
        )

    def mean_rebuffer(self, country: str) -> float:
        """Session-weighted mean rebuffer ratio across plans."""
        c = self.countries.index(country)
        n = self.sessions[:, c].sum()
        if n == 0:
            return float("nan")
        return float(self.rebuffer_sum[:, c].sum() / n)

    def mean_level(self, country: str) -> float:
        c = self.countries.index(country)
        n = self.sessions[:, c].sum()
        if n == 0:
            return float("nan")
        return float(self.level_sum[:, c].sum() / n)


def _dedupe_sessions(frame: FlowFrame):
    """One row per session: ABR chunks repeat the session's QoE triple,
    so dedupe on the globally-unique ``session_id``."""
    has = frame.session_id >= 0
    if not has.any():
        return None
    ids = frame.session_id[has]
    _, first = np.unique(ids, return_index=True)
    return (
        plan_index_bulk(frame.plan_down_mbps[has][first]).astype(np.int64),
        frame.country_idx[has][first].astype(np.int64),
        frame.qoe_rebuffer[has][first].astype(np.float64),
        frame.qoe_level[has][first].astype(np.float64),
        frame.qoe_switches[has][first].astype(np.float64),
    )


def compute(frame: FlowFrame) -> Fig12Result:
    """Measure per-(country, plan) QoE from the flow table."""
    nc = len(frame.countries)
    npl = len(PLAN_ORDER)
    shape = (npl, nc)
    result = Fig12Result(
        countries=list(frame.countries),
        plans=PLAN_ORDER,
        sessions=np.zeros(shape, dtype=np.int64),
        rebuffer_sum=np.zeros(shape, dtype=np.float64),
        level_sum=np.zeros(shape, dtype=np.float64),
        switch_sum=np.zeros(shape, dtype=np.float64),
    )
    deduped = _dedupe_sessions(frame)
    if deduped is None:
        return result
    plan, country, rebuf, level, switches = deduped
    ok = (plan >= 0) & np.isfinite(rebuf) & np.isfinite(level)
    if not ok.any():
        return result
    rows = plan[ok] * nc + country[ok]
    size = npl * nc
    result.sessions += np.bincount(rows, minlength=size).reshape(shape)
    result.rebuffer_sum += np.bincount(
        rows, weights=rebuf[ok], minlength=size
    ).reshape(shape)
    result.level_sum += np.bincount(
        rows, weights=level[ok], minlength=size
    ).reshape(shape)
    result.switch_sum += np.bincount(
        rows, weights=switches[ok], minlength=size
    ).reshape(shape)
    return result


def from_rollup(rollup) -> Fig12Result:
    """Figure 12 from the v4 QoE bank — the same counters the frame
    path computes, folded window by window."""
    nc = len(rollup.countries)
    shape = (len(PLAN_ORDER), nc)
    return Fig12Result(
        countries=list(rollup.countries),
        plans=PLAN_ORDER,
        sessions=rollup.qoe_sessions.reshape(shape).copy(),
        rebuffer_sum=rollup.qoe_rebuffer_sum.reshape(shape).copy(),
        level_sum=rollup.qoe_level_sum.reshape(shape).copy(),
        switch_sum=rollup.qoe_switch_sum.reshape(shape).copy(),
    )


def render(result: Fig12Result) -> str:
    rows = []
    for country in result.countries:
        for plan in result.plans:
            n, rebuf, level, switches = result.cell(country, plan)
            if n == 0:
                continue
            rows.append(
                (
                    country,
                    plan,
                    n,
                    f"{rebuf * 100:.2f} %",
                    f"{level:.2f}",
                    f"{switches:.2f}",
                )
            )
    title = "Figure 12: video-session QoE per country and plan (extension)"
    if not rows:
        return (
            f"{title}\n  no video sessions in this capture "
            "(generate with --scenario video-streaming or "
            "--set traffic.qoe.enabled=true)"
        )
    return format_table(
        ["Country", "Plan", "Sessions", "Rebuffer", "Mean level", "Switches"],
        rows,
        title=title,
    )


from repro.analysis import registry as _registry

_registry.register(
    name="fig12",
    title="Video-session QoE (extension)",
    module=__name__,
    columns=(
        "country_idx",
        "plan_down_mbps",
        "session_id",
        "qoe_rebuffer",
        "qoe_level",
        "qoe_switches",
    ),
    compute_frame=compute,
    compute_rollup=from_rollup,
    render=render,
    exact_parity=True,
)
