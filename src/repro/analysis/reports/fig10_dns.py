"""Figure 10 — DNS resolver adoption and median response time.

Paper (shares are % of DNS traffic; last column median response):
Operator-EU is used mostly in Europe (Ireland 44 %, UK 38 %, Spain
29 %) and is fastest at ~4 ms; Google dominates Africa (Congo 86 %);
the Nigerian operator resolver costs ~120 ms (Italy↔Nigeria detour);
Baidu ~356 ms and 114DNS ~110 ms serve Chinese communities in Africa.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Sequence

import numpy as np

from repro.analysis.aggregate import format_table
from repro.analysis.dataset import FlowFrame
from repro.internet.resolvers import RESOLVER_SHARES
from repro.traffic.profiles import TOP_COUNTRIES

PAPER_MEDIAN_MS: Dict[str, float] = {
    "Operator-EU": 3.98,
    "Google": 21.98,
    "CloudFlare": 19.97,
    "Nigerian": 119.98,
    "Open DNS": 17.99,
    "Level3": 23.99,
    "Baidu": 355.97,
    "114DNS": 109.98,
    "Other": 29.97,
}

PAPER_SHARES = RESOLVER_SHARES
"""The published adoption matrix (also the population input)."""


@dataclass
class Fig10Result:
    """Resolver adoption per country + median response times."""

    shares_pct: Dict[str, Dict[str, float]]  # resolver → country → %
    median_response_ms: Dict[str, float]

    def share(self, resolver: str, country: str) -> float:
        return self.shares_pct[resolver].get(country, 0.0)


def compute(frame: FlowFrame, countries: Sequence[str] = TOP_COUNTRIES) -> Fig10Result:
    """Measure resolver shares (of DNS flows) and response medians."""
    dns_mask = frame.resolver_idx >= 0
    shares: Dict[str, Dict[str, float]] = {name: {} for name in frame.resolvers}
    medians: Dict[str, float] = {}
    for country in countries:
        mask = dns_mask & frame.country_mask(country)
        total = int(mask.sum())
        if total == 0:
            continue
        for r_idx, resolver in enumerate(frame.resolvers):
            count = int((frame.resolver_idx[mask] == r_idx).sum())
            shares[resolver][country] = count / total * 100.0
    for r_idx, resolver in enumerate(frame.resolvers):
        values = frame.dns_response_ms[dns_mask & (frame.resolver_idx == r_idx)]
        values = values[np.isfinite(values)]
        if len(values):
            medians[resolver] = float(np.median(values))
    return Fig10Result(shares_pct=shares, median_response_ms=medians)


def from_rollup(rollup, countries: Sequence[str] = TOP_COUNTRIES) -> Fig10Result:
    """Figure 10 from a :class:`~repro.stream.StreamRollup`.

    Adoption shares are exact (integer DNS-flow counters per
    (country, resolver)); the response-time medians interpolate inside
    a sub-decade log histogram bin.
    """
    shares: Dict[str, Dict[str, float]] = {name: {} for name in rollup.resolvers}
    medians: Dict[str, float] = {}
    for country in countries:
        row = rollup.country_row(country)
        counts = rollup.dns_cr[row]
        total = int(counts.sum())
        if total == 0:
            continue
        for r_idx, resolver in enumerate(rollup.resolvers):
            shares[resolver][country] = int(counts[r_idx]) / total * 100.0
    for r_idx, resolver in enumerate(rollup.resolvers):
        if rollup.h10_resp.total(r_idx) > 0:
            medians[resolver] = rollup.h10_resp.quantile(r_idx, 0.5)
    return Fig10Result(shares_pct=shares, median_response_ms=medians)


def render(result: Fig10Result) -> str:
    countries = sorted(
        {c for shares in result.shares_pct.values() for c in shares}
    )
    rows = []
    for resolver, shares in result.shares_pct.items():
        median = result.median_response_ms.get(resolver, float("nan"))
        paper = PAPER_MEDIAN_MS.get(resolver, float("nan"))
        rows.append(
            [resolver]
            + [f"{shares.get(c, 0.0):.1f}" for c in countries]
            + [f"{median:.1f} (paper {paper:.1f})"]
        )
    return format_table(
        ["Resolver"] + countries + ["Median ms"],
        rows,
        title="Figure 10: resolver adoption (% of DNS flows) and response time",
    )


from repro.analysis import registry as _registry

_registry.register(
    name="fig10",
    title="Resolver adoption and response time",
    module=__name__,
    columns=("country_idx", "resolver_idx", "dns_response_ms"),
    compute_frame=compute,
    compute_rollup=from_rollup,
    render=render,
)
