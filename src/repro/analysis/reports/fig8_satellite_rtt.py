"""Figure 8 — satellite-segment RTT (TLS-handshake method).

(a) per-country distributions at night (2:00–5:00 local) vs peak
(13:00–20:00 local). Paper: the floor is above 550 ms everywhere;
Spain is best at night (82 % of samples < 1 s); ~20 % of Congo's
samples exceed 2 s even off-peak (PEP saturation); Ireland's heavy tail
is load-independent (channel impairments at the coverage edge).

(b) median satellite RTT per beam against normalized beam utilization:
Congo and Ireland sit high regardless of utilization.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np

from repro.analysis.aggregate import format_table, local_hour_of
from repro.analysis.dataset import FlowFrame
from repro.analysis.stats import cdf_at, quantiles
from repro.traffic.profiles import TOP_COUNTRIES

NIGHT_HOURS = (2.0, 5.0)
PEAK_HOURS = (13.0, 20.0)

PAPER_SPAIN_NIGHT_UNDER_1S = 0.82
PAPER_CONGO_OVER_2S = 0.20
PAPER_FLOOR_MS = 550.0


@dataclass
class Fig8aResult:
    """country → {'night'|'peak' → sat-RTT samples (ms)}."""

    samples: Dict[str, Dict[str, np.ndarray]]

    def quartiles_ms(self, country: str, period: str) -> np.ndarray:
        return quantiles(self.samples[country][period])

    def fraction_under(self, country: str, period: str, ms: float) -> float:
        return cdf_at(self.samples[country][period], ms)

    def fraction_over(self, country: str, period: str, ms: float) -> float:
        return 1.0 - self.fraction_under(country, period, ms)

    def minimum_ms(self, country: str) -> float:
        values = np.concatenate(
            [self.samples[country]["night"], self.samples[country]["peak"]]
        )
        values = values[np.isfinite(values)]
        return float(values.min()) if len(values) else float("nan")


@dataclass
class Fig8bResult:
    """Per-beam (median sat RTT ms, normalized utilization, country)."""

    rows: List[Tuple[str, str, float, float]]  # (beam, country, median, util)


@dataclass
class Fig8aRollupView:
    """Figure 8a stats served from per-country night/peak histograms.

    Same query surface as :class:`Fig8aResult`; quantiles and CDF
    fractions interpolate inside a 25 ms bin, and the per-country
    minimum is tracked exactly. ``samples`` maps country → period →
    the backing :class:`~repro.stream.HistFamily` row, so ``render``
    can iterate countries the same way.
    """

    rollup: object
    samples: Dict[str, Dict[str, int]]  # country -> period -> rollup row

    def _hist(self, period: str):
        return self.rollup.h8_night if period == "night" else self.rollup.h8_peak

    def quartiles_ms(self, country: str, period: str) -> np.ndarray:
        return self._hist(period).quantiles(self.samples[country][period])

    def fraction_under(self, country: str, period: str, ms: float) -> float:
        return self._hist(period).cdf_at(self.samples[country][period], ms)

    def fraction_over(self, country: str, period: str, ms: float) -> float:
        return 1.0 - self.fraction_under(country, period, ms)

    def minimum_ms(self, country: str) -> float:
        value = self.rollup.sat_min_c[self.rollup.country_row(country)]
        return float(value) if np.isfinite(value) else float("nan")


def from_rollup(rollup, countries: Sequence[str] = TOP_COUNTRIES) -> Fig8aRollupView:
    """Figure 8a from a :class:`~repro.stream.StreamRollup`.

    8b is frame-only: per-beam medians need the beam axis, which the
    rollup deliberately does not sketch (see DESIGN.md §8).
    """
    return Fig8aRollupView(
        rollup=rollup,
        samples={
            c: {"night": rollup.country_row(c), "peak": rollup.country_row(c)}
            for c in countries
        },
    )


def compute_fig8a(
    frame: FlowFrame, countries: Sequence[str] = TOP_COUNTRIES
) -> Fig8aResult:
    """Night/peak satellite-RTT samples per country."""
    local_hour = local_hour_of(frame)
    has_sat = np.isfinite(frame.sat_rtt_ms)
    night = (local_hour >= NIGHT_HOURS[0]) & (local_hour < NIGHT_HOURS[1])
    peak = (local_hour >= PEAK_HOURS[0]) & (local_hour < PEAK_HOURS[1])
    samples: Dict[str, Dict[str, np.ndarray]] = {}
    for country in countries:
        mask = frame.country_mask(country) & has_sat
        samples[country] = {
            "night": frame.sat_rtt_ms[mask & night].astype(np.float64),
            "peak": frame.sat_rtt_ms[mask & peak].astype(np.float64),
        }
    return Fig8aResult(samples=samples)


def compute_fig8b(
    frame: FlowFrame, countries: Sequence[str] = TOP_COUNTRIES
) -> Fig8bResult:
    """Median peak-time satellite RTT per beam vs normalized utilization.

    Utilization is proxied by the beam's peak-time traffic volume,
    normalized to the busiest beam — the paper normalizes the same way
    to avoid disclosing absolute figures.
    """
    local_hour = local_hour_of(frame)
    peak = (local_hour >= PEAK_HOURS[0]) & (local_hour < PEAK_HOURS[1])
    has_sat = np.isfinite(frame.sat_rtt_ms)
    country_of_beam: Dict[int, str] = {}
    volumes: Dict[int, float] = {}
    medians: Dict[int, float] = {}
    volume = frame.bytes_total()
    wanted = {frame.countries.index(c) for c in countries}
    for beam_idx in np.unique(frame.beam_idx):
        if beam_idx < 0:
            continue
        beam_mask = frame.beam_idx == beam_idx
        country_idx = int(frame.country_idx[beam_mask][0])
        if country_idx not in wanted:
            continue
        peak_mask = beam_mask & peak
        sat = frame.sat_rtt_ms[peak_mask & has_sat]
        if len(sat) < 10:
            continue
        country_of_beam[int(beam_idx)] = frame.countries[country_idx]
        volumes[int(beam_idx)] = float(volume[peak_mask].sum())
        medians[int(beam_idx)] = float(np.median(sat))
    max_volume = max(volumes.values()) if volumes else 1.0
    rows = [
        (
            frame.beams[beam_idx],
            country_of_beam[beam_idx],
            medians[beam_idx],
            volumes[beam_idx] / max_volume,
        )
        for beam_idx in sorted(volumes)
    ]
    return Fig8bResult(rows=rows)


def render(result_a: Fig8aResult, result_b: Optional[Fig8bResult] = None) -> str:
    rows = []
    for country, periods in result_a.samples.items():
        for period in ("night", "peak"):
            q25, med, q75 = result_a.quartiles_ms(country, period)
            rows.append(
                (
                    country,
                    period,
                    f"{med:.0f}",
                    f"{q25:.0f}/{q75:.0f}",
                    f"{result_a.fraction_under(country, period, 1000.0) * 100:.0f} %",
                    f"{result_a.fraction_over(country, period, 2000.0) * 100:.0f} %",
                )
            )
    part_a = format_table(
        ["Country", "Period", "Median ms", "Q1/Q3", "<1 s", ">2 s"],
        rows,
        title="Figure 8a: satellite RTT night vs peak",
    )
    if result_b is None:
        return part_a
    part_b = format_table(
        ["Beam", "Country", "Median ms", "Norm. util"],
        [(b, c, f"{m:.0f}", f"{u:.2f}") for b, c, m, u in result_b.rows],
        title="Figure 8b: per-beam median satellite RTT",
    )
    return part_a + "\n\n" + part_b


def _compute_both(frame: FlowFrame) -> Tuple[Fig8aResult, Fig8bResult]:
    """Frame path renders both panels; the rollup path serves 8a only."""
    return compute_fig8a(frame), compute_fig8b(frame)


def _render_either(result) -> str:
    if isinstance(result, tuple):
        return render(*result)
    return render(result)


from repro.analysis import registry as _registry

_registry.register(
    name="fig8",
    title="Satellite RTT night vs peak (+ per-beam)",
    module=__name__,
    columns=("country_idx", "hour_utc", "beam_idx", "sat_rtt_ms", "bytes_up", "bytes_down"),
    compute_frame=_compute_both,
    compute_rollup=from_rollup,
    render=_render_either,
)
