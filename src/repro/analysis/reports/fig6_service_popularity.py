"""Figure 6 — heatmap of service popularity per country.

"Percentage of customers accessing different services on a daily
basis": for each (service, country), the average over days of the share
of the country's customers with at least one flow classified to that
service. Services are identified from domains with the Table 3 regexes
— the generator's ground-truth labels are deliberately *not* used, so
this report exercises the classification path end to end.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Sequence

import numpy as np

from repro.analysis.aggregate import customers_per_country, format_table
from repro.analysis.classify import ServiceClassifier
from repro.analysis.dataset import FlowFrame
from repro.traffic.profiles import FIG6_ADOPTION_PCT, TOP_COUNTRIES

#: Services shown in the heatmap (the paper restricts to those whose
#: domains reflect intentional visits).
HEATMAP_SERVICES = (
    "Google",
    "Whatsapp",
    "Snapchat",
    "Wechat",
    "Telegram",
    "Instagram",
    "Tiktok",
    "Netflix",
    "Primevideo",
    "Sky",
    "Spotify",
    "Dropbox",
)

PAPER_MATRIX = FIG6_ADOPTION_PCT
"""The published heatmap, re-exported for comparisons."""


@dataclass
class Fig6Result:
    """service → country → % of customers using it per day."""

    matrix: Dict[str, Dict[str, float]]

    def popularity(self, service: str, country: str) -> float:
        return self.matrix[service][country]

    def average(self, service: str) -> float:
        values = list(self.matrix[service].values())
        return float(np.mean(values)) if values else float("nan")


def compute(
    frame: FlowFrame,
    countries: Sequence[str] = TOP_COUNTRIES,
    classifier: ServiceClassifier = None,
) -> Fig6Result:
    """Measure daily service popularity via the Table 3 classifier."""
    classifier = classifier or ServiceClassifier()
    labels, names = classifier.label_frame(frame)
    name_index = {name: i for i, name in enumerate(names)}
    total_customers = customers_per_country(frame)
    days = np.unique(frame.day)

    matrix: Dict[str, Dict[str, float]] = {s: {} for s in HEATMAP_SERVICES}
    for country in countries:
        country_mask = frame.country_mask(country)
        denom = total_customers.get(country, 0)
        if denom == 0:
            continue
        for service in HEATMAP_SERVICES:
            service_mask = labels == name_index[service]
            mask = country_mask & service_mask
            daily_counts = []
            for day in days:
                users = np.unique(frame.customer_id[mask & (frame.day == day)])
                daily_counts.append(len(users))
            matrix[service][country] = float(np.mean(daily_counts) / denom * 100.0)
    return Fig6Result(matrix=matrix)


def from_rollup(
    rollup, countries: Sequence[str] = TOP_COUNTRIES
) -> Fig6Result:
    """Figure 6 from a :class:`~repro.stream.StreamRollup` — exact.

    The rollup folds the same Table 3 classifier over each window's
    domain pool and counts distinct customers per (country, service,
    day); summed over days and divided by the day count this *is* the
    frame path's mean of daily user counts.
    """
    n_days = rollup.n_days()
    customers = rollup.customers_c()
    matrix: Dict[str, Dict[str, float]] = {s: {} for s in HEATMAP_SERVICES}
    for country in countries:
        row = rollup.country_row(country)
        denom = int(customers[row])
        if denom == 0 or n_days == 0:
            continue
        for service in HEATMAP_SERVICES:
            total = int(rollup.svc_cust_days[row, rollup.service_row(service)])
            matrix[service][country] = float(total / n_days / denom * 100.0)
    return Fig6Result(matrix=matrix)


def render(result: Fig6Result) -> str:
    countries = list(next(iter(result.matrix.values())).keys())
    rows: List[List[str]] = []
    for service in HEATMAP_SERVICES:
        row = [service]
        for country in countries:
            measured = result.matrix[service].get(country, float("nan"))
            paper = PAPER_MATRIX[service].get(country)
            row.append(f"{measured:.1f} ({paper:.1f})" if paper is not None else f"{measured:.1f}")
        rows.append(row)
    return format_table(
        ["Service"] + countries,
        rows,
        title="Figure 6: % customers using service daily — measured (paper)",
    )


from repro.analysis import registry as _registry

_registry.register(
    name="fig6",
    title="Daily service popularity heatmap",
    module=__name__,
    columns=("country_idx", "customer_id", "day", "domain_idx"),
    compute_frame=compute,
    compute_rollup=from_rollup,
    render=render,
    exact_parity=True,
)
