"""Table 1 — TCP/UDP traffic breakdown by protocol.

Paper: HTTPS 56.0 %, HTTP 12.1 %, other TCP 7.0 %, QUIC 19.6 %,
RTP 1.1 %, DNS < 0.1 %, other UDP 4.2 % of total volume.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict

from repro.analysis.aggregate import format_table, protocol_volume_share
from repro.analysis.dataset import FlowFrame

PAPER_SHARES: Dict[str, float] = {
    "tcp/https": 56.0,
    "tcp/http": 12.1,
    "tcp/other": 7.0,
    "udp/quic": 19.6,
    "udp/rtp": 1.1,
    "udp/dns": 0.05,  # "< 0.1 %"
    "udp/other": 4.2,
}


@dataclass
class Table1Result:
    """Measured protocol volume shares (percent)."""

    shares: Dict[str, float]

    def share(self, label: str) -> float:
        return self.shares[label]


def compute(frame: FlowFrame) -> Table1Result:
    """Measure the protocol breakdown over the whole capture."""
    return Table1Result(shares=protocol_volume_share(frame))


def from_rollup(rollup) -> Table1Result:
    """Table 1 from a :class:`~repro.stream.StreamRollup` — exact
    (the (country, l7, hour) volume matrix sums losslessly)."""
    from repro.flowmeter.records import L7_ORDER

    by_l7 = rollup.volume_by_l7()
    total = by_l7.sum()
    if total <= 0:
        return Table1Result(shares={label.value: 0.0 for label in L7_ORDER})
    return Table1Result(
        shares={
            label.value: float(by_l7[i] / total * 100.0)
            for i, label in enumerate(L7_ORDER)
        }
    )


def render(result: Table1Result) -> str:
    """Paper-vs-measured comparison table."""
    rows = [
        (label, f"{PAPER_SHARES[label]:.1f} %", f"{measured:.1f} %")
        for label, measured in result.shares.items()
    ]
    return format_table(
        ["Protocol", "Paper", "Measured"], rows, title="Table 1: protocol volume share"
    )


from repro.analysis import registry as _registry

_registry.register(
    name="table1",
    title="Protocol volume breakdown",
    module=__name__,
    columns=("l7_idx", "bytes_up", "bytes_down"),
    compute_frame=compute,
    compute_rollup=from_rollup,
    render=render,
    exact_parity=True,
)
