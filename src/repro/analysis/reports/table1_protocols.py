"""Table 1 — TCP/UDP traffic breakdown by protocol.

Paper: HTTPS 56.0 %, HTTP 12.1 %, other TCP 7.0 %, QUIC 19.6 %,
RTP 1.1 %, DNS < 0.1 %, other UDP 4.2 % of total volume.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict

from repro.analysis.aggregate import format_table, protocol_volume_share
from repro.analysis.dataset import FlowFrame

PAPER_SHARES: Dict[str, float] = {
    "tcp/https": 56.0,
    "tcp/http": 12.1,
    "tcp/other": 7.0,
    "udp/quic": 19.6,
    "udp/rtp": 1.1,
    "udp/dns": 0.05,  # "< 0.1 %"
    "udp/other": 4.2,
}


@dataclass
class Table1Result:
    """Measured protocol volume shares (percent)."""

    shares: Dict[str, float]

    def share(self, label: str) -> float:
        return self.shares[label]


def compute(frame: FlowFrame) -> Table1Result:
    """Measure the protocol breakdown over the whole capture."""
    return Table1Result(shares=protocol_volume_share(frame))


def render(result: Table1Result) -> str:
    """Paper-vs-measured comparison table."""
    rows = [
        (label, f"{PAPER_SHARES[label]:.1f} %", f"{measured:.1f} %")
        for label, measured in result.shares.items()
    ]
    return format_table(
        ["Protocol", "Paper", "Measured"], rows, title="Table 1: protocol volume share"
    )
