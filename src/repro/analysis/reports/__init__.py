"""One module per table/figure of the paper's evaluation.

Every module exposes ``compute(frame, ...)`` returning a typed result,
a ``PAPER_*`` constant with the published values for comparison, and
``render(result)`` producing the text the benchmark harness prints.
"""

from repro.analysis.reports import (
    appendix_ground_rtt,
    web_qoe,
    fig2_country,
    fig3_protocol_country,
    fig4_diurnal,
    fig5_volumes,
    fig6_service_popularity,
    fig7_service_volume,
    fig8_satellite_rtt,
    fig9_ground_rtt,
    fig10_dns,
    fig11_throughput,
    table1_protocols,
    table2_resolver_rtt,
)

__all__ = [
    "appendix_ground_rtt",
    "web_qoe",
    "table1_protocols",
    "fig2_country",
    "fig3_protocol_country",
    "fig4_diurnal",
    "fig5_volumes",
    "fig6_service_popularity",
    "fig7_service_volume",
    "fig8_satellite_rtt",
    "fig9_ground_rtt",
    "fig10_dns",
    "table2_resolver_rtt",
    "fig11_throughput",
]
