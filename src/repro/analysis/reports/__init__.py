"""One module per table/figure of the paper's evaluation.

Every module exposes ``compute(frame, ...)`` returning a typed result,
a ``PAPER_*`` constant with the published values for comparison, and
``render(result)`` producing the text the benchmark harness prints.
Each module also registers itself with
:mod:`repro.analysis.registry`; the import order below *is* the
registry order, which is what ``repro report --which all`` runs and
the order the docs' capability matrix lists.
"""

from repro.analysis.reports import (
    table1_protocols,
    fig2_country,
    fig3_protocol_country,
    fig4_diurnal,
    fig5_volumes,
    fig6_service_popularity,
    fig7_service_volume,
    fig8_satellite_rtt,
    fig8b_rtt_timeseries,
    fig9_ground_rtt,
    fig10_dns,
    table2_resolver_rtt,
    fig11_throughput,
    fig12_video_qoe,
    appendix_ground_rtt,
    web_qoe,
)

__all__ = [
    "table1_protocols",
    "fig2_country",
    "fig3_protocol_country",
    "fig4_diurnal",
    "fig5_volumes",
    "fig6_service_popularity",
    "fig7_service_volume",
    "fig8_satellite_rtt",
    "fig8b_rtt_timeseries",
    "fig9_ground_rtt",
    "fig10_dns",
    "table2_resolver_rtt",
    "fig11_throughput",
    "fig12_video_qoe",
    "appendix_ground_rtt",
    "web_qoe",
]
