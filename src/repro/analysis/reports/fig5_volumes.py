"""Figure 5 — CCDFs of daily flows / download / upload per customer.

Paper: (a) >50 % of European customers generate fewer than 250 flows a
day (idle CPEs) while African customers generate almost an order of
magnitude more; (b) heavy hitters (>10 GB down/day) are ~8 % in Congo
vs ~4 % in Spain; (c) uploads >1 GB/day: Congo 10 %, Nigeria 7 %,
South Africa 5 %, Europe 3–4 %.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Sequence, Tuple

import numpy as np

from repro.analysis.aggregate import (
    customer_day_bytes,
    customer_day_flow_counts,
    format_table,
)
from repro.analysis.dataset import FlowFrame
from repro.analysis.stats import ccdf, ccdf_at
from repro.constants import ACTIVE_CUSTOMER_FLOW_THRESHOLD, BYTES_PER_GB
from repro.traffic.profiles import TOP_COUNTRIES

PAPER_HEAVY_DOWNLOADERS_PCT: Dict[str, float] = {"Congo": 8.0, "Spain": 4.0}
PAPER_HEAVY_UPLOADERS_PCT: Dict[str, float] = {
    "Congo": 10.0,
    "Nigeria": 7.0,
    "South Africa": 5.0,
    "UK": 3.5,
    "Spain": 3.5,
    "Ireland": 3.5,
}


@dataclass
class Fig5Result:
    """Per-country customer-day samples and the headline fractions."""

    flow_counts: Dict[str, np.ndarray]
    download_bytes: Dict[str, np.ndarray]
    upload_bytes: Dict[str, np.ndarray]

    def idle_fraction(self, country: str) -> float:
        """Share of customer-days under the 250-flow activity knee."""
        counts = self.flow_counts[country]
        return float((counts < ACTIVE_CUSTOMER_FLOW_THRESHOLD).mean())

    def heavy_downloader_pct(self, country: str, threshold_gb: float = 10.0) -> float:
        return ccdf_at(self.download_bytes[country], threshold_gb * BYTES_PER_GB) * 100.0

    def heavy_uploader_pct(self, country: str, threshold_gb: float = 1.0) -> float:
        return ccdf_at(self.upload_bytes[country], threshold_gb * BYTES_PER_GB) * 100.0

    def flow_ccdf(self, country: str) -> Tuple[np.ndarray, np.ndarray]:
        return ccdf(self.flow_counts[country])

    def median_flows(self, country: str) -> float:
        return float(np.median(self.flow_counts[country]))


@dataclass
class Fig5RollupView:
    """Figure 5 headline stats served from rollup sketches.

    Mirrors :class:`Fig5Result`'s query surface (so :func:`render`
    accepts either): the idle fraction is exact (a dedicated counter),
    the heavy-hitter fractions are exact at the 1/10 GB thresholds
    (decade bin edges), and medians interpolate inside a histogram bin.
    """

    rollup: object
    flow_counts: Dict[str, int]  # country -> rollup row (render iterates keys)

    def idle_fraction(self, country: str) -> float:
        row = self.flow_counts[country]
        total = self.rollup.cd_total_c[row]
        return float(self.rollup.cd_idle_c[row] / total) if total else float("nan")

    def heavy_downloader_pct(self, country: str, threshold_gb: float = 10.0) -> float:
        row = self.flow_counts[country]
        return self.rollup.h5_down.ccdf_at(row, threshold_gb * BYTES_PER_GB) * 100.0

    def heavy_uploader_pct(self, country: str, threshold_gb: float = 1.0) -> float:
        row = self.flow_counts[country]
        return self.rollup.h5_up.ccdf_at(row, threshold_gb * BYTES_PER_GB) * 100.0

    def median_flows(self, country: str) -> float:
        return self.rollup.h5_flows.quantile(self.flow_counts[country], 0.5)


def from_rollup(rollup, countries: Sequence[str] = TOP_COUNTRIES) -> Fig5RollupView:
    """Figure 5 from a :class:`~repro.stream.StreamRollup`."""
    return Fig5RollupView(
        rollup=rollup,
        flow_counts={c: rollup.country_row(c) for c in countries},
    )


def compute(frame: FlowFrame, countries: Sequence[str] = TOP_COUNTRIES) -> Fig5Result:
    """Customer-day distributions for the requested countries."""
    return Fig5Result(
        flow_counts={c: customer_day_flow_counts(frame, c) for c in countries},
        download_bytes={c: customer_day_bytes(frame, c, "down") for c in countries},
        upload_bytes={c: customer_day_bytes(frame, c, "up") for c in countries},
    )


def render(result: Fig5Result) -> str:
    rows = []
    for country in result.flow_counts:
        paper_dl = PAPER_HEAVY_DOWNLOADERS_PCT.get(country)
        paper_ul = PAPER_HEAVY_UPLOADERS_PCT.get(country)
        rows.append(
            (
                country,
                f"{result.median_flows(country):.0f}",
                f"{result.idle_fraction(country) * 100:.0f} %",
                f"{result.heavy_downloader_pct(country):.1f} %"
                + (f" (paper {paper_dl:.0f})" if paper_dl else ""),
                f"{result.heavy_uploader_pct(country):.1f} %"
                + (f" (paper {paper_ul:.0f})" if paper_ul else ""),
            )
        )
    return format_table(
        ["Country", "Median flows/day", "<250 flows", ">10 GB down", ">1 GB up"],
        rows,
        title="Figure 5: per-customer daily activity and volume",
    )


from repro.analysis import registry as _registry

_registry.register(
    name="fig5",
    title="Per-customer daily activity and volume",
    module=__name__,
    columns=("country_idx", "customer_id", "day", "bytes_up", "bytes_down"),
    compute_frame=compute,
    compute_rollup=from_rollup,
    render=render,
)
