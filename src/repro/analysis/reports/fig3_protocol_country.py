"""Figure 3 — protocol share per country (top-10 by volume).

Paper's observations: Germany's TCP is ~35 % non-web (VPNs); Ireland
and the U.K. carry more plain HTTP than the rest (Sky video, Microsoft
updates); the three African countries look alike.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List

from repro.analysis.aggregate import (
    format_table,
    protocol_volume_share,
    top_countries_by_volume,
)
from repro.analysis.dataset import FlowFrame


@dataclass
class Fig3Result:
    """country → {protocol label → volume %}."""

    shares: Dict[str, Dict[str, float]]

    def share(self, country: str, label: str) -> float:
        return self.shares[country][label]


def compute(frame: FlowFrame, top: int = 10) -> Fig3Result:
    """Protocol mix per top-``top`` country."""
    shares: Dict[str, Dict[str, float]] = {}
    for country in top_countries_by_volume(frame, top):
        shares[country] = protocol_volume_share(frame, frame.country_mask(country))
    return Fig3Result(shares=shares)


def from_rollup(rollup, top: int = 10) -> Fig3Result:
    """Figure 3 from a :class:`~repro.stream.StreamRollup` — exact,
    read off the (country, l7, hour) volume matrix."""
    from repro.flowmeter.records import L7_ORDER

    volume = rollup.volume_c()
    order = sorted(
        (i for i in range(len(rollup.countries)) if rollup.flows_c[i] > 0),
        key=lambda i: -volume[i],
    )[:top]
    shares: Dict[str, Dict[str, float]] = {}
    for i in order:
        by_l7 = rollup.vol_clh[i].sum(axis=1)
        total = by_l7.sum()
        shares[rollup.countries[i]] = {
            label.value: float(by_l7[j] / total * 100.0) if total > 0 else 0.0
            for j, label in enumerate(L7_ORDER)
        }
    return Fig3Result(shares=shares)


def render(result: Fig3Result) -> str:
    labels = ["tcp/https", "tcp/http", "tcp/other", "udp/quic", "udp/rtp", "udp/other"]
    rows: List[List[str]] = []
    for country, shares in result.shares.items():
        rows.append([country] + [f"{shares[label]:.1f}" for label in labels])
    return format_table(
        ["Country"] + labels,
        rows,
        title="Figure 3: protocol volume share per country (%)",
    )


from repro.analysis import registry as _registry

_registry.register(
    name="fig3",
    title="Protocol share per country",
    module=__name__,
    columns=("country_idx", "l7_idx", "bytes_up", "bytes_down"),
    compute_frame=compute,
    compute_rollup=from_rollup,
    render=render,
    exact_parity=True,
)
