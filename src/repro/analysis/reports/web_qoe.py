"""Extension — web page-load QoE per country and per technology.

Not a paper figure: the paper points at Deutschmann et al. for SatCom
page-load times and releases the ERRANT model so others can study QoE.
This report closes that loop inside the reproduction: per-country GEO
profiles are fitted from the measured capture and driven through the
page-load emulator, alongside the built-in Starlink/FTTH comparisons.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Sequence

import numpy as np

from repro.analysis.aggregate import format_table
from repro.analysis.dataset import FlowFrame
from repro.analysis.stats import BoxplotStats, boxplot_stats
from repro.errant.emulator import Emulator
from repro.errant.model import fit_profile
from repro.errant.profiles import BUILTIN_PROFILES

#: A typical mid-weight page: ~30 objects, ~60 kB median each.
DEFAULT_PAGE = {"n_objects": 30, "object_bytes": 60_000, "parallelism": 6}


@dataclass
class WebQoeResult:
    """Page-load-time distributions (seconds)."""

    country_plt: Dict[str, BoxplotStats]
    technology_plt: Dict[str, BoxplotStats]

    def median_plt(self, name: str) -> float:
        if name in self.country_plt:
            return self.country_plt[name].median
        return self.technology_plt[name].median


def compute(
    frame: FlowFrame,
    countries: Sequence[str] = ("Spain", "UK", "Congo", "Nigeria"),
    technologies: Sequence[str] = ("starlink", "ftth", "adsl"),
    samples: int = 60,
    seed: int = 0,
) -> WebQoeResult:
    """Page-load boxplots per fitted country profile and per builtin
    comparison technology."""
    country_plt: Dict[str, BoxplotStats] = {}
    for country in countries:
        profile = fit_profile(frame, country)
        emulator = Emulator(profile, seed=seed, pep=True)
        plts = emulator.emulate_page_load(n=samples, **DEFAULT_PAGE)
        country_plt[country] = boxplot_stats(plts)

    technology_plt: Dict[str, BoxplotStats] = {}
    for name in technologies:
        emulator = Emulator(BUILTIN_PROFILES[name], seed=seed, pep=False)
        plts = emulator.emulate_page_load(n=samples, **DEFAULT_PAGE)
        technology_plt[name] = boxplot_stats(plts)
    return WebQoeResult(country_plt=country_plt, technology_plt=technology_plt)


def render(result: WebQoeResult) -> str:
    rows = []
    for name, stats in {**result.country_plt, **result.technology_plt}.items():
        rows.append(
            (name, f"{stats.median:.1f}", f"{stats.q1:.1f}", f"{stats.q3:.1f}", f"{stats.p95:.1f}")
        )
    rows.sort(key=lambda r: float(r[1]))
    return format_table(
        ["Access", "Median s", "Q1", "Q3", "p95"],
        rows,
        title="Extension: page-load time (30 objects × 60 kB, 6 connections)",
    )


from repro.analysis import registry as _registry

_registry.register(
    name="web-qoe",
    title="Emulated page-load time (extension)",
    module=__name__,
    columns=("country_idx", "sat_rtt_ms", "ground_rtt_ms", "bytes_up", "bytes_down", "duration_s"),
    compute_frame=compute,
    render=render,
)
