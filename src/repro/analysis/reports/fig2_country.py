"""Figure 2 — per-country breakdown of traffic volume and customer base.

Paper's headline: Congolese customers are ~20 % of the base but ~27 %
of volume (≈600 MB/day each); Spaniards are ~16 % of customers but only
~10 % of volume (≈170 MB/day each) — African customers consume more
per subscription because connections are shared.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Tuple

import numpy as np

from repro.analysis.aggregate import country_breakdown, format_table
from repro.analysis.dataset import FlowFrame

#: (volume %, customer %) the paper reports for the two named countries.
PAPER_SHARES: Dict[str, Tuple[float, float]] = {
    "Congo": (27.0, 20.0),
    "Spain": (10.0, 16.0),
}


@dataclass
class Fig2Result:
    """Per-country (volume %, customer %), sorted by volume."""

    rows: List[Tuple[str, float, float]]

    def shares(self, country: str) -> Tuple[float, float]:
        for name, vol, cust in self.rows:
            if name == country:
                return vol, cust
        raise KeyError(country)

    def over_indexes(self, country: str) -> bool:
        """True when the country's volume share exceeds its customer share."""
        vol, cust = self.shares(country)
        return vol > cust


def compute(frame: FlowFrame) -> Fig2Result:
    """Measure the Figure 2 breakdown."""
    return Fig2Result(rows=country_breakdown(frame))


def from_rollup(rollup) -> Fig2Result:
    """Figure 2 from a :class:`~repro.stream.StreamRollup` — exact
    (volume and distinct-customer counters are lossless sketches)."""
    volume = rollup.volume_c()
    customers = rollup.customers_c()
    total_volume = volume.sum()
    total_customers = customers.sum()
    rows = [
        (
            country,
            float(volume[i] / total_volume * 100.0),
            float(customers[i] / total_customers * 100.0),
        )
        for i, country in enumerate(rollup.countries)
        if rollup.flows_c[i] > 0
    ]
    rows.sort(key=lambda row: -row[1])
    return Fig2Result(rows=rows)


def mean_daily_download_mb(frame: FlowFrame, country: str) -> float:
    """Average download volume per customer-day (paper: Congo ≈600 MB,
    Spain ≈170 MB)."""
    mask = frame.country_mask(country)
    customers = len(np.unique(frame.customer_id[mask]))
    days = len(np.unique(frame.day[mask]))
    if customers == 0 or days == 0:
        return float("nan")
    return float(frame.bytes_down[mask].sum() / customers / days / 1e6)


def render(result: Fig2Result, top: int = 12) -> str:
    """Paper-vs-measured table for the top countries."""
    rows = []
    for name, vol, cust in result.rows[:top]:
        paper = PAPER_SHARES.get(name)
        paper_str = f"{paper[0]:.0f}/{paper[1]:.0f}" if paper else "-"
        rows.append((name, f"{vol:.1f} %", f"{cust:.1f} %", paper_str))
    return format_table(
        ["Country", "Volume", "Customers", "Paper v/c"],
        rows,
        title="Figure 2: per-country volume and customer share",
    )


from repro.analysis import registry as _registry

_registry.register(
    name="fig2",
    title="Per-country volume and customer share",
    module=__name__,
    columns=("country_idx", "customer_id", "bytes_up", "bytes_down"),
    compute_frame=compute,
    compute_rollup=from_rollup,
    render=render,
    exact_parity=True,
)
