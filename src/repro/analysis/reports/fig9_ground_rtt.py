"""Figure 9 — ground-segment RTT (ground station → server) per country.

Paper: the CDF has bumps at ~12 ms (peered CDNs, ~20 % of traffic),
15–17 ms and ~35 ms (European CDNs/clouds, >80 % of European traffic
below ~40 ms), ~95 ms (US East), ~180 ms (US West), and 300–400 ms for
African countries whose local services are reached back through the
Italian ground station. African countries therefore see *higher*
ground RTT than European ones.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Sequence

import numpy as np

from repro.analysis.aggregate import format_table
from repro.analysis.dataset import FlowFrame
from repro.analysis.stats import cdf_at
from repro.flowmeter.records import L7Protocol, L7_ORDER
from repro.traffic.profiles import TOP_COUNTRIES

PAPER_EU_BELOW_40MS = 0.80
PAPER_PEERED_BUMP_MS = 12.0
PAPER_AFRICA_TAIL_MS = (300.0, 400.0)


@dataclass
class Fig9Result:
    """country → ground-RTT samples (ms, volume-weighted medians too)."""

    samples: Dict[str, np.ndarray]
    volume_weighted_share_below: Dict[str, Dict[float, float]]

    def median_ms(self, country: str) -> float:
        return float(np.median(self.samples[country]))

    def fraction_below(self, country: str, ms: float) -> float:
        return cdf_at(self.samples[country], ms)

    def fraction_above(self, country: str, ms: float) -> float:
        return 1.0 - self.fraction_below(country, ms)


@dataclass
class Fig9RollupView:
    """Figure 9 stats served from per-country ground-RTT histograms.

    Same query surface as :class:`Fig9Result`; the flow-count and
    volume-weighted histograms share edges, so both kinds of fraction
    interpolate inside the same sub-decade log bins. ``samples`` maps
    country → rollup row so :func:`render` can iterate countries.
    """

    rollup: object
    samples: Dict[str, int]  # country -> rollup row (render iterates keys)
    volume_weighted_share_below: Dict[str, Dict[float, float]]

    def median_ms(self, country: str) -> float:
        return self.rollup.h9_cnt.quantile(self.samples[country], 0.5)

    def fraction_below(self, country: str, ms: float) -> float:
        return self.rollup.h9_cnt.cdf_at(self.samples[country], ms)

    def fraction_above(self, country: str, ms: float) -> float:
        return 1.0 - self.fraction_below(country, ms)


def from_rollup(
    rollup,
    countries: Sequence[str] = TOP_COUNTRIES,
    thresholds=(15.0, 40.0, 120.0, 250.0),
) -> Fig9RollupView:
    """Figure 9 from a :class:`~repro.stream.StreamRollup`."""
    weighted = {
        country: {
            threshold: rollup.h9_vol.cdf_at(rollup.country_row(country), threshold)
            for threshold in thresholds
        }
        for country in countries
    }
    return Fig9RollupView(
        rollup=rollup,
        samples={c: rollup.country_row(c) for c in countries},
        volume_weighted_share_below=weighted,
    )


def compute(
    frame: FlowFrame,
    countries: Sequence[str] = TOP_COUNTRIES,
    thresholds=(15.0, 40.0, 120.0, 250.0),
) -> Fig9Result:
    """Ground-RTT distributions per country over TCP flows."""
    tcp_mask = np.isin(
        frame.l7_idx,
        [
            L7_ORDER.index(L7Protocol.HTTPS),
            L7_ORDER.index(L7Protocol.HTTP),
            L7_ORDER.index(L7Protocol.OTHER_TCP),
        ],
    )
    has_rtt = np.isfinite(frame.ground_rtt_ms)
    volume = frame.bytes_total()
    samples: Dict[str, np.ndarray] = {}
    weighted: Dict[str, Dict[float, float]] = {}
    for country in countries:
        mask = frame.country_mask(country) & tcp_mask & has_rtt
        rtt = frame.ground_rtt_ms[mask].astype(np.float64)
        samples[country] = rtt
        vol = volume[mask]
        total = vol.sum()
        weighted[country] = {
            threshold: float(vol[rtt <= threshold].sum() / total) if total else float("nan")
            for threshold in thresholds
        }
    return Fig9Result(samples=samples, volume_weighted_share_below=weighted)


def render(result: Fig9Result) -> str:
    rows = []
    for country, rtt in result.samples.items():
        rows.append(
            (
                country,
                f"{result.median_ms(country):.0f}",
                f"{result.fraction_below(country, 40.0) * 100:.0f} %",
                f"{result.fraction_above(country, 250.0) * 100:.1f} %",
            )
        )
    return format_table(
        ["Country", "Median ms", "<40 ms", ">250 ms"],
        rows,
        title="Figure 9: ground RTT per country",
    )


from repro.analysis import registry as _registry

_registry.register(
    name="fig9",
    title="Ground RTT per country",
    module=__name__,
    columns=("country_idx", "l7_idx", "ground_rtt_ms", "bytes_up", "bytes_down"),
    compute_frame=compute,
    compute_rollup=from_rollup,
    render=render,
)
