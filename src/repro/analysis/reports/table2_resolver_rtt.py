"""Table 2 (and appendix Tables 4–5) — ground RTT per domain × resolver.

The paper joins TCP flows to the resolver the customer used and shows
that for African customers the resolver choice changes which CDN node
serves a domain — e.g. ``captive.apple.com`` costs 19.1 ms for U.K.
customers on Operator-EU but 110.4 ms for Nigerians on 114DNS — while
for European customers the resolver barely matters, and anycast-served
domains (``nflxvideo.net``) are immune.

We reproduce the join: each customer's dominant resolver is derived
from its DNS flows, then TCP flows are grouped by
(country, resolver, domain pattern) and the mean ground RTT reported.
"""

from __future__ import annotations

import re
from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np

from repro.analysis.aggregate import dominant_resolver_per_customer, format_table
from repro.analysis.dataset import FlowFrame
from repro.analysis.domains import TABLE2_DOMAIN_GROUPS
from repro.traffic.profiles import TOP_COUNTRIES

#: Domain groups of Table 2 (appendix tables add more second-level
#: domains; the benchmark may pass its own list). Shared with the
#: streamed rollup sketch via :mod:`repro.analysis.domains`.
DOMAIN_GROUPS: Dict[str, str] = TABLE2_DOMAIN_GROUPS

#: Published examples (ms): (country, resolver, domain) → mean ground RTT.
PAPER_EXAMPLES: Dict[Tuple[str, str, str], float] = {
    ("UK", "Operator-EU", "captive.apple.com"): 19.1,
    ("UK", "Google", "captive.apple.com"): 26.0,
    ("Nigeria", "Operator-EU", "captive.apple.com"): 23.1,
    ("Nigeria", "Google", "captive.apple.com"): 38.4,
    ("Nigeria", "114DNS", "captive.apple.com"): 110.4,
    ("UK", "Operator-EU", "play.googleapis.com"): 16.3,
    ("Nigeria", "Google", "play.googleapis.com"): 36.0,
    ("Nigeria", "114DNS", "play.googleapis.com"): 114.2,
    ("Nigeria", "114DNS", "*.nflxvideo.net"): 20.1,
}


@dataclass
class Table2Result:
    """(country, resolver, domain group) → mean ground RTT (ms)."""

    mean_rtt_ms: Dict[Tuple[str, str, str], float]
    sample_counts: Dict[Tuple[str, str, str], int]

    def rtt(self, country: str, resolver: str, domain: str) -> Optional[float]:
        return self.mean_rtt_ms.get((country, resolver, domain))


def compute(
    frame: FlowFrame,
    countries: Sequence[str] = ("UK", "Nigeria"),
    domain_groups: Optional[Dict[str, str]] = None,
    min_samples: int = 5,
) -> Table2Result:
    """Mean ground RTT per (country, resolver, domain group)."""
    groups = domain_groups or DOMAIN_GROUPS
    compiled = {name: re.compile(pattern) for name, pattern in groups.items()}

    # Label each pooled domain with its group (tiny pool → cheap).
    pool_group = np.full(len(frame.domains), -1, dtype=np.int16)
    group_names = list(groups)
    for d_idx, domain in enumerate(frame.domains):
        for g_idx, name in enumerate(group_names):
            if compiled[name].search(domain):
                pool_group[d_idx] = g_idx
                break

    flow_group = np.full(len(frame), -1, dtype=np.int16)
    has_domain = frame.domain_idx >= 0
    flow_group[has_domain] = pool_group[frame.domain_idx[has_domain]]

    resolver_of = dominant_resolver_per_customer(frame)
    flow_resolver = np.array(
        [resolver_of.get(int(c), -1) for c in frame.customer_id], dtype=np.int16
    )

    has_rtt = np.isfinite(frame.ground_rtt_ms)
    means: Dict[Tuple[str, str, str], float] = {}
    counts: Dict[Tuple[str, str, str], int] = {}
    for country in countries:
        c_mask = frame.country_mask(country) & has_rtt & (flow_group >= 0)
        for r_idx, resolver in enumerate(frame.resolvers):
            r_mask = c_mask & (flow_resolver == r_idx)
            if not r_mask.any():
                continue
            for g_idx, group in enumerate(group_names):
                values = frame.ground_rtt_ms[r_mask & (flow_group == g_idx)]
                if len(values) >= min_samples:
                    key = (country, resolver, group)
                    # float64 mean: the streamed path accumulates f64
                    # sums, and a f32 mean drifts from it
                    means[key] = float(values.astype(np.float64).mean())
                    counts[key] = int(len(values))
    return Table2Result(mean_rtt_ms=means, sample_counts=counts)


def from_rollup(
    rollup,
    countries: Sequence[str] = ("UK", "Nigeria"),
    min_samples: int = 5,
) -> Table2Result:
    """Table 2 from a :class:`~repro.stream.StreamRollup`.

    The rollup keeps, per customer, DNS-flow counts per resolver and
    ground-RTT (sum, count) per Table 2 domain group; the dominant-
    resolver join then happens here, after merging — same rule as the
    frame path (most DNS flows, ties to the lowest resolver index).
    Only the built-in :data:`DOMAIN_GROUPS` are sketched.
    """
    group_names = rollup.t2_groups
    nr, ng = len(rollup.resolvers), len(group_names)
    means: Dict[Tuple[str, str, str], float] = {}
    counts: Dict[Tuple[str, str, str], int] = {}
    for country in countries:
        sums = np.zeros((nr, ng), dtype=np.float64)
        cnts = np.zeros((nr, ng), dtype=np.float64)
        for cid in rollup.customers_of(country):
            bank = rollup.t2_bank(cid)
            if bank is None:
                continue
            dns_counts, rtt_sum, rtt_cnt = bank
            if dns_counts.sum() == 0:
                continue
            dominant = int(np.argmax(dns_counts))
            sums[dominant] += rtt_sum
            cnts[dominant] += rtt_cnt
        for r_idx, resolver in enumerate(rollup.resolvers):
            for g_idx, group in enumerate(group_names):
                n = int(cnts[r_idx, g_idx])
                if n >= min_samples:
                    key = (country, resolver, group)
                    means[key] = float(sums[r_idx, g_idx] / n)
                    counts[key] = n
    return Table2Result(mean_rtt_ms=means, sample_counts=counts)


def render(result: Table2Result) -> str:
    rows: List[Tuple[str, str, str, str, str]] = []
    seen_keys = sorted(result.mean_rtt_ms)
    for key in seen_keys:
        country, resolver, domain = key
        paper = PAPER_EXAMPLES.get(key)
        rows.append(
            (
                country,
                resolver,
                domain,
                f"{result.mean_rtt_ms[key]:.1f}",
                f"{paper:.1f}" if paper is not None else "-",
            )
        )
    return format_table(
        ["Country", "Resolver", "Domain", "Measured ms", "Paper ms"],
        rows,
        title="Table 2: mean ground RTT per domain and resolver",
    )


from repro.analysis import registry as _registry

_registry.register(
    name="table2",
    title="Ground RTT per domain and resolver",
    module=__name__,
    columns=("country_idx", "customer_id", "domain_idx", "resolver_idx", "ground_rtt_ms"),
    compute_frame=compute,
    compute_rollup=from_rollup,
    render=render,
    exact_parity=True,
)
